(* sanids scan / sig-scan: run detectors over a capture file. *)

open Sanids
open Cmdliner
open Cli_common

let scan_cmd =
  let pcap_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CAPTURE.pcap")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the final metrics snapshot as Prometheus text \
                 exposition to $(docv).")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write stage spans as JSONL trace events to $(docv).")
  in
  let trace_sample =
    Arg.(value & opt int 1 & info [ "trace-sample" ] ~docv:"N"
           ~doc:"Emit every N-th span (with --trace).")
  in
  let fault =
    Arg.(value & opt (some fault_conv) None & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Corrupt the capture before analysis, e.g. \
                 $(b,truncate=0.1,bitflip=0.05,dup=0.01,reorder=0.2,garbage=0.02) \
                 - resilience drills against the typed ingest boundary.")
  in
  let fault_seed =
    Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N"
           ~doc:"RNG seed for --fault (same spec and seed replay the same \
                 corruption).")
  in
  let stream =
    Arg.(value & flag & info [ "stream" ]
           ~doc:"Process the capture through the multicore stream pipeline \
                 (bounded admission queues, load shedding per \
                 --drop-policy).")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains for --stream (default: the machine's \
                 recommended count, capped at 8).")
  in
  let run path build_cfg fault fault_seed stream domains metrics_out
      trace_out trace_sample verbose =
    setup_logs verbose;
    let cfg = build_cfg Config.default in
    match Config.validate cfg with
    | Error msg ->
        Printf.eprintf "sanids scan: invalid configuration: %s\n" msg;
        exit exit_usage
    | Ok cfg -> (
        if trace_sample <= 0 then begin
          Printf.eprintf "sanids scan: --trace-sample must be positive (got %d)\n"
            trace_sample;
          exit exit_usage
        end;
        (* all decoding goes through the typed ingest boundary: framing
           faults are fatal bad data (65), per-record faults are counted
           and skipped, and the ingest counters join the exported
           snapshot so records_in reconciles with packets + errors +
           shed *)
        let ingest_reg = Obs.Registry.create () in
        let ing = Ingest.metrics ingest_reg in
        match Ingest.decode_file ~metrics:ing (read_file path) with
        | Error e ->
            Printf.eprintf "sanids scan: %s: %s\n" path (Ingest.error_to_string e);
            exit exit_dataerr
        | Ok capture ->
            let capture =
              match fault with
              | None -> capture
              | Some plan -> Fault.file ~seed:(Int64.of_int fault_seed) plan capture
            in
            let packets = Ingest.ok_packets ~metrics:ing capture in
            let snap, help_regs, no_alerts =
              if stream then begin
                if trace_out <> None then
                  Printf.eprintf "sanids scan: --trace is ignored with --stream\n";
                let count = ref 0 in
                let snap =
                  Parallel.process_seq_snapshot ?domains cfg (List.to_seq packets)
                    (fun alerts ->
                      List.iter
                        (fun a ->
                          incr count;
                          print_endline (Alert.to_line a))
                        alerts)
                in
                (snap, [ ingest_reg ], !count = 0)
              end
              else begin
                let trace_oc = Option.map open_out trace_out in
                let tracer =
                  Option.map (Obs.Span.tracer ~sample:trace_sample) trace_oc
                in
                let nids = Pipeline.create ?tracer cfg in
                let alerts = Pipeline.process_packets nids packets in
                List.iter (fun a -> print_endline (Alert.to_line a)) alerts;
                (match tracer with Some t -> Obs.Span.flush t | None -> ());
                Option.iter close_out trace_oc;
                (Pipeline.snapshot nids, [ Pipeline.registry nids; ingest_reg ],
                 alerts = [])
              end
            in
            let snap = Obs.Snapshot.merge snap (Obs.Registry.snapshot ingest_reg) in
            Format.printf "%a@." Stats.pp (Stats.of_snapshot snap);
            (match metrics_out with
            | Some file ->
                let help n =
                  List.find_map (fun r -> Obs.Registry.help r n) help_regs
                in
                Obs.Export.write_file file (Obs.Export.to_prometheus ~help snap)
            | None -> ());
            if no_alerts then print_endline "no alerts")
  in
  Cmd.v
    (Cmd.info "scan" ~doc:"Run the semantics-aware NIDS over a pcap capture.")
    Term.(
      const run $ pcap_arg $ config_term $ fault $ fault_seed $ stream
      $ domains $ metrics_out $ trace_out $ trace_sample $ verbose_arg)

let sig_scan_cmd =
  let rules_file =
    Arg.(value & opt (some file) None & info [ "rules" ] ~docv:"FILE"
           ~doc:"Snort-style rule file (default: the shipped ruleset).")
  in
  let run path rules_file =
    let text =
      match rules_file with Some f -> read_file f | None -> Rule.default_ruleset
    in
    let rules, errors = Rule.parse_many text in
    List.iter (fun (line, e) -> Printf.eprintf "rule line %d: %s\n" line e) errors;
    let engine = Rule.compile rules in
    Printf.printf "loaded %d rules\n" (List.length rules);
    let capture =
      match Pcap.decode (read_file path) with
      | Ok f -> f
      | Error m ->
          Printf.eprintf "sanids sig-scan: %s: %s\n" path m;
          exit exit_dataerr
    in
    let hits = ref 0 in
    List.iter
      (fun r ->
        match r with
        | Ok p ->
            List.iter
              (fun msg ->
                incr hits;
                Printf.printf "[%.3f] SIG %s %s -> %s\n" p.Packet.ts msg
                  (Ipaddr.to_string (Packet.src p))
                  (Ipaddr.to_string (Packet.dst p)))
              (Rule.match_packet engine p)
        | Error _ -> ())
      (Pcap.to_packets capture);
    if !hits = 0 then print_endline "no signature matches"
  in
  Cmd.v
    (Cmd.info "sig-scan"
       ~doc:"Run the Snort-style signature baseline over a pcap capture.")
    Term.(const run $ file_pos $ rules_file)
