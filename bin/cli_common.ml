(* Shared plumbing for the per-subcommand modules: BSD sysexits codes,
   small file helpers, and cmdliner argument combinators.

   Every spec-valued flag (--budget, --breaker, --fault, --drop-policy,
   --set) goes through [conv_of_parser] over the same typed
   [string -> (_, string) result] parsers the daemon's hot-reload path
   uses ({!Config.of_spec} / {!Config.of_file}), so a bad flag and a
   rejected reload produce the same message. *)

open Sanids
open Cmdliner

(* BSD sysexits-style codes, cram-tested: bad flags or configuration
   are the caller's fault (64), data a decoder or gate rejects is bad
   input (65), a missing input file is 66, an unreachable daemon is
   69, anything unexpected is ours (70). *)
let exit_usage = 64
let exit_dataerr = 65
let exit_noinput = 66
let exit_unavailable = 69
let exit_software = 70

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ]
           ~doc:"Log classification and alerts as they happen.")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ------------------------------------------------------------------ *)
(* argument combinators *)

(* Lift a typed [of_string : string -> ('a, string) result] parser and
   its printer into a cmdliner converter — the one bridge between the
   library's spec grammar and the command line. *)
let conv_of_parser ~parse ~print =
  Arg.conv
    ( (fun s -> match parse s with Ok v -> Ok v | Error m -> Error (`Msg m)),
      fun ppf v -> Format.pp_print_string ppf (print v) )

let ipaddr_conv =
  conv_of_parser
    ~parse:(fun s ->
      match Ipaddr.of_string_opt s with
      | Some a -> Ok a
      | None -> Error (Printf.sprintf "bad IPv4 address %S" s))
    ~print:Ipaddr.to_string

let prefix_conv =
  conv_of_parser
    ~parse:(fun s ->
      match Ipaddr.prefix_of_string_opt s with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "bad prefix %S (want a.b.c.d/len)" s))
    ~print:Ipaddr.prefix_to_string

let fault_conv =
  conv_of_parser ~parse:Fault.of_string ~print:Fault.to_string

let budget_conv =
  conv_of_parser ~parse:Budget.limits_of_string ~print:Budget.limits_to_string

let breaker_conv =
  conv_of_parser ~parse:Breaker.config_of_string ~print:Breaker.config_to_string

let policy_conv =
  conv_of_parser ~parse:Bqueue.policy_of_string_result
    ~print:Bqueue.policy_to_string

let confirm_conv =
  conv_of_parser ~parse:Confirm.config_of_string ~print:Confirm.config_to_string

(* [--set key=value] parses through the daemon's reload grammar
   ({!Config.of_spec}), yielding a configuration updater. *)
let spec_conv =
  Arg.conv
    ( (fun s ->
        match Config.of_spec s with
        | Ok update -> Ok (s, update)
        | Error m -> Error (`Msg m)),
      fun ppf (s, _) -> Format.pp_print_string ppf s )

let seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"N" ~doc:"Deterministic RNG seed.")

let file_pos = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

(* ------------------------------------------------------------------ *)
(* the shared configuration flag set

   [scan], [lint --config] and [serve] assemble a {!Config.t} from the
   same flags; this term evaluates to an updater applied to
   [Config.default] (or whatever base the subcommand chooses), with
   [--set] specs composing after the dedicated flags. *)

let config_term =
  let honeypots =
    Arg.(value & opt_all ipaddr_conv []
         & info [ "honeypot" ] ~docv:"IP"
             ~doc:"Register a honeypot decoy address (repeatable).")
  in
  let unused =
    Arg.(value & opt_all prefix_conv []
         & info [ "unused" ] ~docv:"CIDR"
             ~doc:"Declare unused address space for scan detection \
                   (repeatable).")
  in
  let no_classify =
    Arg.(value & flag
         & info [ "no-classify" ]
             ~doc:"Disable classification: analyze every payload (the \
                   paper's false-positive-run configuration).")
  in
  let no_extract =
    Arg.(value & flag
         & info [ "no-extract" ]
             ~doc:"Disable binary extraction: hand whole payloads to the \
                   disassembler (reference-[5] style).")
  in
  let scan_threshold =
    Arg.(value & opt int Config.default.Config.scan_threshold
         & info [ "scan-threshold" ] ~docv:"N"
             ~doc:"Distinct unused addresses before a source is flagged.")
  in
  let verdict_cache =
    Arg.(value & opt int Config.default.Config.verdict_cache_size
         & info [ "verdict-cache" ] ~docv:"N"
             ~doc:"Verdict cache capacity (0 disables).")
  in
  let queue =
    Arg.(value & opt int Config.default.Config.stream_queue_capacity
         & info [ "queue" ] ~docv:"N"
             ~doc:"Per-worker admission queue capacity (stream mode).")
  in
  let drop_policy =
    Arg.(value & opt policy_conv Config.default.Config.stream_drop_policy
         & info [ "drop-policy" ] ~docv:"POLICY"
             ~doc:"Full-queue behaviour in stream mode: $(b,block) \
                   (lossless backpressure), $(b,drop_newest) or \
                   $(b,drop_oldest); shed packets are counted as \
                   sanids_shed_total.")
  in
  let budget =
    Arg.(value & opt (some budget_conv) None
         & info [ "budget" ] ~docv:"SPEC"
             ~doc:"Per-packet analysis work budget: $(b,default) or \
                   $(b,bytes=N,insns=N,steps=N,deadline=S) - the \
                   adversarial-load ceiling on extraction, disassembly \
                   and matching.  Truncated analyses are counted as \
                   sanids_budget_truncated_total.")
  in
  let breaker =
    Arg.(value & opt (some breaker_conv) None
         & info [ "breaker" ] ~docv:"SPEC"
             ~doc:"Per-template circuit breaker: $(b,default) or \
                   $(b,fails=N,cooldown=N,max=N) (cooldowns counted in \
                   analyzed packets).  Open transitions are counted as \
                   sanids_breaker_open_total.")
  in
  let confirm =
    Arg.(value & opt (some confirm_conv) None
         & info [ "confirm" ] ~docv:"SPEC"
             ~doc:"Dynamic confirmation: $(b,default) or \
                   $(b,steps=N,syscalls=N,written=N,arena=N).  Every \
                   matcher hit is executed in the sandboxed emulator; \
                   refuted matches are demoted (no alert), confirmed \
                   ones marked, outcomes counted as \
                   sanids_confirm_total.")
  in
  let static_refute =
    Arg.(value & flag
         & info [ "static-refute" ]
             ~doc:"Abstract refutation pre-stage for $(b,--confirm): \
                   before each emulator run, execute the hit abstractly \
                   over an interval domain under the same budgets and \
                   demote hits that provably cannot confirm without ever \
                   entering the emulator (counted as \
                   sanids_confirm_total{outcome=static_refuted}).  Sound: \
                   verdicts are unchanged, only emulator calls are \
                   avoided.")
  in
  let degrade =
    Arg.(value & flag
         & info [ "degrade" ]
             ~doc:"When analysis is budget-truncated or templates are \
                   held open by the breaker, fall back to the cheap \
                   baseline pattern pass instead of silently reporting \
                   less; degraded alerts carry a [degraded] marker and \
                   sanids_degraded_total counts the fallbacks.")
  in
  let sets =
    Arg.(value & opt_all spec_conv []
         & info [ "set" ] ~docv:"KEY=VALUE"
             ~doc:"Set a configuration key through the key=value grammar \
                   shared with $(b,--config-file) and the daemon's hot \
                   reload (repeatable, applied after the dedicated \
                   flags; keys: honeypot, unused, scan_threshold, \
                   classify, extract, min_payload, reassemble, \
                   verdict_cache, flow_alert_cache, queue, drop_policy, \
                   budget, breaker, degrade, confirm, static_refute).")
  in
  let build honeypots unused no_classify no_extract scan_threshold
      verdict_cache queue drop_policy budget breaker confirm static_refute
      degrade sets cfg =
    let cfg =
      cfg
      |> Config.with_honeypots honeypots
      |> Config.with_unused unused
      |> Config.with_classification (not no_classify)
      |> Config.with_extraction (not no_extract)
      |> Config.with_scan_threshold scan_threshold
      |> Config.with_verdict_cache verdict_cache
      |> Config.with_stream_queue queue
      |> Config.with_stream_policy drop_policy
      |> Config.with_budget budget
      |> Config.with_breaker breaker
      |> Config.with_confirm confirm
      |> Config.with_static_refute static_refute
      |> Config.with_degrade degrade
    in
    List.fold_left (fun cfg (_, update) -> update cfg) cfg sets
  in
  Term.(
    const build $ honeypots $ unused $ no_classify $ no_extract
    $ scan_threshold $ verdict_cache $ queue $ drop_policy $ budget $ breaker
    $ confirm $ static_refute $ degrade $ sets)
