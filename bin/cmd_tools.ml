(* sanids disasm / match / emulate / templates: binary-analysis tools. *)

open Sanids
open Cmdliner
open Cli_common

let disasm_cmd =
  let run path =
    let code = read_file path in
    Array.iter
      (fun (d : Decode.decoded) ->
        Printf.printf "%04x: %s\n" d.Decode.off (Pretty.to_string d.Decode.insn))
      (Decode.all code)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Linear-sweep disassembly of a binary file.")
    Term.(const run $ file_pos)

let match_cmd =
  let run path =
    let code = read_file path in
    match Matcher.scan ~templates:Template_lib.default_set code with
    | [] ->
        print_endline "no template matches";
        exit 1
    | results ->
        List.iter
          (fun r -> Format.printf "%a@." Matcher.pp_result r)
          results
  in
  Cmd.v
    (Cmd.info "match" ~doc:"Run the semantic template matcher over a binary file.")
    Term.(const run $ file_pos)

let emulate_cmd =
  let max_steps =
    Arg.(value & opt int 100_000 & info [ "max-steps" ] ~docv:"N"
           ~doc:"Execution budget.")
  in
  let run path max_steps =
    let code = read_file path in
    let emu = Emulator.create ~code () in
    let rec drive budget syscalls =
      match Emulator.run ~max_steps:budget emu with
      | Emulator.Syscall n, steps ->
          Printf.printf
            "syscall int 0x%x after %d steps: eax=0x%lx ebx=0x%lx ecx=0x%lx edx=0x%lx\n"
            n (Emulator.steps_taken emu) (Emulator.reg emu Reg.EAX)
            (Emulator.reg emu Reg.EBX) (Emulator.reg emu Reg.ECX)
            (Emulator.reg emu Reg.EDX);
          if syscalls < 16 && budget - steps > 0 then begin
            (* fake a kernel return and continue *)
            Emulator.set_reg emu Reg.EAX 3l;
            drive (budget - steps) (syscalls + 1)
          end
          else Printf.printf "stopping after %d syscalls\n" (syscalls + 1)
      | Emulator.Halted m, _ ->
          Printf.printf "halted after %d steps: %s (eip=0x%lx)\n"
            (Emulator.steps_taken emu) m (Emulator.eip emu)
      | Emulator.Running, _ ->
          Printf.printf "still running after %d steps (eip=0x%lx)\n"
            (Emulator.steps_taken emu) (Emulator.eip emu)
    in
    drive max_steps 0
  in
  Cmd.v
    (Cmd.info "emulate"
       ~doc:"Execute a binary file in the sandboxed x86 interpreter and report \
             its syscalls - dynamic ground truth for what the code does.")
    Term.(const run $ file_pos $ max_steps)

let templates_cmd =
  let run () =
    List.iter
      (fun (t : Template.t) ->
        Printf.printf "%-18s %s\n" t.Template.name t.Template.description)
      Template_lib.default_set
  in
  Cmd.v
    (Cmd.info "templates" ~doc:"List the shipped semantic templates.")
    Term.(const run $ const ())
