(* sanids disasm / match / emulate / templates: binary-analysis tools. *)

open Sanids
open Cmdliner
open Cli_common

let disasm_cmd =
  let run path =
    let code = read_file path in
    Array.iter
      (fun (d : Decode.decoded) ->
        Printf.printf "%04x: %s\n" d.Decode.off (Pretty.to_string d.Decode.insn))
      (Decode.all code)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Linear-sweep disassembly of a binary file.")
    Term.(const run $ file_pos)

let match_cmd =
  let run path =
    let code = read_file path in
    match Matcher.scan ~templates:Template_lib.default_set code with
    | [] ->
        print_endline "no template matches";
        exit 1
    | results ->
        List.iter
          (fun r -> Format.printf "%a@." Matcher.pp_result r)
          results
  in
  Cmd.v
    (Cmd.info "match" ~doc:"Run the semantic template matcher over a binary file.")
    Term.(const run $ file_pos)

let emulate_cmd =
  let max_steps =
    Arg.(value & opt int 100_000 & info [ "max-steps" ] ~docv:"N"
           ~doc:"Execution budget.")
  in
  let run path max_steps =
    let code = read_file path in
    let emu = Emulator.create ~code () in
    let rec drive budget syscalls =
      match Emulator.run ~max_steps:budget emu with
      | Emulator.Syscall n, steps ->
          Printf.printf
            "syscall int 0x%x after %d steps: eax=0x%lx ebx=0x%lx ecx=0x%lx edx=0x%lx\n"
            n (Emulator.steps_taken emu) (Emulator.reg emu Reg.EAX)
            (Emulator.reg emu Reg.EBX) (Emulator.reg emu Reg.ECX)
            (Emulator.reg emu Reg.EDX);
          if syscalls < 16 && budget - steps > 0 then begin
            (* fake a kernel return and continue *)
            Emulator.set_reg emu Reg.EAX 3l;
            drive (budget - steps) (syscalls + 1)
          end
          else Printf.printf "stopping after %d syscalls\n" (syscalls + 1)
      | Emulator.Halted m, _ ->
          Printf.printf "halted after %d steps: %s (eip=0x%lx)\n"
            (Emulator.steps_taken emu) m (Emulator.eip emu)
      | Emulator.Running, _ ->
          Printf.printf "still running after %d steps (eip=0x%lx)\n"
            (Emulator.steps_taken emu) (Emulator.eip emu)
    in
    drive max_steps 0
  in
  Cmd.v
    (Cmd.info "emulate"
       ~doc:"Execute a binary file in the sandboxed x86 interpreter and report \
             its syscalls - dynamic ground truth for what the code does.")
    Term.(const run $ file_pos $ max_steps)

let emu_test_cmd =
  let paths =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH"
           ~doc:"Vector files, or directories expanded to their *.json \
                 entries.")
  in
  let filter =
    Arg.(value & opt (some string) None
         & info [ "filter" ] ~docv:"GLOB"
             ~doc:"Only run cases whose name matches this *-glob.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Spread cases over N domains.")
  in
  let dump_failures =
    Arg.(value & flag
         & info [ "dump-failures" ]
             ~doc:"Print every divergence of every failing case, not \
                   just the per-case count.")
  in
  let run paths filter jobs dump_failures =
    if jobs < 1 then begin
      Printf.eprintf "emu-test: --jobs wants a positive count, got %d\n" jobs;
      exit exit_usage
    end;
    match Emu_test.run ?filter ~jobs paths with
    | Error msg ->
        Printf.eprintf "emu-test: %s\n" msg;
        exit exit_noinput
    | Ok report ->
        List.iter
          (fun (f : Emu_test.failure) ->
            Printf.printf "FAIL %s: %s (%d divergences)\n" f.Emu_test.f_file
              f.Emu_test.f_case
              (List.length f.Emu_test.f_details);
            if dump_failures then
              List.iter (Printf.printf "  %s\n") f.Emu_test.f_details)
          report.Emu_test.failures;
        Printf.printf "emu-test: %d/%d cases passed (%d files)\n"
          (Emu_test.passed report) report.Emu_test.cases report.Emu_test.files;
        if report.Emu_test.failures <> [] then exit exit_dataerr
  in
  Cmd.v
    (Cmd.info "emu-test"
       ~doc:"Validate the x86 interpreter against SingleStepTests-style \
             JSON vectors - the correctness harness under the dynamic \
             confirmation stage.  Exits 65 when any case diverges.")
    Term.(const run $ paths $ filter $ jobs $ dump_failures)

let templates_cmd =
  let run () =
    List.iter
      (fun (t : Template.t) ->
        Printf.printf "%-18s %s\n" t.Template.name t.Template.description)
      Template_lib.default_set
  in
  Cmd.v
    (Cmd.info "templates" ~doc:"List the shipped semantic templates.")
    Term.(const run $ const ())
