(* sanids gen-trace / gen-exploit / corpus: workload synthesis. *)

open Sanids
open Cmdliner
open Cli_common

let gen_trace_cmd =
  let out_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.pcap") in
  let kind =
    Arg.(value
         & opt
             (enum
                [
                  ("benign", `Benign); ("codered", `Codered);
                  ("adversarial", `Adversarial);
                ])
             `Benign
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Trace kind: benign, codered or adversarial \
                   (algorithmic-complexity bombs for the hardening drills).")
  in
  let packets =
    Arg.(value & opt int 10_000 & info [ "packets" ] ~docv:"N" ~doc:"Benign packet count.")
  in
  let instances =
    Arg.(value & opt int 3 & info [ "instances" ] ~docv:"N"
           ~doc:"Code Red II instances (codered kind).")
  in
  let adv_kind =
    let parse s =
      match Adversarial.kind_of_string s with
      | Some k -> Ok k
      | None ->
          Error
            (Printf.sprintf
               "bad adversarial kind %S (want \
                unicode_bomb|repetition_bomb|jmp_maze|garbage_x86|\
                decoy_decoder|mixed)"
               s)
    in
    Arg.(value
         & opt
             (conv_of_parser ~parse ~print:Adversarial.kind_to_string)
             Adversarial.Mixed
         & info [ "adv-kind" ] ~docv:"KIND"
             ~doc:"Payload family for the adversarial kind: \
                   $(b,unicode_bomb), $(b,repetition_bomb), $(b,jmp_maze), \
                   $(b,garbage_x86), $(b,decoy_decoder) (a matcher false \
                   positive only dynamic confirmation can refute) or \
                   $(b,mixed).")
  in
  let payload_size =
    Arg.(value & opt int 8192 & info [ "payload-size" ] ~docv:"BYTES"
           ~doc:"Approximate payload size for the adversarial kind.")
  in
  let run out kind packets instances adv_kind payload_size seed =
    let rng = Rng.create (Int64.of_int seed) in
    let clients = Ipaddr.prefix_of_string "10.1.0.0/16" in
    let servers = Ipaddr.prefix_of_string "10.2.0.0/16" in
    let unused = Ipaddr.prefix_of_string "10.2.200.0/21" in
    let pkts =
      match kind with
      | `Benign -> Benign_gen.packets rng ~n:packets ~t0:0.0 ~clients ~servers
      | `Codered ->
          let pkts, truth =
            Worm_gen.code_red_trace rng ~benign:packets ~instances
              ~scans_per_instance:6 ~clients ~servers ~unused ~duration:300.0
          in
          Printf.printf
            "ground truth: %d packets, %d CRII instances, %d scans (unused space: %s)\n"
            truth.Worm_gen.total_packets truth.Worm_gen.crii_instances
            truth.Worm_gen.scan_packets
            (Ipaddr.prefix_to_string unused);
          pkts
      | `Adversarial ->
          Adversarial.packets ~kind:adv_kind ~size:payload_size rng ~n:packets
            ~t0:0.0 ~clients ~servers
    in
    Pcap.write_file out (Pcap.of_packets pkts);
    Printf.printf "wrote %s (%d packets)\n" out (List.length pkts)
  in
  Cmd.v
    (Cmd.info "gen-trace"
       ~doc:"Synthesize a seeded pcap trace (benign, worm outbreak or \
             adversarial load).")
    Term.(const run $ out_arg $ kind $ packets $ instances $ adv_kind
          $ payload_size $ seed_arg)

let gen_exploit_cmd =
  let sc_name =
    Arg.(value & opt string "classic" & info [ "shellcode" ] ~docv:"NAME"
           ~doc:"Shellcode from the corpus (see $(b,sanids corpus)).")
  in
  let polymorphic =
    Arg.(value & flag & info [ "polymorphic" ]
           ~doc:"Wrap the shellcode with the ADMmutate-style engine.")
  in
  let clet = Arg.(value & flag & info [ "clet" ] ~doc:"Use the Clet-style engine.") in
  let staged =
    Arg.(value & flag & info [ "staged" ]
           ~doc:"Double-encode: the decoder decodes a second decoder.")
  in
  let http =
    Arg.(value & flag & info [ "http" ] ~doc:"Embed in an HTTP overflow request.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (default: hexdump to stdout).")
  in
  let run sc_name polymorphic clet staged http out seed =
    match Shellcodes.find sc_name with
    | exception Not_found ->
        Printf.eprintf "unknown shellcode %S; see `sanids corpus`\n" sc_name;
        exit 2
    | entry ->
        let rng = Rng.create (Int64.of_int seed) in
        let code =
          if staged then
            (Admmutate.generate_staged ~stages:2 rng ~payload:entry.Shellcodes.code)
              .Admmutate.code
          else if clet then (Clet.generate rng ~payload:entry.Shellcodes.code).Clet.code
          else if polymorphic then
            (Admmutate.generate rng ~payload:entry.Shellcodes.code).Admmutate.code
          else entry.Shellcodes.code
        in
        let data =
          if http then Exploit_gen.http_exploit rng ~shellcode:code else code
        in
        (match out with
        | Some path ->
            write_file path data;
            Printf.printf "wrote %s (%d bytes)\n" path (String.length data)
        | None -> print_endline (Hexdump.to_string data))
  in
  Cmd.v
    (Cmd.info "gen-exploit" ~doc:"Emit a shellcode or exploit payload from the corpus.")
    Term.(const run $ sc_name $ polymorphic $ clet $ staged $ http $ out $ seed_arg)

let corpus_cmd =
  let run () =
    List.iter
      (fun (e : Shellcodes.entry) ->
        Printf.printf "%-12s %4d B  %s%s\n" e.Shellcodes.name
          (String.length e.Shellcodes.code)
          e.Shellcodes.description
          (if e.Shellcodes.binds_port then "  [binds port]" else ""))
      Shellcodes.all
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List the shell-spawning shellcode corpus.")
    Term.(const run $ const ())
