(* sanids serve / ctl: the long-lived daemon and its control client. *)

open Sanids
open Cmdliner
open Cli_common

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain control/metrics socket path.")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
         ~doc:"Loopback TCP control/metrics port (alternative to \
               $(b,--socket)).")

let listen_of socket port =
  match (socket, port) with
  | Some _, Some _ ->
      Printf.eprintf "sanids: --socket and --port are mutually exclusive\n";
      exit exit_usage
  | Some path, None -> Some (Httpd.Unix_socket path)
  | None, Some port -> Some (Httpd.Tcp port)
  | None, None -> None

let serve_cmd =
  let source_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SOURCE"
           ~doc:"Packet source: a pcap file (served to exhaustion), a \
                 FIFO carrying a pcap stream, or a spool directory \
                 watched for atomically-renamed-in .pcap files.")
  in
  let config_file =
    Arg.(value & opt (some file) None & info [ "config-file" ] ~docv:"FILE"
           ~doc:"key=value configuration applied over the flags; re-read \
                 and re-linted on every reload (SIGHUP or ctl reload).")
  in
  let rules_file =
    Arg.(value & opt (some file) None & info [ "rules" ] ~docv:"FILE"
           ~doc:"Snort-style rule file linted as part of the reload gate.")
  in
  let snapshot_out =
    Arg.(value & opt (some string) None & info [ "snapshot-out" ] ~docv:"FILE"
           ~doc:"Append periodic JSONL metric-delta snapshots to $(docv).")
  in
  let snapshot_every =
    Arg.(value & opt float 10.0 & info [ "snapshot-every" ] ~docv:"SECONDS"
           ~doc:"Interval between JSONL snapshots (with --snapshot-out).")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains (default: the machine's recommended \
                 count, capped at 8).")
  in
  let poll_interval =
    Arg.(value & opt float 0.02 & info [ "poll-interval" ] ~docv:"SECONDS"
           ~doc:"Idle-source sleep between control polls.")
  in
  let run source build_cfg config_file rules_file socket port snapshot_out
      snapshot_every domains poll_interval verbose =
    setup_logs verbose;
    let options =
      {
        Serve.default_options with
        Serve.source;
        base = build_cfg Config.default;
        config_file;
        rules_file;
        listen = listen_of socket port;
        snapshot_out;
        snapshot_every;
        domains;
        poll_interval;
      }
    in
    match Serve.run options with
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "sanids serve: %s\n" (Serve.error_to_string e);
        exit
          (match e with
          | Serve.Config_rejected _ -> exit_dataerr
          | Serve.Source_error _ -> exit_noinput
          | Serve.Socket_error _ -> exit_unavailable
          | Serve.Reconciliation_mismatch -> exit_software)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve as a long-lived daemon: stream a pcap file, FIFO or \
             spool directory through the multicore pipeline with \
             lint-gated hot reload, a live metrics endpoint, and \
             graceful drain.")
    Term.(
      const run $ source_arg $ config_term $ config_file $ rules_file
      $ socket_arg $ port_arg $ snapshot_out $ snapshot_every $ domains
      $ poll_interval $ verbose_arg)

let ctl_cmd =
  let command_arg =
    Arg.(required
         & pos 0
             (some
                (enum
                   [
                     ("metrics", `Metrics); ("health", `Health);
                     ("reload", `Reload); ("drain", `Drain);
                   ]))
             None
         & info [] ~docv:"COMMAND"
             ~doc:"$(b,metrics) (Prometheus text), $(b,health) (lifecycle \
                   state), $(b,reload) (run the lint gate; blocks until \
                   applied or rejected), $(b,drain) (graceful shutdown; \
                   blocks until stopped).")
  in
  let timeout =
    Arg.(value & opt float 10.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Connect/response deadline (connecting retries until the \
                 deadline, absorbing daemon start-up).")
  in
  let run command socket port timeout =
    let listen =
      match listen_of socket port with
      | Some l -> l
      | None ->
          Printf.eprintf "sanids ctl: --socket or --port is required\n";
          exit exit_usage
    in
    let verb, path =
      match command with
      | `Metrics -> ("GET", "/metrics")
      | `Health -> ("GET", "/healthz")
      | `Reload -> ("POST", "/-/reload")
      | `Drain -> ("POST", "/-/drain")
    in
    match Httpd.request ~timeout listen ~verb ~path () with
    | Error m ->
        Printf.eprintf "sanids ctl: %s\n" m;
        exit exit_unavailable
    | Ok (status, body) ->
        print_string body;
        if status >= 200 && status < 300 then ()
        else if status = 409 then exit exit_dataerr
          (* a rejected reload is bad configuration data *)
        else exit exit_software
  in
  Cmd.v
    (Cmd.info "ctl"
       ~doc:"Control a running serve daemon over its socket: scrape \
             metrics, check health, request a reload, or drain it.")
    Term.(const run $ command_arg $ socket_arg $ port_arg $ timeout)
