(* sanids lint: static analysis of detector artifacts. *)

open Sanids
open Cmdliner
open Cli_common

let lint_cmd : unit Cmd.t =
  let templates_flag =
    Arg.(value & flag & info [ "templates" ]
           ~doc:"Lint the shipped semantic template library: per-template \
                 well-formedness, guard satisfiability over the abstract \
                 domain, and cross-template subsumption.")
  in
  let rules_file =
    Arg.(value & opt (some file) None & info [ "rules" ] ~docv:"FILE"
           ~doc:"Lint a Snort-style rule file (without any selection flag, \
                 the shipped ruleset is linted).")
  in
  let config_flag =
    Arg.(value & flag & info [ "config" ]
           ~doc:"Lint the configuration assembled from the configuration \
                 flags below.")
  in
  let config_file =
    Arg.(value & opt (some file) None & info [ "config-file" ] ~docv:"FILE"
           ~doc:"Lint the configuration built by applying $(docv) (the \
                 key=value grammar the serve daemon hot-reloads) on top \
                 of the configuration flags - exactly the daemon's \
                 reload gate, runnable offline.")
  in
  let trace_file =
    Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Junk diagnostics for a raw code file: trace it from offset \
                 0 and report the dead-write (junk) density the def-use \
                 analysis sees.")
  in
  let selftest =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Lint the embedded deliberately-defective corpus, \
                 demonstrating every finding code.")
  in
  let format_arg =
    Arg.(value
         & opt
             (enum
                [ ("text", Lint.Text); ("json", Lint.Json); ("sarif", Lint.Sarif) ])
             Lint.Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,text) (findings plus a summary line), \
                   $(b,json) (JSONL, one finding object per line) or \
                   $(b,sarif) (one minimal SARIF 2.1.0 document).")
  in
  let codes_flag =
    Arg.(value & flag & info [ "codes" ]
           ~doc:"Print the stable finding-code catalog (one $(b,CODE pass) \
                 line per code) and exit - what the build's documentation \
                 check greps DESIGN.md for.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Fail (exit 65) on warnings as well as errors.")
  in
  let run templates_flag rules_file config_flag config_file trace_file
      selftest format codes_flag strict build_cfg =
    if codes_flag then begin
      List.iter (fun (c, pass) -> Printf.printf "%s %s\n" c pass) Lint.catalog;
      exit 0
    end;
    let none_selected =
      (not (templates_flag || config_flag || selftest))
      && rules_file = None && trace_file = None && config_file = None
    in
    let findings = ref [] in
    let add fs = findings := !findings @ fs in
    if selftest then add (Lint_selftest.findings ());
    if templates_flag || none_selected then
      add (Lint.templates Template_lib.default_set);
    (match rules_file with
    | Some f -> add (Lint.rules_text (read_file f))
    | None -> if none_selected then add (Lint.rules_text Rule.default_ruleset));
    if config_flag || config_file <> None || none_selected then begin
      let base = build_cfg Config.default in
      match config_file with
      | None -> add (Config.lint base)
      | Some path -> (
          match Config.of_file path with
          | Ok update -> add (Config.lint (update base))
          | Error m ->
              Printf.eprintf "sanids lint: %s\n" m;
              exit exit_dataerr)
    end;
    (match trace_file with
    | Some f -> add (Trace_lint.lint ~subject:("trace:" ^ f) (read_file f))
    | None -> ());
    (* the SL000 meta-check: a selftest run must prove every emitted
       code is cataloged (and the catalog collision-free) *)
    if selftest then add (Lint.selftest_codes !findings);
    let findings = !findings in
    print_string (Lint.render format findings);
    (match format with
    | Lint.Text -> Printf.printf "lint: %s\n" (Finding.summary findings)
    | Lint.Json | Lint.Sarif -> ());
    exit (Lint.exit_code ~strict findings)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze detector artifacts - semantic templates, \
             baseline rules, configuration - without running any traffic. \
             Exits 65 when findings fail the run.")
    Term.(
      const run $ templates_flag $ rules_file $ config_flag $ config_file
      $ trace_file $ selftest $ format_arg $ codes_flag $ strict $ config_term)
