(* sanids sensor / aggregate: the federated cluster's two roles.

   A sensor is the serve daemon plus a shipping sidecar: it runs the
   usual engine over its traffic shard (same flags, same control
   socket) and ships periodic snapshot deltas to the aggregator
   at-least-once, journaling them to a spool directory until acked.
   The aggregator listens on the same control plane, dedups the delta
   streams into one exact cluster view, and runs the failure detector
   over sensor liveness. *)

open Sanids
open Cmdliner
open Cli_common

let backoff_conv =
  conv_of_parser ~parse:Backoff.of_string ~print:Backoff.to_string

let channel_fault_conv =
  conv_of_parser ~parse:Cluster_fault.of_string ~print:Cluster_fault.to_string

let backoff_arg =
  Arg.(value & opt backoff_conv Backoff.default
       & info [ "backoff" ] ~docv:"SPEC"
           ~doc:"Retry policy for every aggregator-channel edge: \
                 $(b,base=0.05,factor=2,cap=2,jitter=0.5,timeout=5) (any \
                 subset of keys over the default).")

let sensor_cmd =
  let source_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SOURCE"
           ~doc:"Packet source, as for $(b,sanids serve): a pcap file, a \
                 FIFO, or a spool directory of captures.")
  in
  let id_arg =
    Arg.(required & opt (some string) None & info [ "id" ] ~docv:"NAME"
           ~doc:"Sensor identity on the cluster wire ([A-Za-z0-9_.-]+, \
                 at most 64 bytes).  Epoch and sequence numbers are \
                 scoped to it.")
  in
  let aggregator_socket =
    Arg.(value & opt (some string) None
         & info [ "aggregator-socket" ] ~docv:"PATH"
             ~doc:"The aggregator's Unix-domain socket.")
  in
  let aggregator_port =
    Arg.(value & opt (some int) None
         & info [ "aggregator-port" ] ~docv:"PORT"
             ~doc:"The aggregator's loopback TCP port (alternative to \
                   $(b,--aggregator-socket)).")
  in
  let spool_arg =
    Arg.(required & opt (some string) None & info [ "spool" ] ~docv:"DIR"
           ~doc:"Crash journal directory: unacked deltas and the \
                 incarnation epoch live here; respawning over the same \
                 directory replays them losslessly.")
  in
  let config_file =
    Arg.(value & opt (some file) None & info [ "config-file" ] ~docv:"FILE"
           ~doc:"key=value configuration applied over the flags; re-read \
                 and re-linted on every reload.")
  in
  let rules_file =
    Arg.(value & opt (some file) None & info [ "rules" ] ~docv:"FILE"
           ~doc:"Snort-style rule file linted as part of the reload gate.")
  in
  let ship_every =
    Arg.(value & opt float 1.0 & info [ "ship-every" ] ~docv:"SECONDS"
           ~doc:"Interval between snapshot-delta cuts shipped to the \
                 aggregator.")
  in
  let connect_timeout =
    Arg.(value & opt float 10.0 & info [ "connect-timeout" ] ~docv:"SECONDS"
           ~doc:"How long the startup probe chases the aggregator before \
                 failing with EX_UNAVAILABLE.")
  in
  let heartbeat_every =
    Arg.(value & opt float 1.0 & info [ "heartbeat-every" ] ~docv:"SECONDS"
           ~doc:"Quiet-channel heartbeat interval (0 disables).")
  in
  let channel_fault =
    Arg.(value & opt channel_fault_conv []
         & info [ "channel-fault" ] ~docv:"SPEC"
             ~doc:"Test-only delivery faults on the delta channel: \
                   $(b,drop=P,dup=P,delay=P,reorder=P,truncate=P).  The \
                   view stays exact regardless - that is the point.")
  in
  let fault_seed =
    Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N"
           ~doc:"Seed for --channel-fault rolls and retry jitter.")
  in
  let flush_timeout =
    Arg.(value & opt (some float) None
         & info [ "flush-timeout" ] ~docv:"SECONDS"
             ~doc:"How long the post-drain flush may chase acks before \
                   exiting with the rest journaled for replay (default: \
                   wait forever).")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains for the engine.")
  in
  let run source build_cfg config_file rules_file id aggregator_socket
      aggregator_port spool ship_every backoff connect_timeout heartbeat_every
      channel_fault fault_seed flush_timeout socket port domains verbose =
    setup_logs verbose;
    let aggregator =
      match Cmd_serve.listen_of aggregator_socket aggregator_port with
      | Some l -> l
      | None ->
          Printf.eprintf
            "sanids sensor: --aggregator-socket or --aggregator-port is \
             required\n";
          exit exit_usage
    in
    let options =
      {
        Sensor.sensor_id = id;
        aggregator;
        spool_dir = spool;
        serve =
          {
            Serve.default_options with
            Serve.source;
            base = build_cfg Config.default;
            config_file;
            rules_file;
            listen = Cmd_serve.listen_of socket port;
            domains;
          };
        ship_every;
        backoff;
        connect_timeout;
        heartbeat_every;
        channel_fault;
        fault_seed = Int64.of_int fault_seed;
        flush_timeout;
      }
    in
    match Sensor.run options with
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "sanids sensor: %s\n" (Sensor.error_to_string e);
        exit
          (match e with
          | Sensor.Invalid_id _ -> exit_usage
          | Sensor.Unreachable _ | Sensor.Flush_timeout _ -> exit_unavailable
          | Sensor.Spool_error _ -> exit_software
          | Sensor.Serve_error se -> (
              match se with
              | Serve.Config_rejected _ -> exit_dataerr
              | Serve.Source_error _ -> exit_noinput
              | Serve.Socket_error _ -> exit_unavailable
              | Serve.Reconciliation_mismatch -> exit_software))
  in
  Cmd.v
    (Cmd.info "sensor"
       ~doc:"Run a federated sensor: the serve engine over a traffic \
             shard, shipping snapshot deltas to an aggregator \
             at-least-once with a crash journal and heartbeats.")
    Term.(
      const run $ source_arg $ config_term $ config_file $ rules_file $ id_arg
      $ aggregator_socket $ aggregator_port $ spool_arg $ ship_every
      $ backoff_arg $ connect_timeout $ heartbeat_every $ channel_fault
      $ fault_seed $ flush_timeout $ Cmd_serve.socket_arg $ Cmd_serve.port_arg
      $ domains $ verbose_arg)

let aggregate_cmd =
  let suspect_after =
    Arg.(value & opt float Cluster_detector.default_config.Cluster_detector.suspect_after
         & info [ "suspect-after" ] ~docv:"SECONDS"
             ~doc:"Silence before a sensor is marked suspect.")
  in
  let dead_after =
    Arg.(value & opt float Cluster_detector.default_config.Cluster_detector.dead_after
         & info [ "dead-after" ] ~docv:"SECONDS"
             ~doc:"Silence before a sensor is marked dead.")
  in
  let tick_every =
    Arg.(value & opt float 0.2 & info [ "tick-every" ] ~docv:"SECONDS"
           ~doc:"Failure-detector tick interval.")
  in
  let run socket port suspect_after dead_after tick_every verbose =
    setup_logs verbose;
    let listen =
      match Cmd_serve.listen_of socket port with
      | Some l -> l
      | None ->
          Printf.eprintf "sanids aggregate: --socket or --port is required\n";
          exit exit_usage
    in
    let detector =
      match
        Cluster_detector.validate
          { Cluster_detector.suspect_after; dead_after }
      with
      | Ok d -> d
      | Error m ->
          Printf.eprintf "sanids aggregate: %s\n" m;
          exit exit_usage
    in
    let options =
      { Aggregator.default_options with Aggregator.listen; detector; tick_every }
    in
    match Aggregator.run options with
    | Ok () -> ()
    | Error m ->
        Printf.eprintf "sanids aggregate: %s\n" m;
        exit exit_unavailable
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:"Run the cluster aggregator: dedup every sensor's delta \
             stream into one exact cluster view, detect failed sensors, \
             and serve the merged metrics.")
    Term.(
      const run $ Cmd_serve.socket_arg $ Cmd_serve.port_arg $ suspect_after
      $ dead_after $ tick_every $ verbose_arg)
