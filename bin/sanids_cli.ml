(* The sanids command-line tool.

     sanids scan capture.pcap --honeypot 10.0.0.9 --unused 10.9.0.0/16
     sanids gen-trace out.pcap --kind codered --packets 20000 --seed 7
     sanids gen-exploit --shellcode classic --polymorphic -o exploit.bin
     sanids disasm exploit.bin
     sanids match exploit.bin
     sanids templates
     sanids corpus
*)

open Sanids
open Cmdliner

(* BSD sysexits-style codes, cram-tested: bad flags or configuration are
   the caller's fault (64), a capture the decoder rejects is bad data
   (65), anything unexpected is ours (70). *)
let exit_usage = 64
let exit_dataerr = 65
let exit_software = 70

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log classification and alerts as they happen.")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ------------------------------------------------------------------ *)
(* common argument converters *)

let ipaddr_conv =
  let parse s =
    match Ipaddr.of_string_opt s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "bad IPv4 address %S" s))
  in
  Arg.conv (parse, fun ppf a -> Format.fprintf ppf "%s" (Ipaddr.to_string a))

let prefix_conv =
  let parse s =
    match Ipaddr.prefix_of_string_opt s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "bad prefix %S (want a.b.c.d/len)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.fprintf ppf "%s" (Ipaddr.prefix_to_string p))

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Deterministic RNG seed.")

let fault_conv =
  let parse s =
    match Fault.of_string s with Ok t -> Ok t | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf t -> Format.pp_print_string ppf (Fault.to_string t))

let budget_conv =
  let parse s =
    match Budget.limits_of_string s with Ok l -> Ok l | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (Budget.limits_to_string l))

let breaker_conv =
  let parse s =
    match Breaker.config_of_string s with Ok c -> Ok c | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf c -> Format.pp_print_string ppf (Breaker.config_to_string c))

let policy_conv =
  let parse s =
    match Bqueue.policy_of_string_result s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Bqueue.policy_to_string p))

(* ------------------------------------------------------------------ *)
(* sanids scan *)

let scan_cmd =
  let pcap_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CAPTURE.pcap")
  in
  let honeypots =
    Arg.(value & opt_all ipaddr_conv [] & info [ "honeypot" ] ~docv:"IP"
           ~doc:"Register a honeypot decoy address (repeatable).")
  in
  let unused =
    Arg.(value & opt_all prefix_conv [] & info [ "unused" ] ~docv:"CIDR"
           ~doc:"Declare unused address space for scan detection (repeatable).")
  in
  let no_classify =
    Arg.(value & flag & info [ "no-classify" ]
           ~doc:"Disable classification: analyze every payload (the paper's \
                 false-positive-run configuration).")
  in
  let no_extract =
    Arg.(value & flag & info [ "no-extract" ]
           ~doc:"Disable binary extraction: hand whole payloads to the \
                 disassembler (reference-[5] style).")
  in
  let scan_threshold =
    Arg.(value & opt int Config.default.Config.scan_threshold
         & info [ "scan-threshold" ] ~docv:"N"
             ~doc:"Distinct unused addresses before a source is flagged.")
  in
  let verdict_cache =
    Arg.(value & opt int Config.default.Config.verdict_cache_size
         & info [ "verdict-cache" ] ~docv:"N"
             ~doc:"Verdict cache capacity (0 disables).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the final metrics snapshot as Prometheus text \
                 exposition to $(docv).")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write stage spans as JSONL trace events to $(docv).")
  in
  let trace_sample =
    Arg.(value & opt int 1 & info [ "trace-sample" ] ~docv:"N"
           ~doc:"Emit every N-th span (with --trace).")
  in
  let fault =
    Arg.(value & opt (some fault_conv) None & info [ "fault" ] ~docv:"SPEC"
           ~doc:"Corrupt the capture before analysis, e.g. \
                 $(b,truncate=0.1,bitflip=0.05,dup=0.01,reorder=0.2,garbage=0.02) \
                 - resilience drills against the typed ingest boundary.")
  in
  let fault_seed =
    Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N"
           ~doc:"RNG seed for --fault (same spec and seed replay the same \
                 corruption).")
  in
  let stream =
    Arg.(value & flag & info [ "stream" ]
           ~doc:"Process the capture through the multicore stream pipeline \
                 (bounded admission queues, load shedding per \
                 --drop-policy).")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains for --stream (default: the machine's \
                 recommended count, capped at 8).")
  in
  let queue =
    Arg.(value & opt int Config.default.Config.stream_queue_capacity
         & info [ "queue" ] ~docv:"N"
             ~doc:"Per-worker admission queue capacity for --stream.")
  in
  let drop_policy =
    Arg.(value & opt policy_conv Config.default.Config.stream_drop_policy
         & info [ "drop-policy" ] ~docv:"POLICY"
             ~doc:"Full-queue behaviour for --stream: $(b,block) (lossless \
                   backpressure), $(b,drop_newest) or $(b,drop_oldest); \
                   shed packets are counted as sanids_shed_total.")
  in
  let budget =
    Arg.(value & opt (some budget_conv) None & info [ "budget" ] ~docv:"SPEC"
           ~doc:"Per-packet analysis work budget: $(b,default) or \
                 $(b,bytes=N,insns=N,steps=N,deadline=S) - the \
                 adversarial-load ceiling on extraction, disassembly and \
                 matching.  Truncated analyses are counted as \
                 sanids_budget_truncated_total.")
  in
  let breaker =
    Arg.(value & opt (some breaker_conv) None & info [ "breaker" ] ~docv:"SPEC"
           ~doc:"Per-template circuit breaker: $(b,default) or \
                 $(b,fails=N,cooldown=N,max=N) (cooldowns counted in \
                 analyzed packets).  Open transitions are counted as \
                 sanids_breaker_open_total.")
  in
  let degrade =
    Arg.(value & flag & info [ "degrade" ]
           ~doc:"When analysis is budget-truncated or templates are held \
                 open by the breaker, fall back to the cheap baseline \
                 pattern pass instead of silently reporting less; degraded \
                 alerts carry a [degraded] marker and \
                 sanids_degraded_total counts the fallbacks.")
  in
  let run path honeypots unused no_classify no_extract scan_threshold
      verdict_cache budget breaker degrade fault fault_seed stream domains
      queue drop_policy metrics_out trace_out trace_sample verbose =
    setup_logs verbose;
    let cfg =
      Config.default |> Config.with_honeypots honeypots
      |> Config.with_unused unused
      |> Config.with_classification (not no_classify)
      |> Config.with_extraction (not no_extract)
      |> Config.with_scan_threshold scan_threshold
      |> Config.with_verdict_cache verdict_cache
      |> Config.with_budget budget
      |> Config.with_breaker breaker
      |> Config.with_degrade degrade
      |> Config.with_stream_queue queue
      |> Config.with_stream_policy drop_policy
    in
    match Config.validate cfg with
    | Error msg ->
        Printf.eprintf "sanids scan: invalid configuration: %s\n" msg;
        exit exit_usage
    | Ok cfg -> (
        if trace_sample <= 0 then begin
          Printf.eprintf "sanids scan: --trace-sample must be positive (got %d)\n"
            trace_sample;
          exit exit_usage
        end;
        (* all decoding goes through the typed ingest boundary: framing
           faults are fatal bad data (65), per-record faults are counted
           and skipped, and the ingest counters join the exported
           snapshot so records_in reconciles with packets + errors +
           shed *)
        let ingest_reg = Obs.Registry.create () in
        let ing = Ingest.metrics ingest_reg in
        match Ingest.decode_file ~metrics:ing (read_file path) with
        | Error e ->
            Printf.eprintf "sanids scan: %s: %s\n" path (Ingest.error_to_string e);
            exit exit_dataerr
        | Ok capture ->
            let capture =
              match fault with
              | None -> capture
              | Some plan -> Fault.file ~seed:(Int64.of_int fault_seed) plan capture
            in
            let packets = Ingest.ok_packets ~metrics:ing capture in
            let snap, help_regs, no_alerts =
              if stream then begin
                if trace_out <> None then
                  Printf.eprintf "sanids scan: --trace is ignored with --stream\n";
                let count = ref 0 in
                let snap =
                  Parallel.process_seq_snapshot ?domains cfg (List.to_seq packets)
                    (fun alerts ->
                      List.iter
                        (fun a ->
                          incr count;
                          print_endline (Alert.to_line a))
                        alerts)
                in
                (snap, [ ingest_reg ], !count = 0)
              end
              else begin
                let trace_oc = Option.map open_out trace_out in
                let tracer =
                  Option.map (Obs.Span.tracer ~sample:trace_sample) trace_oc
                in
                let nids = Pipeline.create ?tracer cfg in
                let alerts = Pipeline.process_packets nids packets in
                List.iter (fun a -> print_endline (Alert.to_line a)) alerts;
                (match tracer with Some t -> Obs.Span.flush t | None -> ());
                Option.iter close_out trace_oc;
                (Pipeline.snapshot nids, [ Pipeline.registry nids; ingest_reg ],
                 alerts = [])
              end
            in
            let snap = Obs.Snapshot.merge snap (Obs.Registry.snapshot ingest_reg) in
            Format.printf "%a@." Stats.pp (Stats.of_snapshot snap);
            (match metrics_out with
            | Some file ->
                let help n =
                  List.find_map (fun r -> Obs.Registry.help r n) help_regs
                in
                Obs.Export.write_file file (Obs.Export.to_prometheus ~help snap)
            | None -> ());
            if no_alerts then print_endline "no alerts")
  in
  Cmd.v
    (Cmd.info "scan" ~doc:"Run the semantics-aware NIDS over a pcap capture.")
    Term.(
      const run $ pcap_arg $ honeypots $ unused $ no_classify $ no_extract
      $ scan_threshold $ verdict_cache $ budget $ breaker $ degrade $ fault
      $ fault_seed $ stream $ domains $ queue $ drop_policy $ metrics_out
      $ trace_out $ trace_sample $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* sanids gen-trace *)

let gen_trace_cmd =
  let out_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.pcap") in
  let kind =
    Arg.(value
         & opt
             (enum
                [
                  ("benign", `Benign); ("codered", `Codered);
                  ("adversarial", `Adversarial);
                ])
             `Benign
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Trace kind: benign, codered or adversarial \
                   (algorithmic-complexity bombs for the hardening drills).")
  in
  let packets =
    Arg.(value & opt int 10_000 & info [ "packets" ] ~docv:"N" ~doc:"Benign packet count.")
  in
  let instances =
    Arg.(value & opt int 3 & info [ "instances" ] ~docv:"N"
           ~doc:"Code Red II instances (codered kind).")
  in
  let adv_kind =
    let parse s =
      match Adversarial.kind_of_string s with
      | Some k -> Ok k
      | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "bad adversarial kind %S (want \
                   unicode_bomb|repetition_bomb|jmp_maze|garbage_x86|mixed)"
                  s))
    in
    Arg.(value
         & opt
             (conv (parse, fun ppf k ->
                  Format.pp_print_string ppf (Adversarial.kind_to_string k)))
             Adversarial.Mixed
         & info [ "adv-kind" ] ~docv:"KIND"
             ~doc:"Payload family for the adversarial kind: \
                   $(b,unicode_bomb), $(b,repetition_bomb), $(b,jmp_maze), \
                   $(b,garbage_x86) or $(b,mixed).")
  in
  let payload_size =
    Arg.(value & opt int 8192 & info [ "payload-size" ] ~docv:"BYTES"
           ~doc:"Approximate payload size for the adversarial kind.")
  in
  let run out kind packets instances adv_kind payload_size seed =
    let rng = Rng.create (Int64.of_int seed) in
    let clients = Ipaddr.prefix_of_string "10.1.0.0/16" in
    let servers = Ipaddr.prefix_of_string "10.2.0.0/16" in
    let unused = Ipaddr.prefix_of_string "10.2.200.0/21" in
    let pkts =
      match kind with
      | `Benign -> Benign_gen.packets rng ~n:packets ~t0:0.0 ~clients ~servers
      | `Codered ->
          let pkts, truth =
            Worm_gen.code_red_trace rng ~benign:packets ~instances
              ~scans_per_instance:6 ~clients ~servers ~unused ~duration:300.0
          in
          Printf.printf
            "ground truth: %d packets, %d CRII instances, %d scans (unused space: %s)\n"
            truth.Worm_gen.total_packets truth.Worm_gen.crii_instances
            truth.Worm_gen.scan_packets
            (Ipaddr.prefix_to_string unused);
          pkts
      | `Adversarial ->
          Adversarial.packets ~kind:adv_kind ~size:payload_size rng ~n:packets
            ~t0:0.0 ~clients ~servers
    in
    Pcap.write_file out (Pcap.of_packets pkts);
    Printf.printf "wrote %s (%d packets)\n" out (List.length pkts)
  in
  Cmd.v
    (Cmd.info "gen-trace"
       ~doc:"Synthesize a seeded pcap trace (benign, worm outbreak or \
             adversarial load).")
    Term.(const run $ out_arg $ kind $ packets $ instances $ adv_kind
          $ payload_size $ seed_arg)

(* ------------------------------------------------------------------ *)
(* sanids gen-exploit *)

let gen_exploit_cmd =
  let sc_name =
    Arg.(value & opt string "classic" & info [ "shellcode" ] ~docv:"NAME"
           ~doc:"Shellcode from the corpus (see $(b,sanids corpus)).")
  in
  let polymorphic =
    Arg.(value & flag & info [ "polymorphic" ]
           ~doc:"Wrap the shellcode with the ADMmutate-style engine.")
  in
  let clet = Arg.(value & flag & info [ "clet" ] ~doc:"Use the Clet-style engine.") in
  let staged =
    Arg.(value & flag & info [ "staged" ]
           ~doc:"Double-encode: the decoder decodes a second decoder.")
  in
  let http =
    Arg.(value & flag & info [ "http" ] ~doc:"Embed in an HTTP overflow request.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (default: hexdump to stdout).")
  in
  let run sc_name polymorphic clet staged http out seed =
    match Shellcodes.find sc_name with
    | exception Not_found ->
        Printf.eprintf "unknown shellcode %S; see `sanids corpus`\n" sc_name;
        exit 2
    | entry ->
        let rng = Rng.create (Int64.of_int seed) in
        let code =
          if staged then
            (Admmutate.generate_staged ~stages:2 rng ~payload:entry.Shellcodes.code)
              .Admmutate.code
          else if clet then (Clet.generate rng ~payload:entry.Shellcodes.code).Clet.code
          else if polymorphic then
            (Admmutate.generate rng ~payload:entry.Shellcodes.code).Admmutate.code
          else entry.Shellcodes.code
        in
        let data =
          if http then Exploit_gen.http_exploit rng ~shellcode:code else code
        in
        (match out with
        | Some path ->
            write_file path data;
            Printf.printf "wrote %s (%d bytes)\n" path (String.length data)
        | None -> print_endline (Hexdump.to_string data))
  in
  Cmd.v
    (Cmd.info "gen-exploit" ~doc:"Emit a shellcode or exploit payload from the corpus.")
    Term.(const run $ sc_name $ polymorphic $ clet $ staged $ http $ out $ seed_arg)

(* ------------------------------------------------------------------ *)
(* sanids disasm / match *)

let file_pos = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let disasm_cmd =
  let run path =
    let code = read_file path in
    Array.iter
      (fun (d : Decode.decoded) ->
        Printf.printf "%04x: %s\n" d.Decode.off (Pretty.to_string d.Decode.insn))
      (Decode.all code)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Linear-sweep disassembly of a binary file.")
    Term.(const run $ file_pos)

let match_cmd =
  let run path =
    let code = read_file path in
    match Matcher.scan ~templates:Template_lib.default_set code with
    | [] ->
        print_endline "no template matches";
        exit 1
    | results ->
        List.iter
          (fun r -> Format.printf "%a@." Matcher.pp_result r)
          results
  in
  Cmd.v
    (Cmd.info "match" ~doc:"Run the semantic template matcher over a binary file.")
    Term.(const run $ file_pos)

let emulate_cmd =
  let max_steps =
    Arg.(value & opt int 100_000 & info [ "max-steps" ] ~docv:"N"
           ~doc:"Execution budget.")
  in
  let run path max_steps =
    let code = read_file path in
    let emu = Emulator.create ~code () in
    let rec drive budget syscalls =
      match Emulator.run ~max_steps:budget emu with
      | Emulator.Syscall n, steps ->
          Printf.printf
            "syscall int 0x%x after %d steps: eax=0x%lx ebx=0x%lx ecx=0x%lx edx=0x%lx\n"
            n (Emulator.steps_taken emu) (Emulator.reg emu Reg.EAX)
            (Emulator.reg emu Reg.EBX) (Emulator.reg emu Reg.ECX)
            (Emulator.reg emu Reg.EDX);
          if syscalls < 16 && budget - steps > 0 then begin
            (* fake a kernel return and continue *)
            Emulator.set_reg emu Reg.EAX 3l;
            drive (budget - steps) (syscalls + 1)
          end
          else Printf.printf "stopping after %d syscalls\n" (syscalls + 1)
      | Emulator.Halted m, _ ->
          Printf.printf "halted after %d steps: %s (eip=0x%lx)\n"
            (Emulator.steps_taken emu) m (Emulator.eip emu)
      | Emulator.Running, _ ->
          Printf.printf "still running after %d steps (eip=0x%lx)\n"
            (Emulator.steps_taken emu) (Emulator.eip emu)
    in
    drive max_steps 0
  in
  Cmd.v
    (Cmd.info "emulate"
       ~doc:"Execute a binary file in the sandboxed x86 interpreter and report \
             its syscalls - dynamic ground truth for what the code does.")
    Term.(const run $ file_pos $ max_steps)

let sig_scan_cmd =
  let rules_file =
    Arg.(value & opt (some file) None & info [ "rules" ] ~docv:"FILE"
           ~doc:"Snort-style rule file (default: the shipped ruleset).")
  in
  let run path rules_file =
    let text =
      match rules_file with Some f -> read_file f | None -> Rule.default_ruleset
    in
    let rules, errors = Rule.parse_many text in
    List.iter (fun (line, e) -> Printf.eprintf "rule line %d: %s\n" line e) errors;
    let engine = Rule.compile rules in
    Printf.printf "loaded %d rules\n" (List.length rules);
    let capture =
      match Pcap.decode (read_file path) with
      | Ok f -> f
      | Error m ->
          Printf.eprintf "sanids sig-scan: %s: %s\n" path m;
          exit exit_dataerr
    in
    let hits = ref 0 in
    List.iter
      (fun r ->
        match r with
        | Ok p ->
            List.iter
              (fun msg ->
                incr hits;
                Printf.printf "[%.3f] SIG %s %s -> %s\n" p.Packet.ts msg
                  (Ipaddr.to_string (Packet.src p))
                  (Ipaddr.to_string (Packet.dst p)))
              (Rule.match_packet engine p)
        | Error _ -> ())
      (Pcap.to_packets capture);
    if !hits = 0 then print_endline "no signature matches"
  in
  Cmd.v
    (Cmd.info "sig-scan"
       ~doc:"Run the Snort-style signature baseline over a pcap capture.")
    Term.(const run $ file_pos $ rules_file)

(* ------------------------------------------------------------------ *)
(* sanids lint *)

let lint_cmd =
  let templates_flag =
    Arg.(value & flag & info [ "templates" ]
           ~doc:"Lint the shipped semantic template library: per-template \
                 well-formedness, guard satisfiability over the abstract \
                 domain, and cross-template subsumption.")
  in
  let rules_file =
    Arg.(value & opt (some file) None & info [ "rules" ] ~docv:"FILE"
           ~doc:"Lint a Snort-style rule file (without any selection flag, \
                 the shipped ruleset is linted).")
  in
  let config_flag =
    Arg.(value & flag & info [ "config" ]
           ~doc:"Lint the configuration assembled from the configuration \
                 flags below.")
  in
  let trace_file =
    Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Junk diagnostics for a raw code file: trace it from offset \
                 0 and report the dead-write (junk) density the def-use \
                 analysis sees.")
  in
  let selftest =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Lint the embedded deliberately-defective corpus, \
                 demonstrating every finding code.")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("text", Lint.Text); ("json", Lint.Json) ]) Lint.Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,text) (findings plus a summary line) \
                   or $(b,json) (JSONL, one finding object per line).")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Fail (exit 65) on warnings as well as errors.")
  in
  let scan_threshold =
    Arg.(value & opt int Config.default.Config.scan_threshold
         & info [ "scan-threshold" ] ~docv:"N"
             ~doc:"Scan threshold for --config.")
  in
  let verdict_cache =
    Arg.(value & opt int Config.default.Config.verdict_cache_size
         & info [ "verdict-cache" ] ~docv:"N"
             ~doc:"Verdict cache capacity for --config.")
  in
  let queue =
    Arg.(value & opt int Config.default.Config.stream_queue_capacity
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission queue capacity for --config.")
  in
  let drop_policy =
    Arg.(value & opt policy_conv Config.default.Config.stream_drop_policy
         & info [ "drop-policy" ] ~docv:"POLICY"
             ~doc:"Stream drop policy for --config.")
  in
  let budget =
    Arg.(value & opt (some budget_conv) None & info [ "budget" ] ~docv:"SPEC"
           ~doc:"Analysis budget for --config.")
  in
  let breaker =
    Arg.(value & opt (some breaker_conv) None & info [ "breaker" ] ~docv:"SPEC"
           ~doc:"Circuit breaker for --config.")
  in
  let degrade =
    Arg.(value & flag & info [ "degrade" ] ~doc:"Degraded fallback for --config.")
  in
  let run templates_flag rules_file config_flag trace_file selftest format
      strict scan_threshold verdict_cache queue drop_policy budget breaker
      degrade =
    let none_selected =
      (not (templates_flag || config_flag || selftest))
      && rules_file = None && trace_file = None
    in
    let findings = ref [] in
    let add fs = findings := !findings @ fs in
    if selftest then add (Lint_selftest.findings ());
    if templates_flag || none_selected then
      add (Lint.templates Template_lib.default_set);
    (match rules_file with
    | Some f -> add (Lint.rules_text (read_file f))
    | None -> if none_selected then add (Lint.rules_text Rule.default_ruleset));
    if config_flag || none_selected then begin
      let cfg =
        Config.default
        |> Config.with_scan_threshold scan_threshold
        |> Config.with_verdict_cache verdict_cache
        |> Config.with_stream_queue queue
        |> Config.with_stream_policy drop_policy
        |> Config.with_budget budget
        |> Config.with_breaker breaker
        |> Config.with_degrade degrade
      in
      add (Config.lint cfg)
    end;
    (match trace_file with
    | Some f -> add (Trace_lint.lint ~subject:("trace:" ^ f) (read_file f))
    | None -> ());
    let findings = !findings in
    print_string (Lint.render format findings);
    (match format with
    | Lint.Text -> Printf.printf "lint: %s\n" (Finding.summary findings)
    | Lint.Json -> ());
    exit (Lint.exit_code ~strict findings)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze detector artifacts - semantic templates, \
             baseline rules, configuration - without running any traffic. \
             Exits 65 when findings fail the run.")
    Term.(
      const run $ templates_flag $ rules_file $ config_flag $ trace_file
      $ selftest $ format_arg $ strict $ scan_threshold $ verdict_cache
      $ queue $ drop_policy $ budget $ breaker $ degrade)

(* ------------------------------------------------------------------ *)
(* sanids templates / corpus *)

let templates_cmd =
  let run () =
    List.iter
      (fun (t : Template.t) ->
        Printf.printf "%-18s %s\n" t.Template.name t.Template.description)
      Template_lib.default_set
  in
  Cmd.v
    (Cmd.info "templates" ~doc:"List the shipped semantic templates.")
    Term.(const run $ const ())

let corpus_cmd =
  let run () =
    List.iter
      (fun (e : Shellcodes.entry) ->
        Printf.printf "%-12s %4d B  %s%s\n" e.Shellcodes.name
          (String.length e.Shellcodes.code)
          e.Shellcodes.description
          (if e.Shellcodes.binds_port then "  [binds port]" else ""))
      Shellcodes.all
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List the shell-spawning shellcode corpus.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "sanids" ~version:"1.0.0"
      ~doc:"Network intrusion detection with semantics-aware capability."
  in
  let group =
    Cmd.group info
      [
        scan_cmd; sig_scan_cmd; gen_trace_cmd; gen_exploit_cmd; disasm_cmd;
        match_cmd; emulate_cmd; lint_cmd;
        templates_cmd; corpus_cmd;
      ]
  in
  let code =
    try Cmd.eval ~catch:false ~term_err:exit_usage group with
    | Pcap.Malformed m ->
        (* belt and braces: every path should already go through the
           typed ingest boundary *)
        Printf.eprintf "sanids: malformed capture: %s\n" m;
        exit_dataerr
    | e ->
        Printf.eprintf "sanids: %s\n" (Printexc.to_string e);
        exit_software
  in
  (* cmdliner reports command-line parse errors as its own cli_error
     (124); fold them into the sysexits usage code *)
  exit (if code = Cmd.Exit.cli_error then exit_usage else code)
