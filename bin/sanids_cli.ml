(* The sanids command-line tool.

     sanids scan capture.pcap --honeypot 10.0.0.9 --unused 10.9.0.0/16
     sanids gen-trace out.pcap --kind codered --packets 20000 --seed 7
     sanids gen-exploit --shellcode classic --polymorphic -o exploit.bin
     sanids disasm exploit.bin
     sanids match exploit.bin
     sanids templates
     sanids corpus
*)

open Sanids
open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log classification and alerts as they happen.")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ------------------------------------------------------------------ *)
(* common argument converters *)

let ipaddr_conv =
  let parse s =
    match Ipaddr.of_string_opt s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "bad IPv4 address %S" s))
  in
  Arg.conv (parse, fun ppf a -> Format.fprintf ppf "%s" (Ipaddr.to_string a))

let prefix_conv =
  let parse s =
    match Ipaddr.prefix_of_string s with
    | p -> Ok p
    | exception _ -> Error (`Msg (Printf.sprintf "bad prefix %S (want a.b.c.d/len)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.fprintf ppf "%s" (Ipaddr.prefix_to_string p))

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Deterministic RNG seed.")

(* ------------------------------------------------------------------ *)
(* sanids scan *)

let scan_cmd =
  let pcap_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CAPTURE.pcap")
  in
  let honeypots =
    Arg.(value & opt_all ipaddr_conv [] & info [ "honeypot" ] ~docv:"IP"
           ~doc:"Register a honeypot decoy address (repeatable).")
  in
  let unused =
    Arg.(value & opt_all prefix_conv [] & info [ "unused" ] ~docv:"CIDR"
           ~doc:"Declare unused address space for scan detection (repeatable).")
  in
  let no_classify =
    Arg.(value & flag & info [ "no-classify" ]
           ~doc:"Disable classification: analyze every payload (the paper's \
                 false-positive-run configuration).")
  in
  let no_extract =
    Arg.(value & flag & info [ "no-extract" ]
           ~doc:"Disable binary extraction: hand whole payloads to the \
                 disassembler (reference-[5] style).")
  in
  let scan_threshold =
    Arg.(value & opt int Config.default.Config.scan_threshold
         & info [ "scan-threshold" ] ~docv:"N"
             ~doc:"Distinct unused addresses before a source is flagged.")
  in
  let verdict_cache =
    Arg.(value & opt int Config.default.Config.verdict_cache_size
         & info [ "verdict-cache" ] ~docv:"N"
             ~doc:"Verdict cache capacity (0 disables).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the final metrics snapshot as Prometheus text \
                 exposition to $(docv).")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write stage spans as JSONL trace events to $(docv).")
  in
  let trace_sample =
    Arg.(value & opt int 1 & info [ "trace-sample" ] ~docv:"N"
           ~doc:"Emit every N-th span (with --trace).")
  in
  let run path honeypots unused no_classify no_extract scan_threshold
      verdict_cache metrics_out trace_out trace_sample verbose =
    setup_logs verbose;
    let cfg =
      Config.default |> Config.with_honeypots honeypots
      |> Config.with_unused unused
      |> Config.with_classification (not no_classify)
      |> Config.with_extraction (not no_extract)
      |> Config.with_scan_threshold scan_threshold
      |> Config.with_verdict_cache verdict_cache
    in
    match Config.validate cfg with
    | Error msg ->
        Printf.eprintf "sanids scan: invalid configuration: %s\n" msg;
        exit 2
    | Ok cfg ->
        if trace_sample <= 0 then begin
          Printf.eprintf "sanids scan: --trace-sample must be positive (got %d)\n"
            trace_sample;
          exit 2
        end;
        let trace_oc = Option.map open_out trace_out in
        let tracer =
          Option.map (Obs.Span.tracer ~sample:trace_sample) trace_oc
        in
        let nids = Pipeline.create ?tracer cfg in
        let capture = Pcap.read_file path in
        let alerts = Pipeline.process_pcap nids capture in
        List.iter (fun a -> print_endline (Alert.to_line a)) alerts;
        Format.printf "%a@." Stats.pp (Pipeline.stats nids);
        (match metrics_out with
        | Some file ->
            let reg = Pipeline.registry nids in
            Obs.Export.write_file file
              (Obs.Export.to_prometheus ~help:(Obs.Registry.help reg)
                 (Pipeline.snapshot nids))
        | None -> ());
        (match tracer with Some t -> Obs.Span.flush t | None -> ());
        Option.iter close_out trace_oc;
        if alerts = [] then print_endline "no alerts"
  in
  Cmd.v
    (Cmd.info "scan" ~doc:"Run the semantics-aware NIDS over a pcap capture.")
    Term.(
      const run $ pcap_arg $ honeypots $ unused $ no_classify $ no_extract
      $ scan_threshold $ verdict_cache $ metrics_out $ trace_out
      $ trace_sample $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* sanids gen-trace *)

let gen_trace_cmd =
  let out_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.pcap") in
  let kind =
    Arg.(value & opt (enum [ ("benign", `Benign); ("codered", `Codered) ]) `Benign
         & info [ "kind" ] ~docv:"KIND" ~doc:"Trace kind: benign or codered.")
  in
  let packets =
    Arg.(value & opt int 10_000 & info [ "packets" ] ~docv:"N" ~doc:"Benign packet count.")
  in
  let instances =
    Arg.(value & opt int 3 & info [ "instances" ] ~docv:"N"
           ~doc:"Code Red II instances (codered kind).")
  in
  let run out kind packets instances seed =
    let rng = Rng.create (Int64.of_int seed) in
    let clients = Ipaddr.prefix_of_string "10.1.0.0/16" in
    let servers = Ipaddr.prefix_of_string "10.2.0.0/16" in
    let unused = Ipaddr.prefix_of_string "10.2.200.0/21" in
    let pkts =
      match kind with
      | `Benign -> Benign_gen.packets rng ~n:packets ~t0:0.0 ~clients ~servers
      | `Codered ->
          let pkts, truth =
            Worm_gen.code_red_trace rng ~benign:packets ~instances
              ~scans_per_instance:6 ~clients ~servers ~unused ~duration:300.0
          in
          Printf.printf
            "ground truth: %d packets, %d CRII instances, %d scans (unused space: %s)\n"
            truth.Worm_gen.total_packets truth.Worm_gen.crii_instances
            truth.Worm_gen.scan_packets
            (Ipaddr.prefix_to_string unused);
          pkts
    in
    Pcap.write_file out (Pcap.of_packets pkts);
    Printf.printf "wrote %s (%d packets)\n" out (List.length pkts)
  in
  Cmd.v
    (Cmd.info "gen-trace" ~doc:"Synthesize a seeded pcap trace (benign or worm outbreak).")
    Term.(const run $ out_arg $ kind $ packets $ instances $ seed_arg)

(* ------------------------------------------------------------------ *)
(* sanids gen-exploit *)

let gen_exploit_cmd =
  let sc_name =
    Arg.(value & opt string "classic" & info [ "shellcode" ] ~docv:"NAME"
           ~doc:"Shellcode from the corpus (see $(b,sanids corpus)).")
  in
  let polymorphic =
    Arg.(value & flag & info [ "polymorphic" ]
           ~doc:"Wrap the shellcode with the ADMmutate-style engine.")
  in
  let clet = Arg.(value & flag & info [ "clet" ] ~doc:"Use the Clet-style engine.") in
  let staged =
    Arg.(value & flag & info [ "staged" ]
           ~doc:"Double-encode: the decoder decodes a second decoder.")
  in
  let http =
    Arg.(value & flag & info [ "http" ] ~doc:"Embed in an HTTP overflow request.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output file (default: hexdump to stdout).")
  in
  let run sc_name polymorphic clet staged http out seed =
    match Shellcodes.find sc_name with
    | exception Not_found ->
        Printf.eprintf "unknown shellcode %S; see `sanids corpus`\n" sc_name;
        exit 2
    | entry ->
        let rng = Rng.create (Int64.of_int seed) in
        let code =
          if staged then
            (Admmutate.generate_staged ~stages:2 rng ~payload:entry.Shellcodes.code)
              .Admmutate.code
          else if clet then (Clet.generate rng ~payload:entry.Shellcodes.code).Clet.code
          else if polymorphic then
            (Admmutate.generate rng ~payload:entry.Shellcodes.code).Admmutate.code
          else entry.Shellcodes.code
        in
        let data =
          if http then Exploit_gen.http_exploit rng ~shellcode:code else code
        in
        (match out with
        | Some path ->
            write_file path data;
            Printf.printf "wrote %s (%d bytes)\n" path (String.length data)
        | None -> print_endline (Hexdump.to_string data))
  in
  Cmd.v
    (Cmd.info "gen-exploit" ~doc:"Emit a shellcode or exploit payload from the corpus.")
    Term.(const run $ sc_name $ polymorphic $ clet $ staged $ http $ out $ seed_arg)

(* ------------------------------------------------------------------ *)
(* sanids disasm / match *)

let file_pos = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let disasm_cmd =
  let run path =
    let code = read_file path in
    Array.iter
      (fun (d : Decode.decoded) ->
        Printf.printf "%04x: %s\n" d.Decode.off (Pretty.to_string d.Decode.insn))
      (Decode.all code)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Linear-sweep disassembly of a binary file.")
    Term.(const run $ file_pos)

let match_cmd =
  let run path =
    let code = read_file path in
    match Matcher.scan ~templates:Template_lib.default_set code with
    | [] ->
        print_endline "no template matches";
        exit 1
    | results ->
        List.iter
          (fun r -> Format.printf "%a@." Matcher.pp_result r)
          results
  in
  Cmd.v
    (Cmd.info "match" ~doc:"Run the semantic template matcher over a binary file.")
    Term.(const run $ file_pos)

let emulate_cmd =
  let max_steps =
    Arg.(value & opt int 100_000 & info [ "max-steps" ] ~docv:"N"
           ~doc:"Execution budget.")
  in
  let run path max_steps =
    let code = read_file path in
    let emu = Emulator.create ~code () in
    let rec drive budget syscalls =
      match Emulator.run ~max_steps:budget emu with
      | Emulator.Syscall n, steps ->
          Printf.printf
            "syscall int 0x%x after %d steps: eax=0x%lx ebx=0x%lx ecx=0x%lx edx=0x%lx\n"
            n (Emulator.steps_taken emu) (Emulator.reg emu Reg.EAX)
            (Emulator.reg emu Reg.EBX) (Emulator.reg emu Reg.ECX)
            (Emulator.reg emu Reg.EDX);
          if syscalls < 16 && budget - steps > 0 then begin
            (* fake a kernel return and continue *)
            Emulator.set_reg emu Reg.EAX 3l;
            drive (budget - steps) (syscalls + 1)
          end
          else Printf.printf "stopping after %d syscalls\n" (syscalls + 1)
      | Emulator.Halted m, _ ->
          Printf.printf "halted after %d steps: %s (eip=0x%lx)\n"
            (Emulator.steps_taken emu) m (Emulator.eip emu)
      | Emulator.Running, _ ->
          Printf.printf "still running after %d steps (eip=0x%lx)\n"
            (Emulator.steps_taken emu) (Emulator.eip emu)
    in
    drive max_steps 0
  in
  Cmd.v
    (Cmd.info "emulate"
       ~doc:"Execute a binary file in the sandboxed x86 interpreter and report \
             its syscalls - dynamic ground truth for what the code does.")
    Term.(const run $ file_pos $ max_steps)

let sig_scan_cmd =
  let rules_file =
    Arg.(value & opt (some file) None & info [ "rules" ] ~docv:"FILE"
           ~doc:"Snort-style rule file (default: the shipped ruleset).")
  in
  let run path rules_file =
    let text =
      match rules_file with Some f -> read_file f | None -> Rule.default_ruleset
    in
    let rules, errors = Rule.parse_many text in
    List.iter (fun (line, e) -> Printf.eprintf "rule line %d: %s\n" line e) errors;
    let engine = Rule.compile rules in
    Printf.printf "loaded %d rules\n" (List.length rules);
    let capture = Pcap.read_file path in
    let hits = ref 0 in
    List.iter
      (fun r ->
        match r with
        | Ok p ->
            List.iter
              (fun msg ->
                incr hits;
                Printf.printf "[%.3f] SIG %s %s -> %s\n" p.Packet.ts msg
                  (Ipaddr.to_string (Packet.src p))
                  (Ipaddr.to_string (Packet.dst p)))
              (Rule.match_packet engine p)
        | Error _ -> ())
      (Pcap.to_packets capture);
    if !hits = 0 then print_endline "no signature matches"
  in
  Cmd.v
    (Cmd.info "sig-scan"
       ~doc:"Run the Snort-style signature baseline over a pcap capture.")
    Term.(const run $ file_pos $ rules_file)

(* ------------------------------------------------------------------ *)
(* sanids templates / corpus *)

let templates_cmd =
  let run () =
    List.iter
      (fun (t : Template.t) ->
        Printf.printf "%-18s %s\n" t.Template.name t.Template.description)
      Template_lib.default_set
  in
  Cmd.v
    (Cmd.info "templates" ~doc:"List the shipped semantic templates.")
    Term.(const run $ const ())

let corpus_cmd =
  let run () =
    List.iter
      (fun (e : Shellcodes.entry) ->
        Printf.printf "%-12s %4d B  %s%s\n" e.Shellcodes.name
          (String.length e.Shellcodes.code)
          e.Shellcodes.description
          (if e.Shellcodes.binds_port then "  [binds port]" else ""))
      Shellcodes.all
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List the shell-spawning shellcode corpus.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "sanids" ~version:"1.0.0"
      ~doc:"Network intrusion detection with semantics-aware capability."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            scan_cmd; sig_scan_cmd; gen_trace_cmd; gen_exploit_cmd; disasm_cmd;
            match_cmd; emulate_cmd;
            templates_cmd; corpus_cmd;
          ]))
