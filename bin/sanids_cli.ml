(* The sanids command-line tool.

     sanids scan capture.pcap --honeypot 10.0.0.9 --unused 10.9.0.0/16
     sanids serve spool/ --socket /run/sanids.sock --config-file sanids.conf
     sanids ctl metrics --socket /run/sanids.sock
     sanids gen-trace out.pcap --kind codered --packets 20000 --seed 7
     sanids gen-exploit --shellcode classic --polymorphic -o exploit.bin
     sanids disasm exploit.bin
     sanids match exploit.bin
     sanids templates
     sanids corpus

   Each subcommand lives in its own bin/cmd_*.ml module over the
   shared Cli_common combinators; this file is only the group and the
   top-level error discipline. *)

open Sanids
open Cmdliner

let () =
  let info =
    Cmd.info "sanids" ~version:"1.0.0"
      ~doc:"Network intrusion detection with semantics-aware capability."
  in
  let group =
    Cmd.group info
      [
        Cmd_scan.scan_cmd; Cmd_scan.sig_scan_cmd;
        Cmd_serve.serve_cmd; Cmd_serve.ctl_cmd;
        Cmd_cluster.sensor_cmd; Cmd_cluster.aggregate_cmd;
        Cmd_gen.gen_trace_cmd; Cmd_gen.gen_exploit_cmd; Cmd_gen.corpus_cmd;
        Cmd_tools.disasm_cmd; Cmd_tools.match_cmd; Cmd_tools.emulate_cmd;
        Cmd_tools.emu_test_cmd; Cmd_tools.templates_cmd;
        Cmd_lint.lint_cmd;
      ]
  in
  let code =
    try Cmd.eval ~catch:false ~term_err:Cli_common.exit_usage group with
    | Pcap.Malformed m ->
        (* belt and braces: every path should already go through the
           typed ingest boundary *)
        Printf.eprintf "sanids: malformed capture: %s\n" m;
        Cli_common.exit_dataerr
    | e ->
        Printf.eprintf "sanids: %s\n" (Printexc.to_string e);
        Cli_common.exit_software
  in
  (* cmdliner reports command-line parse errors as its own cli_error
     (124); fold them into the sysexits usage code *)
  exit (if code = Cmd.Exit.cli_error then Cli_common.exit_usage else code)
