(* Bench-trajectory checker: `check_bench.exe FRESH BASELINE`.

   Validates that FRESH (a just-emitted --json document) carries the
   sanids-bench/1 schema with every required key, then compares each
   workload's packets/sec against the committed BASELINE
   (BENCH_<pr>.json).  The tolerance is deliberately loose — CI boxes
   and dev laptops differ by integer factors — so only a large
   regression (fresh < 10% of baseline) fails.  Exit 0 clean, exit 1
   loud. *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("check_bench: " ^ m); exit 1) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with Sys_error m -> die "cannot read %s: %s" path m

(* String-scanning extraction: no JSON parser in the tree, and the
   emitter's key order is fixed, so ordered scanning is exact enough. *)

let find_from s pos sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go pos

let require s pos sub ~ctx =
  match find_from s pos sub with
  | Some p -> p
  | None -> die "missing %s in %s" sub ctx

let number_after s pos ~ctx =
  let n = String.length s in
  let rec skip i =
    if i < n && (s.[i] = ' ' || s.[i] = ':') then skip (i + 1) else i
  in
  let start = skip pos in
  let rec stop i =
    if
      i < n
      && (match s.[i] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false)
    then stop (i + 1)
    else i
  in
  let fin = stop start in
  if fin = start then die "no number after %s" ctx
  else
    match float_of_string_opt (String.sub s start (fin - start)) with
    | Some f -> f
    | None -> die "unparsable number after %s" ctx

let workload_pps doc ~file workload =
  let p = require doc 0 (Printf.sprintf "%S" workload) ~ctx:file in
  let p = require doc p "\"packets_per_sec\"" ~ctx:(file ^ "/" ^ workload) in
  number_after doc p ~ctx:(workload ^ ".packets_per_sec")

let workloads =
  [
    "outbreak_replay";
    "stream_shedding";
    "decode";
    "serve_steady_state";
    "confirm_overhead";
    "cluster_latency";
    "static_refute";
  ]

let validate_schema doc ~file =
  ignore (require doc 0 "\"schema\": \"sanids-bench/1\"" ~ctx:file);
  ignore (require doc 0 "\"pr\"" ~ctx:file);
  ignore (require doc 0 "\"workloads\"" ~ctx:file);
  List.iter (fun w -> ignore (require doc 0 (Printf.sprintf "%S" w) ~ctx:file)) workloads;
  (* per-stage quantiles must be present on the replay workload *)
  let p = require doc 0 "\"outbreak_replay\"" ~ctx:file in
  let p = require doc p "\"stages\"" ~ctx:(file ^ "/outbreak_replay") in
  List.fold_left
    (fun p stage ->
      let p = require doc p (Printf.sprintf "%S" stage) ~ctx:(file ^ "/stages") in
      let p = require doc p "\"p95_s\"" ~ctx:(file ^ "/stages/" ^ stage) in
      p)
    p
    [ "classify"; "extract"; "match"; "analyze" ]
  |> ignore;
  ignore (require doc 0 "\"minor_words_per_packet\"" ~ctx:file);
  (* the confirmation row must carry its outcome counts: a baseline
     where the decoder corpus stopped confirming is not a baseline *)
  let p = require doc 0 "\"confirm_overhead\"" ~ctx:file in
  let p = require doc p "\"confirmed\"" ~ctx:(file ^ "/confirm_overhead") in
  ignore (require doc p "\"refuted\"" ~ctx:(file ^ "/confirm_overhead"));
  (* the cluster row must carry both detection times: a baseline where
     federation stopped detecting (or was never compared against the
     monolith) is not a baseline *)
  let p = require doc 0 "\"cluster_latency\"" ~ctx:file in
  let p = require doc p "\"detect_s\"" ~ctx:(file ^ "/cluster_latency") in
  ignore (require doc p "\"detect_monolith_s\"" ~ctx:(file ^ "/cluster_latency"));
  (* the static-refutation row must carry its outcome counts and the
     avoided fraction: a baseline where decoys stopped skipping the
     emulator (or started refuting true decoders) is not a baseline *)
  let p = require doc 0 "\"static_refute\"" ~ctx:file in
  let p = require doc p "\"static_refuted\"" ~ctx:(file ^ "/static_refute") in
  ignore (require doc p "\"avoided_fraction\"" ~ctx:(file ^ "/static_refute"))

let () =
  (match Sys.argv with
  | [| _; _; _ |] -> ()
  | _ -> die "usage: check_bench FRESH.json BASELINE.json");
  let fresh_file = Sys.argv.(1) and base_file = Sys.argv.(2) in
  let fresh = read_file fresh_file and base = read_file base_file in
  validate_schema fresh ~file:fresh_file;
  validate_schema base ~file:base_file;
  let tolerance = 0.10 in
  let failures =
    List.filter_map
      (fun w ->
        let fpps = workload_pps fresh ~file:fresh_file w in
        let bpps = workload_pps base ~file:base_file w in
        Printf.printf "check_bench: %-16s fresh %10.0f pkt/s, baseline %10.0f pkt/s\n"
          w fpps bpps;
        if fpps < tolerance *. bpps then
          Some
            (Printf.sprintf "%s: %.0f pkt/s is below %.0f%% of baseline %.0f pkt/s"
               w fpps (100.0 *. tolerance) bpps)
        else None)
      workloads
  in
  match failures with
  | [] -> print_endline "check_bench: OK"
  | fs ->
      List.iter (fun f -> prerr_endline ("check_bench: REGRESSION " ^ f)) fs;
      exit 1
