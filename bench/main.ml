(* Benchmark harness: regenerates every table and measured result of the
   paper's evaluation (§5).  Run with `dune exec bench/main.exe`.

     --full          paper-scale workloads (Table 3 traces >200k packets,
                     month-scale false-positive corpus)
     --smoke         tiny workloads; every section runs in seconds, which
                     is what the `@bench-smoke` dune alias uses to catch
                     bench bit-rot (`dune build @bench-smoke`)
     --section NAME  run one section: table1 table2 table3 fp efficiency
                     baseline micro
     --json OUT      machine-readable mode: run the trajectory workloads
                     (outbreak replay, stream shedding, decode) and write
                     a sanids-bench/1 JSON document to OUT instead of the
                     text sections; combine with --smoke/--full for size
*)

let sections =
  [ "table1"; "table2"; "table3"; "fp"; "efficiency"; "baseline"; "ablation"; "containment"; "parallel"; "adversarial"; "micro" ]

let arg_value flag =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let () =
  let full = Array.exists (( = ) "--full") Sys.argv in
  let smoke = (not full) && Array.exists (( = ) "--smoke") Sys.argv in
  (match arg_value "--json" with
  | Some out ->
      let mode = if full then `Full else if smoke then `Smoke else `Quick in
      Bench_json.run ~mode ~out ();
      exit 0
  | None -> ());
  let selected = arg_value "--section" in
  let want name = match selected with None -> true | Some s -> s = name in
  (match selected with
  | Some s when not (List.mem s sections) ->
      Printf.eprintf "unknown section %S; available: %s\n" s (String.concat " " sections);
      exit 2
  | Some _ | None -> ());
  Printf.printf "sanids benchmark harness — %s mode\n"
    (if full then "full (paper-scale)"
     else if smoke then "smoke (bit-rot check)"
     else "quick");
  Printf.printf "(shapes, not absolute 2006 numbers, are the reproduction target)\n";
  let instances = if smoke then 4 else 100 in
  let packets_per_trace = if full then 200_000 else if smoke then 400 else 20_000 in
  let fp_packets = if full then 1_000_000 else if smoke then 400 else 50_000 in
  if want "table1" then Table1.run ();
  if want "table2" then Table2.run ~instances ();
  if want "table3" then Table3.run ~packets_per_trace ();
  if want "fp" then False_pos.run ~packets:fp_packets ();
  if want "efficiency" then
    if smoke then Efficiency.run ~outbreak:40 ~sled:96 ()
    else Efficiency.run ();
  if want "baseline" then Baseline_contrast.run ~instances ();
  if want "ablation" then Ablation.run ();
  if want "containment" then Containment_bench.run ();
  if want "parallel" then Parallel_bench.run ~packets:fp_packets ();
  if want "adversarial" then
    if smoke then Adversarial_bench.run ~packets:4 ~size:1024 ()
    else if full then Adversarial_bench.run ~packets:100 ~size:8192 ()
    else Adversarial_bench.run ();
  if want "micro" then Micro.run ~quota:(if smoke then 0.02 else 0.25) ();
  print_newline ()
