(* Machine-readable bench trajectory (`--json OUT`).

   Emits one stable JSON document per run — packets/sec on the
   outbreak-replay and stream-shedding workloads, per-stage latency
   quantiles read back from the pipeline's own obs histograms, and
   minor-heap allocation words/packet via [Gc.minor_words].  The
   committed BENCH_<pr>.json is the trajectory point this PR lands;
   check_bench.ml compares a fresh smoke run against it so a future
   change that tanks throughput fails `@bench-json` loudly instead of
   rotting silently in text output. *)

open Sanids_net
open Sanids_nids
open Sanids_exploits
module Obs = Sanids_obs
module Epidemic = Sanids_epidemic.Model

let schema = "sanids-bench/1"
let pr = 10

(* ------------------------------------------------------------------ *)
(* Minimal JSON emission: deterministic key order, fixed float format
   (%.6g keeps the file diffable without drowning it in noise). *)

let jfloat f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let jfield buf ~last name v =
  Buffer.add_string buf (Printf.sprintf "%S: %s%s" name v (if last then "" else ", "))

(* ------------------------------------------------------------------ *)

let stage_names = [ "classify"; "extract"; "match"; "analyze" ]

let stage_json snap name =
  let h = Obs.Snapshot.histogram snap ("sanids_stage_" ^ name ^ "_seconds") in
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  jfield buf ~last:false "count" (string_of_int (Obs.Histogram.count h));
  jfield buf ~last:false "mean_s" (jfloat (Obs.Histogram.mean h));
  jfield buf ~last:false "p50_s" (jfloat (Obs.Histogram.quantile h 0.5));
  jfield buf ~last:true "p95_s" (jfloat (Obs.Histogram.quantile h 0.95));
  Buffer.add_char buf '}';
  Buffer.contents buf

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Workload 1: outbreak replay.  The same few exploit payloads delivered
   over and over (classification off, verdict cache on) — the
   steady-state the zero-copy path is for. *)

let outbreak_variants rng =
  [|
    Exploit_gen.http_exploit rng
      ~shellcode:(Shellcodes.find "classic").Shellcodes.code;
    Code_red.request ();
    Iis_asp.request ();
    (Sanids_polymorph.Admmutate.generate rng
       ~payload:(Shellcodes.find "classic").Shellcodes.code)
      .Sanids_polymorph.Admmutate.code;
  |]

let outbreak_replay ~packets =
  let rng = Rng.create 0x0B0B0B0BL in
  let slices = Array.map Slice.of_string (outbreak_variants rng) in
  let nids = Pipeline.create (Config.default |> Config.with_classification false) in
  let alerts = ref 0 in
  let w0 = Gc.minor_words () in
  let (), dt =
    time (fun () ->
        for i = 0 to packets - 1 do
          let r =
            Pipeline.analyze_report_slice nids slices.(i mod Array.length slices)
          in
          alerts := !alerts + List.length r.Pipeline.verdicts
        done)
  in
  let words_per_packet = (Gc.minor_words () -. w0) /. float_of_int packets in
  let snap = Pipeline.snapshot nids in
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  jfield buf ~last:false "packets" (string_of_int packets);
  jfield buf ~last:false "alerts" (string_of_int !alerts);
  jfield buf ~last:false "seconds" (jfloat dt);
  jfield buf ~last:false "packets_per_sec"
    (jfloat (float_of_int packets /. Float.max dt 1e-9));
  jfield buf ~last:false "minor_words_per_packet" (jfloat words_per_packet);
  jfield buf ~last:true "stages"
    ("{"
    ^ String.concat ", "
        (List.map
           (fun s -> Printf.sprintf "%S: %s" s (stage_json snap s))
           stage_names)
    ^ "}");
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Workload 2: stream shedding.  Benign traffic through the parallel
   stream path — flow-hash sharding (classification off), batched
   admission, a small queue with a drop policy so shedding is
   exercised and counted. *)

let clients = Ipaddr.prefix_of_string "192.168.1.0/24"
let servers = Ipaddr.prefix_of_string "192.168.2.0/24"

let stream_shedding ~packets =
  let domains = min 4 (max 1 (Domain.recommended_domain_count ())) in
  let capacity = 256 in
  let policy = Bqueue.Drop_oldest in
  let cfg =
    Config.default
    |> Config.with_classification false
    |> Config.with_stream_queue capacity
    |> Config.with_stream_policy policy
  in
  let rng = Rng.create 0x5EED_CAFEL in
  let seq =
    Sanids_workload.Benign_gen.seq rng ~n:packets ~t0:0.0 ~clients ~servers
  in
  let alerts = ref 0 in
  let snap, dt =
    time (fun () ->
        Parallel.process_seq_snapshot ~domains cfg seq (fun al ->
            alerts := !alerts + List.length al))
  in
  let stats = Stats.of_snapshot snap in
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  jfield buf ~last:false "packets" (string_of_int packets);
  jfield buf ~last:false "domains" (string_of_int domains);
  jfield buf ~last:false "queue_capacity" (string_of_int capacity);
  jfield buf ~last:false "policy"
    (Printf.sprintf "%S" (Bqueue.policy_to_string policy));
  jfield buf ~last:false "processed" (string_of_int stats.Stats.packets);
  jfield buf ~last:false "shed" (string_of_int stats.Stats.shed);
  jfield buf ~last:false "alerts" (string_of_int !alerts);
  jfield buf ~last:false "seconds" (jfloat dt);
  jfield buf ~last:true "packets_per_sec"
    (jfloat (float_of_int packets /. Float.max dt 1e-9));
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Workload 3: pure decode.  pcap record -> Ethernet -> IPv4 -> TCP with
   nothing downstream — the layer the slice refactor rewrote, and the
   cleanest allocation number to track. *)

let decode_only ~packets =
  let rng = Rng.create 0xDEC0DEL in
  let pkts =
    Sanids_workload.Benign_gen.packets rng ~n:256 ~t0:0.0 ~clients ~servers
  in
  let records =
    Array.of_list
      (List.map
         (fun p ->
           let raw = Sanids_net.Ethernet.wrap_ipv4 (Packet.to_bytes p) in
           {
             Sanids_pcap.Pcap.ts = 0.0;
             orig_len = String.length raw;
             data = Slice.of_string raw;
           })
         pkts)
  in
  let n = Array.length records in
  let sink = ref 0 in
  let w0 = Gc.minor_words () in
  let (), dt =
    time (fun () ->
        for i = 0 to packets - 1 do
          match
            Sanids_ingest.Ingest.decode_record
              ~linktype:Sanids_pcap.Pcap.linktype_ethernet
              records.(i mod n)
          with
          | Ok p -> sink := !sink + Slice.length (Packet.payload p)
          | Error _ -> ()
        done)
  in
  let words_per_packet = (Gc.minor_words () -. w0) /. float_of_int packets in
  ignore !sink;
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  jfield buf ~last:false "packets" (string_of_int packets);
  jfield buf ~last:false "seconds" (jfloat dt);
  jfield buf ~last:false "packets_per_sec"
    (jfloat (float_of_int packets /. Float.max dt 1e-9));
  jfield buf ~last:true "minor_words_per_packet" (jfloat words_per_packet);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Workload 4: serve steady state.  The same benign stream, but through
   the whole daemon engine — feeder control polls, source framing,
   epoch retire, reconciliation — so the row prices the serving path's
   overhead against the bare stream number above. *)

let serve_steady_state ~packets =
  let domains = min 4 (max 1 (Domain.recommended_domain_count ())) in
  let rng = Rng.create 0x5E12_7EADL in
  let pkts =
    Sanids_workload.Benign_gen.packets rng ~n:packets ~t0:0.0 ~clients ~servers
  in
  let path = Filename.temp_file "sanids_bench_serve" ".pcap" in
  Sanids_pcap.Pcap.write_file path (Sanids_pcap.Pcap.of_packets pkts);
  let options =
    {
      Sanids_serve.Serve.default_options with
      source = path;
      base = Config.default |> Config.with_classification false;
      domains = Some domains;
      install_signals = false;
    }
  in
  let result, dt = time (fun () -> Sanids_serve.Serve.run options) in
  (try Sys.remove path with Sys_error _ -> ());
  let reconciled = match result with Ok () -> true | Error _ -> false in
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  jfield buf ~last:false "packets" (string_of_int packets);
  jfield buf ~last:false "domains" (string_of_int domains);
  jfield buf ~last:false "reconciled" (string_of_bool reconciled);
  jfield buf ~last:false "seconds" (jfloat dt);
  jfield buf ~last:true "packets_per_sec"
    (jfloat (float_of_int packets /. Float.max dt 1e-9));
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Workload 5: confirmation overhead.  A decoder corpus — ADMmutate in
   both families plus staged, and Clet — replayed through the pipeline
   with dynamic confirmation off, then on.  Every variant must confirm
   (the emulator re-executes the decoder and watches it run its own
   writes); the row prices the opt-in stage against the same scan
   without it.  The verdict cache admits confirmed analyses, so the
   steady-state cost is one emulation per distinct payload. *)

let confirm_variants = 16

let confirm_corpus rng =
  let payload = (Shellcodes.find "classic").Shellcodes.code in
  Array.init confirm_variants (fun i ->
      let code =
        match i mod 4 with
        | 0 ->
            (Sanids_polymorph.Admmutate.generate
               ~family:Sanids_polymorph.Admmutate.Xor_loop rng ~payload)
              .Sanids_polymorph.Admmutate.code
        | 1 ->
            (Sanids_polymorph.Admmutate.generate
               ~family:Sanids_polymorph.Admmutate.Alt_chain rng ~payload)
              .Sanids_polymorph.Admmutate.code
        | 2 ->
            (Sanids_polymorph.Admmutate.generate_staged rng ~payload)
              .Sanids_polymorph.Admmutate.code
        | _ -> (Sanids_polymorph.Clet.generate rng ~payload).Sanids_polymorph.Clet.code
      in
      Slice.of_string code)

let confirm_overhead ~packets =
  let rng = Rng.create 0xC0F1C0F1L in
  let slices = confirm_corpus rng in
  let scan cfg =
    let nids = Pipeline.create cfg in
    let alerts = ref 0 in
    let (), dt =
      time (fun () ->
          for i = 0 to packets - 1 do
            let r =
              Pipeline.analyze_report_slice nids slices.(i mod Array.length slices)
            in
            alerts := !alerts + List.length r.Pipeline.verdicts
          done)
    in
    (Stats.of_snapshot (Pipeline.snapshot nids), !alerts, dt)
  in
  let base = Config.default |> Config.with_classification false in
  let _, off_alerts, off_dt = scan base in
  let on_stats, on_alerts, on_dt =
    scan
      (base
      |> Config.with_confirm (Some Sanids_confirm.Confirm.default_config))
  in
  (* The acceptance bar, enforced where the number is produced: every
     ADMmutate/Clet decoder variant in the corpus must survive dynamic
     confirmation.  A refutation here is a detection regression, not a
     performance number. *)
  if on_stats.Stats.confirmed < confirm_variants then
    failwith
      (Printf.sprintf
         "confirm_overhead: only %d of %d decoder variants confirmed"
         on_stats.Stats.confirmed confirm_variants);
  if on_stats.Stats.refuted > 0 then
    failwith
      (Printf.sprintf "confirm_overhead: %d decoder variants refuted"
         on_stats.Stats.refuted);
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  jfield buf ~last:false "packets" (string_of_int packets);
  jfield buf ~last:false "variants" (string_of_int confirm_variants);
  jfield buf ~last:false "alerts_off" (string_of_int off_alerts);
  jfield buf ~last:false "alerts_on" (string_of_int on_alerts);
  jfield buf ~last:false "confirmed" (string_of_int on_stats.Stats.confirmed);
  jfield buf ~last:false "refuted" (string_of_int on_stats.Stats.refuted);
  jfield buf ~last:false "inconclusive"
    (string_of_int on_stats.Stats.confirm_inconclusive);
  jfield buf ~last:false "seconds_off" (jfloat off_dt);
  jfield buf ~last:false "packets_per_sec_off"
    (jfloat (float_of_int packets /. Float.max off_dt 1e-9));
  jfield buf ~last:false "seconds" (jfloat on_dt);
  jfield buf ~last:false "packets_per_sec"
    (jfloat (float_of_int packets /. Float.max on_dt 1e-9));
  jfield buf ~last:true "overhead_ratio"
    (jfloat (on_dt /. Float.max off_dt 1e-9));
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Workload 6: cluster detection latency.  A Code Red outbreak sharded
   across four federated sensors versus the same trace through one
   monolithic pipeline.  Each sensor cuts a snapshot delta per ship
   interval on the packet-timestamp clock; the cut crosses a seeded
   lossy channel (drops, duplicates, reorderings) through the pure
   at-least-once delivery model and folds through the aggregator's
   dedup.  Detection time is the first cut whose merged cluster view
   carries an alert.  The acceptance bar, enforced where the number is
   produced: federation must not detect later than the monolith —
   per-source sharding keeps each infected host on one sensor and the
   dedup view is exact after every cut, so a lossy channel may cost
   retries, never outbreaks.  The epidemic model prices the detection
   time: how many hosts the worm owns by then, and how far before the
   curve's knee the cluster reacts. *)

let cluster_shards = 4
let cluster_ship_every = 2.0

let cluster_epidemic =
  (* Code Red v2 ballpark: 360k vulnerable hosts, 10 probes/s each,
     one initial infection over the full IPv4 space. *)
  {
    Epidemic.population = 360_000;
    address_space = 4294967296.0;
    scan_rate = 10.0;
    initial = 1;
  }

let cluster_outbreak ~benign =
  let rng = Rng.create 0xC1057EL in
  let clients = Ipaddr.prefix_of_string "10.1.0.0/16" in
  let servers = Ipaddr.prefix_of_string "10.2.0.0/16" in
  let unused = Ipaddr.prefix_of_string "10.200.0.0/16" in
  let pkts, _truth =
    Sanids_workload.Worm_gen.code_red_trace rng ~benign ~instances:4
      ~scans_per_instance:6 ~clients ~servers ~unused ~duration:60.0
  in
  (pkts, Config.default |> Config.with_unused [ unused ])

(* Drive [shards] pipelines over the trace on the packet-ts clock,
   shipping every sensor's delta through the faulted channel at each
   cut and folding the aggregator's dedup; returns the first cut time
   whose merged view alerts. *)
let cluster_detect ~shards ~plan ~seed cfg pkts =
  let module C = Sanids_cluster in
  let pipes = Array.init shards (fun _ -> Pipeline.create cfg) in
  let last = Array.make shards Obs.Snapshot.empty in
  let seqs = Array.make shards 0 in
  let chan = Rng.create seed in
  let dedup = ref C.Dedup.empty in
  let detected = ref None in
  let cut at =
    let deltas =
      List.init shards (fun i ->
          let snap = Pipeline.snapshot pipes.(i) in
          let d = Obs.Snapshot.diff ~newer:snap ~older:last.(i) in
          last.(i) <- snap;
          seqs.(i) <- seqs.(i) + 1;
          {
            C.Delta.sensor = Printf.sprintf "s%d" i;
            epoch = 1;
            seq = seqs.(i);
            snapshot = d;
          })
    in
    List.iter
      (fun d -> dedup := fst (C.Dedup.apply !dedup d))
      (C.Fault.deliveries chan plan deltas);
    if
      !detected = None
      && Obs.Snapshot.counter_value (C.Dedup.view !dedup) "sanids_alerts_total"
         > 0
    then detected := Some at
  in
  let next = ref cluster_ship_every in
  List.iter
    (fun p ->
      while p.Packet.ts >= !next do
        cut !next;
        next := !next +. cluster_ship_every
      done;
      ignore
        (Pipeline.process_packet pipes.(Parallel.shard_of_packet cfg p ~shards) p))
    pkts;
  cut !next;
  !detected

let cluster_latency ~packets =
  let pkts, cfg = cluster_outbreak ~benign:packets in
  let n = List.length pkts in
  let plan =
    Sanids_cluster.Fault.of_string_exn "drop=0.3,dup=0.2,reorder=0.2"
  in
  let fed_detect, dt =
    time (fun () ->
        cluster_detect ~shards:cluster_shards ~plan ~seed:0xFA17EDL cfg pkts)
  in
  let mono_detect, _ =
    time (fun () -> cluster_detect ~shards:1 ~plan:[] ~seed:1L cfg pkts)
  in
  let fed, mono =
    match (fed_detect, mono_detect) with
    | Some f, Some m -> (f, m)
    | None, _ -> failwith "cluster_latency: federated cluster missed the outbreak"
    | _, None -> failwith "cluster_latency: monolithic baseline missed the outbreak"
  in
  if fed > mono +. 1e-9 then
    failwith
      (Printf.sprintf
         "cluster_latency: federated detection at %gs is later than \
          monolithic %gs"
         fed mono);
  let infected_at_detect = Epidemic.logistic cluster_epidemic fed in
  let knee_s =
    Epidemic.time_to_count cluster_epidemic (cluster_epidemic.Epidemic.population / 100)
  in
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  jfield buf ~last:false "packets" (string_of_int n);
  jfield buf ~last:false "shards" (string_of_int cluster_shards);
  jfield buf ~last:false "ship_every_s" (jfloat cluster_ship_every);
  jfield buf ~last:false "detect_s" (jfloat fed);
  jfield buf ~last:false "detect_monolith_s" (jfloat mono);
  jfield buf ~last:false "infected_at_detect" (jfloat infected_at_detect);
  jfield buf ~last:false "epidemic_knee_s" (jfloat knee_s);
  jfield buf ~last:false "seconds" (jfloat dt);
  jfield buf ~last:true "packets_per_sec"
    (jfloat (float_of_int n /. Float.max dt 1e-9));
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Workload 7: static refutation.  A mixed hit corpus — decoy decoders
   the semantic matcher flags but the emulator refutes (the designed
   false positive), interleaved with the true decoder corpus from the
   confirmation row — replayed through confirmation alone and then
   through confirmation with the abstract-interpretation pre-stage
   (`--static-refute`).  Refutations are never cached, so every decoy
   packet prices a full refutation path: emulation without the
   pre-stage, a static proof with it.  The acceptance bars, enforced
   where the number is produced: verdicts must be identical between the
   two configurations (same alerts, same confirmed count, nothing a
   true decoder loses), and at least half the decoy hits must skip the
   emulator. *)

let static_refute_decoys = 16

let static_refute ~packets =
  let rng = Rng.create 0xAB5112F7L in
  let decoys =
    Array.init static_refute_decoys (fun _ ->
        Slice.of_string
          (Sanids_workload.Adversarial.payload
             ~kind:Sanids_workload.Adversarial.Decoy_decoder ~size:2048 rng))
  in
  let decoders = confirm_corpus rng in
  (* interleave so both families are exercised at every cache state *)
  let slices =
    Array.init
      (Array.length decoys + Array.length decoders)
      (fun i ->
        if i mod 2 = 0 && i / 2 < Array.length decoys then decoys.(i / 2)
        else decoders.((i - 1) / 2 mod Array.length decoders))
  in
  (* count the verdicts the packet path would alert on: a refuted match
     — dynamically or statically — is demoted before alerting *)
  let alertable (v : Pipeline.verdict) =
    match v.Pipeline.confirmation with
    | Some
        ( Sanids_confirm.Confirm.Refuted _
        | Sanids_confirm.Confirm.Statically_refuted _ ) ->
        false
    | Some _ | None -> true
  in
  let scan cfg =
    let nids = Pipeline.create cfg in
    let alerts = ref 0 in
    let (), dt =
      time (fun () ->
          for i = 0 to packets - 1 do
            let r =
              Pipeline.analyze_report_slice nids slices.(i mod Array.length slices)
            in
            alerts :=
              !alerts + List.length (List.filter alertable r.Pipeline.verdicts)
          done)
    in
    (Stats.of_snapshot (Pipeline.snapshot nids), !alerts, dt)
  in
  let confirm_cfg =
    Config.default
    |> Config.with_classification false
    |> Config.with_confirm (Some Sanids_confirm.Confirm.default_config)
  in
  let off_stats, off_alerts, off_dt = scan confirm_cfg in
  let on_stats, on_alerts, on_dt =
    scan (confirm_cfg |> Config.with_static_refute true)
  in
  (* Verdict equivalence: the pre-stage may only change *how* a decoy
     is refuted, never *what* is alerted or confirmed. *)
  if on_alerts <> off_alerts then
    failwith
      (Printf.sprintf
         "static_refute: %d alerts with the pre-stage vs %d without"
         on_alerts off_alerts);
  if on_stats.Stats.confirmed <> off_stats.Stats.confirmed then
    failwith
      (Printf.sprintf
         "static_refute: %d confirmed with the pre-stage vs %d without"
         on_stats.Stats.confirmed off_stats.Stats.confirmed);
  let decoy_hits = on_stats.Stats.static_refuted + on_stats.Stats.refuted in
  let avoided =
    if decoy_hits = 0 then 0.0
    else float_of_int on_stats.Stats.static_refuted /. float_of_int decoy_hits
  in
  if decoy_hits = 0 then failwith "static_refute: no decoy ever hit the matcher";
  if avoided < 0.5 then
    failwith
      (Printf.sprintf
         "static_refute: only %d of %d decoy hits (%.0f%%) skipped the emulator"
         on_stats.Stats.static_refuted decoy_hits (100.0 *. avoided));
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  jfield buf ~last:false "packets" (string_of_int packets);
  jfield buf ~last:false "decoys" (string_of_int static_refute_decoys);
  jfield buf ~last:false "decoders" (string_of_int (Array.length decoders));
  jfield buf ~last:false "alerts_confirm" (string_of_int off_alerts);
  jfield buf ~last:false "alerts_static" (string_of_int on_alerts);
  jfield buf ~last:false "confirmed" (string_of_int on_stats.Stats.confirmed);
  jfield buf ~last:false "refuted" (string_of_int on_stats.Stats.refuted);
  jfield buf ~last:false "static_refuted"
    (string_of_int on_stats.Stats.static_refuted);
  jfield buf ~last:false "avoided_fraction" (jfloat avoided);
  jfield buf ~last:false "seconds_confirm" (jfloat off_dt);
  jfield buf ~last:false "packets_per_sec_confirm"
    (jfloat (float_of_int packets /. Float.max off_dt 1e-9));
  jfield buf ~last:false "seconds" (jfloat on_dt);
  jfield buf ~last:true "packets_per_sec"
    (jfloat (float_of_int packets /. Float.max on_dt 1e-9));
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let run ~mode ~out () =
  let replay_packets, stream_packets, decode_packets =
    match mode with
    | `Smoke -> (400, 2_000, 5_000)
    | `Quick -> (2_000, 20_000, 50_000)
    | `Full -> (10_000, 100_000, 200_000)
  in
  let mode_name =
    match mode with `Smoke -> "smoke" | `Quick -> "quick" | `Full -> "full"
  in
  Printf.printf "bench-json: outbreak replay (%d packets)...\n%!" replay_packets;
  let replay = outbreak_replay ~packets:replay_packets in
  Printf.printf "bench-json: stream shedding (%d packets)...\n%!" stream_packets;
  let stream = stream_shedding ~packets:stream_packets in
  Printf.printf "bench-json: decode (%d packets)...\n%!" decode_packets;
  let decode = decode_only ~packets:decode_packets in
  Printf.printf "bench-json: serve steady state (%d packets)...\n%!"
    stream_packets;
  let serve = serve_steady_state ~packets:stream_packets in
  Printf.printf "bench-json: confirm overhead (%d packets)...\n%!"
    replay_packets;
  let confirm = confirm_overhead ~packets:replay_packets in
  Printf.printf "bench-json: cluster latency (%d benign packets)...\n%!"
    replay_packets;
  let cluster = cluster_latency ~packets:replay_packets in
  Printf.printf "bench-json: static refutation (%d packets)...\n%!"
    replay_packets;
  let refute = static_refute ~packets:replay_packets in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": %S,\n" schema);
  Buffer.add_string buf (Printf.sprintf "  \"pr\": %d,\n" pr);
  Buffer.add_string buf (Printf.sprintf "  \"mode\": %S,\n" mode_name);
  Buffer.add_string buf "  \"workloads\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"outbreak_replay\": %s,\n" replay);
  Buffer.add_string buf (Printf.sprintf "    \"stream_shedding\": %s,\n" stream);
  Buffer.add_string buf (Printf.sprintf "    \"decode\": %s,\n" decode);
  Buffer.add_string buf
    (Printf.sprintf "    \"serve_steady_state\": %s,\n" serve);
  Buffer.add_string buf (Printf.sprintf "    \"confirm_overhead\": %s,\n" confirm);
  Buffer.add_string buf (Printf.sprintf "    \"cluster_latency\": %s,\n" cluster);
  Buffer.add_string buf (Printf.sprintf "    \"static_refute\": %s\n" refute);
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "bench-json: wrote %s\n%!" out
