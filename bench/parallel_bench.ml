(* Multicore scaling: the §5.4-style full-analysis workload fanned across
   OCaml 5 domains with per-source sharding.  Verdicts are identical to
   the sequential pipeline (tested); this section measures throughput. *)

open Sanids_net
open Sanids_nids

let clients = Ipaddr.prefix_of_string "192.168.1.0/24"
let servers = Ipaddr.prefix_of_string "192.168.2.0/24"

let run ~packets () =
  Bench_util.hr "Parallel scaling (classification disabled: every payload analyzed)";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  cores available: %d\n" cores;
  let sweep =
    List.filter (fun d -> d = 1 || d <= cores) [ 1; 2; 4; 8 ]
  in
  let packets = if cores = 1 then min packets 20_000 else packets in
  let rng = Rng.create 0x9A7A_BEC4L in
  let pkts =
    Sanids_workload.Benign_gen.packets rng ~n:packets ~t0:0.0 ~clients ~servers
  in
  let cfg = Config.default |> Config.with_classification false in
  let baseline = ref 0.0 in
  let rows =
    List.map
      (fun domains ->
        let (alerts, stats), dt =
          Bench_util.time (fun () -> Parallel.process ~domains cfg pkts)
        in
        if domains = 1 then baseline := dt;
        [
          string_of_int domains;
          Printf.sprintf "%.2f s" dt;
          Printf.sprintf "%.0f pkt/s" (float_of_int packets /. dt);
          (if domains = 1 then "1.0x" else Printf.sprintf "%.1fx" (!baseline /. dt));
          string_of_int (List.length alerts);
          string_of_int stats.Stats.frames;
        ])
      sweep
  in
  Bench_util.table
    [ "domains"; "wall time"; "throughput"; "speedup"; "alerts"; "frames" ]
    rows;
  Bench_util.note
    "per-source sharding keeps classifier semantics exact while the frame analysis parallelizes";
  if cores = 1 then
    Bench_util.note
      "this container exposes a single core: the sweep is capped at 1 domain (shard-equivalence is still exercised by the test suite)";
  (* stream mode: the same workload through bounded admission queues.
     Block is lossless backpressure; the drop policies shed (and count)
     what a small queue cannot absorb *)
  Bench_util.hr "Stream mode load shedding (bounded admission queues)";
  let domains = min 4 (max 1 cores) in
  let shed_rows =
    List.concat_map
      (fun policy ->
        List.map
          (fun capacity ->
            let cfg =
              cfg
              |> Config.with_stream_queue capacity
              |> Config.with_stream_policy policy
            in
            let stats, dt =
              Bench_util.time (fun () ->
                  Parallel.process_seq ~domains cfg (List.to_seq pkts) (fun _ -> ()))
            in
            [
              Bqueue.policy_to_string policy;
              string_of_int capacity;
              Printf.sprintf "%.2f s" dt;
              Printf.sprintf "%.0f pkt/s" (float_of_int packets /. dt);
              string_of_int stats.Stats.packets;
              string_of_int stats.Stats.shed;
            ])
          [ 64; 4096 ])
      [ Bqueue.Block; Bqueue.Drop_oldest ]
  in
  Bench_util.table
    [ "policy"; "queue"; "wall time"; "throughput"; "analyzed"; "shed" ]
    shed_rows;
  Bench_util.note
    "analyzed + shed = offered on every row; shedding bounds worker memory, not the workload"
