(* The motivation experiment (paper §1, its reference [4]): "effective
   containment may require a reaction time of well under sixty seconds".

   A Code-Red-class worm (uniform random scanning over the full IPv4
   space) spreads through a vulnerable population while NIDS sensors
   watching a fraction of the space flag scanners and quarantine them
   after a configurable reaction delay.  The sweep shows the containment
   cliff around the worm's characteristic time 1/beta. *)

open Sanids_epidemic

let epidemic =
  {
    Model.population = 360_000;  (* Code Red II vulnerable hosts *)
    address_space = 4294967296.0;
    scan_rate = 200.0;  (* probes/s: a fast CR-class strain *)
    initial = 25;
  }

let run () =
  Bench_util.hr "Containment: reaction time vs outcome (motivation, ref [4])";
  Printf.printf "  worm: n=%d vulnerable, %.0f probes/s, beta=%.4f/s (uncontained 50%% at %.0f s)\n"
    epidemic.Model.population epidemic.Model.scan_rate (Model.beta epidemic)
    (Model.time_to_fraction epidemic 0.5);
  let p =
    {
      Containment.epidemic;
      monitored_fraction = 0.05;
      threshold = 5;
      reaction_time = 0.0;
    }
  in
  let rng = Rng.create 0xC047A14L in
  let sweep =
    Containment.sweep_reaction_times rng p ~duration:7200.0
      [ 1.0; 10.0; 30.0; 60.0; 120.0; 300.0; 900.0; 3600.0 ]
  in
  Bench_util.table
    [ "reaction time"; "final infected"; "fraction"; "peak active"; "quarantined" ]
    (List.map
       (fun (r, (o : Containment.outcome)) ->
         [
           Printf.sprintf "%.0f s" r;
           string_of_int o.Containment.final_infected;
           Printf.sprintf "%.1f%%" (100.0 *. Containment.infected_fraction o epidemic);
           string_of_int o.Containment.peak_active;
           string_of_int o.Containment.quarantined;
         ])
       sweep);
  Bench_util.note
    "paper shape (via its ref [4]): containment collapses once the reaction delay approaches the worm's characteristic time — minutes are already too late"
