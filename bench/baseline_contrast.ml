(* Baseline contrast — the paper's motivating claim: syntactic
   pattern-matching IDSs (Snort-style signatures) catch the plain corpus
   but miss polymorphic variants, while semantic templates catch both.
   The PAYL-style statistical baseline is shown for context. *)

open Sanids_exploits
open Sanids_baseline

let run ~instances () =
  Bench_util.hr "Baseline contrast: signatures vs semantic templates";
  let rng = Rng.create 0x7AB1EBA5L in
  let payload = (Shellcodes.find "classic").Shellcodes.code in
  let plain = List.map (fun (e : Shellcodes.entry) -> e.Shellcodes.code) Shellcodes.all in
  let poly =
    List.init instances (fun _ ->
        (Sanids_polymorph.Admmutate.generate rng ~payload).Sanids_polymorph.Admmutate.code)
  in
  let sig_hits codes =
    List.length (List.filter (fun c -> Signatures.scan c <> None) codes)
  in
  (* raw code corpora are matched directly; protocol payloads run the real
     pipeline stages (extraction included, so unicode-encoded vectors are
     decoded before matching) *)
  let templates = Sanids_semantic.Template_lib.default_set in
  let sem_nids =
    Sanids_nids.Pipeline.create
      (Sanids_nids.Config.default |> Sanids_nids.Config.with_classification false)
  in
  let sem_hits_code codes =
    List.length
      (List.filter (fun c -> Sanids_semantic.Matcher.scan ~templates c <> []) codes)
  in
  let sem_hits_payload codes =
    List.length
      (List.filter (fun c -> Sanids_nids.Pipeline.analyze_payload sem_nids c <> []) codes)
  in
  let benign_corpus =
    List.init 400 (fun _ -> Sanids_workload.Benign_gen.payload rng)
  in
  let model = Payl.train benign_corpus in
  (* calibrate the anomaly threshold to the 99.5th percentile of held-out
     benign scores, the way PAYL-style detectors are deployed *)
  let holdout = List.init 400 (fun _ -> Sanids_workload.Benign_gen.payload rng) in
  let threshold =
    let sorted = List.sort compare (List.map (Payl.score model) holdout) in
    List.nth sorted (int_of_float (0.995 *. float_of_int (List.length sorted)))
  in
  let payl_hits codes =
    List.length (List.filter (fun c -> Payl.is_anomalous ~threshold model c) codes)
  in
  (* automatic signature generation (Autograph/Polygraph-style): train a
     signature per corpus on held-out instances of the same kind *)
  let crii_pool = List.init 20 (fun _ -> Sanids_exploits.Code_red.request ()) in
  let crii_sig = Siggen.infer crii_pool in
  let poly_pool =
    List.init 20 (fun _ ->
        (Sanids_polymorph.Admmutate.generate rng ~payload).Sanids_polymorph.Admmutate.code)
  in
  let poly_sig = Siggen.infer poly_pool in
  let auto_hits signature codes =
    List.length (List.filter (Siggen.matches signature) codes)
  in
  let rowset ?auto ~sem name codes =
    let n = List.length codes in
    [
      name;
      string_of_int n;
      Bench_util.pct (sig_hits codes) n;
      (match auto with
      | Some signature -> Bench_util.pct (auto_hits signature codes) n
      | None -> "-");
      Bench_util.pct (payl_hits codes) n;
      Bench_util.pct (sem codes) n;
    ]
  in
  let crii_fresh = List.init 50 (fun _ -> Sanids_exploits.Code_red.request ()) in
  Bench_util.table
    [ "corpus"; "n"; "signatures"; "auto-siggen"; "payl-style"; "semantic templates" ]
    [
      rowset ~sem:sem_hits_code "plain shellcodes" plain;
      rowset ~auto:poly_sig ~sem:sem_hits_code "ADMmutate instances" poly;
      rowset ~auto:crii_sig ~sem:sem_hits_payload "Code Red II deliveries" crii_fresh;
      rowset ~auto:poly_sig ~sem:sem_hits_payload "benign payloads" benign_corpus;
    ];
  Bench_util.note
    "paper shape: signatures collapse on the polymorphic corpus; semantic templates hold at 100%% with 0%% on benign"
