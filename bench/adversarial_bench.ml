(* Adversarial-load hardening: each complexity-bomb family through the
   analysis path with and without a per-packet budget.  The interesting
   numbers are the wall-time ratio (how much work the fuel saves) and
   the truncation/degradation accounting — the verdicts themselves are
   silence either way, since none of these payloads carries a worm. *)

open Sanids_net
open Sanids_nids
module Adversarial = Sanids_workload.Adversarial

let clients = Ipaddr.prefix_of_string "192.168.1.0/24"
let servers = Ipaddr.prefix_of_string "192.168.2.0/24"

let base = Config.default |> Config.with_classification false

let configs =
  [
    ("unbudgeted", base);
    ("budgeted", base |> Config.with_budget (Some Budget.default_limits));
    ( "budget+degrade",
      base
      |> Config.with_budget (Some Budget.default_limits)
      |> Config.with_degrade true );
    (* an aggressive allowance that actually trips on these payloads,
       so the truncation/degradation path itself gets measured *)
    ( "tight+degrade",
      base
      |> Config.with_budget
           (Some
              { Budget.max_bytes = 65536; max_insns = 2000; max_match_steps = 20000;
                deadline = 0. })
      |> Config.with_degrade true );
  ]

let run ?(packets = 20) ?(size = 2048) () =
  Bench_util.hr
    (Printf.sprintf
       "Adversarial load (per-packet budgets; %d packets x %d B per family)" packets
       size);
  let rows =
    List.concat_map
      (fun kind ->
        let pkts =
          Adversarial.packets ~kind ~size
            (Rng.create 0xADBE_C4L)
            ~n:packets ~t0:0.0 ~clients ~servers
        in
        List.map
          (fun (label, cfg) ->
            let nids = Pipeline.create cfg in
            let alerts, dt =
              Bench_util.time (fun () -> Pipeline.process_packets nids pkts)
            in
            let st = Pipeline.stats nids in
            [
              Adversarial.kind_to_string kind;
              label;
              Printf.sprintf "%.3f s" dt;
              Printf.sprintf "%.0f pkt/s" (float_of_int packets /. dt);
              string_of_int st.Stats.budget_truncated;
              string_of_int st.Stats.degraded;
              string_of_int (List.length alerts);
            ])
          configs)
      Adversarial.kinds
  in
  Bench_util.table
    [ "payload"; "config"; "wall time"; "throughput"; "truncated"; "degraded"; "alerts" ]
    rows;
  Bench_util.note
    "the budget bounds worst-case per-packet work; --degrade answers truncated packets with the baseline pattern pass"
