(* Efficiency claim (contribution (b)) — our NIDS vs a reference-[5]
   style analyzer.

   Same inputs through two configurations of the same pipeline:
   - pruned: the cheap suspicion gate + binary extraction decide which
     bytes reach the disassembler (our system);
   - unpruned: the whole payload of every packet is disassembled and
     matched (the way [5] consumes entire binaries).

   The paper's numbers: ~2-3 s per exploit and ~6.5 s per 22 KB sample on
   their pipeline vs ~40 s reported by [5]. Absolute times differ on
   modern hardware; the shape to reproduce is pruned << unpruned with
   identical verdicts. *)

open Sanids_nids
open Sanids_exploits

let inputs () =
  let rng = Rng.create 0x7AB1E0EFL in
  let exploit =
    Exploit_gen.http_exploit rng ~shellcode:(Shellcodes.find "classic").Shellcodes.code
  in
  let poly =
    (Sanids_polymorph.Admmutate.generate rng
       ~payload:(Shellcodes.find "classic").Shellcodes.code)
      .Sanids_polymorph.Admmutate.code
  in
  let benign =
    String.concat ""
      (List.init 40 (fun _ -> Sanids_workload.Benign_gen.payload rng))
  in
  [
    ("http exploit", exploit);
    ("polymorphic shellcode", poly);
    ("iis-asp request", Iis_asp.request ());
    ("benign bundle", benign);
    ("netsky.p (22KB)", List.assoc "netsky.p" (Netsky.variants ()));
  ]

let run () =
  Bench_util.hr "Efficiency: pruned pipeline vs whole-payload analysis ([5]-style)";
  let pruned = Pipeline.create (Config.default |> Config.with_classification false) in
  let unpruned =
    Pipeline.create
      (Config.default |> Config.with_classification false |> Config.with_extraction false)
  in
  let rows =
    List.map
      (fun (name, payload) ->
        let rp, tp = Bench_util.time (fun () -> Pipeline.analyze_payload pruned payload) in
        let ru, tu = Bench_util.time (fun () -> Pipeline.analyze_payload unpruned payload) in
        let verdict results = results <> [] in
        [
          name;
          Printf.sprintf "%d B" (String.length payload);
          Printf.sprintf "%.4f s" tp;
          Printf.sprintf "%.4f s" tu;
          (if tu > 0.0 then Printf.sprintf "%.1fx" (tu /. Float.max tp 1e-6) else "n/a");
          (if verdict rp = verdict ru then "agree" else "DISAGREE");
        ])
      (inputs ())
  in
  Bench_util.table
    [ "input"; "size"; "pruned"; "unpruned ([5]-style)"; "speedup"; "verdicts" ]
    rows;
  Bench_util.note
    "paper shape: extraction pruning keeps semantic analysis affordable (~6.5s vs ~40s in 2006 terms) without changing verdicts"
