(* Efficiency claim (contribution (b)) — our NIDS vs a reference-[5]
   style analyzer.

   Same inputs through two configurations of the same pipeline:
   - pruned: the cheap suspicion gate + binary extraction decide which
     bytes reach the disassembler (our system);
   - unpruned: the whole payload of every packet is disassembled and
     matched (the way [5] consumes entire binaries).

   The paper's numbers: ~2-3 s per exploit and ~6.5 s per 22 KB sample on
   their pipeline vs ~40 s reported by [5]. Absolute times differ on
   modern hardware; the shape to reproduce is pruned << unpruned with
   identical verdicts. *)

open Sanids_nids
open Sanids_exploits
module Obs = Sanids_obs

let inputs () =
  let rng = Rng.create 0x7AB1E0EFL in
  let exploit =
    Exploit_gen.http_exploit rng ~shellcode:(Shellcodes.find "classic").Shellcodes.code
  in
  let poly =
    (Sanids_polymorph.Admmutate.generate rng
       ~payload:(Shellcodes.find "classic").Shellcodes.code)
      .Sanids_polymorph.Admmutate.code
  in
  let benign =
    String.concat ""
      (List.init 40 (fun _ -> Sanids_workload.Benign_gen.payload rng))
  in
  [
    ("http exploit", exploit);
    ("polymorphic shellcode", poly);
    ("iis-asp request", Iis_asp.request ());
    ("benign bundle", benign);
    ("netsky.p (22KB)", List.assoc "netsky.p" (Netsky.variants ()));
  ]

(* Worm-outbreak replay: the suspicious set explodes and millions of
   near-identical payloads hit the analyzer.  The verdict cache must turn
   that repetition into O(1) lookups without changing a single verdict. *)
let outbreak_replay ~packets () =
  Bench_util.sub
    (Printf.sprintf "Outbreak replay (%d packets): verdict cache on vs off"
       packets);
  let rng = Rng.create 0x0B0B0B0BL in
  (* an outbreak is the same few payloads delivered over and over *)
  let variants =
    [|
      Exploit_gen.http_exploit rng
        ~shellcode:(Shellcodes.find "classic").Shellcodes.code;
      Code_red.request ();
      Iis_asp.request ();
      (Sanids_polymorph.Admmutate.generate rng
         ~payload:(Shellcodes.find "classic").Shellcodes.code)
        .Sanids_polymorph.Admmutate.code;
    |]
  in
  let stream =
    List.init packets (fun i -> variants.(i mod Array.length variants))
  in
  let cached = Pipeline.create (Config.default |> Config.with_classification false) in
  let uncached =
    Pipeline.create
      (Config.default |> Config.with_classification false
     |> Config.with_verdict_cache 0)
  in
  (* per-packet latency into an obs histogram: the bench's timing source
     is the same machinery the NIDS exports at runtime *)
  let replay p =
    let h = Obs.Histogram.create () in
    let alerts =
      List.fold_left
        (fun acc payload ->
          acc
          + List.length
              (Bench_util.time_into h (fun () -> Pipeline.analyze_payload p payload)))
        0 stream
    in
    (alerts, Obs.Histogram.snap h)
  in
  let ac, hc = replay cached in
  let au, hu = replay uncached in
  let tc = Obs.Histogram.sum hc and tu = Obs.Histogram.sum hu in
  let throughput t =
    if t > 0.0 then Printf.sprintf "%.0f pkt/s" (float_of_int packets /. t)
    else "n/a"
  in
  let sc = Pipeline.stats cached in
  Bench_util.table
    [ "config"; "time"; "throughput"; "alerts"; "cache h/m"; "per-packet" ]
    [
      [
        "verdict cache on";
        Bench_util.seconds hc;
        throughput tc;
        string_of_int ac;
        Printf.sprintf "%d/%d" sc.Stats.verdict_cache_hits
          sc.Stats.verdict_cache_misses;
        Bench_util.hist_summary hc;
      ];
      [
        "verdict cache off";
        Bench_util.seconds hu;
        throughput tu;
        string_of_int au;
        "-";
        Bench_util.hist_summary hu;
      ];
    ];
  Bench_util.note "speedup %.1fx, verdicts %s (%d vs %d alerts)"
    (tu /. Float.max tc 1e-9)
    (if ac = au then "identical" else "DIFFER")
    ac au

(* Sled-heavy input: every candidate entry decodes through the same NOP
   sled, which is exactly what the per-offset decode memo deduplicates. *)
let decode_memo ~sled () =
  Bench_util.sub
    (Printf.sprintf "Decode memo on sled-heavy input (%d-byte sled)" sled);
  let rng = Rng.create 0x51EDBEEFL in
  let code =
    String.make sled '\x90'
    ^ (Sanids_polymorph.Admmutate.generate rng
         ~payload:(Shellcodes.find "classic").Shellcodes.code)
        .Sanids_polymorph.Admmutate.code
  in
  let entries = Sanids_ir.Trace.entry_points code in
  let templates = Sanids_semantic.Template_lib.default_set in
  (* per-stage (trace recovery only): every entry re-walks the sled *)
  let reps = 20 in
  let _, tb_direct =
    Bench_util.time (fun () ->
        for _ = 1 to reps do
          List.iter
            (fun e -> ignore (Sanids_ir.Trace.build code ~entry:e))
            entries
        done)
  in
  let _, tb_memo =
    Bench_util.time (fun () ->
        for _ = 1 to reps do
          let cache = Sanids_ir.Icache.create code in
          List.iter
            (fun e -> ignore (Sanids_ir.Trace.build_cached cache ~entry:e))
            entries
        done)
  in
  (* full scan (trace recovery + matching) with decode accounting read
     back from a throwaway metrics registry *)
  let reg = Obs.Registry.create () in
  let rm, tm =
    Bench_util.time (fun () ->
        Sanids_semantic.Matcher.scan ~entries ~metrics:reg ~templates code)
  in
  let rd, td =
    Bench_util.time (fun () ->
        Sanids_semantic.Matcher.scan ~entries ~memoize:false ~templates code)
  in
  let snap = Obs.Registry.snapshot reg in
  let hits =
    Obs.Snapshot.counter_value snap Sanids_semantic.Matcher.decode_memo_hits
  in
  let misses =
    Obs.Snapshot.counter_value snap Sanids_semantic.Matcher.decode_memo_misses
  in
  let total = hits + misses in
  Bench_util.table
    [ "stage"; "direct"; "memoized"; "speedup" ]
    [
      [
        Printf.sprintf "trace recovery x%d entries" (List.length entries);
        Printf.sprintf "%.4f s" tb_direct;
        Printf.sprintf "%.4f s" tb_memo;
        Printf.sprintf "%.1fx" (tb_direct /. Float.max tb_memo 1e-9);
      ];
      [
        "full scan";
        Printf.sprintf "%.4f s" td;
        Printf.sprintf "%.4f s" tm;
        Printf.sprintf "%.1fx" (td /. Float.max tm 1e-9);
      ];
    ];
  Bench_util.note "decode-memo hit ratio %.2f (%d of %d lookups decoded), results %s"
    (float_of_int hits /. Float.max (float_of_int total) 1.0)
    misses total
    (if rm = rd then "identical" else "DIFFER")

let run ?(outbreak = 240) ?(sled = 512) () =
  Bench_util.hr "Efficiency: pruned pipeline vs whole-payload analysis ([5]-style)";
  let pruned = Pipeline.create (Config.default |> Config.with_classification false) in
  let unpruned =
    Pipeline.create
      (Config.default |> Config.with_classification false |> Config.with_extraction false)
  in
  let rows =
    List.map
      (fun (name, payload) ->
        let rp, tp = Bench_util.time (fun () -> Pipeline.analyze_payload pruned payload) in
        let ru, tu = Bench_util.time (fun () -> Pipeline.analyze_payload unpruned payload) in
        let verdict results = results <> [] in
        [
          name;
          Printf.sprintf "%d B" (String.length payload);
          Printf.sprintf "%.4f s" tp;
          Printf.sprintf "%.4f s" tu;
          (if tu > 0.0 then Printf.sprintf "%.1fx" (tu /. Float.max tp 1e-6) else "n/a");
          (if verdict rp = verdict ru then "agree" else "DISAGREE");
        ])
      (inputs ())
  in
  Bench_util.table
    [ "input"; "size"; "pruned"; "unpruned ([5]-style)"; "speedup"; "verdicts" ]
    rows;
  Bench_util.note
    "paper shape: extraction pruning keeps semantic analysis affordable (~6.5s vs ~40s in 2006 terms) without changing verdicts";
  outbreak_replay ~packets:outbreak ();
  decode_memo ~sled ()
