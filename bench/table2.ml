(* Table 2 — Polymorphic shellcode detection.

   (a) the iis-asp-overflow exploit with a decryption routine prefixed to
       encoded shellcode;
   (b) 100 ADMmutate instances against the xor template only (paper: 68%),
       then against the full template pair (paper: 100%);
   (c) 100 Clet instances against the xor template (paper: 100%). *)

open Sanids_nids
open Sanids_semantic
open Sanids_exploits

let payload = (Shellcodes.find "classic").Shellcodes.code

let count_detected templates codes =
  List.length
    (List.filter
       (fun code -> Matcher.scan ~templates code <> [])
       codes)

let run ~instances () =
  Bench_util.hr "Table 2: Polymorphic shellcode detection";
  (* iis-asp *)
  let nids = Pipeline.create (Config.default |> Config.with_classification false) in
  let results, dt =
    Bench_util.time (fun () -> Pipeline.analyze_payload nids (Iis_asp.request ()))
  in
  let iis_detected =
    List.exists (fun r -> r.Matcher.template = "decrypt-loop") results
  in
  (* ADMmutate *)
  let rng = Rng.create 0x7AB1E003L in
  let adm =
    List.init instances (fun _ ->
        (Sanids_polymorph.Admmutate.generate rng ~payload).Sanids_polymorph.Admmutate.code)
  in
  let adm_xor_only, dt_xor =
    Bench_util.time (fun () -> count_detected Template_lib.xor_decrypt_only adm)
  in
  let adm_full, dt_full =
    Bench_util.time (fun () ->
        count_detected (Template_lib.xor_decrypt @ Template_lib.alt_decoder) adm)
  in
  (* multi-stage (beyond the paper): each instance decodes a decoder *)
  let staged =
    List.init (instances / 2) (fun _ ->
        (Sanids_polymorph.Admmutate.generate_staged ~stages:2 rng ~payload)
          .Sanids_polymorph.Admmutate.code)
  in
  let staged_hits, dt_staged =
    Bench_util.time (fun () ->
        count_detected (Template_lib.xor_decrypt @ Template_lib.alt_decoder) staged)
  in
  (* Clet *)
  let clet =
    List.init instances (fun _ ->
        (Sanids_polymorph.Clet.generate rng ~payload).Sanids_polymorph.Clet.code)
  in
  let clet_detected, dt_clet =
    Bench_util.time (fun () -> count_detected Template_lib.xor_decrypt clet)
  in
  Bench_util.table
    [ "test"; "instances"; "detected"; "rate"; "paper"; "time" ]
    [
      [
        "iis-asp-overflow (xor template)";
        "1";
        (if iis_detected then "1" else "0");
        (if iis_detected then "100%" else "0%");
        "100% (2.14 s)";
        Printf.sprintf "%.3f s" dt;
      ];
      [
        "ADMmutate, xor template only";
        string_of_int instances;
        string_of_int adm_xor_only;
        Bench_util.pct adm_xor_only instances;
        "68%";
        Printf.sprintf "%.2f s" dt_xor;
      ];
      [
        "ADMmutate, both templates";
        string_of_int instances;
        string_of_int adm_full;
        Bench_util.pct adm_full instances;
        "100%";
        Printf.sprintf "%.2f s" dt_full;
      ];
      [
        "Clet engine, xor template";
        string_of_int instances;
        string_of_int clet_detected;
        Bench_util.pct clet_detected instances;
        "100%";
        Printf.sprintf "%.2f s" dt_clet;
      ];
      [
        "2-stage ADMmutate (extension)";
        string_of_int (instances / 2);
        string_of_int staged_hits;
        Bench_util.pct staged_hits (instances / 2);
        "n/a";
        Printf.sprintf "%.2f s" dt_staged;
      ];
    ];
  Bench_util.note
    "paper shape: xor-only template misses the second ADMmutate decoder family; adding the Figure-7 template closes the gap to 100%%"
