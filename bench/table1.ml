(* Table 1 — Linux shell spawning buffer overflow exploits.

   Eight exploits are fired at a honeypot registered with the NIDS; every
   one must be detected as spawning a shell and the two port binders
   additionally noted.  Per-exploit analysis time is reported alongside,
   with the Netsky timing points (paper: 2.36–3.27 s per exploit and
   ≈6.5 s per ~22 KB Netsky variant on a 2006 P4, vs ≈40 s for the
   system of reference [5]). *)

open Sanids_net
open Sanids_nids
open Sanids_exploits

let honeypot = Ipaddr.of_string "10.9.9.9"
let attacker = Ipaddr.of_string "198.51.100.77"

let run () =
  Bench_util.hr "Table 1: Linux shell-spawning buffer overflow exploits";
  let cfg = Config.default |> Config.with_honeypots [ honeypot ] in
  let nids = Pipeline.create cfg in
  let rng = Rng.create 0x7AB1E001L in
  let rows =
    List.map
      (fun (e : Shellcodes.entry) ->
        (* the exploit generator sends to the honeypot, which flags the
           source; detection happens on that packet's payload *)
        let pkt =
          Exploit_gen.packet rng ~ts:0.0 ~src:attacker ~dst:honeypot
            ~shellcode:e.Shellcodes.code
        in
        let alerts, dt = Bench_util.time (fun () -> Pipeline.process_packet nids pkt) in
        let spawned =
          List.exists (fun a -> a.Alert.template = "shell-spawn") alerts
        in
        let bound =
          List.exists (fun a -> a.Alert.template = "port-bind-shell") alerts
        in
        [
          e.Shellcodes.name;
          Printf.sprintf "%d B" (String.length e.Shellcodes.code);
          (if spawned then "yes" else "NO");
          (if e.Shellcodes.binds_port then if bound then "yes (noted)" else "MISSED"
           else if bound then "spurious"
           else "-");
          Printf.sprintf "%.3f s" dt;
        ])
      Shellcodes.all
  in
  Bench_util.table
    [ "exploit"; "code size"; "shell detected"; "port bind"; "analysis time" ]
    rows;
  Bench_util.sub "Netsky timing points (larger input, same pipeline)";
  let netsky_rows =
    List.map
      (fun (name, body) ->
        (* virus samples are whole binaries, not packet payloads: analyze
           without network extraction, the way reference [5] consumes them *)
        let nids_file =
          Pipeline.create
            (cfg |> Config.with_classification false |> Config.with_extraction false)
        in
        let results, dt =
          Bench_util.time (fun () -> Pipeline.analyze_payload nids_file body)
        in
        [
          name;
          Printf.sprintf "%d B" (String.length body);
          Printf.sprintf "%d" (List.length results);
          Printf.sprintf "%.3f s" dt;
        ])
      (Netsky.variants ())
  in
  Bench_util.table [ "sample"; "size"; "behaviours found"; "analysis time" ] netsky_rows;
  Bench_util.note
    "paper shape: 8/8 detected, 2/2 binders noted; times grow with input size (paper: 2.36-3.27s exploits, ~6.5s Netsky, ~40s in ref [5])"
