(* Bechamel micro-benchmarks: one Test.make per table/experiment, timing
   the kernel that dominates that experiment, plus the pipeline stages. *)

open Bechamel
open Toolkit
open Sanids_semantic
open Sanids_exploits

let mk name f = Test.make ~name (Staged.stage f)

let tests () =
  let rng = Rng.create 0x7AB1E0BEL in
  let classic = (Shellcodes.find "classic").Shellcodes.code in
  let exploit_payload = Exploit_gen.http_exploit rng ~shellcode:classic in
  let poly =
    (Sanids_polymorph.Admmutate.generate rng ~payload:classic)
      .Sanids_polymorph.Admmutate.code
  in
  let crii = Code_red.request () in
  let benign = Sanids_workload.Benign_gen.payload rng in
  let crii_s = Slice.of_string crii in
  let benign_s = Slice.of_string benign in
  let templates = Template_lib.default_set in
  let nids =
    Sanids_nids.Pipeline.create
      (Sanids_nids.Config.default |> Sanids_nids.Config.with_classification false)
  in
  Test.make_grouped ~name:"sanids"
    [
      (* table 1: exploit payload through the full analysis stages *)
      mk "table1/analyze-exploit" (fun () ->
          Sanids_nids.Pipeline.analyze_payload nids exploit_payload);
      (* table 2: template scan over one polymorphic instance *)
      mk "table2/scan-admmutate" (fun () -> Matcher.scan ~templates poly);
      (* table 3: the code-red request end to end *)
      mk "table3/analyze-codered" (fun () ->
          Sanids_nids.Pipeline.analyze_payload nids crii);
      (* §5.4: the benign fast path (suspicion gate rejects) *)
      mk "fp/benign-fast-path" (fun () ->
          Sanids_nids.Pipeline.analyze_payload nids benign);
      (* stage kernels *)
      mk "stage/disassemble-4KB" (fun () -> Sanids_x86.Decode.all poly);
      mk "stage/extract-codered" (fun () -> Sanids_extract.Extractor.extract crii_s);
      mk "stage/suspicious-gate" (fun () -> Sanids_extract.Extractor.suspicious benign_s);
      mk "stage/aho-corasick" (fun () -> Sanids_baseline.Signatures.scan poly);
    ]

let run ?(quota = 0.25) () =
  Bench_util.hr "Micro-benchmarks (bechamel, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (v :: _) -> v
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Bench_util.table [ "kernel"; "time/run" ]
    (List.map
       (fun (name, ns) ->
         let rendered =
           if Float.is_nan ns then "n/a"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; rendered ])
       rows)
