(* Table 3 — Detection of the Code Red II worm.

   Twelve seeded five-minute traces over two simulated Class B networks;
   each trace carries a known number of Code Red II exploitation packets
   from scanning sources.  The NIDS (classifier enabled, scan detection
   over the declared unused space) must classify and match every
   instance. *)

open Sanids_net
open Sanids_nids

let clients = Ipaddr.prefix_of_string "172.16.0.0/16"
let servers = Ipaddr.prefix_of_string "172.17.0.0/16"
let unused = Ipaddr.prefix_of_string "172.17.200.0/21"

let run ~packets_per_trace () =
  Bench_util.hr "Table 3: Detection of the Code Red II worm";
  let rows =
    List.map
      (fun k ->
        let rng = Rng.create (Int64.of_int (0x7AB1E300 + k)) in
        let instances = 1 + Rng.int rng 5 in
        let pkts, truth =
          Sanids_workload.Worm_gen.code_red_trace rng ~benign:packets_per_trace
            ~instances ~scans_per_instance:6 ~clients ~servers ~unused
            ~duration:300.0
        in
        let cfg = Config.default |> Config.with_unused [ unused ] in
        let nids = Pipeline.create cfg in
        let alerts, dt =
          Bench_util.time (fun () -> Pipeline.process_packets nids pkts)
        in
        let crii =
          List.length (List.filter (fun a -> a.Alert.template = "code-red-ii") alerts)
        in
        [
          Printf.sprintf "trace-%02d" (k + 1);
          string_of_int truth.Sanids_workload.Worm_gen.total_packets;
          string_of_int truth.Sanids_workload.Worm_gen.crii_instances;
          string_of_int crii;
          (if crii = truth.Sanids_workload.Worm_gen.crii_instances then "yes" else "NO");
          Printf.sprintf "%.2f s" dt;
        ])
      (List.init 12 (fun k -> k))
  in
  Bench_util.table
    [ "trace"; "packets"; "CRII present"; "CRII matched"; "all found"; "time" ]
    rows;
  Bench_util.note
    "paper shape: every instance in every trace classified and matched (paper traces: >200k packets each; use --full for that scale)"
