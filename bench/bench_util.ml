(* Shared helpers for the benchmark harness: wall-clock timing and table
   rendering. *)

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let sub title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

(* A fixed-width table: header then rows. *)
let table headers rows =
  let ncol = List.length headers in
  let widths = Array.make ncol 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) headers;
  List.iter
    (fun r ->
      List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) r)
    rows;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let line cells = print_endline ("  " ^ String.concat "  " (List.mapi pad cells)) in
  line headers;
  line (List.mapi (fun i _ -> String.make widths.(i) '-') headers);
  List.iter line rows

let pct num den =
  if den = 0 then "n/a" else Printf.sprintf "%d%%" (num * 100 / den)

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  note: %s\n" s) fmt
