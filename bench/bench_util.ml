(* Shared helpers for the benchmark harness: wall-clock timing and table
   rendering.  Timing goes through sanids.obs histograms so the bench
   reports the same quantile machinery the NIDS exports at runtime. *)

module Obs = Sanids_obs

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

(* Run [f] once, recording its wall time into histogram [h]. *)
let time_into h f =
  let t0 = now () in
  let x = f () in
  Obs.Histogram.observe h (now () -. t0);
  x

(* Run [f] [reps] times into a fresh histogram; return the last result
   and the snapshot. *)
let measure ?(reps = 1) f =
  let h = Obs.Histogram.create () in
  let x = ref (time_into h f) in
  for _ = 2 to reps do
    x := time_into h f
  done;
  (!x, Obs.Histogram.snap h)

let seconds s = Printf.sprintf "%.4f s" (Obs.Histogram.sum s)

(* "n=20 mean=1.2ms p50<=2.0ms p95<=4.1ms" — quantiles are octave upper
   bounds, see Histogram.quantile. *)
let hist_summary s =
  let dur v = Format.asprintf "%a" Obs.Histogram.pp_duration v in
  Printf.sprintf "n=%d mean=%s p50<=%s p95<=%s" (Obs.Histogram.count s)
    (dur (Obs.Histogram.mean s))
    (dur (Obs.Histogram.quantile s 0.5))
    (dur (Obs.Histogram.quantile s 0.95))

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let sub title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

(* A fixed-width table: header then rows. *)
let table headers rows =
  let ncol = List.length headers in
  let widths = Array.make ncol 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) headers;
  List.iter
    (fun r ->
      List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) r)
    rows;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let line cells = print_endline ("  " ^ String.concat "  " (List.mapi pad cells)) in
  line headers;
  line (List.mapi (fun i _ -> String.make widths.(i) '-') headers);
  List.iter line rows

let pct num den =
  if den = 0 then "n/a" else Printf.sprintf "%d%%" (num * 100 / den)

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  note: %s\n" s) fmt
