(* §5.4 — False-positive evaluation.

   Classification is disabled so every packet's payload reaches the
   analysis stages, over a large benign corpus (the paper used a month of
   traffic from two Class C networks, 566 MB).  The template matcher must
   report nothing. *)

open Sanids_net
open Sanids_nids

let clients = Ipaddr.prefix_of_string "192.168.1.0/24"
let servers = Ipaddr.prefix_of_string "192.168.2.0/24"

let run ~packets () =
  Bench_util.hr "False-positive evaluation (classification disabled)";
  let cfg = Config.default |> Config.with_classification false in
  let nids = Pipeline.create cfg in
  let rng = Rng.create 0x7AB1E540L in
  let seq = Sanids_workload.Benign_gen.seq rng ~n:packets ~t0:0.0 ~clients ~servers in
  let alerts = ref 0 in
  let bytes = ref 0 in
  let (), dt =
    Bench_util.time (fun () ->
        Seq.iter
          (fun p ->
            bytes := !bytes + Slice.length (Packet.payload p);
            alerts := !alerts + List.length (Pipeline.process_packet nids p))
          seq)
  in
  let s = Pipeline.stats nids in
  Bench_util.table
    [ "packets"; "payload bytes"; "frames analyzed"; "false positives"; "paper"; "time" ]
    [
      [
        string_of_int packets;
        Printf.sprintf "%.1f MB" (float_of_int !bytes /. 1048576.0);
        string_of_int s.Stats.frames;
        string_of_int !alerts;
        "0 over 566 MB";
        Printf.sprintf "%.2f s" dt;
      ];
    ];
  Bench_util.note
    "paper shape: zero false positives over a month of benign traffic with every payload analyzed";
  if !alerts > 0 then Bench_util.note "!!! UNEXPECTED FALSE POSITIVES !!!"
