(* Ablations over the design choices DESIGN.md calls out:

   1. the matcher's junk-gap budget vs the engine's junk density — the
      knob that trades robustness against accidental matches;
   2. trace entry enumeration — fixed heuristic entry points vs the
      covered-set whole-buffer enumeration (what buys desync recovery);
   3. the extractor's context window — how much printable context around
      a binary region is needed to keep the (largely printable) decoder
      stub inside the analyzed frame. *)

open Sanids_semantic
open Sanids_exploits

let payload = (Shellcodes.find "classic").Shellcodes.code

let retarget_gap templates gap =
  List.map (fun (t : Template.t) -> { t with Template.max_gap = gap }) templates

let run () =
  Bench_util.hr "Ablations";

  (* -------------------------------------------------------------- *)
  Bench_util.sub "1. gap budget vs junk density (ADMmutate xor family, 50 instances)";
  let templates = Template_lib.xor_decrypt in
  let junk_levels = [ 0; 2; 4; 8; 16 ] in
  let gaps = [ 2; 6; 12; 24 ] in
  let rows =
    List.map
      (fun junk ->
        let rng = Rng.create (Int64.of_int (0xAB1A000 + junk)) in
        let corpus =
          List.init 50 (fun _ ->
              (Sanids_polymorph.Admmutate.generate
                 ~family:Sanids_polymorph.Admmutate.Xor_loop ~junk rng ~payload)
                .Sanids_polymorph.Admmutate.code)
        in
        let rate gap =
          let ts = retarget_gap templates gap in
          let hit = List.length (List.filter (fun c -> Matcher.scan ~templates:ts c <> []) corpus) in
          Bench_util.pct hit 50
        in
        string_of_int junk :: List.map rate gaps)
      junk_levels
  in
  Bench_util.table
    ([ "junk level" ] @ List.map (fun g -> Printf.sprintf "gap=%d" g) gaps)
    rows;
  Bench_util.note
    "detection holds while the gap budget covers the junk runs and degrades once junk outruns it";

  (* -------------------------------------------------------------- *)
  Bench_util.sub "2. trace entry enumeration (decoder behind random padding, 50 instances)";
  let rng = Rng.create 0xAB1A100L in
  let padded =
    List.init 50 (fun _ ->
        let g =
          Sanids_polymorph.Admmutate.generate
            ~family:Sanids_polymorph.Admmutate.Xor_loop rng ~payload
        in
        Rng.bytes rng (Rng.int_in rng 24 96) ^ g.Sanids_polymorph.Admmutate.code)
  in
  let ts = Template_lib.xor_decrypt in
  let rate entries =
    List.length
      (List.filter (fun c -> Matcher.scan ?entries ~templates:ts c <> []) padded)
  in
  let zero_only = rate (Some [ 0 ]) in
  let heuristic =
    List.length
      (List.filter
         (fun c ->
           Matcher.scan ~entries:(Sanids_ir.Trace.entry_points c) ~templates:ts c
           <> [])
         padded)
  in
  let full = rate None in
  Bench_util.table
    [ "entry strategy"; "detected" ]
    [
      [ "offset 0 only"; Bench_util.pct zero_only 50 ];
      [ "heuristic entry points"; Bench_util.pct heuristic 50 ];
      [ "covered-set full enumeration"; Bench_util.pct full 50 ];
    ];
  Bench_util.note
    "random padding desynchronizes the linear sweep; full enumeration restores detection";

  (* -------------------------------------------------------------- *)
  Bench_util.sub "3. extractor context window (HTTP exploit, decoder in printable region)";
  let rng = Rng.create 0xAB1A200L in
  let exploits =
    List.init 30 (fun _ ->
        let g = Sanids_polymorph.Admmutate.generate rng ~payload in
        Exploit_gen.http_exploit rng ~shellcode:g.Sanids_polymorph.Admmutate.code)
  in
  let rate_ctx ~before ~gap =
    let config =
      { Sanids_extract.Extractor.default_config with
        Sanids_extract.Extractor.context_before = before;
        gap_merge = gap }
    in
    List.length
      (List.filter
         (fun p ->
           List.exists
             (fun (f : Sanids_extract.Extractor.frame) ->
               Matcher.scan ~templates:Template_lib.default_set
                 (Slice.to_string f.Sanids_extract.Extractor.data)
               <> [])
             (Sanids_extract.Extractor.extract ~config (Slice.of_string p)))
         exploits)
  in
  Bench_util.table
    [ "context_before"; "gap_merge"; "detected" ]
    (List.map
       (fun (b, g) -> [ string_of_int b; string_of_int g; Bench_util.pct (rate_ctx ~before:b ~gap:g) 30 ])
       [ (0, 0); (0, 16); (64, 0); (192, 0); (192, 16) ]);
  Bench_util.note
    "decoder stubs carry enough non-text bytes that gap merging alone usually keeps them in frame; the backward context window is the safety margin for printable-heavy stubs"
