(* A tour of the detector families the paper positions itself against,
   on one polymorphic campaign:

   1. hand-written Snort-style rules (the 2006 deployment reality);
   2. automatically generated signatures (Autograph/Polygraph-style);
   3. PAYL-style byte-frequency anomaly detection;
   4. the semantic analyzer;
   5. the hybrid pipeline that deploys fast-path signatures from
      semantic alerts.

   Run with: dune exec examples/baseline_lab.exe *)

open Sanids

let classic = (Shellcodes.find "classic").Shellcodes.code

let () =
  let rng = Rng.create 0x1AB5L in
  let campaign =
    List.init 40 (fun _ -> (Admmutate.generate rng ~payload:classic).Admmutate.code)
  in
  let hits name f =
    let n = List.length (List.filter f campaign) in
    Printf.printf "  %-34s %2d/40\n" name n
  in
  Printf.printf "polymorphic campaign: 40 ADMmutate instances of one shellcode\n\n";

  (* 1. static rules *)
  let rules, errs = Rule.parse_many Rule.default_ruleset in
  assert (errs = []);
  let engine = Rule.compile rules in
  hits "snort-style rules" (fun c -> Rule.match_payload engine c <> []);

  (* 2. automatic signature generation from the first 15 instances *)
  let pool, _rest =
    List.filteri (fun i _ -> i < 15) campaign,
    List.filteri (fun i _ -> i >= 15) campaign
  in
  let auto = Siggen.infer pool in
  Printf.printf "  (auto-siggen extracted %d tokens from a 15-sample pool)\n"
    (List.length auto.Siggen.tokens);
  hits "auto-generated signature" (Siggen.matches auto);

  (* 3. statistical anomaly *)
  let benign = List.init 300 (fun _ -> Benign_gen.payload rng) in
  let model = Payl.train benign in
  hits "payl-style anomaly (threshold 1.5)" (Payl.is_anomalous model);

  (* 4. semantic templates *)
  hits "semantic templates" (fun c ->
      Matcher.scan ~templates:Template_lib.default_set c <> []);

  (* 5. the hybrid pipeline on the same campaign as packets *)
  Printf.printf "\nhybrid pipeline over the campaign as traffic:\n";
  let h = Hybrid.create ~pool_size:5 (Config.default |> Config.with_classification false) in
  let src k = Ipaddr.of_octets 198 51 100 (1 + (k mod 200)) in
  let alerts =
    List.concat
      (List.mapi
         (fun k code ->
           Hybrid.process_packet h
             (Packet.build_tcp ~ts:(float_of_int k) ~src:(src k)
                ~dst:(Ipaddr.of_string "10.0.0.80") ~src_port:(2000 + k)
                ~dst_port:80 code))
         campaign)
  in
  Printf.printf "  semantic alerts: %d, fast-path hits: %d, deployed signatures: %d\n"
    (List.length alerts) (Hybrid.fast_path_hits h)
    (List.length (Hybrid.deployed_signatures h));
  Printf.printf
    "  (no signature deploys: raw polymorphic payloads share no invariant —\n\
    \   semantics keeps doing the work, which is the paper's thesis)\n"
