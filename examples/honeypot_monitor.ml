(* Honeypot + scan-detector monitoring over a mixed traffic stream.

   Synthesizes benign campus traffic with a scanning worm woven in, runs
   the classifier-gated pipeline, and shows how the two classification
   schemes (decoy addresses, unused-address-space counting) pick out
   exactly the malicious sources.

   Run with: dune exec examples/honeypot_monitor.exe *)

open Sanids

let clients = Ipaddr.prefix_of_string "172.20.0.0/16"
let servers = Ipaddr.prefix_of_string "172.21.0.0/16"
let unused = Ipaddr.prefix_of_string "172.21.240.0/20"
let honeypot = Ipaddr.of_string "172.21.0.250"

let () =
  let rng = Rng.create 7777L in
  let config =
    Config.default
    |> Config.with_honeypots [ honeypot ]
    |> Config.with_unused [ unused ]
  in
  let nids = Pipeline.create config in

  (* benign floor: 5000 packets of ordinary traffic *)
  let benign = Benign_gen.packets rng ~n:5000 ~t0:0.0 ~clients ~servers in

  (* a worm-infected host scans, then exploits a server *)
  let infected = Ipaddr.of_string "198.18.7.9" in
  let scans =
    List.init 8 (fun k ->
        Worm_gen.scan_packet rng ~ts:(10.0 +. (0.3 *. float_of_int k)) ~src:infected ~unused)
  in
  let exploit =
    Exploit_gen.packet rng ~ts:14.0 ~src:infected
      ~dst:(Ipaddr.nth servers 80)
      ~shellcode:(Shellcodes.find "bind-4444").Shellcodes.code
  in

  (* a second attacker trips the decoy instead *)
  let curious = Ipaddr.of_string "203.0.113.12" in
  let decoy_probe =
    Packet.build_tcp ~ts:20.0 ~src:curious ~dst:honeypot ~src_port:5555 ~dst_port:22
      "SSH-2.0-scanner\r\n"
  in
  let exploit2 =
    Exploit_gen.packet rng ~ts:21.0 ~src:curious
      ~dst:(Ipaddr.nth servers 81)
      ~shellcode:(Shellcodes.find "call-pop").Shellcodes.code
  in

  let traffic =
    List.sort
      (fun a b -> compare a.Packet.ts b.Packet.ts)
      (benign @ scans @ [ exploit; decoy_probe; exploit2 ])
  in
  let alerts = Pipeline.process_packets nids traffic in

  Printf.printf "processed %d packets\n" (List.length traffic);
  Printf.printf "alerts (%d):\n" (List.length alerts);
  List.iter (fun a -> print_endline ("  " ^ Alert.to_line a)) alerts;
  Format.printf "stats: %a@." Stats.pp (Pipeline.stats nids);
  Printf.printf
    "note how the benign floor produced no alerts: only the two flagged sources were ever analyzed\n"
