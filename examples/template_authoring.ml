(* Template authoring: extend the NIDS with a new behaviour — the paper's
   stated future work ("classify more exploit behaviors so that we can
   generate additional useful templates").

   We author a template for the classic setuid(0)-then-execve root
   shellcode and show that (a) the stock template set already sees the
   shell spawn, (b) the new template distinguishes the privilege
   escalation, (c) the same template keeps matching when the shellcode is
   rewritten with different registers and junk.

   Run with: dune exec examples/template_authoring.exe *)

open Sanids

(* setuid(0): EAX = 23, EBX = 0, int 0x80 — then spawn the shell. *)
let setuid_root_template =
  Template.make ~name:"setuid-root-shell"
    ~description:"setuid(0) followed by execve: privilege-escalating shell"
    ~max_gap:32
    [
      Template.Once (Template.Syscall { vector = 0x80; al = Template.Exact 23l; bl = Template.Any });
      Template.Once (Template.Syscall { vector = 0x80; al = Template.Exact 11l; bl = Template.Any });
    ]

let i x = Asm.I x

let setuid_shellcode =
  Asm.assemble
    [
      (* setuid(0) *)
      i (Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Reg Reg.EBX, Insn.Reg Reg.EBX));
      i (Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Reg Reg.EAX, Insn.Reg Reg.EAX));
      i (Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, Insn.Imm 23l));
      i (Insn.Int 0x80);
      (* execve("/bin//sh") *)
      i (Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Reg Reg.EAX, Insn.Reg Reg.EAX));
      i (Insn.Push_reg Reg.EAX);
      i (Insn.Push_imm 0x68732f2fl);
      i (Insn.Push_imm 0x6e69622fl);
      i (Insn.Mov (Insn.S32bit, Insn.Reg Reg.EBX, Insn.Reg Reg.ESP));
      i (Insn.Push_reg Reg.EAX);
      i (Insn.Push_reg Reg.EBX);
      i (Insn.Mov (Insn.S32bit, Insn.Reg Reg.ECX, Insn.Reg Reg.ESP));
      i Insn.Cdq;
      i (Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, Insn.Imm 11l));
      i (Insn.Int 0x80);
    ]

(* the same behaviour, spelled differently: push/pop routing and junk *)
let setuid_shellcode_variant =
  Asm.assemble
    [
      i (Insn.Push_imm 23l);
      i (Insn.Pop_reg Reg.EAX);
      i (Insn.Arith (Insn.Sub, Insn.S32bit, Insn.Reg Reg.EBX, Insn.Reg Reg.EBX));
      i Insn.Nop;
      i (Insn.Mov (Insn.S32bit, Insn.Reg Reg.EDI, Insn.Imm 0x1234l));
      (* junk *)
      i (Insn.Int 0x80);
      i (Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Reg Reg.EAX, Insn.Reg Reg.EAX));
      i (Insn.Push_reg Reg.EAX);
      i (Insn.Push_imm 0x68732f2fl);
      i (Insn.Push_imm 0x6e69622fl);
      i (Insn.Mov (Insn.S32bit, Insn.Reg Reg.EBX, Insn.Reg Reg.ESP));
      i (Insn.Push_reg Reg.EAX);
      i (Insn.Push_reg Reg.EBX);
      i (Insn.Mov (Insn.S32bit, Insn.Reg Reg.ECX, Insn.Reg Reg.ESP));
      i Insn.Cdq;
      i (Insn.Mov (Insn.S8bit, Insn.Reg8 Reg.AL, Insn.Imm 12l));
      i (Insn.Dec (Insn.S8bit, Insn.Reg8 Reg.AL));
      i (Insn.Int 0x80);
    ]

let scan templates code = Matcher.scan ~templates code

let report name code =
  Printf.printf "%s:\n" name;
  let stock = scan Template_lib.default_set code in
  let custom = scan [ setuid_root_template ] code in
  List.iter
    (fun r -> Printf.printf "  stock : %s\n" r.Matcher.template)
    stock;
  List.iter
    (fun r -> Printf.printf "  custom: %s\n" r.Matcher.template)
    custom;
  if custom = [] then Printf.printf "  custom: (no match)\n"

let () =
  Format.printf "authored template:@.  %a@.@." Template.pp setuid_root_template;
  report "setuid shellcode" setuid_shellcode;
  print_newline ();
  report "setuid shellcode, rewritten variant" setuid_shellcode_variant;
  print_newline ();
  (* the plain execve corpus must NOT look like privilege escalation *)
  report "plain execve shellcode (control)" (Shellcodes.find "classic").Shellcodes.code
