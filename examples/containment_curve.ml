(* Why sixty seconds matters: simulate a Code-Red-class worm spreading
   through a vulnerable population, with and without NIDS-triggered
   quarantine, and plot the infection curves side by side.

   Run with: dune exec examples/containment_curve.exe *)

open Sanids

let epidemic =
  {
    Epidemic.population = 360_000;
    address_space = 4294967296.0;
    scan_rate = 200.0;
    initial = 25;
  }

let bar width fraction =
  let n = int_of_float (fraction *. float_of_int width) in
  String.make n '#' ^ String.make (width - n) ' '

let () =
  Printf.printf "Code-Red-class worm: %d vulnerable hosts, %.0f probes/s, beta=%.4f/s\n\n"
    epidemic.Epidemic.population epidemic.Epidemic.scan_rate
    (Epidemic.beta epidemic);

  (* uncontained: the deterministic logistic curve *)
  Printf.printf "uncontained spread (deterministic model):\n";
  List.iter
    (fun t ->
      let i = Epidemic.logistic epidemic t in
      let f = i /. float_of_int epidemic.Epidemic.population in
      Printf.printf "  t=%5.0fs |%s| %5.1f%%\n" t (bar 40 f) (100.0 *. f))
    [ 0.0; 120.0; 240.0; 360.0; 480.0; 600.0; 720.0; 840.0; 960.0 ];

  (* contained: NIDS sensors + quarantine at different reaction times *)
  Printf.printf "\nwith NIDS containment (5%% of space monitored, threshold 5 probes):\n";
  let rng = Rng.create 60L in
  List.iter
    (fun reaction ->
      let p =
        {
          Containment.epidemic;
          monitored_fraction = 0.05;
          threshold = 5;
          reaction_time = reaction;
        }
      in
      let o = Containment.simulate (Rng.copy rng) p ~duration:7200.0 in
      let f = Containment.infected_fraction o epidemic in
      Printf.printf "  react %4.0fs |%s| %5.1f%% infected, %d quarantined\n" reaction
        (bar 40 f) (100.0 *. f) o.Containment.quarantined)
    [ 1.0; 30.0; 60.0; 120.0; 300.0; 900.0 ];
  Printf.printf
    "\nthe paper's premise (its ref [4]): signature generation measured in hours\n\
     cannot contain this; an automated semantic NIDS reacting in seconds can.\n"
