(* Quickstart: stand up the NIDS, deliver one exploit, read the alert.

   Run with: dune exec examples/quickstart.exe *)

open Sanids

let () =
  (* 1. configure: one honeypot decoy; everything else default *)
  let honeypot = Ipaddr.of_string "10.0.0.250" in
  let config = Config.default |> Config.with_honeypots [ honeypot ] in
  let nids = Pipeline.create config in

  (* 2. an attacker probes the decoy — that marks the source *)
  let attacker = Ipaddr.of_string "203.0.113.66" in
  let probe =
    Packet.build_tcp ~ts:0.0 ~src:attacker ~dst:honeypot ~src_port:4242
      ~dst_port:80 "GET / HTTP/1.0\r\n\r\n"
  in
  ignore (Pipeline.process_packet nids probe);

  (* 3. the attacker then fires a buffer-overflow exploit at a real host *)
  let rng = Rng.create 2006L in
  let exploit =
    Exploit_gen.packet rng ~ts:1.0 ~src:attacker
      ~dst:(Ipaddr.of_string "10.0.0.80")
      ~shellcode:(Shellcodes.find "classic").Shellcodes.code
  in
  let alerts = Pipeline.process_packet nids exploit in

  (* 4. the semantic analyzer reports what the code DOES, not how it is
     spelled *)
  (match alerts with
  | [] -> print_endline "no alert — something is wrong"
  | alerts -> List.iter (fun a -> print_endline (Alert.to_line a)) alerts);
  Format.printf "pipeline stats: %a@." Stats.pp (Pipeline.stats nids)
