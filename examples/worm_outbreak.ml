(* Worm outbreak forensics: synthesize a Code Red II outbreak trace,
   write it to a pcap file, read it back and run the NIDS over it —
   the full capture-to-alert loop of the paper's Table 3.

   Run with: dune exec examples/worm_outbreak.exe *)

open Sanids

let clients = Ipaddr.prefix_of_string "10.10.0.0/16"
let servers = Ipaddr.prefix_of_string "10.20.0.0/16"
let unused = Ipaddr.prefix_of_string "10.20.128.0/17"

let () =
  let rng = Rng.create 20010719L (* Code Red's big day *) in
  let packets, truth =
    Worm_gen.code_red_trace rng ~benign:3000 ~instances:4 ~scans_per_instance:6
      ~clients ~servers ~unused ~duration:300.0
  in
  Printf.printf "synthesized a 5-minute trace: %d packets, %d CRII instances, %d scans\n"
    truth.Worm_gen.total_packets truth.Worm_gen.crii_instances
    truth.Worm_gen.scan_packets;

  (* round-trip through a capture file, as a real deployment would *)
  let path = Filename.temp_file "outbreak" ".pcap" in
  Pcap.write_file path (Pcap.of_packets packets);
  Printf.printf "wrote %s (%d bytes)\n" path (Unix.stat path).Unix.st_size;
  let capture = Pcap.read_file path in

  let config = Config.default |> Config.with_unused [ unused ] in
  let nids = Pipeline.create config in
  let alerts = Pipeline.process_pcap nids capture in

  let crii = List.filter (fun a -> a.Alert.template = "code-red-ii") alerts in
  Printf.printf "\nNIDS results:\n";
  List.iter (fun a -> print_endline ("  " ^ Alert.to_line a)) crii;
  Printf.printf "\ndetected %d/%d instances — %s\n" (List.length crii)
    truth.Worm_gen.crii_instances
    (if List.length crii = truth.Worm_gen.crii_instances then
       "every instance classified and matched"
     else "MISSED SOME");
  Sys.remove path
