(* Polymorphic shellcode hunting: generate mutated instances with both
   engine families, show why syntax matching fails, and walk one match in
   detail — disassembly, recovered execution order, bound variables.

   Run with: dune exec examples/polymorphic_hunt.exe *)

open Sanids

let payload = (Shellcodes.find "classic").Shellcodes.code

let () =
  let rng = Rng.create 31337L in

  (* 1. two instances of the same payload: not a byte in common *)
  let g1 = Admmutate.generate ~family:Admmutate.Xor_loop rng ~payload in
  let g2 = Admmutate.generate ~family:Admmutate.Xor_loop rng ~payload in
  Printf.printf "two ADMmutate instances of the same shellcode:\n";
  Printf.printf "  instance 1: %d bytes   instance 2: %d bytes   identical: %b\n"
    (String.length g1.Admmutate.code)
    (String.length g2.Admmutate.code)
    (g1.Admmutate.code = g2.Admmutate.code);

  (* 2. static signatures cannot keep up *)
  let hits engine codes =
    List.length (List.filter (fun c -> engine c) codes)
  in
  let corpus =
    List.init 50 (fun _ -> (Admmutate.generate rng ~payload).Admmutate.code)
  in
  Printf.printf "\nover 50 fresh instances:\n";
  Printf.printf "  static signatures hit : %d/50\n"
    (hits (fun c -> Signatures.scan c <> None) corpus);
  Printf.printf "  semantic templates hit: %d/50\n"
    (hits
       (fun c -> Matcher.scan ~templates:Template_lib.default_set c <> [])
       corpus);

  (* 3. anatomy of one match *)
  (match Matcher.scan ~templates:Template_lib.default_set g1.Admmutate.code with
  | [] -> print_endline "unexpected: no match"
  | r :: _ ->
      Printf.printf "\nanatomy of the first match:\n  %s\n"
        (Format.asprintf "%a" Matcher.pp_result r);
      Printf.printf "\nmatched instructions:\n";
      List.iter
        (fun off ->
          match Decode.at g1.Admmutate.code off with
          | Some d ->
              Printf.printf "  %04x: %s\n" off (Pretty.to_string d.Decode.insn)
          | None -> ())
        r.Matcher.offsets);
  (* 4. dynamic proof: execute the instance in the sandboxed interpreter —
     the decoder reconstructs the payload and runs it to execve *)
  let emu = Emulator.create ~code:g1.Admmutate.code () in
  let payload_addr =
    Int32.add Emulator.code_base (Int32.of_int g1.Admmutate.payload_off)
  in
  (match Emulator.run ~max_steps:200_000 ~stop_at:payload_addr emu with
  | Emulator.Running, steps ->
      let decoded =
        Emulator.read_mem_opt emu payload_addr g1.Admmutate.payload_len
      in
      Printf.printf
        "\nemulation: decoder ran %d steps and reconstructed the payload: %b\n"
        steps
        (decoded = Some payload);
      (match Emulator.run ~max_steps:10_000 emu with
      | Emulator.Syscall 0x80, _ ->
          Printf.printf "emulation: decoded payload reached int 0x80 with eax=%ld (execve)\n"
            (Emulator.reg emu Reg.EAX)
      | _ -> print_endline "emulation: payload did not reach its syscall")
  | _ -> print_endline "emulation: decoder did not reach the payload");

  (* 5. the decoder region, as the disassembler saw it *)
  let sled = g1.Admmutate.sled_len in
  let decoder =
    String.sub g1.Admmutate.code sled (min 48 (String.length g1.Admmutate.code - sled))
  in
  Printf.printf "\nfirst decoder bytes after the sled (linear sweep):\n";
  Array.iter
    (fun (d : Decode.decoded) ->
      Printf.printf "  %04x: %s\n" (sled + d.Decode.off) (Pretty.to_string d.Decode.insn))
    (Decode.all decoder)
