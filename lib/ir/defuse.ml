type def_site = Entry | At of int

(* Registers an instruction reads, at operand level (the lifted IR drops
   compare operands, which def-use needs).  ESP is excluded throughout:
   stack-pointer discipline would otherwise chain every push/pop together
   and drown the analysis. *)
let operand_read_regs (o : Insn.operand) =
  match o with
  | Insn.Reg r -> [ r ]
  | Insn.Reg8 r -> [ Reg.parent8 r ]
  | Insn.Imm _ -> []
  | Insn.Mem m ->
      (match m.Insn.base with Some b -> [ b ] | None -> [])
      @ (match m.Insn.index with Some (r, _) -> [ r ] | None -> [])

let insn_reads (i : Insn.t) : Reg.t list =
  let dedup l = List.sort_uniq compare l in
  let rmw dst src = operand_read_regs dst @ operand_read_regs src in
  dedup
    (List.filter
       (fun r -> not (Reg.equal r Reg.ESP))
       (match i with
       | Insn.Mov (Insn.S8bit, (Insn.Reg8 _ as dst), src) ->
           (* a byte store merges into the old register value *)
           operand_read_regs dst @ operand_read_regs src
       | Insn.Mov (_, dst, src) ->
           (* memory destinations read their addressing registers *)
           (match dst with Insn.Mem _ -> operand_read_regs dst | _ -> [])
           @ operand_read_regs src
       | Insn.Arith (_, _, dst, src) | Insn.Test (_, dst, src) -> rmw dst src
       | Insn.Not (_, o) | Insn.Neg (_, o) | Insn.Inc (_, o) | Insn.Dec (_, o)
       | Insn.Shift (_, _, o, _) ->
           operand_read_regs o
       | Insn.Lea (_, m) -> operand_read_regs (Insn.Mem m)
       | Insn.Xchg (a, b) -> [ a; b ]
       | Insn.Push_reg r -> [ r ]
       | Insn.Pop_reg _ -> []
       | Insn.Push_imm _ -> []
       | Insn.Pushad -> Array.to_list Reg.all
       | Insn.Popad | Insn.Pushfd | Insn.Popfd -> []
       | Insn.Jmp_rel _ | Insn.Jcc_rel _ | Insn.Call_rel _ -> []
       | Insn.Loop _ | Insn.Loope _ | Insn.Loopne _ | Insn.Jecxz _ -> [ Reg.ECX ]
       | Insn.Ret -> []
       | Insn.Int _ ->
           (* syscall arguments *)
           [ Reg.EAX; Reg.EBX; Reg.ECX; Reg.EDX; Reg.ESI; Reg.EDI ]
       | Insn.Int3 | Insn.Nop | Insn.Cld | Insn.Std -> []
       | Insn.Lodsb | Insn.Lodsd -> [ Reg.ESI ]
       | Insn.Stosb | Insn.Stosd -> [ Reg.EAX; Reg.EDI ]
       | Insn.Movsb | Insn.Movsd -> [ Reg.ESI; Reg.EDI ]
       | Insn.Scasb -> [ Reg.EAX; Reg.EDI ]
       | Insn.Cmpsb -> [ Reg.ESI; Reg.EDI ]
       | Insn.Cdq | Insn.Cwde | Insn.Sahf | Insn.Lahf -> [ Reg.EAX ]
       | Insn.Clc | Insn.Stc | Insn.Cmc | Insn.Fwait -> []
       | Insn.Rep_movsb | Insn.Rep_movsd -> [ Reg.ESI; Reg.EDI; Reg.ECX ]
       | Insn.Rep_stosb | Insn.Rep_stosd -> [ Reg.EAX; Reg.EDI; Reg.ECX ]
       | Insn.Movzx (_, src) | Insn.Movsx (_, src) -> operand_read_regs src
       | Insn.Mul (_, o) | Insn.Imul (_, o) -> Reg.EAX :: operand_read_regs o
       | Insn.Div (_, o) | Insn.Idiv (_, o) ->
           Reg.EAX :: Reg.EDX :: operand_read_regs o
       | Insn.Imul2 (d, o) -> d :: operand_read_regs o
       | Insn.Imul3 (_, o, _) -> operand_read_regs o
       | Insn.Bad _ -> []))

let insn_writes (i : Insn.t) : Reg.t list =
  List.sort_uniq compare
    (List.filter
       (fun r -> not (Reg.equal r Reg.ESP))
       (List.concat_map Sem.writes (Sem.lift i)))

(* Effects that make an instruction unconditionally "used": memory writes,
   stack pushes, control flow, syscalls. *)
let has_side_effect (i : Insn.t) =
  Insn.is_control_flow i
  || List.exists
       (fun sem ->
         Sem.writes_memory sem
         || match sem with Sem.S_pop _ -> true | _ -> false)
       (Sem.lift i)

type t = {
  trace : Trace.t;
  reads_at : Reg.t list array;
  writes_at : Reg.t list array;
  side_effect : bool array;
}

let analyze (trace : Trace.t) =
  let n = Array.length trace in
  {
    trace;
    reads_at = Array.init n (fun k -> insn_reads trace.(k).Trace.insn);
    writes_at = Array.init n (fun k -> insn_writes trace.(k).Trace.insn);
    side_effect = Array.init n (fun k -> has_side_effect trace.(k).Trace.insn);
  }

let check_index t k =
  if k < 0 || k >= Array.length t.trace then invalid_arg "Defuse: index out of range"

let reads t k =
  check_index t k;
  List.map
    (fun r ->
      let rec back j =
        if j < 0 then Entry
        else if List.exists (Reg.equal r) t.writes_at.(j) then At j
        else back (j - 1)
      in
      (r, back (k - 1)))
    t.reads_at.(k)

let writes t k =
  check_index t k;
  t.writes_at.(k)

(* Is the value [r] written at [k] consumed before being clobbered? *)
let write_used t k r =
  let n = Array.length t.trace in
  let rec forward j =
    if j >= n then false
    else if List.exists (Reg.equal r) t.reads_at.(j) then true
    else if List.exists (Reg.equal r) t.writes_at.(j) then false
    else forward (j + 1)
  in
  forward (k + 1)

let is_dead_write t k =
  check_index t k;
  (not t.side_effect.(k))
  && t.writes_at.(k) <> []
  && List.for_all (fun r -> not (write_used t k r)) t.writes_at.(k)

let dead_fraction t =
  let n = Array.length t.trace in
  if n = 0 then 0.0
  else begin
    let dead = ref 0 in
    for k = 0 to n - 1 do
      if is_dead_write t k then incr dead
    done;
    float_of_int !dead /. float_of_int n
  end

let uses_of t k =
  check_index t k;
  let n = Array.length t.trace in
  List.concat_map
    (fun r ->
      let rec forward j acc =
        if j >= n then List.rev acc
        else if List.exists (Reg.equal r) t.reads_at.(j) then
          (* reads-then-writes keeps scanning only if the reg survives *)
          if List.exists (Reg.equal r) t.writes_at.(j) then List.rev (j :: acc)
          else forward (j + 1) (j :: acc)
        else if List.exists (Reg.equal r) t.writes_at.(j) then List.rev acc
        else forward (j + 1) acc
      in
      forward (k + 1) [])
    t.writes_at.(k)
  |> List.sort_uniq compare
