(** Def-use chains over an execution trace.

    For each trace position, which earlier position last defined each
    register the instruction reads — and, dually, whether a write is ever
    consumed before being overwritten.  This is the def-use machinery the
    semantic-matching literature leans on; here it also powers junk
    diagnostics: garbage instructions inserted by polymorphic engines are
    exactly the {e dead writes}, so {!dead_fraction} measures an engine's
    junk density from the outside. *)

type def_site = Entry | At of int
(** Where a value was defined: live at trace entry, or by the step at
    this trace index. *)

type t

val analyze : Trace.t -> t

val reads : t -> int -> (Reg.t * def_site) list
(** Registers read by the instruction at a trace index, each with its
    reaching definition. *)

val writes : t -> int -> Reg.t list
(** Registers written by the instruction at a trace index. *)

val is_dead_write : t -> int -> bool
(** The instruction writes at least one register and none of its written
    registers (nor memory, nor control flow) is ever consumed later in
    the trace.  Flag-only and no-effect instructions count as dead;
    memory writes, stack pushes, branches and syscalls never do. *)

val dead_fraction : t -> float
(** Share of trace instructions that are dead writes — a junk-density
    estimate. *)

val uses_of : t -> int -> int list
(** Trace indices that consume a value defined at the given index. *)
