(** Flow-forward constant propagation over {!Sem} operations.

    Tracks a known-bits abstraction per register — [(value, known_mask)] —
    so byte-wide updates compose ([xor eax,eax; mov al,0x0b] yields a
    fully known [EAX = 11]), plus a bounded abstract stack so constants
    routed through [push imm; pop reg] survive.  This is the machinery
    behind the paper's contribution (c): templates demand {e constant
    values}, and any arithmetic route to the constant (mov+add chains,
    stack round-trips, xor tricks) is folded here. *)

type t
(** Immutable abstract state. *)

val initial : t
(** Nothing known. *)

val step : t -> Sem.t -> t
(** Abstractly execute one semantic operation. *)

val step_insn : t -> Insn.t -> t
(** [step] over all of an instruction's operations. *)

val reg32 : t -> Reg.t -> int32 option
(** Fully known 32-bit value, if any. *)

val reg_low8 : t -> Reg.t -> int option
(** Known low byte (bits 0–7), even when the rest is unknown. *)

val value : t -> Sem.value -> int32 option
(** Fully known value of an operand summary. *)

val value_low8 : t -> Sem.value -> int option
(** Known low byte of an operand summary. *)

val stack_depth : t -> int
(** Number of tracked abstract stack slots (diagnostic). *)

val slot_value : t -> int -> int32 option
(** Fully known value of the [k]-th tracked stack slot (top = 0). *)

val pp : Format.formatter -> t -> unit
