(** Control-flow graph recovery over a linear-sweep disassembly.

    Blocks begin at leaders (the region entry, branch targets, and the
    instructions following branches) and end at control transfers or the
    next leader.  Complements {!Trace}: the trace linearizes one
    execution path, the CFG shows the whole reachable structure — loops
    in obfuscated decoders appear as back edges here. *)

type terminator =
  | Fallthrough  (** runs into the next block *)
  | Jump of int  (** unconditional, target offset *)
  | Branch of { taken : int; fallthrough : int }  (** conditional / loop *)
  | Call of { target : int; return_to : int }
  | Return
  | Halt  (** int3, undecodable byte, or region end *)
  | Out_of_region  (** transfer target outside the swept bytes *)

type block = {
  start : int;  (** byte offset of the first instruction *)
  insns : Decode.decoded list;  (** in address order *)
  terminator : terminator;
}

type t

val build : string -> t
(** Sweep a region and recover its blocks. *)

val blocks : t -> block list
(** In address order. *)

val block_at : t -> int -> block option
(** The block whose first instruction sits at this offset. *)

val successors : t -> block -> int list
(** Offsets of successor blocks within the region. *)

val back_edges : t -> (int * int) list
(** [(from_block, to_block)] pairs where the edge targets an
    equal-or-earlier offset — loop candidates. *)

val block_count : t -> int
val pp : Format.formatter -> t -> unit
