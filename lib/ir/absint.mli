(** Abstract interpretation over the lifted IR.

    A strict generalisation of {!Constprop}: where the known-bits domain
    can only say "this bit is exactly b", the {!V} domain carries an
    unsigned interval, a power-of-two congruence (alignment + residue)
    and a payload-taint bit, all reduced against each other.  The module
    offers two consumers:

    - a per-{!Sem.t} transfer function ({!step} / {!step_insn}) mirroring
      {!Constprop.step}, used by the soundness oracle and by the
      bounded abstract executor in [sanids.confirm];
    - an intraprocedural CFG fixpoint ({!analyze}) with widening at loop
      heads and one narrowing pass, plus a may-write {!Region} summary,
      used by the SL4xx semantic lints.

    Soundness contract (property-tested against the validated emulator):
    every abstract operation over-approximates its concrete counterpart
    — if concrete inputs are contained in the abstract inputs, the
    concrete result is contained in the abstract result. *)

(** Abstract 32-bit values: interval × congruence × taint. *)
module V : sig
  type t
  (** Either bottom (no value) or a non-empty set
      [{ v | lo <= v <= hi  &&  v ≡ residue (mod 2^align) }]
      of unsigned 32-bit values, with a taint bit that is set when the
      value may be derived from payload bytes. *)

  val bot : t
  val top : t
  (** All 2{^32} values, tainted. *)

  val top_clean : t
  (** All 2{^32} values, untainted. *)

  val const : int32 -> t
  (** Singleton, untainted. *)

  val byte : t
  (** The interval [\[0, 255\]], tainted — an unknown payload byte. *)

  val range : int64 -> int64 -> t
  (** [range lo hi]: unsigned interval, untainted.
      Out-of-order or out-of-range bounds are clamped. *)

  val is_bot : t -> bool
  val is_const : t -> int32 option
  val contains : t -> int32 -> bool
  val taint : t -> bool
  val tainted : t -> t

  val bounds : t -> (int64 * int64) option
  (** Unsigned [lo, hi] bounds; [None] on bottom. *)

  val size : t -> int64
  (** Number of admissible values ([0] on bottom). *)

  val equal : t -> t -> bool
  val leq : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
  (** [widen old next]: extrapolate unstable interval bounds to the type
      extremes; the congruence component has finite height and is simply
      joined.  Guarantees stabilisation of any ascending chain. *)

  val narrow : t -> t -> t
  (** [narrow wide refined]: take the refined bound wherever widening had
      jumped to an extreme. *)

  (* Abstract transformers.  Each mirrors the emulator's 32-bit operation
     and over-approximates it. *)
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val logand : t -> t -> t
  val logor : t -> t -> t
  val logxor : t -> t -> t
  val lognot : t -> t
  val mul : t -> t -> t
  val shift : Insn.shift -> t -> int -> t
  (** Immediate-count shift/rotate at 32-bit width, count masked to 5 bits
      exactly as the emulator does. *)

  val add_wrapped : t -> int32 -> t
  (** [add_wrapped v c]: add a constant with 32-bit wrap (pointer
      arithmetic; exact on intervals). *)

  val low_byte : t -> t
  (** [logand v 0xFF] — the value's low 8 bits. *)

  val merge_low8 : t -> t -> t
  (** [merge_low8 old b]: replace the low byte of [old] with [b]
      (which must lie in [\[0,255\]]); the 8-bit register write. *)

  val without : t -> int32 -> t
  (** Refine: remove one value if it is an interval endpoint (used on
      branch refinement, e.g. the taken edge of [loop]). *)

  val pp : Format.formatter -> t -> unit
end

(** May-write memory summary: which addresses a fragment can store to. *)
module Region : sig
  type t

  val empty : t
  (** No write can happen. *)

  val top : t
  (** A write to an unknown address may happen. *)

  val store : t -> addr:V.t -> width:int -> t
  (** Account one store of [width] bytes at abstract address [addr]. *)

  val join : t -> t -> t
  val widen : t -> t -> t
  val equal : t -> t -> bool

  val writes : t -> bool
  (** Some write may happen. *)

  val max_bytes : t -> int64 option
  (** Upper bound on the number of distinct bytes the summarised writes
      can touch; [None] when unbounded (top). *)

  val may_touch : t -> lo:int64 -> hi:int64 -> bool
  (** Could any summarised write land in the unsigned address range
      [\[lo, hi\]]?  [false] only when provably impossible. *)

  val pp : Format.formatter -> t -> unit
end

type state = {
  regs : V.t array;  (** indexed by {!Reg.code} *)
  stack : V.t list;  (** LIFO mirror of the concrete stack, as in {!Constprop} *)
  written : Region.t;  (** may-write summary accumulated so far *)
}

val initial : state
(** All registers {!V.top_clean}, empty stack, nothing written. *)

val entry_state : ?arena_size:int -> unit -> state
(** The emulator's entry state: all registers 0, [ESP] at
    [code_base + arena_size - 16] (default arena 256 KiB). *)

val get : state -> Reg.t -> V.t
val set : state -> Reg.t -> V.t -> state

val step : state -> Sem.t -> state
(** Transfer one IR operation.  Mirrors {!Constprop.step}, additionally
    folding stores into {!state.written}. *)

val step_insn : state -> Insn.t -> state
(** Fold {!step} over {!Sem.lift}. *)

val join : state -> state -> state
val widen : state -> state -> state
val narrow : state -> state -> state
val equal : state -> state -> bool

type result = {
  in_states : (int, state) Hashtbl.t;
      (** per reachable block start offset, the fixpoint in-state *)
  out : state;
      (** join over every reachable block's post-state — its [written]
          component is the whole-fragment may-write summary *)
  reachable : int list;  (** reachable block start offsets, ascending *)
}

val analyze : ?entry:state -> ?base:int32 -> Cfg.t -> result
(** Intraprocedural fixpoint over a CFG.  Widening is applied at targets
    of {!Cfg.back_edges} after a couple of plain joins, followed by one
    narrowing sweep.  [Call] terminators push the constant return
    address [base + return_to] (default base {!Emulator.code_base}),
    which is what makes GetPC-style decoders' pointers constant. *)
