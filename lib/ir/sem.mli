(** Intermediate representation: normalized semantic operations.

    This is the "IR generator" stage of the paper's pipeline.  Each x86
    instruction lifts to a short list of {!t} values that describe {e what
    the instruction does} rather than how it is spelled: all four of
    [inc eax], [add eax,1], [sub eax,-1] and [lea eax,[eax+1]] lift to the
    same [S_advance], and 8-bit register names are normalized to their
    32-bit parent (the [width] field records the access size).  The
    template matcher and the constant propagator both work exclusively on
    this representation, which is what makes matching robust to equivalent
    instruction substitution. *)

type rop =
  | Ra of Insn.arith  (** two-operand arithmetic/logic *)
  | Rnot
  | Rneg
  | Rshift of Insn.shift
(** Transform operations, unified across register and memory targets. *)

type value =
  | Vconst of int32
  | Vreg of Reg.t  (** value currently held in a register *)
  | Vunknown

type t =
  | S_load of { width : Insn.size; dst : Reg.t; ptr : Reg.t; disp : int32 }
      (** [dst := mem\[ptr+disp\]] *)
  | S_store of { width : Insn.size; src : value; ptr : Reg.t; disp : int32 }
  | S_memop of {
      op : rop;
      width : Insn.size;
      ptr : Reg.t;
      disp : int32;
      src : value;  (** [Vunknown] for unary ops *)
    }  (** read-modify-write of one memory cell *)
  | S_regop of { op : rop; width : Insn.size; dst : Reg.t; src : value }
  | S_set of { width : Insn.size; dst : Reg.t; src : value }
      (** register assignment; [width = S8bit] touches only the low byte
          ([AH]-family sets lift as [S_other]) *)
  | S_advance of { reg : Reg.t; amount : int32; implicit : bool }
      (** [reg := reg + amount], any spelling; [implicit] marks pointer
          bumps that are side effects of string instructions *)
  | S_lea of { dst : Reg.t; base : Reg.t option; index : (Reg.t * Insn.scale) option; disp : int32 }
  | S_xchg of Reg.t * Reg.t
  | S_push of value
  | S_pop of Reg.t
  | S_cmp  (** compare/test: reads only, sets flags *)
  | S_branch of { kind : [ `Jmp | `Cond | `Loop | `Loop_cc | `Jecxz | `Call ]; disp : int }
  | S_syscall of int  (** [int n] *)
  | S_ret
  | S_halt  (** int3 / undecodable byte: straight-line execution ends *)
  | S_nop
  | S_other of { writes : Reg.t list; writes_mem : bool }
      (** catch-all with a sound clobber summary *)

val lift : Insn.t -> t list
(** Semantic operations of one instruction, in execution order.  Never
    returns the empty list. *)

val writes : t -> Reg.t list
(** 32-bit registers (normalized) this operation may modify. *)

val writes_memory : t -> bool

val pp : Format.formatter -> t -> unit
val pp_rop : Format.formatter -> rop -> unit
