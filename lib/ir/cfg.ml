type terminator =
  | Fallthrough
  | Jump of int
  | Branch of { taken : int; fallthrough : int }
  | Call of { target : int; return_to : int }
  | Return
  | Halt
  | Out_of_region

type block = {
  start : int;
  insns : Decode.decoded list;
  terminator : terminator;
}

type t = { region_len : int; table : (int, block) Hashtbl.t; order : int list }

let build code =
  let n = String.length code in
  let ds = Decode.all code in
  (* pass 1: leaders *)
  let leaders = Hashtbl.create 32 in
  Hashtbl.replace leaders 0 ();
  Array.iter
    (fun (d : Decode.decoded) ->
      let next = d.Decode.off + d.Decode.len in
      match Insn.branch_displacement d.Decode.insn with
      | Some disp ->
          let target = next + disp in
          if target >= 0 && target < n then Hashtbl.replace leaders target ();
          if next < n then Hashtbl.replace leaders next ()
      | None -> (
          match d.Decode.insn with
          | Insn.Ret | Insn.Int3 | Insn.Bad _ ->
              if next < n then Hashtbl.replace leaders next ()
          | _ -> ()))
    ds;
  (* pass 2: slice the sweep into blocks at leaders and transfers *)
  let table = Hashtbl.create 32 in
  let order = ref [] in
  let current = ref [] in
  let current_start = ref 0 in
  let flush terminator =
    match !current with
    | [] -> ()
    | insns ->
        let b = { start = !current_start; insns = List.rev insns; terminator } in
        Hashtbl.replace table b.start b;
        order := b.start :: !order
  in
  Array.iteri
    (fun i (d : Decode.decoded) ->
      if !current = [] then current_start := d.Decode.off
      else if Hashtbl.mem leaders d.Decode.off then begin
        flush Fallthrough;
        current := [];
        current_start := d.Decode.off
      end;
      current := d :: !current;
      let next = d.Decode.off + d.Decode.len in
      let in_region o = o >= 0 && o < n in
      let term_of () =
        match d.Decode.insn with
        | Insn.Jmp_rel disp ->
            let t = next + disp in
            Some (if in_region t then Jump t else Out_of_region)
        | Insn.Jcc_rel (_, disp) | Insn.Loop disp | Insn.Loope disp
        | Insn.Loopne disp | Insn.Jecxz disp ->
            let t = next + disp in
            Some
              (if in_region t || in_region next then
                 Branch { taken = t; fallthrough = next }
               else Out_of_region)
        | Insn.Call_rel disp ->
            let t = next + disp in
            Some (if in_region t then Call { target = t; return_to = next } else Out_of_region)
        | Insn.Ret -> Some Return
        | Insn.Int3 | Insn.Bad _ -> Some Halt
        | _ -> None
      in
      (match term_of () with
      | Some term ->
          flush term;
          current := []
      | None -> ());
      ignore i)
    ds;
  flush Halt;
  { region_len = n; table; order = List.rev !order }

let blocks t = List.filter_map (Hashtbl.find_opt t.table) t.order
let block_at t off = Hashtbl.find_opt t.table off
let block_count t = List.length t.order

let successors t (b : block) =
  let ok o = Hashtbl.mem t.table o in
  let next_block_after off =
    (* the lowest block start at or above [off] *)
    List.filter (fun s -> s >= off) t.order |> function [] -> None | l -> Some (List.fold_left min max_int l)
  in
  match b.terminator with
  | Jump target -> if ok target then [ target ] else []
  | Branch { taken; fallthrough } ->
      List.filter ok [ taken; fallthrough ] |> List.sort_uniq compare
  | Call { target; return_to } ->
      List.filter ok [ target; return_to ] |> List.sort_uniq compare
  | Fallthrough -> (
      let last = List.nth b.insns (List.length b.insns - 1) in
      match next_block_after (last.Decode.off + last.Decode.len) with
      | Some o when ok o -> [ o ]
      | Some _ | None -> [])
  | Return | Halt | Out_of_region -> []

let back_edges t =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun succ -> if succ <= b.start then Some (b.start, succ) else None)
        (successors t b))
    (blocks t)

let pp ppf t =
  List.iteri
    (fun i b ->
      if i > 0 then Format.fprintf ppf "@\n";
      let succ = successors t b in
      Format.fprintf ppf "block %04x (%d insns) -> [%s]" b.start
        (List.length b.insns)
        (String.concat ";" (List.map (Printf.sprintf "%04x") succ)))
    (blocks t)
