(** Execution-order recovery.

    Obfuscators scramble the byte order of code and stitch the pieces
    back together with unconditional jumps (the paper's Figure 1(c)).
    Matching must therefore walk code in {e execution order}.  A trace
    starts at a candidate entry offset and follows unconditional jumps
    and calls, falls through conditional branches and [loop]s, and stops
    at returns, halts, out-of-range targets, revisited offsets, or a
    length bound. *)

type step = {
  off : int;  (** byte offset of the instruction within the region *)
  len : int;
  insn : Insn.t;
  sems : Sem.t array;  (** [Sem.lift insn], indexable without [List.nth] *)
  state : Constprop.t;  (** abstract state {e before} the instruction *)
}

type t = step array

val build : ?budget:Budget.t -> ?max_len:int -> string -> entry:int -> t
(** Trace of at most [max_len] (default 1024) instructions starting at
    byte offset [entry].  Empty when [entry] is out of range.  When
    [budget] is given, every step first takes one instruction of fuel:
    the walk stops early (and the budget records [Truncated
    Instructions]) once the per-packet decode allowance is gone. *)

val build_cached : ?budget:Budget.t -> ?max_len:int -> Icache.t -> entry:int -> t
(** Same walk as {!build} over the cache's region, but each byte offset
    is decoded and lifted at most once per {!Icache.t} — traces from
    different entries share the per-offset work.  Produces exactly the
    trace [build (Icache.code cache) ~entry] would. *)

val entry_points : ?limit:int -> string -> int list
(** Candidate entry offsets for a code region, most promising first:
    the region start and a few following offsets (decode
    self-synchronization), branch targets discovered by linear sweep,
    and offsets following sweep boundaries ([ret], [int3], undecodable
    bytes).  Capped at [limit] (default 256), deduplicated. *)

val pp : Format.formatter -> t -> unit
