(** Per-region instruction cache: memoized decode + lift.

    [Matcher.scan] enumerates many candidate entry offsets over one code
    region, and the traces they spawn overlap heavily (an n-byte NOP sled
    costs ~n × trace-length decodes without sharing).  An [Icache.t]
    decodes and lifts each byte offset at most once; every later trace
    walking through that offset reuses the [(insn, len, sems)] entry.

    Only path-independent data is memoized — the {!Constprop} state is a
    property of the walk, not the offset, and stays per-trace — so a
    cached walk is byte-for-byte identical to an uncached one. *)

type entry = {
  insn : Insn.t;
  len : int;
  sems : Sem.t array;  (** [Sem.lift insn], pre-converted for indexing *)
}

type t

val create : string -> t
(** A fresh, empty cache over one code region. *)

val code : t -> string
(** The cached region. *)

val decode : t -> int -> entry option
(** Decode at a byte offset, memoized.  [None] out of range or when the
    byte has no decoding ([Decode.at] returning [None]); the negative
    result is memoized too. *)

val hits : t -> int
(** Lookups served from the table. *)

val misses : t -> int
(** Lookups that had to decode. *)

val hit_ratio : t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)
