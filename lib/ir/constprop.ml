(* A known-bits abstract value: bit i of [value] is meaningful iff bit i of
   [known] is set. *)
type av = { value : int32; known : int32 }

let unknown = { value = 0l; known = 0l }
let const v = { value = v; known = 0xFFFFFFFFl }
let fully_known a = Int32.equal a.known 0xFFFFFFFFl

type t = { regs : av array; stack : av list }

let max_stack = 128

let initial = { regs = Array.make 8 unknown; stack = [] }

let get t r = t.regs.(Reg.code r)

let set t r a =
  let regs = Array.copy t.regs in
  regs.(Reg.code r) <- a;
  { t with regs }

let reg32 t r =
  let a = get t r in
  if fully_known a then Some a.value else None

let reg_low8 t r =
  let a = get t r in
  if Int32.logand a.known 0xFFl = 0xFFl then Some (Int32.to_int a.value land 0xFF)
  else None

let av_of_value t (v : Sem.value) =
  match v with
  | Sem.Vconst c -> const c
  | Sem.Vreg r -> get t r
  | Sem.Vunknown -> unknown

let value t v =
  let a = av_of_value t v in
  if fully_known a then Some a.value else None

let value_low8 t v =
  let a = av_of_value t v in
  if Int32.logand a.known 0xFFl = 0xFFl then Some (Int32.to_int a.value land 0xFF)
  else None

(* --- abstract bitwise/arithmetic operators -------------------------- *)

let av_and a b =
  (* a bit is known if both inputs are known, or either input is a known 0 *)
  let zero_a = Int32.logand a.known (Int32.lognot a.value) in
  let zero_b = Int32.logand b.known (Int32.lognot b.value) in
  let known = Int32.logor (Int32.logand a.known b.known) (Int32.logor zero_a zero_b) in
  { value = Int32.logand (Int32.logand a.value b.value) known; known }

let av_or a b =
  let one_a = Int32.logand a.known a.value in
  let one_b = Int32.logand b.known b.value in
  let known = Int32.logor (Int32.logand a.known b.known) (Int32.logor one_a one_b) in
  { value = Int32.logand (Int32.logor a.value b.value) known; known }

let av_xor a b =
  let known = Int32.logand a.known b.known in
  { value = Int32.logand (Int32.logxor a.value b.value) known; known }

let av_not a = { a with value = Int32.logand (Int32.lognot a.value) a.known }

let av_binop_full f a b =
  if fully_known a && fully_known b then const (f a.value b.value) else unknown

let shift_count b =
  (* hardware masks the count to 5 bits *)
  Int32.to_int (Int32.logand b 31l)

let rotl32 v n =
  let n = n land 31 in
  if n = 0 then v
  else Int32.logor (Int32.shift_left v n) (Int32.shift_right_logical v (32 - n))

let apply_rop_32 (op : Sem.rop) a b =
  match op with
  | Sem.Ra Insn.Add -> av_binop_full Int32.add a b
  | Sem.Ra Insn.Sub -> av_binop_full Int32.sub a b
  | Sem.Ra Insn.And -> av_and a b
  | Sem.Ra Insn.Or -> av_or a b
  | Sem.Ra Insn.Xor -> av_xor a b
  | Sem.Ra Insn.Adc | Sem.Ra Insn.Sbb ->
      (* carry flag is not tracked *)
      unknown
  | Sem.Ra Insn.Cmp -> a (* cmp does not write; unreachable via S_regop *)
  | Sem.Rnot -> av_not a
  | Sem.Rneg -> if fully_known a then const (Int32.neg a.value) else unknown
  | Sem.Rshift s ->
      if fully_known a && fully_known b then
        let n = shift_count b.value in
        const
          (match s with
          | Insn.Shl -> Int32.shift_left a.value n
          | Insn.Shr -> Int32.shift_right_logical a.value n
          | Insn.Sar -> Int32.shift_right a.value n
          | Insn.Rol -> rotl32 a.value n
          | Insn.Ror -> rotl32 a.value (32 - (n land 31)))
      else unknown

(* Merge an 8-bit result into the low byte of the old value. *)
let merge_low8 old_av low_av =
  let mask = 0xFFl in
  let inv = Int32.lognot mask in
  {
    value = Int32.logor (Int32.logand old_av.value inv) (Int32.logand low_av.value mask);
    known = Int32.logor (Int32.logand old_av.known inv) (Int32.logand low_av.known mask);
  }

let apply_rop_8 op old_dst src =
  (* compute on the full abstract value but only commit the low byte; the
     bitwise operators are byte-local, and add/sub are recomputed on the
     known low bytes when both are known *)
  let low_known a = Int32.logand a.known 0xFFl = 0xFFl in
  let low a = Int32.logand a.value 0xFFl in
  let result =
    match op with
    | Sem.Ra Insn.Add when low_known old_dst && low_known src ->
        const (Int32.of_int ((Int32.to_int (low old_dst) + Int32.to_int (low src)) land 0xFF))
    | Sem.Ra Insn.Sub when low_known old_dst && low_known src ->
        const (Int32.of_int ((Int32.to_int (low old_dst) - Int32.to_int (low src)) land 0xFF))
    | Sem.Ra Insn.Add | Sem.Ra Insn.Sub -> unknown
    | Sem.Rshift s when low_known old_dst && low_known src ->
        let n = Int32.to_int (low src) land 31 in
        let v = Int32.to_int (low old_dst) in
        let r =
          match s with
          | Insn.Shl -> (v lsl n) land 0xFF
          | Insn.Shr -> v lsr n
          | Insn.Sar ->
              let signed = if v >= 0x80 then v - 0x100 else v in
              (signed asr n) land 0xFF
          | Insn.Rol ->
              let n = n land 7 in
              ((v lsl n) lor (v lsr (8 - n))) land 0xFF
          | Insn.Ror ->
              let n = n land 7 in
              ((v lsr n) lor (v lsl (8 - n))) land 0xFF
        in
        const (Int32.of_int r)
    | Sem.Rshift _ -> unknown
    | Sem.Rneg when low_known old_dst ->
        const (Int32.of_int (-Int32.to_int (low old_dst) land 0xFF))
    | Sem.Rneg -> unknown
    | Sem.Ra Insn.And | Sem.Ra Insn.Or | Sem.Ra Insn.Xor | Sem.Rnot ->
        apply_rop_32 op old_dst src
    | Sem.Ra Insn.Adc | Sem.Ra Insn.Sbb | Sem.Ra Insn.Cmp -> unknown
  in
  merge_low8 old_dst result

let clobber t regs =
  List.fold_left (fun acc r -> set acc r unknown) t regs

let push_stack t a =
  let stack = a :: t.stack in
  let stack = if List.length stack > max_stack then t.stack else stack in
  { t with stack }

(* ESP-relative slot access: the abstract stack is a LIFO aligned with the
   concrete stack (push/pop keep them in sync; any opaque ESP write resets
   it), so [esp + 4k] is the k-th tracked slot. *)
let slot_of_esp (ptr : Reg.t) (disp : int32) depth =
  if
    Reg.equal ptr Reg.ESP
    && Int32.compare disp 0l >= 0
    && Int32.rem disp 4l = 0l
    && Int32.to_int disp / 4 < depth
  then Some (Int32.to_int disp / 4)
  else None

let stack_get t k = List.nth t.stack k

let stack_set t k v =
  { t with stack = List.mapi (fun i x -> if i = k then v else x) t.stack }

let step t (s : Sem.t) =
  match s with
  | Sem.S_load { width; dst; ptr; disp } -> (
      match slot_of_esp ptr disp (List.length t.stack) with
      | Some k -> (
          let v = stack_get t k in
          match width with
          | Insn.S32bit -> set t dst v
          | Insn.S8bit -> set t dst (merge_low8 (get t dst) v))
      | None -> set t dst unknown)
  | Sem.S_store { width; src; ptr; disp } -> (
      match slot_of_esp ptr disp (List.length t.stack) with
      | Some k -> (
          let v = av_of_value t src in
          match width with
          | Insn.S32bit -> stack_set t k v
          | Insn.S8bit -> stack_set t k (merge_low8 (stack_get t k) v))
      | None -> t)
  | Sem.S_memop { op; width; ptr; disp; src } -> (
      match slot_of_esp ptr disp (List.length t.stack) with
      | Some k -> (
          let a = stack_get t k in
          let b = av_of_value t src in
          match width with
          | Insn.S32bit -> stack_set t k (apply_rop_32 op a b)
          | Insn.S8bit -> stack_set t k (apply_rop_8 op a b))
      | None -> t)
  | Sem.S_cmp | Sem.S_nop -> t
  | Sem.S_regop { op; width; dst; src } -> (
      let a = get t dst in
      let b = av_of_value t src in
      match width with
      | Insn.S32bit -> set t dst (apply_rop_32 op a b)
      | Insn.S8bit -> set t dst (apply_rop_8 op a b))
  | Sem.S_set { width; dst; src } -> (
      let b = av_of_value t src in
      match width with
      | Insn.S32bit -> set t dst b
      | Insn.S8bit -> set t dst (merge_low8 (get t dst) b))
  | Sem.S_advance { reg; amount; _ } ->
      let a = get t reg in
      if fully_known a then set t reg (const (Int32.add a.value amount))
      else set t reg unknown
  | Sem.S_lea { dst; base; index; disp } -> (
      let base_av = match base with None -> const 0l | Some b -> get t b in
      let index_av =
        match index with
        | None -> Some 0l
        | Some (r, sc) -> (
            match reg32 t r with
            | None -> None
            | Some v ->
                let m =
                  match sc with Insn.S1 -> 1l | Insn.S2 -> 2l | Insn.S4 -> 4l | Insn.S8 -> 8l
                in
                Some (Int32.mul v m))
      in
      match (fully_known base_av, index_av) with
      | true, Some iv -> set t dst (const (Int32.add (Int32.add base_av.value iv) disp))
      | _, _ -> set t dst unknown)
  | Sem.S_xchg (a, b) ->
      let va = get t a and vb = get t b in
      set (set t a vb) b va
  | Sem.S_push v -> push_stack t (av_of_value t v)
  | Sem.S_pop r -> (
      match t.stack with
      | top :: rest -> { (set t r top) with stack = rest }
      | [] -> set t r unknown)
  | Sem.S_branch _ -> t
  | Sem.S_syscall _ -> set t Reg.EAX unknown
  | Sem.S_ret -> { t with stack = (match t.stack with _ :: r -> r | [] -> []) }
  | Sem.S_halt -> t
  | Sem.S_other { writes; _ } ->
      let t = clobber t writes in
      if List.exists (Reg.equal Reg.ESP) writes then { t with stack = [] } else t

let step_insn t i = List.fold_left step t (Sem.lift i)

let stack_depth t = List.length t.stack

let slot_value t k =
  if k < 0 || k >= List.length t.stack then None
  else
    let a = stack_get t k in
    if fully_known a then Some a.value else None

let pp ppf t =
  Array.iteri
    (fun i a ->
      if not (Int32.equal a.known 0l) then
        Format.fprintf ppf "%s=%08lx/%08lx " (Reg.name (Reg.of_code i)) a.value a.known)
    t.regs;
  Format.fprintf ppf "stack:%d" (List.length t.stack)
