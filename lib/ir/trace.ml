type step = {
  off : int;
  len : int;
  insn : Insn.t;
  sems : Sem.t array;
  state : Constprop.t;
}

type t = step array

(* The walker is shared by the direct and the memoized builders; [decode]
   abstracts where (insn, len, sems) comes from.  When a [budget] is
   supplied, each step takes one instruction of fuel first: a jmp-chain
   maze can spend at most the packet's fuel across every trace built for
   it, no matter how many entries are enumerated. *)
let walk ?budget ~max_len ~region_len ~decode ~entry () =
  let n = region_len in
  let granted () =
    match budget with None -> true | Some b -> Budget.take_insns b 1
  in
  if entry < 0 || entry >= n then [||]
  else begin
    let visited = Hashtbl.create 64 in
    let acc = ref [] in
    let count = ref 0 in
    let state = ref Constprop.initial in
    let off = ref entry in
    let continue = ref true in
    while !continue && !count < max_len && !off >= 0 && !off < n
          && not (Hashtbl.mem visited !off) && granted () do
      Hashtbl.add visited !off ();
      match decode !off with
      | None -> continue := false
      | Some (e : Icache.entry) ->
          let insn = e.Icache.insn in
          let sems = e.Icache.sems in
          acc := { off = !off; len = e.Icache.len; insn; sems; state = !state } :: !acc;
          incr count;
          state := Array.fold_left Constprop.step !state sems;
          let next = !off + e.Icache.len in
          (match insn with
          | Insn.Jmp_rel disp -> off := next + disp
          | Insn.Call_rel disp -> off := next + disp
          | Insn.Ret | Insn.Int3 | Insn.Bad _ -> continue := false
          | Insn.Jcc_rel _ | Insn.Loop _ | Insn.Loope _ | Insn.Loopne _
          | Insn.Jecxz _ ->
              off := next
          | Insn.Mov _ | Insn.Arith _ | Insn.Test _ | Insn.Not _ | Insn.Neg _
          | Insn.Inc _ | Insn.Dec _ | Insn.Shift _ | Insn.Lea _ | Insn.Xchg _
          | Insn.Push_reg _ | Insn.Pop_reg _ | Insn.Push_imm _ | Insn.Pushad
          | Insn.Popad | Insn.Pushfd | Insn.Popfd | Insn.Int _ | Insn.Nop
          | Insn.Cld | Insn.Std | Insn.Lodsb | Insn.Lodsd | Insn.Stosb
          | Insn.Stosd | Insn.Movsb | Insn.Movsd | Insn.Scasb | Insn.Cmpsb
          | Insn.Cdq | Insn.Cwde | Insn.Clc | Insn.Stc | Insn.Cmc | Insn.Sahf
          | Insn.Lahf | Insn.Fwait | Insn.Rep_movsb | Insn.Rep_movsd
          | Insn.Rep_stosb | Insn.Rep_stosd | Insn.Movzx _ | Insn.Movsx _
          | Insn.Mul _ | Insn.Imul _ | Insn.Div _ | Insn.Idiv _ | Insn.Imul2 _
          | Insn.Imul3 _ ->
              off := next)
    done;
    Array.of_list (List.rev !acc)
  end

let build ?budget ?(max_len = 1024) code ~entry =
  let decode off =
    match Decode.at code off with
    | None -> None
    | Some d ->
        Some
          {
            Icache.insn = d.Decode.insn;
            len = d.Decode.len;
            sems = Array.of_list (Sem.lift d.Decode.insn);
          }
  in
  walk ?budget ~max_len ~region_len:(String.length code) ~decode ~entry ()

let build_cached ?budget ?(max_len = 1024) cache ~entry =
  walk ?budget ~max_len
    ~region_len:(String.length (Icache.code cache))
    ~decode:(Icache.decode cache) ~entry ()

let entry_points ?(limit = 256) code =
  let n = String.length code in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let add o =
    if o >= 0 && o < n && not (Hashtbl.mem seen o) then begin
      Hashtbl.add seen o ();
      out := o :: !out
    end
  in
  (* the region start, and nearby offsets to recover from byte-level
     desynchronization *)
  for o = 0 to min 16 (n - 1) do
    add o
  done;
  (* linear sweep: branch targets and post-boundary restarts *)
  let ds = Decode.all code in
  Array.iter
    (fun (d : Decode.decoded) ->
      (match Insn.branch_displacement d.Decode.insn with
      | Some disp -> add (d.Decode.off + d.Decode.len + disp)
      | None -> ());
      match d.Decode.insn with
      | Insn.Ret | Insn.Int3 | Insn.Bad _ -> add (d.Decode.off + d.Decode.len)
      | _ -> ())
    ds;
  let all = List.rev !out in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  take limit all

let pp ppf (t : t) =
  Array.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "@\n";
      Format.fprintf ppf "%04x: %a" s.off Pretty.pp s.insn)
    t
