type rop = Ra of Insn.arith | Rnot | Rneg | Rshift of Insn.shift

type value = Vconst of int32 | Vreg of Reg.t | Vunknown

type t =
  | S_load of { width : Insn.size; dst : Reg.t; ptr : Reg.t; disp : int32 }
  | S_store of { width : Insn.size; src : value; ptr : Reg.t; disp : int32 }
  | S_memop of {
      op : rop;
      width : Insn.size;
      ptr : Reg.t;
      disp : int32;
      src : value;
    }
  | S_regop of { op : rop; width : Insn.size; dst : Reg.t; src : value }
  | S_set of { width : Insn.size; dst : Reg.t; src : value }
  | S_advance of { reg : Reg.t; amount : int32; implicit : bool }
  | S_lea of {
      dst : Reg.t;
      base : Reg.t option;
      index : (Reg.t * Insn.scale) option;
      disp : int32;
    }
  | S_xchg of Reg.t * Reg.t
  | S_push of value
  | S_pop of Reg.t
  | S_cmp
  | S_branch of { kind : [ `Jmp | `Cond | `Loop | `Loop_cc | `Jecxz | `Call ]; disp : int }
  | S_syscall of int
  | S_ret
  | S_halt
  | S_nop
  | S_other of { writes : Reg.t list; writes_mem : bool }

let low_byte_parent (r : Reg.r8) : Reg.t option =
  match r with
  | Reg.AL -> Some Reg.EAX
  | Reg.CL -> Some Reg.ECX
  | Reg.DL -> Some Reg.EDX
  | Reg.BL -> Some Reg.EBX
  | Reg.AH | Reg.CH | Reg.DH | Reg.BH -> None

(* A memory operand the IR can reason about: single base register plus
   displacement.  Anything else is summarized conservatively. *)
let simple_mem (m : Insn.mem) : (Reg.t * int32) option =
  match (m.Insn.base, m.Insn.index) with
  | Some b, None -> Some (b, m.Insn.disp)
  | _, _ -> None

let value_of (o : Insn.operand) : value =
  match o with
  | Insn.Imm v -> Vconst v
  | Insn.Reg r -> Vreg r
  | Insn.Reg8 r -> (
      match low_byte_parent r with Some p -> Vreg p | None -> Vunknown)
  | Insn.Mem _ -> Vunknown

let other ?(writes_mem = false) writes = S_other { writes; writes_mem }

let all_regs = Array.to_list Reg.all

(* Lift [op dst, src] where dst is a register operand. *)
let lift_reg_dst (rop : rop) width (dst_parent : Reg.t) (src : Insn.operand) =
  [ S_regop { op = rop; width; dst = dst_parent; src = value_of src } ]

let lift_arith (aop : Insn.arith) (sz : Insn.size) dst src : t list =
  match aop with
  | Insn.Cmp -> [ S_cmp ]
  | Insn.Add | Insn.Or | Insn.Adc | Insn.Sbb | Insn.And | Insn.Sub | Insn.Xor
    -> (
      match (dst, src, sz) with
      (* xor r,r and sub r,r are idiomatic zeroing *)
      | Insn.Reg a, Insn.Reg b, Insn.S32bit
        when Reg.equal a b && (aop = Insn.Xor || aop = Insn.Sub) ->
          [ S_set { width = Insn.S32bit; dst = a; src = Vconst 0l } ]
      (* add/sub r32, imm is pointer arithmetic *)
      | Insn.Reg r, Insn.Imm v, Insn.S32bit when aop = Insn.Add ->
          [ S_advance { reg = r; amount = v; implicit = false } ]
      | Insn.Reg r, Insn.Imm v, Insn.S32bit when aop = Insn.Sub ->
          [ S_advance { reg = r; amount = Int32.neg v; implicit = false } ]
      | Insn.Reg r, _, Insn.S32bit ->
          lift_reg_dst (Ra aop) Insn.S32bit r src
      | Insn.Reg8 r, _, Insn.S8bit -> (
          match low_byte_parent r with
          | Some p -> lift_reg_dst (Ra aop) Insn.S8bit p src
          | None -> [ other [ Reg.parent8 r ] ])
      | Insn.Mem m, _, _ -> (
          match simple_mem m with
          | Some (ptr, disp) ->
              [ S_memop { op = Ra aop; width = sz; ptr; disp; src = value_of src } ]
          | None -> [ other [] ~writes_mem:true ])
      | (Insn.Reg _ | Insn.Reg8 _ | Insn.Imm _), _, _ -> [ other [] ])

let lift_unary (rop : rop) (sz : Insn.size) (o : Insn.operand) : t list =
  match (o, sz) with
  | Insn.Reg r, Insn.S32bit ->
      [ S_regop { op = rop; width = sz; dst = r; src = Vunknown } ]
  | Insn.Reg8 r, Insn.S8bit -> (
      match low_byte_parent r with
      | Some p -> [ S_regop { op = rop; width = sz; dst = p; src = Vunknown } ]
      | None -> [ other [ Reg.parent8 r ] ])
  | Insn.Mem m, _ -> (
      match simple_mem m with
      | Some (ptr, disp) ->
          [ S_memop { op = rop; width = sz; ptr; disp; src = Vunknown } ]
      | None -> [ other [] ~writes_mem:true ])
  | (Insn.Reg _ | Insn.Reg8 _ | Insn.Imm _), _ -> [ other [] ]

let lift_incdec (sign : int32) (sz : Insn.size) (o : Insn.operand) : t list =
  match (o, sz) with
  | Insn.Reg r, Insn.S32bit -> [ S_advance { reg = r; amount = sign; implicit = false } ]
  | Insn.Reg8 r, Insn.S8bit -> (
      match low_byte_parent r with
      | Some p ->
          [ S_regop { op = Ra Insn.Add; width = sz; dst = p; src = Vconst sign } ]
      | None -> [ other [ Reg.parent8 r ] ])
  | Insn.Mem m, _ -> (
      match simple_mem m with
      | Some (ptr, disp) ->
          [ S_memop { op = Ra Insn.Add; width = sz; ptr; disp; src = Vconst sign } ]
      | None -> [ other [] ~writes_mem:true ])
  | (Insn.Reg _ | Insn.Reg8 _ | Insn.Imm _), _ -> [ other [] ]

let lift (i : Insn.t) : t list =
  match i with
  | Insn.Mov (Insn.S32bit, Insn.Reg d, Insn.Imm v) ->
      [ S_set { width = Insn.S32bit; dst = d; src = Vconst v } ]
  | Insn.Mov (Insn.S32bit, Insn.Reg d, Insn.Reg s) ->
      [ S_set { width = Insn.S32bit; dst = d; src = Vreg s } ]
  | Insn.Mov (Insn.S32bit, Insn.Reg d, Insn.Mem m) -> (
      match simple_mem m with
      | Some (ptr, disp) -> [ S_load { width = Insn.S32bit; dst = d; ptr; disp } ]
      | None -> [ other [ d ] ])
  | Insn.Mov (Insn.S32bit, Insn.Mem m, src) -> (
      match simple_mem m with
      | Some (ptr, disp) ->
          [ S_store { width = Insn.S32bit; src = value_of src; ptr; disp } ]
      | None -> [ other [] ~writes_mem:true ])
  | Insn.Mov (Insn.S8bit, Insn.Reg8 d, src) -> (
      match low_byte_parent d with
      | None -> [ other [ Reg.parent8 d ] ]
      | Some p -> (
          match src with
          | Insn.Imm v -> [ S_set { width = Insn.S8bit; dst = p; src = Vconst v } ]
          | Insn.Reg8 s -> (
              match low_byte_parent s with
              | Some sp -> [ S_set { width = Insn.S8bit; dst = p; src = Vreg sp } ]
              | None -> [ S_set { width = Insn.S8bit; dst = p; src = Vunknown } ])
          | Insn.Mem m -> (
              match simple_mem m with
              | Some (ptr, disp) -> [ S_load { width = Insn.S8bit; dst = p; ptr; disp } ]
              | None -> [ other [ p ] ])
          | Insn.Reg _ -> [ other [ p ] ]))
  | Insn.Mov (Insn.S8bit, Insn.Mem m, src) -> (
      match simple_mem m with
      | Some (ptr, disp) ->
          let v =
            match src with
            | Insn.Imm imm -> Vconst imm
            | Insn.Reg8 s -> (
                match low_byte_parent s with Some sp -> Vreg sp | None -> Vunknown)
            | Insn.Reg _ | Insn.Mem _ -> Vunknown
          in
          [ S_store { width = Insn.S8bit; src = v; ptr; disp } ]
      | None -> [ other [] ~writes_mem:true ])
  | Insn.Mov (_, _, _) -> [ other [] ]
  | Insn.Arith (aop, sz, dst, src) -> lift_arith aop sz dst src
  | Insn.Test (_, _, _) -> [ S_cmp ]
  | Insn.Not (sz, o) -> lift_unary Rnot sz o
  | Insn.Neg (sz, o) -> lift_unary Rneg sz o
  | Insn.Inc (sz, o) -> lift_incdec 1l sz o
  | Insn.Dec (sz, o) -> lift_incdec (-1l) sz o
  | Insn.Shift (sop, sz, o, n) -> (
      match (o, sz) with
      | Insn.Reg r, Insn.S32bit ->
          [ S_regop { op = Rshift sop; width = sz; dst = r; src = Vconst (Int32.of_int n) } ]
      | Insn.Reg8 r, Insn.S8bit -> (
          match low_byte_parent r with
          | Some p ->
              [ S_regop { op = Rshift sop; width = sz; dst = p; src = Vconst (Int32.of_int n) } ]
          | None -> [ other [ Reg.parent8 r ] ])
      | Insn.Mem m, _ -> (
          match simple_mem m with
          | Some (ptr, disp) ->
              [ S_memop { op = Rshift sop; width = sz; ptr; disp; src = Vconst (Int32.of_int n) } ]
          | None -> [ other [] ~writes_mem:true ])
      | (Insn.Reg _ | Insn.Reg8 _ | Insn.Imm _), _ -> [ other [] ])
  | Insn.Lea (r, m) -> (
      match (m.Insn.base, m.Insn.index) with
      | Some b, None when Reg.equal b r ->
          [ S_advance { reg = r; amount = m.Insn.disp; implicit = false } ]
      | base, index -> [ S_lea { dst = r; base; index; disp = m.Insn.disp } ])
  | Insn.Xchg (a, b) -> if Reg.equal a b then [ S_nop ] else [ S_xchg (a, b) ]
  | Insn.Push_reg r -> [ S_push (Vreg r) ]
  | Insn.Pop_reg r -> [ S_pop r ]
  | Insn.Push_imm v -> [ S_push (Vconst v) ]
  | Insn.Pushad -> List.init 8 (fun _ -> S_push Vunknown)
  | Insn.Popad -> [ other (all_regs @ []) ]
  | Insn.Pushfd -> [ S_push Vunknown ]
  | Insn.Popfd -> [ other [ Reg.ESP ] ]
  | Insn.Jmp_rel d -> [ S_branch { kind = `Jmp; disp = d } ]
  | Insn.Jcc_rel (_, d) -> [ S_branch { kind = `Cond; disp = d } ]
  | Insn.Call_rel d -> [ S_push Vunknown; S_branch { kind = `Call; disp = d } ]
  | Insn.Loop d -> [ S_branch { kind = `Loop; disp = d } ]
  | Insn.Loope d | Insn.Loopne d -> [ S_branch { kind = `Loop_cc; disp = d } ]
  | Insn.Jecxz d -> [ S_branch { kind = `Jecxz; disp = d } ]
  | Insn.Ret -> [ S_ret ]
  | Insn.Int n -> [ S_syscall n ]
  | Insn.Int3 | Insn.Bad _ -> [ S_halt ]
  | Insn.Nop | Insn.Cld | Insn.Std -> [ S_nop ]
  | Insn.Lodsb ->
      [
        S_load { width = Insn.S8bit; dst = Reg.EAX; ptr = Reg.ESI; disp = 0l };
        S_advance { reg = Reg.ESI; amount = 1l; implicit = true };
      ]
  | Insn.Lodsd ->
      [
        S_load { width = Insn.S32bit; dst = Reg.EAX; ptr = Reg.ESI; disp = 0l };
        S_advance { reg = Reg.ESI; amount = 4l; implicit = true };
      ]
  | Insn.Stosb ->
      [
        S_store { width = Insn.S8bit; src = Vreg Reg.EAX; ptr = Reg.EDI; disp = 0l };
        S_advance { reg = Reg.EDI; amount = 1l; implicit = true };
      ]
  | Insn.Stosd ->
      [
        S_store { width = Insn.S32bit; src = Vreg Reg.EAX; ptr = Reg.EDI; disp = 0l };
        S_advance { reg = Reg.EDI; amount = 4l; implicit = true };
      ]
  | Insn.Movsb ->
      [
        other [] ~writes_mem:true;
        S_advance { reg = Reg.ESI; amount = 1l; implicit = true };
        S_advance { reg = Reg.EDI; amount = 1l; implicit = true };
      ]
  | Insn.Movsd ->
      [
        other [] ~writes_mem:true;
        S_advance { reg = Reg.ESI; amount = 4l; implicit = true };
        S_advance { reg = Reg.EDI; amount = 4l; implicit = true };
      ]
  | Insn.Scasb -> [ S_cmp; S_advance { reg = Reg.EDI; amount = 1l; implicit = true } ]
  | Insn.Cmpsb ->
      [
        S_cmp;
        S_advance { reg = Reg.ESI; amount = 1l; implicit = true };
        S_advance { reg = Reg.EDI; amount = 1l; implicit = true };
      ]
  | Insn.Cdq -> [ other [ Reg.EDX ] ]
  | Insn.Cwde -> [ other [ Reg.EAX ] ]
  | Insn.Lahf -> [ other [ Reg.EAX ] ]
  | Insn.Clc | Insn.Stc | Insn.Cmc | Insn.Sahf | Insn.Fwait -> [ S_nop ]
  | Insn.Rep_movsb | Insn.Rep_movsd ->
      [ other [ Reg.ESI; Reg.EDI; Reg.ECX ] ~writes_mem:true ]
  | Insn.Rep_stosb | Insn.Rep_stosd ->
      [ other [ Reg.EDI; Reg.ECX ] ~writes_mem:true ]
  | Insn.Movzx (d, src) -> (
      match src with
      | Insn.Mem m -> (
          match simple_mem m with
          | Some (ptr, disp) ->
              (* a zero-extending byte load is still a byte load to the
                 matcher; the zeroed upper bytes only help the decoder *)
              [
                S_set { width = Insn.S32bit; dst = d; src = Vconst 0l };
                S_load { width = Insn.S8bit; dst = d; ptr; disp };
              ]
          | None -> [ other [ d ] ])
      | Insn.Reg8 s -> (
          match low_byte_parent s with
          | Some sp when sp = d ->
              (* movzx r32, its own low byte: zeroing the destination
                 first would destroy the source — it is just a mask *)
              [
                S_regop
                  {
                    op = Ra Insn.And;
                    width = Insn.S32bit;
                    dst = d;
                    src = Vconst 0xFFl;
                  };
              ]
          | Some sp ->
              [
                S_set { width = Insn.S32bit; dst = d; src = Vconst 0l };
                S_set { width = Insn.S8bit; dst = d; src = Vreg sp };
              ]
          | None -> [ other [ d ] ])
      | Insn.Reg _ | Insn.Imm _ -> [ other [ d ] ])
  | Insn.Movsx (d, src) -> (
      match src with
      | Insn.Mem m -> (
          match simple_mem m with
          | Some (ptr, disp) ->
              [
                S_load { width = Insn.S8bit; dst = d; ptr; disp };
                other [ d ];
              ]
          | None -> [ other [ d ] ])
      | Insn.Reg8 _ | Insn.Reg _ | Insn.Imm _ -> [ other [ d ] ])
  | Insn.Mul _ | Insn.Imul _ -> [ other [ Reg.EAX; Reg.EDX ] ]
  | Insn.Div _ | Insn.Idiv _ -> [ other [ Reg.EAX; Reg.EDX ] ]
  | Insn.Imul2 (d, _) -> [ other [ d ] ]
  | Insn.Imul3 (d, _, _) -> [ other [ d ] ]

let writes = function
  | S_load { dst; _ } -> [ dst ]
  | S_store _ -> []
  | S_memop _ -> []
  | S_regop { dst; _ } -> [ dst ]
  | S_set { dst; _ } -> [ dst ]
  | S_advance { reg; _ } -> [ reg ]
  | S_lea { dst; _ } -> [ dst ]
  | S_xchg (a, b) -> [ a; b ]
  | S_push _ -> [ Reg.ESP ]
  | S_pop r -> [ r; Reg.ESP ]
  | S_cmp -> []
  | S_branch { kind = `Call; _ } -> [ Reg.ESP ]
  | S_branch _ -> []
  | S_syscall _ -> [ Reg.EAX ]
  | S_ret -> [ Reg.ESP ]
  | S_halt | S_nop -> []
  | S_other { writes; _ } -> writes

let writes_memory = function
  | S_store _ | S_memop _ | S_push _ -> true
  | S_other { writes_mem; _ } -> writes_mem
  | S_load _ | S_regop _ | S_set _ | S_advance _ | S_lea _ | S_xchg _ | S_pop _
  | S_cmp | S_branch _ | S_syscall _ | S_ret | S_halt | S_nop ->
      false

let pp_rop ppf = function
  | Ra a -> Format.pp_print_string ppf (Insn.arith_name a)
  | Rnot -> Format.pp_print_string ppf "not"
  | Rneg -> Format.pp_print_string ppf "neg"
  | Rshift s -> Format.pp_print_string ppf (Insn.shift_name s)

let pp_value ppf = function
  | Vconst v -> Format.fprintf ppf "0x%lx" v
  | Vreg r -> Reg.pp ppf r
  | Vunknown -> Format.pp_print_string ppf "?"

let pp_width ppf (w : Insn.size) =
  Format.pp_print_string ppf (match w with Insn.S8bit -> "b" | Insn.S32bit -> "d")

let pp ppf = function
  | S_load { width; dst; ptr; disp } ->
      Format.fprintf ppf "load.%a %a <- [%a+%ld]" pp_width width Reg.pp dst Reg.pp ptr disp
  | S_store { width; src; ptr; disp } ->
      Format.fprintf ppf "store.%a [%a+%ld] <- %a" pp_width width Reg.pp ptr disp pp_value src
  | S_memop { op; width; ptr; disp; src } ->
      Format.fprintf ppf "memop.%a %a [%a+%ld], %a" pp_width width pp_rop op Reg.pp ptr
        disp pp_value src
  | S_regop { op; width; dst; src } ->
      Format.fprintf ppf "regop.%a %a %a, %a" pp_width width pp_rop op Reg.pp dst pp_value src
  | S_set { width; dst; src } ->
      Format.fprintf ppf "set.%a %a <- %a" pp_width width Reg.pp dst pp_value src
  | S_advance { reg; amount; implicit } ->
      Format.fprintf ppf "adv%s %a, %ld" (if implicit then "*" else "") Reg.pp reg amount
  | S_lea { dst; _ } -> Format.fprintf ppf "lea %a, <ea>" Reg.pp dst
  | S_xchg (a, b) -> Format.fprintf ppf "xchg %a, %a" Reg.pp a Reg.pp b
  | S_push v -> Format.fprintf ppf "push %a" pp_value v
  | S_pop r -> Format.fprintf ppf "pop %a" Reg.pp r
  | S_cmp -> Format.pp_print_string ppf "cmp"
  | S_branch { kind; disp } ->
      let k =
        match kind with
        | `Jmp -> "jmp"
        | `Cond -> "jcc"
        | `Loop -> "loop"
        | `Loop_cc -> "loopcc"
        | `Jecxz -> "jecxz"
        | `Call -> "call"
      in
      Format.fprintf ppf "branch.%s %+d" k disp
  | S_syscall n -> Format.fprintf ppf "syscall 0x%x" n
  | S_ret -> Format.pp_print_string ppf "ret"
  | S_halt -> Format.pp_print_string ppf "halt"
  | S_nop -> Format.pp_print_string ppf "nop"
  | S_other { writes; writes_mem } ->
      Format.fprintf ppf "other(writes=[%s]%s)"
        (String.concat "," (List.map Reg.name writes))
        (if writes_mem then ",mem" else "")
