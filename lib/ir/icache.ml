type entry = { insn : Insn.t; len : int; sems : Sem.t array }

(* slots.(off): None = never decoded; Some None = decoded, no instruction;
   Some (Some e) = decoded instruction. *)
type t = {
  code : string;
  slots : entry option option array;
  mutable hits : int;
  mutable misses : int;
}

let create code =
  {
    code;
    slots = Array.make (max 1 (String.length code)) None;
    hits = 0;
    misses = 0;
  }

let code t = t.code

let decode t off =
  if off < 0 || off >= String.length t.code then None
  else
    match t.slots.(off) with
    | Some e ->
        t.hits <- t.hits + 1;
        e
    | None ->
        t.misses <- t.misses + 1;
        let e =
          match Decode.at t.code off with
          | None -> None
          | Some d ->
              Some
                {
                  insn = d.Decode.insn;
                  len = d.Decode.len;
                  sems = Array.of_list (Sem.lift d.Decode.insn);
                }
        in
        t.slots.(off) <- Some e;
        e

let hits t = t.hits
let misses t = t.misses

let hit_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
