(* Abstract interpretation over the lifted IR: an interval × power-of-two
   congruence × taint value domain, a may-write memory summary, and an
   intraprocedural CFG fixpoint with widening at loop heads.

   Soundness discipline: every transformer here over-approximates the
   corresponding concrete operation in Emulator/Constprop.  When in
   doubt an operation returns a coarser value — never a tighter one.
   The qcheck oracle in test_absint drives random concrete executions
   through both and checks containment. *)

let max32 = 0xFFFF_FFFFL
let two32 = 0x1_0000_0000L

let u64 (c : int32) = Int64.logand (Int64.of_int32 c) max32
let pow2 a = Int64.shift_left 1L a
let lmask a = if a >= 64 then -1L else Int64.sub (pow2 a) 1L

module V = struct
  (* Non-bottom invariant: 0 <= lo <= hi <= max32, 0 <= res < 2^align,
     and the set { v in [lo,hi] | v mod 2^align = res } is non-empty
     with lo and hi themselves members (reduced form). *)
  type v = { lo : int64; hi : int64; align : int; res : int64; taint : bool }
  type t = Bot | Val of v

  let bot = Bot

  (* Reduce interval endpoints onto the congruence; Bot when empty. *)
  let norm ~lo ~hi ~align ~res ~taint =
    let lo = max 0L lo and hi = min max32 hi in
    if Int64.compare lo hi > 0 then Bot
    else if align = 0 then Val { lo; hi; align = 0; res = 0L; taint }
    else
      let m = pow2 align in
      let res = Int64.logand res (Int64.sub m 1L) in
      let up v =
        let d = Int64.rem (Int64.sub res (Int64.rem v m)) m in
        Int64.add v (if Int64.compare d 0L < 0 then Int64.add d m else d)
      in
      let lo = up lo in
      let down v =
        let d = Int64.rem (Int64.sub (Int64.rem v m) res) m in
        Int64.sub v (if Int64.compare d 0L < 0 then Int64.add d m else d)
      in
      let hi = down hi in
      if Int64.compare lo hi > 0 then Bot else Val { lo; hi; align; res; taint }

  let top = Val { lo = 0L; hi = max32; align = 0; res = 0L; taint = true }
  let top_clean = Val { lo = 0L; hi = max32; align = 0; res = 0L; taint = false }
  let byte = Val { lo = 0L; hi = 255L; align = 0; res = 0L; taint = true }

  let const c =
    let u = u64 c in
    Val { lo = u; hi = u; align = 32; res = u; taint = false }

  let range lo hi = norm ~lo ~hi ~align:0 ~res:0L ~taint:false

  let is_bot = function Bot -> true | Val _ -> false

  let is_const = function
    | Val { lo; hi; _ } when Int64.equal lo hi -> Some (Int64.to_int32 lo)
    | Bot | Val _ -> None

  let contains t c =
    match t with
    | Bot -> false
    | Val { lo; hi; align; res; _ } ->
        let u = u64 c in
        Int64.compare lo u <= 0
        && Int64.compare u hi <= 0
        && (align = 0 || Int64.equal (Int64.logand u (lmask align)) res)

  let taint = function Bot -> false | Val v -> v.taint
  let tainted = function Bot -> Bot | Val v -> Val { v with taint = true }

  let bounds = function Bot -> None | Val { lo; hi; _ } -> Some (lo, hi)

  let size = function
    | Bot -> 0L
    | Val { lo; hi; align; _ } ->
        Int64.add (Int64.div (Int64.sub hi lo) (pow2 align)) 1L

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Val a, Val b ->
        Int64.equal a.lo b.lo && Int64.equal a.hi b.hi && a.align = b.align
        && Int64.equal a.res b.res && a.taint = b.taint
    | Bot, Val _ | Val _, Bot -> false

  let leq a b =
    match (a, b) with
    | Bot, _ -> true
    | Val _, Bot -> false
    | Val a, Val b ->
        Int64.compare b.lo a.lo <= 0
        && Int64.compare a.hi b.hi <= 0
        && b.align <= a.align
        && Int64.equal (Int64.logand a.res (lmask b.align)) b.res
        && ((not a.taint) || b.taint)

  (* Largest congruence below both: align down until the residues agree. *)
  let cong_join (a1, r1) (a2, r2) =
    let a = ref (min a1 a2) in
    while
      !a > 0 && not (Int64.equal (Int64.logand r1 (lmask !a)) (Int64.logand r2 (lmask !a)))
    do
      decr a
    done;
    (!a, Int64.logand r1 (lmask !a))

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Val a, Val b ->
        let align, res = cong_join (a.align, a.res) (b.align, b.res) in
        norm ~lo:(min a.lo b.lo) ~hi:(max a.hi b.hi) ~align ~res
          ~taint:(a.taint || b.taint)

  let widen old next =
    match (old, next) with
    | Bot, x | x, Bot -> x
    | Val o, Val n ->
        let align, res = cong_join (o.align, o.res) (n.align, n.res) in
        let lo = if Int64.compare n.lo o.lo < 0 then 0L else o.lo in
        let hi = if Int64.compare n.hi o.hi > 0 then max32 else o.hi in
        norm ~lo ~hi ~align ~res ~taint:(o.taint || n.taint)

  let narrow wide refined =
    match (wide, refined) with
    | Bot, _ | _, Bot -> refined
    | Val w, Val r ->
        let lo = if Int64.equal w.lo 0L then r.lo else w.lo in
        let hi = if Int64.equal w.hi max32 then r.hi else w.hi in
        norm ~lo ~hi ~align:w.align ~res:w.res ~taint:w.taint

  (* --- transformers ------------------------------------------------- *)

  let tainted_if t v = if t then tainted v else v

  let lift2_const f a b =
    match (is_const a, is_const b) with
    | Some x, Some y -> Some (tainted_if (taint a || taint b) (const (f x y)))
    | _, _ -> None

  let add a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Val x, Val y ->
        let t = x.taint || y.taint in
        let align, res =
          let al = min x.align y.align in
          (al, Int64.logand (Int64.add x.res y.res) (lmask al))
        in
        let lo = Int64.add x.lo y.lo and hi = Int64.add x.hi y.hi in
        if Int64.compare hi max32 <= 0 then norm ~lo ~hi ~align ~res ~taint:t
        else if Int64.compare lo two32 >= 0 then
          norm ~lo:(Int64.sub lo two32) ~hi:(Int64.sub hi two32) ~align ~res ~taint:t
        else norm ~lo:0L ~hi:max32 ~align ~res ~taint:t

  let neg a =
    match a with
    | Bot -> Bot
    | Val x ->
        let align, res =
          (x.align, Int64.logand (Int64.neg x.res) (lmask x.align))
        in
        if Int64.equal x.lo 0L && Int64.equal x.hi 0L then a
        else if Int64.compare x.lo 1L >= 0 then
          norm ~lo:(Int64.sub two32 x.hi) ~hi:(Int64.sub two32 x.lo) ~align ~res
            ~taint:x.taint
        else norm ~lo:0L ~hi:max32 ~align ~res ~taint:x.taint

  let sub a b = add a (neg b)
  let add_wrapped v c = add v (const c)

  (* x | y and x xor y cannot exceed the highest set-bit ceiling of
     either input: x,y < 2^k implies x|y < 2^k. *)
  let bit_ceiling hi =
    let rec go k = if Int64.compare (pow2 k) hi > 0 then k else go (k + 1) in
    Int64.sub (pow2 (go 0)) 1L

  let logand a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Val x, Val y -> (
        match lift2_const Int32.logand a b with
        | Some r -> r
        | None ->
            let al = min x.align y.align in
            let res = Int64.logand (Int64.logand x.res y.res) (lmask al) in
            norm ~lo:0L ~hi:(min x.hi y.hi) ~align:al ~res
              ~taint:(x.taint || y.taint))

  let logor a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Val x, Val y -> (
        match lift2_const Int32.logor a b with
        | Some r -> r
        | None ->
            let al = min x.align y.align in
            let res = Int64.logand (Int64.logor x.res y.res) (lmask al) in
            norm ~lo:(max x.lo y.lo) ~hi:(bit_ceiling (max x.hi y.hi)) ~align:al
              ~res ~taint:(x.taint || y.taint))

  let logxor a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Val x, Val y -> (
        match lift2_const Int32.logxor a b with
        | Some r -> r
        | None ->
            let al = min x.align y.align in
            let res = Int64.logand (Int64.logxor x.res y.res) (lmask al) in
            norm ~lo:0L ~hi:(bit_ceiling (max x.hi y.hi)) ~align:al ~res
              ~taint:(x.taint || y.taint))

  let lognot a =
    match a with
    | Bot -> Bot
    | Val x ->
        let res = Int64.logand (Int64.lognot x.res) (lmask x.align) in
        norm ~lo:(Int64.sub max32 x.hi) ~hi:(Int64.sub max32 x.lo) ~align:x.align
          ~res ~taint:x.taint

  let mul a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Val x, Val y -> (
        match lift2_const Int32.mul a b with
        | Some r -> r
        | None ->
            let t = x.taint || y.taint in
            let al = min 32 (x.align + y.align) in
            let res = Int64.logand (Int64.mul x.res y.res) (lmask al) in
            if
              Int64.equal x.hi 0L
              || Int64.compare y.hi (Int64.div max32 x.hi) <= 0
            then
              norm ~lo:(Int64.mul x.lo y.lo) ~hi:(Int64.mul x.hi y.hi) ~align:al
                ~res ~taint:t
            else norm ~lo:0L ~hi:max32 ~align:al ~res ~taint:t)

  (* Mirror of Emulator.do_shift at 32-bit width (count land 31; rotate
     count further mod 32), minus the flag effects. *)
  let shift (op : Insn.shift) a count =
    let n = count land 31 in
    if n = 0 then a
    else
      match a with
      | Bot -> Bot
      | Val x -> (
          match is_const a with
          | Some v ->
              let r =
                match op with
                | Insn.Shl -> Int32.shift_left v n
                | Insn.Shr -> Int32.shift_right_logical v n
                | Insn.Sar -> Int32.shift_right v n
                | Insn.Rol ->
                    Int32.logor (Int32.shift_left v n)
                      (Int32.shift_right_logical v (32 - n))
                | Insn.Ror ->
                    Int32.logor
                      (Int32.shift_right_logical v n)
                      (Int32.shift_left v (32 - n))
              in
              if x.taint then tainted (const r) else const r
          | None -> (
              match op with
              | Insn.Shl ->
                  let al = min 32 (x.align + n) in
                  let res = Int64.logand (Int64.shift_left x.res n) (lmask al) in
                  let hi = Int64.shift_left x.hi n in
                  if Int64.compare hi max32 <= 0 then
                    norm ~lo:(Int64.shift_left x.lo n) ~hi ~align:al ~res
                      ~taint:x.taint
                  else norm ~lo:0L ~hi:max32 ~align:al ~res ~taint:x.taint
              | Insn.Shr ->
                  let al = max 0 (x.align - n) in
                  norm
                    ~lo:(Int64.shift_right_logical x.lo n)
                    ~hi:(Int64.shift_right_logical x.hi n)
                    ~align:al
                    ~res:(Int64.shift_right_logical x.res n)
                    ~taint:x.taint
              | Insn.Sar ->
                  if Int64.compare x.hi 0x7FFF_FFFFL <= 0 then
                    norm
                      ~lo:(Int64.shift_right_logical x.lo n)
                      ~hi:(Int64.shift_right_logical x.hi n)
                      ~align:(max 0 (x.align - n))
                      ~res:(Int64.shift_right_logical x.res n)
                      ~taint:x.taint
                  else norm ~lo:0L ~hi:max32 ~align:0 ~res:0L ~taint:x.taint
              | Insn.Rol | Insn.Ror ->
                  norm ~lo:0L ~hi:max32 ~align:0 ~res:0L ~taint:x.taint))

  let low_byte a = logand a (const 0xFFl)

  let merge_low8 old b =
    match (is_const old, is_const b) with
    | Some o, Some l ->
        let r =
          const
            (Int32.logor (Int32.logand o 0xFFFF_FF00l) (Int32.logand l 0xFFl))
        in
        if taint old || taint b then tainted r else r
    | _, _ -> logor (logand old (const 0xFFFF_FF00l)) (low_byte b)

  let without t c =
    match t with
    | Bot -> Bot
    | Val x ->
        if not (contains t c) then t
        else
          let u = u64 c in
          if Int64.equal x.lo x.hi then Bot
          else if Int64.equal u x.lo then
            norm ~lo:(Int64.add x.lo 1L) ~hi:x.hi ~align:x.align ~res:x.res
              ~taint:x.taint
          else if Int64.equal u x.hi then
            norm ~lo:x.lo ~hi:(Int64.sub x.hi 1L) ~align:x.align ~res:x.res
              ~taint:x.taint
          else t

  let pp ppf = function
    | Bot -> Format.pp_print_string ppf "bot"
    | Val { lo; hi; align; res; taint } ->
        if Int64.equal lo hi then Format.fprintf ppf "0x%Lx" lo
        else begin
          Format.fprintf ppf "[0x%Lx,0x%Lx]" lo hi;
          if align > 0 then Format.fprintf ppf "≡0x%Lx(2^%d)" res align
        end;
        if taint then Format.pp_print_string ppf "·t"
end

module Region = struct
  type t = No_writes | Writes of { addr : V.t; width : int }

  let empty = No_writes
  let top = Writes { addr = V.top; width = 4 }

  let join a b =
    match (a, b) with
    | No_writes, x | x, No_writes -> x
    | Writes a, Writes b ->
        Writes { addr = V.join a.addr b.addr; width = max a.width b.width }

  let store t ~addr ~width =
    if V.is_bot addr then t else join t (Writes { addr; width })

  let widen a b =
    match (a, b) with
    | No_writes, x | x, No_writes -> x
    | Writes a, Writes b ->
        Writes { addr = V.widen a.addr b.addr; width = max a.width b.width }

  let equal a b =
    match (a, b) with
    | No_writes, No_writes -> true
    | Writes a, Writes b -> V.equal a.addr b.addr && a.width = b.width
    | No_writes, Writes _ | Writes _, No_writes -> false

  let writes = function No_writes -> false | Writes _ -> true

  let max_bytes = function
    | No_writes -> Some 0L
    | Writes { addr; width } -> (
        match V.bounds addr with
        | None -> Some 0L
        | Some (lo, hi) ->
            let span = Int64.add (Int64.sub hi lo) (Int64.of_int width) in
            let by_count = Int64.mul (V.size addr) (Int64.of_int width) in
            let b = min span by_count in
            if Int64.compare b max32 >= 0 then None else Some b)

  let may_touch t ~lo ~hi =
    match t with
    | No_writes -> false
    | Writes { addr; width } -> (
        match V.bounds addr with
        | None -> false
        | Some (alo, ahi) ->
            let lo = max 0L (Int64.sub lo (Int64.of_int (width - 1))) in
            Int64.compare alo hi <= 0 && Int64.compare ahi lo >= 0)

  let pp ppf = function
    | No_writes -> Format.pp_print_string ppf "no-writes"
    | Writes { addr; width } -> Format.fprintf ppf "writes@%a×%d" V.pp addr width
end

type state = { regs : V.t array; stack : V.t list; written : Region.t }

let max_stack = 128

let initial =
  { regs = Array.make 8 V.top_clean; stack = []; written = Region.empty }

let entry_state ?(arena_size = 1 lsl 18) () =
  let regs = Array.make 8 (V.const 0l) in
  regs.(Reg.code Reg.ESP) <-
    V.const (Int32.add Emulator.code_base (Int32.of_int (arena_size - 16)));
  { regs; stack = []; written = Region.empty }

let get t r = t.regs.(Reg.code r)

let set t r v =
  let regs = Array.copy t.regs in
  regs.(Reg.code r) <- v;
  { t with regs }

let value_of t (v : Sem.value) =
  match v with
  | Sem.Vconst c -> V.const c
  | Sem.Vreg r -> get t r
  | Sem.Vunknown -> V.top

let record_store t ~addr ~width =
  { t with written = Region.store t.written ~addr ~width }

let push_stack t v =
  let stack = v :: t.stack in
  let stack = if List.length stack > max_stack then t.stack else stack in
  { t with stack }

(* ESP-relative slot access, as in Constprop: slot k lives at [esp+4k]. *)
let slot_of_esp (ptr : Reg.t) (disp : int32) depth =
  if
    Reg.equal ptr Reg.ESP
    && Int32.compare disp 0l >= 0
    && Int32.rem disp 4l = 0l
    && Int32.to_int disp / 4 < depth
  then Some (Int32.to_int disp / 4)
  else None

let stack_get t k = List.nth t.stack k

let stack_set t k v =
  { t with stack = List.mapi (fun i x -> if i = k then v else x) t.stack }

let width_bytes = function Insn.S8bit -> 1 | Insn.S32bit -> 4

(* Abstract rop application at 32-bit width; mirrors Constprop.apply_rop_32
   over the richer domain. *)
let apply_rop_32 (op : Sem.rop) a b =
  match op with
  | Sem.Ra Insn.Add -> V.add a b
  | Sem.Ra Insn.Sub -> V.sub a b
  | Sem.Ra Insn.And -> V.logand a b
  | Sem.Ra Insn.Or -> V.logor a b
  | Sem.Ra Insn.Xor -> V.logxor a b
  | Sem.Ra Insn.Adc ->
      (* unknown carry-in: result is sum or sum+1 *)
      let s = V.add a b in
      V.join s (V.add_wrapped s 1l)
  | Sem.Ra Insn.Sbb ->
      let s = V.sub a b in
      V.join s (V.add_wrapped s (-1l))
  | Sem.Ra Insn.Cmp -> a
  | Sem.Rnot -> V.lognot a
  | Sem.Rneg -> V.neg a
  | Sem.Rshift s -> (
      match V.is_const b with
      | Some n -> V.shift s a (Int32.to_int (Int32.logand n 31l))
      | None ->
          let t = V.taint a || V.taint b in
          if t then V.top else V.top_clean)

let byte8 v = if V.taint v then V.tainted (V.low_byte v) else V.low_byte v

let byte_top t = if t then V.byte else V.range 0L 255L

(* 8-bit rop: compute on the low bytes, merge back.  Exact when both low
   bytes are constant; otherwise an unknown byte. *)
let apply_rop_8 (op : Sem.rop) old src =
  let lo_old = byte8 old and lo_src = byte8 src in
  let t = V.taint old || V.taint src in
  let result =
    match (V.is_const lo_old, V.is_const lo_src) with
    | Some a, Some b -> (
        let a = Int32.to_int a land 0xFF and b = Int32.to_int b land 0xFF in
        let c r = V.const (Int32.of_int (r land 0xFF)) in
        match op with
        | Sem.Ra Insn.Add -> c (a + b)
        | Sem.Ra Insn.Sub -> c (a - b)
        | Sem.Ra Insn.And -> c (a land b)
        | Sem.Ra Insn.Or -> c (a lor b)
        | Sem.Ra Insn.Xor -> c (a lxor b)
        | Sem.Ra Insn.Adc | Sem.Ra Insn.Sbb | Sem.Ra Insn.Cmp -> byte_top t
        | Sem.Rnot -> c (lnot a)
        | Sem.Rneg -> c (-a)
        | Sem.Rshift s ->
            let n = b land 31 in
            if n = 0 then c a
            else
              c
                (match s with
                | Insn.Shl -> a lsl n
                | Insn.Shr -> a lsr n
                | Insn.Sar ->
                    let signed = if a >= 0x80 then a - 0x100 else a in
                    signed asr n
                | Insn.Rol ->
                    let n = n land 7 in
                    (a lsl n) lor (a lsr (8 - n))
                | Insn.Ror ->
                    let n = n land 7 in
                    (a lsr n) lor (a lsl (8 - n))))
    | _, _ -> (
        match op with
        | Sem.Ra Insn.And -> V.logand lo_old lo_src
        | Sem.Ra Insn.Or -> V.logor lo_old lo_src
        | Sem.Ra Insn.Xor -> V.logxor lo_old lo_src
        | _ -> byte_top t)
  in
  let result = if t then V.tainted result else result in
  V.merge_low8 old result

let clobber t regs = List.fold_left (fun acc r -> set acc r V.top) t regs

let mem_addr t ptr disp = V.add_wrapped (get t ptr) disp

let step t (s : Sem.t) =
  match s with
  | Sem.S_load { width; dst; ptr; disp } -> (
      match slot_of_esp ptr disp (List.length t.stack) with
      | Some k -> (
          let v = stack_get t k in
          match width with
          | Insn.S32bit -> set t dst v
          | Insn.S8bit -> set t dst (V.merge_low8 (get t dst) (byte8 v)))
      | None -> (
          (* unmodelled memory: payload bytes — tainted unknowns *)
          match width with
          | Insn.S32bit -> set t dst V.top
          | Insn.S8bit -> set t dst (V.merge_low8 (get t dst) V.byte)))
  | Sem.S_store { width; src; ptr; disp } -> (
      let addr = mem_addr t ptr disp in
      let t = record_store t ~addr ~width:(width_bytes width) in
      match slot_of_esp ptr disp (List.length t.stack) with
      | Some k -> (
          let v = value_of t src in
          match width with
          | Insn.S32bit -> stack_set t k v
          | Insn.S8bit -> stack_set t k (V.merge_low8 (stack_get t k) (byte8 v)))
      | None -> t)
  | Sem.S_memop { op; width; ptr; disp; src } -> (
      let addr = mem_addr t ptr disp in
      let t = record_store t ~addr ~width:(width_bytes width) in
      match slot_of_esp ptr disp (List.length t.stack) with
      | Some k -> (
          let a = stack_get t k in
          let b = value_of t src in
          match width with
          | Insn.S32bit -> stack_set t k (apply_rop_32 op a b)
          | Insn.S8bit -> stack_set t k (apply_rop_8 op a b))
      | None -> t)
  | Sem.S_cmp | Sem.S_nop -> t
  | Sem.S_regop { op; width; dst; src } -> (
      let a = get t dst in
      let b = value_of t src in
      match width with
      | Insn.S32bit -> set t dst (apply_rop_32 op a b)
      | Insn.S8bit -> set t dst (apply_rop_8 op a b))
  | Sem.S_set { width; dst; src } -> (
      let b = value_of t src in
      match width with
      | Insn.S32bit -> set t dst b
      | Insn.S8bit -> set t dst (V.merge_low8 (get t dst) (byte8 b)))
  | Sem.S_advance { reg; amount; _ } ->
      let t' = set t reg (V.add_wrapped (get t reg) amount) in
      if Reg.equal reg Reg.ESP then
        (* keep the slot model aligned with ESP movement *)
        let k = Int32.to_int amount in
        if k > 0 && k mod 4 = 0 && k / 4 <= List.length t.stack then
          let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
          { t' with stack = drop (k / 4) t'.stack }
        else if k < 0 && -k mod 4 = 0 && -k / 4 <= max_stack then
          let rec grow n l = if n = 0 then l else grow (n - 1) (V.top :: l) in
          { t' with stack = grow (-k / 4) t'.stack }
        else { t' with stack = [] }
      else t'
  | Sem.S_lea { dst; base; index; disp } ->
      let base_v = match base with None -> V.const 0l | Some b -> get t b in
      let index_v =
        match index with
        | None -> V.const 0l
        | Some (r, sc) ->
            let m =
              match sc with Insn.S1 -> 1l | Insn.S2 -> 2l | Insn.S4 -> 4l | Insn.S8 -> 8l
            in
            V.mul (get t r) (V.const m)
      in
      set t dst (V.add_wrapped (V.add base_v index_v) disp)
  | Sem.S_xchg (a, b) ->
      let va = get t a and vb = get t b in
      set (set t a vb) b va
  | Sem.S_push v ->
      (* evaluate before adjusting ESP: [push esp] pushes the old value *)
      let pushed = value_of t v in
      let esp = V.add_wrapped (get t Reg.ESP) (-4l) in
      let t = set t Reg.ESP esp in
      let t = record_store t ~addr:esp ~width:4 in
      push_stack t pushed
  | Sem.S_pop r -> (
      match t.stack with
      | top :: rest ->
          let t = set t r top in
          let t = { t with stack = rest } in
          (* pop into ESP overrides the increment, as in hardware *)
          if Reg.equal r Reg.ESP then t
          else set t Reg.ESP (V.add_wrapped (get t Reg.ESP) 4l)
      | [] ->
          let t = set t r V.top in
          if Reg.equal r Reg.ESP then t
          else set t Reg.ESP (V.add_wrapped (get t Reg.ESP) 4l))
  | Sem.S_branch _ -> t
  | Sem.S_syscall _ -> set t Reg.EAX V.top_clean
  | Sem.S_ret ->
      let t = set t Reg.ESP (V.add_wrapped (get t Reg.ESP) 4l) in
      { t with stack = (match t.stack with _ :: r -> r | [] -> []) }
  | Sem.S_halt -> t
  | Sem.S_other { writes; writes_mem } ->
      let t = clobber t writes in
      let t =
        if writes_mem then { t with written = Region.top } else t
      in
      if List.exists (Reg.equal Reg.ESP) writes then { t with stack = [] } else t

let step_insn t i = List.fold_left step t (Sem.lift i)

let zip_state f a b =
  let regs = Array.init 8 (fun i -> f a.regs.(i) b.regs.(i)) in
  let stack =
    if List.length a.stack = List.length b.stack then
      List.map2 f a.stack b.stack
    else []
  in
  { regs; stack; written = Region.join a.written b.written }

let join a b = zip_state V.join a b

let widen a b =
  let s = zip_state V.widen a b in
  { s with written = Region.widen a.written b.written }

let narrow a b = zip_state V.narrow a b

let equal a b =
  (try Array.iter2 (fun x y -> if not (V.equal x y) then raise Exit) a.regs b.regs;
       true
   with Exit -> false)
  && List.length a.stack = List.length b.stack
  && List.for_all2 V.equal a.stack b.stack
  && Region.equal a.written b.written

type result = {
  in_states : (int, state) Hashtbl.t;
  out : state;
  reachable : int list;
}

(* One abstract execution of a block: fold its instructions.  A [call]
   terminator pushes a *constant* return address (the concrete emulator
   pushes exactly [base + return_to]), which is what turns GetPC
   call/pop sequences into constant pointers. *)
let exec_block ~base (b : Cfg.block) st =
  List.fold_left
    (fun st (d : Decode.decoded) ->
      match d.Decode.insn with
      | Insn.Call_rel _ ->
          let ret = Int32.add base (Int32.of_int (d.Decode.off + d.Decode.len)) in
          let esp = V.add_wrapped (get st Reg.ESP) (-4l) in
          let st = set st Reg.ESP esp in
          let st = record_store st ~addr:esp ~width:4 in
          push_stack st (V.const ret)
      | _ -> step_insn st d.Decode.insn)
    st b.Cfg.insns

let analyze ?(entry = initial) ?(base = Emulator.code_base) cfg =
  let widen_at =
    List.fold_left
      (fun acc (_, target) -> target :: acc)
      [] (Cfg.back_edges cfg)
  in
  let in_states : (int, state) Hashtbl.t = Hashtbl.create 16 in
  let visits : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let worklist = Queue.create () in
  (match Cfg.block_at cfg 0 with
  | Some _ ->
      Hashtbl.replace in_states 0 entry;
      Queue.add 0 worklist
  | None -> ());
  let budget = ref (64 * (Cfg.block_count cfg + 1)) in
  while (not (Queue.is_empty worklist)) && !budget > 0 do
    decr budget;
    let off = Queue.take worklist in
    match Cfg.block_at cfg off with
    | None -> ()
    | Some b ->
        let st = Hashtbl.find in_states off in
        let out = exec_block ~base b st in
        List.iter
          (fun succ ->
            let n = Option.value (Hashtbl.find_opt visits succ) ~default:0 in
            Hashtbl.replace visits succ (n + 1);
            let proposed =
              match Hashtbl.find_opt in_states succ with
              | None -> out
              | Some old ->
                  let joined = join old out in
                  if List.mem succ widen_at && n >= 2 then widen old joined
                  else joined
            in
            match Hashtbl.find_opt in_states succ with
            | Some old when equal old proposed -> ()
            | _ ->
                Hashtbl.replace in_states succ proposed;
                Queue.add succ worklist)
          (Cfg.successors cfg b)
  done;
  (* one narrowing sweep: recompute every reachable block's out-state and
     refine widened in-states where the recomputation is tighter *)
  let reachable =
    Hashtbl.fold (fun k _ acc -> k :: acc) in_states [] |> List.sort compare
  in
  let outs = Hashtbl.create 16 in
  List.iter
    (fun off ->
      match Cfg.block_at cfg off with
      | None -> ()
      | Some b -> Hashtbl.replace outs off (exec_block ~base b (Hashtbl.find in_states off)))
    reachable;
  List.iter
    (fun off ->
      if List.mem off widen_at then begin
        let preds_out =
          List.filter_map
            (fun p ->
              match Cfg.block_at cfg p with
              | Some pb when List.mem off (Cfg.successors cfg pb) ->
                  Hashtbl.find_opt outs p
              | _ -> None)
            reachable
        in
        let recomputed =
          List.fold_left
            (fun acc o -> match acc with None -> Some o | Some a -> Some (join a o))
            (if off = 0 then Some entry else None)
            preds_out
        in
        match recomputed with
        | Some r ->
            Hashtbl.replace in_states off (narrow (Hashtbl.find in_states off) r)
        | None -> ()
      end)
    reachable;
  let out =
    List.fold_left
      (fun acc off ->
        let o =
          match Cfg.block_at cfg off with
          | Some b -> exec_block ~base b (Hashtbl.find in_states off)
          | None -> Hashtbl.find in_states off
        in
        match acc with None -> Some o | Some a -> Some (join a o))
      None reachable
  in
  let out = Option.value out ~default:entry in
  { in_states; out; reachable }
