(** The combined traffic classifier: a packet is handed to the expensive
    analysis stages iff its source has touched a honeypot, or has scanned
    past the unused-address threshold — or classification is disabled
    (the configuration of the paper's §5.4 false-positive run, where
    every payload is analyzed). *)

type reason = Honeypot_sender | Scanner | Classification_disabled

type verdict = Suspicious of reason | Benign

type t

val create :
  ?metrics:Sanids_obs.Registry.t ->
  ?honeypots:Ipaddr.t list ->
  ?unused:Ipaddr.prefix list ->
  ?scan_threshold:int ->
  ?enabled:bool ->
  unit ->
  t
(** When [metrics] is given, every classification bumps one of the
    per-verdict counters [sanids_classify_benign_total],
    [sanids_classify_honeypot_total], [sanids_classify_scanner_total],
    [sanids_classify_forced_total] in that registry. *)

val classify : t -> Packet.t -> verdict
(** Updates classifier state and renders the verdict for this packet. *)

val enabled : t -> bool
val reason_to_string : reason -> string
val honeypot : t -> Honeypot.t
val scan : t -> Scan_detector.t
