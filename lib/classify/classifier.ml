type reason = Honeypot_sender | Scanner | Classification_disabled
type verdict = Suspicious of reason | Benign

type t = { honeypot : Honeypot.t; scan : Scan_detector.t; enabled : bool }

let create ?(honeypots = []) ?(unused = []) ?(scan_threshold = 5) ?(enabled = true) () =
  {
    honeypot = Honeypot.create honeypots;
    scan = Scan_detector.create ~threshold:scan_threshold unused;
    enabled;
  }

let classify t p =
  let src = Packet.src p and dst = Packet.dst p in
  (* state updates happen regardless, so a later re-enable sees history *)
  let marked = Honeypot.observe t.honeypot ~src ~dst in
  let scanning = Scan_detector.observe t.scan ~src ~dst in
  if not t.enabled then Suspicious Classification_disabled
  else if marked then Suspicious Honeypot_sender
  else if scanning then Suspicious Scanner
  else Benign

let enabled t = t.enabled

let reason_to_string = function
  | Honeypot_sender -> "honeypot-sender"
  | Scanner -> "scanner"
  | Classification_disabled -> "classification-disabled"

let honeypot t = t.honeypot
let scan t = t.scan
