module Obs = Sanids_obs

type reason = Honeypot_sender | Scanner | Classification_disabled
type verdict = Suspicious of reason | Benign

type meters = {
  benign : Obs.Registry.counter;
  honeypot_sender : Obs.Registry.counter;
  scanner : Obs.Registry.counter;
  forced : Obs.Registry.counter;  (* classification disabled *)
}

type t = {
  honeypot : Honeypot.t;
  scan : Scan_detector.t;
  enabled : bool;
  meters : meters option;
}

let meters_of reg =
  {
    benign =
      Obs.Registry.counter reg ~help:"packets classified benign"
        "sanids_classify_benign_total";
    honeypot_sender =
      Obs.Registry.counter reg ~help:"packets from honeypot-touching sources"
        "sanids_classify_honeypot_total";
    scanner =
      Obs.Registry.counter reg ~help:"packets from scanning sources"
        "sanids_classify_scanner_total";
    forced =
      Obs.Registry.counter reg
        ~help:"packets forced suspicious (classification disabled)"
        "sanids_classify_forced_total";
  }

let create ?metrics ?(honeypots = []) ?(unused = []) ?(scan_threshold = 5)
    ?(enabled = true) () =
  {
    honeypot = Honeypot.create honeypots;
    scan = Scan_detector.create ~threshold:scan_threshold unused;
    enabled;
    meters = Option.map meters_of metrics;
  }

let record t verdict =
  match t.meters with
  | None -> ()
  | Some m ->
      Obs.Registry.incr
        (match verdict with
        | Benign -> m.benign
        | Suspicious Honeypot_sender -> m.honeypot_sender
        | Suspicious Scanner -> m.scanner
        | Suspicious Classification_disabled -> m.forced)

let classify t p =
  let src = Packet.src p and dst = Packet.dst p in
  (* state updates happen regardless, so a later re-enable sees history *)
  let marked = Honeypot.observe t.honeypot ~src ~dst in
  let scanning = Scan_detector.observe t.scan ~src ~dst in
  let verdict =
    if not t.enabled then Suspicious Classification_disabled
    else if marked then Suspicious Honeypot_sender
    else if scanning then Suspicious Scanner
    else Benign
  in
  record t verdict;
  verdict

let enabled t = t.enabled

let reason_to_string = function
  | Honeypot_sender -> "honeypot-sender"
  | Scanner -> "scanner"
  | Classification_disabled -> "classification-disabled"

let honeypot t = t.honeypot
let scan t = t.scan
