type source_state = { touched : (Ipaddr.t, unit) Hashtbl.t; mutable flagged : bool }

type t = {
  unused : Ipaddr.prefix list;
  threshold : int;
  sources : (Ipaddr.t, source_state) Hashtbl.t;
}

let create ?(threshold = 5) unused =
  if threshold < 1 then invalid_arg "Scan_detector.create: threshold must be >= 1";
  { unused; threshold; sources = Hashtbl.create 256 }

let in_unused t a = List.exists (Ipaddr.mem a) t.unused

let state_of t src =
  match Hashtbl.find_opt t.sources src with
  | Some st -> st
  | None ->
      let st = { touched = Hashtbl.create 8; flagged = false } in
      Hashtbl.add t.sources src st;
      st

let observe t ~src ~dst =
  if in_unused t dst then begin
    let st = state_of t src in
    Hashtbl.replace st.touched dst ();
    if Hashtbl.length st.touched >= t.threshold then st.flagged <- true;
    st.flagged
  end
  else
    match Hashtbl.find_opt t.sources src with
    | Some st -> st.flagged
    | None -> false

let is_scanner t src =
  match Hashtbl.find_opt t.sources src with Some st -> st.flagged | None -> false

let count t src =
  match Hashtbl.find_opt t.sources src with
  | Some st -> Hashtbl.length st.touched
  | None -> 0

let threshold t = t.threshold

let scanner_count t =
  Hashtbl.fold (fun _ st acc -> if st.flagged then acc + 1 else acc) t.sources 0
