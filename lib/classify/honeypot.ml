type t = {
  decoys : (Ipaddr.t, unit) Hashtbl.t;
  marked : (Ipaddr.t, unit) Hashtbl.t;
}

let create addrs =
  let decoys = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace decoys a ()) addrs;
  { decoys; marked = Hashtbl.create 64 }

let add t a = Hashtbl.replace t.decoys a ()
let is_honeypot t a = Hashtbl.mem t.decoys a
let is_marked t a = Hashtbl.mem t.marked a

let observe t ~src ~dst =
  if Hashtbl.mem t.decoys dst then Hashtbl.replace t.marked src ();
  Hashtbl.mem t.marked src

let marked_count t = Hashtbl.length t.marked
