(** Unused-address-space scan detection (paper §4.1, second scheme).

    The operator declares which address ranges are unused.  A source
    touching [threshold] {e distinct} unused addresses is flagged as a
    scanner; from then on its packets are handed to the analysis
    stages. *)

type t

val create : ?threshold:int -> Ipaddr.prefix list -> t
(** [threshold] defaults to 5. *)

val observe : t -> src:Ipaddr.t -> dst:Ipaddr.t -> bool
(** Record one packet; [true] iff the source is (now) flagged. *)

val is_scanner : t -> Ipaddr.t -> bool
val count : t -> Ipaddr.t -> int
(** Distinct unused addresses this source has touched. *)

val threshold : t -> int
val scanner_count : t -> int
