(** Honeypot decoy registry (paper §4.1, first scheme).

    Decoy addresses exist only to attract unsolicited traffic; any host
    that sends to one is marked, and everything it subsequently sends is
    handed to the analysis stages. *)

type t

val create : Ipaddr.t list -> t
val add : t -> Ipaddr.t -> unit
val is_honeypot : t -> Ipaddr.t -> bool

val observe : t -> src:Ipaddr.t -> dst:Ipaddr.t -> bool
(** Record one packet.  Returns [true] iff the source is (now) marked —
    either this packet touches a decoy or a previous one did. *)

val is_marked : t -> Ipaddr.t -> bool
val marked_count : t -> int
