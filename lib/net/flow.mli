(** Flow keys and in-order TCP stream reassembly.

    Reassembly is deliberately simple: segments are indexed by sequence
    number relative to the first segment seen on the flow; overlaps keep
    the first writer; the contiguous prefix is the stream.  That is
    enough for single-connection exploit delivery, which is what the
    evaluation exercises. *)

type key = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  src_port : int;
  dst_port : int;
  proto : int;
}

val key_of_packet : Packet.t -> key option
(** [None] for non-TCP/UDP packets. *)

val key_to_string : key -> string

type reassembler

val create_reassembler : ?max_flows:int -> ?max_stream:int -> unit -> reassembler
(** [max_flows] (default 4096) bounds tracked flows (oldest evicted);
    [max_stream] (default 1 MiB) bounds buffered bytes per flow. *)

val push : reassembler -> Packet.t -> string option
(** Feed a packet.  Returns the flow's new contiguous stream prefix when
    it grew, [None] otherwise (non-TCP packets, duplicates, gaps). *)

val stream : reassembler -> key -> string
(** Current contiguous prefix for a flow ("" if unknown). *)

val flow_count : reassembler -> int
