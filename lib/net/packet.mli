(** The NIDS's packet view: a timestamped, parsed IPv4 packet.

    [build_*] produce raw IPv4 datagram bytes (as stored in traces) and
    [parse] recovers the view.  Encode-side checksums are always valid;
    parse rejects corrupt datagrams. *)

type l4 =
  | Tcp_seg of Tcp.t
  | Udp_dgram of Udp.t
  | Raw of int * Slice.t  (** other protocol: number and payload *)

type t = {
  ts : float;  (** seconds since trace start *)
  ip : Ipv4.t;
  l4 : l4;
}

val build_tcp :
  ts:float ->
  src:Ipaddr.t ->
  dst:Ipaddr.t ->
  src_port:int ->
  dst_port:int ->
  ?seq:int32 ->
  ?ack_no:int32 ->
  ?flags:Tcp.flags ->
  ?ttl:int ->
  ?ident:int ->
  string ->
  t
(** TCP packet carrying the given payload; defaults: PSH+ACK, ttl 64. *)

val build_udp :
  ts:float ->
  src:Ipaddr.t ->
  dst:Ipaddr.t ->
  src_port:int ->
  dst_port:int ->
  ?ttl:int ->
  ?ident:int ->
  string ->
  t

val to_bytes : t -> string
(** Raw IPv4 datagram. *)

val parse : ts:float -> string -> (t, string) Stdlib.result

val parse_slice : ts:float -> Slice.t -> (t, string) Stdlib.result
(** Zero-copy parse: every payload in the result is a view into the
    given slice's backing string.  A packet that outlives the capture
    buffer it was parsed from pins that buffer — long-lived state should
    materialize ({!Slice.to_string}) what it keeps. *)

val src : t -> Ipaddr.t
val dst : t -> Ipaddr.t

val ports : t -> (int * int) option
(** (src_port, dst_port) for TCP/UDP. *)

val payload : t -> Slice.t
(** Application payload view (the raw IP payload for [Raw]). *)

val payload_string : t -> string
(** [Slice.to_string (payload t)] — free when the payload is a whole
    view, one copy otherwise. *)

val is_tcp : t -> bool
val pp : Format.formatter -> t -> unit
