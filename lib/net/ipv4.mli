(** IPv4 header codec (no options on encode; options skipped on decode). *)

type t = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  proto : int;  (** 6 = TCP, 17 = UDP *)
  ttl : int;
  ident : int;
  payload : Slice.t;
}

val proto_tcp : int
val proto_udp : int

val encode : t -> string
(** Header (checksummed) followed by the payload. *)

val decode : Slice.t -> (t, string) Stdlib.result
(** Parses a datagram; the error string names the defect.  The total
    length field is honoured (trailing bytes dropped); a bad header
    checksum is an error. *)
