type t = { src_port : int; dst_port : int; payload : Slice.t }

let pseudo_header ~src ~dst ~len =
  let w = Byte_io.Writer.create ~capacity:12 () in
  Byte_io.Writer.u32_be w (Ipaddr.to_int32 src);
  Byte_io.Writer.u32_be w (Ipaddr.to_int32 dst);
  Byte_io.Writer.u8 w 0;
  Byte_io.Writer.u8 w Ipv4.proto_udp;
  Byte_io.Writer.u16_be w len;
  Byte_io.Writer.contents w

let encode ~src ~dst t =
  let len = 8 + Slice.length t.payload in
  let w = Byte_io.Writer.create ~capacity:len () in
  Byte_io.Writer.u16_be w t.src_port;
  Byte_io.Writer.u16_be w t.dst_port;
  Byte_io.Writer.u16_be w len;
  Byte_io.Writer.u16_be w 0;
  Byte_io.Writer.slice w t.payload;
  let dgram = Byte_io.Writer.contents w in
  let csum = Checksum.ones_complement_list [ pseudo_header ~src ~dst ~len; dgram ] in
  let csum = if csum = 0 then 0xFFFF else csum in
  Byte_io.Writer.patch_u16_be w 6 csum;
  Byte_io.Writer.contents w

let decode ~src ~dst s =
  let open Byte_io in
  try
    if Slice.length s < 8 then Error "short datagram"
    else begin
      let r = Reader.of_slice s in
      let src_port = Reader.u16_be r in
      let dst_port = Reader.u16_be r in
      let len = Reader.u16_be r in
      let csum = Reader.u16_be r in
      if len < 8 || len > Slice.length s then Error "bad length"
      else begin
        let body = Slice.sub s ~off:0 ~len in
        if
          csum <> 0
          && Checksum.ones_complement_slices
               [ Slice.of_string (pseudo_header ~src ~dst ~len); body ]
             <> 0
        then Error "bad checksum"
        else Ok { src_port; dst_port; payload = Slice.sub s ~off:8 ~len:(len - 8) }
      end
    end
  with Truncated _ -> Error "truncated"
