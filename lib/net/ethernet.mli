(** Ethernet II framing, for captures taken at the link layer. *)

type mac
(** A 48-bit hardware address. *)

val mac_of_string : string -> mac
(** ["aa:bb:cc:dd:ee:ff"].  @raise Invalid_argument on malformed input. *)

val mac_of_string_opt : string -> mac option
(** Non-raising {!mac_of_string}: six colon-separated two-digit hex
    octets, or [None]. *)

val mac_of_bytes : string -> mac
(** Exactly 6 raw bytes. *)

val mac_to_string : mac -> string
val mac_broadcast : mac
val mac_equal : mac -> mac -> bool

val ethertype_ipv4 : int
val ethertype_arp : int

type t = { dst : mac; src : mac; ethertype : int; payload : Slice.t }

val encode : t -> string

val decode : Slice.t -> (t, string) Stdlib.result
(** The payload is a view into the frame's backing string — no bytes are
    copied beyond the two 6-byte addresses. *)

val wrap_ipv4 : ?src:mac -> ?dst:mac -> string -> string
(** Frame an IPv4 datagram with default locally administered
    addresses. *)

val pp_mac : Format.formatter -> mac -> unit
