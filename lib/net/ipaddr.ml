type t = int32

let of_int32 v = v
let to_int32 v = v

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Ipaddr.of_octets" in
  check a;
  check b;
  check c;
  check d;
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d))

let octet v i = Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * (3 - i))) 0xFFl)

let to_string v =
  Printf.sprintf "%d.%d.%d.%d" (octet v 0) (octet v 1) (octet v 2) (octet v 3)

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
      | Some a, Some b, Some c, Some d
        when a >= 0 && a <= 255 && b >= 0 && b <= 255 && c >= 0 && c <= 255 && d >= 0 && d <= 255
        ->
          Some (of_octets a b c d)
      | _, _, _, _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Ipaddr.of_string: %S" s)

let compare = Int32.unsigned_compare
let equal = Int32.equal
let hash v = Hashtbl.hash v
let succ v = Int32.add v 1l

type prefix = { base : int32; len : int }

let mask_of_len len =
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let prefix addr len =
  if len < 0 || len > 32 then invalid_arg "Ipaddr.prefix: bad length";
  { base = Int32.logand addr (mask_of_len len); len }

let prefix_of_string_opt s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      match
        ( of_string_opt (String.sub s 0 i),
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some addr, Some len when len >= 0 && len <= 32 -> Some (prefix addr len)
      | _, _ -> None)

let prefix_of_string s =
  match prefix_of_string_opt s with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Ipaddr.prefix_of_string: %S (want a.b.c.d/len)" s)

let mem addr p = Int32.equal (Int32.logand addr (mask_of_len p.len)) p.base
let prefix_base p = p.base
let prefix_len p = p.len

let prefix_size p =
  if p.len = 0 then max_int
  else
    let bits = 32 - p.len in
    if bits >= 62 then max_int else 1 lsl bits

let nth p i =
  if i < 0 || i >= prefix_size p then invalid_arg "Ipaddr.nth: out of range";
  Int32.add p.base (Int32.of_int i)

let prefix_to_string p = Printf.sprintf "%s/%d" (to_string p.base) p.len
let pp ppf v = Format.pp_print_string ppf (to_string v)
let pp_prefix ppf p = Format.pp_print_string ppf (prefix_to_string p)
