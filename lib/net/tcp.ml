type flags = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool; urg : bool }

let flags_none = { syn = false; ack = false; fin = false; rst = false; psh = false; urg = false }
let flags_syn = { flags_none with syn = true }
let flags_synack = { flags_none with syn = true; ack = true }
let flags_ack = { flags_none with ack = true }
let flags_pshack = { flags_none with psh = true; ack = true }
let flags_finack = { flags_none with fin = true; ack = true }
let flags_rst = { flags_none with rst = true }

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_no : int32;
  flags : flags;
  window : int;
  payload : Slice.t;
}

let flags_byte f =
  (if f.fin then 1 else 0)
  lor (if f.syn then 2 else 0)
  lor (if f.rst then 4 else 0)
  lor (if f.psh then 8 else 0)
  lor (if f.ack then 16 else 0)
  lor if f.urg then 32 else 0

let flags_of_byte b =
  {
    fin = b land 1 <> 0;
    syn = b land 2 <> 0;
    rst = b land 4 <> 0;
    psh = b land 8 <> 0;
    ack = b land 16 <> 0;
    urg = b land 32 <> 0;
  }

let pseudo_header ~src ~dst ~len =
  let w = Byte_io.Writer.create ~capacity:12 () in
  Byte_io.Writer.u32_be w (Ipaddr.to_int32 src);
  Byte_io.Writer.u32_be w (Ipaddr.to_int32 dst);
  Byte_io.Writer.u8 w 0;
  Byte_io.Writer.u8 w Ipv4.proto_tcp;
  Byte_io.Writer.u16_be w len;
  Byte_io.Writer.contents w

let encode ~src ~dst t =
  let w = Byte_io.Writer.create ~capacity:(20 + Slice.length t.payload) () in
  Byte_io.Writer.u16_be w t.src_port;
  Byte_io.Writer.u16_be w t.dst_port;
  Byte_io.Writer.u32_be w t.seq;
  Byte_io.Writer.u32_be w t.ack_no;
  Byte_io.Writer.u8 w 0x50;
  (* data offset 5 *)
  Byte_io.Writer.u8 w (flags_byte t.flags);
  Byte_io.Writer.u16_be w t.window;
  Byte_io.Writer.u16_be w 0;
  (* checksum placeholder *)
  Byte_io.Writer.u16_be w 0;
  (* urgent pointer *)
  Byte_io.Writer.slice w t.payload;
  let seg = Byte_io.Writer.contents w in
  let csum =
    Checksum.ones_complement_list
      [ pseudo_header ~src ~dst ~len:(String.length seg); seg ]
  in
  Byte_io.Writer.patch_u16_be w 16 csum;
  Byte_io.Writer.contents w

let decode ~src ~dst s =
  let open Byte_io in
  try
    if Slice.length s < 20 then Error "short segment"
    else begin
      let r = Reader.of_slice s in
      let src_port = Reader.u16_be r in
      let dst_port = Reader.u16_be r in
      let seq = Reader.u32_be r in
      let ack_no = Reader.u32_be r in
      let off = Reader.u8 r lsr 4 * 4 in
      let flags = flags_of_byte (Reader.u8 r) in
      let window = Reader.u16_be r in
      let _csum = Reader.u16_be r in
      let _urg = Reader.u16_be r in
      if off < 20 || off > Slice.length s then Error "bad data offset"
      else begin
        let sum =
          Checksum.ones_complement_slices
            [ Slice.of_string (pseudo_header ~src ~dst ~len:(Slice.length s)); s ]
        in
        if sum <> 0 then Error "bad checksum"
        else begin
          let payload = Slice.sub s ~off ~len:(Slice.length s - off) in
          Ok { src_port; dst_port; seq; ack_no; flags; window; payload }
        end
      end
    end
  with Truncated _ -> Error "truncated"

let pp_flags ppf f =
  let names =
    (if f.syn then [ "SYN" ] else [])
    @ (if f.ack then [ "ACK" ] else [])
    @ (if f.psh then [ "PSH" ] else [])
    @ (if f.fin then [ "FIN" ] else [])
    @ (if f.rst then [ "RST" ] else [])
    @ if f.urg then [ "URG" ] else []
  in
  Format.pp_print_string ppf (match names with [] -> "-" | _ -> String.concat "|" names)
