type l4 = Tcp_seg of Tcp.t | Udp_dgram of Udp.t | Raw of int * Slice.t

type t = { ts : float; ip : Ipv4.t; l4 : l4 }

let build_tcp ~ts ~src ~dst ~src_port ~dst_port ?(seq = 1000l) ?(ack_no = 0l)
    ?(flags = Tcp.flags_pshack) ?(ttl = 64) ?(ident = 0) payload =
  let seg =
    {
      Tcp.src_port;
      dst_port;
      seq;
      ack_no;
      flags;
      window = 65535;
      payload = Slice.of_string payload;
    }
  in
  let ip =
    {
      Ipv4.src;
      dst;
      proto = Ipv4.proto_tcp;
      ttl;
      ident;
      payload = Slice.of_string (Tcp.encode ~src ~dst seg);
    }
  in
  { ts; ip; l4 = Tcp_seg seg }

let build_udp ~ts ~src ~dst ~src_port ~dst_port ?(ttl = 64) ?(ident = 0) payload =
  let dgram = { Udp.src_port; dst_port; payload = Slice.of_string payload } in
  let ip =
    {
      Ipv4.src;
      dst;
      proto = Ipv4.proto_udp;
      ttl;
      ident;
      payload = Slice.of_string (Udp.encode ~src ~dst dgram);
    }
  in
  { ts; ip; l4 = Udp_dgram dgram }

let to_bytes t = Ipv4.encode t.ip

let parse_slice ~ts bytes =
  match Ipv4.decode bytes with
  | Error e -> Error e
  | Ok ip ->
      let l4 =
        if ip.Ipv4.proto = Ipv4.proto_tcp then
          match Tcp.decode ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst ip.Ipv4.payload with
          | Ok seg -> Ok (Tcp_seg seg)
          | Error e -> Error ("tcp: " ^ e)
        else if ip.Ipv4.proto = Ipv4.proto_udp then
          match Udp.decode ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst ip.Ipv4.payload with
          | Ok d -> Ok (Udp_dgram d)
          | Error e -> Error ("udp: " ^ e)
        else Ok (Raw (ip.Ipv4.proto, ip.Ipv4.payload))
      in
      (match l4 with Ok l4 -> Ok { ts; ip; l4 } | Error e -> Error e)

let parse ~ts bytes = parse_slice ~ts (Slice.of_string bytes)

let src t = t.ip.Ipv4.src
let dst t = t.ip.Ipv4.dst

let ports t =
  match t.l4 with
  | Tcp_seg s -> Some (s.Tcp.src_port, s.Tcp.dst_port)
  | Udp_dgram d -> Some (d.Udp.src_port, d.Udp.dst_port)
  | Raw _ -> None

let payload t =
  match t.l4 with
  | Tcp_seg s -> s.Tcp.payload
  | Udp_dgram d -> d.Udp.payload
  | Raw (_, p) -> p

let payload_string t = Slice.to_string (payload t)
let is_tcp t = match t.l4 with Tcp_seg _ -> true | Udp_dgram _ | Raw _ -> false

let pp ppf t =
  let proto, sp, dp =
    match t.l4 with
    | Tcp_seg s -> ("tcp", s.Tcp.src_port, s.Tcp.dst_port)
    | Udp_dgram d -> ("udp", d.Udp.src_port, d.Udp.dst_port)
    | Raw (p, _) -> (Printf.sprintf "proto%d" p, 0, 0)
  in
  Format.fprintf ppf "%.3f %a:%d > %a:%d %s len=%d" t.ts Ipaddr.pp (src t) sp
    Ipaddr.pp (dst t) dp proto (Slice.length (payload t))
