(* Sum 16-bit big-endian words with end-around carry, over an absolute
   window of [base] — the shared core for strings and slices. *)
let sum_window acc base lo hi =
  let acc = ref acc in
  let i = ref lo in
  while !i + 1 < hi do
    acc :=
      !acc
      + (Char.code (String.unsafe_get base !i) lsl 8)
      + Char.code (String.unsafe_get base (!i + 1));
    i := !i + 2
  done;
  if !i < hi then acc := !acc + (Char.code (String.unsafe_get base !i) lsl 8);
  !acc

let sum_into acc s = sum_window acc s 0 (String.length s)

let sum_into_slice acc s =
  let off = Slice.offset s in
  sum_window acc (Slice.base s) off (off + Slice.length s)

let fold acc =
  let acc = ref acc in
  while !acc land lnot 0xFFFF <> 0 do
    acc := (!acc land 0xFFFF) + (!acc lsr 16)
  done;
  !acc

let ones_complement s = lnot (fold (sum_into 0 s)) land 0xFFFF

let ones_complement_list parts =
  (* parts must each have even length except possibly the last; the packet
     encoders below guarantee this by padding the pseudo-header side *)
  let acc = List.fold_left sum_into 0 parts in
  lnot (fold acc) land 0xFFFF

let ones_complement_slices parts =
  let acc = List.fold_left sum_into_slice 0 parts in
  lnot (fold acc) land 0xFFFF

let valid s = ones_complement s = 0
let valid_slice s = lnot (fold (sum_into_slice 0 s)) land 0xFFFF = 0
