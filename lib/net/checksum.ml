(* Sum 16-bit big-endian words with end-around carry. *)
let sum_into acc s =
  let n = String.length s in
  let acc = ref acc in
  let i = ref 0 in
  while !i + 1 < n do
    acc := !acc + (Char.code s.[!i] lsl 8) + Char.code s.[!i + 1];
    i := !i + 2
  done;
  if !i < n then acc := !acc + (Char.code s.[!i] lsl 8);
  !acc

let fold acc =
  let acc = ref acc in
  while !acc land lnot 0xFFFF <> 0 do
    acc := (!acc land 0xFFFF) + (!acc lsr 16)
  done;
  !acc

let ones_complement s = lnot (fold (sum_into 0 s)) land 0xFFFF

let ones_complement_list parts =
  (* parts must each have even length except possibly the last; the packet
     encoders below guarantee this by padding the pseudo-header side *)
  let acc = List.fold_left sum_into 0 parts in
  lnot (fold acc) land 0xFFFF

let valid s = ones_complement s = 0
