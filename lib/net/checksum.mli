(** RFC 1071 internet checksum. *)

val ones_complement : string -> int
(** Checksum over a byte string (odd lengths are zero-padded). *)

val ones_complement_list : string list -> int
(** Checksum over the concatenation, without materializing it. *)

val valid : string -> bool
(** A buffer whose embedded checksum field is correct sums to 0xFFFF...
    i.e. [ones_complement buf = 0]. *)

val ones_complement_slices : Slice.t list -> int
(** {!ones_complement_list} over slices — the zero-copy decode path sums
    headers and payloads in place.  The same even-length-except-last
    convention applies. *)

val valid_slice : Slice.t -> bool

