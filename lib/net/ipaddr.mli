(** IPv4 addresses and prefixes. *)

type t
(** An IPv4 address. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d]; each octet must be in [\[0,255\]]. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_string : string -> t
(** Dotted quad.  @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val succ : t -> t
(** Next address (wraps at 255.255.255.255). *)

type prefix
(** A CIDR prefix such as [192.168.0.0/16]. *)

val prefix : t -> int -> prefix
(** [prefix addr len]; [len] in [\[0,32\]].  Host bits are cleared. *)

val prefix_of_string : string -> prefix
(** ["a.b.c.d/len"].  @raise Invalid_argument on malformed input. *)

val prefix_of_string_opt : string -> prefix option
(** Non-raising {!prefix_of_string}. *)

val mem : t -> prefix -> bool
val prefix_base : prefix -> t
val prefix_len : prefix -> int
val prefix_size : prefix -> int
(** Number of addresses covered (capped at [max_int]). *)

val nth : prefix -> int -> t
(** [nth p i] is the [i]-th address of the prefix.
    @raise Invalid_argument when out of range. *)

val prefix_to_string : prefix -> string
val pp : Format.formatter -> t -> unit
val pp_prefix : Format.formatter -> prefix -> unit
