(** UDP datagram codec with pseudo-header checksum. *)

type t = { src_port : int; dst_port : int; payload : Slice.t }

val encode : src:Ipaddr.t -> dst:Ipaddr.t -> t -> string
val decode : src:Ipaddr.t -> dst:Ipaddr.t -> Slice.t -> (t, string) Stdlib.result
