type key = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  src_port : int;
  dst_port : int;
  proto : int;
}

let key_of_packet p =
  match Packet.ports p with
  | None -> None
  | Some (src_port, dst_port) ->
      Some
        {
          src = Packet.src p;
          dst = Packet.dst p;
          src_port;
          dst_port;
          proto = (if Packet.is_tcp p then Ipv4.proto_tcp else Ipv4.proto_udp);
        }

let key_to_string k =
  Printf.sprintf "%s:%d>%s:%d/%d" (Ipaddr.to_string k.src) k.src_port
    (Ipaddr.to_string k.dst) k.dst_port k.proto

type flow_state = {
  base_seq : int32;
  mutable segments : (int * string) list;  (* offset-sorted, disjoint *)
  mutable contiguous : int;  (* length of the contiguous prefix *)
  mutable last_use : int;
}

type reassembler = {
  flows : (key, flow_state) Hashtbl.t;
  max_flows : int;
  max_stream : int;
  mutable clock : int;
}

let create_reassembler ?(max_flows = 4096) ?(max_stream = 1 lsl 20) () =
  { flows = Hashtbl.create 256; max_flows; max_stream; clock = 0 }

let evict_oldest t =
  let oldest = ref None in
  Hashtbl.iter
    (fun k st ->
      match !oldest with
      | None -> oldest := Some (k, st.last_use)
      | Some (_, lu) -> if st.last_use < lu then oldest := Some (k, st.last_use))
    t.flows;
  match !oldest with Some (k, _) -> Hashtbl.remove t.flows k | None -> ()

(* Insert a segment, keeping the list sorted and dropping overlap with
   existing data (first writer wins). *)
let insert_segment st off (data : Slice.t) =
  let len = Slice.length data in
  if len = 0 then false
  else begin
    let covers o l (o', l') = o' >= o && o' + l' <= o + l in
    let existing = st.segments in
    if List.exists (fun (o', d') -> covers o' (String.length d') (off, len)) existing
    then false
    else begin
      (* materialize only segments we keep: flow state is long-lived and
         must not pin whole capture buffers through a payload view *)
      st.segments <-
        List.merge (fun (a, _) (b, _) -> compare a b) existing
          [ (off, Slice.to_string data) ];
      (* recompute the contiguous prefix *)
      let rec extend reach = function
        | [] -> reach
        | (o, d) :: tl ->
            if o > reach then reach
            else extend (max reach (o + String.length d)) tl
      in
      let c = extend 0 st.segments in
      let grew = c > st.contiguous in
      st.contiguous <- c;
      grew
    end
  end

let assemble st =
  let buf = Bytes.make st.contiguous '\000' in
  List.iter
    (fun (o, d) ->
      if o < st.contiguous then begin
        let n = min (String.length d) (st.contiguous - o) in
        Bytes.blit_string d 0 buf o n
      end)
    st.segments;
  Bytes.to_string buf

let seq_of p =
  match p.Packet.l4 with Packet.Tcp_seg s -> Some s.Tcp.seq | Packet.Udp_dgram _ | Packet.Raw _ -> None

let push t p =
  match (key_of_packet p, seq_of p) with
  | Some k, Some seq when Packet.is_tcp p ->
      let data = Packet.payload p in
      if Slice.is_empty data then None
      else begin
        t.clock <- t.clock + 1;
        let st =
          match Hashtbl.find_opt t.flows k with
          | Some st -> st
          | None ->
              if Hashtbl.length t.flows >= t.max_flows then evict_oldest t;
              let st = { base_seq = seq; segments = []; contiguous = 0; last_use = t.clock } in
              Hashtbl.add t.flows k st;
              st
        in
        st.last_use <- t.clock;
        let off = Int32.to_int (Int32.sub seq st.base_seq) in
        if off < 0 || off + Slice.length data > t.max_stream then None
        else if insert_segment st off data then Some (assemble st)
        else None
      end
  | _, _ -> None

let stream t k =
  match Hashtbl.find_opt t.flows k with Some st -> assemble st | None -> ""

let flow_count t = Hashtbl.length t.flows
