(** TCP segment codec (no options on encode; data offset honoured on
    decode).  Checksums use the IPv4 pseudo-header. *)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool; urg : bool }

val flags_none : flags
val flags_syn : flags
val flags_synack : flags
val flags_ack : flags
val flags_pshack : flags
val flags_finack : flags
val flags_rst : flags

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_no : int32;
  flags : flags;
  window : int;
  payload : Slice.t;
}

val encode : src:Ipaddr.t -> dst:Ipaddr.t -> t -> string
(** Segment bytes with a valid checksum. *)

val decode : src:Ipaddr.t -> dst:Ipaddr.t -> Slice.t -> (t, string) Stdlib.result
(** A wrong checksum is reported as an error. *)

val pp_flags : Format.formatter -> flags -> unit
