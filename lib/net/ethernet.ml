type mac = string (* 6 raw bytes *)

let mac_of_bytes s =
  if String.length s <> 6 then invalid_arg "Ethernet.mac_of_bytes: need 6 bytes";
  s

let mac_of_string_opt s =
  match String.split_on_char ':' s with
  | [ _; _; _; _; _; _ ] as parts ->
      let octet x =
        (* reject int_of_string's sign/space liberties: exactly 2 hex digits *)
        if String.length x = 2 then
          match int_of_string_opt ("0x" ^ x) with
          | Some v when v >= 0 && v <= 255 -> Some (Char.chr v)
          | Some _ | None -> None
        else None
      in
      let octets = List.filter_map octet parts in
      if List.length octets = 6 then
        Some (String.init 6 (fun i -> List.nth octets i))
      else None
  | _ -> None

let mac_of_string s =
  match mac_of_string_opt s with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Ethernet.mac_of_string: %S (want aa:bb:cc:dd:ee:ff)" s)

let mac_to_string m =
  String.concat ":"
    (List.init 6 (fun i -> Printf.sprintf "%02x" (Char.code m.[i])))

let mac_broadcast = String.make 6 '\xFF'
let mac_equal (a : mac) b = String.equal a b

let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806

type t = { dst : mac; src : mac; ethertype : int; payload : Slice.t }

let encode t =
  let w = Byte_io.Writer.create ~capacity:(14 + Slice.length t.payload) () in
  Byte_io.Writer.string w t.dst;
  Byte_io.Writer.string w t.src;
  Byte_io.Writer.u16_be w t.ethertype;
  Byte_io.Writer.slice w t.payload;
  Byte_io.Writer.contents w

let decode s =
  if Slice.length s < 14 then Error "short frame"
  else
    let r = Byte_io.Reader.of_slice s in
    (* the 6-byte addresses are tiny fixed copies; the payload is a view *)
    let dst = Byte_io.Reader.take r 6 in
    let src = Byte_io.Reader.take r 6 in
    let ethertype = Byte_io.Reader.u16_be r in
    Ok { dst; src; ethertype; payload = Byte_io.Reader.rest_slice r }

let default_src = mac_of_string "02:00:00:00:00:01"
let default_dst = mac_of_string "02:00:00:00:00:02"

let wrap_ipv4 ?(src = default_src) ?(dst = default_dst) datagram =
  encode { dst; src; ethertype = ethertype_ipv4; payload = Slice.of_string datagram }

let pp_mac ppf m = Format.pp_print_string ppf (mac_to_string m)
