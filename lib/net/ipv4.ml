type t = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  proto : int;
  ttl : int;
  ident : int;
  payload : Slice.t;
}

let proto_tcp = 6
let proto_udp = 17

let encode t =
  let w = Byte_io.Writer.create ~capacity:(20 + Slice.length t.payload) () in
  let total_len = 20 + Slice.length t.payload in
  if total_len > 0xFFFF then invalid_arg "Ipv4.encode: datagram too large";
  Byte_io.Writer.u8 w 0x45;
  (* version 4, IHL 5 *)
  Byte_io.Writer.u8 w 0;
  Byte_io.Writer.u16_be w total_len;
  Byte_io.Writer.u16_be w t.ident;
  Byte_io.Writer.u16_be w 0x4000;
  (* don't fragment *)
  Byte_io.Writer.u8 w t.ttl;
  Byte_io.Writer.u8 w t.proto;
  Byte_io.Writer.u16_be w 0;
  (* checksum placeholder *)
  Byte_io.Writer.u32_be w (Ipaddr.to_int32 t.src);
  Byte_io.Writer.u32_be w (Ipaddr.to_int32 t.dst);
  let header = Byte_io.Writer.contents w in
  let csum = Checksum.ones_complement header in
  Byte_io.Writer.patch_u16_be w 10 csum;
  Byte_io.Writer.slice w t.payload;
  Byte_io.Writer.contents w

let decode s =
  let open Byte_io in
  try
    let r = Reader.of_slice s in
    let vi = Reader.u8 r in
    let version = vi lsr 4 in
    let ihl = (vi land 0xF) * 4 in
    if version <> 4 then Error "not IPv4"
    else if ihl < 20 then Error "bad IHL"
    else if Slice.length s < ihl then Error "truncated header"
    else begin
      let _tos = Reader.u8 r in
      let total_len = Reader.u16_be r in
      let ident = Reader.u16_be r in
      let _frag = Reader.u16_be r in
      let ttl = Reader.u8 r in
      let proto = Reader.u8 r in
      let _csum = Reader.u16_be r in
      let src = Ipaddr.of_int32 (Reader.u32_be r) in
      let dst = Ipaddr.of_int32 (Reader.u32_be r) in
      if total_len < ihl || total_len > Slice.length s then Error "bad total length"
      else if not (Checksum.valid_slice (Slice.sub s ~off:0 ~len:ihl)) then
        Error "bad header checksum"
      else begin
        Reader.seek r ihl;
        let payload = Slice.sub s ~off:ihl ~len:(total_len - ihl) in
        Ok { src; dst; proto; ttl; ident; payload }
      end
    end
  with Truncated _ -> Error "truncated"
