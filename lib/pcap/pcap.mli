(** Classic pcap capture file format (the libpcap substitute).

    We read and write the 24-byte global header plus per-record headers,
    little- or big-endian, microsecond or nanosecond magic.  Link type is
    [LINKTYPE_RAW] (101): each record body is a raw IPv4 datagram, which
    is exactly what {!Packet.to_bytes} produces. *)

type record = { ts : float; orig_len : int; data : Slice.t }
(** [data] is a view: decoding a capture yields record bodies that alias
    the capture string instead of copying it record by record. *)

type file = { nanos : bool; linktype : int; records : record list }

exception Malformed of string

val linktype_raw : int
val linktype_ethernet : int

(** {2 Incremental framing}

    The follow-mode sources ({!Sanids_ingest.Source}) frame records as
    bytes arrive on a FIFO, so the two header layers are decodable on
    their own. *)

type meta = { le : bool; nanos : bool; file_linktype : int }
(** The global header's framing facts: byte order, timestamp scale,
    link type. *)

type record_header = { r_ts : float; incl_len : int; r_orig_len : int }

val global_header_len : int
(** 24. *)

val record_header_len : int
(** 16. *)

val decode_global_header : string -> (meta, string) result
(** Parse a capture's first {!global_header_len} bytes (longer input is
    fine; only the header is read). *)

val decode_record_header : meta -> string -> (record_header, string) result
(** Parse one {!record_header_len}-byte per-record header; the record
    body is the next [incl_len] bytes on the wire. *)

val encode : ?nanos:bool -> ?linktype:int -> record list -> string
(** Serialize a capture (little-endian). *)

val decode : string -> (file, string) Stdlib.result
(** Parse a capture; [Error] names the framing fault (bad magic,
    truncated record header/body).  This is the primary decode entry
    point — it matches the {!to_packets} result convention, and no
    exception escapes it. *)

val decode_exn : string -> file
(** {!decode}, raising.  @raise Malformed on a bad magic or truncated
    record.  Kept for callers that treat a bad capture as fatal. *)

val write_file : string -> record list -> unit

val read_file : string -> file
(** @raise Malformed as {!decode_exn}; [Sys_error] on I/O failure. *)

val of_packets : Packet.t list -> record list
(** Records from parsed packets (snap = full length). *)

val of_packets_ethernet : Packet.t list -> record list
(** Records with Ethernet II framing ([LINKTYPE_ETHERNET]); pair with
    [encode ~linktype:linktype_ethernet]. *)

val to_packets : file -> (Packet.t, string) Stdlib.result list
(** Parse each record body according to the file's link type: raw IPv4
    datagrams, or Ethernet frames whose IPv4 payload is extracted
    (non-IPv4 ethertypes are errors). *)
