type record = { ts : float; orig_len : int; data : Slice.t }
type file = { nanos : bool; linktype : int; records : record list }

exception Malformed of string

let linktype_raw = 101
let linktype_ethernet = 1
let magic_usec = 0xA1B2C3D4
let magic_nsec = 0xA1B23C4D

let encode ?(nanos = false) ?(linktype = linktype_raw) records =
  let w = Byte_io.Writer.create ~capacity:4096 () in
  Byte_io.Writer.u32_le_int w (if nanos then magic_nsec else magic_usec);
  Byte_io.Writer.u16_le w 2;
  (* version major *)
  Byte_io.Writer.u16_le w 4;
  (* version minor *)
  Byte_io.Writer.u32_le_int w 0;
  (* thiszone *)
  Byte_io.Writer.u32_le_int w 0;
  (* sigfigs *)
  Byte_io.Writer.u32_le_int w 65535;
  (* snaplen *)
  Byte_io.Writer.u32_le_int w linktype;
  List.iter
    (fun r ->
      let scale = if nanos then 1e9 else 1e6 in
      let secs = int_of_float r.ts in
      let frac = int_of_float (Float.round ((r.ts -. float_of_int secs) *. scale)) in
      let secs, frac =
        let unit = if nanos then 1_000_000_000 else 1_000_000 in
        if frac >= unit then (secs + 1, frac - unit) else (secs, frac)
      in
      Byte_io.Writer.u32_le_int w secs;
      Byte_io.Writer.u32_le_int w frac;
      Byte_io.Writer.u32_le_int w (Slice.length r.data);
      Byte_io.Writer.u32_le_int w r.orig_len;
      Byte_io.Writer.slice w r.data)
    records;
  Byte_io.Writer.contents w

(* Incremental framing: the global and per-record headers parsed on
   their own, so a streaming reader (the follow-mode FIFO source) can
   frame records as bytes arrive instead of needing the whole capture
   in one string. *)

type meta = { le : bool; nanos : bool; file_linktype : int }
type record_header = { r_ts : float; incl_len : int; r_orig_len : int }

let global_header_len = 24
let record_header_len = 16

let decode_global_header s =
  let open Byte_io in
  if String.length s < global_header_len then Error "short global header"
  else
    let r = Reader.of_string s in
    let raw_magic = Reader.u32_le_int r in
    let endianness =
      if raw_magic = magic_usec then Ok (true, false)
      else if raw_magic = magic_nsec then Ok (true, true)
      else begin
        (* big-endian writer: the magic reads byte-swapped *)
        let swapped =
          ((raw_magic land 0xFF) lsl 24)
          lor ((raw_magic land 0xFF00) lsl 8)
          lor ((raw_magic lsr 8) land 0xFF00)
          lor ((raw_magic lsr 24) land 0xFF)
        in
        if swapped = magic_usec then Ok (false, false)
        else if swapped = magic_nsec then Ok (false, true)
        else Error "bad magic"
      end
    in
    match endianness with
    | Error _ as e -> e
    | Ok (le, nanos) ->
        let u16 rd = if le then Reader.u16_le rd else Reader.u16_be rd in
        let u32 rd = if le then Reader.u32_le_int rd else Reader.u32_be_int rd in
        let _vmaj = u16 r in
        let _vmin = u16 r in
        let _zone = u32 r in
        let _sigfigs = u32 r in
        let _snaplen = u32 r in
        let file_linktype = u32 r in
        Ok { le; nanos; file_linktype }

let decode_record_header meta s =
  let open Byte_io in
  if String.length s < record_header_len then Error "truncated record header"
  else begin
    let r = Reader.of_string s in
    let u32 rd = if meta.le then Reader.u32_le_int rd else Reader.u32_be_int rd in
    let secs = u32 r in
    let frac = u32 r in
    let incl_len = u32 r in
    let r_orig_len = u32 r in
    let scale = if meta.nanos then 1e9 else 1e6 in
    Ok { r_ts = float_of_int secs +. (float_of_int frac /. scale); incl_len; r_orig_len }
  end

let decode_exn s =
  let open Byte_io in
  let { le; nanos; file_linktype = linktype } =
    match decode_global_header s with
    | Ok m -> m
    | Error m -> raise (Malformed m)
  in
  let r = Reader.of_string s in
  Reader.skip r global_header_len;
  let u32 rd = if le then Reader.u32_le_int rd else Reader.u32_be_int rd in
  let records = ref [] in
  (try
     while Reader.remaining r > 0 do
       if Reader.remaining r < 16 then raise (Malformed "truncated record header");
       let secs = u32 r in
       let frac = u32 r in
       let incl = u32 r in
       let orig = u32 r in
       if Reader.remaining r < incl then raise (Malformed "truncated record body");
       let data = Reader.take_slice r incl in
       let scale = if nanos then 1e9 else 1e6 in
       records :=
         { ts = float_of_int secs +. (float_of_int frac /. scale); orig_len = orig; data }
         :: !records
     done
   with Truncated _ -> raise (Malformed "truncated"));
  { nanos; linktype; records = List.rev !records }

let decode s = match decode_exn s with f -> Ok f | exception Malformed m -> Error m

let write_file path records =
  let oc = open_out_bin path in
  (try output_string oc (encode records)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  decode_exn data

let of_packets pkts =
  List.map
    (fun p ->
      let bytes = Packet.to_bytes p in
      { ts = p.Packet.ts; orig_len = String.length bytes; data = Slice.of_string bytes })
    pkts

let of_packets_ethernet pkts =
  List.map
    (fun p ->
      let frame = Ethernet.wrap_ipv4 (Packet.to_bytes p) in
      { ts = p.Packet.ts; orig_len = String.length frame; data = Slice.of_string frame })
    pkts

let to_packets f =
  let body r =
    if f.linktype = linktype_ethernet then
      match Ethernet.decode r.data with
      | Ok e when e.Ethernet.ethertype = Ethernet.ethertype_ipv4 ->
          Ok e.Ethernet.payload
      | Ok e -> Error (Printf.sprintf "ethertype 0x%04x" e.Ethernet.ethertype)
      | Error m -> Error ("ethernet: " ^ m)
    else Ok r.data
  in
  List.map
    (fun r ->
      match body r with
      | Ok datagram -> Packet.parse_slice ~ts:r.ts datagram
      | Error e -> Error e)
    f.records
