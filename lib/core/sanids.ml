(** The semantics-aware NIDS, re-exported as one namespace.

    Reproduction of Scheirer & Chuah, "Network Intrusion Detection with
    Semantics-Aware Capability" (IPPS 2006).  The usual entry points:

    - {!Pipeline} / {!Config} / {!Alert} — run the NIDS;
    - {!Template} / {!Template_lib} / {!Matcher} — the semantic analyzer;
    - {!Admmutate} / {!Clet} — polymorphic engines for evaluation;
    - {!Shellcodes} / {!Code_red} / {!Iis_asp} — the exploit corpus;
    - {!Benign_gen} / {!Worm_gen} — workload synthesis;
    - {!Pcap} / {!Packet} — captures and packets. *)

(* utilities *)
module Rng = Sanids_util.Rng
(* observability: Obs.Registry, Obs.Snapshot, Obs.Span, Obs.Export *)
module Obs = Sanids_obs
module Byte_io = Sanids_util.Byte_io
module Bqueue = Sanids_util.Bqueue
module Budget = Sanids_util.Budget
module Hexdump = Sanids_util.Hexdump
module Entropy = Sanids_util.Entropy

(* network substrate *)
module Ipaddr = Sanids_net.Ipaddr
module Checksum = Sanids_net.Checksum
module Ipv4 = Sanids_net.Ipv4
module Tcp = Sanids_net.Tcp
module Udp = Sanids_net.Udp
module Packet = Sanids_net.Packet
module Flow = Sanids_net.Flow
module Ethernet = Sanids_net.Ethernet
module Pcap = Sanids_pcap.Pcap

(* resilient ingest: typed decode errors and fault injection *)
module Ingest = Sanids_ingest.Ingest
module Fault = Sanids_ingest.Fault
module Source = Sanids_ingest.Source

(* x86 and IR *)
module Reg = Sanids_x86.Reg
module Insn = Sanids_x86.Insn
module Encode = Sanids_x86.Encode
module Decode = Sanids_x86.Decode
module Pretty = Sanids_x86.Pretty
module Asm = Sanids_x86.Asm
module Emulator = Sanids_x86.Emulator
module Sem = Sanids_ir.Sem
module Constprop = Sanids_ir.Constprop
module Trace = Sanids_ir.Trace
module Defuse = Sanids_ir.Defuse
module Cfg = Sanids_ir.Cfg

(* the semantic analyzer *)
module Template = Sanids_semantic.Template
module Template_lib = Sanids_semantic.Template_lib
module Matcher = Sanids_semantic.Matcher
module Breaker = Sanids_semantic.Breaker

(* dynamic confirmation: the emulator as a second verdict stage *)
module Confirm = Sanids_confirm.Confirm
module Emu_test = Sanids_confirm.Emu_test

(* classification and extraction *)
module Honeypot = Sanids_classify.Honeypot
module Scan_detector = Sanids_classify.Scan_detector
module Classifier = Sanids_classify.Classifier
module Http = Sanids_extract.Http
module Unicode = Sanids_extract.Unicode
module Repetition = Sanids_extract.Repetition
module Extractor = Sanids_extract.Extractor

(* polymorphic engines and exploit corpus *)
module Nops = Sanids_polymorph.Nops
module Junk = Sanids_polymorph.Junk
module Admmutate = Sanids_polymorph.Admmutate
module Clet = Sanids_polymorph.Clet
module Metamorph = Sanids_polymorph.Metamorph
module Shellcodes = Sanids_exploits.Shellcodes
module Exploit_gen = Sanids_exploits.Exploit_gen
module Code_red = Sanids_exploits.Code_red
module Iis_asp = Sanids_exploits.Iis_asp
module Netsky = Sanids_exploits.Netsky
module Slammer = Sanids_exploits.Slammer

(* detector-artifact lint *)
module Finding = Sanids_staticlint.Finding
module Lint_dom = Sanids_staticlint.Dom
module Template_lint = Sanids_staticlint.Template_lint
module Subsume = Sanids_staticlint.Subsume
module Rule_lint = Sanids_staticlint.Rule_lint
module Trace_lint = Sanids_staticlint.Trace_lint
module Lint_selftest = Sanids_staticlint.Selftest
module Lint = Sanids_staticlint.Lint

(* baselines *)
module Aho_corasick = Sanids_baseline.Aho_corasick
module Signatures = Sanids_baseline.Signatures
module Payl = Sanids_baseline.Payl
module Rule = Sanids_baseline.Rule
module Siggen = Sanids_baseline.Siggen

(* the NIDS *)
module Config = Sanids_nids.Config
module Pipeline = Sanids_nids.Pipeline
module Alert = Sanids_nids.Alert
module Stats = Sanids_nids.Stats
module Parallel = Sanids_nids.Parallel
module Watchdog = Sanids_nids.Watchdog
module Hybrid = Sanids_nids.Hybrid

(* the serving daemon *)
module Lifecycle = Sanids_serve.Lifecycle
module Httpd = Sanids_serve.Httpd
module Serve = Sanids_serve.Serve

(* the federated cluster: delta shipping, dedup, failure detection *)
module Backoff = Sanids_util.Backoff
module Cluster_delta = Sanids_cluster.Delta
module Cluster_dedup = Sanids_cluster.Dedup
module Cluster_detector = Sanids_cluster.Detector
module Cluster_fault = Sanids_cluster.Fault
module Spool = Sanids_cluster.Spool
module Sensor = Sanids_cluster.Sensor
module Aggregator = Sanids_cluster.Aggregator

(* workloads *)
module Benign_gen = Sanids_workload.Benign_gen
module Worm_gen = Sanids_workload.Worm_gen
module Adversarial = Sanids_workload.Adversarial

(* propagation and containment models *)
module Epidemic = Sanids_epidemic.Model
module Containment = Sanids_epidemic.Containment
