(** PAYL-style 1-gram payload anomaly detection (the paper's reference
    [12] family): learn the byte-frequency profile of benign traffic,
    then score new payloads by a simplified Mahalanobis distance.  Serves
    as the statistical baseline in the evaluation. *)

type model

val train : string list -> model
(** Fit mean and standard deviation per byte frequency over the corpus.
    @raise Invalid_argument on an empty corpus. *)

val score : model -> string -> float
(** Average per-byte deviation; higher = more anomalous.  0 for the empty
    payload. *)

val is_anomalous : ?threshold:float -> model -> string -> bool
(** Default threshold 1.5. *)

val train_fraction : model -> int
(** Number of training payloads. *)
