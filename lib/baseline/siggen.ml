type t = { tokens : string list; trained_on : int }

let contains hay needle = Search.contains ~needle hay

(* Fraction of the pool containing [tok]. *)
let pool_coverage pool tok =
  let hit = List.length (List.filter (fun p -> contains p tok) pool) in
  float_of_int hit /. float_of_int (List.length pool)

(* Greedy extraction: slide windows of decreasing length over the first
   (reference) sample; a window that covers enough of the pool becomes a
   token and masks its reference region so shorter passes skip it. *)
let infer ?(min_token_len = 8) ?(coverage = 0.9) ?(max_tokens = 8) pool =
  match pool with
  | [] -> invalid_arg "Siggen.infer: empty pool"
  | reference :: _ ->
      let n = String.length reference in
      let masked = Bytes.make n '\x00' in
      let tokens = ref [] in
      let lengths =
        (* longest first, halving down to the minimum *)
        let rec build l acc = if l < min_token_len then acc else build (l / 2) (l :: acc) in
        List.rev (build 256 [])
      in
      List.iter
        (fun len ->
          if List.length !tokens < max_tokens then begin
            let i = ref 0 in
            while !i + len <= n do
              let free =
                let rec check k = k >= len || (Bytes.get masked (!i + k) = '\x00' && check (k + 1)) in
                check 0
              in
              if free && List.length !tokens < max_tokens then begin
                let tok = String.sub reference !i len in
                if pool_coverage pool tok >= coverage then begin
                  tokens := tok :: !tokens;
                  Bytes.fill masked !i len '\x01';
                  i := !i + len
                end
                else i := !i + (max 1 (len / 4))
              end
              else i := !i + (max 1 (len / 4))
            done
          end)
        lengths;
      {
        tokens =
          List.sort (fun a b -> compare (String.length b) (String.length a)) !tokens;
        trained_on = List.length pool;
      }

let matches t payload =
  t.tokens <> [] && List.for_all (contains payload) t.tokens

let matches_slice t payload =
  t.tokens <> []
  && List.for_all (fun needle -> Search.contains_slice ~needle payload) t.tokens

let specificity t = List.fold_left (fun acc tok -> acc + String.length tok) 0 t.tokens

let pp ppf t =
  Format.fprintf ppf "signature(%d tokens, %d bytes, pool %d):" (List.length t.tokens)
    (specificity t) t.trained_on;
  List.iter
    (fun tok ->
      let printable =
        String.for_all (fun c -> Char.code c >= 0x20 && Char.code c < 0x7F) tok
      in
      if printable then Format.fprintf ppf "@ %S" tok
      else Format.fprintf ppf "@ |%s|" (Hexdump.encode tok))
    t.tokens
