(** Aho–Corasick multi-pattern matcher — the engine behind the
    Snort-style static-signature baseline.

    Linear-time in the haystack, independent of pattern count, over raw
    bytes. *)

type t

val build : (string * string) list -> t
(** [build [(pattern, tag); ...]].  Patterns must be non-empty.
    @raise Invalid_argument on an empty pattern. *)

val search : t -> string -> (int * string) list
(** All matches as [(end_offset, tag)], in scan order (inclusive end
    offset of the match). *)

val first_match : t -> string -> string option
(** Tag of the first match, scanning left to right. *)

val matches : t -> string -> bool

val search_slice : t -> Slice.t -> (int * string) list
(** {!search} over a payload view: offsets are view-relative and no
    bytes are copied. *)

val first_match_slice : t -> Slice.t -> string option
val matches_slice : t -> Slice.t -> bool
val pattern_count : t -> int
