(** A small Snort-style rule language for the signature baseline.

    Supported subset — enough to express the 2006-era rules the paper
    compares against:

    {v
    alert tcp any any -> any 80 (msg:"shellcode"; content:"/bin/sh";)
    alert tcp any any -> any any (msg:"nop sled"; content:"|90 90 90 90|"; nocase;)
    alert udp any any -> any 1434 (msg:"slammer"; content:"|04|"; offset:0; depth:1;)
    v}

    Header: action [alert], protocol [tcp|udp|ip], source/destination
    address ([any] or CIDR) and port ([any] or number).  Options: [msg],
    any number of [content] (all must match — logical AND), [nocase],
    [offset], [depth].  Hex bytes go between pipes, mixed freely with
    text. *)

type proto = P_tcp | P_udp | P_ip

type content = {
  pattern : string;
  nocase : bool;
  offset : int;  (** search start, default 0 *)
  depth : int option;  (** search window from [offset], default unbounded *)
}

type t = {
  proto : proto;
  src : Ipaddr.prefix option;  (** [None] = any *)
  src_port : int option;
  dst : Ipaddr.prefix option;
  dst_port : int option;
  msg : string;
  contents : content list;
}

val parse : string -> (t, string) Stdlib.result
(** Parse one rule.  Comment lines (leading ['#']) and blank lines are
    [Error "empty"]. *)

val parse_many : string -> t list * (int * string) list
(** Parse a ruleset (one rule per line).  Returns the rules and the
    [(line, error)] pairs for lines that failed (comments and blanks are
    skipped silently). *)

type engine

val compile : t list -> engine

val match_packet : engine -> Packet.t -> string list
(** Messages of every rule the packet satisfies (header filter plus all
    contents present). *)

val match_payload : engine -> string -> string list
(** Content-only matching, ignoring header filters. *)

val default_ruleset : string
(** The shipped ruleset, expressing {!Signatures.default} as rule text. *)
