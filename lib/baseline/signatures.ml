let default =
  [
    (* the classic push "//sh"; push "/bin" byte sequence *)
    ("\x68\x2f\x2f\x73\x68\x68\x2f\x62\x69\x6e", "shellcode-push-binsh");
    (* literal /bin//sh string *)
    ("/bin//sh", "shellcode-binsh-string");
    ("/bin/sh", "shellcode-binsh-string");
    (* mov al,11 ; int 0x80 *)
    ("\xb0\x0b\xcd\x80", "shellcode-execve");
    (* xor eax,eax ; push eax *)
    ("\x31\xc0\x50\x68", "shellcode-xor-push");
    (* classic uniform NOP sled *)
    (String.make 16 '\x90', "nop-sled-90");
    (* Code Red II request vector *)
    ("GET /default.ida?", "codered-ida");
    ("%u9090%u6858%ucbd3%u7801", "codered-unicode");
    (* repeated X overflow filler *)
    (String.make 64 'X', "overflow-filler-X");
  ]

let engine =
  let cached = lazy (Aho_corasick.build default) in
  fun () -> Lazy.force cached

let scan payload = Aho_corasick.first_match (engine ()) payload
