type model = { mean : float array; std : float array; trained_on : int }

let freq payload =
  let h = Entropy.histogram payload in
  Entropy.normalize h

let train corpus =
  if corpus = [] then invalid_arg "Payl.train: empty corpus";
  let n = float_of_int (List.length corpus) in
  let freqs = List.map freq corpus in
  let mean = Array.make 256 0.0 in
  List.iter (fun f -> Array.iteri (fun i v -> mean.(i) <- mean.(i) +. v) f) freqs;
  Array.iteri (fun i v -> mean.(i) <- v /. n) mean;
  let var = Array.make 256 0.0 in
  List.iter
    (fun f ->
      Array.iteri
        (fun i v ->
          let d = v -. mean.(i) in
          var.(i) <- var.(i) +. (d *. d))
        f)
    freqs;
  let std = Array.map (fun v -> sqrt (v /. n)) var in
  { mean; std; trained_on = List.length corpus }

(* Simplified Mahalanobis distance with a smoothing floor on the standard
   deviation, averaged over the 256 bins. *)
let score m payload =
  if payload = "" then 0.0
  else begin
    let f = freq payload in
    let acc = ref 0.0 in
    for i = 0 to 255 do
      let d = Float.abs (f.(i) -. m.mean.(i)) in
      acc := !acc +. (d /. (m.std.(i) +. 0.001))
    done;
    !acc /. 256.0
  end

let is_anomalous ?(threshold = 1.5) m payload = score m payload > threshold

let train_fraction m = m.trained_on
