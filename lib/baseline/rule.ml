type proto = P_tcp | P_udp | P_ip

type content = {
  pattern : string;
  nocase : bool;
  offset : int;
  depth : int option;
}

type t = {
  proto : proto;
  src : Ipaddr.prefix option;
  src_port : int option;
  dst : Ipaddr.prefix option;
  dst_port : int option;
  msg : string;
  contents : content list;
}

(* --- content pattern decoding: text with |hex bytes| sections -------- *)

let decode_pattern s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i in_hex =
    if i >= n then if in_hex then Error "unterminated hex section" else Ok (Buffer.contents buf)
    else if s.[i] = '|' then go (i + 1) (not in_hex)
    else if in_hex then begin
      if s.[i] = ' ' then go (i + 1) true
      else if i + 1 < n then begin
        match int_of_string_opt (Printf.sprintf "0x%c%c" s.[i] s.[i + 1]) with
        | Some b ->
            Buffer.add_char buf (Char.chr b);
            go (i + 2) true
        | None -> Error (Printf.sprintf "bad hex at %d" i)
      end
      else Error "dangling hex digit"
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1) false
    end
  in
  go 0 false

(* --- parsing --------------------------------------------------------- *)

let parse_endpoint_addr tok =
  if tok = "any" then Ok None
  else
    match Ipaddr.prefix_of_string_opt tok with
    | Some p -> Ok (Some p)
    | None -> (
        (* bare address = /32 *)
        match Ipaddr.of_string_opt tok with
        | Some a -> Ok (Some (Ipaddr.prefix a 32))
        | None -> Error (Printf.sprintf "bad address %S" tok))

let parse_port tok =
  if tok = "any" then Ok None
  else
    match int_of_string_opt tok with
    | Some p when p >= 0 && p <= 65535 -> Ok (Some p)
    | Some _ | None -> Error (Printf.sprintf "bad port %S" tok)

(* split "a:b; c:\"x;y\"; nocase;" respecting quotes *)
let split_options s =
  let out = ref [] in
  let buf = Buffer.create 32 in
  let in_quote = ref false in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_quote := not !in_quote;
        Buffer.add_char buf c
      end
      else if c = ';' && not !in_quote then begin
        let piece = String.trim (Buffer.contents buf) in
        if piece <> "" then out := piece :: !out;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  let piece = String.trim (Buffer.contents buf) in
  if piece <> "" then out := piece :: !out;
  List.rev !out

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then Ok (String.sub s 1 (n - 2))
  else Error (Printf.sprintf "expected quoted string, got %S" s)

let ( let* ) = Result.bind

let parse line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Error "empty"
  else
    match String.index_opt line '(' with
    | None -> Error "missing option block"
    | Some lp ->
        let header = String.trim (String.sub line 0 lp) in
        let rest = String.sub line lp (String.length line - lp) in
        let* opts_text =
          let n = String.length rest in
          if n >= 2 && rest.[0] = '(' && rest.[n - 1] = ')' then
            Ok (String.sub rest 1 (n - 2))
          else Error "unterminated option block"
        in
        let* () = Ok () in
        (match
           String.split_on_char ' ' header |> List.filter (fun s -> s <> "")
         with
        | [ action; proto; src; sport; arrow; dst; dport ] ->
            let* () = if action = "alert" then Ok () else Error "only alert rules supported" in
            let* () = if arrow = "->" then Ok () else Error "expected ->" in
            let* proto =
              match proto with
              | "tcp" -> Ok P_tcp
              | "udp" -> Ok P_udp
              | "ip" -> Ok P_ip
              | p -> Error (Printf.sprintf "unsupported protocol %S" p)
            in
            let* src = parse_endpoint_addr src in
            let* src_port = parse_port sport in
            let* dst = parse_endpoint_addr dst in
            let* dst_port = parse_port dport in
            (* options *)
            let msg = ref "" in
            let contents = ref [] in
            let err = ref None in
            List.iter
              (fun opt ->
                if !err = None then
                  match String.index_opt opt ':' with
                  | None -> (
                      match opt with
                      | "nocase" -> (
                          match !contents with
                          | c :: tl -> contents := { c with nocase = true } :: tl
                          | [] -> err := Some "nocase before any content")
                      | other -> err := Some (Printf.sprintf "unknown option %S" other))
                  | Some colon -> (
                      let key = String.sub opt 0 colon in
                      let value =
                        String.trim (String.sub opt (colon + 1) (String.length opt - colon - 1))
                      in
                      match key with
                      | "msg" -> (
                          match unquote value with
                          | Ok m -> msg := m
                          | Error e -> err := Some e)
                      | "content" -> (
                          match Result.bind (unquote value) decode_pattern with
                          | Ok "" -> err := Some "empty content"
                          | Ok pattern ->
                              contents :=
                                { pattern; nocase = false; offset = 0; depth = None }
                                :: !contents
                          | Error e -> err := Some e)
                      | "offset" -> (
                          match (int_of_string_opt value, !contents) with
                          | Some v, c :: tl when v >= 0 ->
                              contents := { c with offset = v } :: tl
                          | _, [] -> err := Some "offset before any content"
                          | _, _ -> err := Some "bad offset")
                      | "depth" -> (
                          match (int_of_string_opt value, !contents) with
                          | Some v, c :: tl when v >= 1 ->
                              contents := { c with depth = Some v } :: tl
                          | _, [] -> err := Some "depth before any content"
                          | _, _ -> err := Some "bad depth")
                      | other -> err := Some (Printf.sprintf "unknown option %S" other)))
              (split_options opts_text);
            (match !err with
            | Some e -> Error e
            | None ->
                if !contents = [] then Error "rule has no content"
                else
                  Ok
                    {
                      proto;
                      src;
                      src_port;
                      dst;
                      dst_port;
                      msg = (if !msg = "" then "unnamed rule" else !msg);
                      contents = List.rev !contents;
                    })
        | _ -> Error "malformed header")

let parse_many text =
  let rules = ref [] and errors = ref [] in
  List.iteri
    (fun lineno line ->
      let trimmed = String.trim line in
      if trimmed <> "" && trimmed.[0] <> '#' then
        match parse line with
        | Ok r -> rules := r :: !rules
        | Error e -> errors := (lineno + 1, e) :: !errors)
    (String.split_on_char '\n' text);
  (List.rev !rules, List.rev !errors)

(* --- matching --------------------------------------------------------- *)

type engine = t list

let compile rules = rules

let content_matches (payload : Slice.t) (c : content) =
  let n = Slice.length payload and m = String.length c.pattern in
  let stop =
    match c.depth with
    | Some d -> min n (c.offset + d)
    | None -> n
  in
  m > 0 && c.offset <= stop
  && Search.find_slice ~nocase:c.nocase ~start:c.offset ~stop ~needle:c.pattern
       payload
     <> None

let header_matches (r : t) p =
  let proto_ok =
    match r.proto with
    | P_ip -> true
    | P_tcp -> Packet.is_tcp p
    | P_udp -> (match p.Packet.l4 with Packet.Udp_dgram _ -> true | _ -> false)
  in
  let addr_ok prefix addr =
    match prefix with None -> true | Some pre -> Ipaddr.mem addr pre
  in
  let port_ok want actual =
    match (want, actual) with
    | None, _ -> true
    | Some w, Some a -> w = a
    | Some _, None -> false
  in
  let sport, dport =
    match Packet.ports p with
    | Some (s, d) -> (Some s, Some d)
    | None -> (None, None)
  in
  proto_ok
  && addr_ok r.src (Packet.src p)
  && addr_ok r.dst (Packet.dst p)
  && port_ok r.src_port sport
  && port_ok r.dst_port dport

let match_packet engine p =
  let payload = Packet.payload p in
  List.filter_map
    (fun r ->
      if header_matches r p && List.for_all (content_matches payload) r.contents
      then Some r.msg
      else None)
    engine

let match_payload engine payload =
  let payload = Slice.of_string payload in
  List.filter_map
    (fun r ->
      if List.for_all (content_matches payload) r.contents then Some r.msg else None)
    engine

let default_ruleset =
  {rules|# sanids baseline ruleset: 2006-style static signatures
alert tcp any any -> any any (msg:"shellcode push /bin//sh"; content:"|68 2f 2f 73 68 68 2f 62 69 6e|";)
alert tcp any any -> any any (msg:"shellcode /bin/sh string"; content:"/bin/sh";)
alert tcp any any -> any any (msg:"shellcode /bin//sh string"; content:"/bin//sh";)
alert tcp any any -> any any (msg:"overflow filler X run"; content:"XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX";)
alert tcp any any -> any any (msg:"shellcode execve"; content:"|b0 0b cd 80|";)
alert tcp any any -> any any (msg:"shellcode xor-push preamble"; content:"|31 c0 50 68|";)
alert ip any any -> any any (msg:"uniform nop sled"; content:"|90 90 90 90 90 90 90 90 90 90 90 90 90 90 90 90|";)
alert tcp any any -> any 80 (msg:"code red ida overflow"; content:"GET /default.ida?";)
alert tcp any any -> any 80 (msg:"code red unicode vector"; content:"%u9090%u6858%ucbd3%u7801"; nocase;)
alert udp any any -> any 1434 (msg:"sql slammer"; content:"|04|"; offset:0; depth:1; content:"|dc c9 b0 42|";)
|rules}
