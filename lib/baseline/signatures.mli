(** The static signature set for the Snort-style baseline: byte patterns
    taken from the {e unobfuscated} exploit corpus, exactly the way 2006
    rule sets were written.  The evaluation shows these catch the plain
    exploits and the fixed Code Red vector but miss polymorphic
    instances — the paper's motivation. *)

val default : (string * string) list
(** [(pattern, name)] pairs. *)

val engine : unit -> Aho_corasick.t
(** [default] compiled (memoized). *)

val scan : string -> string option
(** First matching signature name in a payload. *)
