(** Automatic signature generation from suspicious payload pools — the
    Autograph / EarlyBird / Polygraph line of work the paper positions
    itself against (its references [7], [8], [14]).

    Given a pool of payloads attributed to one attack, extract byte
    tokens that recur across (nearly) the whole pool, longest first, and
    use their conjunction as the signature.  Works well for worms with
    fixed protocol framing (Code Red II's request line survives), and
    collapses on fully polymorphic shellcode whose only invariants are a
    few scattered bytes — exactly the failure mode that motivates
    semantic detection. *)

type t = {
  tokens : string list;  (** all must be present, longest first *)
  trained_on : int;
}

val infer :
  ?min_token_len:int -> ?coverage:float -> ?max_tokens:int -> string list -> t
(** Extract tokens of at least [min_token_len] bytes (default 8) present
    in at least [coverage] (default 0.9) of the pool, greedily longest
    first, at most [max_tokens] (default 8).  The token list is empty
    when the pool shares no sufficiently long invariant.
    @raise Invalid_argument on an empty pool. *)

val matches : t -> string -> bool
(** All tokens present (an empty signature matches nothing). *)

val matches_slice : t -> Slice.t -> bool
(** {!matches} over a payload view, copying nothing. *)

val specificity : t -> int
(** Total signature bytes — a proxy for false-positive resistance. *)

val pp : Format.formatter -> t -> unit
