type node = {
  next : int array;  (* goto function over 256 bytes; -1 = undefined *)
  mutable fail : int;
  mutable outputs : string list;
}

type t = { nodes : node array; count : int }

let new_node () = { next = Array.make 256 (-1); fail = 0; outputs = [] }

let build patterns =
  let nodes = ref [| new_node () |] in
  let size = ref 1 in
  let node i = !nodes.(i) in
  let add_node () =
    if !size >= Array.length !nodes then begin
      let bigger = Array.make (2 * Array.length !nodes) (new_node ()) in
      Array.blit !nodes 0 bigger 0 !size;
      for k = !size to Array.length bigger - 1 do
        bigger.(k) <- new_node ()
      done;
      nodes := bigger
    end
    else !nodes.(!size) <- new_node ();
    incr size;
    !size - 1
  in
  (* trie construction *)
  List.iter
    (fun (pat, tag) ->
      if pat = "" then invalid_arg "Aho_corasick.build: empty pattern";
      let cur = ref 0 in
      String.iter
        (fun c ->
          let b = Char.code c in
          let nxt = (node !cur).next.(b) in
          if nxt >= 0 then cur := nxt
          else begin
            let fresh = add_node () in
            (node !cur).next.(b) <- fresh;
            cur := fresh
          end)
        pat;
      (node !cur).outputs <- tag :: (node !cur).outputs)
    patterns;
  (* breadth-first failure links *)
  let q = Queue.create () in
  for b = 0 to 255 do
    let nxt = (node 0).next.(b) in
    if nxt < 0 then (node 0).next.(b) <- 0
    else begin
      (node nxt).fail <- 0;
      Queue.add nxt q
    end
  done;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for b = 0 to 255 do
      let v = (node u).next.(b) in
      if v >= 0 then begin
        let f = (node (node u).fail).next.(b) in
        (node v).fail <- f;
        (node v).outputs <- (node v).outputs @ (node f).outputs;
        Queue.add v q
      end
      else (node u).next.(b) <- (node (node u).fail).next.(b)
    done
  done;
  { nodes = Array.sub !nodes 0 !size; count = List.length patterns }

let search t hay =
  let state = ref 0 in
  let out = ref [] in
  String.iteri
    (fun i c ->
      state := t.nodes.(!state).next.(Char.code c);
      List.iter (fun tag -> out := (i, tag) :: !out) t.nodes.(!state).outputs)
    hay;
  List.rev !out

let first_match t hay =
  let n = String.length hay in
  let rec go state i =
    if i >= n then None
    else
      let state = t.nodes.(state).next.(Char.code hay.[i]) in
      match t.nodes.(state).outputs with
      | tag :: _ -> Some tag
      | [] -> go state (i + 1)
  in
  go 0 0

let matches t hay = first_match t hay <> None

(* Slice variants walk the view in place — scanning an extracted frame
   or a reassembled window allocates nothing. *)
let search_slice t hay =
  let n = Slice.length hay in
  let state = ref 0 in
  let out = ref [] in
  for i = 0 to n - 1 do
    state := t.nodes.(!state).next.(Char.code (Slice.unsafe_get hay i));
    List.iter (fun tag -> out := (i, tag) :: !out) t.nodes.(!state).outputs
  done;
  List.rev !out

let first_match_slice t hay =
  let n = Slice.length hay in
  let rec go state i =
    if i >= n then None
    else
      let state = t.nodes.(state).next.(Char.code (Slice.unsafe_get hay i)) in
      match t.nodes.(state).outputs with
      | tag :: _ -> Some tag
      | [] -> go state (i + 1)
  in
  go 0 0

let matches_slice t hay = first_match_slice t hay <> None
let pattern_count t = t.count
