(** The serving control plane: a pure state machine.

    [Starting → Running → (Reloading → Running)* → Draining → Stopped],
    with the generation counting applied reloads.  {!step} is total and
    effect-free — every transition the daemon may take is enumerable
    (and enumerated, in the test suite), and an [Error] is a protocol
    violation {!Serve} reports rather than acts on.

    Protocol facts encoded here:
    - a reload gate runs in [Reloading] while the {e old} generation
      keeps serving; [Reload_rejected] returns to [Running] with the
      generation unchanged (atomic rejection), [Reload_applied]
      increments it;
    - [Drain_request] wins from both [Running] and [Reloading] — a
      shutdown during a reload abandons the reload;
    - a repeated [Drain_request] while [Draining] is idempotent
      (SIGTERM may arrive twice);
    - only [Draining] may reach [Stopped], via [Drained]. *)

type state =
  | Starting
  | Running of int  (** serving generation [g >= 1] *)
  | Reloading of int  (** reload gate running; generation [g] serves on *)
  | Draining of int
  | Stopped of int

type event =
  | Ready
  | Reload_request
  | Reload_applied
  | Reload_rejected
  | Drain_request
  | Drained

val initial : state
(** [Starting]. *)

val step : state -> event -> (state, string) result

val generation : state -> int
(** [0] while [Starting], the serving/last generation otherwise. *)

val is_stopped : state -> bool
val can_serve : state -> bool
(** [Running] or [Reloading] — states in which packets flow. *)

val state_to_string : state -> string
val event_to_string : event -> string
