(** The [sanids serve] daemon engine.

    A serving {e generation} is one {!Parallel.process_seq_snapshot}
    run over the source.  The feeder checks the control plane before
    every packet: a lint-clean reload or a drain ends the epoch, and
    the stream pipeline's ordinary shutdown (close queues, drain
    workers, join) retires the old generation losslessly before the
    next begins.  A {e rejected} reload never ends the epoch — the old
    generation keeps serving, untouched.  See {!Lifecycle} for the
    control protocol and DESIGN.md §5h for the architecture.

    Control surface (over {!Httpd}, when [listen] is set):
    - [GET /metrics] — Prometheus text of the serve registry merged
      with every retired epoch's worker snapshot;
    - [GET /healthz] — lifecycle state and generation;
    - [POST /-/reload] — run the reload gate; blocks until the outcome
      (200 applied / 409 rejected);
    - [POST /-/drain] — graceful shutdown; blocks until [Stopped].

    SIGHUP requests a reload, SIGTERM a drain (when [install_signals]).

    Serve metrics: [sanids_config_generation] (gauge),
    [sanids_reload_total{outcome="applied"|"rejected"}],
    [sanids_serve_epochs_total], plus the ingest family for the
    source's decoding. *)

type options = {
  source : string;  (** pcap file, FIFO, or spool directory *)
  base : Config.t;  (** flag-built configuration the spec file refines *)
  config_file : string option;  (** re-read and re-linted on every reload *)
  rules_file : string option;  (** linted as part of the reload gate *)
  listen : Httpd.listen option;
  snapshot_out : string option;  (** JSONL dump path (appended) *)
  snapshot_every : float;  (** seconds between dumps; [<= 0.] disables *)
  domains : int option;
  poll_interval : float;  (** idle-source sleep between control polls *)
  clock : unit -> float;
  install_signals : bool;
  on_delta : (Sanids_obs.Snapshot.t -> unit) option;
      (** observer of every periodic {!Sanids_obs.Snapshot.diff} delta
          (cadenced by [snapshot_every], plus one final delta at
          drain).  This is the hook the cluster sensor ships through:
          the same interval deltas the JSONL dump writes, delivered
          in-process.  Runs on the feeder thread — keep it cheap and
          non-blocking (hand off to a queue). *)
}

val default_options : options
(** [source = ""] (caller must set), [Config.default] base, no files,
    no listener, dumps off, 20 ms poll, [Unix.gettimeofday], signals
    installed, no delta observer. *)

val reload_candidate :
  base:Config.t ->
  config_file:string option ->
  rules_file:string option ->
  (Config.t, string) result
(** The reload gate, callable without a daemon: rebuild the candidate
    ([Config.of_file] applied to [base]) and lint it ({!Config.lint},
    {!Sanids_staticlint.Lint.templates} over its templates,
    {!Sanids_staticlint.Lint.rules_text} when a rules file is given).
    Any error-severity finding — or an unreadable/unparsable file —
    rejects with a one-line reason.  [run] uses exactly this at
    startup and on every reload request, so a dirty config can neither
    start the daemon nor displace a clean generation. *)

type error =
  | Config_rejected of string  (** startup gate failed — never served *)
  | Source_error of string
  | Socket_error of string
  | Reconciliation_mismatch
      (** the drain accounting identity did not balance *)

val error_to_string : error -> string

val run : options -> (unit, error) result
(** Run to completion: serve until the source is exhausted or a drain
    arrives, then flush queues, join workers, print the
    reconciliation line ([records = verdicts + errors + shed + failed])
    and stop. *)
