(* A deliberately tiny blocking HTTP/1.0 responder.

   One accept loop on one listening socket (Unix-domain or TCP), one
   connection at a time, one request per connection, close after the
   response.  That is all a Prometheus scrape or a control command
   needs, and it keeps the attack surface of a sensor's admin port as
   small as it can be: no keep-alive, no chunking, bounded request
   size, and a per-connection read/write deadline so one stalled
   client (a slowloris that connects and never sends, or never reads
   the response) cannot wedge the single-threaded accept loop and
   starve every scrape and control command behind it.

   Requests may carry a body (bounded by [max_body]) when the client
   sends [Content-Length] — that is how cluster sensors POST snapshot
   deltas to the aggregator.  Only the request line and that one
   header are interpreted.

   The loop runs in a sys-thread of the daemon's domain, so handlers
   share the runtime lock with the serve loop — handler code can read
   the daemon's registries without cross-domain races. *)

type listen = Unix_socket of string | Tcp of int

type request = { verb : string; path : string; body : string }
type response = { status : int; body : string; content_type : string }

let ok ?(content_type = "text/plain; version=0.0.4; charset=utf-8") body =
  { status = 200; body; content_type }

let error status body = { status; body; content_type = "text/plain" }

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

let max_request = 4096
let max_body = 1 lsl 20

type t = {
  sock : Unix.file_descr;
  thread : Thread.t;
  stopping : bool Atomic.t;
  address : string;
}

let address t = t.address

(* Both SO_RCVTIMEO and SO_SNDTIMEO, best-effort: a socket kind that
   rejects them (shouldn't happen for AF_UNIX/AF_INET on any platform
   we run on) just keeps blocking semantics. *)
let set_deadline fd seconds =
  if seconds > 0.0 then begin
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    try Unix.setsockopt_float fd Unix.SO_SNDTIMEO seconds
    with Unix.Unix_error _ | Invalid_argument _ -> ()
  end

(* A read past SO_RCVTIMEO surfaces as EAGAIN/EWOULDBLOCK. *)
let timeout_errno = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT -> true
  | _ -> false

type read_outcome = Request of request | Malformed | Too_large | Timed_out

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go 0

(* The one header we interpret.  Header names are case-insensitive. *)
let content_length headers =
  let lines = String.split_on_char '\n' headers in
  List.fold_left
    (fun acc line ->
      match acc with
      | Some _ -> acc
      | None -> (
          match String.index_opt line ':' with
          | None -> None
          | Some i ->
              let key = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
              if key <> "content-length" then None
              else
                int_of_string_opt
                  (String.trim (String.sub line (i + 1) (String.length line - i - 1)))))
    None lines

let read_request fd =
  (* read until the header terminator or the size bound; then, if the
     client declared a body, keep reading until it is complete *)
  let buf = Bytes.create max_request in
  let exception Timeout in
  let rec fill off =
    if off >= max_request then off
    else
      let text = Bytes.sub_string buf 0 off in
      let done_ =
        off > 0 && (find_sub text "\r\n\r\n" <> None || find_sub text "\n\n" <> None)
      in
      if done_ then off
      else
        match Unix.read fd buf off (max_request - off) with
        | 0 -> off
        | n -> fill (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill off
        | exception Unix.Unix_error (e, _, _) when timeout_errno e ->
            raise Timeout
  in
  match fill 0 with
  | exception Timeout -> Timed_out
  | n -> (
      let text = Bytes.sub_string buf 0 n in
      let header_end =
        match (find_sub text "\r\n\r\n", find_sub text "\n\n") with
        | Some i, Some j -> Some (min (i + 4) (j + 2))
        | Some i, None -> Some (i + 4)
        | None, Some j -> Some (j + 2)
        | None, None -> None
      in
      match header_end with
      | None -> Malformed  (* headers never terminated within the bound *)
      | Some body_start -> (
          let headers = String.sub text 0 body_start in
          match String.index_opt headers '\n' with
          | None -> Malformed
          | Some i -> (
              let line = String.trim (String.sub headers 0 i) in
              match String.split_on_char ' ' line with
              | verb :: path :: _ -> (
                  let already = String.sub text body_start (n - body_start) in
                  match content_length headers with
                  | None | Some 0 ->
                      Request { verb; path; body = "" }
                  | Some len when len < 0 || len > max_body -> Too_large
                  | Some len -> (
                      let body = Buffer.create len in
                      Buffer.add_string body already;
                      let chunk = Bytes.create 4096 in
                      let rec drain () =
                        if Buffer.length body >= len then Ok ()
                        else
                          match Unix.read fd chunk 0 (Bytes.length chunk) with
                          | 0 -> Error Malformed  (* short body *)
                          | m ->
                              Buffer.add_subbytes body chunk 0 m;
                              drain ()
                          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                              drain ()
                          | exception Unix.Unix_error (e, _, _)
                            when timeout_errno e ->
                              Error Timed_out
                      in
                      match drain () with
                      | Error o -> o
                      | Ok () ->
                          Request
                            {
                              verb;
                              path;
                              body = String.sub (Buffer.contents body) 0 len;
                            }))
              | _ -> Malformed)))

let write_response fd { status; body; content_type } =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status (reason_phrase status) content_type (String.length body)
  in
  let payload = head ^ body in
  let rec write_all off =
    if off < String.length payload then
      match
        Unix.write_substring fd payload off (String.length payload - off)
      with
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
  in
  (try write_all 0 with Unix.Unix_error _ -> ())

let handle_connection ~deadline handler fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      set_deadline fd deadline;
      match read_request fd with
      | Malformed -> write_response fd (error 400 "bad request\n")
      | Too_large -> write_response fd (error 413 "payload too large\n")
      | Timed_out ->
          (* best effort: the peer may be gone or never reading *)
          write_response fd (error 408 "request timeout\n")
      | Request req -> (
          match handler req with
          | resp -> write_response fd resp
          | exception e ->
              write_response fd
                (error 500 (Printf.sprintf "handler: %s\n" (Printexc.to_string e)))))

(* Poll with select so [stop] can take effect: a thread blocked in a
   bare [accept] is NOT woken when another thread closes the listening
   fd, so the loop must come up for air to observe [stopping]. *)
let accept_loop t ~deadline handler =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.sock ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.sock with
          | fd, _ -> handle_connection ~deadline handler fd
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error _ -> Atomic.set t.stopping true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
          (* the listening socket was closed under us: stop *)
          Atomic.set t.stopping true);
      loop ()
    end
  in
  loop ()

let start ?(deadline = 10.0) listen handler =
  match
    match listen with
    | Unix_socket path ->
        (try if Sys.file_exists path then Sys.remove path
         with Sys_error _ -> ());
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        Ok (sock, path)
    | Tcp port ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Ok (sock, Printf.sprintf "127.0.0.1:%d" port)
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "listen: %s" (Unix.error_message e))
  | Error _ as e -> e
  | Ok (sock, address) ->
      Unix.listen sock 16;
      let t = { sock; thread = Thread.self (); stopping = Atomic.make false; address } in
      let thread = Thread.create (fun () -> accept_loop t ~deadline handler) () in
      Ok { t with thread }

let stop t =
  Atomic.set t.stopping true;
  (* the loop notices within one select interval; close only after the
     join so the fd number cannot be reused under a racing accept *)
  Thread.join t.thread;
  (try Unix.close t.sock with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* The matching one-shot client, used by `sanids ctl` and the cluster
   sensor's delta shipping: connect, send one HTTP/1.0 request
   (optionally with a body), return (status, body).

   Connect retries run on the shared {!Backoff} policy — the same
   tested schedule the sensor uses between delta attempts — so "absorb
   a daemon start-up race" and "survive an aggregator restart" are one
   code path. *)

let connect_with_retry ?(backoff = Backoff.default) addr ~deadline =
  let seed = Int64.of_int (Hashtbl.hash addr) in
  Backoff.retry backoff ~seed ~deadline (fun ~attempt:_ ->
      let sock =
        match addr with
        | Unix.ADDR_UNIX _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
        | Unix.ADDR_INET _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
      in
      match Unix.connect sock addr with
      | () -> Ok sock
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close sock with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "connect: %s" (Unix.error_message e)))

let request ?(timeout = 10.0) ?backoff ?read_timeout ?body listen ~verb ~path
    () =
  let addr =
    match listen with
    | Unix_socket p -> Unix.ADDR_UNIX p
    | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
  in
  let deadline = Unix.gettimeofday () +. timeout in
  match connect_with_retry ?backoff addr ~deadline with
  | Error _ as e -> e
  | Ok sock ->
      Fun.protect
        ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
        (fun () ->
          (* blocking control commands (reload/drain) legitimately hold
             the response open, so reads stay un-deadlined unless the
             caller opts in — the sensor does, a human ctl does not *)
          (match read_timeout with
          | Some s -> set_deadline sock s
          | None -> ());
          let req =
            match body with
            | None -> Printf.sprintf "%s %s HTTP/1.0\r\n\r\n" verb path
            | Some b ->
                Printf.sprintf "%s %s HTTP/1.0\r\nContent-Length: %d\r\n\r\n%s"
                  verb path (String.length b) b
          in
          let rec write_all off =
            if off < String.length req then
              write_all (off + Unix.write_substring sock req off (String.length req - off))
          in
          match write_all 0 with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Printf.sprintf "write: %s" (Unix.error_message e))
          | () -> (
              let buf = Buffer.create 1024 in
              let chunk = Bytes.create 4096 in
              let timed_out = ref false in
              let rec drain () =
                match Unix.read sock chunk 0 (Bytes.length chunk) with
                | 0 -> ()
                | n ->
                    Buffer.add_subbytes buf chunk 0 n;
                    drain ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
                | exception Unix.Unix_error (e, _, _) when timeout_errno e ->
                    timed_out := true
              in
              (try drain () with Unix.Unix_error _ -> ());
              if !timed_out && Buffer.length buf = 0 then
                Error "read: response timed out"
              else
                let text = Buffer.contents buf in
                match String.index_opt text ' ' with
                | None -> Error "malformed response"
                | Some i -> (
                    let rest = String.sub text (i + 1) (String.length text - i - 1) in
                    let code =
                      match String.index_opt rest ' ' with
                      | Some j -> int_of_string_opt (String.sub rest 0 j)
                      | None -> None
                    in
                    let body =
                      (* body follows the first blank line *)
                      match
                        (find_sub text "\r\n\r\n", find_sub text "\n\n")
                      with
                      | Some i, Some j ->
                          let p = min (i + 4) (j + 2) in
                          String.sub text p (String.length text - p)
                      | Some i, None ->
                          String.sub text (i + 4) (String.length text - i - 4)
                      | None, Some j ->
                          String.sub text (j + 2) (String.length text - j - 2)
                      | None, None -> ""
                    in
                    match code with
                    | Some c -> Ok (c, body)
                    | None -> Error "malformed status line")))
