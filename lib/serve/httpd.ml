(* A deliberately tiny blocking HTTP/1.0 responder.

   One accept loop on one listening socket (Unix-domain or TCP), one
   connection at a time, one request per connection, close after the
   response.  That is all a Prometheus scrape or a control command
   needs, and it keeps the attack surface of a sensor's admin port as
   small as it can be: no keep-alive, no chunking, no headers parsed
   beyond the request line, bounded request size.

   The loop runs in a sys-thread of the daemon's domain, so handlers
   share the runtime lock with the serve loop — handler code can read
   the daemon's registries without cross-domain races. *)

type listen = Unix_socket of string | Tcp of int

type request = { verb : string; path : string }
type response = { status : int; body : string; content_type : string }

let ok ?(content_type = "text/plain; version=0.0.4; charset=utf-8") body =
  { status = 200; body; content_type }

let error status body = { status; body; content_type = "text/plain" }

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

let max_request = 4096

type t = {
  sock : Unix.file_descr;
  thread : Thread.t;
  stopping : bool Atomic.t;
  address : string;
}

let address t = t.address

let read_request fd =
  (* read until the header terminator or the size bound; the request
     line is all we act on *)
  let buf = Bytes.create max_request in
  let rec fill off =
    if off >= max_request then off
    else
      let contains_terminator () =
        let s = Bytes.sub_string buf 0 off in
        let has sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        has "\r\n\r\n" || has "\n\n"
      in
      if off > 0 && contains_terminator () then off
      else
        match Unix.read fd buf off (max_request - off) with
        | 0 -> off
        | n -> fill (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill off
  in
  let n = fill 0 in
  let text = Bytes.sub_string buf 0 n in
  match String.index_opt text '\n' with
  | None -> None
  | Some i -> (
      let line = String.trim (String.sub text 0 i) in
      match String.split_on_char ' ' line with
      | verb :: path :: _ -> Some { verb; path }
      | _ -> None)

let write_response fd { status; body; content_type } =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status (reason_phrase status) content_type (String.length body)
  in
  let payload = head ^ body in
  let rec write_all off =
    if off < String.length payload then
      match
        Unix.write_substring fd payload off (String.length payload - off)
      with
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
  in
  (try write_all 0 with Unix.Unix_error _ -> ())

let handle_connection handler fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request fd with
      | None -> write_response fd (error 400 "bad request\n")
      | Some req -> (
          match handler req with
          | resp -> write_response fd resp
          | exception e ->
              write_response fd
                (error 500 (Printf.sprintf "handler: %s\n" (Printexc.to_string e)))))

(* Poll with select so [stop] can take effect: a thread blocked in a
   bare [accept] is NOT woken when another thread closes the listening
   fd, so the loop must come up for air to observe [stopping]. *)
let accept_loop t handler =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.sock ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.sock with
          | fd, _ -> handle_connection handler fd
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error _ -> Atomic.set t.stopping true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
          (* the listening socket was closed under us: stop *)
          Atomic.set t.stopping true);
      loop ()
    end
  in
  loop ()

let start listen handler =
  match
    match listen with
    | Unix_socket path ->
        (try if Sys.file_exists path then Sys.remove path
         with Sys_error _ -> ());
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        Ok (sock, path)
    | Tcp port ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Ok (sock, Printf.sprintf "127.0.0.1:%d" port)
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "listen: %s" (Unix.error_message e))
  | Error _ as e -> e
  | Ok (sock, address) ->
      Unix.listen sock 16;
      let t = { sock; thread = Thread.self (); stopping = Atomic.make false; address } in
      let thread = Thread.create (fun () -> accept_loop t handler) () in
      Ok { t with thread }

let stop t =
  Atomic.set t.stopping true;
  (* the loop notices within one select interval; close only after the
     join so the fd number cannot be reused under a racing accept *)
  Thread.join t.thread;
  (try Unix.close t.sock with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* The matching one-shot client, used by `sanids ctl` (and usable from
   tests): connect, send one HTTP/1.0 request, return (status, body). *)

let rec connect_with_retry addr ~deadline =
  let sock =
    match addr with
    | Unix.ADDR_UNIX _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    | Unix.ADDR_INET _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
  in
  match Unix.connect sock addr with
  | () -> Ok sock
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        Unix.sleepf 0.05;
        connect_with_retry addr ~deadline
      end
      else Error (Printf.sprintf "connect: %s" (Unix.error_message e))

let request ?(timeout = 10.0) listen ~verb ~path () =
  let addr =
    match listen with
    | Unix_socket p -> Unix.ADDR_UNIX p
    | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
  in
  let deadline = Unix.gettimeofday () +. timeout in
  match connect_with_retry addr ~deadline with
  | Error _ as e -> e
  | Ok sock ->
      Fun.protect
        ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
        (fun () ->
          let req = Printf.sprintf "%s %s HTTP/1.0\r\n\r\n" verb path in
          let rec write_all off =
            if off < String.length req then
              write_all (off + Unix.write_substring sock req off (String.length req - off))
          in
          match write_all 0 with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Printf.sprintf "write: %s" (Unix.error_message e))
          | () -> (
              let buf = Buffer.create 1024 in
              let chunk = Bytes.create 4096 in
              let rec drain () =
                match Unix.read sock chunk 0 (Bytes.length chunk) with
                | 0 -> ()
                | n ->
                    Buffer.add_subbytes buf chunk 0 n;
                    drain ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
              in
              (try drain () with Unix.Unix_error _ -> ());
              let text = Buffer.contents buf in
              match String.index_opt text ' ' with
              | None -> Error "malformed response"
              | Some i -> (
                  let rest = String.sub text (i + 1) (String.length text - i - 1) in
                  let code =
                    match String.index_opt rest ' ' with
                    | Some j -> int_of_string_opt (String.sub rest 0 j)
                    | None -> None
                  in
                  let body =
                    (* body follows the first blank line *)
                    let n = String.length text in
                    let rec find i =
                      if i + 4 <= n && String.sub text i 4 = "\r\n\r\n" then
                        Some (i + 4)
                      else if i + 2 <= n && String.sub text i 2 = "\n\n" then
                        Some (i + 2)
                      else if i >= n then None
                      else find (i + 1)
                    in
                    match find 0 with
                    | Some p -> String.sub text p (n - p)
                    | None -> ""
                  in
                  match code with
                  | Some c -> Ok (c, body)
                  | None -> Error "malformed status line")))
