(* The daemon engine: epochs of the existing stream pipeline under the
   {!Lifecycle} control plane.

   The one design decision everything else follows from: a serving
   *generation* is one [Parallel.process_seq_snapshot] run.  The feeder
   [Seq] checks the control plane before every packet; when a clean
   reload or a drain is pending it simply ends, which lets the stream
   pipeline's ordinary shutdown path (close queues, drain workers,
   join) retire the old generation without losing anything.  A
   *rejected* reload never ends the epoch — the old generation keeps
   serving untouched, which is the atomicity the reload gate promises.
   Packets the source has not yet yielded carry into the next epoch;
   with the default [Block] admission policy a generation swap sheds
   nothing.

   Threading: the engine runs on the daemon's main thread; the admin
   responder ({!Httpd}) is a sys-thread of the same domain, so both
   share the runtime lock and the control record below only needs a
   mutex for the *blocking* control commands (reload/drain wait for
   their outcome on the condition variable).  Worker domains never see
   any of this — they are behind [process_seq_snapshot]'s queues. *)

module Lint = Sanids_staticlint.Lint
module Finding = Sanids_staticlint.Finding
module Obs = Sanids_obs
module Source = Sanids_ingest.Source
module Ingest = Sanids_ingest.Ingest

type options = {
  source : string;  (** pcap file, FIFO, or spool directory *)
  base : Config.t;  (** flag-built configuration the spec file refines *)
  config_file : string option;  (** re-read and re-linted on every reload *)
  rules_file : string option;  (** linted as part of the reload gate *)
  listen : Httpd.listen option;
  snapshot_out : string option;  (** JSONL dump path (appended) *)
  snapshot_every : float;  (** seconds between dumps; [<= 0.] disables *)
  domains : int option;
  poll_interval : float;  (** idle-source sleep between control polls *)
  clock : unit -> float;
  install_signals : bool;  (** SIGHUP → reload, SIGTERM → drain *)
  on_delta : (Obs.Snapshot.t -> unit) option;
      (** observer of every periodic snapshot delta — the cluster
          sensor's shipping hook; runs on the feeder thread *)
}

let default_options =
  {
    source = "";
    base = Config.default;
    config_file = None;
    rules_file = None;
    listen = None;
    snapshot_out = None;
    snapshot_every = 0.;
    domains = None;
    poll_interval = 0.02;
    clock = Unix.gettimeofday;
    install_signals = true;
    on_delta = None;
  }

(* ------------------------------------------------------------------ *)
(* Reload gate: rebuild the candidate configuration from its sources of
   truth and refuse it if the linter finds any error-severity finding.
   Pure with respect to the daemon — callable from tests. *)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok s
  | exception Sys_error m -> Error m

let build_candidate ~base ~config_file =
  match config_file with
  | None -> Ok base
  | Some path -> (
      match Config.of_file path with
      | Error m -> Error m
      | Ok update -> Ok (update base))

let gate ~rules_file candidate =
  let rules_findings =
    match rules_file with
    | None -> Ok []
    | Some path -> (
        match read_file path with
        | Error m -> Error (Printf.sprintf "%s: %s" path m)
        | Ok text -> Ok (Lint.rules_text text))
  in
  match rules_findings with
  | Error m -> Error m
  | Ok rf ->
      let findings =
        Config.lint candidate
        @ Lint.templates candidate.Config.templates
        @ rf
      in
      if Finding.failed ~strict:false findings then
        let errors =
          List.filter (fun f -> f.Finding.severity = Finding.Error) findings
        in
        Error
          (String.concat "; " (List.map Finding.to_line errors))
      else Ok findings

let reload_candidate ~base ~config_file ~rules_file =
  match build_candidate ~base ~config_file with
  | Error m -> Error m
  | Ok candidate -> (
      match gate ~rules_file candidate with
      | Error m -> Error m
      | Ok _findings -> Ok candidate)

(* ------------------------------------------------------------------ *)
(* Control plane shared between the engine thread and the responder. *)

type outcome = Applied of int | Rejected of string

type control = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable state : Lifecycle.state;
  mutable pending : [ `None | `Reload | `Drain ];
  mutable attempts : int;  (* completed reload attempts *)
  mutable last_outcome : outcome option;
}

let make_control () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    state = Lifecycle.initial;
    pending = `None;
    attempts = 0;
    last_outcome = None;
  }

let with_lock c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

(* A lifecycle [Error] is a protocol bug: log it loudly, keep the old
   state, and let the daemon continue — never crash the data plane over
   bookkeeping. *)
let transition c event =
  match Lifecycle.step c.state event with
  | Ok s -> c.state <- s
  | Error m -> Logs.err (fun f -> f "serve: %s" m)

let request c cmd =
  with_lock c (fun () ->
      (match (c.pending, cmd) with
      | `Drain, _ -> ()  (* drain wins; nothing overrides it *)
      | _, `Drain -> c.pending <- `Drain
      | `None, `Reload -> c.pending <- `Reload
      | `Reload, `Reload -> ());
      Condition.signal c.cond)

(* Block until reload attempt [n+1] completes (or the daemon stops). *)
let await_reload c =
  with_lock c (fun () ->
      let target = c.attempts + 1 in
      while c.attempts < target && not (Lifecycle.is_stopped c.state) do
        Condition.wait c.cond c.mutex
      done;
      if Lifecycle.is_stopped c.state && c.attempts < target then
        Rejected "daemon stopped before the reload completed"
      else
        match c.last_outcome with
        | Some o -> o
        | None -> Rejected "no reload outcome recorded")

let await_stopped c =
  with_lock c (fun () ->
      while not (Lifecycle.is_stopped c.state) do
        Condition.wait c.cond c.mutex
      done;
      Lifecycle.generation c.state)

(* ------------------------------------------------------------------ *)
(* Engine. *)

type metrics = {
  reg : Obs.Registry.t;
  generation : Obs.Registry.gauge;
  reload_applied : Obs.Registry.counter;
  reload_rejected : Obs.Registry.counter;
  epochs : Obs.Registry.counter;
  ingest : Ingest.metrics;
}

let make_metrics () =
  let reg = Obs.Registry.create () in
  let generation =
    Obs.Registry.gauge reg ~help:"active configuration generation"
      "sanids_config_generation"
  in
  let counter outcome =
    Obs.Registry.counter reg ~help:"reload attempts by outcome"
      ~labels:[ ("outcome", outcome) ] "sanids_reload_total"
  in
  (* pre-register both outcomes so a scrape always sees the family *)
  let reload_applied = counter "applied" in
  let reload_rejected = counter "rejected" in
  let epochs =
    Obs.Registry.counter reg ~help:"serving epochs started (generation swaps + 1)"
      "sanids_serve_epochs_total"
  in
  { reg; generation; reload_applied; reload_rejected; epochs; ingest = Ingest.metrics reg }

type t = {
  options : options;
  control : control;
  metrics : metrics;
  mutable cumulative : Obs.Snapshot.t;  (* retired epochs, merged *)
  mutable config : Config.t;
  mutable last_dump : Obs.Snapshot.t;
  mutable last_dump_at : float;
  sighup : bool Atomic.t;
  sigterm : bool Atomic.t;
}

(* Everything observable right now: the serve registry (control-plane
   counters + ingest) merged with every retired epoch's worker
   snapshot.  In-flight epoch counters appear when the epoch retires —
   worker registries are domain-local by design. *)
let observable t =
  Obs.Snapshot.merge (Obs.Registry.snapshot t.metrics.reg) t.cumulative

let say fmt = Printf.ksprintf (fun s -> print_string s; print_newline (); flush stdout) fmt

(* Periodic publication: cut one interval delta against the last cut
   and feed every configured sink — the JSONL dump file and/or the
   in-process [on_delta] observer (the cluster sensor).  One cut feeds
   both, so the file and the shipped stream agree delta for delta. *)
let dump_snapshot t ~final =
  if t.options.snapshot_out <> None || t.options.on_delta <> None then begin
    let now = t.options.clock () in
    let due =
      final
      || (t.options.snapshot_every > 0.
          && now -. t.last_dump_at >= t.options.snapshot_every)
    in
    if due then begin
      let current = observable t in
      let delta = Obs.Snapshot.diff ~newer:current ~older:t.last_dump in
      t.last_dump <- current;
      t.last_dump_at <- now;
      (match t.options.on_delta with Some f -> f delta | None -> ());
      match t.options.snapshot_out with
      | None -> ()
      | Some path ->
          let oc =
            open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
          in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (Obs.Export.to_jsonl delta))
    end
  end

(* One feeder pull: poll signals and pending controls, then the source.
   Returns [Some packet] to keep the epoch running, [None] to end it —
   [epoch_exit] says why. *)
type exit_reason = Swap of Config.t | Drain | Exhausted

let feeder t source ~epoch_exit =
  let c = t.control in
  let handle_reload () =
    (* run the gate with the mutex released: it reads files *)
    with_lock c (fun () ->
        c.pending <- `None;
        transition c Lifecycle.Reload_request);
    match
      reload_candidate ~base:t.options.base
        ~config_file:t.options.config_file ~rules_file:t.options.rules_file
    with
    | Error reason ->
        Obs.Registry.incr t.metrics.reload_rejected;
        with_lock c (fun () ->
            transition c Lifecycle.Reload_rejected;
            c.attempts <- c.attempts + 1;
            c.last_outcome <- Some (Rejected reason);
            Condition.broadcast c.cond);
        say "serve: reload rejected: %s" reason;
        `Continue
    | Ok candidate ->
        (* the applied outcome is recorded only after the swap — the
           epoch must retire first *)
        epoch_exit := Some (Swap candidate);
        `Stop
  in
  let rec next () =
    if Atomic.exchange t.sigterm false then request c `Drain;
    if Atomic.exchange t.sighup false then request c `Reload;
    let cmd =
      with_lock c (fun () ->
          match c.pending with
          | `Drain ->
              c.pending <- `None;
              transition c Lifecycle.Drain_request;
              Condition.broadcast c.cond;
              `Drain
          | `Reload -> `Reload
          | `None -> `None)
    in
    match cmd with
    | `Drain ->
        epoch_exit := Some Drain;
        say "serve: draining";
        None
    | `Reload -> (
        match handle_reload () with `Continue -> next () | `Stop -> None)
    | `None -> (
        match Source.next source with
        | Source.Packet p ->
            (* a busy source never goes Idle, so the periodic cut must
               also be checked on the packet path (cheap: early-out on
               the cadence) *)
            dump_snapshot t ~final:false;
            Some p
        | Source.Eof ->
            epoch_exit := Some Exhausted;
            None
        | Source.Idle ->
            dump_snapshot t ~final:false;
            Unix.sleepf t.options.poll_interval;
            next ())
  in
  next

let reconcile t =
  let s = observable t in
  let records = Obs.Snapshot.counter_value s Ingest.records_total in
  let errors = Obs.Snapshot.counter_sum s Ingest.errors_total in
  let verdicts = Obs.Snapshot.counter_value s "sanids_packets_total" in
  let shed = Obs.Snapshot.counter_sum s "sanids_shed_total" in
  let failed = Obs.Snapshot.counter_value s "sanids_worker_failures_total" in
  let balanced = records = verdicts + errors + shed + failed in
  say "serve: reconciliation records=%d verdicts=%d errors=%d shed=%d failed=%d %s"
    records verdicts errors shed failed
    (if balanced then "reconciled" else "MISMATCH");
  balanced

let handler t req =
  let c = t.control in
  match (req.Httpd.verb, req.Httpd.path) with
  | ("GET" | "HEAD"), "/metrics" ->
      let help = Obs.Registry.help t.metrics.reg in
      Httpd.ok (Obs.Export.to_prometheus ~help (observable t))
  | ("GET" | "HEAD"), "/healthz" ->
      let state, gen =
        with_lock c (fun () ->
            (Lifecycle.state_to_string c.state, Lifecycle.generation c.state))
      in
      Httpd.ok ~content_type:"text/plain"
        (Printf.sprintf "ok state=%s generation=%d\n" state gen)
  | ("POST" | "GET"), "/-/reload" -> (
      let refused =
        with_lock c (fun () -> not (Lifecycle.can_serve c.state))
      in
      if refused then Httpd.error 503 "not serving\n"
      else begin
        request c `Reload;
        match await_reload c with
        | Applied g ->
            Httpd.ok ~content_type:"text/plain"
              (Printf.sprintf "applied generation=%d\n" g)
        | Rejected reason ->
            Httpd.error 409 (Printf.sprintf "rejected: %s\n" reason)
      end)
  | ("POST" | "GET"), "/-/drain" ->
      request c `Drain;
      let gen = await_stopped c in
      Httpd.ok ~content_type:"text/plain"
        (Printf.sprintf "drained generation=%d\n" gen)
  | _, ("/metrics" | "/healthz" | "/-/reload" | "/-/drain") ->
      Httpd.error 405 "method not allowed\n"
  | _ -> Httpd.error 404 "not found\n"

let install_signal_handlers t =
  if t.options.install_signals then begin
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    let flag a = Sys.Signal_handle (fun _ -> Atomic.set a true) in
    (try Sys.set_signal Sys.sighup (flag t.sighup)
     with Invalid_argument _ | Sys_error _ -> ());
    (try Sys.set_signal Sys.sigterm (flag t.sigterm)
     with Invalid_argument _ | Sys_error _ -> ())
  end

type error =
  | Config_rejected of string
  | Source_error of string
  | Socket_error of string
  | Reconciliation_mismatch

let error_to_string = function
  | Config_rejected m -> "configuration rejected: " ^ m
  | Source_error m -> "source: " ^ m
  | Socket_error m -> "control socket: " ^ m
  | Reconciliation_mismatch -> "reconciliation mismatch"

let run options =
  (* startup gate: refuse to serve a configuration that would be
     rejected on reload — the daemon must never start dirty *)
  match
    reload_candidate ~base:options.base ~config_file:options.config_file
      ~rules_file:options.rules_file
  with
  | Error reason -> Error (Config_rejected reason)
  | Ok config -> (
      let t =
        {
          options;
          control = make_control ();
          metrics = make_metrics ();
          cumulative = Obs.Snapshot.empty;
          config;
          last_dump = Obs.Snapshot.empty;
          last_dump_at = options.clock ();
          sighup = Atomic.make false;
          sigterm = Atomic.make false;
        }
      in
      match Source.of_path ~metrics:t.metrics.ingest options.source with
      | Error m -> Error (Source_error m)
      | Ok source -> (
          install_signal_handlers t;
          say "serve: source %s" (Source.describe source);
          (* become Running before the control socket opens, so the
             first health probe can never observe Starting *)
          with_lock t.control (fun () ->
              transition t.control Lifecycle.Ready;
              Condition.broadcast t.control.cond);
          Obs.Registry.set_gauge t.metrics.generation 1.;
          say "serve: generation 1 serving";
          let httpd =
            match options.listen with
            | None -> Ok None
            | Some listen -> (
                match Httpd.start listen (handler t) with
                | Ok h -> Ok (Some h)
                | Error m -> Error m)
          in
          match httpd with
          | Error m ->
              Source.close source;
              Error (Socket_error m)
          | Ok httpd ->
              (match httpd with
              | Some h -> say "serve: control socket %s" (Httpd.address h)
              | None -> ());
              let rec epochs () =
                let serving =
                  with_lock t.control (fun () ->
                      Lifecycle.can_serve t.control.state)
                in
                if serving then begin
                  let epoch_exit = ref None in
                  let next = feeder t source ~epoch_exit in
                  Obs.Registry.incr t.metrics.epochs;
                  let snap =
                    Parallel.process_seq_snapshot ?domains:options.domains
                      ~clock:options.clock t.config
                      (Seq.of_dispenser next)
                      (fun alerts ->
                        List.iter (fun a -> say "%s" (Alert.to_line a)) alerts)
                  in
                  t.cumulative <- Obs.Snapshot.merge t.cumulative snap;
                  match !epoch_exit with
                  | Some (Swap candidate) ->
                      t.config <- candidate;
                      let gen =
                        with_lock t.control (fun () ->
                            transition t.control Lifecycle.Reload_applied;
                            let g = Lifecycle.generation t.control.state in
                            t.control.attempts <- t.control.attempts + 1;
                            t.control.last_outcome <- Some (Applied g);
                            Condition.broadcast t.control.cond;
                            g)
                      in
                      Obs.Registry.incr t.metrics.reload_applied;
                      Obs.Registry.set_gauge t.metrics.generation (float_of_int gen);
                      say "serve: generation %d serving" gen;
                      epochs ()
                  | Some Drain -> ()
                  | Some Exhausted ->
                      with_lock t.control (fun () ->
                          transition t.control Lifecycle.Drain_request;
                          Condition.broadcast t.control.cond);
                      say "serve: source exhausted, draining"
                  | None ->
                      (* the source ended the Seq without setting a
                         reason — treat as exhausted *)
                      with_lock t.control (fun () ->
                          transition t.control Lifecycle.Drain_request;
                          Condition.broadcast t.control.cond)
                end
              in
              epochs ();
              let balanced = reconcile t in
              dump_snapshot t ~final:true;
              with_lock t.control (fun () ->
                  transition t.control Lifecycle.Drained;
                  Condition.broadcast t.control.cond);
              say "serve: stopped generation=%d"
                (Lifecycle.generation t.control.state);
              (match httpd with Some h -> Httpd.stop h | None -> ());
              Source.close source;
              if balanced then Ok () else Error Reconciliation_mismatch))
