(** A minimal blocking HTTP/1.0 responder for the daemon's admin plane.

    One listening socket, one sys-thread, one connection at a time, one
    request per connection — exactly what a Prometheus scrape or a
    {!Serve} control command needs and nothing more.  Because the
    accept loop is a sys-thread of the daemon's own domain, handlers
    run under the shared runtime lock and may read the daemon's
    registries without cross-domain synchronisation.

    Every accepted connection runs under a read/write deadline
    ([SO_RCVTIMEO]/[SO_SNDTIMEO]): a client that connects and stalls —
    never sending a request, or never reading the response — is cut
    off with a 408 instead of wedging the accept loop and starving
    every scrape and control command queued behind it.

    Requests may carry a body (the cluster's snapshot deltas arrive
    this way) when the client declares [Content-Length]; bodies are
    bounded at 1 MiB. *)

type listen = Unix_socket of string | Tcp of int
(** Where to listen: a Unix-domain socket path (removed and rebound on
    start) or a loopback TCP port. *)

type request = { verb : string; path : string; body : string }
(** [body] is [""] unless the client declared a [Content-Length]. *)

type response = { status : int; body : string; content_type : string }

val ok : ?content_type:string -> string -> response
(** 200 with the Prometheus text-format content type by default. *)

val error : int -> string -> response

type t

val start : ?deadline:float -> listen -> (request -> response) -> (t, string) result
(** Bind, listen, and spawn the accept thread.  [deadline] (default 10
    seconds, [<= 0.] disables) bounds each connection's socket reads
    and writes; handler {e compute} time is not bounded — a blocking
    reload or drain may legitimately hold its response open.  Handler
    exceptions become 500 responses; they never kill the loop. *)

val stop : t -> unit
(** Close the listener (waking a blocked [accept]) and join the
    thread.  Idempotent in effect. *)

val address : t -> string
(** Human-readable bound address, for logs. *)

val connect_with_retry :
  ?backoff:Backoff.t ->
  Unix.sockaddr ->
  deadline:float ->
  (Unix.file_descr, string) result
(** Connect, retrying on the shared {!Backoff} policy (deterministic
    jitter seeded from the address) until the {e absolute} clock time
    [deadline]. *)

val request :
  ?timeout:float ->
  ?backoff:Backoff.t ->
  ?read_timeout:float ->
  ?body:string ->
  listen ->
  verb:string ->
  path:string ->
  unit ->
  (int * string, string) result
(** One-shot client: connect (retrying on [backoff] until [timeout]
    seconds from now, absorbing daemon start-up races), send a single
    HTTP/1.0 request — with a [Content-Length] body when [body] is
    given — and return [(status, body)].  Reads block indefinitely
    unless [read_timeout] is set: control commands hold their response
    open on purpose, while the cluster sensor bounds every attempt.
    This is what [sanids ctl] and the sensor's delta shipping use. *)
