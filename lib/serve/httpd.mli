(** A minimal blocking HTTP/1.0 responder for the daemon's admin plane.

    One listening socket, one sys-thread, one connection at a time, one
    request per connection — exactly what a Prometheus scrape or a
    {!Serve} control command needs and nothing more.  Because the
    accept loop is a sys-thread of the daemon's own domain, handlers
    run under the shared runtime lock and may read the daemon's
    registries without cross-domain synchronisation. *)

type listen = Unix_socket of string | Tcp of int
(** Where to listen: a Unix-domain socket path (removed and rebound on
    start) or a loopback TCP port. *)

type request = { verb : string; path : string }

type response = { status : int; body : string; content_type : string }

val ok : ?content_type:string -> string -> response
(** 200 with the Prometheus text-format content type by default. *)

val error : int -> string -> response

type t

val start : listen -> (request -> response) -> (t, string) result
(** Bind, listen, and spawn the accept thread.  Handler exceptions
    become 500 responses; they never kill the loop. *)

val stop : t -> unit
(** Close the listener (waking a blocked [accept]) and join the
    thread.  Idempotent in effect. *)

val address : t -> string
(** Human-readable bound address, for logs. *)

val request :
  ?timeout:float ->
  listen ->
  verb:string ->
  path:string ->
  unit ->
  (int * string, string) result
(** One-shot client: connect (retrying until [timeout] seconds to
    absorb daemon start-up races), send a single HTTP/1.0 request, and
    return [(status, body)].  This is what [sanids ctl] uses. *)
