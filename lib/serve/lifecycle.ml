(* The serving control plane as a pure transition function.

   Every lifecycle decision the daemon makes — may this reload proceed,
   what does a SIGTERM during a reload mean, when is it legal to stop —
   lives here, with no I/O, no clock and no mutable state, so the whole
   protocol is enumerable in a unit test.  The daemon ({!Serve}) only
   ever changes phase by calling [step]; an [Error] result is a
   protocol violation the daemon reports instead of acting on.

   The generation is the reload epoch: it starts at 1 when serving
   begins and increments only on an applied (lint-clean) reload.  A
   rejected reload returns to [Running] with the generation — and the
   serving data plane — untouched; that is the atomicity the reload
   gate promises. *)

type state =
  | Starting
  | Running of int
  | Reloading of int  (* gate in progress; the old generation serves on *)
  | Draining of int
  | Stopped of int

type event =
  | Ready
  | Reload_request
  | Reload_applied
  | Reload_rejected
  | Drain_request
  | Drained

let initial = Starting

let generation = function
  | Starting -> 0
  | Running g | Reloading g | Draining g | Stopped g -> g

let state_to_string = function
  | Starting -> "starting"
  | Running g -> Printf.sprintf "running(gen=%d)" g
  | Reloading g -> Printf.sprintf "reloading(gen=%d)" g
  | Draining g -> Printf.sprintf "draining(gen=%d)" g
  | Stopped g -> Printf.sprintf "stopped(gen=%d)" g

let event_to_string = function
  | Ready -> "ready"
  | Reload_request -> "reload_request"
  | Reload_applied -> "reload_applied"
  | Reload_rejected -> "reload_rejected"
  | Drain_request -> "drain_request"
  | Drained -> "drained"

let step state event =
  match (state, event) with
  | Starting, Ready -> Ok (Running 1)
  | Running g, Reload_request -> Ok (Reloading g)
  | Reloading g, Reload_applied -> Ok (Running (g + 1))
  | Reloading g, Reload_rejected -> Ok (Running g)
  (* drain always wins: a shutdown request mid-gate abandons the reload *)
  | (Running g | Reloading g), Drain_request -> Ok (Draining g)
  (* a second drain request is harmless, not a violation — SIGTERM may
     arrive again while queues flush *)
  | Draining g, Drain_request -> Ok (Draining g)
  | Draining g, Drained -> Ok (Stopped g)
  | ( (Starting | Running _ | Reloading _ | Draining _ | Stopped _),
      (Ready | Reload_request | Reload_applied | Reload_rejected
      | Drain_request | Drained ) ) ->
      Error
        (Printf.sprintf "invalid lifecycle transition: %s in state %s"
           (event_to_string event) (state_to_string state))

let is_stopped = function Stopped _ -> true | _ -> false
let can_serve = function Running _ | Reloading _ -> true | _ -> false
