(* Follow-mode packet sources for the serving path.

   A source is a pull cursor the serve feeder drains between control
   ticks: [next] yields the next decodable packet, [Idle] when nothing
   is available right now (the daemon's cue to poll controls and
   sleep), or [Eof] when the source can never produce again.  All
   decoding goes through the typed {!Ingest} boundary, so malformed
   input is counted per reason in the supplied metrics, never raised. *)

module Pcap = Sanids_pcap.Pcap

type event = Packet of Packet.t | Idle | Eof

type t = {
  next : unit -> event;
  close : unit -> unit;
  describe : string;
}

let next t = t.next ()
let close t = t.close ()
let describe t = t.describe

let of_packets pkts =
  let q = ref pkts in
  {
    next =
      (fun () ->
        match !q with
        | [] -> Eof
        | p :: rest ->
            q := rest;
            Packet p);
    close = ignore;
    describe = "memory";
  }

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Records queue up framed but undecoded; {!Ingest.decode_record} runs
   (and its records/errors counters tick) only when the serving path
   actually pulls — so a drain that stops admission mid-queue leaves
   the undispatched records uncounted and the reconciliation identity
   [records = verdicts + errors + shed] exact. *)
let drain_queue ?metrics ?max_payload pending =
  let rec next () =
    match Queue.take_opt pending with
    | None -> None
    | Some (linktype, record) -> (
        match Ingest.decode_record ?metrics ?max_payload ~linktype record with
        | Ok p -> Some p
        | Error _ -> next ()  (* counted; keep going *))
  in
  next

let enqueue_file ?metrics pending data =
  match Ingest.decode_file ?metrics data with
  | Error _ -> ()  (* counted as pcap_framing *)
  | Ok file ->
      List.iter
        (fun r -> Queue.add (file.Pcap.linktype, r) pending)
        file.Pcap.records

let of_pcap_file ?metrics path =
  match read_whole path with
  | exception Sys_error m -> Error m
  | data -> (
      match Ingest.decode_file ?metrics data with
      | Error e -> Error (Printf.sprintf "%s: %s" path (Ingest.error_to_string e))
      | Ok file ->
          let pending = Queue.create () in
          List.iter
            (fun r -> Queue.add (file.Pcap.linktype, r) pending)
            file.Pcap.records;
          let next = drain_queue ?metrics pending in
          Ok
            {
              next =
                (fun () -> match next () with Some p -> Packet p | None -> Eof);
              close = ignore;
              describe = "file:" ^ path;
            })

(* Directory watch: every scan admits the not-yet-seen *.pcap files in
   name order.  Writers must land files atomically (write elsewhere,
   then rename into the spool) — the standard maildir-style contract; a
   file is read exactly once. *)
let directory ?metrics ?(ext = ".pcap") dir =
  let seen = Hashtbl.create 64 in
  let pending = Queue.create () in
  let scan () =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
        Array.sort compare names;
        Array.iter
          (fun name ->
            if Filename.check_suffix name ext && not (Hashtbl.mem seen name)
            then begin
              Hashtbl.add seen name ();
              match read_whole (Filename.concat dir name) with
              | exception Sys_error _ -> ()
              | data -> enqueue_file ?metrics pending data
            end)
          names
  in
  let next = drain_queue ?metrics pending in
  {
    next =
      (fun () ->
        if Queue.is_empty pending then scan ();
        match next () with Some p -> Packet p | None -> Idle);
    close = ignore;
    describe = "dir:" ^ dir;
  }

(* FIFO follow: a pcap stream framed incrementally as bytes arrive.
   The FIFO is opened read-write so the daemon itself holds a writer
   end — reads then return EAGAIN (Idle) instead of EOF whenever the
   external writers come and go, which is exactly the long-lived-sensor
   contract: the stream ends on drain, not on a writer hiccup. *)
type fifo_state = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable start : int;  (* first unparsed byte *)
  mutable len : int;  (* unparsed byte count *)
  mutable phase : [ `Header | `Records of Pcap.meta | `Dead ];
}

let fifo_chunk = 65536

let fifo_buffered st n = st.len >= n

let fifo_peek st n = Bytes.sub_string st.buf st.start n

let fifo_consume st n =
  st.start <- st.start + n;
  st.len <- st.len - n

let fifo_fill st =
  (* compact, grow if needed, then one non-blocking read *)
  if st.start > 0 then begin
    Bytes.blit st.buf st.start st.buf 0 st.len;
    st.start <- 0
  end;
  if Bytes.length st.buf - st.len < fifo_chunk then begin
    let bigger = Bytes.create (max (2 * Bytes.length st.buf) (st.len + fifo_chunk)) in
    Bytes.blit st.buf 0 bigger 0 st.len;
    st.buf <- bigger
  end;
  match Unix.read st.fd st.buf st.len fifo_chunk with
  | 0 -> `Closed
  | n ->
      st.len <- st.len + n;
      `Read
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      `Nothing

let count_framing metrics m =
  match metrics with
  | None -> ()
  | Some ms -> Ingest.count_error ms (Ingest.Pcap_framing m)

let fifo ?metrics ?max_payload path =
  match Unix.openfile path [ Unix.O_RDWR; Unix.O_NONBLOCK ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | fd ->
      let st =
        { fd; buf = Bytes.create fifo_chunk; start = 0; len = 0; phase = `Header }
      in
      let rec step () =
        match st.phase with
        | `Dead -> Eof
        | `Header ->
            if fifo_buffered st Pcap.global_header_len then begin
              match
                Pcap.decode_global_header (fifo_peek st Pcap.global_header_len)
              with
              | Ok meta ->
                  fifo_consume st Pcap.global_header_len;
                  st.phase <- `Records meta;
                  step ()
              | Error m ->
                  count_framing metrics m;
                  st.phase <- `Dead;
                  Eof
            end
            else pull ()
        | `Records meta ->
            if fifo_buffered st Pcap.record_header_len then begin
              match
                Pcap.decode_record_header meta
                  (fifo_peek st Pcap.record_header_len)
              with
              | Error m ->
                  count_framing metrics m;
                  st.phase <- `Dead;
                  Eof
              | Ok rh ->
                  if fifo_buffered st (Pcap.record_header_len + rh.Pcap.incl_len)
                  then begin
                    fifo_consume st Pcap.record_header_len;
                    let body = fifo_peek st rh.Pcap.incl_len in
                    fifo_consume st rh.Pcap.incl_len;
                    let record =
                      {
                        Pcap.ts = rh.Pcap.r_ts;
                        orig_len = rh.Pcap.r_orig_len;
                        data = Slice.of_string body;
                      }
                    in
                    match
                      Ingest.decode_record ?metrics ?max_payload
                        ~linktype:meta.Pcap.file_linktype record
                    with
                    | Ok p -> Packet p
                    | Error _ -> step ()  (* counted; keep framing *)
                  end
                  else pull ()
            end
            else pull ()
      and pull () =
        match fifo_fill st with
        | `Read -> step ()
        | `Nothing -> Idle
        | `Closed ->
            (* regular files reach here at end of data; a true FIFO
               never does (we hold a writer end) *)
            st.phase <- `Dead;
            Eof
      in
      Ok
        {
          next = step;
          close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
          describe = "fifo:" ^ path;
        }

let of_path ?metrics ?ext path =
  match Unix.stat path with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | st -> (
      match st.Unix.st_kind with
      | Unix.S_DIR -> Ok (directory ?metrics ?ext path)
      | Unix.S_FIFO -> fifo ?metrics path
      | Unix.S_REG -> of_pcap_file ?metrics path
      | Unix.S_CHR | Unix.S_BLK | Unix.S_LNK | Unix.S_SOCK ->
          Error (Printf.sprintf "%s: unsupported source file kind" path))
