(** Follow-mode packet sources — what the [sanids serve] feeder drains.

    A source is a non-blocking pull cursor: {!next} yields a decoded
    packet, [Idle] when nothing is available {e right now} (the
    daemon's cue to run control work and sleep a poll tick), or [Eof]
    when the source is permanently exhausted.  Decoding goes through
    the typed {!Ingest} boundary: malformed records are counted per
    reason against the supplied metrics and skipped — a source never
    raises on bad input.  Per-record decode (and its records/errors
    counters) runs only when the consumer pulls, so records a drain
    leaves undispatched are never counted and the reconciliation
    identity [records = packets + errors + shed] stays auditable end
    to end. *)

type event = Packet of Packet.t | Idle | Eof

type t

val next : t -> event
val close : t -> unit

val describe : t -> string
(** ["memory"], ["file:PATH"], ["dir:PATH"] or ["fifo:PATH"]. *)

val of_packets : Packet.t list -> t
(** In-memory source (tests and benches): yields each packet, then
    [Eof]. *)

val of_pcap_file :
  ?metrics:Ingest.metrics -> string -> (t, string) result
(** Whole capture file: decoded through {!Ingest.decode_file}, each
    parseable record yielded, then [Eof].  [Error] on unreadable files
    and captures whose global framing is rejected. *)

val directory : ?metrics:Ingest.metrics -> ?ext:string -> string -> t
(** Spool-directory watch: each {!next} with an empty queue re-scans
    the directory and admits not-yet-seen [ext] (default [".pcap"])
    files in name order, decoding each exactly once; [Idle] when
    nothing new has landed.  Writers must move files in atomically
    (write under another name or directory, then [rename]) — the
    maildir contract.  Never [Eof]: the spool outlives any one file. *)

val fifo :
  ?metrics:Ingest.metrics -> ?max_payload:int -> string ->
  (t, string) result
(** Streaming pcap over a named pipe, framed incrementally as bytes
    arrive ({!Sanids_pcap.Pcap.decode_global_header} /
    [decode_record_header]).  The FIFO is opened read-write, so the
    daemon holds its own writer end and external writers can come and
    go without the stream ending: [Idle] whenever the pipe is dry.
    A corrupt global or record header poisons the framing and yields
    [Eof] (counted as [pcap_framing]).  Also works on a regular file,
    where end of data is a real [Eof]. *)

val of_path :
  ?metrics:Ingest.metrics -> ?ext:string -> string -> (t, string) result
(** Dispatch on the path's file kind: directory → {!directory}, named
    pipe → {!fifo}, regular file → {!of_pcap_file}. *)
