(** Seeded fault injection for capture streams.

    A fault plan is a list of [(kind, probability)] pairs applied
    independently to each record (or packet) of a stream, driven by a
    {!Rng.t} so a given [(spec, seed)] pair replays the exact same
    corruption.  This is the adversary the resilient-ingest contract is
    tested against: after any plan, {!Ingest} decode entry points must
    still never raise.

    Spec syntax (also the CLI [--fault] argument):
    ["truncate=0.1,bitflip=0.05,dup=0.01,reorder=0.2,garbage=0.02"] —
    comma-separated [kind=probability], each probability in [\[0,1\]].
    Kinds: [truncate] (cut the record body at a random offset),
    [bitflip] (flip one random bit), [dup] (emit the record twice),
    [reorder] (swap with the following record), [garbage] (prepend 1–16
    random bytes). *)

type kind = Truncate | Bit_flip | Duplicate | Reorder | Garbage_prepend

val kind_to_string : kind -> string
(** ["truncate"], ["bitflip"], ["dup"], ["reorder"], ["garbage"]. *)

type t = (kind * float) list
(** A fault plan; order is application order within one record. *)

val of_string : string -> (t, string) result
(** Parse a spec.  [Error] names the offending token. *)

val of_string_exn : string -> t
(** @raise Invalid_argument as {!of_string}'s [Error]. *)

val to_string : t -> string
(** Canonical spec text ([of_string (to_string t) = Ok t]). *)

val mutate_record :
  Rng.t -> t -> Sanids_pcap.Pcap.record -> Sanids_pcap.Pcap.record list
(** Apply byte-level faults ([Truncate], [Bit_flip], [Garbage_prepend])
    and [Duplicate] to one record; [Reorder] is stream-level and ignored
    here.  Returns 0 ([Truncate] may leave an empty body — still one
    record), 1 or 2 records; [orig_len] is preserved so truncation looks
    like a snap-length cut. *)

val records : seed:int64 -> t -> Sanids_pcap.Pcap.record list -> Sanids_pcap.Pcap.record list
(** Mutate a whole capture's records, including [Reorder] swaps. *)

val file : seed:int64 -> t -> Sanids_pcap.Pcap.file -> Sanids_pcap.Pcap.file
(** {!records} applied inside a decoded capture. *)

val packets : seed:int64 -> t -> Packet.t Seq.t -> Packet.t Seq.t
(** Lazy stream transformer for parsed packets: each packet is
    re-encoded to bytes, mutated, and re-parsed; mutants that no longer
    parse are dropped (that is the point — they would have been typed
    ingest errors).  Single-pass: the result sequence memoizes nothing,
    so force it once. *)
