module Obs = Sanids_obs
module Pcap = Sanids_pcap.Pcap

type error =
  | Pcap_framing of string
  | Link_layer of string
  | Ipv4_header of string
  | Tcp_segment of string
  | Udp_datagram of string
  | Payload_bound of string

let reason = function
  | Pcap_framing _ -> "pcap_framing"
  | Link_layer _ -> "link_layer"
  | Ipv4_header _ -> "ipv4"
  | Tcp_segment _ -> "tcp"
  | Udp_datagram _ -> "udp"
  | Payload_bound _ -> "payload_bound"

let reasons = [ "pcap_framing"; "link_layer"; "ipv4"; "tcp"; "udp"; "payload_bound" ]

let detail = function
  | Pcap_framing m | Link_layer m | Ipv4_header m | Tcp_segment m
  | Udp_datagram m | Payload_bound m ->
      m

let error_to_string e = Printf.sprintf "%s: %s" (reason e) (detail e)
let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let records_total = "sanids_ingest_records_total"
let errors_total = "sanids_ingest_errors_total"

type metrics = {
  records : Obs.Registry.counter;
  errors : (string * Obs.Registry.counter) list;  (* reason -> series *)
}

let metrics reg =
  {
    records = Obs.Registry.counter reg ~help:"capture records offered to ingest" records_total;
    errors =
      (* pre-register every reason so exports always carry the whole
         family, zeros included — reconciliation needs no absent-series
         special case *)
      List.map
        (fun r ->
          ( r,
            Obs.Registry.counter reg ~help:"records rejected by ingest, by layer"
              ~labels:[ ("reason", r) ] errors_total ))
        reasons;
  }

let count_error m e = Obs.Registry.incr (List.assoc (reason e) m.errors)

let count_result m result =
  match m with
  | None -> ()
  | Some m -> (
      Obs.Registry.incr m.records;
      match result with Ok _ -> () | Error e -> count_error m e)

let default_max_payload = 0xFFFF

(* Typed Packet.parse: same decode chain, but the failing layer is a
   variant, not a string prefix.  The catch-alls exist to honour the "no
   exception crosses the boundary" contract even against decoder bugs —
   decoders are result-returning by convention, but this layer must not
   trust that under arbitrary input. *)
let parse_datagram ~ts bytes =
  match Ipv4.decode bytes with
  | exception e -> Error (Ipv4_header ("unexpected: " ^ Printexc.to_string e))
  | Error e -> Error (Ipv4_header e)
  | Ok ip ->
      let l4 =
        if ip.Ipv4.proto = Ipv4.proto_tcp then
          match Tcp.decode ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst ip.Ipv4.payload with
          | exception e -> Error (Tcp_segment ("unexpected: " ^ Printexc.to_string e))
          | Ok seg -> Ok (Packet.Tcp_seg seg)
          | Error e -> Error (Tcp_segment e)
        else if ip.Ipv4.proto = Ipv4.proto_udp then
          match Udp.decode ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst ip.Ipv4.payload with
          | exception e -> Error (Udp_datagram ("unexpected: " ^ Printexc.to_string e))
          | Ok d -> Ok (Packet.Udp_dgram d)
          | Error e -> Error (Udp_datagram e)
        else Ok (Packet.Raw (ip.Ipv4.proto, ip.Ipv4.payload))
      in
      Result.map (fun l4 -> { Packet.ts; ip; l4 }) l4

let frame_body ~linktype (r : Pcap.record) =
  if linktype = Pcap.linktype_ethernet then
    match Ethernet.decode r.Pcap.data with
    | exception e -> Error (Link_layer ("unexpected: " ^ Printexc.to_string e))
    | Ok e when e.Ethernet.ethertype = Ethernet.ethertype_ipv4 ->
        Ok e.Ethernet.payload
    | Ok e -> Error (Link_layer (Printf.sprintf "ethertype 0x%04x" e.Ethernet.ethertype))
    | Error m -> Error (Link_layer ("ethernet: " ^ m))
  else if linktype = Pcap.linktype_raw then Ok r.Pcap.data
  else Error (Link_layer (Printf.sprintf "unsupported linktype %d" linktype))

let decode_record ?metrics ?(max_payload = default_max_payload) ~linktype r =
  let result =
    if Slice.length r.Pcap.data > max_payload then
      Error
        (Payload_bound
           (Printf.sprintf "record of %d bytes exceeds bound %d"
              (Slice.length r.Pcap.data) max_payload))
    else
      match frame_body ~linktype r with
      | Error _ as e -> e
      | Ok datagram -> parse_datagram ~ts:r.Pcap.ts datagram
  in
  count_result metrics result;
  result

let decode_file ?metrics s =
  let result =
    match Pcap.decode s with
    | Ok f -> Ok f
    | Error m -> Error (Pcap_framing m)
    | exception e -> Error (Pcap_framing ("unexpected: " ^ Printexc.to_string e))
  in
  (match (metrics, result) with
  | Some m, Error e -> count_error m e
  | Some _, Ok _ | None, _ -> ());
  result

let to_packets ?metrics ?max_payload (f : Pcap.file) =
  List.map
    (decode_record ?metrics ?max_payload ~linktype:f.Pcap.linktype)
    f.Pcap.records

let ok_packets ?metrics ?max_payload f =
  List.filter_map Result.to_option (to_packets ?metrics ?max_payload f)
