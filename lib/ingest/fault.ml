module Pcap = Sanids_pcap.Pcap

type kind = Truncate | Bit_flip | Duplicate | Reorder | Garbage_prepend

let kind_to_string = function
  | Truncate -> "truncate"
  | Bit_flip -> "bitflip"
  | Duplicate -> "dup"
  | Reorder -> "reorder"
  | Garbage_prepend -> "garbage"

let kind_of_string = function
  | "truncate" -> Some Truncate
  | "bitflip" -> Some Bit_flip
  | "dup" -> Some Duplicate
  | "reorder" -> Some Reorder
  | "garbage" -> Some Garbage_prepend
  | _ -> None

type t = (kind * float) list

let of_string s =
  let parse_tok tok =
    match String.index_opt tok '=' with
    | None -> Error (Printf.sprintf "fault: %S is not kind=probability" tok)
    | Some i -> (
        let name = String.sub tok 0 i in
        let p = String.sub tok (i + 1) (String.length tok - i - 1) in
        match (kind_of_string name, float_of_string_opt p) with
        | None, _ ->
            Error
              (Printf.sprintf
                 "fault: unknown kind %S (want truncate|bitflip|dup|reorder|garbage)"
                 name)
        | _, None ->
            Error (Printf.sprintf "fault: %s wants a probability, got %S" name p)
        | Some k, Some p when p >= 0. && p <= 1. -> Ok (k, p)
        | Some _, Some p ->
            Error
              (Printf.sprintf "fault: %s wants a probability in [0,1], got %g"
                 name p))
  in
  let toks =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  if toks = [] then Error "fault: empty spec"
  else
    List.fold_left
      (fun acc tok ->
        match (acc, parse_tok tok) with
        | Error _, _ -> acc
        | Ok _, (Error _ as e) -> e
        | Ok l, Ok kp -> Ok (kp :: l))
      (Ok []) toks
    |> Result.map List.rev

let of_string_exn s =
  match of_string s with Ok t -> t | Error m -> invalid_arg m

let to_string t =
  String.concat ","
    (List.map (fun (k, p) -> Printf.sprintf "%s=%g" (kind_to_string k) p) t)

let mutate_bytes rng plan (data : Slice.t) =
  List.fold_left
    (fun data (kind, p) ->
      match kind with
      | Duplicate | Reorder -> data
      | Truncate ->
          (* a truncation is just a narrower view — no copy *)
          if Rng.chance rng p && Slice.length data > 0 then
            Slice.sub data ~off:0 ~len:(Rng.int rng (Slice.length data))
          else data
      | Bit_flip ->
          if Rng.chance rng p && Slice.length data > 0 then (
            let b = Bytes.of_string (Slice.to_string data) in
            let i = Rng.int rng (Bytes.length b) in
            let bit = 1 lsl Rng.int rng 8 in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
            Slice.of_string (Bytes.to_string b))
          else data
      | Garbage_prepend ->
          if Rng.chance rng p then
            Slice.of_string
              (Rng.bytes rng (Rng.int_in rng 1 16) ^ Slice.to_string data)
          else data)
    data plan

let duplicate_p plan =
  List.fold_left
    (fun acc (k, p) -> if k = Duplicate then acc +. p else acc)
    0. plan

let reorder_p plan =
  List.fold_left
    (fun acc (k, p) -> if k = Reorder then acc +. p else acc)
    0. plan

let mutate_record rng plan (r : Pcap.record) =
  let r = { r with Pcap.data = mutate_bytes rng plan r.Pcap.data } in
  if Rng.chance rng (duplicate_p plan) then [ r; r ] else [ r ]

(* Stream-level reorder: with probability p, hold the current element
   back one slot (swap with its successor).  Lazy and single-pass. *)
let reorder_seq rng p seq =
  let rec go held seq () =
    match Seq.uncons seq with
    | None -> ( match held with None -> Seq.Nil | Some h -> Seq.Cons (h, Seq.empty))
    | Some (x, rest) -> (
        match held with
        | Some h -> Seq.Cons (x, fun () -> Seq.Cons (h, go None rest))
        | None ->
            if Rng.chance rng p then go (Some x) rest ()
            else Seq.Cons (x, go None rest))
  in
  go None seq

let records ~seed plan rs =
  let rng = Rng.create seed in
  let mutated = List.concat_map (mutate_record rng plan) rs in
  List.of_seq (reorder_seq rng (reorder_p plan) (List.to_seq mutated))

let file ~seed plan (f : Pcap.file) =
  { f with Pcap.records = records ~seed plan f.Pcap.records }

let packets ~seed plan seq =
  let rng = Rng.create seed in
  let mutate_packet pkt =
    let bytes = mutate_bytes rng plan (Slice.of_string (Packet.to_bytes pkt)) in
    match Packet.parse_slice ~ts:pkt.Packet.ts bytes with
    | Ok p -> Some p
    | Error _ -> None
  in
  let mutated =
    Seq.concat_map
      (fun pkt ->
        match mutate_packet pkt with
        | None -> Seq.empty
        | Some p ->
            if Rng.chance rng (duplicate_p plan) then List.to_seq [ p; p ]
            else Seq.return p)
      seq
  in
  reorder_seq rng (reorder_p plan) mutated
