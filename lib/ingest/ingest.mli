(** Resilient capture ingest: the typed error boundary between raw,
    adversarial bytes and the analysis pipeline.

    The front end of the NIDS sits directly on attacker-controlled
    input, so a malformed header or truncated record must degrade into
    a counted, typed error — never an exception that can crash the
    sensor.  Every decode entry point here returns a [result]; {!error}
    names the layer that rejected the bytes, and when a {!metrics}
    handle is supplied each failure is counted per-reason in the obs
    registry as [sanids_ingest_errors_total{reason="..."}] (with
    attempts in [sanids_ingest_records_total]), which is what makes the
    stream-mode accounting identity auditable:

    [records_in = packets_out + Σ ingest_errors{reason}].

    Fault injection for exercising this boundary lives in {!Fault}. *)

type error =
  | Pcap_framing of string  (** bad magic, truncated record header/body *)
  | Link_layer of string  (** Ethernet decode failure, non-IPv4 ethertype,
                              unsupported linktype *)
  | Ipv4_header of string
  | Tcp_segment of string
  | Udp_datagram of string
  | Payload_bound of string  (** record larger than the admission bound *)

val reason : error -> string
(** The metric label value: ["pcap_framing"], ["link_layer"], ["ipv4"],
    ["tcp"], ["udp"], ["payload_bound"]. *)

val reasons : string list
(** Every {!reason} value, in declaration order — each is pre-registered
    by {!metrics} so exported snapshots always carry the full family. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val records_total : string
(** ["sanids_ingest_records_total"] — decode attempts. *)

val errors_total : string
(** ["sanids_ingest_errors_total"] — the labeled error family's base
    name; use with {!Sanids_obs.Snapshot.counter_sum}. *)

type metrics
(** Per-reason counters resolved against one registry. *)

val metrics : Sanids_obs.Registry.t -> metrics

val count_error : metrics -> error -> unit
(** Count one failure under its reason (records_total is {e not}
    bumped — use this only for failures observed outside the decode
    entry points below, which count themselves). *)

val default_max_payload : int
(** Admission bound on a record body: 65535 bytes (the IPv4 maximum) —
    anything longer cannot be one datagram and is shed before parsing. *)

val decode_file : ?metrics:metrics -> string -> (Sanids_pcap.Pcap.file, error) result
(** Typed {!Sanids_pcap.Pcap.decode}: global-header and record-framing
    faults come back as [Pcap_framing].  No exception escapes. *)

val decode_record :
  ?metrics:metrics ->
  ?max_payload:int ->
  linktype:int ->
  Sanids_pcap.Pcap.record ->
  (Packet.t, error) result
(** Decode one capture record into a parsed packet: admission bound,
    link layer (raw IPv4 or Ethernet per [linktype]), IPv4 header,
    then TCP/UDP.  Counts one record (plus the error, if any) when
    [metrics] is given.  No exception escapes. *)

val to_packets :
  ?metrics:metrics ->
  ?max_payload:int ->
  Sanids_pcap.Pcap.file ->
  (Packet.t, error) result list
(** {!decode_record} over every record of a capture. *)

val ok_packets :
  ?metrics:metrics -> ?max_payload:int -> Sanids_pcap.Pcap.file -> Packet.t list
(** {!to_packets} keeping the successes; failures are only visible in
    the metrics — the "keep running" deployment mode. *)
