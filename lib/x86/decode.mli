(** IA-32 linear-sweep disassembler.

    This is the project's substitute for the commercial disassembler (IDA
    Pro) used in the paper.  It never raises on arbitrary input: a byte
    with no supported decoding becomes [Insn.Bad b] of length 1 and the
    sweep continues, which is the right behaviour when sweeping encrypted
    payload bytes looking for a decoder stub. *)

type decoded = { off : int; len : int; insn : Insn.t }
(** One decoded instruction: offset and length in bytes within the swept
    region, and its AST. *)

val all : ?pos:int -> ?len:int -> ?max:int -> string -> decoded array
(** Sweep a region front to back.  Offsets are relative to [pos].
    [max] (default unlimited) caps the number of instructions decoded —
    the linear sweep's work bound on adversarially long regions. *)

val one : string -> Insn.t
(** Decode the instruction at the start of the buffer.
    @raise Invalid_argument on an empty buffer. *)

val at : string -> int -> decoded option
(** Decode a single instruction at a byte offset; [None] past the end. *)

val pp_listing : Format.formatter -> decoded array -> unit
(** Disassembly listing: offset, mnemonic per line. *)
