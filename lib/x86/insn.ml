type scale = S1 | S2 | S4 | S8

type mem = {
  base : Reg.t option;
  index : (Reg.t * scale) option;
  disp : int32;
}

type operand = Reg of Reg.t | Reg8 of Reg.r8 | Imm of int32 | Mem of mem
type size = S8bit | S32bit
type arith = Add | Or | Adc | Sbb | And | Sub | Xor | Cmp
type shift = Rol | Ror | Shl | Shr | Sar
type cc = O | NO | B | AE | E | NE | BE | A | S | NS | P | NP | L | GE | LE | G

type t =
  | Mov of size * operand * operand
  | Arith of arith * size * operand * operand
  | Test of size * operand * operand
  | Not of size * operand
  | Neg of size * operand
  | Inc of size * operand
  | Dec of size * operand
  | Shift of shift * size * operand * int
  | Lea of Reg.t * mem
  | Xchg of Reg.t * Reg.t
  | Push_reg of Reg.t
  | Pop_reg of Reg.t
  | Push_imm of int32
  | Pushad
  | Popad
  | Pushfd
  | Popfd
  | Jmp_rel of int
  | Jcc_rel of cc * int
  | Call_rel of int
  | Loop of int
  | Loope of int
  | Loopne of int
  | Jecxz of int
  | Ret
  | Int of int
  | Int3
  | Nop
  | Cld
  | Std
  | Lodsb
  | Lodsd
  | Stosb
  | Stosd
  | Movsb
  | Movsd
  | Scasb
  | Cmpsb
  | Cdq
  | Cwde
  | Clc
  | Stc
  | Cmc
  | Sahf
  | Lahf
  | Fwait
  | Rep_movsb
  | Rep_movsd
  | Rep_stosb
  | Rep_stosd
  | Movzx of Reg.t * operand
  | Movsx of Reg.t * operand
  | Mul of size * operand
  | Imul of size * operand
  | Div of size * operand
  | Idiv of size * operand
  | Imul2 of Reg.t * operand
  | Imul3 of Reg.t * operand * int32
  | Bad of int

let equal (a : t) (b : t) = a = b
let mem_abs disp = { base = None; index = None; disp }
let mem_base r = { base = Some r; index = None; disp = 0l }
let mem_base_disp r disp = { base = Some r; index = None; disp }

let cc_code = function
  | O -> 0
  | NO -> 1
  | B -> 2
  | AE -> 3
  | E -> 4
  | NE -> 5
  | BE -> 6
  | A -> 7
  | S -> 8
  | NS -> 9
  | P -> 10
  | NP -> 11
  | L -> 12
  | GE -> 13
  | LE -> 14
  | G -> 15

let cc_of_code = function
  | 0 -> O
  | 1 -> NO
  | 2 -> B
  | 3 -> AE
  | 4 -> E
  | 5 -> NE
  | 6 -> BE
  | 7 -> A
  | 8 -> S
  | 9 -> NS
  | 10 -> P
  | 11 -> NP
  | 12 -> L
  | 13 -> GE
  | 14 -> LE
  | 15 -> G
  | n -> invalid_arg (Printf.sprintf "Insn.cc_of_code: %d" n)

let cc_name = function
  | O -> "o"
  | NO -> "no"
  | B -> "b"
  | AE -> "ae"
  | E -> "e"
  | NE -> "ne"
  | BE -> "be"
  | A -> "a"
  | S -> "s"
  | NS -> "ns"
  | P -> "p"
  | NP -> "np"
  | L -> "l"
  | GE -> "ge"
  | LE -> "le"
  | G -> "g"

let arith_name = function
  | Add -> "add"
  | Or -> "or"
  | Adc -> "adc"
  | Sbb -> "sbb"
  | And -> "and"
  | Sub -> "sub"
  | Xor -> "xor"
  | Cmp -> "cmp"

let shift_name = function
  | Rol -> "rol"
  | Ror -> "ror"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"

let is_control_flow = function
  | Jmp_rel _ | Jcc_rel _ | Call_rel _ | Loop _ | Loope _ | Loopne _
  | Jecxz _ | Ret | Int _ | Int3 | Bad _ ->
      true
  | Mov _ | Arith _ | Test _ | Not _ | Neg _ | Inc _ | Dec _ | Shift _
  | Lea _ | Xchg _ | Push_reg _ | Pop_reg _ | Push_imm _ | Pushad | Popad
  | Pushfd | Popfd | Nop | Cld | Std | Lodsb | Lodsd | Stosb | Stosd
  | Movsb | Movsd | Scasb | Cmpsb | Cdq | Cwde | Clc | Stc | Cmc | Sahf
  | Lahf | Fwait | Rep_movsb | Rep_movsd | Rep_stosb | Rep_stosd | Movzx _
  | Movsx _ | Mul _ | Imul _ | Div _ | Idiv _ | Imul2 _ | Imul3 _ ->
      false

let branch_displacement = function
  | Jmp_rel d | Jcc_rel (_, d) | Call_rel d | Loop d | Loope d | Loopne d
  | Jecxz d ->
      Some d
  | Mov _ | Arith _ | Test _ | Not _ | Neg _ | Inc _ | Dec _ | Shift _
  | Lea _ | Xchg _ | Push_reg _ | Pop_reg _ | Push_imm _ | Pushad | Popad
  | Pushfd | Popfd | Ret | Int _ | Int3 | Nop | Cld | Std | Lodsb | Lodsd
  | Stosb | Stosd | Movsb | Movsd | Scasb | Cmpsb | Cdq | Cwde | Clc | Stc
  | Cmc | Sahf | Lahf | Fwait | Rep_movsb | Rep_movsd | Rep_stosb | Rep_stosd
  | Movzx _ | Movsx _ | Mul _ | Imul _ | Div _ | Idiv _ | Imul2 _ | Imul3 _
  | Bad _ ->
      None
