(** IA-32 instruction AST for the shellcode-relevant subset.

    The subset covers everything emitted by real polymorphic shellcode
    engines (ADMmutate, Clet) and classic exploit payloads: data movement,
    the eight ModRM arithmetic/logic operations, unary not/neg/inc/dec,
    shifts and rotates, stack traffic, all short branches, [loop]
    variants, [int], string operations, and x86 NOP-equivalents.

    Displacements of control-flow instructions are {e relative to the end
    of the instruction}, exactly as encoded. *)

type scale = S1 | S2 | S4 | S8

type mem = {
  base : Reg.t option;
  index : (Reg.t * scale) option;  (** index register may not be [ESP] *)
  disp : int32;
}
(** [base + index*scale + disp] effective address. *)

type operand =
  | Reg of Reg.t
  | Reg8 of Reg.r8
  | Imm of int32  (** immediate; byte-sized contexts use the low 8 bits *)
  | Mem of mem

type size = S8bit | S32bit

type arith = Add | Or | Adc | Sbb | And | Sub | Xor | Cmp
(** The ModRM arithmetic group, in /digit order (Add = /0 ... Cmp = /7). *)

type shift = Rol | Ror | Shl | Shr | Sar

type cc = O | NO | B | AE | E | NE | BE | A | S | NS | P | NP | L | GE | LE | G
(** Condition codes in hardware tttn order (O = 0 ... G = 0xF). *)

type t =
  | Mov of size * operand * operand  (** [Mov (sz, dst, src)] *)
  | Arith of arith * size * operand * operand  (** [dst op= src] *)
  | Test of size * operand * operand
  | Not of size * operand
  | Neg of size * operand
  | Inc of size * operand
  | Dec of size * operand
  | Shift of shift * size * operand * int  (** immediate count 1..31 *)
  | Lea of Reg.t * mem
  | Xchg of Reg.t * Reg.t
  | Push_reg of Reg.t
  | Pop_reg of Reg.t
  | Push_imm of int32
  | Pushad
  | Popad
  | Pushfd
  | Popfd
  | Jmp_rel of int
  | Jcc_rel of cc * int
  | Call_rel of int
  | Loop of int
  | Loope of int
  | Loopne of int
  | Jecxz of int
  | Ret
  | Int of int  (** interrupt vector, 0..255 *)
  | Int3
  | Nop
  | Cld
  | Std
  | Lodsb
  | Lodsd
  | Stosb
  | Stosd
  | Movsb
  | Movsd
  | Scasb
  | Cmpsb
  | Cdq
  | Cwde
  | Clc
  | Stc
  | Cmc
  | Sahf
  | Lahf
  | Fwait
  | Rep_movsb  (** F3 A4: copy ECX bytes *)
  | Rep_movsd
  | Rep_stosb  (** F3 AA: fill ECX bytes with AL *)
  | Rep_stosd
  | Movzx of Reg.t * operand  (** 0F B6: zero-extend a byte source *)
  | Movsx of Reg.t * operand  (** 0F BE: sign-extend a byte source *)
  | Mul of size * operand  (** F6/F7 /4: EDX:EAX = EAX * src (unsigned) *)
  | Imul of size * operand  (** F6/F7 /5 *)
  | Div of size * operand  (** F6/F7 /6: EAX, EDX = divmod (unsigned) *)
  | Idiv of size * operand  (** F6/F7 /7 *)
  | Imul2 of Reg.t * operand  (** 0F AF: r32 = r32 * r/m32 *)
  | Imul3 of Reg.t * operand * int32  (** 69/6B: r32 = r/m32 * imm *)
  | Bad of int  (** a byte the decoder could not interpret *)

val equal : t -> t -> bool

val mem_abs : int32 -> mem
(** Absolute address [disp] with no base or index. *)

val mem_base : Reg.t -> mem
(** [\[reg\]] with zero displacement. *)

val mem_base_disp : Reg.t -> int32 -> mem

val cc_code : cc -> int
val cc_of_code : int -> cc
val cc_name : cc -> string
val arith_name : arith -> string
val shift_name : shift -> string

val is_control_flow : t -> bool
(** Branches, calls, returns, interrupts and [Bad] — everything that ends
    straight-line execution or leaves the decoded region. *)

val branch_displacement : t -> int option
(** The relative displacement of a branch/call/loop instruction, [None]
    for everything else. *)
