module R = Byte_io.Reader

type decoded = { off : int; len : int; insn : Insn.t }

exception Unsupported
(* Internal: the bytes form no supported instruction; the caller rolls the
   cursor back and emits [Bad] for the first byte. *)

let sign8 b = if b >= 0x80 then b - 0x100 else b
let sign8_32 b = Int32.of_int (sign8 b)

(* Sign-extend a little-endian u32 read into a signed OCaml int (for
   relative displacements). *)
let rel32 r =
  let v = R.u32_le_int r in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let scale_of_bits = function
  | 0 -> Insn.S1
  | 1 -> Insn.S2
  | 2 -> Insn.S4
  | _ -> Insn.S8

let parse_mem r md rm : Insn.mem =
  let base, index =
    if rm = 4 then begin
      let sib = R.u8 r in
      let sc = sib lsr 6 in
      let idx = (sib lsr 3) land 7 in
      let base_bits = sib land 7 in
      let index = if idx = 4 then None else Some (Reg.of_code idx, scale_of_bits sc) in
      let base =
        if base_bits = 5 && md = 0 then None else Some (Reg.of_code base_bits)
      in
      (base, index)
    end
    else if rm = 5 && md = 0 then (None, None)
    else (Some (Reg.of_code rm), None)
  in
  let disp =
    match md with
    | 1 -> sign8_32 (R.u8 r)
    | 2 -> R.u32_le r
    | _ -> if base = None then R.u32_le r else 0l
  in
  { Insn.base; index; disp }

(* Returns (reg_field, rm_operand). *)
let parse_modrm r ~size =
  let b = R.u8 r in
  let md = b lsr 6 in
  let reg = (b lsr 3) land 7 in
  let rm = b land 7 in
  if md = 3 then
    let op =
      match size with
      | Insn.S32bit -> Insn.Reg (Reg.of_code rm)
      | Insn.S8bit -> Insn.Reg8 (Reg.r8_of_code rm)
    in
    (reg, op)
  else (reg, Insn.Mem (parse_mem r md rm))

let reg_op ~size code =
  match size with
  | Insn.S32bit -> Insn.Reg (Reg.of_code code)
  | Insn.S8bit -> Insn.Reg8 (Reg.r8_of_code code)

let arith_of_digit = function
  | 0 -> Insn.Add
  | 1 -> Insn.Or
  | 2 -> Insn.Adc
  | 3 -> Insn.Sbb
  | 4 -> Insn.And
  | 5 -> Insn.Sub
  | 6 -> Insn.Xor
  | _ -> Insn.Cmp

let shift_of_digit = function
  | 0 -> Insn.Rol
  | 1 -> Insn.Ror
  | 4 | 6 -> Insn.Shl
  | 5 -> Insn.Shr
  | 7 -> Insn.Sar
  | _ -> raise Unsupported

let imm8_32 r = Int32.of_int (R.u8 r)

let decode_one r : Insn.t =
  let op = R.u8 r in
  match op with
  | 0x0F -> (
      let op2 = R.u8 r in
      if op2 >= 0x80 && op2 <= 0x8F then
        Insn.Jcc_rel (Insn.cc_of_code (op2 - 0x80), rel32 r)
      else
        match op2 with
        | 0xB6 ->
            let reg, rm = parse_modrm r ~size:Insn.S8bit in
            Insn.Movzx (Reg.of_code reg, rm)
        | 0xBE ->
            let reg, rm = parse_modrm r ~size:Insn.S8bit in
            Insn.Movsx (Reg.of_code reg, rm)
        | 0xAF ->
            let reg, rm = parse_modrm r ~size:Insn.S32bit in
            Insn.Imul2 (Reg.of_code reg, rm)
        | _ -> raise Unsupported)
  | _ when op < 0x40 -> (
      let group = op lsr 3 in
      let form = op land 7 in
      let aop = arith_of_digit group in
      match form with
      | 0 ->
          let reg, rm = parse_modrm r ~size:Insn.S8bit in
          Insn.Arith (aop, Insn.S8bit, rm, reg_op ~size:Insn.S8bit reg)
      | 1 ->
          let reg, rm = parse_modrm r ~size:Insn.S32bit in
          Insn.Arith (aop, Insn.S32bit, rm, reg_op ~size:Insn.S32bit reg)
      | 2 ->
          let reg, rm = parse_modrm r ~size:Insn.S8bit in
          Insn.Arith (aop, Insn.S8bit, reg_op ~size:Insn.S8bit reg, rm)
      | 3 ->
          let reg, rm = parse_modrm r ~size:Insn.S32bit in
          Insn.Arith (aop, Insn.S32bit, reg_op ~size:Insn.S32bit reg, rm)
      | 4 -> Insn.Arith (aop, Insn.S8bit, Insn.Reg8 Reg.AL, Insn.Imm (imm8_32 r))
      | 5 -> Insn.Arith (aop, Insn.S32bit, Insn.Reg Reg.EAX, Insn.Imm (R.u32_le r))
      | _ -> raise Unsupported)
  | _ when op >= 0x40 && op <= 0x47 ->
      Insn.Inc (Insn.S32bit, Insn.Reg (Reg.of_code (op - 0x40)))
  | _ when op >= 0x48 && op <= 0x4F ->
      Insn.Dec (Insn.S32bit, Insn.Reg (Reg.of_code (op - 0x48)))
  | _ when op >= 0x50 && op <= 0x57 -> Insn.Push_reg (Reg.of_code (op - 0x50))
  | _ when op >= 0x58 && op <= 0x5F -> Insn.Pop_reg (Reg.of_code (op - 0x58))
  | 0x60 -> Insn.Pushad
  | 0x61 -> Insn.Popad
  | 0x68 -> Insn.Push_imm (R.u32_le r)
  | 0x69 ->
      let reg, rm = parse_modrm r ~size:Insn.S32bit in
      Insn.Imul3 (Reg.of_code reg, rm, R.u32_le r)
  | 0x6B ->
      let reg, rm = parse_modrm r ~size:Insn.S32bit in
      Insn.Imul3 (Reg.of_code reg, rm, sign8_32 (R.u8 r))
  | 0x6A -> Insn.Push_imm (sign8_32 (R.u8 r))
  | _ when op >= 0x70 && op <= 0x7F ->
      Insn.Jcc_rel (Insn.cc_of_code (op - 0x70), sign8 (R.u8 r))
  | 0x80 | 0x82 ->
      let digit, rm = parse_modrm r ~size:Insn.S8bit in
      Insn.Arith (arith_of_digit digit, Insn.S8bit, rm, Insn.Imm (imm8_32 r))
  | 0x81 ->
      let digit, rm = parse_modrm r ~size:Insn.S32bit in
      Insn.Arith (arith_of_digit digit, Insn.S32bit, rm, Insn.Imm (R.u32_le r))
  | 0x83 ->
      let digit, rm = parse_modrm r ~size:Insn.S32bit in
      Insn.Arith (arith_of_digit digit, Insn.S32bit, rm, Insn.Imm (sign8_32 (R.u8 r)))
  | 0x84 ->
      let reg, rm = parse_modrm r ~size:Insn.S8bit in
      Insn.Test (Insn.S8bit, rm, reg_op ~size:Insn.S8bit reg)
  | 0x85 ->
      let reg, rm = parse_modrm r ~size:Insn.S32bit in
      Insn.Test (Insn.S32bit, rm, reg_op ~size:Insn.S32bit reg)
  | 0x87 -> (
      let reg, rm = parse_modrm r ~size:Insn.S32bit in
      match rm with
      | Insn.Reg a -> Insn.Xchg (a, Reg.of_code reg)
      | Insn.Mem _ | Insn.Reg8 _ | Insn.Imm _ -> raise Unsupported)
  | 0x88 ->
      let reg, rm = parse_modrm r ~size:Insn.S8bit in
      Insn.Mov (Insn.S8bit, rm, reg_op ~size:Insn.S8bit reg)
  | 0x89 ->
      let reg, rm = parse_modrm r ~size:Insn.S32bit in
      Insn.Mov (Insn.S32bit, rm, reg_op ~size:Insn.S32bit reg)
  | 0x8A ->
      let reg, rm = parse_modrm r ~size:Insn.S8bit in
      Insn.Mov (Insn.S8bit, reg_op ~size:Insn.S8bit reg, rm)
  | 0x8B ->
      let reg, rm = parse_modrm r ~size:Insn.S32bit in
      Insn.Mov (Insn.S32bit, reg_op ~size:Insn.S32bit reg, rm)
  | 0x8D -> (
      let reg, rm = parse_modrm r ~size:Insn.S32bit in
      match rm with
      | Insn.Mem m -> Insn.Lea (Reg.of_code reg, m)
      | Insn.Reg _ | Insn.Reg8 _ | Insn.Imm _ -> raise Unsupported)
  | 0x90 -> Insn.Nop
  | _ when op >= 0x91 && op <= 0x97 -> Insn.Xchg (Reg.of_code (op - 0x90), Reg.EAX)
  | 0x98 -> Insn.Cwde
  | 0x99 -> Insn.Cdq
  | 0x9B -> Insn.Fwait
  | 0x9E -> Insn.Sahf
  | 0x9F -> Insn.Lahf
  | 0x9C -> Insn.Pushfd
  | 0x9D -> Insn.Popfd
  | 0xA4 -> Insn.Movsb
  | 0xA5 -> Insn.Movsd
  | 0xA6 -> Insn.Cmpsb
  | 0xA8 -> Insn.Test (Insn.S8bit, Insn.Reg8 Reg.AL, Insn.Imm (imm8_32 r))
  | 0xA9 -> Insn.Test (Insn.S32bit, Insn.Reg Reg.EAX, Insn.Imm (R.u32_le r))
  | 0xAA -> Insn.Stosb
  | 0xAB -> Insn.Stosd
  | 0xAC -> Insn.Lodsb
  | 0xAD -> Insn.Lodsd
  | 0xAE -> Insn.Scasb
  | _ when op >= 0xB0 && op <= 0xB7 ->
      Insn.Mov (Insn.S8bit, Insn.Reg8 (Reg.r8_of_code (op - 0xB0)), Insn.Imm (imm8_32 r))
  | _ when op >= 0xB8 && op <= 0xBF ->
      Insn.Mov (Insn.S32bit, Insn.Reg (Reg.of_code (op - 0xB8)), Insn.Imm (R.u32_le r))
  | 0xC0 | 0xC1 ->
      let size = if op = 0xC0 then Insn.S8bit else Insn.S32bit in
      let digit, rm = parse_modrm r ~size in
      let sop = shift_of_digit digit in
      (* count 0 is a legal encoding: a no-op that preserves flags *)
      let count = R.u8 r land 0x1F in
      Insn.Shift (sop, size, rm, count)
  | 0xC3 -> Insn.Ret
  | 0xC6 -> (
      let digit, rm = parse_modrm r ~size:Insn.S8bit in
      if digit <> 0 then raise Unsupported
      else
        match rm with
        | Insn.Mem _ -> Insn.Mov (Insn.S8bit, rm, Insn.Imm (imm8_32 r))
        | Insn.Reg8 _ -> Insn.Mov (Insn.S8bit, rm, Insn.Imm (imm8_32 r))
        | Insn.Reg _ | Insn.Imm _ -> raise Unsupported)
  | 0xC7 -> (
      let digit, rm = parse_modrm r ~size:Insn.S32bit in
      if digit <> 0 then raise Unsupported
      else
        match rm with
        | Insn.Mem _ | Insn.Reg _ -> Insn.Mov (Insn.S32bit, rm, Insn.Imm (R.u32_le r))
        | Insn.Reg8 _ | Insn.Imm _ -> raise Unsupported)
  | 0xCC -> Insn.Int3
  | 0xCD -> Insn.Int (R.u8 r)
  | 0xD0 | 0xD1 ->
      let size = if op = 0xD0 then Insn.S8bit else Insn.S32bit in
      let digit, rm = parse_modrm r ~size in
      Insn.Shift (shift_of_digit digit, size, rm, 1)
  | 0xE0 -> Insn.Loopne (sign8 (R.u8 r))
  | 0xE1 -> Insn.Loope (sign8 (R.u8 r))
  | 0xE2 -> Insn.Loop (sign8 (R.u8 r))
  | 0xE3 -> Insn.Jecxz (sign8 (R.u8 r))
  | 0xE8 -> Insn.Call_rel (rel32 r)
  | 0xE9 -> Insn.Jmp_rel (rel32 r)
  | 0xEB -> Insn.Jmp_rel (sign8 (R.u8 r))
  | 0xF6 | 0xF7 -> (
      let size = if op = 0xF6 then Insn.S8bit else Insn.S32bit in
      let digit, rm = parse_modrm r ~size in
      match digit with
      | 0 ->
          let imm =
            match size with
            | Insn.S8bit -> imm8_32 r
            | Insn.S32bit -> R.u32_le r
          in
          Insn.Test (size, rm, Insn.Imm imm)
      | 2 -> Insn.Not (size, rm)
      | 3 -> Insn.Neg (size, rm)
      | 4 -> Insn.Mul (size, rm)
      | 5 -> Insn.Imul (size, rm)
      | 6 -> Insn.Div (size, rm)
      | 7 -> Insn.Idiv (size, rm)
      | _ -> raise Unsupported)
  | 0xF3 -> (
      match R.u8 r with
      | 0xA4 -> Insn.Rep_movsb
      | 0xA5 -> Insn.Rep_movsd
      | 0xAA -> Insn.Rep_stosb
      | 0xAB -> Insn.Rep_stosd
      | _ -> raise Unsupported)
  | 0xF5 -> Insn.Cmc
  | 0xF8 -> Insn.Clc
  | 0xF9 -> Insn.Stc
  | 0xFC -> Insn.Cld
  | 0xFD -> Insn.Std
  | 0xFE -> (
      let digit, rm = parse_modrm r ~size:Insn.S8bit in
      match digit with
      | 0 -> Insn.Inc (Insn.S8bit, rm)
      | 1 -> Insn.Dec (Insn.S8bit, rm)
      | _ -> raise Unsupported)
  | 0xFF -> (
      let digit, rm = parse_modrm r ~size:Insn.S32bit in
      match digit with
      | 0 -> Insn.Inc (Insn.S32bit, rm)
      | 1 -> Insn.Dec (Insn.S32bit, rm)
      | _ -> raise Unsupported)
  | _ -> raise Unsupported

let step r =
  let start = R.pos r in
  match decode_one r with
  | insn -> { off = start; len = R.pos r - start; insn }
  | exception (Unsupported | Byte_io.Truncated _ | Invalid_argument _) ->
      R.seek r start;
      let b = R.u8 r in
      { off = start; len = 1; insn = Insn.Bad b }

let all ?(pos = 0) ?len ?(max = max_int) s =
  let r = R.of_string ~pos ?len s in
  let acc = ref [] in
  let count = ref 0 in
  while (not (R.is_empty r)) && !count < max do
    acc := step r :: !acc;
    incr count
  done;
  Array.of_list (List.rev !acc)

let one s =
  if String.length s = 0 then invalid_arg "Decode.one: empty buffer";
  (step (R.of_string s)).insn

let at s off =
  if off < 0 || off >= String.length s then None
  else
    let r = R.of_string ~pos:off s in
    let d = step r in
    Some { d with off }

let pp_listing ppf (ds : decoded array) =
  Array.iteri
    (fun i d ->
      if i > 0 then Format.fprintf ppf "@\n";
      Format.fprintf ppf "%04x: %a" d.off Pretty.pp d.insn)
    ds
