(** Two-pass mini assembler with symbolic labels.

    The polymorphic engines and exploit builders construct code as item
    lists; label-targeted branches are resolved to relative displacements
    here.  Label branches always use the rel32 forms (except the
    [loop]/[jecxz] family, which only exists as rel8), so sizing needs no
    relaxation pass. *)

type item =
  | I of Insn.t  (** a literal instruction *)
  | Label of string
  | Jmp of string
  | Jcc of Insn.cc * string
  | Call of string
  | Loop_to of string
  | Loope_to of string
  | Loopne_to of string
  | Jecxz_to of string
  | Raw of string  (** literal bytes spliced into the stream *)

exception Error of string
(** Undefined or duplicate label, or a [loop]-family branch out of rel8
    range. *)

val assemble : item list -> string
(** Resolve labels and emit machine code. *)

val assemble_insns : item list -> Insn.t list
(** The instruction stream with displacements resolved (labels dropped,
    [Raw] re-decoded), mainly for golden tests. *)

val size_of_item : item -> int
(** Encoded size contribution of one item. *)
