type item =
  | I of Insn.t
  | Label of string
  | Jmp of string
  | Jcc of Insn.cc * string
  | Call of string
  | Loop_to of string
  | Loope_to of string
  | Loopne_to of string
  | Jecxz_to of string
  | Raw of string

exception Error of string

let size_of_item = function
  | I i -> Encode.length i
  | Label _ -> 0
  | Jmp _ | Call _ -> 5
  | Jcc _ -> 6
  | Loop_to _ | Loope_to _ | Loopne_to _ | Jecxz_to _ -> 2
  | Raw s -> String.length s

let label_offsets items =
  let tbl = Hashtbl.create 16 in
  let _final =
    List.fold_left
      (fun off item ->
        (match item with
        | Label name ->
            if Hashtbl.mem tbl name then
              raise (Error (Printf.sprintf "duplicate label %S" name));
            Hashtbl.add tbl name off
        | I _ | Jmp _ | Jcc _ | Call _ | Loop_to _ | Loope_to _ | Loopne_to _
        | Jecxz_to _ | Raw _ ->
            ());
        off + size_of_item item)
      0 items
  in
  tbl

let resolve tbl name =
  match Hashtbl.find_opt tbl name with
  | Some off -> off
  | None -> raise (Error (Printf.sprintf "undefined label %S" name))

(* Displacements are relative to the end of the branch instruction. *)
let resolved_insns items =
  let tbl = label_offsets items in
  let rel off size name = resolve tbl name - (off + size) in
  let rel8 off size name what =
    let d = rel off size name in
    if d < -128 || d > 127 then
      raise (Error (Printf.sprintf "%s to %S out of rel8 range (%d)" what name d));
    d
  in
  let _, rev =
    List.fold_left
      (fun (off, acc) item ->
        let size = size_of_item item in
        let acc =
          match item with
          | I i -> `Insn i :: acc
          | Label _ -> acc
          | Jmp name -> `Insn32 (Insn.Jmp_rel (rel off size name)) :: acc
          | Jcc (cc, name) -> `Insn32 (Insn.Jcc_rel (cc, rel off size name)) :: acc
          | Call name -> `Insn (Insn.Call_rel (rel off size name)) :: acc
          | Loop_to name -> `Insn (Insn.Loop (rel8 off size name "loop")) :: acc
          | Loope_to name -> `Insn (Insn.Loope (rel8 off size name "loope")) :: acc
          | Loopne_to name ->
              `Insn (Insn.Loopne (rel8 off size name "loopne")) :: acc
          | Jecxz_to name -> `Insn (Insn.Jecxz (rel8 off size name "jecxz")) :: acc
          | Raw s -> `Raw s :: acc
        in
        (off + size, acc))
      (0, []) items
  in
  List.rev rev

(* Label branches are sized as rel32 by [size_of_item], so they must also be
   emitted as rel32 even when the displacement fits in a byte. *)
let emit_rel32 w (i : Insn.t) =
  let module W = Byte_io.Writer in
  match i with
  | Insn.Jmp_rel d ->
      W.u8 w 0xE9;
      W.u32_le_int w d
  | Insn.Jcc_rel (cc, d) ->
      W.u8 w 0x0F;
      W.u8 w (0x80 + Insn.cc_code cc);
      W.u32_le_int w d
  | _ -> Encode.insn w i

let assemble items =
  let w = Byte_io.Writer.create ~capacity:256 () in
  List.iter
    (function
      | `Insn i -> Encode.insn w i
      | `Insn32 i -> emit_rel32 w i
      | `Raw s -> Byte_io.Writer.string w s)
    (resolved_insns items);
  Byte_io.Writer.contents w

let assemble_insns items =
  let decoded = Decode.all (assemble items) in
  Array.to_list (Array.map (fun (d : Decode.decoded) -> d.Decode.insn) decoded)
