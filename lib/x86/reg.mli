(** IA-32 general-purpose registers. *)

type t = EAX | ECX | EDX | EBX | ESP | EBP | ESI | EDI
(** 32-bit registers, in hardware encoding order (EAX = 0, ..., EDI = 7). *)

type r8 = AL | CL | DL | BL | AH | CH | DH | BH
(** 8-bit registers, in hardware encoding order. *)

val code : t -> int
(** 3-bit hardware encoding. *)

val of_code : int -> t
(** Inverse of {!code}.  @raise Invalid_argument outside [\[0, 7\]]. *)

val code8 : r8 -> int
val r8_of_code : int -> r8

val name : t -> string
(** Lowercase mnemonic, e.g. ["eax"]. *)

val name8 : r8 -> string

val all : t array
(** All eight registers in encoding order. *)

val all8 : r8 array

val low8 : t -> r8 option
(** [low8 EAX = Some AL]; [None] for [ESP]/[EBP]/[ESI]/[EDI], which have no
    byte alias in 32-bit mode's low-register encoding we model. *)

val parent8 : r8 -> t
(** The 32-bit register whose low or high byte an 8-bit register aliases:
    [parent8 AL = EAX], [parent8 AH = EAX], etc. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp8 : Format.formatter -> r8 -> unit
