(** IA-32 binary encoder.

    Produces one canonical encoding per instruction; {!Decode} accepts
    strictly more encodings than {!Encode} produces, and the two are
    related by the round-trip law [Decode.one (insn_to_bytes i) = i]
    (property-tested in the test suite). *)

val insn : Byte_io.Writer.t -> Insn.t -> unit
(** Append the canonical encoding of one instruction.
    @raise Invalid_argument on operand combinations that have no IA-32
    encoding (memory-to-memory moves, byte-sized 32-bit registers,
    out-of-range short branch displacements, ...). *)

val insn_to_bytes : Insn.t -> string
(** Encoding of a single instruction as a fresh string. *)

val program : Insn.t list -> string
(** Concatenated encodings. *)

val length : Insn.t -> int
(** Encoded size in bytes, without materializing the output. *)
