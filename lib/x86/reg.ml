type t = EAX | ECX | EDX | EBX | ESP | EBP | ESI | EDI
type r8 = AL | CL | DL | BL | AH | CH | DH | BH

let code = function
  | EAX -> 0
  | ECX -> 1
  | EDX -> 2
  | EBX -> 3
  | ESP -> 4
  | EBP -> 5
  | ESI -> 6
  | EDI -> 7

let of_code = function
  | 0 -> EAX
  | 1 -> ECX
  | 2 -> EDX
  | 3 -> EBX
  | 4 -> ESP
  | 5 -> EBP
  | 6 -> ESI
  | 7 -> EDI
  | n -> invalid_arg (Printf.sprintf "Reg.of_code: %d" n)

let code8 = function
  | AL -> 0
  | CL -> 1
  | DL -> 2
  | BL -> 3
  | AH -> 4
  | CH -> 5
  | DH -> 6
  | BH -> 7

let r8_of_code = function
  | 0 -> AL
  | 1 -> CL
  | 2 -> DL
  | 3 -> BL
  | 4 -> AH
  | 5 -> CH
  | 6 -> DH
  | 7 -> BH
  | n -> invalid_arg (Printf.sprintf "Reg.r8_of_code: %d" n)

let name = function
  | EAX -> "eax"
  | ECX -> "ecx"
  | EDX -> "edx"
  | EBX -> "ebx"
  | ESP -> "esp"
  | EBP -> "ebp"
  | ESI -> "esi"
  | EDI -> "edi"

let name8 = function
  | AL -> "al"
  | CL -> "cl"
  | DL -> "dl"
  | BL -> "bl"
  | AH -> "ah"
  | CH -> "ch"
  | DH -> "dh"
  | BH -> "bh"

let all = [| EAX; ECX; EDX; EBX; ESP; EBP; ESI; EDI |]
let all8 = [| AL; CL; DL; BL; AH; CH; DH; BH |]

let low8 = function
  | EAX -> Some AL
  | ECX -> Some CL
  | EDX -> Some DL
  | EBX -> Some BL
  | ESP | EBP | ESI | EDI -> None

let parent8 = function
  | AL | AH -> EAX
  | CL | CH -> ECX
  | DL | DH -> EDX
  | BL | BH -> EBX

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let pp ppf r = Format.pp_print_string ppf (name r)
let pp8 ppf r = Format.pp_print_string ppf (name8 r)
