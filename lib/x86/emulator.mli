(** A concrete IA-32 interpreter for the modelled instruction subset.

    Used to {e validate} the rest of the system: the polymorphic engines'
    decoders are executed here to prove they really reconstruct the
    original payload (including through self-modifying code), and the
    test suite cross-checks the abstract {!Sanids_ir.Constprop} domain
    against concrete register values.

    The machine is a single flat arena: code is loaded at {!code_base},
    the stack grows down from the top of the arena.  Instructions are
    re-decoded from memory at each step, so self-modifying decoders
    work.  Unmapped access, undecodable bytes and exhausted step budgets
    stop execution with a descriptive outcome. *)

type t

type outcome =
  | Running
  | Syscall of int  (** hit [int n]; execution can be resumed *)
  | Halted of string  (** ret at top level, int3, fault, or bad opcode *)

val code_base : int32
(** Where the code image is loaded (0x08048000, the classic ELF text
    base). *)

val create : ?arena_size:int -> code:string -> unit -> t
(** Fresh machine with [code] loaded at {!code_base}, ESP at the top of
    the arena, all other registers zero. *)

val reg : t -> Reg.t -> int32
val set_reg : t -> Reg.t -> int32 -> unit

val eip : t -> int32
val set_eip : t -> int32 -> unit

val read_mem_opt : t -> int32 -> int -> string option
(** [read_mem_opt t addr n] is the [n] bytes at [addr], or [None] when
    any of them falls outside the arena. *)

val write_mem_opt : t -> int32 -> string -> unit option
(** Store a string into the arena; [None] (and no partial write) when
    any byte would fall outside it. *)

val read_mem : t -> int32 -> int -> string
[@@deprecated "raises on unmapped addresses; use read_mem_opt"]

val write_mem : t -> int32 -> string -> unit
[@@deprecated
  "raises mid-write on unmapped addresses; use write_mem_opt"]

val set_write_hook : t -> (int32 -> unit) option -> unit
(** Install (or clear) an observer called with the address of every
    byte the machine stores — guest stores, pushes and string writes
    all funnel through it.  Host-side seeding via {!write_mem_opt} is
    observed too; install the hook after seeding to watch only the
    guest.  The dynamic-confirmation stage uses this to detect
    self-modifying decoders (writes later executed). *)

val flag_zf : t -> bool
val flag_sf : t -> bool
val flag_cf : t -> bool

val flags_word : t -> int
(** The EFLAGS low word as the machine materializes it for [pushfd]:
    CF(1) · reserved(2, always set) · PF(4) · ZF(64) · SF(128) ·
    DF(0x400) · OF(0x800).  Unmodelled flags read as clear. *)

val set_flags_word : t -> int -> unit
(** Load the modelled flags from an EFLAGS word ([popfd]'s loader);
    unmodelled bits are ignored.  Lets test vectors seed flag state
    directly. *)

val step : t -> outcome
(** Execute one instruction. *)

val run : ?max_steps:int -> ?stop_at:int32 -> t -> outcome * int
(** Step until a non-[Running] outcome, until EIP equals [stop_at], or
    until [max_steps] (default 100_000).  Returns the final outcome
    ([Running] means stopped at [stop_at] or out of budget) and the
    number of steps taken. *)

val steps_taken : t -> int
