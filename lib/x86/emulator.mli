(** A concrete IA-32 interpreter for the modelled instruction subset.

    Used to {e validate} the rest of the system: the polymorphic engines'
    decoders are executed here to prove they really reconstruct the
    original payload (including through self-modifying code), and the
    test suite cross-checks the abstract {!Sanids_ir.Constprop} domain
    against concrete register values.

    The machine is a single flat arena: code is loaded at {!code_base},
    the stack grows down from the top of the arena.  Instructions are
    re-decoded from memory at each step, so self-modifying decoders
    work.  Unmapped access, undecodable bytes and exhausted step budgets
    stop execution with a descriptive outcome. *)

type t

type outcome =
  | Running
  | Syscall of int  (** hit [int n]; execution can be resumed *)
  | Halted of string  (** ret at top level, int3, fault, or bad opcode *)

val code_base : int32
(** Where the code image is loaded (0x08048000, the classic ELF text
    base). *)

val create : ?arena_size:int -> code:string -> unit -> t
(** Fresh machine with [code] loaded at {!code_base}, ESP at the top of
    the arena, all other registers zero. *)

val reg : t -> Reg.t -> int32
val set_reg : t -> Reg.t -> int32 -> unit

val eip : t -> int32
val set_eip : t -> int32 -> unit

val read_mem : t -> int32 -> int -> string
(** @raise Invalid_argument when outside the arena. *)

val write_mem : t -> int32 -> string -> unit

val flag_zf : t -> bool
val flag_sf : t -> bool
val flag_cf : t -> bool

val step : t -> outcome
(** Execute one instruction. *)

val run : ?max_steps:int -> ?stop_at:int32 -> t -> outcome * int
(** Step until a non-[Running] outcome, until EIP equals [stop_at], or
    until [max_steps] (default 100_000).  Returns the final outcome
    ([Running] means stopped at [stop_at] or out of budget) and the
    number of steps taken. *)

val steps_taken : t -> int
