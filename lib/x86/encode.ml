module W = Byte_io.Writer

let fits_i8_32 v = Int32.compare v (-128l) >= 0 && Int32.compare v 127l <= 0
let fits_i8 d = d >= -128 && d <= 127

let scale_bits = function
  | Insn.S1 -> 0
  | Insn.S2 -> 1
  | Insn.S4 -> 2
  | Insn.S8 -> 3

(* ModRM/SIB for a memory operand, with [reg_field] in bits 5:3.  The
   canonical choices: no SIB unless the base is ESP or an index is present;
   disp8 when the displacement fits and is needed; mod=00 zero-disp form
   except for EBP, which requires an explicit displacement. *)
let modrm_mem w reg_field (m : Insn.mem) =
  (match m.index with
  | Some (r, _) when Reg.equal r Reg.ESP ->
      invalid_arg "Encode: ESP cannot be an index register"
  | Some _ | None -> ());
  let emit_modrm md rm = W.u8 w ((md lsl 6) lor (reg_field lsl 3) lor rm) in
  let emit_sib scale idx base = W.u8 w ((scale lsl 6) lor (idx lsl 3) lor base) in
  match (m.base, m.index) with
  | None, None ->
      (* absolute: mod=00 rm=101 disp32 *)
      emit_modrm 0 5;
      W.u32_le w m.disp
  | None, Some (idx, sc) ->
      (* index without base: SIB with base=101 under mod=00 means disp32 *)
      emit_modrm 0 4;
      emit_sib (scale_bits sc) (Reg.code idx) 5;
      W.u32_le w m.disp
  | Some base, index ->
      let needs_sib = index <> None || Reg.equal base Reg.ESP in
      let md =
        if m.disp = 0l && not (Reg.equal base Reg.EBP) then 0
        else if fits_i8_32 m.disp then 1
        else 2
      in
      let rm = if needs_sib then 4 else Reg.code base in
      emit_modrm md rm;
      if needs_sib then begin
        match index with
        | None -> emit_sib 0 4 (Reg.code base) (* idx=100 means none *)
        | Some (idx, sc) -> emit_sib (scale_bits sc) (Reg.code idx) (Reg.code base)
      end;
      (match md with
      | 0 -> ()
      | 1 -> W.u8 w (Int32.to_int m.disp land 0xFF)
      | _ -> W.u32_le w m.disp)

let modrm_reg w reg_field rm_code = W.u8 w (0xC0 lor (reg_field lsl 3) lor rm_code)

(* rm operand dispatch: [reg_field] is the /digit or register field. *)
let modrm w reg_field (rm : Insn.operand) ~size =
  match (rm, size) with
  | Insn.Reg r, Insn.S32bit -> modrm_reg w reg_field (Reg.code r)
  | Insn.Reg8 r, Insn.S8bit -> modrm_reg w reg_field (Reg.code8 r)
  | Insn.Mem m, _ -> modrm_mem w reg_field m
  | Insn.Reg _, Insn.S8bit -> invalid_arg "Encode: 32-bit register in 8-bit context"
  | Insn.Reg8 _, Insn.S32bit -> invalid_arg "Encode: 8-bit register in 32-bit context"
  | Insn.Imm _, _ -> invalid_arg "Encode: immediate where r/m operand expected"

let check_imm8 v =
  if Int32.compare v 0l < 0 || Int32.compare v 255l > 0 then
    invalid_arg "Encode: 8-bit immediate out of range [0,255]"

let check_rel8 what d =
  if not (fits_i8 d) then
    invalid_arg (Printf.sprintf "Encode: %s displacement %d out of rel8 range" what d)

let shift_digit = function
  | Insn.Rol -> 0
  | Insn.Ror -> 1
  | Insn.Shl -> 4
  | Insn.Shr -> 5
  | Insn.Sar -> 7

let arith_digit (op : Insn.arith) =
  match op with
  | Insn.Add -> 0
  | Insn.Or -> 1
  | Insn.Adc -> 2
  | Insn.Sbb -> 3
  | Insn.And -> 4
  | Insn.Sub -> 5
  | Insn.Xor -> 6
  | Insn.Cmp -> 7

let insn w (i : Insn.t) =
  match i with
  | Insn.Mov (Insn.S32bit, Insn.Reg r, Insn.Imm v) ->
      W.u8 w (0xB8 + Reg.code r);
      W.u32_le w v
  | Insn.Mov (Insn.S8bit, Insn.Reg8 r, Insn.Imm v) ->
      check_imm8 v;
      W.u8 w (0xB0 + Reg.code8 r);
      W.u8 w (Int32.to_int v)
  | Insn.Mov (Insn.S32bit, (Insn.Mem _ as dst), Insn.Imm v) ->
      W.u8 w 0xC7;
      modrm w 0 dst ~size:Insn.S32bit;
      W.u32_le w v
  | Insn.Mov (Insn.S8bit, (Insn.Mem _ as dst), Insn.Imm v) ->
      check_imm8 v;
      W.u8 w 0xC6;
      modrm w 0 dst ~size:Insn.S8bit;
      W.u8 w (Int32.to_int v)
  | Insn.Mov (Insn.S32bit, (Insn.Mem _ as dst), Insn.Reg src) ->
      W.u8 w 0x89;
      modrm w (Reg.code src) dst ~size:Insn.S32bit
  | Insn.Mov (Insn.S32bit, Insn.Reg dst, Insn.Reg src) ->
      W.u8 w 0x89;
      modrm_reg w (Reg.code src) (Reg.code dst)
  | Insn.Mov (Insn.S32bit, Insn.Reg dst, (Insn.Mem _ as src)) ->
      W.u8 w 0x8B;
      modrm w (Reg.code dst) src ~size:Insn.S32bit
  | Insn.Mov (Insn.S8bit, (Insn.Mem _ as dst), Insn.Reg8 src) ->
      W.u8 w 0x88;
      modrm w (Reg.code8 src) dst ~size:Insn.S8bit
  | Insn.Mov (Insn.S8bit, Insn.Reg8 dst, Insn.Reg8 src) ->
      W.u8 w 0x88;
      modrm_reg w (Reg.code8 src) (Reg.code8 dst)
  | Insn.Mov (Insn.S8bit, Insn.Reg8 dst, (Insn.Mem _ as src)) ->
      W.u8 w 0x8A;
      modrm w (Reg.code8 dst) src ~size:Insn.S8bit
  | Insn.Mov _ -> invalid_arg "Encode: unsupported mov operand combination"
  | Insn.Arith (op, Insn.S32bit, dst, Insn.Imm v) ->
      if fits_i8_32 v then begin
        W.u8 w 0x83;
        modrm w (arith_digit op) dst ~size:Insn.S32bit;
        W.u8 w (Int32.to_int v land 0xFF)
      end
      else begin
        W.u8 w 0x81;
        modrm w (arith_digit op) dst ~size:Insn.S32bit;
        W.u32_le w v
      end
  | Insn.Arith (op, Insn.S8bit, dst, Insn.Imm v) ->
      check_imm8 v;
      W.u8 w 0x80;
      modrm w (arith_digit op) dst ~size:Insn.S8bit;
      W.u8 w (Int32.to_int v)
  | Insn.Arith (op, Insn.S32bit, (Insn.Mem _ as dst), Insn.Reg src) ->
      W.u8 w ((arith_digit op * 8) + 0x01);
      modrm w (Reg.code src) dst ~size:Insn.S32bit
  | Insn.Arith (op, Insn.S32bit, Insn.Reg dst, Insn.Reg src) ->
      W.u8 w ((arith_digit op * 8) + 0x01);
      modrm_reg w (Reg.code src) (Reg.code dst)
  | Insn.Arith (op, Insn.S32bit, Insn.Reg dst, (Insn.Mem _ as src)) ->
      W.u8 w ((arith_digit op * 8) + 0x03);
      modrm w (Reg.code dst) src ~size:Insn.S32bit
  | Insn.Arith (op, Insn.S8bit, (Insn.Mem _ as dst), Insn.Reg8 src) ->
      W.u8 w (arith_digit op * 8);
      modrm w (Reg.code8 src) dst ~size:Insn.S8bit
  | Insn.Arith (op, Insn.S8bit, Insn.Reg8 dst, Insn.Reg8 src) ->
      W.u8 w (arith_digit op * 8);
      modrm_reg w (Reg.code8 src) (Reg.code8 dst)
  | Insn.Arith (op, Insn.S8bit, Insn.Reg8 dst, (Insn.Mem _ as src)) ->
      W.u8 w ((arith_digit op * 8) + 0x02);
      modrm w (Reg.code8 dst) src ~size:Insn.S8bit
  | Insn.Arith _ -> invalid_arg "Encode: unsupported arith operand combination"
  | Insn.Test (Insn.S32bit, rm, Insn.Reg src) ->
      W.u8 w 0x85;
      modrm w (Reg.code src) rm ~size:Insn.S32bit
  | Insn.Test (Insn.S8bit, rm, Insn.Reg8 src) ->
      W.u8 w 0x84;
      modrm w (Reg.code8 src) rm ~size:Insn.S8bit
  | Insn.Test (Insn.S32bit, rm, Insn.Imm v) ->
      W.u8 w 0xF7;
      modrm w 0 rm ~size:Insn.S32bit;
      W.u32_le w v
  | Insn.Test (Insn.S8bit, rm, Insn.Imm v) ->
      check_imm8 v;
      W.u8 w 0xF6;
      modrm w 0 rm ~size:Insn.S8bit;
      W.u8 w (Int32.to_int v)
  | Insn.Test _ -> invalid_arg "Encode: unsupported test operand combination"
  | Insn.Not (sz, rm) ->
      W.u8 w (match sz with Insn.S8bit -> 0xF6 | Insn.S32bit -> 0xF7);
      modrm w 2 rm ~size:sz
  | Insn.Neg (sz, rm) ->
      W.u8 w (match sz with Insn.S8bit -> 0xF6 | Insn.S32bit -> 0xF7);
      modrm w 3 rm ~size:sz
  | Insn.Inc (Insn.S32bit, Insn.Reg r) -> W.u8 w (0x40 + Reg.code r)
  | Insn.Inc (Insn.S32bit, rm) ->
      W.u8 w 0xFF;
      modrm w 0 rm ~size:Insn.S32bit
  | Insn.Inc (Insn.S8bit, rm) ->
      W.u8 w 0xFE;
      modrm w 0 rm ~size:Insn.S8bit
  | Insn.Dec (Insn.S32bit, Insn.Reg r) -> W.u8 w (0x48 + Reg.code r)
  | Insn.Dec (Insn.S32bit, rm) ->
      W.u8 w 0xFF;
      modrm w 1 rm ~size:Insn.S32bit
  | Insn.Dec (Insn.S8bit, rm) ->
      W.u8 w 0xFE;
      modrm w 1 rm ~size:Insn.S8bit
  | Insn.Shift (op, sz, rm, count) ->
      if count < 1 || count > 31 then
        invalid_arg "Encode: shift count out of range [1,31]";
      if count = 1 then begin
        W.u8 w (match sz with Insn.S8bit -> 0xD0 | Insn.S32bit -> 0xD1);
        modrm w (shift_digit op) rm ~size:sz
      end
      else begin
        W.u8 w (match sz with Insn.S8bit -> 0xC0 | Insn.S32bit -> 0xC1);
        modrm w (shift_digit op) rm ~size:sz;
        W.u8 w count
      end
  | Insn.Lea (r, m) ->
      W.u8 w 0x8D;
      modrm_mem w (Reg.code r) m
  | Insn.Xchg (a, b) ->
      W.u8 w 0x87;
      modrm_reg w (Reg.code b) (Reg.code a)
  | Insn.Push_reg r -> W.u8 w (0x50 + Reg.code r)
  | Insn.Pop_reg r -> W.u8 w (0x58 + Reg.code r)
  | Insn.Push_imm v ->
      if fits_i8_32 v then begin
        W.u8 w 0x6A;
        W.u8 w (Int32.to_int v land 0xFF)
      end
      else begin
        W.u8 w 0x68;
        W.u32_le w v
      end
  | Insn.Pushad -> W.u8 w 0x60
  | Insn.Popad -> W.u8 w 0x61
  | Insn.Pushfd -> W.u8 w 0x9C
  | Insn.Popfd -> W.u8 w 0x9D
  | Insn.Jmp_rel d ->
      if fits_i8 d then begin
        W.u8 w 0xEB;
        W.u8 w (d land 0xFF)
      end
      else begin
        W.u8 w 0xE9;
        W.u32_le_int w d
      end
  | Insn.Jcc_rel (cc, d) ->
      if fits_i8 d then begin
        W.u8 w (0x70 + Insn.cc_code cc);
        W.u8 w (d land 0xFF)
      end
      else begin
        W.u8 w 0x0F;
        W.u8 w (0x80 + Insn.cc_code cc);
        W.u32_le_int w d
      end
  | Insn.Call_rel d ->
      W.u8 w 0xE8;
      W.u32_le_int w d
  | Insn.Loop d ->
      check_rel8 "loop" d;
      W.u8 w 0xE2;
      W.u8 w (d land 0xFF)
  | Insn.Loope d ->
      check_rel8 "loope" d;
      W.u8 w 0xE1;
      W.u8 w (d land 0xFF)
  | Insn.Loopne d ->
      check_rel8 "loopne" d;
      W.u8 w 0xE0;
      W.u8 w (d land 0xFF)
  | Insn.Jecxz d ->
      check_rel8 "jecxz" d;
      W.u8 w 0xE3;
      W.u8 w (d land 0xFF)
  | Insn.Ret -> W.u8 w 0xC3
  | Insn.Int n ->
      if n < 0 || n > 255 then invalid_arg "Encode: interrupt vector out of range";
      W.u8 w 0xCD;
      W.u8 w n
  | Insn.Int3 -> W.u8 w 0xCC
  | Insn.Nop -> W.u8 w 0x90
  | Insn.Cld -> W.u8 w 0xFC
  | Insn.Std -> W.u8 w 0xFD
  | Insn.Lodsb -> W.u8 w 0xAC
  | Insn.Lodsd -> W.u8 w 0xAD
  | Insn.Stosb -> W.u8 w 0xAA
  | Insn.Stosd -> W.u8 w 0xAB
  | Insn.Movsb -> W.u8 w 0xA4
  | Insn.Movsd -> W.u8 w 0xA5
  | Insn.Scasb -> W.u8 w 0xAE
  | Insn.Cmpsb -> W.u8 w 0xA6
  | Insn.Cdq -> W.u8 w 0x99
  | Insn.Cwde -> W.u8 w 0x98
  | Insn.Clc -> W.u8 w 0xF8
  | Insn.Stc -> W.u8 w 0xF9
  | Insn.Cmc -> W.u8 w 0xF5
  | Insn.Sahf -> W.u8 w 0x9E
  | Insn.Lahf -> W.u8 w 0x9F
  | Insn.Fwait -> W.u8 w 0x9B
  | Insn.Rep_movsb ->
      W.u8 w 0xF3;
      W.u8 w 0xA4
  | Insn.Rep_movsd ->
      W.u8 w 0xF3;
      W.u8 w 0xA5
  | Insn.Rep_stosb ->
      W.u8 w 0xF3;
      W.u8 w 0xAA
  | Insn.Rep_stosd ->
      W.u8 w 0xF3;
      W.u8 w 0xAB
  | Insn.Movzx (d, src) -> (
      match src with
      | (Insn.Reg8 _ | Insn.Mem _) as rm ->
          W.u8 w 0x0F;
          W.u8 w 0xB6;
          modrm w (Reg.code d) rm ~size:Insn.S8bit
      | Insn.Reg _ | Insn.Imm _ -> invalid_arg "Encode: movzx wants a byte source")
  | Insn.Movsx (d, src) -> (
      match src with
      | (Insn.Reg8 _ | Insn.Mem _) as rm ->
          W.u8 w 0x0F;
          W.u8 w 0xBE;
          modrm w (Reg.code d) rm ~size:Insn.S8bit
      | Insn.Reg _ | Insn.Imm _ -> invalid_arg "Encode: movsx wants a byte source")
  | Insn.Mul (sz, rm) ->
      W.u8 w (match sz with Insn.S8bit -> 0xF6 | Insn.S32bit -> 0xF7);
      modrm w 4 rm ~size:sz
  | Insn.Imul (sz, rm) ->
      W.u8 w (match sz with Insn.S8bit -> 0xF6 | Insn.S32bit -> 0xF7);
      modrm w 5 rm ~size:sz
  | Insn.Div (sz, rm) ->
      W.u8 w (match sz with Insn.S8bit -> 0xF6 | Insn.S32bit -> 0xF7);
      modrm w 6 rm ~size:sz
  | Insn.Idiv (sz, rm) ->
      W.u8 w (match sz with Insn.S8bit -> 0xF6 | Insn.S32bit -> 0xF7);
      modrm w 7 rm ~size:sz
  | Insn.Imul2 (d, rm) -> (
      match rm with
      | (Insn.Reg _ | Insn.Mem _) as rm ->
          W.u8 w 0x0F;
          W.u8 w 0xAF;
          modrm w (Reg.code d) rm ~size:Insn.S32bit
      | Insn.Reg8 _ | Insn.Imm _ -> invalid_arg "Encode: imul2 wants a dword source")
  | Insn.Imul3 (d, rm, v) -> (
      match rm with
      | (Insn.Reg _ | Insn.Mem _) as rm ->
          if fits_i8_32 v then begin
            W.u8 w 0x6B;
            modrm w (Reg.code d) rm ~size:Insn.S32bit;
            W.u8 w (Int32.to_int v land 0xFF)
          end
          else begin
            W.u8 w 0x69;
            modrm w (Reg.code d) rm ~size:Insn.S32bit;
            W.u32_le w v
          end
      | Insn.Reg8 _ | Insn.Imm _ -> invalid_arg "Encode: imul3 wants a dword source")
  | Insn.Bad b ->
      if b < 0 || b > 255 then invalid_arg "Encode: Bad byte out of range";
      W.u8 w b

let insn_to_bytes i =
  let w = W.create ~capacity:16 () in
  insn w i;
  W.contents w

let program insns =
  let w = W.create ~capacity:(16 * List.length insns) () in
  List.iter (insn w) insns;
  W.contents w

let length i = String.length (insn_to_bytes i)
