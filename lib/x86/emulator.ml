type t = {
  arena : Bytes.t;
  regs : int32 array;
  mutable eip : int32;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable ov : bool;  (* overflow flag; [of] is a keyword *)
  mutable pf : bool;
  mutable df : bool;
  mutable steps : int;
  mutable write_hook : (int32 -> unit) option;
}

type outcome = Running | Syscall of int | Halted of string

let code_base = 0x08048000l

let create ?(arena_size = 1 lsl 18) ~code () =
  if String.length code > arena_size - 4096 then
    invalid_arg "Emulator.create: code larger than arena";
  let arena = Bytes.make arena_size '\x00' in
  Bytes.blit_string code 0 arena 0 (String.length code);
  let t =
    {
      arena;
      regs = Array.make 8 0l;
      eip = code_base;
      zf = false;
      sf = false;
      cf = false;
      ov = false;
      pf = false;
      df = false;
      steps = 0;
      write_hook = None;
    }
  in
  t.regs.(Reg.code Reg.ESP) <- Int32.add code_base (Int32.of_int (arena_size - 16));
  t

let reg t r = t.regs.(Reg.code r)
let set_reg t r v = t.regs.(Reg.code r) <- v
let eip t = t.eip
let set_eip t v = t.eip <- v
let flag_zf t = t.zf
let flag_sf t = t.sf
let flag_cf t = t.cf
let steps_taken t = t.steps
let set_write_hook t hook = t.write_hook <- hook

exception Fault of string

let translate t addr =
  let off = Int32.to_int (Int32.sub addr code_base) in
  if off < 0 || off >= Bytes.length t.arena then
    raise (Fault (Printf.sprintf "unmapped address 0x%lx" addr))
  else off

let read8 t addr = Char.code (Bytes.get t.arena (translate t addr))

let write8 t addr v =
  Bytes.set t.arena (translate t addr) (Char.chr (v land 0xFF));
  match t.write_hook with None -> () | Some hook -> hook addr

let read32 t addr =
  let b i = Int32.of_int (read8 t (Int32.add addr (Int32.of_int i))) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let write32 t addr v =
  let b i shift = write8 t (Int32.add addr (Int32.of_int i)) (Int32.to_int (Int32.shift_right_logical v shift) land 0xFF) in
  b 0 0;
  b 1 8;
  b 2 16;
  b 3 24

let read_mem t addr n =
  String.init n (fun i -> Char.chr (read8 t (Int32.add addr (Int32.of_int i))))

let write_mem t addr s =
  String.iteri (fun i c -> write8 t (Int32.add addr (Int32.of_int i)) (Char.code c)) s

(* Non-raising variants (the never-raising-constructor convention): a
   range check up front instead of a per-byte fault, because the
   raising accessors' partial-write-then-raise behaviour is exactly
   what callers kept having to defend against. *)
let in_arena t addr n =
  let off = Int32.to_int (Int32.sub addr code_base) in
  n >= 0 && off >= 0 && off <= Bytes.length t.arena - n

let read_mem_opt t addr n =
  if in_arena t addr n then Some (read_mem t addr n) else None

let write_mem_opt t addr s =
  if in_arena t addr (String.length s) then begin
    write_mem t addr s;
    Some ()
  end
  else None

(* ------------------------------------------------------------------ *)
(* operand helpers *)

let scale_int = function Insn.S1 -> 1l | Insn.S2 -> 2l | Insn.S4 -> 4l | Insn.S8 -> 8l

let effective_address t (m : Insn.mem) =
  let base = match m.Insn.base with Some b -> reg t b | None -> 0l in
  let index =
    match m.Insn.index with
    | Some (r, sc) -> Int32.mul (reg t r) (scale_int sc)
    | None -> 0l
  in
  Int32.add (Int32.add base index) m.Insn.disp

let reg8_get t (r : Reg.r8) =
  let parent = reg t (Reg.parent8 r) in
  let shift = match r with Reg.AH | Reg.CH | Reg.DH | Reg.BH -> 8 | _ -> 0 in
  Int32.to_int (Int32.shift_right_logical parent shift) land 0xFF

let reg8_set t (r : Reg.r8) v =
  let p = Reg.parent8 r in
  let old = reg t p in
  let shift = match r with Reg.AH | Reg.CH | Reg.DH | Reg.BH -> 8 | _ -> 0 in
  let mask = Int32.lognot (Int32.shift_left 0xFFl shift) in
  set_reg t p
    (Int32.logor (Int32.logand old mask)
       (Int32.shift_left (Int32.of_int (v land 0xFF)) shift))

(* value of an operand at a given access width; 8-bit values live in the
   low 8 bits of the result *)
let read_operand t (sz : Insn.size) (o : Insn.operand) =
  match (o, sz) with
  | Insn.Reg r, Insn.S32bit -> reg t r
  | Insn.Reg8 r, Insn.S8bit -> Int32.of_int (reg8_get t r)
  | Insn.Imm v, Insn.S32bit -> v
  | Insn.Imm v, Insn.S8bit -> Int32.logand v 0xFFl
  | Insn.Mem m, Insn.S32bit -> read32 t (effective_address t m)
  | Insn.Mem m, Insn.S8bit -> Int32.of_int (read8 t (effective_address t m))
  | Insn.Reg _, Insn.S8bit | Insn.Reg8 _, Insn.S32bit ->
      raise (Fault "operand width mismatch")

let write_operand t (sz : Insn.size) (o : Insn.operand) v =
  match (o, sz) with
  | Insn.Reg r, Insn.S32bit -> set_reg t r v
  | Insn.Reg8 r, Insn.S8bit -> reg8_set t r (Int32.to_int v land 0xFF)
  | Insn.Mem m, Insn.S32bit -> write32 t (effective_address t m) v
  | Insn.Mem m, Insn.S8bit -> write8 t (effective_address t m) (Int32.to_int v land 0xFF)
  | Insn.Imm _, _ -> raise (Fault "write to immediate")
  | Insn.Reg _, Insn.S8bit | Insn.Reg8 _, Insn.S32bit ->
      raise (Fault "operand width mismatch")

(* ------------------------------------------------------------------ *)
(* flags *)

let parity8 v =
  let v = v land 0xFF in
  let rec bits acc v = if v = 0 then acc else bits (acc + (v land 1)) (v lsr 1) in
  bits 0 v mod 2 = 0

let width_bits = function Insn.S8bit -> 8 | Insn.S32bit -> 32

let truncate sz v =
  match sz with Insn.S8bit -> Int32.logand v 0xFFl | Insn.S32bit -> v

let sign_bit sz v =
  let bit = width_bits sz - 1 in
  Int32.logand (Int32.shift_right_logical v bit) 1l = 1l

let set_szp t sz result =
  let r = truncate sz result in
  t.zf <- Int32.equal r 0l;
  t.sf <- sign_bit sz r;
  t.pf <- parity8 (Int32.to_int r)

let do_add t sz a b carry_in =
  let c = if carry_in then 1l else 0l in
  let result = truncate sz (Int32.add (Int32.add a b) c) in
  let wide =
    Int64.add
      (Int64.add
         (Int64.logand (Int64.of_int32 (truncate sz a)) 0xFFFFFFFFL)
         (Int64.logand (Int64.of_int32 (truncate sz b)) 0xFFFFFFFFL))
      (Int64.of_int32 c)
  in
  let limit = match sz with Insn.S8bit -> 0xFFL | Insn.S32bit -> 0xFFFFFFFFL in
  t.cf <- Int64.unsigned_compare wide limit > 0;
  t.ov <- sign_bit sz a = sign_bit sz b && sign_bit sz result <> sign_bit sz a;
  set_szp t sz result;
  result

let do_sub t sz a b borrow_in =
  let c = if borrow_in then 1l else 0l in
  let result = truncate sz (Int32.sub (Int32.sub a b) c) in
  (* borrow out of the width, computed wide: the masked-compare form
     mishandles an all-ones subtrahend in a borrow chain at 8 bits *)
  let mask v =
    match sz with
    | Insn.S8bit -> Int64.of_int32 (Int32.logand v 0xFFl)
    | Insn.S32bit -> Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL
  in
  let wide = Int64.sub (mask a) (Int64.add (mask b) (Int64.of_int32 c)) in
  t.cf <- Int64.compare wide 0L < 0;
  t.ov <- sign_bit sz a <> sign_bit sz b && sign_bit sz result <> sign_bit sz a;
  set_szp t sz result;
  result

let do_logic t sz result =
  let r = truncate sz result in
  t.cf <- false;
  t.ov <- false;
  set_szp t sz r;
  r

let cond t (cc : Insn.cc) =
  match cc with
  | Insn.O -> t.ov
  | Insn.NO -> not t.ov
  | Insn.B -> t.cf
  | Insn.AE -> not t.cf
  | Insn.E -> t.zf
  | Insn.NE -> not t.zf
  | Insn.BE -> t.cf || t.zf
  | Insn.A -> not (t.cf || t.zf)
  | Insn.S -> t.sf
  | Insn.NS -> not t.sf
  | Insn.P -> t.pf
  | Insn.NP -> not t.pf
  | Insn.L -> t.sf <> t.ov
  | Insn.GE -> t.sf = t.ov
  | Insn.LE -> t.zf || t.sf <> t.ov
  | Insn.G -> (not t.zf) && t.sf = t.ov

let flags_word t =
  2 (* reserved bit 1 always reads as set *)
  lor (if t.cf then 1 else 0)
  lor (if t.pf then 4 else 0)
  lor (if t.zf then 64 else 0)
  lor (if t.sf then 128 else 0)
  lor (if t.df then 0x400 else 0)
  lor if t.ov then 0x800 else 0

let set_flags_word t w =
  t.cf <- w land 1 <> 0;
  t.pf <- w land 4 <> 0;
  t.zf <- w land 64 <> 0;
  t.sf <- w land 128 <> 0;
  t.df <- w land 0x400 <> 0;
  t.ov <- w land 0x800 <> 0

(* ------------------------------------------------------------------ *)
(* stack *)

let push t v =
  let esp = Int32.sub (reg t Reg.ESP) 4l in
  set_reg t Reg.ESP esp;
  write32 t esp v

let pop t =
  let esp = reg t Reg.ESP in
  let v = read32 t esp in
  set_reg t Reg.ESP (Int32.add esp 4l);
  v

(* ------------------------------------------------------------------ *)
(* string ops *)

let dir_delta t n = if t.df then Int32.of_int (-n) else Int32.of_int n

let lods t n =
  let esi = reg t Reg.ESI in
  let v = if n = 1 then Int32.of_int (read8 t esi) else read32 t esi in
  (if n = 1 then reg8_set t Reg.AL (Int32.to_int v) else set_reg t Reg.EAX v);
  set_reg t Reg.ESI (Int32.add esi (dir_delta t n))

let stos t n =
  let edi = reg t Reg.EDI in
  (if n = 1 then write8 t edi (reg8_get t Reg.AL) else write32 t edi (reg t Reg.EAX));
  set_reg t Reg.EDI (Int32.add edi (dir_delta t n))

let movs t n =
  let esi = reg t Reg.ESI and edi = reg t Reg.EDI in
  (if n = 1 then write8 t edi (read8 t esi) else write32 t edi (read32 t esi));
  set_reg t Reg.ESI (Int32.add esi (dir_delta t n));
  set_reg t Reg.EDI (Int32.add edi (dir_delta t n))

(* ------------------------------------------------------------------ *)
(* shifts and rotates *)

let do_shift t (op : Insn.shift) sz value count =
  let bits = width_bits sz in
  let n = count land 31 in
  if n = 0 then value
  else
    let v = truncate sz value in
    match op with
    | Insn.Shl ->
        let r = truncate sz (Int32.shift_left v n) in
        t.cf <-
          n <= bits
          && Int32.logand (Int32.shift_right_logical v (bits - n)) 1l = 1l;
        set_szp t sz r;
        r
    | Insn.Shr ->
        let r = Int32.shift_right_logical v n in
        t.cf <- n <= bits && Int32.logand (Int32.shift_right_logical v (n - 1)) 1l = 1l;
        set_szp t sz r;
        r
    | Insn.Sar ->
        let signed =
          match sz with
          | Insn.S32bit -> v
          | Insn.S8bit ->
              if sign_bit sz v then Int32.logor v 0xFFFFFF00l else v
        in
        let r = truncate sz (Int32.shift_right signed n) in
        (* last bit shifted out of the sign-extended value: an arithmetic
           shift keeps supplying sign bits past the operand width *)
        t.cf <- Int32.logand (Int32.shift_right signed (n - 1)) 1l = 1l;
        set_szp t sz r;
        r
    | Insn.Rol ->
        let n = n mod bits in
        if n = 0 then v
        else
          let r =
            truncate sz
              (Int32.logor (Int32.shift_left v n)
                 (Int32.shift_right_logical v (bits - n)))
          in
          t.cf <- Int32.logand r 1l = 1l;
          r
    | Insn.Ror ->
        let n = n mod bits in
        if n = 0 then v
        else
          let r =
            truncate sz
              (Int32.logor
                 (Int32.shift_right_logical v n)
                 (Int32.shift_left v (bits - n)))
          in
          t.cf <- sign_bit sz r;
          r

(* ------------------------------------------------------------------ *)

let fetch_window = 16

let step t : outcome =
  t.steps <- t.steps + 1;
  match
    let off = translate t t.eip in
    let avail = min fetch_window (Bytes.length t.arena - off) in
    let window = Bytes.sub_string t.arena off avail in
    match Decode.at window 0 with
    | None -> raise (Fault "fetch past end")
    | Some d -> d
  with
  | exception Fault m -> Halted m
  | d -> (
      let next = Int32.add t.eip (Int32.of_int d.Decode.len) in
      let jump_rel disp = Int32.add next (Int32.of_int disp) in
      try
        match d.Decode.insn with
        | Insn.Mov (sz, dst, src) ->
            write_operand t sz dst (read_operand t sz src);
            t.eip <- next;
            Running
        | Insn.Arith (op, sz, dst, src) ->
            let a = read_operand t sz dst in
            let b = read_operand t sz src in
            (match op with
            | Insn.Add -> write_operand t sz dst (do_add t sz a b false)
            | Insn.Adc -> write_operand t sz dst (do_add t sz a b t.cf)
            | Insn.Sub -> write_operand t sz dst (do_sub t sz a b false)
            | Insn.Sbb -> write_operand t sz dst (do_sub t sz a b t.cf)
            | Insn.Cmp -> ignore (do_sub t sz a b false)
            | Insn.And -> write_operand t sz dst (do_logic t sz (Int32.logand a b))
            | Insn.Or -> write_operand t sz dst (do_logic t sz (Int32.logor a b))
            | Insn.Xor -> write_operand t sz dst (do_logic t sz (Int32.logxor a b)));
            t.eip <- next;
            Running
        | Insn.Test (sz, a, b) ->
            ignore
              (do_logic t sz (Int32.logand (read_operand t sz a) (read_operand t sz b)));
            t.eip <- next;
            Running
        | Insn.Not (sz, o) ->
            write_operand t sz o (truncate sz (Int32.lognot (read_operand t sz o)));
            t.eip <- next;
            Running
        | Insn.Neg (sz, o) ->
            let v = read_operand t sz o in
            let r = do_sub t sz 0l v false in
            t.cf <- not (Int32.equal (truncate sz v) 0l);
            write_operand t sz o r;
            t.eip <- next;
            Running
        | Insn.Inc (sz, o) ->
            let saved_cf = t.cf in
            let r = do_add t sz (read_operand t sz o) 1l false in
            t.cf <- saved_cf;
            write_operand t sz o r;
            t.eip <- next;
            Running
        | Insn.Dec (sz, o) ->
            let saved_cf = t.cf in
            let r = do_sub t sz (read_operand t sz o) 1l false in
            t.cf <- saved_cf;
            write_operand t sz o r;
            t.eip <- next;
            Running
        | Insn.Shift (op, sz, o, n) ->
            write_operand t sz o (do_shift t op sz (read_operand t sz o) n);
            t.eip <- next;
            Running
        | Insn.Lea (r, m) ->
            set_reg t r (effective_address t m);
            t.eip <- next;
            Running
        | Insn.Xchg (a, b) ->
            let va = reg t a and vb = reg t b in
            set_reg t a vb;
            set_reg t b va;
            t.eip <- next;
            Running
        | Insn.Push_reg r ->
            push t (reg t r);
            t.eip <- next;
            Running
        | Insn.Pop_reg r ->
            set_reg t r (pop t);
            t.eip <- next;
            Running
        | Insn.Push_imm v ->
            push t v;
            t.eip <- next;
            Running
        | Insn.Pushad ->
            let esp0 = reg t Reg.ESP in
            List.iter
              (fun r -> push t (if Reg.equal r Reg.ESP then esp0 else reg t r))
              [ Reg.EAX; Reg.ECX; Reg.EDX; Reg.EBX; Reg.ESP; Reg.EBP; Reg.ESI; Reg.EDI ];
            t.eip <- next;
            Running
        | Insn.Popad ->
            List.iter
              (fun r ->
                let v = pop t in
                if not (Reg.equal r Reg.ESP) then set_reg t r v)
              [ Reg.EDI; Reg.ESI; Reg.EBP; Reg.ESP; Reg.EBX; Reg.EDX; Reg.ECX; Reg.EAX ];
            t.eip <- next;
            Running
        | Insn.Pushfd ->
            push t (Int32.of_int (flags_word t));
            t.eip <- next;
            Running
        | Insn.Popfd ->
            set_flags_word t (Int32.to_int (pop t) land 0xFFFF);
            t.eip <- next;
            Running
        | Insn.Jmp_rel disp ->
            t.eip <- jump_rel disp;
            Running
        | Insn.Jcc_rel (cc, disp) ->
            t.eip <- (if cond t cc then jump_rel disp else next);
            Running
        | Insn.Call_rel disp ->
            push t next;
            t.eip <- jump_rel disp;
            Running
        | Insn.Loop disp ->
            let ecx = Int32.sub (reg t Reg.ECX) 1l in
            set_reg t Reg.ECX ecx;
            t.eip <- (if not (Int32.equal ecx 0l) then jump_rel disp else next);
            Running
        | Insn.Loope disp ->
            let ecx = Int32.sub (reg t Reg.ECX) 1l in
            set_reg t Reg.ECX ecx;
            t.eip <-
              (if (not (Int32.equal ecx 0l)) && t.zf then jump_rel disp else next);
            Running
        | Insn.Loopne disp ->
            let ecx = Int32.sub (reg t Reg.ECX) 1l in
            set_reg t Reg.ECX ecx;
            t.eip <-
              (if (not (Int32.equal ecx 0l)) && not t.zf then jump_rel disp else next);
            Running
        | Insn.Jecxz disp ->
            t.eip <- (if Int32.equal (reg t Reg.ECX) 0l then jump_rel disp else next);
            Running
        | Insn.Ret ->
            t.eip <- pop t;
            Running
        | Insn.Int n ->
            t.eip <- next;
            Syscall n
        | Insn.Int3 -> Halted "int3"
        | Insn.Nop ->
            t.eip <- next;
            Running
        | Insn.Cld ->
            t.df <- false;
            t.eip <- next;
            Running
        | Insn.Std ->
            t.df <- true;
            t.eip <- next;
            Running
        | Insn.Lodsb ->
            lods t 1;
            t.eip <- next;
            Running
        | Insn.Lodsd ->
            lods t 4;
            t.eip <- next;
            Running
        | Insn.Stosb ->
            stos t 1;
            t.eip <- next;
            Running
        | Insn.Stosd ->
            stos t 4;
            t.eip <- next;
            Running
        | Insn.Movsb ->
            movs t 1;
            t.eip <- next;
            Running
        | Insn.Movsd ->
            movs t 4;
            t.eip <- next;
            Running
        | Insn.Scasb ->
            let edi = reg t Reg.EDI in
            ignore
              (do_sub t Insn.S8bit
                 (Int32.of_int (reg8_get t Reg.AL))
                 (Int32.of_int (read8 t edi))
                 false);
            set_reg t Reg.EDI (Int32.add edi (dir_delta t 1));
            t.eip <- next;
            Running
        | Insn.Cmpsb ->
            let esi = reg t Reg.ESI and edi = reg t Reg.EDI in
            ignore
              (do_sub t Insn.S8bit
                 (Int32.of_int (read8 t esi))
                 (Int32.of_int (read8 t edi))
                 false);
            set_reg t Reg.ESI (Int32.add esi (dir_delta t 1));
            set_reg t Reg.EDI (Int32.add edi (dir_delta t 1));
            t.eip <- next;
            Running
        | Insn.Cdq ->
            set_reg t Reg.EDX
              (if Int32.compare (reg t Reg.EAX) 0l < 0 then 0xFFFFFFFFl else 0l);
            t.eip <- next;
            Running
        | Insn.Cwde ->
            let ax = Int32.to_int (Int32.logand (reg t Reg.EAX) 0xFFFFl) in
            let v = if ax >= 0x8000 then ax - 0x10000 else ax in
            set_reg t Reg.EAX (Int32.of_int v);
            t.eip <- next;
            Running
        | Insn.Clc ->
            t.cf <- false;
            t.eip <- next;
            Running
        | Insn.Stc ->
            t.cf <- true;
            t.eip <- next;
            Running
        | Insn.Cmc ->
            t.cf <- not t.cf;
            t.eip <- next;
            Running
        | Insn.Sahf ->
            let ah = reg8_get t Reg.AH in
            t.cf <- ah land 1 <> 0;
            t.pf <- ah land 4 <> 0;
            t.zf <- ah land 64 <> 0;
            t.sf <- ah land 128 <> 0;
            t.eip <- next;
            Running
        | Insn.Lahf ->
            reg8_set t Reg.AH (flags_word t land 0xFF);
            t.eip <- next;
            Running
        | Insn.Fwait ->
            t.eip <- next;
            Running
        | Insn.Rep_movsb | Insn.Rep_movsd ->
            let width = match d.Decode.insn with Insn.Rep_movsd -> 4 | _ -> 1 in
            while not (Int32.equal (reg t Reg.ECX) 0l) do
              movs t width;
              set_reg t Reg.ECX (Int32.sub (reg t Reg.ECX) 1l)
            done;
            t.eip <- next;
            Running
        | Insn.Rep_stosb | Insn.Rep_stosd ->
            let width = match d.Decode.insn with Insn.Rep_stosd -> 4 | _ -> 1 in
            while not (Int32.equal (reg t Reg.ECX) 0l) do
              stos t width;
              set_reg t Reg.ECX (Int32.sub (reg t Reg.ECX) 1l)
            done;
            t.eip <- next;
            Running
        | Insn.Movzx (dst, src) ->
            set_reg t dst (Int32.logand (read_operand t Insn.S8bit src) 0xFFl);
            t.eip <- next;
            Running
        | Insn.Movsx (dst, src) ->
            let b = Int32.to_int (read_operand t Insn.S8bit src) land 0xFF in
            set_reg t dst (Int32.of_int (if b >= 0x80 then b - 0x100 else b));
            t.eip <- next;
            Running
        | Insn.Mul (sz, rm) | Insn.Imul (sz, rm) -> (
            let signed = match d.Decode.insn with Insn.Imul _ -> true | _ -> false in
            (* CF = OF = the high half is significant (non-zero for MUL,
               not a sign extension of the low half for IMUL) *)
            match sz with
            | Insn.S8bit ->
                let a = reg8_get t Reg.AL in
                let b = Int32.to_int (read_operand t Insn.S8bit rm) land 0xFF in
                let sx v = if signed && v >= 0x80 then v - 0x100 else v in
                let full = sx a * sx b in
                (* AX = product *)
                set_reg t Reg.EAX
                  (Int32.logor
                     (Int32.logand (reg t Reg.EAX) 0xFFFF0000l)
                     (Int32.of_int (full land 0xFFFF)));
                let significant =
                  if signed then full < -0x80 || full > 0x7F else full > 0xFF
                in
                t.cf <- significant;
                t.ov <- significant;
                t.eip <- next;
                Running
            | Insn.S32bit ->
                let wide v =
                  if signed then Int64.of_int32 v
                  else Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL
                in
                let product =
                  Int64.mul (wide (reg t Reg.EAX)) (wide (read_operand t Insn.S32bit rm))
                in
                set_reg t Reg.EAX (Int64.to_int32 product);
                set_reg t Reg.EDX (Int64.to_int32 (Int64.shift_right_logical product 32));
                let significant =
                  if signed then
                    not (Int64.equal product (Int64.of_int32 (Int64.to_int32 product)))
                  else not (Int64.equal (Int64.shift_right_logical product 32) 0L)
                in
                t.cf <- significant;
                t.ov <- significant;
                t.eip <- next;
                Running)
        | Insn.Div (sz, rm) | Insn.Idiv (sz, rm) -> (
            let signed = match d.Decode.insn with Insn.Idiv _ -> true | _ -> false in
            let divisor =
              match sz with
              | Insn.S8bit -> Int64.of_int (Int32.to_int (read_operand t Insn.S8bit rm) land 0xFF)
              | Insn.S32bit ->
                  if signed then Int64.of_int32 (read_operand t Insn.S32bit rm)
                  else Int64.logand (Int64.of_int32 (read_operand t Insn.S32bit rm)) 0xFFFFFFFFL
            in
            let divisor =
              if signed && sz = Insn.S8bit then
                let v = Int64.to_int divisor in
                Int64.of_int (if v >= 0x80 then v - 0x100 else v)
              else divisor
            in
            if Int64.equal divisor 0L then Halted "divide error"
            else
              match sz with
              | Insn.S8bit ->
                  let ax = Int32.to_int (Int32.logand (reg t Reg.EAX) 0xFFFFl) in
                  let ax = if signed && ax >= 0x8000 then ax - 0x10000 else ax in
                  let q = ax / Int64.to_int divisor and r = ax mod Int64.to_int divisor in
                  reg8_set t Reg.AL q;
                  reg8_set t Reg.AH r;
                  t.eip <- next;
                  Running
              | Insn.S32bit ->
                  let dividend =
                    Int64.logor
                      (Int64.shift_left
                         (Int64.logand (Int64.of_int32 (reg t Reg.EDX)) 0xFFFFFFFFL)
                         32)
                      (Int64.logand (Int64.of_int32 (reg t Reg.EAX)) 0xFFFFFFFFL)
                  in
                  let q, r =
                    if signed then (Int64.div dividend divisor, Int64.rem dividend divisor)
                    else (Int64.unsigned_div dividend divisor, Int64.unsigned_rem dividend divisor)
                  in
                  set_reg t Reg.EAX (Int64.to_int32 q);
                  set_reg t Reg.EDX (Int64.to_int32 r);
                  t.eip <- next;
                  Running)
        | Insn.Imul2 (dst, rm) ->
            let wide =
              Int64.mul (Int64.of_int32 (reg t dst))
                (Int64.of_int32 (read_operand t Insn.S32bit rm))
            in
            let r = Int64.to_int32 wide in
            set_reg t dst r;
            let significant = not (Int64.equal wide (Int64.of_int32 r)) in
            t.cf <- significant;
            t.ov <- significant;
            t.eip <- next;
            Running
        | Insn.Imul3 (dst, rm, v) ->
            let wide =
              Int64.mul (Int64.of_int32 (read_operand t Insn.S32bit rm)) (Int64.of_int32 v)
            in
            let r = Int64.to_int32 wide in
            set_reg t dst r;
            let significant = not (Int64.equal wide (Int64.of_int32 r)) in
            t.cf <- significant;
            t.ov <- significant;
            t.eip <- next;
            Running
        | Insn.Bad b -> Halted (Printf.sprintf "undecodable byte 0x%02x" b)
      with Fault m -> Halted m)

let run ?(max_steps = 100_000) ?stop_at t =
  let rec go n =
    if n >= max_steps then (Running, n)
    else
      match stop_at with
      | Some a when Int32.equal t.eip a -> (Running, n)
      | Some _ | None -> (
          match step t with
          | Running -> go (n + 1)
          | (Syscall _ | Halted _) as o -> (o, n + 1))
  in
  go 0
