let pp_hex32 ppf v =
  if Int32.compare v 0l >= 0 && Int32.compare v 9l <= 0 then
    Format.fprintf ppf "%ld" v
  else Format.fprintf ppf "0x%lx" (Int32.logand v 0xFFFFFFFFl)

let scale_int = function Insn.S1 -> 1 | Insn.S2 -> 2 | Insn.S4 -> 4 | Insn.S8 -> 8

let pp_mem ppf (m : Insn.mem) =
  Format.fprintf ppf "[";
  let printed = ref false in
  (match m.base with
  | Some b ->
      Format.fprintf ppf "%a" Reg.pp b;
      printed := true
  | None -> ());
  (match m.index with
  | Some (idx, sc) ->
      if !printed then Format.fprintf ppf "+";
      Format.fprintf ppf "%a" Reg.pp idx;
      if scale_int sc <> 1 then Format.fprintf ppf "*%d" (scale_int sc);
      printed := true
  | None -> ());
  (if m.disp <> 0l || not !printed then
     if not !printed then Format.fprintf ppf "%a" pp_hex32 m.disp
     else if Int32.compare m.disp 0l < 0 then
       Format.fprintf ppf "-%a" pp_hex32 (Int32.neg m.disp)
     else Format.fprintf ppf "+%a" pp_hex32 m.disp);
  Format.fprintf ppf "]"

let size_prefix (sz : Insn.size) =
  match sz with Insn.S8bit -> "byte ptr " | Insn.S32bit -> "dword ptr "

let pp_operand ppf (o : Insn.operand) =
  match o with
  | Insn.Reg r -> Reg.pp ppf r
  | Insn.Reg8 r -> Reg.pp8 ppf r
  | Insn.Imm v -> pp_hex32 ppf v
  | Insn.Mem m -> pp_mem ppf m

(* Memory operands need an explicit size when no register operand pins it. *)
let pp_sized sz ppf (o : Insn.operand) =
  match o with
  | Insn.Mem _ -> Format.fprintf ppf "%s%a" (size_prefix sz) pp_operand o
  | Insn.Reg _ | Insn.Reg8 _ | Insn.Imm _ -> pp_operand ppf o

let pp_rel ppf d =
  if d >= 0 then Format.fprintf ppf "$+%d" d else Format.fprintf ppf "$%d" d

let pp ppf (i : Insn.t) =
  match i with
  | Insn.Mov (sz, dst, src) ->
      Format.fprintf ppf "mov %a, %a" (pp_sized sz) dst (pp_sized sz) src
  | Insn.Arith (op, sz, dst, src) ->
      Format.fprintf ppf "%s %a, %a" (Insn.arith_name op) (pp_sized sz) dst
        (pp_sized sz) src
  | Insn.Test (sz, a, b) ->
      Format.fprintf ppf "test %a, %a" (pp_sized sz) a (pp_sized sz) b
  | Insn.Not (sz, o) -> Format.fprintf ppf "not %a" (pp_sized sz) o
  | Insn.Neg (sz, o) -> Format.fprintf ppf "neg %a" (pp_sized sz) o
  | Insn.Inc (sz, o) -> Format.fprintf ppf "inc %a" (pp_sized sz) o
  | Insn.Dec (sz, o) -> Format.fprintf ppf "dec %a" (pp_sized sz) o
  | Insn.Shift (op, sz, o, n) ->
      Format.fprintf ppf "%s %a, %d" (Insn.shift_name op) (pp_sized sz) o n
  | Insn.Lea (r, m) -> Format.fprintf ppf "lea %a, %a" Reg.pp r pp_mem m
  | Insn.Xchg (a, b) -> Format.fprintf ppf "xchg %a, %a" Reg.pp a Reg.pp b
  | Insn.Push_reg r -> Format.fprintf ppf "push %a" Reg.pp r
  | Insn.Pop_reg r -> Format.fprintf ppf "pop %a" Reg.pp r
  | Insn.Push_imm v -> Format.fprintf ppf "push %a" pp_hex32 v
  | Insn.Pushad -> Format.fprintf ppf "pushad"
  | Insn.Popad -> Format.fprintf ppf "popad"
  | Insn.Pushfd -> Format.fprintf ppf "pushfd"
  | Insn.Popfd -> Format.fprintf ppf "popfd"
  | Insn.Jmp_rel d -> Format.fprintf ppf "jmp %a" pp_rel d
  | Insn.Jcc_rel (cc, d) -> Format.fprintf ppf "j%s %a" (Insn.cc_name cc) pp_rel d
  | Insn.Call_rel d -> Format.fprintf ppf "call %a" pp_rel d
  | Insn.Loop d -> Format.fprintf ppf "loop %a" pp_rel d
  | Insn.Loope d -> Format.fprintf ppf "loope %a" pp_rel d
  | Insn.Loopne d -> Format.fprintf ppf "loopne %a" pp_rel d
  | Insn.Jecxz d -> Format.fprintf ppf "jecxz %a" pp_rel d
  | Insn.Ret -> Format.fprintf ppf "ret"
  | Insn.Int n -> Format.fprintf ppf "int 0x%x" n
  | Insn.Int3 -> Format.fprintf ppf "int3"
  | Insn.Nop -> Format.fprintf ppf "nop"
  | Insn.Cld -> Format.fprintf ppf "cld"
  | Insn.Std -> Format.fprintf ppf "std"
  | Insn.Lodsb -> Format.fprintf ppf "lodsb"
  | Insn.Lodsd -> Format.fprintf ppf "lodsd"
  | Insn.Stosb -> Format.fprintf ppf "stosb"
  | Insn.Stosd -> Format.fprintf ppf "stosd"
  | Insn.Movsb -> Format.fprintf ppf "movsb"
  | Insn.Movsd -> Format.fprintf ppf "movsd"
  | Insn.Scasb -> Format.fprintf ppf "scasb"
  | Insn.Cmpsb -> Format.fprintf ppf "cmpsb"
  | Insn.Cdq -> Format.fprintf ppf "cdq"
  | Insn.Cwde -> Format.fprintf ppf "cwde"
  | Insn.Clc -> Format.fprintf ppf "clc"
  | Insn.Stc -> Format.fprintf ppf "stc"
  | Insn.Cmc -> Format.fprintf ppf "cmc"
  | Insn.Sahf -> Format.fprintf ppf "sahf"
  | Insn.Lahf -> Format.fprintf ppf "lahf"
  | Insn.Fwait -> Format.fprintf ppf "fwait"
  | Insn.Rep_movsb -> Format.fprintf ppf "rep movsb"
  | Insn.Rep_movsd -> Format.fprintf ppf "rep movsd"
  | Insn.Rep_stosb -> Format.fprintf ppf "rep stosb"
  | Insn.Rep_stosd -> Format.fprintf ppf "rep stosd"
  | Insn.Movzx (d, src) ->
      Format.fprintf ppf "movzx %a, %a" Reg.pp d (pp_sized Insn.S8bit) src
  | Insn.Movsx (d, src) ->
      Format.fprintf ppf "movsx %a, %a" Reg.pp d (pp_sized Insn.S8bit) src
  | Insn.Mul (sz, o) -> Format.fprintf ppf "mul %a" (pp_sized sz) o
  | Insn.Imul (sz, o) -> Format.fprintf ppf "imul %a" (pp_sized sz) o
  | Insn.Div (sz, o) -> Format.fprintf ppf "div %a" (pp_sized sz) o
  | Insn.Idiv (sz, o) -> Format.fprintf ppf "idiv %a" (pp_sized sz) o
  | Insn.Imul2 (d, o) ->
      Format.fprintf ppf "imul %a, %a" Reg.pp d (pp_sized Insn.S32bit) o
  | Insn.Imul3 (d, o, v) ->
      Format.fprintf ppf "imul %a, %a, %a" Reg.pp d (pp_sized Insn.S32bit) o pp_hex32 v
  | Insn.Bad b -> Format.fprintf ppf "(bad) 0x%02x" b

let to_string i = Format.asprintf "%a" pp i

let program_to_string insns =
  String.concat "\n" (List.map to_string insns)
