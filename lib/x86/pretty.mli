(** Intel-syntax rendering of instructions, for listings and alerts. *)

val pp_operand : Format.formatter -> Insn.operand -> unit
val pp_mem : Format.formatter -> Insn.mem -> unit

val pp : Format.formatter -> Insn.t -> unit
(** One instruction, e.g. [xor byte ptr \[eax\], 0x95]. *)

val to_string : Insn.t -> string
val program_to_string : Insn.t list -> string
(** Newline-separated listing. *)
