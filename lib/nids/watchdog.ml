type config = { stall_after : float; max_restarts : int; backoff : float }

let default_config = { stall_after = 1.0; max_restarts = 3; backoff = 2.0 }

let config_for ~deadline =
  { default_config with stall_after = Float.max (8.0 *. deadline) 0.05 }

let validate_config c =
  if c.stall_after <= 0.0 then Error "watchdog: stall_after must be positive"
  else if c.max_restarts < 0 then Error "watchdog: max_restarts must be >= 0"
  else if c.backoff < 1.0 then Error "watchdog: backoff must be >= 1"
  else Ok c

type t = {
  cfg : config;
  mutable restarts : int;
  mutable last_restart : float;  (* observation time of the last Restart *)
}

let create cfg =
  let cfg =
    match validate_config cfg with
    | Ok c -> c
    | Error m -> invalid_arg ("Watchdog.create: " ^ m)
  in
  { cfg; restarts = 0; last_restart = neg_infinity }

type action = Steady | Restart | Exhausted

let threshold t = t.cfg.stall_after *. (t.cfg.backoff ** float_of_int t.restarts)

let observe t ~now ~busy_since =
  match busy_since with
  | None -> Steady
  | Some since ->
      (* a heartbeat older than the last restart belongs to the
         abandoned generation, not the replacement *)
      if since <= t.last_restart then Steady
      else if now -. since < threshold t then Steady
      else if t.restarts >= t.cfg.max_restarts then Exhausted
      else begin
        t.restarts <- t.restarts + 1;
        t.last_restart <- now;
        Restart
      end

let restarts t = t.restarts
