let shard_of addr ~shards =
  if shards <= 0 then invalid_arg "Parallel.shard_of: shards must be positive";
  Ipaddr.hash addr mod shards

let default_domains () = min 8 (max 1 (Domain.recommended_domain_count ()))

let merge_stats (acc : Stats.t) (s : Stats.t) =
  acc.Stats.packets <- acc.Stats.packets + s.Stats.packets;
  acc.Stats.bytes <- acc.Stats.bytes + s.Stats.bytes;
  acc.Stats.classified_suspicious <-
    acc.Stats.classified_suspicious + s.Stats.classified_suspicious;
  acc.Stats.prefilter_hits <- acc.Stats.prefilter_hits + s.Stats.prefilter_hits;
  acc.Stats.frames <- acc.Stats.frames + s.Stats.frames;
  acc.Stats.frame_bytes <- acc.Stats.frame_bytes + s.Stats.frame_bytes;
  acc.Stats.alerts <- acc.Stats.alerts + s.Stats.alerts;
  acc.Stats.analysis_seconds <- acc.Stats.analysis_seconds +. s.Stats.analysis_seconds;
  acc.Stats.verdict_cache_hits <-
    acc.Stats.verdict_cache_hits + s.Stats.verdict_cache_hits;
  acc.Stats.verdict_cache_misses <-
    acc.Stats.verdict_cache_misses + s.Stats.verdict_cache_misses;
  acc.Stats.verdict_cache_evictions <-
    acc.Stats.verdict_cache_evictions + s.Stats.verdict_cache_evictions;
  acc.Stats.decode_memo_hits <-
    acc.Stats.decode_memo_hits + s.Stats.decode_memo_hits;
  acc.Stats.decode_memo_misses <-
    acc.Stats.decode_memo_misses + s.Stats.decode_memo_misses;
  acc.Stats.scan_budget_exhausted <-
    acc.Stats.scan_budget_exhausted + s.Stats.scan_budget_exhausted

let shard_packets packets ~shards =
  let buckets = Array.make shards [] in
  List.iter
    (fun p ->
      let k = shard_of (Packet.src p) ~shards in
      buckets.(k) <- p :: buckets.(k))
    packets;
  Array.map List.rev buckets

let process ?domains cfg packets =
  let shards = match domains with Some d -> max 1 d | None -> default_domains () in
  if shards = 1 then begin
    let nids = Pipeline.create cfg in
    let alerts = Pipeline.process_packets nids packets in
    (alerts, Pipeline.stats nids)
  end
  else begin
    let buckets = shard_packets packets ~shards in
    let workers =
      Array.map
        (fun shard ->
          Domain.spawn (fun () ->
              let nids = Pipeline.create cfg in
              let alerts = Pipeline.process_packets nids shard in
              (alerts, Pipeline.stats nids)))
        buckets
    in
    let results = Array.map Domain.join workers in
    let stats = Stats.create () in
    Array.iter (fun (_, s) -> merge_stats stats s) results;
    let alerts = List.concat_map fst (Array.to_list results) in
    (alerts, stats)
  end

let process_seq ?domains ?(batch = 8192) cfg packets on_alerts =
  let shards = match domains with Some d -> max 1 d | None -> default_domains () in
  (* persistent per-shard pipelines: classifier state must survive across
     batches, exactly as it would in a long-running sequential deployment *)
  let pipelines = Array.init shards (fun _ -> Pipeline.create cfg) in
  let buf = ref [] in
  let count = ref 0 in
  let flush () =
    if !count > 0 then begin
      let chunk = List.rev !buf in
      buf := [];
      count := 0;
      let buckets = shard_packets chunk ~shards in
      let workers =
        Array.mapi
          (fun k shard ->
            Domain.spawn (fun () -> Pipeline.process_packets pipelines.(k) shard))
          buckets
      in
      let alerts = List.concat_map Domain.join (Array.to_list workers) in
      if alerts <> [] then on_alerts alerts
    end
  in
  Seq.iter
    (fun p ->
      buf := p :: !buf;
      incr count;
      if !count >= batch then flush ())
    packets;
  flush ();
  let stats = Stats.create () in
  Array.iter (fun nids -> merge_stats stats (Pipeline.stats nids)) pipelines;
  stats
