module Obs = Sanids_obs

let shard_of addr ~shards =
  if shards <= 0 then invalid_arg "Parallel.shard_of: shards must be positive";
  Ipaddr.hash addr mod shards

(* Hash the full flow 5-tuple.  Source-only sharding concentrates an
   outbreak (one worm source, many victims) onto a single worker; the
   5-tuple spreads its flows across every domain.  Non-TCP/UDP packets
   have no flow key and fall back to the source shard. *)
let flow_shard_of p ~shards =
  if shards <= 0 then
    invalid_arg "Parallel.flow_shard_of: shards must be positive";
  match Flow.key_of_packet p with
  | None -> shard_of (Packet.src p) ~shards
  | Some k ->
      let h = Ipaddr.hash k.Flow.src in
      let h = (h * 31) + Ipaddr.hash k.Flow.dst in
      let h = (h * 31) + k.Flow.src_port in
      let h = (h * 31) + k.Flow.dst_port in
      let h = (h * 31) + k.Flow.proto in
      h land max_int mod shards

(* Which sharding a configuration admits: per-source classifier state
   (honeypot marks, scan counters) requires all of a source's packets on
   one worker, so flow-hash sharding is only sound with classification
   off — then the pipeline's state is purely per-flow. *)
let shard_of_packet (cfg : Config.t) p ~shards =
  if cfg.Config.classification_enabled then shard_of (Packet.src p) ~shards
  else flow_shard_of p ~shards

let default_domains () = min 8 (max 1 (Domain.recommended_domain_count ()))

let merge_snapshots snaps =
  Array.fold_left Obs.Snapshot.merge Obs.Snapshot.empty snaps

let shard_packets cfg packets ~shards =
  let buckets = Array.make shards [] in
  List.iter
    (fun p ->
      let k = shard_of_packet cfg p ~shards in
      buckets.(k) <- p :: buckets.(k))
    packets;
  Array.map List.rev buckets

let process_snapshot ?domains cfg packets =
  let shards = match domains with Some d -> max 1 d | None -> default_domains () in
  if shards = 1 then begin
    let nids = Pipeline.create cfg in
    let alerts = Pipeline.process_packets nids packets in
    (alerts, Pipeline.snapshot nids)
  end
  else begin
    let buckets = shard_packets cfg packets ~shards in
    let workers =
      Array.map
        (fun shard ->
          Domain.spawn (fun () ->
              (* one pipeline — hence one registry — per worker domain *)
              let nids = Pipeline.create cfg in
              let alerts = Pipeline.process_packets nids shard in
              (alerts, Pipeline.snapshot nids)))
        buckets
    in
    let results = Array.map Domain.join workers in
    let snapshot = merge_snapshots (Array.map snd results) in
    let alerts = List.concat_map fst (Array.to_list results) in
    (alerts, snapshot)
  end

let process ?domains cfg packets =
  let alerts, snapshot = process_snapshot ?domains cfg packets in
  (alerts, Stats.of_snapshot snapshot)

let shed_total = "sanids_shed_total"
let worker_failures_total = "sanids_worker_failures_total"
let worker_restarts_total = "sanids_worker_restarts_total"

let all_policies = [ Bqueue.Drop_newest; Bqueue.Drop_oldest; Bqueue.Block ]

(* One worker generation on one shard.  When the watchdog retires a
   generation its pipeline is kept: a retired worker finishes the chunk
   it already popped (every popped packet is processed exactly once) and
   its partial metrics merge into the final snapshot. *)
type slot = {
  domain : unit Domain.t;
  nids : Pipeline.t;
  finished : bool Atomic.t;
}

let process_seq_snapshot ?domains ?(batch = 8192)
    ?(clock = Unix.gettimeofday) cfg packets on_alerts =
  let shards = match domains with Some d -> max 1 d | None -> default_domains () in
  (* long-lived workers behind bounded admission queues: each worker owns
     a persistent pipeline (classifier state survives the whole stream,
     exactly as in a sequential deployment) and drains its own queue, so
     a worker that falls behind holds at most [stream_queue_capacity]
     packets — the drop policy decides what happens to the excess *)
  let queues =
    Array.init shards (fun _ ->
        Bqueue.create ~capacity:cfg.Config.stream_queue_capacity
          cfg.Config.stream_drop_policy)
  in
  (* admission metrics live on the feeder side — shed packets never reach
     a worker registry *)
  let feeder_reg = Obs.Registry.create () in
  let shed_counters =
    List.map
      (fun p ->
        ( p,
          Obs.Registry.counter feeder_reg
            ~help:"packets shed at stream-mode admission"
            ~labels:[ ("policy", Bqueue.policy_to_string p) ]
            shed_total ))
      all_policies
  in
  let shed = List.assoc cfg.Config.stream_drop_policy shed_counters in
  let alert_mu = Mutex.create () in
  let emit alerts =
    if alerts <> [] then begin
      Mutex.lock alert_mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock alert_mu)
        (fun () -> on_alerts alerts)
    end
  in
  (* Watchdog plumbing — active only when the analysis budget carries a
     wall-clock deadline (the stall threshold derives from it).  The
     watchdog domain owns its own registry; registries are
     single-domain, so it must not share the feeder's. *)
  let wd_cfg =
    match cfg.Config.analysis_budget with
    | Some l when l.Budget.deadline > 0.0 ->
        Some (Watchdog.config_for ~deadline:l.Budget.deadline)
    | Some _ | None -> None
  in
  let wd_active = wd_cfg <> None in
  let wd_reg = Obs.Registry.create () in
  let restarts_c =
    Obs.Registry.counter wd_reg
      ~help:"stalled workers abandoned and respawned by the watchdog"
      worker_restarts_total
  in
  let hb = Array.init shards (fun _ -> Atomic.make infinity) in
  let cur_gen = Array.init shards (fun _ -> Atomic.make 0) in
  let slots_mu = Mutex.create () in
  let retired = ref [] in
  let spawn_worker k gen =
    let nids = Pipeline.create cfg in
    let finished = Atomic.make false in
    let failures =
      Obs.Registry.counter (Pipeline.registry nids)
        ~help:"packets abandoned after analysis raised inside a worker"
        worker_failures_total
    in
    let body () =
      let q = queues.(k) in
      let beat v =
        (* only the live generation beats: a retired worker finishing
           its last chunk must not feed the replacement's heartbeat *)
        if wd_active && Atomic.get cur_gen.(k) = gen then Atomic.set hb.(k) v
      in
      let rec loop () =
        if Atomic.get cur_gen.(k) <> gen then ()  (* retired: stop popping *)
        else
          match Bqueue.pop_batch q ~max:batch with
          | [] -> ()
          | chunk ->
              let alerts =
                List.concat_map
                  (fun p ->
                    (* per-packet isolation: one poisoned packet costs
                       itself, not the shard *)
                    beat (clock ());
                    match Pipeline.process_packet nids p with
                    | alerts -> alerts
                    | exception _ ->
                        Obs.Registry.incr failures;
                        [])
                  chunk
              in
              beat infinity;
              emit alerts;
              loop ()
      in
      (* a worker must never abandon an open queue — a Block-policy feeder
         would wait on it forever.  If the loop itself dies (the alert
         callback raised), close the queue so admission degrades to
         shedding, and surface the abort as a worker failure; the shard's
         pipeline still contributes its partial (degraded) results. *)
      (try loop ()
       with _ ->
         Bqueue.close q;
         Obs.Registry.incr failures);
      beat infinity;
      Atomic.set finished true
    in
    { domain = Domain.spawn body; nids; finished }
  in
  let slots = Array.init shards (fun k -> spawn_worker k 0) in
  let stop = Atomic.make false in
  let wd_domain =
    Option.map
      (fun (wcfg : Watchdog.config) ->
        let wds = Array.init shards (fun _ -> Watchdog.create wcfg) in
        let poll = Float.max (wcfg.Watchdog.stall_after /. 4.0) 0.005 in
        Domain.spawn (fun () ->
            let exhausted = Array.make shards false in
            while not (Atomic.get stop) do
              Unix.sleepf poll;
              if not (Atomic.get stop) then
                for k = 0 to shards - 1 do
                  let b = Atomic.get hb.(k) in
                  let busy_since = if b = infinity then None else Some b in
                  match Watchdog.observe wds.(k) ~now:(clock ()) ~busy_since with
                  | Watchdog.Steady -> ()
                  | Watchdog.Restart ->
                      Obs.Registry.incr restarts_c;
                      Mutex.lock slots_mu;
                      retired := slots.(k) :: !retired;
                      let gen = Atomic.get cur_gen.(k) + 1 in
                      Atomic.set cur_gen.(k) gen;
                      Atomic.set hb.(k) infinity;
                      slots.(k) <- spawn_worker k gen;
                      Mutex.unlock slots_mu
                  | Watchdog.Exhausted ->
                      (* respawn cap spent: stop feeding the shard
                         instead of respawn-looping; the feeder's pushes
                         degrade to (counted) shedding *)
                      if not exhausted.(k) then begin
                        exhausted.(k) <- true;
                        Bqueue.close queues.(k)
                      end
                done
            done))
      wd_cfg
  in
  (* Batched admission: accumulate per-shard runs and push each run
     under one lock acquisition instead of locking per packet.  The held
     batch is bounded, and every shard flushes before the queues close,
     so no packet is lost to batching. *)
  let feed_batch = 256 in
  let pending = Array.make shards [] in
  let pending_n = Array.make shards 0 in
  let flush k =
    if pending_n.(k) > 0 then begin
      let res = Bqueue.push_batch queues.(k) (List.rev pending.(k)) in
      if res.Bqueue.shed > 0 then Obs.Registry.add shed res.Bqueue.shed;
      pending.(k) <- [];
      pending_n.(k) <- 0
    end
  in
  Seq.iter
    (fun p ->
      let k = shard_of_packet cfg p ~shards in
      pending.(k) <- p :: pending.(k);
      pending_n.(k) <- pending_n.(k) + 1;
      if pending_n.(k) >= feed_batch then flush k)
    packets;
  for k = 0 to shards - 1 do
    flush k
  done;
  Array.iter Bqueue.close queues;
  let final_slots, final_retired =
    match wd_cfg with
    | None ->
        (* no watchdog: exactly the pre-watchdog shutdown — unbounded
           joins on the original workers *)
        (Array.to_list slots, [])
    | Some wcfg ->
        (* wait (bounded) for every slot's current worker to drain its
           closed queue; the watchdog may retire and replace a wedged
           one while we wait *)
        let grace = 4.0 *. wcfg.Watchdog.stall_after in
        let all_done () =
          Mutex.lock slots_mu;
          let d = Array.for_all (fun s -> Atomic.get s.finished) slots in
          Mutex.unlock slots_mu;
          d
        in
        let rec drain t =
          if (not (all_done ())) && t > 0.0 then begin
            Unix.sleepf 0.01;
            drain (t -. 0.01)
          end
        in
        drain grace;
        Atomic.set stop true;
        Option.iter Domain.join wd_domain;
        (Array.to_list slots, !retired)
  in
  (* join whatever finished; a still-wedged domain (budget deadline
     failed to stop it) is leaked rather than waited on forever, its
     racy registry skipped and the loss surfaced as a worker failure *)
  let try_join s =
    match wd_cfg with
    | None ->
        Domain.join s.domain;
        true
    | Some wcfg ->
        let rec wait t =
          if Atomic.get s.finished then true
          else if t <= 0.0 then false
          else begin
            Unix.sleepf 0.005;
            wait (t -. 0.005)
          end
        in
        if wait (2.0 *. wcfg.Watchdog.stall_after) then begin
          Domain.join s.domain;
          true
        end
        else false
  in
  let leaked_c =
    Obs.Registry.counter wd_reg
      ~help:
        "worker domains still wedged at shutdown, leaked unjoined with \
         their metrics lost"
      worker_failures_total
  in
  let snaps =
    List.filter_map
      (fun s ->
        if try_join s then Some (Pipeline.snapshot s.nids)
        else begin
          Obs.Registry.incr leaked_c;
          None
        end)
      (final_slots @ final_retired)
  in
  Obs.Snapshot.merge
    (Obs.Snapshot.merge
       (merge_snapshots (Array.of_list snaps))
       (Obs.Registry.snapshot feeder_reg))
    (Obs.Registry.snapshot wd_reg)

let process_seq ?domains ?batch ?clock cfg packets on_alerts =
  Stats.of_snapshot
    (process_seq_snapshot ?domains ?batch ?clock cfg packets on_alerts)
