module Obs = Sanids_obs

let shard_of addr ~shards =
  if shards <= 0 then invalid_arg "Parallel.shard_of: shards must be positive";
  Ipaddr.hash addr mod shards

let default_domains () = min 8 (max 1 (Domain.recommended_domain_count ()))

let merge_snapshots snaps =
  Array.fold_left Obs.Snapshot.merge Obs.Snapshot.empty snaps

let shard_packets packets ~shards =
  let buckets = Array.make shards [] in
  List.iter
    (fun p ->
      let k = shard_of (Packet.src p) ~shards in
      buckets.(k) <- p :: buckets.(k))
    packets;
  Array.map List.rev buckets

let process_snapshot ?domains cfg packets =
  let shards = match domains with Some d -> max 1 d | None -> default_domains () in
  if shards = 1 then begin
    let nids = Pipeline.create cfg in
    let alerts = Pipeline.process_packets nids packets in
    (alerts, Pipeline.snapshot nids)
  end
  else begin
    let buckets = shard_packets packets ~shards in
    let workers =
      Array.map
        (fun shard ->
          Domain.spawn (fun () ->
              (* one pipeline — hence one registry — per worker domain *)
              let nids = Pipeline.create cfg in
              let alerts = Pipeline.process_packets nids shard in
              (alerts, Pipeline.snapshot nids)))
        buckets
    in
    let results = Array.map Domain.join workers in
    let snapshot = merge_snapshots (Array.map snd results) in
    let alerts = List.concat_map fst (Array.to_list results) in
    (alerts, snapshot)
  end

let process ?domains cfg packets =
  let alerts, snapshot = process_snapshot ?domains cfg packets in
  (alerts, Stats.of_snapshot snapshot)

let shed_total = "sanids_shed_total"
let worker_failures_total = "sanids_worker_failures_total"

let all_policies = [ Bqueue.Drop_newest; Bqueue.Drop_oldest; Bqueue.Block ]

let process_seq_snapshot ?domains ?(batch = 8192) cfg packets on_alerts =
  let shards = match domains with Some d -> max 1 d | None -> default_domains () in
  (* long-lived workers behind bounded admission queues: each worker owns
     a persistent pipeline (classifier state survives the whole stream,
     exactly as in a sequential deployment) and drains its own queue, so
     a worker that falls behind holds at most [stream_queue_capacity]
     packets — the drop policy decides what happens to the excess *)
  let pipelines = Array.init shards (fun _ -> Pipeline.create cfg) in
  let queues =
    Array.init shards (fun _ ->
        Bqueue.create ~capacity:cfg.Config.stream_queue_capacity
          cfg.Config.stream_drop_policy)
  in
  let failures =
    Array.map
      (fun p ->
        Obs.Registry.counter (Pipeline.registry p)
          ~help:"packets abandoned after analysis raised inside a worker"
          worker_failures_total)
      pipelines
  in
  (* admission metrics live on the feeder side — shed packets never reach
     a worker registry *)
  let feeder_reg = Obs.Registry.create () in
  let shed_counters =
    List.map
      (fun p ->
        ( p,
          Obs.Registry.counter feeder_reg
            ~help:"packets shed at stream-mode admission"
            ~labels:[ ("policy", Bqueue.policy_to_string p) ]
            shed_total ))
      all_policies
  in
  let shed = List.assoc cfg.Config.stream_drop_policy shed_counters in
  let alert_mu = Mutex.create () in
  let emit alerts =
    if alerts <> [] then begin
      Mutex.lock alert_mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock alert_mu)
        (fun () -> on_alerts alerts)
    end
  in
  let worker k =
    let nids = pipelines.(k) in
    let q = queues.(k) in
    let rec loop () =
      match Bqueue.pop_batch q ~max:batch with
      | [] -> ()
      | chunk ->
          let alerts =
            List.concat_map
              (fun p ->
                (* per-packet isolation: one poisoned packet costs
                   itself, not the shard *)
                match Pipeline.process_packet nids p with
                | alerts -> alerts
                | exception _ ->
                    Obs.Registry.incr failures.(k);
                    [])
              chunk
          in
          emit alerts;
          loop ()
    in
    (* a worker must never abandon an open queue — a Block-policy feeder
       would wait on it forever.  If the loop itself dies (the alert
       callback raised), close the queue so admission degrades to
       shedding, and surface the abort as a worker failure; the shard's
       pipeline still contributes its partial (degraded) results. *)
    try loop ()
    with _ ->
      Bqueue.close q;
      Obs.Registry.incr failures.(k)
  in
  let workers = Array.init shards (fun k -> Domain.spawn (fun () -> worker k)) in
  Seq.iter
    (fun p ->
      let k = shard_of (Packet.src p) ~shards in
      match Bqueue.push queues.(k) p with
      | Bqueue.Queued -> ()
      | Bqueue.Shed_newest -> Obs.Registry.incr shed
      | Bqueue.Shed_oldest n -> Obs.Registry.add shed n)
    packets;
  Array.iter Bqueue.close queues;
  Array.iter Domain.join workers;
  Obs.Snapshot.merge
    (merge_snapshots (Array.map Pipeline.snapshot pipelines))
    (Obs.Registry.snapshot feeder_reg)

let process_seq ?domains ?batch cfg packets on_alerts =
  Stats.of_snapshot (process_seq_snapshot ?domains ?batch cfg packets on_alerts)
