module Obs = Sanids_obs

let shard_of addr ~shards =
  if shards <= 0 then invalid_arg "Parallel.shard_of: shards must be positive";
  Ipaddr.hash addr mod shards

let default_domains () = min 8 (max 1 (Domain.recommended_domain_count ()))

let merge_snapshots snaps =
  Array.fold_left Obs.Snapshot.merge Obs.Snapshot.empty snaps

let shard_packets packets ~shards =
  let buckets = Array.make shards [] in
  List.iter
    (fun p ->
      let k = shard_of (Packet.src p) ~shards in
      buckets.(k) <- p :: buckets.(k))
    packets;
  Array.map List.rev buckets

let process_snapshot ?domains cfg packets =
  let shards = match domains with Some d -> max 1 d | None -> default_domains () in
  if shards = 1 then begin
    let nids = Pipeline.create cfg in
    let alerts = Pipeline.process_packets nids packets in
    (alerts, Pipeline.snapshot nids)
  end
  else begin
    let buckets = shard_packets packets ~shards in
    let workers =
      Array.map
        (fun shard ->
          Domain.spawn (fun () ->
              (* one pipeline — hence one registry — per worker domain *)
              let nids = Pipeline.create cfg in
              let alerts = Pipeline.process_packets nids shard in
              (alerts, Pipeline.snapshot nids)))
        buckets
    in
    let results = Array.map Domain.join workers in
    let snapshot = merge_snapshots (Array.map snd results) in
    let alerts = List.concat_map fst (Array.to_list results) in
    (alerts, snapshot)
  end

let process ?domains cfg packets =
  let alerts, snapshot = process_snapshot ?domains cfg packets in
  (alerts, Stats.of_snapshot snapshot)

let process_seq ?domains ?(batch = 8192) cfg packets on_alerts =
  let shards = match domains with Some d -> max 1 d | None -> default_domains () in
  (* persistent per-shard pipelines: classifier state must survive across
     batches, exactly as it would in a long-running sequential deployment *)
  let pipelines = Array.init shards (fun _ -> Pipeline.create cfg) in
  let buf = ref [] in
  let count = ref 0 in
  let flush () =
    if !count > 0 then begin
      let chunk = List.rev !buf in
      buf := [];
      count := 0;
      let buckets = shard_packets chunk ~shards in
      let workers =
        Array.mapi
          (fun k shard ->
            Domain.spawn (fun () -> Pipeline.process_packets pipelines.(k) shard))
          buckets
      in
      let alerts = List.concat_map Domain.join (Array.to_list workers) in
      if alerts <> [] then on_alerts alerts
    end
  in
  Seq.iter
    (fun p ->
      buf := p :: !buf;
      incr count;
      if !count >= batch then flush ())
    packets;
  flush ();
  merge_snapshots (Array.map Pipeline.snapshot pipelines)
  |> Stats.of_snapshot
