(** Alerts raised by the semantic analyzer. *)

type t = {
  ts : float;
  src : Ipaddr.t;
  dst : Ipaddr.t;
  src_port : int;
  dst_port : int;
  template : string;  (** matching template name *)
  reason : Sanids_classify.Classifier.reason;  (** why the packet was analyzed *)
  frame_off : int;  (** payload offset of the matched frame *)
  frame_origin : Sanids_extract.Extractor.origin;
  detail : string;  (** rendered variable bindings *)
  degraded : bool;
      (** raised by the degraded (baseline pattern) pass, not the full
          semantic matcher *)
  confirmed : bool;
      (** the dynamic-confirmation stage executed the match and proved
          it (decryption observed or a hostile syscall reached); renders
          as [[confirmed]] *)
}

val make :
  ?degraded:bool ->
  ?confirmed:bool ->
  packet:Packet.t ->
  reason:Sanids_classify.Classifier.reason ->
  frame:Sanids_extract.Extractor.frame ->
  result:Matcher.result ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
val to_line : t -> string
(** One-line log rendering. *)
