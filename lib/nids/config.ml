type t = {
  honeypots : Ipaddr.t list;
  unused : Ipaddr.prefix list;
  scan_threshold : int;
  classification_enabled : bool;
  extraction_enabled : bool;
  templates : Template.t list;
  min_payload : int;
  reassemble : bool;
  verdict_cache_size : int;
  flow_alert_cache_size : int;
  stream_queue_capacity : int;
  stream_drop_policy : Bqueue.policy;
  analysis_budget : Budget.limits option;
  breaker : Breaker.config option;
  degrade : bool;
  confirm : Sanids_confirm.Confirm.config option;
  static_refute : bool;
      (* run the abstract pre-stage before the emulator on each hit *)
}

let default =
  {
    honeypots = [];
    unused = [];
    scan_threshold = 5;
    classification_enabled = true;
    extraction_enabled = true;
    templates = Template_lib.default_set;
    min_payload = 16;
    reassemble = false;
    verdict_cache_size = 4096;
    flow_alert_cache_size = 65536;
    stream_queue_capacity = 8192;
    stream_drop_policy = Bqueue.Block;
    analysis_budget = None;
    breaker = None;
    degrade = false;
    confirm = None;
    static_refute = false;
  }

let with_honeypots honeypots t = { t with honeypots }
let with_unused unused t = { t with unused }
let with_templates templates t = { t with templates }
let with_classification classification_enabled t = { t with classification_enabled }
let with_extraction extraction_enabled t = { t with extraction_enabled }
let with_reassembly reassemble t = { t with reassemble }
let with_verdict_cache verdict_cache_size t = { t with verdict_cache_size }
let with_scan_threshold scan_threshold t = { t with scan_threshold }
let with_min_payload min_payload t = { t with min_payload }
let with_flow_alert_cache flow_alert_cache_size t = { t with flow_alert_cache_size }
let with_stream_queue stream_queue_capacity t = { t with stream_queue_capacity }
let with_stream_policy stream_drop_policy t = { t with stream_drop_policy }
let with_budget analysis_budget t = { t with analysis_budget }
let with_breaker breaker t = { t with breaker }
let with_degrade degrade t = { t with degrade }
let with_confirm confirm t = { t with confirm }
let with_static_refute static_refute t = { t with static_refute }

(* ------------------------------------------------------------------ *)
(* The key=value spec layer: one grammar for every tunable the CLI and
   the daemon's hot-reload path share.  A spec is [key=value]; the value
   of [budget]/[breaker]/[fault-style] keys is itself the existing
   comma-spec of that subsystem ([Budget.limits_of_string] etc.), so
   splitting on the *first* '=' nests the sub-grammars without any
   escaping.  Every error message is typed the same way the sub-parsers
   type theirs ("<key>: ..."), so a bad CLI flag and a rejected reload
   log identically. *)

let bool_of_spec k v =
  match String.lowercase_ascii v with
  | "true" | "on" | "yes" | "1" -> Ok true
  | "false" | "off" | "no" | "0" -> Ok false
  | _ -> Error (Printf.sprintf "%s: wants a boolean (true/false), got %S" k v)

let int_of_spec k v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: wants an integer, got %S" k v)

let spec_keys =
  [
    "honeypot"; "unused"; "scan_threshold"; "classify"; "extract";
    "min_payload"; "reassemble"; "verdict_cache"; "flow_alert_cache";
    "queue"; "drop_policy"; "budget"; "breaker"; "degrade"; "confirm";
    "static_refute";
  ]

let of_spec s =
  let s = String.trim s in
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "config: %S is not key=value" s)
  | Some i -> (
      let k = String.trim (String.sub s 0 i) in
      let v = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      let int_field f = Result.map f (int_of_spec k v) in
      let bool_field f = Result.map f (bool_of_spec k v) in
      match k with
      | "honeypot" -> (
          match Ipaddr.of_string_opt v with
          | Some a -> Ok (fun t -> { t with honeypots = t.honeypots @ [ a ] })
          | None ->
              Error (Printf.sprintf "honeypot: bad IPv4 address %S" v))
      | "unused" -> (
          match Ipaddr.prefix_of_string_opt v with
          | Some p -> Ok (fun t -> { t with unused = t.unused @ [ p ] })
          | None ->
              Error
                (Printf.sprintf "unused: bad prefix %S (want a.b.c.d/len)" v))
      | "scan_threshold" -> int_field (fun n t -> { t with scan_threshold = n })
      | "classify" -> bool_field (fun b t -> { t with classification_enabled = b })
      | "extract" -> bool_field (fun b t -> { t with extraction_enabled = b })
      | "min_payload" -> int_field (fun n t -> { t with min_payload = n })
      | "reassemble" -> bool_field (fun b t -> { t with reassemble = b })
      | "verdict_cache" -> int_field (fun n t -> { t with verdict_cache_size = n })
      | "flow_alert_cache" ->
          int_field (fun n t -> { t with flow_alert_cache_size = n })
      | "queue" -> int_field (fun n t -> { t with stream_queue_capacity = n })
      | "drop_policy" ->
          Result.map
            (fun p t -> { t with stream_drop_policy = p })
            (Bqueue.policy_of_string_result v)
      | "budget" ->
          Result.map
            (fun l t -> { t with analysis_budget = Some l })
            (Budget.limits_of_string v)
      | "breaker" ->
          Result.map
            (fun c t -> { t with breaker = Some c })
            (Breaker.config_of_string v)
      | "degrade" -> bool_field (fun b t -> { t with degrade = b })
      | "confirm" ->
          Result.map
            (fun c t -> { t with confirm = Some c })
            (Sanids_confirm.Confirm.config_of_string v)
      | "static_refute" -> bool_field (fun b t -> { t with static_refute = b })
      | _ ->
          Error
            (Printf.sprintf "config: unknown key %S (want %s)" k
               (String.concat "|" spec_keys)))

(* A config file is the spec grammar, one assignment per line: '#'
   comments and blank lines skipped, errors prefixed with the line
   number so reload-rejection logs point at the offending assignment. *)
let of_lines lines =
  let rec fold lineno acc = function
    | [] -> Ok acc
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line = "" then fold (lineno + 1) acc rest
        else
          match of_spec line with
          | Ok f -> fold (lineno + 1) (fun t -> f (acc t)) rest
          | Error m -> Error (Printf.sprintf "line %d: %s" lineno m))
  in
  fold 1 Fun.id lines

let of_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec lines acc =
          match input_line ic with
          | line -> lines (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        lines [])
  with
  | exception Sys_error m -> Error (Printf.sprintf "%s: %s" path m)
  | lines -> (
      match of_lines lines with
      | Ok f -> Ok f
      | Error m -> Error (Printf.sprintf "%s: %s" path m))

module Finding = Sanids_staticlint.Finding

(* Finding order mirrors the historical short-circuit order of
   [validate], which reports the first Error's message unchanged. *)
let lint t =
  let fs = ref [] in
  let emit code severity message =
    fs := Finding.v ~code ~severity ~subject:"config" message :: !fs
  in
  if t.scan_threshold <= 0 then
    emit "SL201" Finding.Error
      (Printf.sprintf "scan_threshold must be positive (got %d)"
         t.scan_threshold);
  if t.verdict_cache_size < 0 then
    emit "SL201" Finding.Error
      (Printf.sprintf "verdict_cache_size must be >= 0 (got %d)"
         t.verdict_cache_size);
  if t.flow_alert_cache_size <= 0 then
    emit "SL201" Finding.Error
      (Printf.sprintf "flow_alert_cache_size must be positive (got %d)"
         t.flow_alert_cache_size);
  if t.min_payload < 0 then
    emit "SL201" Finding.Error
      (Printf.sprintf "min_payload must be >= 0 (got %d)" t.min_payload);
  if t.stream_queue_capacity < 1 then
    emit "SL201" Finding.Error
      (Printf.sprintf "stream_queue_capacity must be positive (got %d)"
         t.stream_queue_capacity);
  (match Option.map Budget.validate_limits t.analysis_budget with
  | Some (Error m) -> emit "SL202" Finding.Error m
  | Some (Ok _) | None -> ());
  (match Option.map Breaker.validate_config t.breaker with
  | Some (Error m) -> emit "SL203" Finding.Error m
  | Some (Ok _) | None -> ());
  if t.degrade && t.analysis_budget = None && t.breaker = None then
    emit "SL204" Finding.Error
      "degrade requires an analysis budget or a breaker (nothing can trigger \
       degradation otherwise)";
  if t.verdict_cache_size > 0 && t.verdict_cache_size < 64 then
    emit "SL205" Finding.Warn
      (Printf.sprintf
         "verdict_cache_size %d is too small to survive an outbreak's \
          payload diversity; use 0 (off) or >= 64"
         t.verdict_cache_size);
  if (not t.degrade) && (t.analysis_budget <> None || t.breaker <> None) then
    emit "SL206" Finding.Warn
      "an analysis budget or breaker is set without degrade: truncated \
       packets are silently under-analyzed instead of falling back to the \
       baseline pass";
  (match Option.map Sanids_confirm.Confirm.validate_config t.confirm with
  | Some (Error m) -> emit "SL207" Finding.Error m
  | Some (Ok _) | None -> ());
  (match t.confirm with
  | Some c when c.Sanids_confirm.Confirm.max_steps > 1_000_000 ->
      emit "SL208" Finding.Warn
        (Printf.sprintf
           "confirm step budget %d is far above any real decoder's run \
            length; a hostile packet can hold the analysis thread for the \
            whole budget"
           c.Sanids_confirm.Confirm.max_steps)
  | Some _ | None -> ());
  if t.static_refute && t.confirm = None then
    emit "SL209" Finding.Error
      "static_refute is a pre-stage of dynamic confirmation and needs \
       confirm=... set (alone there is no verdict stage to short-circuit)";
  List.rev !fs

let validate t =
  match
    List.find_opt (fun f -> f.Finding.severity = Finding.Error) (lint t)
  with
  | Some f -> Error f.Finding.message
  | None -> Ok t
