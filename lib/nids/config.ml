type t = {
  honeypots : Ipaddr.t list;
  unused : Ipaddr.prefix list;
  scan_threshold : int;
  classification_enabled : bool;
  extraction_enabled : bool;
  templates : Template.t list;
  min_payload : int;
  reassemble : bool;
  verdict_cache_size : int;
}

let default =
  {
    honeypots = [];
    unused = [];
    scan_threshold = 5;
    classification_enabled = true;
    extraction_enabled = true;
    templates = Template_lib.default_set;
    min_payload = 16;
    reassemble = false;
    verdict_cache_size = 4096;
  }

let with_honeypots honeypots t = { t with honeypots }
let with_unused unused t = { t with unused }
let with_templates templates t = { t with templates }
let with_classification classification_enabled t = { t with classification_enabled }
let with_extraction extraction_enabled t = { t with extraction_enabled }
let with_reassembly reassemble t = { t with reassemble }
let with_verdict_cache verdict_cache_size t = { t with verdict_cache_size }
