type t = {
  honeypots : Ipaddr.t list;
  unused : Ipaddr.prefix list;
  scan_threshold : int;
  classification_enabled : bool;
  extraction_enabled : bool;
  templates : Template.t list;
  min_payload : int;
  reassemble : bool;
  verdict_cache_size : int;
  flow_alert_cache_size : int;
  stream_queue_capacity : int;
  stream_drop_policy : Bqueue.policy;
  analysis_budget : Budget.limits option;
  breaker : Breaker.config option;
  degrade : bool;
}

let default =
  {
    honeypots = [];
    unused = [];
    scan_threshold = 5;
    classification_enabled = true;
    extraction_enabled = true;
    templates = Template_lib.default_set;
    min_payload = 16;
    reassemble = false;
    verdict_cache_size = 4096;
    flow_alert_cache_size = 65536;
    stream_queue_capacity = 8192;
    stream_drop_policy = Bqueue.Block;
    analysis_budget = None;
    breaker = None;
    degrade = false;
  }

let with_honeypots honeypots t = { t with honeypots }
let with_unused unused t = { t with unused }
let with_templates templates t = { t with templates }
let with_classification classification_enabled t = { t with classification_enabled }
let with_extraction extraction_enabled t = { t with extraction_enabled }
let with_reassembly reassemble t = { t with reassemble }
let with_verdict_cache verdict_cache_size t = { t with verdict_cache_size }
let with_scan_threshold scan_threshold t = { t with scan_threshold }
let with_min_payload min_payload t = { t with min_payload }
let with_flow_alert_cache flow_alert_cache_size t = { t with flow_alert_cache_size }
let with_stream_queue stream_queue_capacity t = { t with stream_queue_capacity }
let with_stream_policy stream_drop_policy t = { t with stream_drop_policy }
let with_budget analysis_budget t = { t with analysis_budget }
let with_breaker breaker t = { t with breaker }
let with_degrade degrade t = { t with degrade }

module Finding = Sanids_staticlint.Finding

(* Finding order mirrors the historical short-circuit order of
   [validate], which reports the first Error's message unchanged. *)
let lint t =
  let fs = ref [] in
  let emit code severity message =
    fs := Finding.v ~code ~severity ~subject:"config" message :: !fs
  in
  if t.scan_threshold <= 0 then
    emit "SL201" Finding.Error
      (Printf.sprintf "scan_threshold must be positive (got %d)"
         t.scan_threshold);
  if t.verdict_cache_size < 0 then
    emit "SL201" Finding.Error
      (Printf.sprintf "verdict_cache_size must be >= 0 (got %d)"
         t.verdict_cache_size);
  if t.flow_alert_cache_size <= 0 then
    emit "SL201" Finding.Error
      (Printf.sprintf "flow_alert_cache_size must be positive (got %d)"
         t.flow_alert_cache_size);
  if t.min_payload < 0 then
    emit "SL201" Finding.Error
      (Printf.sprintf "min_payload must be >= 0 (got %d)" t.min_payload);
  if t.stream_queue_capacity < 1 then
    emit "SL201" Finding.Error
      (Printf.sprintf "stream_queue_capacity must be positive (got %d)"
         t.stream_queue_capacity);
  (match Option.map Budget.validate_limits t.analysis_budget with
  | Some (Error m) -> emit "SL202" Finding.Error m
  | Some (Ok _) | None -> ());
  (match Option.map Breaker.validate_config t.breaker with
  | Some (Error m) -> emit "SL203" Finding.Error m
  | Some (Ok _) | None -> ());
  if t.degrade && t.analysis_budget = None && t.breaker = None then
    emit "SL204" Finding.Error
      "degrade requires an analysis budget or a breaker (nothing can trigger \
       degradation otherwise)";
  if t.verdict_cache_size > 0 && t.verdict_cache_size < 64 then
    emit "SL205" Finding.Warn
      (Printf.sprintf
         "verdict_cache_size %d is too small to survive an outbreak's \
          payload diversity; use 0 (off) or >= 64"
         t.verdict_cache_size);
  if (not t.degrade) && (t.analysis_budget <> None || t.breaker <> None) then
    emit "SL206" Finding.Warn
      "an analysis budget or breaker is set without degrade: truncated \
       packets are silently under-analyzed instead of falling back to the \
       baseline pass";
  List.rev !fs

let validate t =
  match
    List.find_opt (fun f -> f.Finding.severity = Finding.Error) (lint t)
  with
  | Some f -> Error f.Finding.message
  | None -> Ok t
