(** Multicore bulk processing (OCaml 5 domains).

    Every piece of classifier state — honeypot marks, scan counters,
    flow reassembly — is keyed by source address, so sharding traffic by
    source across worker domains preserves verdicts exactly: each worker
    runs an ordinary single-threaded {!Pipeline} over its shard and never
    shares mutable state.  This is the standard NIDS scaling design
    (per-flow hashing at the tap), and it is what lets the false-positive
    experiment chew through month-scale corpora.

    Observability follows the same design: each worker domain owns its
    pipeline's metrics registry, and per-domain snapshots are combined
    with {!Sanids_obs.Snapshot.merge} — a commutative monoid, so the
    merged counters are exactly the sums regardless of sharding.  The
    test suite checks shard-equivalence (alerts {e and} counters)
    against the sequential pipeline; the bench harness measures the
    speedup. *)

val shard_of : Ipaddr.t -> shards:int -> int
(** The worker index a source address maps to. *)

val process_snapshot :
  ?domains:int -> Config.t -> Packet.t list -> Alert.t list * Sanids_obs.Snapshot.t
(** Process a batch across [domains] workers (default:
    [Domain.recommended_domain_count ()], capped at 8).  Alerts are
    concatenated in shard order, each shard preserving arrival order;
    the snapshot is the monoid merge of every worker's registry. *)

val process :
  ?domains:int -> Config.t -> Packet.t list -> Alert.t list * Stats.t
(** {!process_snapshot} with the snapshot projected through
    {!Stats.of_snapshot}. *)

val process_seq :
  ?domains:int -> ?batch:int -> Config.t -> Packet.t Seq.t ->
  (Alert.t list -> unit) -> Stats.t
(** Stream variant: consume a packet sequence in batches of [batch]
    (default 8192), fanning each batch across domains, invoking the
    callback with each batch's alerts.  Worker pipelines persist across
    batches, so cross-batch classifier state (scan counts, honeypot
    marks) behaves exactly as in the sequential pipeline.  The returned
    statistics are the merged per-domain registries. *)
