(** Multicore bulk processing (OCaml 5 domains).

    Every piece of classifier state — honeypot marks, scan counters,
    flow reassembly — is keyed by source address, so sharding traffic by
    source across worker domains preserves verdicts exactly: each worker
    runs an ordinary single-threaded {!Pipeline} over its shard and never
    shares mutable state.  This is the standard NIDS scaling design
    (per-flow hashing at the tap), and it is what lets the false-positive
    experiment chew through month-scale corpora.

    Observability follows the same design: each worker domain owns its
    pipeline's metrics registry, and per-domain snapshots are combined
    with {!Sanids_obs.Snapshot.merge} — a commutative monoid, so the
    merged counters are exactly the sums regardless of sharding.  The
    test suite checks shard-equivalence (alerts {e and} counters)
    against the sequential pipeline; the bench harness measures the
    speedup. *)

val shard_of : Ipaddr.t -> shards:int -> int
(** The worker index a source address maps to. *)

val flow_shard_of : Packet.t -> shards:int -> int
(** The worker index the packet's flow 5-tuple (src, dst, ports, proto)
    maps to; packets with no flow key (non-TCP/UDP) fall back to
    {!shard_of} on the source.  Spreads a single-source outbreak across
    workers, where source sharding would pin it to one. *)

val shard_of_packet : Config.t -> Packet.t -> shards:int -> int
(** The sharding the configuration admits: with classification enabled
    the classifier keeps per-source state (honeypot marks, scan
    counters), so verdict equivalence requires {!shard_of} on the
    source; with it disabled the pipeline's state is per-flow and the
    better-balanced {!flow_shard_of} is used.  Both {!process_snapshot}
    and {!process_seq_snapshot} route through this. *)

val process_snapshot :
  ?domains:int -> Config.t -> Packet.t list -> Alert.t list * Sanids_obs.Snapshot.t
(** Process a batch across [domains] workers (default:
    [Domain.recommended_domain_count ()], capped at 8).  Alerts are
    concatenated in shard order, each shard preserving arrival order;
    the snapshot is the monoid merge of every worker's registry. *)

val process :
  ?domains:int -> Config.t -> Packet.t list -> Alert.t list * Stats.t
(** {!process_snapshot} with the snapshot projected through
    {!Stats.of_snapshot}. *)

val process_seq_snapshot :
  ?domains:int -> ?batch:int -> ?clock:(unit -> float) -> Config.t ->
  Packet.t Seq.t -> (Alert.t list -> unit) -> Sanids_obs.Snapshot.t
(** Stream mode with load shedding and crash isolation.  Each worker
    domain owns a persistent pipeline (classifier state survives the
    whole stream) behind a bounded admission queue
    ([Config.stream_queue_capacity] deep); the feeder routes each packet
    to its source shard and the queue's [Config.stream_drop_policy]
    decides what a full queue does — [Block] (the default) applies
    backpressure and loses nothing, the drop policies shed and count
    each loss as [sanids_shed_total{policy}].  Workers drain in chunks
    of at most [batch] (default 8192) and invoke the callback with each
    chunk's alerts (callback invocations are serialized, from worker
    domains).  A packet whose analysis raises is abandoned and counted
    as [sanids_worker_failures_total] — the worker and its shard keep
    going, so a poisoned packet yields degraded (partial) results, not
    a crash.  The returned snapshot merges every worker registry plus
    the feeder's admission counters, so
    [packets + shed + worker_failures] accounts for every admitted
    packet.

    [clock] (default [Unix.gettimeofday]) is the time source behind the
    worker heartbeats and the watchdog's stall polling — the serve
    supervisor and the watchdog tests inject a deterministic clock here
    so stall decisions are reproducible.

    When [Config.analysis_budget] carries a wall-clock deadline, a
    watchdog domain guards against workers that wedge {e despite} the
    budget (the budget is cooperative): a worker busy on one packet for
    [max (8 * deadline) 0.05] seconds is abandoned and a fresh worker
    is respawned on the same queue ([sanids_worker_restarts_total]),
    with exponential backoff and a bounded respawn count per shard
    ({!Watchdog}); an exhausted shard's queue is closed so admission
    degrades to counted shedding.  A retired worker finishes the chunk
    it already popped — every popped packet is processed exactly once —
    and its partial metrics merge into the final snapshot; a domain
    still wedged at shutdown is leaked rather than waited on forever
    and surfaces as a worker failure. *)

val process_seq :
  ?domains:int -> ?batch:int -> ?clock:(unit -> float) -> Config.t ->
  Packet.t Seq.t -> (Alert.t list -> unit) -> Stats.t
(** {!process_seq_snapshot} projected through {!Stats.of_snapshot}. *)
