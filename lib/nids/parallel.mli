(** Multicore bulk processing (OCaml 5 domains).

    Every piece of classifier state — honeypot marks, scan counters,
    flow reassembly — is keyed by source address, so sharding traffic by
    source across worker domains preserves verdicts exactly: each worker
    runs an ordinary single-threaded {!Pipeline} over its shard and never
    shares mutable state.  This is the standard NIDS scaling design
    (per-flow hashing at the tap), and it is what lets the false-positive
    experiment chew through month-scale corpora.

    The test suite checks shard-equivalence against the sequential
    pipeline; the bench harness measures the speedup. *)

val shard_of : Ipaddr.t -> shards:int -> int
(** The worker index a source address maps to. *)

val process :
  ?domains:int -> Config.t -> Packet.t list -> Alert.t list * Stats.t
(** Process a batch across [domains] workers (default:
    [Domain.recommended_domain_count ()], capped at 8).  Alerts are
    concatenated in shard order, each shard preserving arrival order;
    statistics are summed. *)

val process_seq :
  ?domains:int -> ?batch:int -> Config.t -> Packet.t Seq.t ->
  (Alert.t list -> unit) -> Stats.t
(** Stream variant: consume a packet sequence in batches of [batch]
    (default 8192), fanning each batch across domains, invoking the
    callback with each batch's alerts.  Worker pipelines persist across
    batches, so cross-batch classifier state (scan counts, honeypot
    marks) behaves exactly as in the sequential pipeline. *)
