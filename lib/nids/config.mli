(** NIDS configuration. *)

type t = {
  honeypots : Ipaddr.t list;  (** registered decoy addresses *)
  unused : Ipaddr.prefix list;  (** declared unused address space *)
  scan_threshold : int;  (** distinct unused addresses before flagging *)
  classification_enabled : bool;
      (** [false] reproduces the paper's §5.4 mode: every packet is
          analyzed *)
  extraction_enabled : bool;
      (** [false] reproduces the reference-[5] style whole-payload
          analysis used for the efficiency comparison *)
  templates : Template.t list;
  min_payload : int;  (** payloads shorter than this are never analyzed *)
  reassemble : bool;
      (** track TCP flows from suspicious sources and analyze the
          reassembled stream, defeating exploit delivery that is split
          across segments *)
  verdict_cache_size : int;
      (** bound on the payload-keyed verdict cache that short-circuits
          extract+disassemble+match for repeated payloads (the worm
          outbreak shape); [0] disables caching.  Cached and uncached
          pipelines produce identical alerts. *)
}

val default : t
(** Empty honeypot/unused lists, classification and extraction on, the
    full {!Template_lib.default_set}, [min_payload = 16],
    [verdict_cache_size = 4096]. *)

val with_honeypots : Ipaddr.t list -> t -> t
val with_unused : Ipaddr.prefix list -> t -> t
val with_templates : Template.t list -> t -> t
val with_classification : bool -> t -> t
val with_extraction : bool -> t -> t
val with_reassembly : bool -> t -> t

val with_verdict_cache : int -> t -> t
(** Size the verdict cache; [0] disables it. *)
