(** NIDS configuration. *)

type t = {
  honeypots : Ipaddr.t list;  (** registered decoy addresses *)
  unused : Ipaddr.prefix list;  (** declared unused address space *)
  scan_threshold : int;  (** distinct unused addresses before flagging *)
  classification_enabled : bool;
      (** [false] reproduces the paper's §5.4 mode: every packet is
          analyzed *)
  extraction_enabled : bool;
      (** [false] reproduces the reference-[5] style whole-payload
          analysis used for the efficiency comparison *)
  templates : Template.t list;
  min_payload : int;  (** payloads shorter than this are never analyzed *)
  reassemble : bool;
      (** track TCP flows from suspicious sources and analyze the
          reassembled stream, defeating exploit delivery that is split
          across segments *)
}

val default : t
(** Empty honeypot/unused lists, classification and extraction on, the
    full {!Template_lib.default_set}, [min_payload = 16]. *)

val with_honeypots : Ipaddr.t list -> t -> t
val with_unused : Ipaddr.prefix list -> t -> t
val with_templates : Template.t list -> t -> t
val with_classification : bool -> t -> t
val with_extraction : bool -> t -> t
val with_reassembly : bool -> t -> t
