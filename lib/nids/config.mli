(** NIDS configuration.

    Build configurations by piping {!default} through the [with_*] smart
    constructors, then hand them to {!Pipeline.create} (which applies
    {!validate}).  The record stays public for this release so existing
    pattern-matching code keeps working; prefer the builders — direct
    record construction will lose that option when a field is next
    added. *)

type t = {
  honeypots : Ipaddr.t list;  (** registered decoy addresses *)
  unused : Ipaddr.prefix list;  (** declared unused address space *)
  scan_threshold : int;  (** distinct unused addresses before flagging *)
  classification_enabled : bool;
      (** [false] reproduces the paper's §5.4 mode: every packet is
          analyzed *)
  extraction_enabled : bool;
      (** [false] reproduces the reference-[5] style whole-payload
          analysis used for the efficiency comparison *)
  templates : Template.t list;
  min_payload : int;  (** payloads shorter than this are never analyzed *)
  reassemble : bool;
      (** track TCP flows from suspicious sources and analyze the
          reassembled stream, defeating exploit delivery that is split
          across segments *)
  verdict_cache_size : int;
      (** bound on the payload-keyed verdict cache that short-circuits
          extract+disassemble+match for repeated payloads (the worm
          outbreak shape); [0] disables caching.  Cached and uncached
          pipelines produce identical alerts. *)
  flow_alert_cache_size : int;
      (** bound on the per-flow alert-dedup table used in stream mode
          (LRU over flow-key^template tags); evictions are counted as
          [sanids_flow_alerted_evictions_total] *)
  stream_queue_capacity : int;
      (** bound on each worker's admission queue in
          {!Parallel.process_seq} — the memory ceiling of stream mode *)
  stream_drop_policy : Bqueue.policy;
      (** what a full admission queue does to new packets: shed the
          newest, shed the oldest, or apply backpressure ([Block], the
          lossless default).  Shed packets are counted as
          [sanids_shed_total{policy}]. *)
  analysis_budget : Budget.limits option;
      (** per-packet work ceiling for the analysis path (bytes
          extracted, instructions decoded, matcher steps, wall-clock
          deadline); [None] (the default) analyzes without bounds.
          Budget-truncated packets are counted as
          [sanids_budget_truncated_total{reason}]. *)
  breaker : Breaker.config option;
      (** per-template circuit breaking: a template whose step cap trips
          on consecutive packets is excluded for a cooldown ([None]
          disables breaking).  The step cap is the budget's
          [max_match_steps] when a budget is set, else
          {!Budget.default_limits}'s. *)
  degrade : bool;
      (** when analysis is cut short (budget trip) or templates are
          held open by the breaker, fall back to a cheap baseline
          pattern pass over the affected frames instead of silently
          reporting less; degraded packets are counted as
          [sanids_degraded_total{stage}] and their alerts carry
          {!Alert.t.degraded}. *)
  confirm : Sanids_confirm.Confirm.config option;
      (** dynamic confirmation: run every matcher hit in the sandboxed
          emulator under these budgets and demote verdicts the run
          refutes ([None], the default, keeps the pipeline pristine).
          Outcomes are counted as [sanids_confirm_total{outcome}] and
          timed in the [confirm] stage histogram; refuted matches are
          dropped from alerting, and only confirmed analyses enter the
          verdict cache. *)
  static_refute : bool;
      (** abstract pre-stage for confirmation: before each emulator run,
          abstractly execute the hit over the
          {!Sanids_ir.Absint.V} interval domain under the same budgets;
          hits the analysis proves the emulator must refute become
          {!Sanids_confirm.Confirm.Statically_refuted} without ever
          entering the emulator (counted under
          [sanids_confirm_total{outcome="static_refuted"}] and timed in
          the [static_refute] stage histogram).  Sound: a hit the
          emulator could confirm, or leave inconclusive, is never
          statically refuted.  Requires [confirm] to be set. *)
}

val default : t
(** Empty honeypot/unused lists, classification and extraction on, the
    full {!Template_lib.default_set}, [min_payload = 16],
    [verdict_cache_size = 4096], [flow_alert_cache_size = 65536],
    [stream_queue_capacity = 8192] with [Bqueue.Block] (stream mode is
    lossless unless a drop policy is chosen). *)

val with_honeypots : Ipaddr.t list -> t -> t
val with_unused : Ipaddr.prefix list -> t -> t
val with_templates : Template.t list -> t -> t
val with_classification : bool -> t -> t
val with_extraction : bool -> t -> t
val with_reassembly : bool -> t -> t

val with_verdict_cache : int -> t -> t
(** Size the verdict cache; [0] disables it. *)

val with_scan_threshold : int -> t -> t
val with_min_payload : int -> t -> t
val with_flow_alert_cache : int -> t -> t
val with_stream_queue : int -> t -> t
val with_stream_policy : Bqueue.policy -> t -> t
val with_budget : Budget.limits option -> t -> t
val with_breaker : Breaker.config option -> t -> t
val with_degrade : bool -> t -> t

val with_confirm : Sanids_confirm.Confirm.config option -> t -> t
(** Enable (or disable with [None]) the dynamic-confirmation stage. *)

val with_static_refute : bool -> t -> t
(** Toggle the abstract refutation pre-stage (needs confirmation on). *)

val of_spec : string -> (t -> t, string) result
(** [of_spec "key=value"] parses one configuration assignment into an
    updater — the single grammar behind the CLI's
    [--budget]/[--breaker]/[--drop-policy] flags and the daemon's
    hot-reload files.  Splitting happens on the {e first} ['='], so the
    value of a [budget]/[breaker] key is the subsystem's own comma spec
    unchanged ([budget=bytes=65536,insns=100,steps=100000,deadline=0]).
    Keys: [honeypot] and [unused] (repeatable, appending), [classify],
    [extract], [reassemble], [degrade] (booleans), [scan_threshold],
    [min_payload], [verdict_cache], [flow_alert_cache], [queue]
    (integers), [drop_policy], [budget], [breaker], [confirm]
    (sub-specs; [confirm=default] enables confirmation with the
    defaults), [static_refute] (boolean).  Errors
    carry the same typed ["key: ..."] messages as the sub-parsers, so a
    bad flag and a rejected reload read identically. *)

val of_lines : string list -> (t -> t, string) result
(** {!of_spec} over a list of lines ([#] comments and blank lines
    skipped), composed left to right; errors are prefixed with
    ["line N: "]. *)

val of_file : string -> (t -> t, string) result
(** {!of_lines} over a file's contents, errors prefixed with the path —
    what [sanids serve --config-file] loads at start and re-reads on
    every reload request (gated by {!lint} before swapping in). *)

val lint : t -> Sanids_staticlint.Finding.t list
(** Configuration findings, subject ["config"].

    Codes (stable):
    - [SL201] {e error} — an out-of-range core value: negative
      [verdict_cache_size], non-positive [scan_threshold],
      [flow_alert_cache_size] or [stream_queue_capacity], negative
      [min_payload].
    - [SL202] {e error} — invalid budget limits
      ({!Budget.validate_limits}).
    - [SL203] {e error} — invalid breaker settings
      ({!Breaker.validate_config}).
    - [SL204] {e error} — [degrade] without any mechanism (budget or
      breaker) that could trigger degradation.
    - [SL205] {e warn} — a verdict cache too small to be useful
      (between 1 and 63 entries).
    - [SL206] {e warn} — a budget or breaker without [degrade]:
      truncated packets are silently under-analyzed.
    - [SL207] {e error} — invalid confirmation settings
      ({!Sanids_confirm.Confirm.validate_config}).
    - [SL208] {e warn} — a confirm step budget above 1M: a hostile
      packet can hold the analysis thread for the whole budget.
    - [SL209] {e error} — [static_refute] without [confirm]: the
      pre-stage has no verdict stage to short-circuit. *)

val validate : t -> (t, string) result
(** Reject configurations that would silently misbehave rather than
    letting them: the first [Error]-severity {!lint} finding, as its
    bare message.  Warnings do not reject. *)
