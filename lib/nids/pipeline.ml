module Classifier = Sanids_classify.Classifier
module Extractor = Sanids_extract.Extractor

let log_src = Logs.Src.create "sanids.pipeline" ~doc:"semantic NIDS pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  cfg : Config.t;
  classifier : Classifier.t;
  stats : Stats.t;
  reasm : Flow.reassembler option;
  flow_alerted : (string, unit) Hashtbl.t;
      (* flow-key ^ template pairs already alerted, for stream mode *)
  verdicts : (string, (Extractor.frame * Matcher.result) list) Lru.t option;
      (* analyzed buffer -> deduplicated matches; keys are the full buffer
         bytes, so a hit is exact content equality, never a hash collision *)
}

let create (cfg : Config.t) =
  {
    cfg;
    classifier =
      Classifier.create ~honeypots:cfg.Config.honeypots ~unused:cfg.Config.unused
        ~scan_threshold:cfg.Config.scan_threshold
        ~enabled:cfg.Config.classification_enabled ();
    stats = Stats.create ();
    reasm = (if cfg.Config.reassemble then Some (Flow.create_reassembler ()) else None);
    flow_alerted = Hashtbl.create 64;
    verdicts =
      (if cfg.Config.verdict_cache_size > 0 then
         Some (Lru.create cfg.Config.verdict_cache_size)
       else None);
  }

let frames_of t payload =
  if t.cfg.Config.extraction_enabled then Extractor.extract payload
  else
    [ { Extractor.off = 0; data = payload; origin = Extractor.Raw_binary } ]

(* Template scan over one frame, folding the matcher's decode-memo and
   budget counters into the pipeline statistics. *)
let scan_frame t data =
  let ss = Matcher.scan_stats () in
  let results = Matcher.scan ~stats:ss ~templates:t.cfg.Config.templates data in
  t.stats.Stats.decode_memo_hits <-
    t.stats.Stats.decode_memo_hits + ss.Matcher.decode_hits;
  t.stats.Stats.decode_memo_misses <-
    t.stats.Stats.decode_memo_misses + ss.Matcher.decode_misses;
  t.stats.Stats.scan_budget_exhausted <-
    t.stats.Stats.scan_budget_exhausted + ss.Matcher.budget_exhausted;
  results

(* Analysis stages shared by live processing and the timing harness. *)
let analyze_frames t payload =
  let gate =
    (not t.cfg.Config.extraction_enabled) || Extractor.suspicious payload
  in
  if not gate then []
  else begin
    t.stats.Stats.prefilter_hits <- t.stats.Stats.prefilter_hits + 1;
    List.concat_map
      (fun (frame : Extractor.frame) ->
        t.stats.Stats.frames <- t.stats.Stats.frames + 1;
        t.stats.Stats.frame_bytes <-
          t.stats.Stats.frame_bytes + String.length frame.Extractor.data;
        List.map (fun r -> (frame, r)) (scan_frame t frame.Extractor.data))
      (frames_of t payload)
  end

let dedup_by_template results =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (_, (r : Matcher.result)) ->
      if Hashtbl.mem seen r.Matcher.template then false
      else begin
        Hashtbl.add seen r.Matcher.template ();
        true
      end)
    results

(* Full analysis of one buffer, short-circuited by the verdict cache.
   Analysis is a pure function of the buffer bytes (extraction, trace
   recovery and matching read nothing else), so replaying a cached result
   for byte-identical buffers — the worm-outbreak shape — cannot change
   any verdict. *)
let analyze_buffer t buffer =
  match t.verdicts with
  | None -> dedup_by_template (analyze_frames t buffer)
  | Some cache -> (
      match Lru.find cache buffer with
      | Some results ->
          t.stats.Stats.verdict_cache_hits <-
            t.stats.Stats.verdict_cache_hits + 1;
          results
      | None ->
          t.stats.Stats.verdict_cache_misses <-
            t.stats.Stats.verdict_cache_misses + 1;
          let results = dedup_by_template (analyze_frames t buffer) in
          let before = Lru.evictions cache in
          Lru.add cache buffer results;
          t.stats.Stats.verdict_cache_evictions <-
            t.stats.Stats.verdict_cache_evictions
            + (Lru.evictions cache - before);
          results)

(* In stream mode the analyzed buffer is the flow's reassembled prefix and
   alerts deduplicate per flow; otherwise it is the packet payload. *)
let buffer_for t packet payload =
  match t.reasm with
  | Some r when Packet.is_tcp packet && payload <> "" -> (
      match Flow.push r packet with
      | Some stream -> Some (stream, Flow.key_of_packet packet)
      | None -> None (* waiting for a gap to fill; nothing new to analyze *))
  | Some _ | None -> Some (payload, None)

let process_packet t packet =
  t.stats.Stats.packets <- t.stats.Stats.packets + 1;
  let payload = Packet.payload packet in
  t.stats.Stats.bytes <- t.stats.Stats.bytes + String.length payload;
  match Classifier.classify t.classifier packet with
  | Classifier.Benign -> []
  | Classifier.Suspicious reason -> (
      t.stats.Stats.classified_suspicious <- t.stats.Stats.classified_suspicious + 1;
      Log.debug (fun m ->
          m "suspicious packet from %a (%s), %d payload bytes" Ipaddr.pp
            (Packet.src packet)
            (Classifier.reason_to_string reason)
            (String.length payload));
      match buffer_for t packet payload with
      | None -> []
      | Some (buffer, flow_key) ->
          if String.length buffer < t.cfg.Config.min_payload then []
          else begin
            let t0 = Sys.time () in
            let results = analyze_buffer t buffer in
            t.stats.Stats.analysis_seconds <-
              t.stats.Stats.analysis_seconds +. (Sys.time () -. t0);
            let fresh (result : Matcher.result) =
              match flow_key with
              | None -> true
              | Some key ->
                  let tag =
                    Flow.key_to_string key ^ "|" ^ result.Matcher.template
                  in
                  if Hashtbl.mem t.flow_alerted tag then false
                  else begin
                    Hashtbl.add t.flow_alerted tag ();
                    true
                  end
            in
            let alerts =
              List.filter_map
                (fun (frame, result) ->
                  if fresh result then
                    Some (Alert.make ~packet ~reason ~frame ~result)
                  else None)
                results
            in
            t.stats.Stats.alerts <- t.stats.Stats.alerts + List.length alerts;
            List.iter
              (fun a -> Log.info (fun m -> m "%s" (Alert.to_line a)))
              alerts;
            alerts
          end)

let process_packets t packets = List.concat_map (process_packet t) packets

let process_pcap t (file : Sanids_pcap.Pcap.file) =
  List.concat_map
    (fun r -> match r with Ok p -> process_packet t p | Error _ -> [])
    (Sanids_pcap.Pcap.to_packets file)

let analyze_payload t payload =
  let t0 = Sys.time () in
  let results = analyze_buffer t payload in
  t.stats.Stats.analysis_seconds <-
    t.stats.Stats.analysis_seconds +. (Sys.time () -. t0);
  List.map snd results

let stats t = t.stats
let config t = t.cfg
