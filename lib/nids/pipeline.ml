module Classifier = Sanids_classify.Classifier
module Extractor = Sanids_extract.Extractor
module Obs = Sanids_obs

let log_src = Logs.Src.create "sanids.pipeline" ~doc:"semantic NIDS pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type verdict = {
  frame : Extractor.frame;
  match_ : Matcher.result;
  cached : bool;  (* served from the verdict cache *)
}

(* Pre-resolved registry handles for the per-packet hot path. *)
type counters = {
  packets : Obs.Registry.counter;
  bytes : Obs.Registry.counter;
  suspicious : Obs.Registry.counter;
  prefilter_hits : Obs.Registry.counter;
  frames : Obs.Registry.counter;
  frame_bytes : Obs.Registry.counter;
  alerts : Obs.Registry.counter;
  vcache_hits : Obs.Registry.counter;
  vcache_misses : Obs.Registry.counter;
  vcache_evictions : Obs.Registry.counter;
  flow_evictions : Obs.Registry.counter;
}

type t = {
  cfg : Config.t;
  classifier : Classifier.t;
  reg : Obs.Registry.t;
  tracer : Obs.Span.tracer option;
  m : counters;
  vcache_entries : Obs.Registry.gauge;
  flow_entries : Obs.Registry.gauge;
  reasm : Flow.reassembler option;
  flow_alerted : (string, unit) Lru.t;
      (* flow-key ^ template pairs already alerted, for stream mode;
         bounded so long replays cannot grow it without limit *)
  verdicts : (string, verdict list) Lru.t option;
      (* analyzed buffer -> deduplicated matches; keys are the full buffer
         bytes, so a hit is exact content equality, never a hash collision *)
}

let counters_of reg =
  let c name help = Obs.Registry.counter reg ~help name in
  {
    packets = c "sanids_packets_total" "packets processed";
    bytes = c "sanids_bytes_total" "payload bytes processed";
    suspicious = c "sanids_classified_suspicious_total" "packets classified suspicious";
    prefilter_hits = c "sanids_prefilter_hits_total" "payloads past the cheap suspicion gate";
    frames = c "sanids_frames_total" "binary frames handed to the disassembler";
    frame_bytes = c "sanids_frame_bytes_total" "bytes handed to the disassembler";
    alerts = c "sanids_alerts_total" "alerts raised";
    vcache_hits = c "sanids_verdict_cache_hits_total" "analyses served from the verdict cache";
    vcache_misses = c "sanids_verdict_cache_misses_total" "analyses that ran in full";
    vcache_evictions = c "sanids_verdict_cache_evictions_total" "verdict cache capacity evictions";
    flow_evictions = c "sanids_flow_alerted_evictions_total" "flow alert-dedup table evictions";
  }

let create ?tracer (cfg : Config.t) =
  let cfg =
    match Config.validate cfg with
    | Ok cfg -> cfg
    | Error msg -> invalid_arg ("Pipeline.create: " ^ msg)
  in
  let reg = Obs.Registry.create () in
  {
    cfg;
    classifier =
      Classifier.create ~metrics:reg ~honeypots:cfg.Config.honeypots
        ~unused:cfg.Config.unused ~scan_threshold:cfg.Config.scan_threshold
        ~enabled:cfg.Config.classification_enabled ();
    reg;
    tracer;
    m = counters_of reg;
    vcache_entries =
      Obs.Registry.gauge reg ~help:"verdict cache occupancy"
        "sanids_verdict_cache_entries";
    flow_entries =
      Obs.Registry.gauge reg ~help:"flow alert-dedup table occupancy"
        "sanids_flow_alerted_entries";
    reasm = (if cfg.Config.reassemble then Some (Flow.create_reassembler ()) else None);
    flow_alerted = Lru.create cfg.Config.flow_alert_cache_size;
    verdicts =
      (if cfg.Config.verdict_cache_size > 0 then
         Some (Lru.create cfg.Config.verdict_cache_size)
       else None);
  }

let span t name f = Obs.Span.with_ ?tracer:t.tracer t.reg name f

let frames_of t payload =
  if t.cfg.Config.extraction_enabled then
    span t "extract" (fun () -> Extractor.extract ~metrics:t.reg payload)
  else
    [ { Extractor.off = 0; data = payload; origin = Extractor.Raw_binary } ]

(* Template scan over one frame; the matcher accumulates its decode-memo
   and budget counters straight into the pipeline registry. *)
let scan_frame t data =
  span t "match" (fun () ->
      Matcher.scan ~metrics:t.reg ~templates:t.cfg.Config.templates data)

(* Analysis stages shared by live processing and the timing harness. *)
let analyze_frames t payload =
  let gate =
    (not t.cfg.Config.extraction_enabled) || Extractor.suspicious payload
  in
  if not gate then []
  else begin
    Obs.Registry.incr t.m.prefilter_hits;
    List.concat_map
      (fun (frame : Extractor.frame) ->
        Obs.Registry.incr t.m.frames;
        Obs.Registry.add t.m.frame_bytes (String.length frame.Extractor.data);
        List.map
          (fun match_ -> { frame; match_; cached = false })
          (scan_frame t frame.Extractor.data))
      (frames_of t payload)
  end

let dedup_by_template verdicts =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v.match_.Matcher.template then false
      else begin
        Hashtbl.add seen v.match_.Matcher.template ();
        true
      end)
    verdicts

(* Full analysis of one buffer, short-circuited by the verdict cache.
   Analysis is a pure function of the buffer bytes (extraction, trace
   recovery and matching read nothing else), so replaying a cached result
   for byte-identical buffers — the worm-outbreak shape — cannot change
   any verdict. *)
let analyze_uncached t buffer =
  match t.verdicts with
  | None -> dedup_by_template (analyze_frames t buffer)
  | Some cache -> (
      match Lru.find cache buffer with
      | Some verdicts ->
          Obs.Registry.incr t.m.vcache_hits;
          List.map (fun v -> { v with cached = true }) verdicts
      | None ->
          Obs.Registry.incr t.m.vcache_misses;
          let verdicts = dedup_by_template (analyze_frames t buffer) in
          let before = Lru.evictions cache in
          Lru.add cache buffer verdicts;
          Obs.Registry.add t.m.vcache_evictions (Lru.evictions cache - before);
          verdicts)

let analyze t buffer = span t "analyze" (fun () -> analyze_uncached t buffer)

(* In stream mode the analyzed buffer is the flow's reassembled prefix and
   alerts deduplicate per flow; otherwise it is the packet payload. *)
let buffer_for t packet payload =
  match t.reasm with
  | Some r when Packet.is_tcp packet && payload <> "" -> (
      match Flow.push r packet with
      | Some stream -> Some (stream, Flow.key_of_packet packet)
      | None -> None (* waiting for a gap to fill; nothing new to analyze *))
  | Some _ | None -> Some (payload, None)

let process_packet t packet =
  Obs.Registry.incr t.m.packets;
  let payload = Packet.payload packet in
  Obs.Registry.add t.m.bytes (String.length payload);
  match span t "classify" (fun () -> Classifier.classify t.classifier packet) with
  | Classifier.Benign -> []
  | Classifier.Suspicious reason -> (
      Obs.Registry.incr t.m.suspicious;
      Log.debug (fun m ->
          m "suspicious packet from %a (%s), %d payload bytes" Ipaddr.pp
            (Packet.src packet)
            (Classifier.reason_to_string reason)
            (String.length payload));
      match buffer_for t packet payload with
      | None -> []
      | Some (buffer, flow_key) ->
          if String.length buffer < t.cfg.Config.min_payload then []
          else begin
            let verdicts = analyze t buffer in
            let fresh (v : verdict) =
              match flow_key with
              | None -> true
              | Some key -> (
                  let tag =
                    Flow.key_to_string key ^ "|" ^ v.match_.Matcher.template
                  in
                  match Lru.find t.flow_alerted tag with
                  | Some () -> false
                  | None ->
                      let before = Lru.evictions t.flow_alerted in
                      Lru.add t.flow_alerted tag ();
                      Obs.Registry.add t.m.flow_evictions
                        (Lru.evictions t.flow_alerted - before);
                      true)
            in
            let alerts =
              List.filter_map
                (fun v ->
                  if fresh v then
                    Some (Alert.make ~packet ~reason ~frame:v.frame ~result:v.match_)
                  else None)
                verdicts
            in
            Obs.Registry.add t.m.alerts (List.length alerts);
            List.iter
              (fun a -> Log.info (fun m -> m "%s" (Alert.to_line a)))
              alerts;
            alerts
          end)

let process_packets t packets = List.concat_map (process_packet t) packets

let process_pcap t (file : Sanids_pcap.Pcap.file) =
  List.concat_map
    (fun r -> match r with Ok p -> process_packet t p | Error _ -> [])
    (Sanids_pcap.Pcap.to_packets file)

let analyze_payload t payload = List.map (fun v -> v.match_) (analyze t payload)

let registry t = t.reg

let snapshot t =
  (* occupancy gauges are sampled, not event-driven *)
  Obs.Registry.set_gauge t.vcache_entries
    (match t.verdicts with
    | Some c -> float_of_int (Lru.length c)
    | None -> 0.0);
  Obs.Registry.set_gauge t.flow_entries (float_of_int (Lru.length t.flow_alerted));
  Obs.Registry.snapshot t.reg

let stats t = Stats.of_snapshot (snapshot t)
let config t = t.cfg
