module Classifier = Sanids_classify.Classifier
module Extractor = Sanids_extract.Extractor
module Obs = Sanids_obs
module Confirm = Sanids_confirm.Confirm

let log_src = Logs.Src.create "sanids.pipeline" ~doc:"semantic NIDS pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type verdict = {
  frame : Extractor.frame;
  match_ : Matcher.result;
  cached : bool;  (* served from the verdict cache *)
  degraded : bool;  (* produced by the baseline fallback pass *)
  confirmation : Confirm.outcome option;
      (* what the dynamic-confirmation run concluded; [None] when
         confirmation is off or the verdict is degraded (fabricated
         entry offsets are not worth executing) *)
}

type analysis = {
  verdicts : verdict list;
  outcome : Budget.outcome;
  degraded : bool;
  breaker_open : string list;
  tripped : string list;
}

let no_analysis =
  {
    verdicts = [];
    outcome = Budget.Complete;
    degraded = false;
    breaker_open = [];
    tripped = [];
  }

(* Degraded fallback: an Aho–Corasick pass over the templates' literal
   [data] patterns (conjunction per template, like the signature
   baseline).  Built once; only templates carrying data patterns can be
   recovered this way. *)
type fallback = {
  ac : Sanids_baseline.Aho_corasick.t;
  per_template : (string * string list) list;
}

(* Pre-resolved registry handles for the per-packet hot path. *)
type counters = {
  packets : Obs.Registry.counter;
  bytes : Obs.Registry.counter;
  suspicious : Obs.Registry.counter;
  prefilter_hits : Obs.Registry.counter;
  frames : Obs.Registry.counter;
  frame_bytes : Obs.Registry.counter;
  alerts : Obs.Registry.counter;
  vcache_hits : Obs.Registry.counter;
  vcache_misses : Obs.Registry.counter;
  vcache_evictions : Obs.Registry.counter;
  flow_evictions : Obs.Registry.counter;
}

(* Stage timers, resolved once: Span.with_ re-derives the metric name
   and help string per call, which the per-packet path cannot afford. *)
type stages = {
  st_classify : Obs.Span.stage;
  st_extract : Obs.Span.stage;
  st_match : Obs.Span.stage;
  st_static : Obs.Span.stage;
  st_confirm : Obs.Span.stage;
  st_analyze : Obs.Span.stage;
}

type t = {
  cfg : Config.t;
  classifier : Classifier.t;
  reg : Obs.Registry.t;
  tracer : Obs.Span.tracer option;
  m : counters;
  st : stages;
  vcache_entries : Obs.Registry.gauge;
  flow_entries : Obs.Registry.gauge;
  breaker : Breaker.t option;
  fallback : fallback option;
  reasm : Flow.reassembler option;
  flow_alerted : (string, unit) Lru.t;
      (* flow-key ^ template pairs already alerted, for stream mode;
         bounded so long replays cannot grow it without limit *)
  verdicts : (string, verdict list) Lru.t option;
      (* analyzed buffer -> deduplicated matches; keys are the full buffer
         bytes, so a hit is exact content equality, never a hash collision *)
}

let counters_of reg =
  let c name help = Obs.Registry.counter reg ~help name in
  {
    packets = c "sanids_packets_total" "packets processed";
    bytes = c "sanids_bytes_total" "payload bytes processed";
    suspicious = c "sanids_classified_suspicious_total" "packets classified suspicious";
    prefilter_hits = c "sanids_prefilter_hits_total" "payloads past the cheap suspicion gate";
    frames = c "sanids_frames_total" "binary frames handed to the disassembler";
    frame_bytes = c "sanids_frame_bytes_total" "bytes handed to the disassembler";
    alerts = c "sanids_alerts_total" "alerts raised";
    vcache_hits = c "sanids_verdict_cache_hits_total" "analyses served from the verdict cache";
    vcache_misses = c "sanids_verdict_cache_misses_total" "analyses that ran in full";
    vcache_evictions = c "sanids_verdict_cache_evictions_total" "verdict cache capacity evictions";
    flow_evictions = c "sanids_flow_alerted_evictions_total" "flow alert-dedup table evictions";
  }

let distinct_names templates =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (tp : Template.t) ->
      if Hashtbl.mem seen tp.Template.name then None
      else begin
        Hashtbl.add seen tp.Template.name ();
        Some tp.Template.name
      end)
    templates

let build_fallback templates =
  let per_template =
    List.filter_map
      (fun (tp : Template.t) ->
        if tp.Template.data = [] then None
        else Some (tp.Template.name, tp.Template.data))
      templates
  in
  if per_template = [] then None
  else
    let pats =
      List.sort_uniq compare (List.concat_map snd per_template)
    in
    Some
      {
        ac = Sanids_baseline.Aho_corasick.build (List.map (fun p -> (p, p)) pats);
        per_template;
      }

let create ?tracer (cfg : Config.t) =
  let cfg =
    match Config.validate cfg with
    | Ok cfg -> cfg
    | Error msg -> invalid_arg ("Pipeline.create: " ^ msg)
  in
  let reg = Obs.Registry.create () in
  {
    cfg;
    classifier =
      Classifier.create ~metrics:reg ~honeypots:cfg.Config.honeypots
        ~unused:cfg.Config.unused ~scan_threshold:cfg.Config.scan_threshold
        ~enabled:cfg.Config.classification_enabled ();
    reg;
    tracer;
    m = counters_of reg;
    st =
      {
        st_classify = Obs.Span.stage reg "classify";
        st_extract = Obs.Span.stage reg "extract";
        st_match = Obs.Span.stage reg "match";
        st_static = Obs.Span.stage reg "static_refute";
        st_confirm = Obs.Span.stage reg "confirm";
        st_analyze = Obs.Span.stage reg "analyze";
      };
    vcache_entries =
      Obs.Registry.gauge reg ~help:"verdict cache occupancy"
        "sanids_verdict_cache_entries";
    flow_entries =
      Obs.Registry.gauge reg ~help:"flow alert-dedup table occupancy"
        "sanids_flow_alerted_entries";
    breaker =
      Option.map (fun bc -> Breaker.create ~metrics:reg bc) cfg.Config.breaker;
    fallback =
      (if cfg.Config.degrade then build_fallback cfg.Config.templates else None);
    reasm = (if cfg.Config.reassemble then Some (Flow.create_reassembler ()) else None);
    flow_alerted = Lru.create cfg.Config.flow_alert_cache_size;
    verdicts =
      (if cfg.Config.verdict_cache_size > 0 then
         Some (Lru.create cfg.Config.verdict_cache_size)
       else None);
  }

let span t st f = Obs.Span.time ?tracer:t.tracer st f

let frames_of t ?budget (payload : Slice.t) =
  if t.cfg.Config.extraction_enabled then
    span t t.st.st_extract (fun () -> Extractor.extract ?budget ~metrics:t.reg payload)
  else
    let frame =
      { Extractor.off = 0; data = payload; origin = Extractor.Raw_binary }
    in
    match budget with
    | Some b when not (Budget.take_bytes b (Slice.length payload)) -> []
    | Some _ | None -> [ frame ]

(* Template scan over one frame; the matcher accumulates its decode-memo
   and budget counters straight into the pipeline registry. *)
let scan_frame t ?budget ?step_cap ~templates data =
  span t t.st.st_match (fun () ->
      Matcher.scan_report_slice ?budget ?step_cap ~metrics:t.reg ~templates data)

let count_truncated t reason =
  Obs.Registry.incr
    (Obs.Registry.counter t.reg
       ~help:"analyses cut short by the per-packet budget"
       ~labels:[ ("reason", Budget.reason_to_string reason) ]
       "sanids_budget_truncated_total")

let count_degraded t stage =
  Obs.Registry.incr
    (Obs.Registry.counter t.reg
       ~help:"analyses that fell back to the degraded baseline pass"
       ~labels:[ ("stage", stage) ]
       "sanids_degraded_total")

(* Registered lazily per outcome label, like the truncation/degradation
   counters: a confirmation-off pipeline exports no confirm series. *)
let count_confirm t outcome =
  Obs.Registry.incr
    (Obs.Registry.counter t.reg ~help:"dynamic-confirmation outcomes"
       ~labels:[ ("outcome", Confirm.label outcome) ]
       "sanids_confirm_total")

(* The second verdict stage: execute each (non-degraded) match in the
   sandboxed emulator, seeded from its structured evidence — the frame's
   bytes at code_base, entry at the matched offset.  Degraded verdicts
   carry fabricated entries and are left unconfirmed. *)
let confirm_verdicts t verdicts =
  match t.cfg.Config.confirm with
  | None -> verdicts
  | Some config ->
      span t t.st.st_confirm (fun () ->
          List.map
            (fun (v : verdict) ->
              if v.degraded then v
              else begin
                let ev = Matcher.evidence v.match_ in
                let code = Slice.to_string v.frame.Extractor.data in
                let entry = ev.Matcher.ev_entry in
                (* abstract pre-stage: when it proves the emulator must
                   refute, skip the emulator entirely *)
                let refutation =
                  if t.cfg.Config.static_refute then
                    span t t.st.st_static (fun () ->
                        Sanids_confirm.Static_refute.run ~config ~code ~entry ())
                  else None
                in
                let outcome =
                  match refutation with
                  | Some reason -> Confirm.Statically_refuted reason
                  | None -> Confirm.run ~config ~code ~entry ()
                in
                count_confirm t outcome;
                { v with confirmation = Some outcome }
              end)
            verdicts)

(* The per-template step cap only exists to feed the breaker; without a
   breaker the shared budget (if any) is the sole bound, exactly as
   before this layer existed. *)
let step_cap_of t =
  match t.breaker with
  | None -> None
  | Some _ ->
      Some
        (match t.cfg.Config.analysis_budget with
        | Some l -> l.Budget.max_match_steps
        | None -> Budget.default_limits.Budget.max_match_steps)

(* Conjunctive pattern matching for the degraded pass: a candidate
   template counts as (tentatively) present when every one of its data
   patterns occurs in the buffer. *)
let degraded_verdicts fb (buffer : Slice.t) candidates =
  if candidates = [] then []
  else begin
    let found = Hashtbl.create 8 in
    List.iter
      (fun (end_off, pat) ->
        if not (Hashtbl.mem found pat) then
          Hashtbl.add found pat (end_off - String.length pat + 1))
      (Sanids_baseline.Aho_corasick.search_slice fb.ac buffer);
    List.filter_map
      (fun name ->
        match List.assoc_opt name fb.per_template with
        | None | Some [] -> None
        | Some pats ->
            if List.for_all (Hashtbl.mem found) pats then
              let entry =
                List.fold_left
                  (fun acc p -> min acc (Hashtbl.find found p))
                  max_int pats
              in
              Some
                {
                  frame =
                    {
                      Extractor.off = 0;
                      data = buffer;
                      origin = Extractor.Raw_binary;
                    };
                  match_ =
                    {
                      Matcher.template = name;
                      entry;
                      offsets = [];
                      reg_bindings = [];
                      const_bindings = [];
                    };
                  cached = false;
                  degraded = true;
                  confirmation = None;
                }
            else None)
      candidates
  end

(* Analysis stages shared by live processing and the timing harness. *)
let analyze_frames t payload =
  let gate =
    (not t.cfg.Config.extraction_enabled) || Extractor.suspicious payload
  in
  if not gate then no_analysis
  else begin
    Obs.Registry.incr t.m.prefilter_hits;
    let budget = Option.map Budget.start t.cfg.Config.analysis_budget in
    let all_names = distinct_names t.cfg.Config.templates in
    let templates, excluded =
      match t.breaker with
      | None -> (t.cfg.Config.templates, [])
      | Some br ->
          let excluded = List.filter (fun n -> not (Breaker.admit br n)) all_names in
          ( List.filter
              (fun (tp : Template.t) ->
                not (List.mem tp.Template.name excluded))
              t.cfg.Config.templates,
            excluded )
    in
    let step_cap = step_cap_of t in
    let tripped = ref [] in
    let verdicts =
      List.concat_map
        (fun (frame : Extractor.frame) ->
          Obs.Registry.incr t.m.frames;
          Obs.Registry.add t.m.frame_bytes (Slice.length frame.Extractor.data);
          let report =
            scan_frame t ?budget ?step_cap ~templates frame.Extractor.data
          in
          tripped := report.Matcher.tripped @ !tripped;
          List.map
            (fun match_ ->
              { frame; match_; cached = false; degraded = false; confirmation = None })
            report.Matcher.results)
        (frames_of t ?budget payload)
    in
    let tripped = List.sort_uniq compare !tripped in
    (match t.breaker with
    | None -> ()
    | Some br ->
        List.iter
          (fun n ->
            if not (List.mem n excluded) then
              Breaker.record br n ~tripped:(List.mem n tripped))
          all_names;
        Breaker.tick br);
    let outcome =
      match budget with None -> Budget.Complete | Some b -> Budget.outcome b
    in
    (match outcome with
    | Budget.Truncated r -> count_truncated t r
    | Budget.Complete -> ());
    { verdicts; outcome; degraded = false; breaker_open = excluded; tripped }
  end

let dedup_by_template verdicts =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v.match_.Matcher.template then false
      else begin
        Hashtbl.add seen v.match_.Matcher.template ();
        true
      end)
    verdicts

(* One full (uncached) analysis of a buffer, degradation and
   confirmation included. *)
let analyze_core t buffer =
  let report = analyze_frames t buffer in
  let report = { report with verdicts = dedup_by_template report.verdicts } in
  let report =
    { report with verdicts = confirm_verdicts t report.verdicts }
  in
  let degraded_stage =
    if not t.cfg.Config.degrade then None
    else
      match report.outcome with
      | Budget.Truncated r -> Some (Budget.reason_to_string r)
      | Budget.Complete ->
          if report.breaker_open <> [] then Some "breaker" else None
  in
  match degraded_stage with
  | None -> report
  | Some stage ->
      count_degraded t stage;
      let extra =
        match t.fallback with
        | None -> []
        | Some fb ->
            let candidates =
              match report.outcome with
              | Budget.Truncated _ ->
                  (* the whole scan was cut short: every not-yet-matched
                     template gets the cheap pass *)
                  List.filter
                    (fun n ->
                      not
                        (List.exists
                           (fun v -> v.match_.Matcher.template = n)
                           report.verdicts))
                    (distinct_names t.cfg.Config.templates)
              | Budget.Complete -> report.breaker_open
            in
            degraded_verdicts fb buffer candidates
      in
      { report with verdicts = report.verdicts @ extra; degraded = true }

(* Full analysis of one buffer, short-circuited by the verdict cache.
   A pristine analysis (budget never tripped, no template abandoned, no
   breaker exclusion, no fallback) is a pure function of the buffer
   bytes, so replaying a cached result for byte-identical buffers — the
   worm-outbreak shape — cannot change any verdict.  Anything less than
   pristine is never cached: the next identical buffer deserves a fresh
   attempt under whatever fuel and breaker state then hold. *)
let analyze_uncached t (buffer : Slice.t) =
  match t.verdicts with
  | None -> analyze_core t buffer
  | Some cache -> (
      (* the cache is keyed on materialized bytes (content equality, not
         view identity) — free when the buffer is a whole view, and a
         cached buffer must own its bytes anyway *)
      let key = Slice.to_string buffer in
      match Lru.find cache key with
      | Some verdicts ->
          Obs.Registry.incr t.m.vcache_hits;
          {
            no_analysis with
            verdicts = List.map (fun v -> { v with cached = true }) verdicts;
          }
      | None ->
          Obs.Registry.incr t.m.vcache_misses;
          let report = analyze_core t buffer in
          (* with confirmation on, only analyses whose every verdict the
             emulator confirmed are replayable: refuted and inconclusive
             outcomes deserve a fresh run (and a refuted match must not
             be resurrected by a later cache hit) *)
          let confirm_cacheable =
            t.cfg.Config.confirm = None
            || List.for_all
                 (fun v ->
                   match v.confirmation with
                   | Some o -> Confirm.confirmed o
                   | None -> false)
                 report.verdicts
          in
          if
            report.outcome = Budget.Complete
            && (not report.degraded)
            && report.breaker_open = []
            && report.tripped = []
            && confirm_cacheable
          then begin
            let before = Lru.evictions cache in
            Lru.add cache key report.verdicts;
            Obs.Registry.add t.m.vcache_evictions (Lru.evictions cache - before)
          end;
          report)

let analyze_report_slice t buffer =
  span t t.st.st_analyze (fun () -> analyze_uncached t buffer)

let analyze_slice t buffer = (analyze_report_slice t buffer).verdicts
let analyze_report t buffer = analyze_report_slice t (Slice.of_string buffer)
let analyze t buffer = (analyze_report t buffer).verdicts

(* In stream mode the analyzed buffer is the flow's reassembled prefix and
   alerts deduplicate per flow; otherwise it is the packet payload. *)
let buffer_for t packet (payload : Slice.t) =
  match t.reasm with
  | Some r when Packet.is_tcp packet && not (Slice.is_empty payload) -> (
      match Flow.push r packet with
      | Some stream -> Some (Slice.of_string stream, Flow.key_of_packet packet)
      | None -> None (* waiting for a gap to fill; nothing new to analyze *))
  | Some _ | None -> Some (payload, None)

let process_packet t packet =
  Obs.Registry.incr t.m.packets;
  let payload = Packet.payload packet in
  Obs.Registry.add t.m.bytes (Slice.length payload);
  match span t t.st.st_classify (fun () -> Classifier.classify t.classifier packet) with
  | Classifier.Benign -> []
  | Classifier.Suspicious reason -> (
      Obs.Registry.incr t.m.suspicious;
      Log.debug (fun m ->
          m "suspicious packet from %a (%s), %d payload bytes" Ipaddr.pp
            (Packet.src packet)
            (Classifier.reason_to_string reason)
            (Slice.length payload));
      match buffer_for t packet payload with
      | None -> []
      | Some (buffer, flow_key) ->
          if Slice.length buffer < t.cfg.Config.min_payload then []
          else begin
            let verdicts = analyze_slice t buffer in
            let fresh (v : verdict) =
              match flow_key with
              | None -> true
              | Some key -> (
                  let tag =
                    Flow.key_to_string key ^ "|" ^ v.match_.Matcher.template
                  in
                  match Lru.find t.flow_alerted tag with
                  | Some () -> false
                  | None ->
                      let before = Lru.evictions t.flow_alerted in
                      Lru.add t.flow_alerted tag ();
                      Obs.Registry.add t.m.flow_evictions
                        (Lru.evictions t.flow_alerted - before);
                      true)
            in
            (* a match the emulator refuted was a false positive: demote
               it before it can claim a flow-dedup slot or alert *)
            let refuted v =
              match v.confirmation with
              | Some (Confirm.Refuted _ | Confirm.Statically_refuted _) -> true
              | Some _ | None -> false
            in
            let alerts =
              List.filter_map
                (fun v ->
                  if (not (refuted v)) && fresh v then
                    Some
                      (Alert.make ~degraded:v.degraded
                         ~confirmed:
                           (match v.confirmation with
                           | Some o -> Confirm.confirmed o
                           | None -> false)
                         ~packet ~reason ~frame:v.frame ~result:v.match_ ())
                  else None)
                verdicts
            in
            Obs.Registry.add t.m.alerts (List.length alerts);
            List.iter
              (fun a -> Log.info (fun m -> m "%s" (Alert.to_line a)))
              alerts;
            alerts
          end)

let process_packets t packets = List.concat_map (process_packet t) packets

let process_pcap t (file : Sanids_pcap.Pcap.file) =
  List.concat_map
    (fun r -> match r with Ok p -> process_packet t p | Error _ -> [])
    (Sanids_pcap.Pcap.to_packets file)

let analyze_payload t payload = List.map (fun v -> v.match_) (analyze t payload)

let registry t = t.reg

let snapshot t =
  (* occupancy gauges are sampled, not event-driven *)
  Obs.Registry.set_gauge t.vcache_entries
    (match t.verdicts with
    | Some c -> float_of_int (Lru.length c)
    | None -> 0.0);
  Obs.Registry.set_gauge t.flow_entries (float_of_int (Lru.length t.flow_alerted));
  Obs.Registry.snapshot t.reg

let stats t = Stats.of_snapshot (snapshot t)
let config t = t.cfg
