type t = {
  ts : float;
  src : Ipaddr.t;
  dst : Ipaddr.t;
  src_port : int;
  dst_port : int;
  template : string;
  reason : Sanids_classify.Classifier.reason;
  frame_off : int;
  frame_origin : Sanids_extract.Extractor.origin;
  detail : string;
  degraded : bool;
  confirmed : bool;
}

let make ?(degraded = false) ?(confirmed = false) ~packet ~reason ~frame ~result
    () =
  let src_port, dst_port =
    match Packet.ports packet with Some (s, d) -> (s, d) | None -> (0, 0)
  in
  {
    ts = packet.Packet.ts;
    src = Packet.src packet;
    dst = Packet.dst packet;
    src_port;
    dst_port;
    template = result.Matcher.template;
    reason;
    frame_off = frame.Sanids_extract.Extractor.off;
    frame_origin = frame.Sanids_extract.Extractor.origin;
    detail = Format.asprintf "%a" Matcher.pp_result result;
    degraded;
    confirmed;
  }

let pp ppf a =
  Format.fprintf ppf "[%.3f] ALERT %s %a:%d -> %a:%d (%s, frame@@%d %s)%s" a.ts
    a.template Ipaddr.pp a.src a.src_port Ipaddr.pp a.dst a.dst_port
    (Sanids_classify.Classifier.reason_to_string a.reason)
    a.frame_off
    (match a.frame_origin with
    | Sanids_extract.Extractor.Unicode_escape -> "unicode"
    | Sanids_extract.Extractor.Raw_binary -> "raw")
    (match (a.confirmed, a.degraded) with
    | true, _ -> " [confirmed]"
    | false, true -> " [degraded]"
    | false, false -> "")

let to_line a = Format.asprintf "%a" pp a
