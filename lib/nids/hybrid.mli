(** Hybrid semantic/syntactic operation — the engineering the paper's
    conclusion gestures at ("optimize our implementation so that it can
    run even faster").

    Semantic analysis is expensive; static matching is cheap.  The hybrid
    pipeline pools the payloads each template flags and, once a template
    has accumulated [pool_size] samples, runs Autograph/Polygraph-style
    signature inference over the pool.  A payload matching a deployed
    signature is alerted on the fast path without disassembly; everything
    else takes the full semantic path.  For campaigns with stable framing
    (Code Red II) the fast path takes over after a handful of instances;
    for fully polymorphic campaigns inference yields no usable tokens and
    the system keeps paying for semantics — measured in the test suite
    and bench. *)

type t

val create : ?pool_size:int -> Config.t -> t
(** [pool_size] (default 5) samples per template before inference. *)

val process_packet : t -> Packet.t -> Alert.t list
(** Alerts carry the originating template name whether they came from the
    fast path or the semantic path. *)

val process_packets : t -> Packet.t list -> Alert.t list

val deployed_signatures : t -> (string * Sanids_baseline.Siggen.t) list
(** Signatures inferred and in use, by template name. *)

val fast_path_hits : t -> int
(** Alerts that skipped semantic analysis entirely (the
    [sanids_hybrid_fast_path_total] counter, registered in the
    underlying pipeline's registry). *)

val stats : t -> Stats.t

val snapshot : t -> Sanids_obs.Snapshot.t
(** The underlying pipeline's snapshot, including the hybrid fast-path
    counter. *)
