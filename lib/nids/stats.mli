(** Per-stage pipeline counters and timings — a thin typed view computed
    from an observability snapshot ({!Sanids_obs.Snapshot.t}).

    The pipeline itself accumulates into a metrics registry; [t] exists
    so callers keep a stable record to read and a stable [pp] rendering.
    Aggregation happens on snapshots ({!Sanids_obs.Snapshot.merge}), not
    on this view. *)

type t = {
  packets : int;
  bytes : int;
  classified_suspicious : int;
  prefilter_hits : int;  (** payloads past the cheap suspicion gate *)
  frames : int;
  frame_bytes : int;  (** bytes handed to the disassembler *)
  alerts : int;
  analysis_seconds : float;
      (** wall time in extract+disassemble+match (the
          [sanids_stage_analyze_seconds] histogram's sum) *)
  verdict_cache_hits : int;
      (** analyses short-circuited by the payload verdict cache *)
  verdict_cache_misses : int;
  verdict_cache_evictions : int;
  decode_memo_hits : int;
      (** per-offset decodes served from the scan's instruction cache *)
  decode_memo_misses : int;
  scan_budget_exhausted : int;
      (** scans that ran out of work budget with templates still open *)
  ingest_errors : int;
      (** records rejected at the ingest boundary — the
          [sanids_ingest_errors_total{reason}] family summed over
          reasons *)
  shed : int;
      (** packets dropped at stream-mode admission — the
          [sanids_shed_total{policy}] family summed over policies *)
  worker_failures : int;
      (** packets abandoned because analysis raised inside a worker
          domain (the pipeline survived and kept its shard) *)
  budget_truncated : int;
      (** analyses cut short by the per-packet budget — the
          [sanids_budget_truncated_total{reason}] family summed over
          reasons *)
  degraded : int;
      (** analyses that fell back to the degraded baseline pass — the
          [sanids_degraded_total{stage}] family summed over stages *)
  breaker_open : int;
      (** circuit-breaker open transitions — the
          [sanids_breaker_open_total{template}] family summed over
          templates *)
  worker_restarts : int;
      (** stalled workers abandoned and respawned by the parallel
          watchdog *)
  confirmed : int;
      (** matches the dynamic-confirmation stage proved by execution
          (the [sanids_confirm_total{outcome}] family's
          [confirmed_decrypt] + [confirmed_syscall]) *)
  refuted : int;
      (** matches the emulator disproved — demoted false positives
          ([sanids_confirm_total{outcome="refuted"}]) *)
  static_refuted : int;
      (** matches the abstract pre-stage disproved without running the
          emulator — also demoted, and each one is an emulator call
          avoided ([sanids_confirm_total{outcome="static_refuted"}]) *)
  confirm_inconclusive : int;
      (** confirmation runs that ran out of budget or could not be
          seeded *)
}

val zero : t

val of_snapshot : Sanids_obs.Snapshot.t -> t
(** Project the [sanids_*] metrics of a snapshot into the typed view;
    absent metrics read as zero. *)

val decode_memo_ratio : t -> float
(** [decode_memo_hits / (hits + misses)]; [0.] when no decoding ran. *)

val pp : Format.formatter -> t -> unit
