(** Per-stage pipeline counters and timings. *)

type t = {
  mutable packets : int;
  mutable bytes : int;
  mutable classified_suspicious : int;
  mutable prefilter_hits : int;  (** payloads past the cheap suspicion gate *)
  mutable frames : int;
  mutable frame_bytes : int;  (** bytes handed to the disassembler *)
  mutable alerts : int;
  mutable analysis_seconds : float;  (** CPU time in extract+disassemble+match *)
}

val create : unit -> t
val reset : t -> unit
val pp : Format.formatter -> t -> unit
