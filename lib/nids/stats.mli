(** Per-stage pipeline counters and timings. *)

type t = {
  mutable packets : int;
  mutable bytes : int;
  mutable classified_suspicious : int;
  mutable prefilter_hits : int;  (** payloads past the cheap suspicion gate *)
  mutable frames : int;
  mutable frame_bytes : int;  (** bytes handed to the disassembler *)
  mutable alerts : int;
  mutable analysis_seconds : float;  (** CPU time in extract+disassemble+match *)
  mutable verdict_cache_hits : int;
      (** analyses short-circuited by the payload verdict cache *)
  mutable verdict_cache_misses : int;
  mutable verdict_cache_evictions : int;
  mutable decode_memo_hits : int;
      (** per-offset decodes served from the scan's instruction cache *)
  mutable decode_memo_misses : int;
  mutable scan_budget_exhausted : int;
      (** scans that ran out of work budget with templates still open *)
}

val create : unit -> t
val reset : t -> unit

val decode_memo_ratio : t -> float
(** [decode_memo_hits / (hits + misses)]; [0.] when no decoding ran. *)

val pp : Format.formatter -> t -> unit
