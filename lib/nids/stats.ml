type t = {
  mutable packets : int;
  mutable bytes : int;
  mutable classified_suspicious : int;
  mutable prefilter_hits : int;
  mutable frames : int;
  mutable frame_bytes : int;
  mutable alerts : int;
  mutable analysis_seconds : float;
}

let create () =
  {
    packets = 0;
    bytes = 0;
    classified_suspicious = 0;
    prefilter_hits = 0;
    frames = 0;
    frame_bytes = 0;
    alerts = 0;
    analysis_seconds = 0.0;
  }

let reset t =
  t.packets <- 0;
  t.bytes <- 0;
  t.classified_suspicious <- 0;
  t.prefilter_hits <- 0;
  t.frames <- 0;
  t.frame_bytes <- 0;
  t.alerts <- 0;
  t.analysis_seconds <- 0.0

let pp ppf t =
  Format.fprintf ppf
    "packets=%d bytes=%d suspicious=%d prefiltered=%d frames=%d frame_bytes=%d alerts=%d analysis=%.3fs"
    t.packets t.bytes t.classified_suspicious t.prefilter_hits t.frames
    t.frame_bytes t.alerts t.analysis_seconds
