type t = {
  mutable packets : int;
  mutable bytes : int;
  mutable classified_suspicious : int;
  mutable prefilter_hits : int;
  mutable frames : int;
  mutable frame_bytes : int;
  mutable alerts : int;
  mutable analysis_seconds : float;
  mutable verdict_cache_hits : int;
  mutable verdict_cache_misses : int;
  mutable verdict_cache_evictions : int;
  mutable decode_memo_hits : int;
  mutable decode_memo_misses : int;
  mutable scan_budget_exhausted : int;
}

let create () =
  {
    packets = 0;
    bytes = 0;
    classified_suspicious = 0;
    prefilter_hits = 0;
    frames = 0;
    frame_bytes = 0;
    alerts = 0;
    analysis_seconds = 0.0;
    verdict_cache_hits = 0;
    verdict_cache_misses = 0;
    verdict_cache_evictions = 0;
    decode_memo_hits = 0;
    decode_memo_misses = 0;
    scan_budget_exhausted = 0;
  }

let reset t =
  t.packets <- 0;
  t.bytes <- 0;
  t.classified_suspicious <- 0;
  t.prefilter_hits <- 0;
  t.frames <- 0;
  t.frame_bytes <- 0;
  t.alerts <- 0;
  t.analysis_seconds <- 0.0;
  t.verdict_cache_hits <- 0;
  t.verdict_cache_misses <- 0;
  t.verdict_cache_evictions <- 0;
  t.decode_memo_hits <- 0;
  t.decode_memo_misses <- 0;
  t.scan_budget_exhausted <- 0

let decode_memo_ratio t =
  let total = t.decode_memo_hits + t.decode_memo_misses in
  if total = 0 then 0.0 else float_of_int t.decode_memo_hits /. float_of_int total

let pp ppf t =
  Format.fprintf ppf
    "packets=%d bytes=%d suspicious=%d prefiltered=%d frames=%d frame_bytes=%d alerts=%d analysis=%.3fs vcache=%d/%d/%d decode_memo=%.2f budget_exhausted=%d"
    t.packets t.bytes t.classified_suspicious t.prefilter_hits t.frames
    t.frame_bytes t.alerts t.analysis_seconds t.verdict_cache_hits
    t.verdict_cache_misses t.verdict_cache_evictions (decode_memo_ratio t)
    t.scan_budget_exhausted
