module Obs = Sanids_obs

type t = {
  packets : int;
  bytes : int;
  classified_suspicious : int;
  prefilter_hits : int;
  frames : int;
  frame_bytes : int;
  alerts : int;
  analysis_seconds : float;
  verdict_cache_hits : int;
  verdict_cache_misses : int;
  verdict_cache_evictions : int;
  decode_memo_hits : int;
  decode_memo_misses : int;
  scan_budget_exhausted : int;
  ingest_errors : int;
  shed : int;
  worker_failures : int;
  budget_truncated : int;
  degraded : int;
  breaker_open : int;
  worker_restarts : int;
  confirmed : int;
  refuted : int;
  static_refuted : int;
  confirm_inconclusive : int;
}

let zero =
  {
    packets = 0;
    bytes = 0;
    classified_suspicious = 0;
    prefilter_hits = 0;
    frames = 0;
    frame_bytes = 0;
    alerts = 0;
    analysis_seconds = 0.0;
    verdict_cache_hits = 0;
    verdict_cache_misses = 0;
    verdict_cache_evictions = 0;
    decode_memo_hits = 0;
    decode_memo_misses = 0;
    scan_budget_exhausted = 0;
    ingest_errors = 0;
    shed = 0;
    worker_failures = 0;
    budget_truncated = 0;
    degraded = 0;
    breaker_open = 0;
    worker_restarts = 0;
    confirmed = 0;
    refuted = 0;
    static_refuted = 0;
    confirm_inconclusive = 0;
  }

(* The registry metric each field is a view of. *)
let of_snapshot s =
  let c = Obs.Snapshot.counter_value s in
  {
    packets = c "sanids_packets_total";
    bytes = c "sanids_bytes_total";
    classified_suspicious = c "sanids_classified_suspicious_total";
    prefilter_hits = c "sanids_prefilter_hits_total";
    frames = c "sanids_frames_total";
    frame_bytes = c "sanids_frame_bytes_total";
    alerts = c "sanids_alerts_total";
    analysis_seconds =
      Obs.Histogram.sum (Obs.Snapshot.histogram s "sanids_stage_analyze_seconds");
    verdict_cache_hits = c "sanids_verdict_cache_hits_total";
    verdict_cache_misses = c "sanids_verdict_cache_misses_total";
    verdict_cache_evictions = c "sanids_verdict_cache_evictions_total";
    decode_memo_hits = c "sanids_decode_memo_hits_total";
    decode_memo_misses = c "sanids_decode_memo_misses_total";
    scan_budget_exhausted = c "sanids_scan_budget_exhausted_total";
    (* labeled families: sum across the reason/policy label sets *)
    ingest_errors = Obs.Snapshot.counter_sum s "sanids_ingest_errors_total";
    shed = Obs.Snapshot.counter_sum s "sanids_shed_total";
    worker_failures = c "sanids_worker_failures_total";
    budget_truncated = Obs.Snapshot.counter_sum s "sanids_budget_truncated_total";
    degraded = Obs.Snapshot.counter_sum s "sanids_degraded_total";
    breaker_open = Obs.Snapshot.counter_sum s "sanids_breaker_open_total";
    worker_restarts = c "sanids_worker_restarts_total";
    (* the confirm family's outcome labels, folded to the three fates *)
    confirmed =
      (let l outcome =
         c (Obs.Registry.series_name "sanids_confirm_total"
              [ ("outcome", outcome) ])
       in
       l "confirmed_decrypt" + l "confirmed_syscall");
    refuted =
      c (Obs.Registry.series_name "sanids_confirm_total"
           [ ("outcome", "refuted") ]);
    static_refuted =
      c (Obs.Registry.series_name "sanids_confirm_total"
           [ ("outcome", "static_refuted") ]);
    confirm_inconclusive =
      (let l outcome =
         c (Obs.Registry.series_name "sanids_confirm_total"
              [ ("outcome", outcome) ])
       in
       l "inconclusive_budget" + l "inconclusive_fault");
  }

let decode_memo_ratio t =
  let total = t.decode_memo_hits + t.decode_memo_misses in
  if total = 0 then 0.0 else float_of_int t.decode_memo_hits /. float_of_int total

let pp ppf t =
  Format.fprintf ppf
    "packets=%d bytes=%d suspicious=%d prefiltered=%d frames=%d frame_bytes=%d alerts=%d analysis=%.3fs vcache=%d/%d/%d decode_memo=%.2f budget_exhausted=%d ingest_errors=%d shed=%d worker_failures=%d truncated=%d degraded=%d breaker_open=%d worker_restarts=%d confirm=%d/%d/%d/%d"
    t.packets t.bytes t.classified_suspicious t.prefilter_hits t.frames
    t.frame_bytes t.alerts t.analysis_seconds t.verdict_cache_hits
    t.verdict_cache_misses t.verdict_cache_evictions (decode_memo_ratio t)
    t.scan_budget_exhausted t.ingest_errors t.shed t.worker_failures
    t.budget_truncated t.degraded t.breaker_open t.worker_restarts
    t.confirmed t.refuted t.static_refuted t.confirm_inconclusive
