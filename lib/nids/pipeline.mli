(** The full semantics-aware NIDS (paper Figure 3): traffic classifier →
    binary detection & extraction → disassembler → IR → semantic
    analyzer. *)

type t

val create : Config.t -> t

val process_packet : t -> Packet.t -> Alert.t list
(** Run one packet through the pipeline.  At most one alert per template
    name per packet. *)

val process_packets : t -> Packet.t list -> Alert.t list

val process_pcap : t -> Sanids_pcap.Pcap.file -> Alert.t list
(** Unparseable records are counted and skipped. *)

val analyze_payload : t -> string -> Matcher.result list
(** The analysis stages only (no classification): extraction per config,
    then disassembly and template matching.  This is what the timing
    experiments measure. *)

val stats : t -> Stats.t
val config : t -> Config.t

val log_src : Logs.src
(** The pipeline's log source ("sanids.pipeline"): alerts at [Info],
    per-packet classification at [Debug]. *)
