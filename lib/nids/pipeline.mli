(** The full semantics-aware NIDS (paper Figure 3): traffic classifier →
    binary detection & extraction → disassembler → IR → semantic
    analyzer.

    Every pipeline owns a metrics registry ({!Sanids_obs.Registry.t}):
    stage counters, occupancy gauges and per-stage latency histograms
    ([sanids_stage_classify_seconds], [_extract_], [_match_],
    [_analyze_]).  {!snapshot} exports it; {!stats} is the stable typed
    view over that snapshot.  Registries are single-domain — the
    parallel driver gives each worker its own pipeline and merges
    snapshots ({!Parallel}). *)

type t

type verdict = {
  frame : Sanids_extract.Extractor.frame;
      (** the extracted frame the match was found in *)
  match_ : Matcher.result;
  cached : bool;  (** served from the verdict cache, not re-analyzed *)
  degraded : bool;
      (** produced by the degraded baseline pattern pass, not the full
          semantic matcher (bindings and offsets are empty) *)
  confirmation : Sanids_confirm.Confirm.outcome option;
      (** the dynamic-confirmation stage's second verdict: the match was
          executed in the sandboxed emulator and either proved
          ([Confirmed_decrypt]/[Confirmed_syscall]), disproved
          ([Refuted] — dropped from alerting), or left open
          ([Inconclusive]).  [None] when {!Config.t.confirm} is unset or
          the verdict is degraded.  Cached verdicts replay the
          confirmation stored with them. *)
}
(** One template match on one analyzed buffer — the typed result of the
    analysis stages. *)

type analysis = {
  verdicts : verdict list;
  outcome : Budget.outcome;
      (** the per-packet budget's state after analysis; [Complete] when
          no budget is configured *)
  degraded : bool;  (** the baseline fallback pass ran on this buffer *)
  breaker_open : string list;
      (** template names excluded from this analysis by open breakers *)
  tripped : string list;
      (** template names that hit their per-template step cap *)
}
(** What happened to one analyzed buffer.  With no budget, breaker or
    degradation configured this is always
    [{ verdicts; outcome = Complete; degraded = false; breaker_open = [];
    tripped = [] }] and [verdicts] is exactly the pre-hardening result. *)

val create : ?tracer:Sanids_obs.Span.tracer -> Config.t -> t
(** [tracer] attaches JSONL span tracing to the pipeline's stage timers.
    @raise Invalid_argument when {!Config.validate} rejects the
    configuration. *)

val process_packet : t -> Packet.t -> Alert.t list
(** Run one packet through the pipeline.  At most one alert per template
    name per packet. *)

val process_packets : t -> Packet.t list -> Alert.t list

val process_pcap : t -> Sanids_pcap.Pcap.file -> Alert.t list
(** Unparseable records are counted and skipped. *)

val analyze_report : t -> string -> analysis
(** The analysis stages only (no classification): extraction per config,
    then disassembly and template matching, deduplicated to one verdict
    per template name — all under the configured per-packet budget and
    breaker state, with the degraded fallback applied when configured.
    Only pristine analyses (budget untripped, nothing abandoned or
    excluded, no fallback) enter the verdict cache. *)

val analyze_report_slice : t -> Slice.t -> analysis
(** {!analyze_report} over a payload view — the zero-copy entry the
    packet path uses.  [analyze_report t s = analyze_report_slice t
    (Slice.of_string s)]. *)

val analyze : t -> string -> verdict list
(** [analyze_report] projected to its verdicts.  This is what the timing
    experiments measure. *)

val analyze_payload : t -> string -> Matcher.result list
(** [analyze] projected to bare matcher results. *)

val registry : t -> Sanids_obs.Registry.t
(** The pipeline's live metrics registry (also the place for cooperating
    layers — e.g. {!Hybrid} — to register their own metrics). *)

val snapshot : t -> Sanids_obs.Snapshot.t
(** Sample occupancy gauges and snapshot the registry. *)

val stats : t -> Stats.t
(** [Stats.of_snapshot (snapshot t)]. *)

val config : t -> Config.t

val log_src : Logs.src
(** The pipeline's log source ("sanids.pipeline"): alerts at [Info],
    per-packet classification at [Debug]. *)
