module Siggen = Sanids_baseline.Siggen
module Obs = Sanids_obs

type t = {
  pipeline : Pipeline.t;
  pool_size : int;
  pools : (string, string list) Hashtbl.t;  (* template -> payload pool *)
  mutable signatures : (string * Siggen.t) list;
  fast_hits : Obs.Registry.counter;
      (* lives in the pipeline's registry, so hybrid metrics export and
         merge together with the pipeline's own *)
}

let create ?(pool_size = 5) cfg =
  let pipeline = Pipeline.create cfg in
  {
    pipeline;
    pool_size;
    pools = Hashtbl.create 8;
    signatures = [];
    fast_hits =
      Obs.Registry.counter
        (Pipeline.registry pipeline)
        ~help:"alerts that skipped semantic analysis via inferred signatures"
        "sanids_hybrid_fast_path_total";
  }

let try_infer t name =
  let pool = Option.value ~default:[] (Hashtbl.find_opt t.pools name) in
  if List.length pool >= t.pool_size && not (List.mem_assoc name t.signatures)
  then begin
    let s = Siggen.infer pool in
    (* deploy only signatures with real specificity: weak token sets would
       either miss or false-positive, and the semantic path is already
       correct *)
    if s.Siggen.tokens <> [] && Siggen.specificity s >= 16 then
      t.signatures <- (name, s) :: t.signatures
  end

let fast_path t (payload : Slice.t) =
  List.filter_map
    (fun (name, s) -> if Siggen.matches_slice s payload then Some name else None)
    t.signatures

let process_packet t packet =
  let payload = Packet.payload packet in
  match fast_path t payload with
  | name :: _ ->
      Obs.Registry.incr t.fast_hits;
      (* synthesize a verdict equivalent to the semantic one *)
      let v =
        {
          Pipeline.frame =
            {
              Sanids_extract.Extractor.off = 0;
              data = payload;
              origin = Sanids_extract.Extractor.Raw_binary;
            };
          match_ =
            {
              Matcher.template = name;
              entry = 0;
              offsets = [];
              reg_bindings = [];
              const_bindings = [];
            };
          cached = false;
          degraded = false;
          confirmation = None;
        }
      in
      [
        Alert.make ~packet
          ~reason:Sanids_classify.Classifier.Classification_disabled
          ~frame:v.Pipeline.frame ~result:v.Pipeline.match_ ();
      ]
  | [] ->
      let alerts = Pipeline.process_packet t.pipeline packet in
      List.iter
        (fun (a : Alert.t) ->
          (* degraded alerts are pattern hits, not semantic matches —
             pooling them would let an attacker steer signature
             inference with crafted complexity bombs *)
          if not a.Alert.degraded then begin
            let name = a.Alert.template in
            let pool = Option.value ~default:[] (Hashtbl.find_opt t.pools name) in
            (* pools outlive the packet: own the bytes (rare — alert path) *)
            Hashtbl.replace t.pools name (Slice.to_string payload :: pool);
            try_infer t name
          end)
        alerts;
      alerts

let process_packets t packets = List.concat_map (process_packet t) packets

let deployed_signatures t = t.signatures
let fast_path_hits t = Obs.Registry.counter_value t.fast_hits
let stats t = Pipeline.stats t.pipeline
let snapshot t = Pipeline.snapshot t.pipeline
