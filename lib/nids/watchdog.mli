(** Worker-stall watchdog — the pure decision core of the parallel
    driver's self-healing.

    Budgets make a single packet's analysis finite, but they are a
    cooperative mechanism: a bug (or a disabled deadline dimension)
    can still wedge a worker domain inside one packet, and a wedged
    worker silently parks its whole shard.  The watchdog observes each
    worker's heartbeat and decides when to abandon the stalled domain
    and respawn a replacement on the same admission queue — with
    exponential backoff between respawns and a hard cap on how many
    times one slot may be restarted.

    This module is only the state machine: one {!t} per worker slot,
    fed [(now, busy_since)] observations, answering with an {!action}.
    It performs no I/O and reads no clock, so every transition is unit
    testable; {!Parallel} owns the domains, heartbeat cells and
    respawn mechanics. *)

type config = {
  stall_after : float;  (** seconds busy on one packet before a worker counts as stalled *)
  max_restarts : int;  (** respawns allowed per worker slot *)
  backoff : float;
      (** stall threshold multiplier applied after each restart (the
          i-th restart waits [stall_after * backoff^i]) *)
}

val default_config : config
(** [stall_after = 1.], [max_restarts = 3], [backoff = 2.]. *)

val config_for : deadline:float -> config
(** The driver's derivation from a per-packet budget deadline: a worker
    is stalled after [max (8 * deadline) 0.05] seconds — far past the
    point the budget should have stopped the packet — with
    {!default_config}'s restart cap and backoff. *)

val validate_config : config -> (config, string) result

type t

val create : config -> t
(** Fresh slot state: no restarts, steady. *)

type action =
  | Steady  (** worker healthy (or a previous restart still unwinding) *)
  | Restart
      (** worker stalled: abandon it and respawn — returned exactly once
          per detected stall *)
  | Exhausted
      (** worker stalled but the restart cap is spent: stop feeding the
          shard instead of respawn-looping *)

val observe : t -> now:float -> busy_since:float option -> action
(** One poll: [busy_since] is the wall-clock time the worker began its
    current packet, [None] when idle.  A stall that began before the
    last restart is the abandoned generation still unwinding and reads
    as [Steady]. *)

val restarts : t -> int
(** Restarts issued so far on this slot. *)

val threshold : t -> float
(** The current stall threshold ([stall_after * backoff^restarts]). *)
