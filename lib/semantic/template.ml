type tvar = string
type cvar = string

type pval = Exact of int32 | Any | Bind of cvar | Same of cvar

type width_req = W8 | W32 | Wany

type pstep =
  | Load of { dst : tvar; ptr : tvar; width : width_req }
  | Mem_transform of {
      ops : Sem.rop list;
      ptr : tvar;
      key : pval;
      width : width_req;
    }
  | Reg_transform of { ops : Sem.rop list; reg : tvar }
  | Store of { src : tvar; ptr : tvar; width : width_req }
  | Ptr_advance of { ptr : tvar }
  | Back_edge
  | Syscall of { vector : int; al : pval; bl : pval }
  | Stack_const of pval
  | Code_const of int32

type quant = Once of pstep | Many of pstep

type guard =
  | Nonzero of cvar
  | Equals of cvar * int32
  | One_of of cvar * int32 list
  | Differ of cvar * cvar

type t = {
  name : string;
  description : string;
  steps : quant list;
  guards : guard list;
  max_gap : int;
  data : string list;
}

let make ~name ~description ?(guards = []) ?(max_gap = 24) ?(data = []) steps =
  if steps = [] then invalid_arg "Template.make: empty step list";
  { name; description; steps; guards; max_gap; data }

let check_guard consts g =
  let find v = List.assoc_opt v consts in
  match g with
  | Nonzero v -> ( match find v with Some c -> not (Int32.equal c 0l) | None -> false)
  | Equals (v, c) -> ( match find v with Some c' -> Int32.equal c c' | None -> false)
  | One_of (v, cs) -> (
      match find v with
      | Some c -> List.exists (Int32.equal c) cs
      | None -> false)
  | Differ (a, b) -> (
      match (find a, find b) with
      | Some x, Some y -> not (Int32.equal x y)
      | _, _ -> false)

let pp_pval ppf = function
  | Exact v -> Format.fprintf ppf "0x%lx" v
  | Any -> Format.pp_print_string ppf "_"
  | Bind v -> Format.fprintf ppf "?%s" v
  | Same v -> Format.fprintf ppf "=%s" v

let pp_width ppf = function
  | W8 -> Format.pp_print_string ppf ".b"
  | W32 -> Format.pp_print_string ppf ".d"
  | Wany -> ()

let pp_ops ppf ops =
  Format.pp_print_string ppf
    (String.concat "|" (List.map (Format.asprintf "%a" Sem.pp_rop) ops))

let pp_pstep ppf = function
  | Load { dst; ptr; width } ->
      Format.fprintf ppf "load%a %s <- [%s]" pp_width width dst ptr
  | Mem_transform { ops; ptr; key; width } ->
      Format.fprintf ppf "mem%a (%a) [%s], %a" pp_width width pp_ops ops ptr pp_pval key
  | Reg_transform { ops; reg } -> Format.fprintf ppf "reg (%a) %s" pp_ops ops reg
  | Store { src; ptr; width } ->
      Format.fprintf ppf "store%a [%s] <- %s" pp_width width ptr src
  | Ptr_advance { ptr } -> Format.fprintf ppf "advance %s" ptr
  | Back_edge -> Format.pp_print_string ppf "back-edge"
  | Syscall { vector; al; bl } ->
      Format.fprintf ppf "syscall 0x%x al=%a bl=%a" vector pp_pval al pp_pval bl
  | Stack_const v -> Format.fprintf ppf "stack-const %a" pp_pval v
  | Code_const v -> Format.fprintf ppf "code-const 0x%lx" v

let pp ppf t =
  Format.fprintf ppf "template %S:@ " t.name;
  List.iteri
    (fun i q ->
      if i > 0 then Format.fprintf ppf "; ";
      match q with
      | Once p -> pp_pstep ppf p
      | Many p -> Format.fprintf ppf "(%a)+" pp_pstep p)
    t.steps
