type result = {
  template : string;
  entry : int;
  offsets : int list;
  reg_bindings : (Template.tvar * Reg.t) list;
  const_bindings : (Template.cvar * int32) list;
}

type env = {
  regs : (Template.tvar * Reg.t) list;
  consts : (Template.cvar * int32) list;
}

let empty_env = { regs = []; consts = [] }

(* Register bindings are injective: one variable per register and one
   register per variable, so e.g. a decoder's pointer and working value
   can never collapse onto the same register. *)
let bind_reg env var reg =
  match List.assoc_opt var env.regs with
  | Some r -> if Reg.equal r reg then Some env else None
  | None ->
      if List.exists (fun (_, r) -> Reg.equal r reg) env.regs then None
      else Some { env with regs = (var, reg) :: env.regs }

let bind_const env var c =
  match List.assoc_opt var env.consts with
  | Some c' -> if Int32.equal c c' then Some env else None
  | None -> Some { env with consts = (var, c) :: env.consts }

let match_pval env (pv : Template.pval) (v : int32 option) =
  match (pv, v) with
  | Template.Any, _ -> Some env
  | Template.Exact c, Some c' -> if Int32.equal c c' then Some env else None
  | Template.Bind x, Some c -> bind_const env x c
  | Template.Same x, Some c -> (
      match List.assoc_opt x env.consts with
      | Some c' -> if Int32.equal c c' then Some env else None
      | None -> None)
  | (Template.Exact _ | Template.Bind _ | Template.Same _), None -> None

let width_ok (req : Template.width_req) (w : Insn.size) =
  match (req, w) with
  | Template.Wany, _ -> true
  | Template.W8, Insn.S8bit -> true
  | Template.W32, Insn.S32bit -> true
  | Template.W8, Insn.S32bit | Template.W32, Insn.S8bit -> false

(* Constant value of a source operand at the access width. *)
let src_value state (w : Insn.size) (v : Sem.value) =
  match w with
  | Insn.S32bit -> Constprop.value state v
  | Insn.S8bit -> (
      match Constprop.value_low8 state v with
      | Some b -> Some (Int32.of_int b)
      | None -> None)

let rop_mem_equal (a : Sem.rop) (b : Sem.rop) = a = b

let consts_of_insn (i : Insn.t) : int32 list =
  let of_op (o : Insn.operand) =
    match o with
    | Insn.Imm v -> [ v ]
    | Insn.Mem m -> [ m.Insn.disp ]
    | Insn.Reg _ | Insn.Reg8 _ -> []
  in
  match i with
  | Insn.Mov (_, a, b) | Insn.Arith (_, _, a, b) | Insn.Test (_, a, b) ->
      of_op a @ of_op b
  | Insn.Not (_, o) | Insn.Neg (_, o) | Insn.Inc (_, o) | Insn.Dec (_, o)
  | Insn.Shift (_, _, o, _) ->
      of_op o
  | Insn.Lea (_, m) -> [ m.Insn.disp ]
  | Insn.Push_imm v -> [ v ]
  | Insn.Movzx (_, o) | Insn.Movsx (_, o) | Insn.Mul (_, o) | Insn.Imul (_, o)
  | Insn.Div (_, o) | Insn.Idiv (_, o) | Insn.Imul2 (_, o) ->
      of_op o
  | Insn.Imul3 (_, o, v) -> v :: of_op o
  | Insn.Xchg _ | Insn.Push_reg _ | Insn.Pop_reg _ | Insn.Pushad | Insn.Popad
  | Insn.Pushfd | Insn.Popfd | Insn.Jmp_rel _ | Insn.Jcc_rel _ | Insn.Call_rel _
  | Insn.Loop _ | Insn.Loope _ | Insn.Loopne _ | Insn.Jecxz _ | Insn.Ret
  | Insn.Int _ | Insn.Int3 | Insn.Nop | Insn.Cld | Insn.Std | Insn.Lodsb
  | Insn.Lodsd | Insn.Stosb | Insn.Stosd | Insn.Movsb | Insn.Movsd | Insn.Scasb
  | Insn.Cmpsb | Insn.Cdq | Insn.Cwde | Insn.Clc | Insn.Stc | Insn.Cmc
  | Insn.Sahf | Insn.Lahf | Insn.Fwait | Insn.Rep_movsb | Insn.Rep_movsd
  | Insn.Rep_stosb | Insn.Rep_stosd | Insn.Bad _ ->
      []

(* Match one template step against one semantic operation.  [first] is
   [(trace_index, offset)] of the first matched step, and [index_of_off]
   maps byte offsets to trace indices (for back-edge validation). *)
(* Decoder loops address their working cell at (or very near) the walked
   pointer; big fixed displacements are the signature of accidental
   matches in random bytes. *)
let small_disp d = Int32.abs d <= 8l

(* Execution realism for matched loops: junk inside a real decoder never
   dereferences wild pointers (it would fault), so every memory access in
   the loop body must go through a template-bound register or the stack
   frame.  Chance loop shapes in random bytes almost always violate
   this. *)
let body_memory_disciplined (trace : Trace.t) env ~from_idx ~to_idx =
  let allowed r =
    Reg.equal r Reg.ESP || Reg.equal r Reg.EBP
    || List.exists (fun (_, b) -> Reg.equal b r) env.regs
  in
  (* operand-level: every memory operand must be addressed off an allowed
     base (lea computes an address without touching memory — exempt) *)
  let mem_ok (o : Insn.operand) =
    match o with
    | Insn.Mem m -> (
        (match m.Insn.base with Some b -> allowed b | None -> false)
        && match m.Insn.index with Some (r, _) -> allowed r | None -> true)
    | Insn.Reg _ | Insn.Reg8 _ | Insn.Imm _ -> true
  in
  let insn_ok (i : Insn.t) =
    match i with
    | Insn.Mov (_, a, b) | Insn.Arith (_, _, a, b) | Insn.Test (_, a, b) ->
        mem_ok a && mem_ok b
    | Insn.Not (_, o) | Insn.Neg (_, o) | Insn.Inc (_, o) | Insn.Dec (_, o)
    | Insn.Shift (_, _, o, _) ->
        mem_ok o
    | Insn.Movzx (_, o) | Insn.Movsx (_, o) | Insn.Mul (_, o) | Insn.Imul (_, o)
    | Insn.Div (_, o) | Insn.Idiv (_, o) | Insn.Imul2 (_, o)
    | Insn.Imul3 (_, o, _) ->
        mem_ok o
    | Insn.Lodsb | Insn.Lodsd -> allowed Reg.ESI
    | Insn.Stosb | Insn.Stosd | Insn.Scasb -> allowed Reg.EDI
    | Insn.Movsb | Insn.Movsd | Insn.Cmpsb | Insn.Rep_movsb | Insn.Rep_movsd ->
        allowed Reg.ESI && allowed Reg.EDI
    | Insn.Rep_stosb | Insn.Rep_stosd -> allowed Reg.EDI
    | _ -> true
  in
  let ok = ref true in
  for i = from_idx to to_idx do
    if i >= 0 && i < Array.length trace then
      if not (insn_ok trace.(i).Trace.insn) then ok := false
  done;
  !ok

let match_pstep ~trace ~pos ~index_of_off ~post ~insn_continuation
    (p : Template.pstep) (st : Trace.step) (sem : Sem.t) env first =
  match (p, sem) with
  | Template.Load { dst; ptr; width }, Sem.S_load l ->
      if width_ok width l.width && small_disp l.disp then
        Option.bind (bind_reg env dst l.dst) (fun env -> bind_reg env ptr l.ptr)
      else None
  | Template.Mem_transform { ops; ptr; key; width }, Sem.S_memop m ->
      if
        width_ok width m.width
        && small_disp m.disp
        && List.exists (rop_mem_equal m.op) ops
      then
        Option.bind (bind_reg env ptr m.ptr) (fun env ->
            match_pval env key (src_value st.Trace.state m.width m.src))
      else None
  | Template.Reg_transform { ops; reg }, Sem.S_regop r ->
      if List.exists (rop_mem_equal r.op) ops then bind_reg env reg r.dst else None
  | Template.Reg_transform { ops; reg }, Sem.S_advance a ->
      (* add/sub on the working value is a transform too *)
      if
        List.exists
          (fun o -> o = Sem.Ra Insn.Add || o = Sem.Ra Insn.Sub)
          ops
      then bind_reg env reg a.reg
      else None
  | Template.Store { src; ptr; width }, Sem.S_store s -> (
      match s.src with
      | Sem.Vreg r when width_ok width s.width && small_disp s.disp ->
          Option.bind (bind_reg env src r) (fun env -> bind_reg env ptr s.ptr)
      | Sem.Vreg _ | Sem.Vconst _ | Sem.Vunknown -> None)
  | Template.Ptr_advance { ptr }, Sem.S_advance a ->
      (* a string instruction's implicit pointer bump only counts when an
         earlier operation of the same instruction already matched (the
         lods/stos-style decoders), never as a standalone advance *)
      let amt = Int32.to_int a.amount in
      if
        amt <> 0
        && abs amt <= 8
        && ((not a.implicit) || insn_continuation)
      then bind_reg env ptr a.reg
      else None
  | Template.Back_edge, Sem.S_branch b -> (
      match b.kind with
      | `Call -> None
      | `Jmp | `Cond | `Loop | `Loop_cc | `Jecxz -> (
          (* a real loop closes: the branch must target an instruction this
             very trace executed, no later than the first matched step, and
             no further past it in byte space than the first matched step
             itself.  Chance branches in random data almost never land on a
             visited instruction boundary, which is what keeps the benign
             false-positive rate at zero *)
          match first with
          | Some (first_idx, first_off) -> (
              let target = st.Trace.off + st.Trace.len + b.disp in
              if target < 0 || target > first_off then None
              else
                match Hashtbl.find_opt index_of_off target with
                | Some idx
                  when idx <= first_idx
                       && body_memory_disciplined trace env ~from_idx:idx
                            ~to_idx:(pos - 1) ->
                    Some env
                | Some _ | None -> None)
          | None -> None))
  | Template.Syscall { vector; al; bl }, Sem.S_syscall v ->
      if v = vector then
        let low8 r =
          match Constprop.reg_low8 st.Trace.state r with
          | Some b -> Some (Int32.of_int b)
          | None -> None
        in
        Option.bind (match_pval env al (low8 Reg.EAX)) (fun env ->
            match_pval env bl (low8 Reg.EBX))
      else None
  | Template.Stack_const pv, Sem.S_push v ->
      match_pval env pv (Constprop.value st.Trace.state v)
  | Template.Stack_const pv, Sem.S_store s ->
      match_pval env pv (src_value st.Trace.state s.width s.src)
  | Template.Stack_const pv, Sem.S_memop m
    when Reg.equal m.ptr Reg.ESP
         && Int32.compare m.disp 0l >= 0
         && Int32.rem m.disp 4l = 0l ->
      (* a constant finished in place on the stack (push x; xor [esp], m):
         read the folded slot from the post-instruction state *)
      match_pval env pv (Constprop.slot_value post (Int32.to_int m.disp / 4))
  | Template.Code_const c, _ ->
      (* checked against the instruction itself; any sem of the insn works *)
      if List.exists (Int32.equal c) (consts_of_insn st.Trace.insn) then Some env
      else None
  | ( ( Template.Load _ | Template.Mem_transform _ | Template.Reg_transform _
      | Template.Store _ | Template.Ptr_advance _ | Template.Back_edge
      | Template.Syscall _ | Template.Stack_const _ ),
      _ ) ->
      None

(* Does skipping this instruction's operations from index [k] on disturb
   any bound register? *)
let clobbers_from env (sems : Sem.t array) k =
  let n = Array.length sems in
  let rec go i =
    i < n
    && (List.exists
          (fun w -> List.exists (fun (_, r) -> Reg.equal r w) env.regs)
          (Sem.writes sems.(i))
       || go (i + 1))
  in
  go (max 0 k)

type istep = Req of Template.pstep | More of Template.pstep

let expand steps =
  List.concat_map
    (function
      | Template.Once p -> [ Req p ]
      | Template.Many p -> [ Req p; More p ])
    steps

(* Raised mid-match when the step fuel runs dry: [`Template] means this
   template hit its per-scan step cap (circuit-breaker food), [`Budget]
   means the packet's shared match-step budget is gone. *)
exception Fuel_out of [ `Template | `Budget ]

let no_tick () = ()

let match_from ?(tick = no_tick) ~index_of_off (t : Template.t) (trace : Trace.t)
    start =
  let len = Array.length trace in
  let finish env first offsets =
    if List.for_all (Template.check_guard env.consts) t.guards then
      Some (env, first, List.rev offsets)
    else None
  in
  let rec go steps pos sem_idx env first offsets gap =
    match steps with
    | [] -> finish env first offsets
    | More p :: rest -> (
        (* non-greedy: try to move on first; the clobber rule forces the
           loop to continue when the next instruction is another p *)
        match go rest pos sem_idx env first offsets gap with
        | Some r -> Some r
        | None -> attempt p (More p :: rest) pos sem_idx env first offsets gap)
    | Req p :: rest -> attempt p rest pos sem_idx env first offsets gap
  and attempt p rest pos sem_idx env first offsets gap =
    tick ();
    if pos >= len then None
    else
      let st = trace.(pos) in
      let sems = st.Trace.sems in
      let nsems = Array.length sems in
      let post =
        if pos + 1 < len then trace.(pos + 1).Trace.state
        else Array.fold_left Constprop.step st.Trace.state sems
      in
      let rec try_sem k =
        if k >= nsems then skip ()
        else
          let sem = sems.(k) in
          match
            match_pstep ~trace ~pos ~index_of_off ~post
              ~insn_continuation:(sem_idx > 0) p st sem env first
          with
          | Some env' -> (
              let first' =
                match first with None -> Some (pos, st.Trace.off) | s -> s
              in
              match
                go rest pos (k + 1) env' first' (st.Trace.off :: offsets) 0
              with
              | Some r -> Some r
              | None -> try_sem (k + 1))
          | None -> try_sem (k + 1)
      and skip () =
        match first with
        | None -> None (* start positions are enumerated by the caller *)
        | Some _ ->
            if gap >= t.max_gap then None
            else if clobbers_from env sems sem_idx then None
            else attempt p rest (pos + 1) 0 env first offsets (gap + 1)
      in
      try_sem sem_idx
  in
  go (expand t.steps) start 0 empty_env None [] 0

(* Byte offset → trace index, built once per trace and shared by every
   template matched against that trace (back-edge validation reads it). *)
let index_of_trace (trace : Trace.t) =
  let index_of_off = Hashtbl.create (max 16 (Array.length trace)) in
  Array.iteri
    (fun i (s : Trace.step) -> Hashtbl.replace index_of_off s.Trace.off i)
    trace;
  index_of_off

let match_trace_indexed ?tick ~index_of_off (t : Template.t) trace ~entry =
  let len = Array.length trace in
  let rec try_start s =
    if s >= len then None
    else
      match match_from ?tick ~index_of_off t trace s with
      | Some (env, _, offsets) ->
          Some
            {
              template = t.name;
              entry;
              offsets;
              reg_bindings = List.rev env.regs;
              const_bindings = List.rev env.consts;
            }
      | None -> try_start (s + 1)
  in
  try_start 0

let match_trace t trace ~entry =
  match_trace_indexed ~index_of_off:(index_of_trace trace) t trace ~entry

module Obs = Sanids_obs

(* Scan accounting lands in an observability registry instead of an
   out-parameter record; the names are shared with the NIDS pipeline so
   per-domain registries merge into one coherent view. *)
let decode_memo_hits = "sanids_decode_memo_hits_total"
let decode_memo_misses = "sanids_decode_memo_misses_total"
let scan_budget_exhausted = "sanids_scan_budget_exhausted_total"

let record_scan reg ~hits ~misses ~exhausted =
  let bump name help n =
    if n <> 0 then Obs.Registry.add (Obs.Registry.counter reg ~help name) n
  in
  bump decode_memo_hits "per-offset decodes served from the scan's instruction cache" hits;
  bump decode_memo_misses "per-offset decodes that had to run the decoder" misses;
  bump scan_budget_exhausted "scans that ran out of work budget with templates still open"
    exhausted

(* Templates whose data requirements the region cannot meet are out before
   any trace is built.  One Aho–Corasick pass over the region answers
   every template's byte-string requirements at once, instead of a naive
   substring search per (template, pattern) pair. *)
let data_prefilter ~templates code =
  let patterns =
    List.sort_uniq compare
      (List.concat_map
         (fun (t : Template.t) ->
           List.filter (fun p -> p <> "") t.Template.data)
         templates)
  in
  if patterns = [] then templates
  else begin
    let ac = Sanids_baseline.Aho_corasick.build (List.map (fun p -> (p, p)) patterns) in
    let present = Hashtbl.create 16 in
    List.iter
      (fun (_, tag) -> Hashtbl.replace present tag ())
      (Sanids_baseline.Aho_corasick.search ac code);
    List.filter
      (fun (t : Template.t) ->
        List.for_all
          (fun p -> p = "" || Hashtbl.mem present p)
          t.Template.data)
      templates
  end

(* {!data_prefilter} over a payload view: the AC pass walks the slice in
   place, so a frame that fails every data requirement is rejected
   without its bytes ever being copied. *)
let data_prefilter_slice ~templates code =
  let patterns =
    List.sort_uniq compare
      (List.concat_map
         (fun (t : Template.t) ->
           List.filter (fun p -> p <> "") t.Template.data)
         templates)
  in
  if patterns = [] then templates
  else begin
    let ac = Sanids_baseline.Aho_corasick.build (List.map (fun p -> (p, p)) patterns) in
    let present = Hashtbl.create 16 in
    List.iter
      (fun (_, tag) -> Hashtbl.replace present tag ())
      (Sanids_baseline.Aho_corasick.search_slice ac code);
    List.filter
      (fun (t : Template.t) ->
        List.for_all
          (fun p -> p = "" || Hashtbl.mem present p)
          t.Template.data)
      templates
  end

type scan_report = {
  results : result list;
  outcome : Budget.outcome;
      (** the shared budget's state after the scan; [Complete] when no
          budget was supplied *)
  tripped : string list;
      (** templates abandoned for hitting the per-template step cap —
          what the circuit breaker feeds on *)
}

(* The scan body, entered after the data prefilter has run: [filtered]
   are the surviving templates.  An empty survivor set returns before any
   per-scan state (icache, coverage map) is allocated — on benign traffic
   this is the common path. *)
let scan_filtered ?entries ?metrics ?(memoize = true) ?budget ?step_cap ~filtered
    code =
  let n = String.length code in
  let results = ref [] in
  let tripped = ref [] in
  if n = 0 then { results = []; outcome = Budget.Complete; tripped = [] }
  else if filtered = [] then
    {
      results = [];
      outcome =
        (match budget with Some b -> Budget.outcome b | None -> Budget.Complete);
      tripped = [];
    }
  else begin
    let remaining = ref filtered in
    (* Byte offsets already visited by some trace: starting there again
       could only rediscover a suffix of work already matched against.
       This keeps the whole-buffer entry enumeration near-linear even on
       sled-like inputs, with a work budget as a backstop. *)
    let covered = Bytes.make n '\000' in
    let work = ref (max 4096 (4 * n)) in
    let exhausted = ref false in
    (* variants share a name; once any variant matches, the whole family
       is settled — and per-template step accounts are shared by every
       variant of the name for the same reason *)
    let matched_names = ref [] in
    let step_accounts : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
    let account (t : Template.t) =
      match step_cap with
      | None -> None
      | Some cap -> (
          match Hashtbl.find_opt step_accounts t.Template.name with
          | Some r -> Some r
          | None ->
              let r = ref cap in
              Hashtbl.add step_accounts t.Template.name r;
              Some r)
    in
    let tick_for tpl_steps =
      match (tpl_steps, budget) with
      | None, None -> None
      | _ ->
          Some
            (fun () ->
              (match tpl_steps with
              | Some r -> if !r <= 0 then raise (Fuel_out `Template) else decr r
              | None -> ());
              match budget with
              | Some b -> if not (Budget.take_steps b 1) then raise (Fuel_out `Budget)
              | None -> ())
    in
    let budget_alive () =
      match budget with None -> true | Some b -> Budget.alive b
    in
    (* decode each offset at most once across all entry enumerations *)
    let icache = if memoize then Some (Icache.create code) else None in
    let build_trace entry =
      match icache with
      | Some c -> Trace.build_cached ?budget c ~entry
      | None -> Trace.build ?budget code ~entry
    in
    let run_entry entry =
      if !remaining <> [] && budget_alive () then begin
        if !work <= 0 then exhausted := true
        else begin
          let trace = build_trace entry in
          work := !work - Array.length trace - 1;
          Array.iter
            (fun (s : Trace.step) ->
              if s.Trace.off >= 0 && s.Trace.off < n then
                Bytes.set covered s.Trace.off '\001')
            trace;
          let index_of_off = index_of_trace trace in
          remaining :=
            List.filter
              (fun (t : Template.t) ->
                if List.mem t.Template.name !matched_names then false
                else
                  match
                    match_trace_indexed ?tick:(tick_for (account t))
                      ~index_of_off t trace ~entry
                  with
                  | Some r ->
                      results := r :: !results;
                      matched_names := t.Template.name :: !matched_names;
                      false
                  | None -> true
                  | exception Fuel_out `Template ->
                      (* this template is too expensive on this packet:
                         abandon it for the scan and report the trip *)
                      if not (List.mem t.Template.name !tripped) then
                        tripped := t.Template.name :: !tripped;
                      false
                  | exception Fuel_out `Budget ->
                      (* shared fuel gone: keep the template listed so the
                         caller sees the scan as truncated, stop matching *)
                      true)
              !remaining
        end
      end
    in
    (match entries with
    | Some es -> List.iter run_entry es
    | None ->
        let o = ref 0 in
        while !o < n && budget_alive () do
          if Bytes.get covered !o = '\000' then run_entry !o;
          incr o
        done);
    (match metrics with
    | Some reg ->
        let hits, misses =
          match icache with
          | Some c -> (Icache.hits c, Icache.misses c)
          | None -> (0, 0)
        in
        record_scan reg ~hits ~misses ~exhausted:(if !exhausted then 1 else 0)
    | None -> ());
    {
      results = List.rev !results;
      outcome =
        (match budget with Some b -> Budget.outcome b | None -> Budget.Complete);
      tripped = List.rev !tripped;
    }
  end

let scan_report ?entries ?metrics ?memoize ?budget ?step_cap ~templates code =
  scan_filtered ?entries ?metrics ?memoize ?budget ?step_cap
    ~filtered:(data_prefilter ~templates code)
    code

let scan_report_slice ?entries ?metrics ?memoize ?budget ?step_cap ~templates
    code =
  (* prefilter on the view; materialize the bytes only when at least one
     template survives (free anyway when the slice is a whole view) *)
  let filtered = data_prefilter_slice ~templates code in
  if filtered = [] then
    {
      results = [];
      outcome =
        (match budget with Some b -> Budget.outcome b | None -> Budget.Complete);
      tripped = [];
    }
  else
    scan_filtered ?entries ?metrics ?memoize ?budget ?step_cap ~filtered
      (Slice.to_string code)

let scan ?entries ?metrics ?memoize ?budget ?step_cap ~templates code =
  (scan_report ?entries ?metrics ?memoize ?budget ?step_cap ~templates code)
    .results

let satisfies t code = scan ~templates:[ t ] code <> []

let pp_result ppf r =
  Format.fprintf ppf "%s @@entry=0x%x offsets=[%s] regs={%s} consts={%s}"
    r.template r.entry
    (String.concat ";" (List.map (Printf.sprintf "0x%x") r.offsets))
    (String.concat ";"
       (List.map (fun (v, reg) -> Printf.sprintf "%s=%s" v (Reg.name reg)) r.reg_bindings))
    (String.concat ";"
       (List.map (fun (v, c) -> Printf.sprintf "%s=0x%lx" v c) r.const_bindings))

type evidence = {
  ev_template : string;
  ev_entry : int;
  ev_span : (int * int) option;
  ev_consts : (Template.cvar * int32) list;
}

let evidence r =
  let span =
    match r.offsets with
    | [] -> None
    | o :: rest ->
        Some
          (List.fold_left
             (fun (lo, hi) off -> (min lo off, max hi off))
             (o, o) rest)
  in
  {
    ev_template = r.template;
    ev_entry = r.entry;
    ev_span = span;
    ev_consts = r.const_bindings;
  }
