(** Per-template circuit breakers.

    A template whose matching cost explodes on the current traffic (a
    crafted payload family can drive one template's backtracking while
    every other template stays cheap) must not be allowed to burn the
    whole packet budget on every packet.  The breaker watches per-packet
    step-cap trips ({!Matcher.scan_report}'s [tripped] list): a template
    that trips on [failures] consecutive analyzed packets is {e opened}
    — excluded from matching — for a cooldown measured in packets, with
    exponential backoff on re-trips.  After the cooldown the breaker
    goes {e half-open}: the template is admitted for one probe packet,
    and a clean probe closes the breaker while another trip reopens it
    with a doubled cooldown (capped).

    Time is the analyzed-packet clock ({!tick} once per packet), not
    wall clock, so breaker behaviour is deterministic and replayable.
    Openings are counted as [sanids_breaker_open_total{template}] when a
    registry is supplied. *)

type config = {
  failures : int;  (** consecutive tripped packets before opening *)
  cooldown : int;  (** base open duration, in analyzed packets *)
  max_cooldown : int;  (** backoff ceiling, in analyzed packets *)
}

val default_config : config
(** [failures = 3], [cooldown = 64], [max_cooldown = 4096]. *)

val validate_config : config -> (config, string) result

val config_to_string : config -> string
(** ["fails=N,cooldown=N,max=N"]. *)

val config_of_string : string -> (config, string) result
(** Comma-separated [key=value] over [fails]/[cooldown]/[max], missing
    keys defaulting to {!default_config}; ["default"] is
    {!default_config}. *)

type t

val create : ?metrics:Sanids_obs.Registry.t -> config -> t

val tick : t -> unit
(** Advance the packet clock by one analyzed packet. *)

val admit : t -> string -> bool
(** May this template be matched on the current packet?  [true] for
    closed and half-open (probe) breakers; [false] while open.  An open
    breaker whose cooldown has elapsed transitions to half-open and
    admits. *)

val record : t -> string -> tripped:bool -> unit
(** Report the template's outcome on a packet it was admitted for. *)

type state = Closed | Open of int  (** packets until half-open *) | Half_open

val state : t -> string -> state
val open_templates : t -> string list
(** Currently open template names, sorted. *)

val openings : t -> int
(** Total open transitions since creation (the metric's value). *)
