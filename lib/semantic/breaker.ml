module Obs = Sanids_obs

type config = { failures : int; cooldown : int; max_cooldown : int }

let default_config = { failures = 3; cooldown = 64; max_cooldown = 4096 }

let validate_config c =
  if c.failures < 1 then Error "breaker: fails must be >= 1"
  else if c.cooldown < 1 then Error "breaker: cooldown must be >= 1"
  else if c.max_cooldown < c.cooldown then
    Error "breaker: max must be >= cooldown"
  else Ok c

let config_to_string c =
  Printf.sprintf "fails=%d,cooldown=%d,max=%d" c.failures c.cooldown c.max_cooldown

let config_of_string s =
  let s = String.trim s in
  if s = "default" then Ok default_config
  else begin
    let parse_field acc kv =
      match acc with
      | Error _ -> acc
      | Ok c -> (
          match String.index_opt kv '=' with
          | None -> Error (Printf.sprintf "breaker: %S is not key=value" kv)
          | Some i -> (
              let k = String.sub kv 0 i in
              let v = String.sub kv (i + 1) (String.length kv - i - 1) in
              match (k, int_of_string_opt v) with
              | "fails", Some n -> Ok { c with failures = n }
              | "cooldown", Some n -> Ok { c with cooldown = n }
              | "max", Some n -> Ok { c with max_cooldown = n }
              | ("fails" | "cooldown" | "max"), None ->
                  Error (Printf.sprintf "breaker: %s wants an integer, got %S" k v)
              | _ ->
                  Error
                    (Printf.sprintf "breaker: unknown key %S (want fails|cooldown|max)" k)))
    in
    match
      List.fold_left parse_field (Ok default_config) (String.split_on_char ',' s)
    with
    | Ok c -> validate_config c
    | Error _ as e -> e
  end

type state = Closed | Open of int | Half_open

(* per-template record; [streak] counts consecutive openings and drives
   the exponential backoff (cooldown * 2^(streak-1), capped) *)
type cell = {
  mutable consec : int;  (* consecutive tripped packets while closed *)
  mutable opened_until : int;  (* packet clock when half-open begins *)
  mutable streak : int;
  mutable phase : [ `Closed | `Open | `Half_open ];
}

type t = {
  cfg : config;
  cells : (string, cell) Hashtbl.t;
  mutable clock : int;  (* analyzed packets seen *)
  mutable openings : int;
  metrics : Obs.Registry.t option;
}

let create ?metrics cfg =
  let cfg =
    match validate_config cfg with Ok c -> c | Error m -> invalid_arg ("Breaker.create: " ^ m)
  in
  { cfg; cells = Hashtbl.create 8; clock = 0; openings = 0; metrics }

let cell t name =
  match Hashtbl.find_opt t.cells name with
  | Some c -> c
  | None ->
      let c = { consec = 0; opened_until = 0; streak = 0; phase = `Closed } in
      Hashtbl.add t.cells name c;
      c

let tick t = t.clock <- t.clock + 1

let backoff cfg streak =
  (* cooldown * 2^(streak-1), saturating at max_cooldown *)
  let rec go acc k =
    if k <= 1 || acc >= cfg.max_cooldown then acc else go (acc * 2) (k - 1)
  in
  min cfg.max_cooldown (go cfg.cooldown streak)

let open_cell t name c =
  c.streak <- c.streak + 1;
  c.phase <- `Open;
  c.consec <- 0;
  c.opened_until <- t.clock + backoff t.cfg c.streak;
  t.openings <- t.openings + 1;
  match t.metrics with
  | Some reg ->
      Obs.Registry.incr
        (Obs.Registry.counter reg
           ~help:"circuit-breaker open transitions per template"
           ~labels:[ ("template", name) ]
           "sanids_breaker_open_total")
  | None -> ()

let admit t name =
  match Hashtbl.find_opt t.cells name with
  | None -> true
  | Some c -> (
      match c.phase with
      | `Closed -> true
      | `Half_open -> true
      | `Open ->
          if t.clock >= c.opened_until then begin
            c.phase <- `Half_open;
            true
          end
          else false)

let record t name ~tripped =
  let c = cell t name in
  match c.phase with
  | `Open -> ()  (* not admitted; a stray report changes nothing *)
  | `Half_open ->
      if tripped then open_cell t name c
      else begin
        c.phase <- `Closed;
        c.consec <- 0;
        c.streak <- 0
      end
  | `Closed ->
      if tripped then begin
        c.consec <- c.consec + 1;
        if c.consec >= t.cfg.failures then open_cell t name c
      end
      else c.consec <- 0

let state t name =
  match Hashtbl.find_opt t.cells name with
  | None -> Closed
  | Some c -> (
      match c.phase with
      | `Closed -> Closed
      | `Half_open -> Half_open
      | `Open ->
          if t.clock >= c.opened_until then Half_open
          else Open (c.opened_until - t.clock))

let open_templates t =
  Hashtbl.fold
    (fun name c acc ->
      if c.phase = `Open && t.clock < c.opened_until then name :: acc else acc)
    t.cells []
  |> List.sort compare

let openings t = t.openings
