open Template

(* ------------------------------------------------------------------ *)
(* Figure 2: xor decryption loop.

   mem[ptr] ^= key ; ptr += small ; branch back — in either order of the
   two independent middle steps.  The key may be an immediate or any
   register holding a folded constant (contribution (c)). *)

let decrypt_ops = [ Sem.Ra Insn.Xor ]

let xor_decrypt =
  let mem_step = Once (Mem_transform { ops = decrypt_ops; ptr = "ptr"; key = Bind "key"; width = Wany }) in
  let adv = Once (Ptr_advance { ptr = "ptr" }) in
  let back = Once Back_edge in
  let guards = [ Nonzero "key" ] in
  [
    make ~name:"decrypt-loop" ~description:"xor-with-constant decryption loop"
      ~guards [ mem_step; adv; back ];
    make ~name:"decrypt-loop" ~description:"xor decryption loop, pointer advanced first"
      ~guards [ adv; mem_step; back ];
  ]

(* ------------------------------------------------------------------ *)
(* Figure 7: ADMmutate's alternate decoder. A byte is loaded into a
   register, massaged by a sequence of mov/or/and/not/xor/add/sub/rotate
   operations, written back, and the pointer advances around a loop. *)

let alt_ops =
  [
    Sem.Ra Insn.Or;
    Sem.Ra Insn.And;
    Sem.Ra Insn.Xor;
    Sem.Ra Insn.Add;
    Sem.Ra Insn.Sub;
    Sem.Rnot;
    Sem.Rneg;
    Sem.Rshift Insn.Rol;
    Sem.Rshift Insn.Ror;
  ]

let alt_decoder =
  let load = Once (Load { dst = "val"; ptr = "ptr"; width = Wany }) in
  let transform = Many (Reg_transform { ops = alt_ops; reg = "val" }) in
  let store = Once (Store { src = "val"; ptr = "ptr"; width = Wany }) in
  let adv = Once (Ptr_advance { ptr = "ptr" }) in
  let back = Once Back_edge in
  [
    make ~name:"alt-decoder"
      ~description:"load/transform/store decoder loop (ADMmutate second family)"
      [ load; transform; store; adv; back ];
    make ~name:"alt-decoder"
      ~description:"load/transform/advance/store decoder loop"
      [ load; transform; adv; store; back ];
  ]

(* ------------------------------------------------------------------ *)
(* Figure 6: Linux shell spawning.  "/bin//sh" is 2f 62 69 6e 2f 2f 73 68,
   pushed as the little-endian words 0x68732f2f ("//sh") and 0x6e69622f
   ("/bin"); execve is int 0x80 with EAX = 11 by any constant route. *)

let hsh = 0x68732f2fl (* "//sh" *)
let bin = 0x6e69622fl (* "/bin" *)

let execve_syscall = Once (Syscall { vector = 0x80; al = Exact 11l; bl = Any })

let shell_spawn =
  [
    make ~name:"shell-spawn"
      ~description:"execve(\"/bin//sh\") built on the stack" ~max_gap:32
      [
        Once (Stack_const (Exact hsh));
        Once (Stack_const (Exact bin));
        execve_syscall;
      ];
    make ~name:"shell-spawn"
      ~description:"execve(\"/bin//sh\"), string words stored in reverse order"
      ~max_gap:32
      [
        Once (Stack_const (Exact bin));
        Once (Stack_const (Exact hsh));
        execve_syscall;
      ];
    make ~name:"shell-spawn"
      ~description:"execve via int 0x80 with folded EAX = 11 (string address from code)"
      ~max_gap:32
      [ execve_syscall ];
  ]

(* ------------------------------------------------------------------ *)
(* Port-binding extension: socketcall (socket, bind, listen/accept are all
   int 0x80 with EAX = 102), descriptor duplication (dup2, EAX = 63), then
   the shell spawn. *)

let socketcall ?(subcall = Any) () = Syscall { vector = 0x80; al = Exact 102l; bl = subcall }
let dup2 = Syscall { vector = 0x80; al = Exact 63l; bl = Any }

let port_bind_shell =
  [
    make ~name:"port-bind-shell"
      ~description:"socket/bind/listen, dup2, then execve: shell bound to a port"
      ~max_gap:48
      [
        Once (socketcall ~subcall:(Exact 1l) ());
        Once (socketcall ~subcall:(Exact 2l) ());
        Once (socketcall ());
        Once dup2;
        execve_syscall;
      ];
  ]

(* ------------------------------------------------------------------ *)
(* Connect-back (reverse) shell: socket, connect (socketcall subcall 3),
   dup2, execve.  The bind/listen/accept subcalls never appear. *)

let connect_back_shell =
  [
    make ~name:"connect-back-shell"
      ~description:"socket then connect, dup2, execve: shell pushed to a remote host"
      ~max_gap:48
      [
        Once (socketcall ~subcall:(Exact 1l) ());
        Once (socketcall ~subcall:(Exact 3l) ());
        Once dup2;
        execve_syscall;
      ];
  ]

(* ------------------------------------------------------------------ *)
(* Email worm propagation (the paper's stated future work): code that
   connects out (socketcall subcall 3) while carrying SMTP protocol verbs
   as data — the mass-mailer shape of the Netsky family. *)

let mass_mailer =
  [
    make ~name:"mass-mailer"
      ~description:"connect()ing code carrying SMTP verbs: email worm propagation"
      ~max_gap:48
      ~data:[ "MAIL FROM:"; "RCPT TO:" ]
      [
        Once (socketcall ~subcall:(Exact 1l) ());
        Once (socketcall ~subcall:(Exact 3l) ());
      ];
  ]

(* ------------------------------------------------------------------ *)
(* Code Red II initial exploitation vector: the unicode-encoded payload
   repeats the IIS-specific address constant 0x7801cbd3 (Figure 5). *)

let crii_const = 0x7801cbd3l

let code_red_ii =
  [
    make ~name:"code-red-ii"
      ~description:"repeated 0x7801cbd3 IIS addressing constant" ~max_gap:16
      [ Once (Code_const crii_const); Once (Code_const crii_const); Once (Code_const crii_const) ];
  ]

(* ------------------------------------------------------------------ *)
(* SQL Slammer vector: the sqlsort.dll jmp-esp address 0x42b0c9dc used
   both as the overwritten return address and inside the worm body, next
   to a self-send loop walking the worm image. *)

let slammer_const = 0x42B0C9DCl

let slammer =
  [
    make ~name:"slammer"
      ~description:"sqlsort.dll jmp-esp constant with a self-send loop" ~max_gap:24
      [
        Once (Ptr_advance { ptr = "ptr" });
        Once Back_edge;
        Once (Code_const slammer_const);
      ];
  ]

let default_set =
  xor_decrypt @ alt_decoder @ shell_spawn @ port_bind_shell
  @ connect_back_shell @ slammer @ mass_mailer @ code_red_ii

let xor_decrypt_only = xor_decrypt

let names ts =
  List.rev
    (List.fold_left
       (fun acc (t : Template.t) ->
         if List.mem t.name acc then acc else t.name :: acc)
       [] ts)
