(** The template-matching engine.

    Matching runs over recovered execution traces ({!Trace}).  A match
    binds template register variables to concrete registers (injectively)
    and constant variables to folded constant values, allows up to
    [max_gap] interleaved instructions between steps provided they do not
    write any bound register, and finally checks the template's guards.

    [scan] is the entry point used by the NIDS pipeline: it enumerates
    candidate entry offsets, builds traces, and reports at most one match
    per template for the code region. *)

type result = {
  template : string;
  entry : int;  (** trace entry offset that produced the match *)
  offsets : int list;  (** offsets of the matched instructions, in order *)
  reg_bindings : (Template.tvar * Reg.t) list;
  const_bindings : (Template.cvar * int32) list;
}

val match_trace : Template.t -> Trace.t -> entry:int -> result option
(** Try every start position along one trace. *)

val decode_memo_hits : string
(** Registry counter names {!scan} accumulates into:
    ["sanids_decode_memo_hits_total"], … *)

val decode_memo_misses : string
val scan_budget_exhausted : string

type scan_report = {
  results : result list;
  outcome : Budget.outcome;
      (** the shared budget's state after the scan; [Complete] when no
          budget was supplied *)
  tripped : string list;
      (** templates abandoned for hitting the per-template step cap —
          what the circuit breaker feeds on *)
}

val scan_report :
  ?entries:int list ->
  ?metrics:Sanids_obs.Registry.t ->
  ?memoize:bool ->
  ?budget:Budget.t ->
  ?step_cap:int ->
  templates:Template.t list ->
  string ->
  scan_report
(** Match templates against a raw code region.  By default every
    not-yet-covered byte offset is tried as a trace entry (bounded by a
    work budget); [entries] overrides that enumeration.  Templates
    sharing a name are variants of one behaviour: at most one result per
    template {e name}.

    Decoding is shared across entries through an {!Icache.t} unless
    [memoize] is [false] (results are identical either way; the flag
    exists so benchmarks can compare).  When [metrics] is given, the
    decode-memo hit/miss counts and budget exhaustion are accumulated
    into that registry under {!decode_memo_hits},
    {!decode_memo_misses} and {!scan_budget_exhausted}.

    Adversarial-load bounds: [budget] charges trace instructions and
    matcher step attempts to the packet's shared {!Budget.t} (the scan
    stops cleanly when fuel runs out and the report's [outcome] says
    so); [step_cap] limits each template {e name}'s step attempts within
    this scan — a template that hits it is abandoned and listed in
    [tripped] while every other template keeps matching.  With neither
    supplied, behaviour and results are exactly the unbudgeted
    matcher's. *)

val scan_report_slice :
  ?entries:int list ->
  ?metrics:Sanids_obs.Registry.t ->
  ?memoize:bool ->
  ?budget:Budget.t ->
  ?step_cap:int ->
  templates:Template.t list ->
  Slice.t ->
  scan_report
(** {!scan_report} over a payload view.  The data prefilter (one
    Aho–Corasick pass answering every template's byte-string
    requirements) runs on the slice in place; the region is materialized
    to a string only when at least one template survives it — on benign
    traffic the common case is that none does and nothing is copied. *)

val scan :
  ?entries:int list ->
  ?metrics:Sanids_obs.Registry.t ->
  ?memoize:bool ->
  ?budget:Budget.t ->
  ?step_cap:int ->
  templates:Template.t list ->
  string ->
  result list
(** [scan_report] projected to its results. *)

val satisfies : Template.t -> string -> bool
(** The paper's [P |= T] relation, for one region of code. *)

val pp_result : Format.formatter -> result -> unit

type evidence = {
  ev_template : string;  (** template name that matched *)
  ev_entry : int;  (** byte offset of the trace entry — where execution
                       of the matched behaviour starts *)
  ev_span : (int * int) option;
      (** lowest and highest matched-instruction offsets; [None] for
          fabricated results that carry no offsets (degraded fallback) *)
  ev_consts : (Template.cvar * int32) list;
      (** constant-variable bindings, e.g. the bound decoder key *)
}
(** Structured match evidence — the seam the dynamic-confirmation stage
    consumes.  Everything a second verdict stage needs to seed an
    emulator (entry point, matched region, bound constants) without
    re-deriving it from the offset list. *)

val evidence : result -> evidence
