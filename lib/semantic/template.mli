(** Behavioural templates, after Christodorescu et al. (the paper's [5]).

    A template describes {e behaviour}: a sequence of semantic steps over
    register variables and constant variables, plus guards on the bound
    constants.  A program satisfies a template iff some execution-order
    instruction sequence exhibits every step in order, with consistent
    variable bindings, where instructions that do not disturb the bound
    state may be freely interleaved (junk/NOP insertion), register names
    are unified per match (register reassignment), and constants are
    recognized through any arithmetic route ({!Constprop}). *)

type tvar = string
(** Register variable, e.g. ["ptr"]. *)

type cvar = string
(** Constant variable, e.g. ["key"]. *)

type pval =
  | Exact of int32  (** must be a known constant with this value *)
  | Any  (** no constraint (need not even be a constant) *)
  | Bind of cvar  (** any known constant; bound for guards / later steps *)
  | Same of cvar  (** a known constant equal to an earlier binding *)

type width_req = W8 | W32 | Wany

type pstep =
  | Load of { dst : tvar; ptr : tvar; width : width_req }
      (** a register receives the byte/word at [\[ptr\]] *)
  | Mem_transform of {
      ops : Sem.rop list;
      ptr : tvar;
      key : pval;
      width : width_req;
    }  (** read-modify-write of [\[ptr\]] by one of [ops] *)
  | Reg_transform of { ops : Sem.rop list; reg : tvar }
      (** arithmetic on a bound register (decoder working value) *)
  | Store of { src : tvar; ptr : tvar; width : width_req }
  | Ptr_advance of { ptr : tvar }
      (** pointer stepped by a small constant, any spelling *)
  | Back_edge
      (** a backwards branch to (at or before) the first matched step *)
  | Syscall of { vector : int; al : pval; bl : pval }
      (** [int vector] with the low bytes of EAX and (optionally) EBX
          constrained — EBX selects the socketcall subcall on Linux *)
  | Stack_const of pval
      (** a known constant placed on the stack or into memory *)
  | Code_const of int32
      (** any instruction carrying this immediate or displacement *)

type quant =
  | Once of pstep
  | Many of pstep  (** one or more, possibly interleaved with junk *)

type guard =
  | Nonzero of cvar
  | Equals of cvar * int32
  | One_of of cvar * int32 list
  | Differ of cvar * cvar

type t = {
  name : string;
  description : string;
  steps : quant list;
  guards : guard list;
  max_gap : int;
      (** maximum skipped instructions between consecutive matched steps *)
  data : string list;
      (** byte strings that must appear verbatim somewhere in the scanned
          region — worm bodies carry protocol verbs ("MAIL FROM:") as
          data next to their propagation code *)
}

val make :
  name:string -> description:string -> ?guards:guard list -> ?max_gap:int ->
  ?data:string list -> quant list -> t
(** [max_gap] defaults to 24; [data] to []. *)

val check_guard : (cvar * int32) list -> guard -> bool
(** Evaluate one guard against bound constants; unbound variables fail. *)

val pp : Format.formatter -> t -> unit
val pp_pstep : Format.formatter -> pstep -> unit
