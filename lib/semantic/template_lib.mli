(** The template set used in the paper's evaluation.

    Each entry is a list of variants sharing one name (orderings of
    independent steps); alerts deduplicate by name.

    - {!xor_decrypt} — Figure 2: the xor-with-constant decryption loop.
      Matches all three Figure 1 routines and Clet-style decoders.
    - {!alt_decoder} — Figure 7: ADMmutate's second decoder family, a
      load / (mov-or-and-not-…)+ / store / advance loop on a single
      (memory, register) pair.
    - {!shell_spawn} — Figure 6: Linux [execve("/bin//sh")] behaviour via
      [int 0x80] with EAX = 11, with the "/bin//sh" stack-construction
      variant preferred and the bare folded-constant syscall as fallback.
    - {!port_bind_shell} — the Figure 6 extension: socketcall
      (socket/bind/listen), dup2, then execve.
    - {!code_red_ii} — the Code Red II exploitation vector: the
      characteristic repeated 0x7801cbd3 IIS addressing constant.  *)

val xor_decrypt : Template.t list
val alt_decoder : Template.t list
val shell_spawn : Template.t list
val port_bind_shell : Template.t list

val connect_back_shell : Template.t list
(** Beyond the paper's set (its stated future work): socket/connect,
    dup2, execve — the reverse shell behaviour. *)

val mass_mailer : Template.t list
(** The paper's stated future work ("email worms"): outbound-connecting
    code carrying SMTP verbs as data. *)

val slammer : Template.t list
(** Beyond the paper's set: the SQL Slammer vector (sqlsort.dll jmp-esp
    constant plus a self-send loop over the worm image). *)

val code_red_ii : Template.t list

val default_set : Template.t list
(** Everything above — the NIDS's shipped template set. *)

val xor_decrypt_only : Template.t list
(** Just {!xor_decrypt}: the template set of the paper's first ADMmutate
    run (the 68%-detection configuration of Table 2). *)

val names : Template.t list -> string list
(** Deduplicated names, in first-appearance order. *)
