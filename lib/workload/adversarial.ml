type kind =
  | Unicode_bomb
  | Repetition_bomb
  | Jmp_maze
  | Garbage_x86
  | Decoy_decoder
  | Mixed

let kinds =
  [ Unicode_bomb; Repetition_bomb; Jmp_maze; Garbage_x86; Decoy_decoder ]

let kind_to_string = function
  | Unicode_bomb -> "unicode_bomb"
  | Repetition_bomb -> "repetition_bomb"
  | Jmp_maze -> "jmp_maze"
  | Garbage_x86 -> "garbage_x86"
  | Decoy_decoder -> "decoy_decoder"
  | Mixed -> "mixed"

let kind_of_string = function
  | "unicode_bomb" -> Some Unicode_bomb
  | "repetition_bomb" -> Some Repetition_bomb
  | "jmp_maze" -> Some Jmp_maze
  | "garbage_x86" -> Some Garbage_x86
  | "decoy_decoder" -> Some Decoy_decoder
  | "mixed" -> Some Mixed
  | _ -> None

let hex = "0123456789abcdef"

(* One giant %uXXXX run riding a plausible request line: each escape is
   6 wire bytes but decodes to 2 payload bytes, and the run length is
   what the extractor's caps exist to bound. *)
let unicode_bomb rng size =
  let b = Buffer.create size in
  Buffer.add_string b "GET /default.ida?";
  while Buffer.length b < size do
    Buffer.add_string b "%u";
    for _ = 1 to 4 do
      Buffer.add_char b hex.[Rng.int rng 16]
    done
  done;
  Buffer.add_string b " HTTP/1.0\r\n\r\n";
  Buffer.contents b

(* Filler runs in several flavours: one solid run, blocks of distinct
   run bytes, and runs chopped just around typical scanner thresholds so
   every boundary case gets exercised. *)
let repetition_bomb rng size =
  let b = Buffer.create size in
  let fillers = [| '\x90'; 'A'; '\x00'; '\xcc'; ' ' |] in
  (match Rng.int rng 3 with
  | 0 -> Buffer.add_string b (String.make size (Rng.pick rng fillers))
  | 1 ->
      while Buffer.length b < size do
        let run = 32 + Rng.int rng 96 in
        Buffer.add_string b (String.make run (Rng.pick rng fillers))
      done
  | _ ->
      while Buffer.length b < size do
        let run = 40 + Rng.int rng 16 in
        Buffer.add_string b (String.make run (Rng.pick rng fillers));
        Buffer.add_char b (Char.chr (0x80 lor Rng.int rng 0x80))
      done);
  Buffer.contents b

(* Dense short-jmp soup: almost every offset decodes as [jmp rel8] into
   another jmp, so trace walking from any entry hops until something
   stops it.  A sprinkling of [jmp rel32] and int3 varies the decode. *)
let jmp_maze rng size =
  let b = Bytes.create size in
  let i = ref 0 in
  while !i < size do
    if !i + 5 <= size && Rng.chance rng 0.1 then begin
      Bytes.set b !i '\xe9';
      for k = 1 to 4 do
        Bytes.set b (!i + k) (Char.chr (Rng.int rng 256))
      done;
      i := !i + 5
    end
    else if !i + 2 <= size then begin
      Bytes.set b !i '\xeb';
      Bytes.set b (!i + 1) (Char.chr (Rng.int rng 256));
      i := !i + 2
    end
    else begin
      Bytes.set b !i '\xcc';
      incr i
    end
  done;
  Bytes.to_string b

(* Uniform random bytes: non-printable enough that the extractor cuts
   big raw regions, and junk enough that every entry offset decodes
   differently. *)
let garbage_x86 rng size = Rng.bytes rng size

module Insn = Sanids_x86.Insn
module Asm = Sanids_x86.Asm
module X86_reg = Sanids_x86.Reg

(* A decoder-shaped false positive: a NOP sled into a textbook xor-loop
   (xor byte [esi], key / inc esi / loop) that the semantic matcher must
   flag — but whose pointer is a wild address far outside any mapped
   image, so concretely executing it faults on the very first store.
   Purely static analysis cannot tell it from ADMmutate; the
   dynamic-confirmation stage refutes it in a handful of steps. *)
let decoy_decoder rng size =
  let wild = Int32.logor 0x0BAD0000l (Int32.of_int (Rng.int rng 0x10000)) in
  let key = 1 + Rng.int rng 255 in
  let count = 32 + Rng.int rng 64 in
  let body =
    Asm.assemble
      [
        Asm.I (Insn.Mov (Insn.S32bit, Insn.Reg X86_reg.ESI, Insn.Imm wild));
        Asm.I
          (Insn.Mov (Insn.S32bit, Insn.Reg X86_reg.ECX, Insn.Imm (Int32.of_int count)));
        Asm.Label "decode";
        Asm.I
          (Insn.Arith
             ( Insn.Xor,
               Insn.S8bit,
               Insn.Mem (Insn.mem_base X86_reg.ESI),
               Insn.Imm (Int32.of_int key) ));
        Asm.I (Insn.Inc (Insn.S32bit, Insn.Reg X86_reg.ESI));
        Asm.Loop_to "decode";
        Asm.I Insn.Int3;
      ]
  in
  let sled = String.make (24 + Rng.int rng 40) '\x90' in
  let b = Buffer.create size in
  Buffer.add_string b sled;
  Buffer.add_string b body;
  if Buffer.length b < size then
    Buffer.add_string b (Rng.bytes rng (size - Buffer.length b));
  Buffer.contents b

let payload ?(kind = Mixed) ?(size = 8192) rng =
  let kind = match kind with Mixed -> Rng.pick_list rng kinds | k -> k in
  match kind with
  | Unicode_bomb -> unicode_bomb rng size
  | Repetition_bomb -> repetition_bomb rng size
  | Jmp_maze -> jmp_maze rng size
  | Garbage_x86 -> garbage_x86 rng size
  | Decoy_decoder -> decoy_decoder rng size
  | Mixed -> assert false

let pick_addr rng p =
  let size = min (Ipaddr.prefix_size p) (1 lsl 16) in
  Ipaddr.nth p (Rng.int rng size)

let packet ?kind ?size rng ~ts ~clients ~servers =
  Packet.build_tcp ~ts ~src:(pick_addr rng clients) ~dst:(pick_addr rng servers)
    ~src_port:(1024 + Rng.int rng 60000) ~dst_port:80
    (payload ?kind ?size rng)

let seq ?kind ?size ?(rate = 1000.0) rng ~n ~t0 ~clients ~servers =
  let rec gen i ts () =
    if i >= n then Seq.Nil
    else begin
      let dt = -.log (1.0 -. Rng.float rng 0.999999) /. rate in
      let ts = ts +. dt in
      Seq.Cons (packet ?kind ?size rng ~ts ~clients ~servers, gen (i + 1) ts)
    end
  in
  gen 0 t0

let packets ?kind ?size ?rate rng ~n ~t0 ~clients ~servers =
  List.of_seq (seq ?kind ?size ?rate rng ~n ~t0 ~clients ~servers)
