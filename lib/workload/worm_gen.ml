type truth = {
  total_packets : int;
  crii_instances : int;
  scan_packets : int;
  infected_sources : Ipaddr.t list;
}

let pick_addr rng p =
  let size = min (Ipaddr.prefix_size p) (1 lsl 16) in
  Ipaddr.nth p (Rng.int rng size)

let scan_packet rng ~ts ~src ~unused =
  let dst = pick_addr rng unused in
  Packet.build_tcp ~ts ~src ~dst ~src_port:(1024 + Rng.int rng 60000) ~dst_port:80
    ~flags:Sanids_net.Tcp.flags_syn ""

let slammer_trace rng ~benign ~infected ~sprays_per_host ~clients ~servers ~unused
    ~duration =
  let background =
    Benign_gen.packets rng
      ~rate:(float_of_int benign /. Float.max duration 1e-6)
      ~n:benign ~t0:0.0 ~clients ~servers
  in
  let sources =
    List.init infected (fun k ->
        Ipaddr.of_octets 198 (24 + (k mod 4)) (Rng.int rng 256) (1 + Rng.int rng 250))
  in
  let attack =
    List.concat_map
      (fun src ->
        let base = Rng.float rng (Float.max (duration -. 2.0) 1.0) in
        let sprays =
          List.init sprays_per_host (fun s ->
              let dst = pick_addr rng unused in
              let w =
                Sanids_exploits.Slammer.packet
                  ~ts:(base +. (0.02 *. float_of_int s))
                  ~src ~dst ()
              in
              w)
        in
        let delivery =
          Sanids_exploits.Slammer.packet
            ~ts:(base +. (0.02 *. float_of_int sprays_per_host) +. 0.1)
            ~src ~dst:(pick_addr rng servers) ()
        in
        sprays @ [ delivery ])
      sources
  in
  let all =
    List.sort (fun a b -> compare a.Packet.ts b.Packet.ts) (background @ attack)
  in
  ( all,
    {
      total_packets = List.length all;
      crii_instances = infected;
      scan_packets = infected * sprays_per_host;
      infected_sources = sources;
    } )

let code_red_trace rng ~benign ~instances ~scans_per_instance ~clients ~servers
    ~unused ~duration =
  let background =
    Benign_gen.packets rng
      ~rate:(float_of_int benign /. Float.max duration 1e-6)
      ~n:benign ~t0:0.0 ~clients ~servers
  in
  let infected =
    List.init instances (fun k ->
        (* infected hosts live outside the monitored nets *)
        Ipaddr.of_octets 198 (18 + (k mod 4)) (Rng.int rng 256) (1 + Rng.int rng 250))
  in
  let attack =
    List.concat
      (List.mapi
         (fun k src ->
           let base = Rng.float rng (Float.max (duration -. 2.0) 1.0) in
           let scans =
             List.init scans_per_instance (fun s ->
                 scan_packet rng
                   ~ts:(base +. (0.05 *. float_of_int s))
                   ~src ~unused)
           in
           let victim = pick_addr rng servers in
           let exploit =
             Sanids_exploits.Code_red.packet
               ~ts:(base +. (0.05 *. float_of_int scans_per_instance) +. 0.2)
               ~src ~dst:victim
               ~src_port:(1024 + ((k * 13) mod 60000))
               ()
           in
           scans @ [ exploit ])
         infected)
  in
  let all =
    List.sort (fun a b -> compare a.Packet.ts b.Packet.ts) (background @ attack)
  in
  ( all,
    {
      total_packets = List.length all;
      crii_instances = instances;
      scan_packets = instances * scans_per_instance;
      infected_sources = infected;
    } )
