(** Seeded adversarial traffic synthesis — algorithmic-complexity bombs
    aimed at the analysis path itself.

    Each payload family targets one stage's worst case: giant [%uXXXX]
    escape runs balloon Unicode decoding, repetition bombs stretch the
    filler-run scanners, jmp-chain mazes force the trace walker through
    endless hops, and garbage x86 makes the disassembler chew junk at
    every offset.  None of them exhibits real exploit behaviour, so the
    correct verdict is silence — the interesting question is how much
    work the pipeline burns saying it.  The hardening tests and the
    bench harness both draw from here. *)

type kind =
  | Unicode_bomb  (** one giant [%uXXXX] run (decoder amplification) *)
  | Repetition_bomb  (** long filler runs in many flavours *)
  | Jmp_maze  (** dense jmp-to-jmp chains for the trace walker *)
  | Garbage_x86  (** high-entropy non-printable bytes, junk at every entry *)
  | Decoy_decoder
      (** a NOP sled into a textbook xor-decoder whose pointer is a wild
          unmapped address: statically indistinguishable from ADMmutate
          (the semantic matcher flags it), concretely a fault on the
          first store — the false positive the dynamic-confirmation
          stage exists to refute *)
  | Mixed  (** one of the above, drawn per payload *)

val kinds : kind list
(** The concrete kinds (everything but [Mixed]). *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val payload : ?kind:kind -> ?size:int -> Rng.t -> string
(** One adversarial payload of roughly [size] bytes (default 8192);
    [kind] defaults to [Mixed]. *)

val packet :
  ?kind:kind ->
  ?size:int ->
  Rng.t ->
  ts:float ->
  clients:Ipaddr.prefix ->
  servers:Ipaddr.prefix ->
  Packet.t
(** One adversarial payload in a TCP segment to port 80. *)

val packets :
  ?kind:kind ->
  ?size:int ->
  ?rate:float ->
  Rng.t ->
  n:int ->
  t0:float ->
  clients:Ipaddr.prefix ->
  servers:Ipaddr.prefix ->
  Packet.t list
(** [n] adversarial packets with exponential inter-arrivals at [rate]
    packets/s (default 1000), timestamps from [t0]. *)

val seq :
  ?kind:kind ->
  ?size:int ->
  ?rate:float ->
  Rng.t ->
  n:int ->
  t0:float ->
  clients:Ipaddr.prefix ->
  servers:Ipaddr.prefix ->
  Packet.t Seq.t
(** Lazy variant for long floods. *)
