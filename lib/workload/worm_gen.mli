(** Worm-outbreak synthesis with exact ground truth (Table 3 workload).

    Infected hosts scan the monitored network — hitting unused address
    space, which trips the scan classifier — and deliver the Code Red II
    exploitation vector to web servers.  The builder reports exactly how
    many exploit instances the trace contains, which is the number the
    NIDS must find. *)

type truth = {
  total_packets : int;
  crii_instances : int;  (** exploit deliveries present *)
  scan_packets : int;
  infected_sources : Ipaddr.t list;
}

val code_red_trace :
  Rng.t ->
  benign:int ->
  instances:int ->
  scans_per_instance:int ->
  clients:Ipaddr.prefix ->
  servers:Ipaddr.prefix ->
  unused:Ipaddr.prefix ->
  duration:float ->
  Packet.t list * truth
(** A [duration]-second trace: [benign] background packets, plus
    [instances] exploit deliveries, each preceded by
    [scans_per_instance] scans into the unused space from the same
    infected source (so the classifier has flagged the source before
    the exploit arrives).  Packets are time-sorted. *)

val slammer_trace :
  Rng.t ->
  benign:int ->
  infected:int ->
  sprays_per_host:int ->
  clients:Ipaddr.prefix ->
  servers:Ipaddr.prefix ->
  unused:Ipaddr.prefix ->
  duration:float ->
  Packet.t list * truth
(** A UDP worm outbreak: every probe an infected host sends {e is} the
    full Slammer datagram, so scanning and exploitation are the same
    packet.  Each host sprays [sprays_per_host] probes into the unused
    space (tripping the classifier) and one delivery at a live server;
    [crii_instances] in the returned truth counts those deliveries. *)

val scan_packet :
  Rng.t -> ts:float -> src:Ipaddr.t -> unused:Ipaddr.prefix -> Packet.t
(** One worm scan probe: an empty-ish TCP SYN-like packet to a random
    unused address, port 80. *)
