(** Seeded benign traffic synthesis.

    Stands in for the paper's production traces (Wisconsin Advanced
    Internet Laboratory captures; a month of Class C web traffic).  The
    mix is mostly well-formed HTTP with some SMTP, DNS and binary file
    transfer, none of it containing decoder loops, shell spawns or the
    Code Red vector — so any alert over this traffic is a false
    positive by construction. *)

type mix = {
  http : float;
  smtp : float;
  dns : float;
  binary : float;  (** compressed/media-like uploads: high-entropy data *)
}

val default_mix : mix

val payload : ?mix:mix -> Rng.t -> string
(** One application payload drawn from the mix. *)

val packet :
  ?mix:mix ->
  Rng.t ->
  ts:float ->
  clients:Ipaddr.prefix ->
  servers:Ipaddr.prefix ->
  Packet.t

val packets :
  ?mix:mix ->
  ?rate:float ->
  Rng.t ->
  n:int ->
  t0:float ->
  clients:Ipaddr.prefix ->
  servers:Ipaddr.prefix ->
  Packet.t list
(** [n] packets with exponential inter-arrivals at [rate] packets/s
    (default 1000), timestamps from [t0]. *)

val radiation_packet :
  Rng.t -> ts:float -> servers:Ipaddr.prefix -> Packet.t
(** Internet background radiation (the paper's ref [15]): stray SYNs,
    orphan ACKs, malformed half-requests, tiny UDP probes from random
    external sources.  Harmless noise that a NIDS must not alert on. *)

val packets_with_radiation :
  ?radiation:float ->
  Rng.t ->
  n:int ->
  t0:float ->
  clients:Ipaddr.prefix ->
  servers:Ipaddr.prefix ->
  Packet.t list
(** Like {!packets} with a [radiation] fraction (default 0.05) of
    background-radiation packets mixed in. *)

val seq :
  ?mix:mix ->
  ?rate:float ->
  Rng.t ->
  n:int ->
  t0:float ->
  clients:Ipaddr.prefix ->
  servers:Ipaddr.prefix ->
  Packet.t Seq.t
(** Lazy variant for month-scale corpora. *)
