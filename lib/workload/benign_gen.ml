type mix = { http : float; smtp : float; dns : float; binary : float }

let default_mix = { http = 0.72; smtp = 0.10; dns = 0.10; binary = 0.08 }

let words =
  [|
    "index"; "images"; "about"; "contact"; "news"; "archive"; "search";
    "static"; "media"; "login"; "account"; "docs"; "report"; "q3"; "draft";
    "main"; "styles"; "script"; "photo"; "data";
  |]

let exts = [| "html"; "css"; "js"; "png"; "jpg"; "pdf"; "txt"; "xml" |]

let hosts = [| "www.example.com"; "mail.campus.edu"; "files.dept.edu"; "news.portal.net" |]

let agents =
  [|
    "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)";
    "Mozilla/5.0 (X11; U; Linux i686) Gecko/20060124";
    "Wget/1.10.2"; "Opera/8.54";
  |]

let path rng =
  let depth = 1 + Rng.int rng 3 in
  let parts = List.init depth (fun _ -> Rng.pick rng words) in
  "/" ^ String.concat "/" parts ^ "." ^ Rng.pick rng exts

let sentence rng =
  let n = 4 + Rng.int rng 10 in
  String.concat " " (List.init n (fun _ -> Rng.pick rng words))

let http_payload rng =
  if Rng.chance rng 0.7 then
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nUser-Agent: %s\r\nAccept: */*\r\nConnection: keep-alive\r\n\r\n"
      (path rng) (Rng.pick rng hosts) (Rng.pick rng agents)
  else begin
    let body = Printf.sprintf "user=%s&comment=%s" (Rng.pick rng words) (sentence rng) in
    Printf.sprintf "POST /%s/submit HTTP/1.1\r\nHost: %s\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: %d\r\n\r\n%s"
      (Rng.pick rng words) (Rng.pick rng hosts) (String.length body) body
  end

let smtp_payload rng =
  match Rng.int rng 4 with
  | 0 -> Printf.sprintf "EHLO %s\r\n" (Rng.pick rng hosts)
  | 1 -> Printf.sprintf "MAIL FROM:<%s@%s>\r\n" (Rng.pick rng words) (Rng.pick rng hosts)
  | 2 -> Printf.sprintf "RCPT TO:<%s@%s>\r\n" (Rng.pick rng words) (Rng.pick rng hosts)
  | _ ->
      Printf.sprintf "Subject: %s\r\n\r\n%s\r\n%s\r\n.\r\n" (sentence rng) (sentence rng)
        (sentence rng)

(* A DNS query message: header + one QNAME question. *)
let dns_payload rng =
  let w = Byte_io.Writer.create ~capacity:48 () in
  Byte_io.Writer.u16_be w (Rng.int rng 0x10000);
  (* id *)
  Byte_io.Writer.u16_be w 0x0100;
  (* RD *)
  Byte_io.Writer.u16_be w 1;
  Byte_io.Writer.u16_be w 0;
  Byte_io.Writer.u16_be w 0;
  Byte_io.Writer.u16_be w 0;
  let name = Rng.pick rng words in
  Byte_io.Writer.u8 w (String.length name);
  Byte_io.Writer.string w name;
  Byte_io.Writer.u8 w 3;
  Byte_io.Writer.string w "edu";
  Byte_io.Writer.u8 w 0;
  Byte_io.Writer.u16_be w 1;
  (* A *)
  Byte_io.Writer.u16_be w 1;
  (* IN *)
  Byte_io.Writer.contents w

(* High-entropy media-like data: exercises the binary extractor without
   containing meaningful code behaviour. *)
let binary_payload rng =
  let n = 200 + Rng.int rng 800 in
  let magic = Rng.pick rng [| "\x89PNG\r\n"; "\xff\xd8\xff\xe0"; "PK\x03\x04"; "\x1f\x8b\x08" |] in
  magic ^ Rng.bytes rng n

let payload ?(mix = default_mix) rng =
  let x = Rng.float rng (mix.http +. mix.smtp +. mix.dns +. mix.binary) in
  if x < mix.http then http_payload rng
  else if x < mix.http +. mix.smtp then smtp_payload rng
  else if x < mix.http +. mix.smtp +. mix.dns then dns_payload rng
  else binary_payload rng

let pick_addr rng p =
  let size = min (Ipaddr.prefix_size p) (1 lsl 16) in
  Ipaddr.nth p (Rng.int rng size)

let packet ?(mix = default_mix) rng ~ts ~clients ~servers =
  let src = pick_addr rng clients in
  let dst = pick_addr rng servers in
  let x = Rng.float rng (mix.http +. mix.smtp +. mix.dns +. mix.binary) in
  if x < mix.http then
    Packet.build_tcp ~ts ~src ~dst ~src_port:(1024 + Rng.int rng 60000) ~dst_port:80
      (http_payload rng)
  else if x < mix.http +. mix.smtp then
    Packet.build_tcp ~ts ~src ~dst ~src_port:(1024 + Rng.int rng 60000) ~dst_port:25
      (smtp_payload rng)
  else if x < mix.http +. mix.smtp +. mix.dns then
    Packet.build_udp ~ts ~src ~dst ~src_port:(1024 + Rng.int rng 60000) ~dst_port:53
      (dns_payload rng)
  else
    Packet.build_tcp ~ts ~src ~dst ~src_port:(1024 + Rng.int rng 60000) ~dst_port:80
      (binary_payload rng)

let seq ?mix ?(rate = 1000.0) rng ~n ~t0 ~clients ~servers =
  let rec gen i ts () =
    if i >= n then Seq.Nil
    else begin
      let dt = -.log (1.0 -. Rng.float rng 0.999999) /. rate in
      let ts = ts +. dt in
      Seq.Cons (packet ?mix rng ~ts ~clients ~servers, gen (i + 1) ts)
    end
  in
  gen 0 t0

let packets ?mix ?rate rng ~n ~t0 ~clients ~servers =
  List.of_seq (seq ?mix ?rate rng ~n ~t0 ~clients ~servers)

(* background radiation: traffic with no useful payload from the wider
   internet — must never trip the analyzer *)
let radiation_packet rng ~ts ~servers =
  let src =
    Ipaddr.of_octets (1 + Rng.int rng 223) (Rng.int rng 256) (Rng.int rng 256)
      (1 + Rng.int rng 254)
  in
  let dst = pick_addr rng servers in
  match Rng.int rng 4 with
  | 0 ->
      (* stray SYN *)
      Packet.build_tcp ~ts ~src ~dst ~src_port:(1024 + Rng.int rng 60000)
        ~dst_port:(Rng.pick rng [| 80; 135; 139; 445; 1433; 3389 |])
        ~flags:Sanids_net.Tcp.flags_syn ""
  | 1 ->
      (* orphan ACK *)
      Packet.build_tcp ~ts ~src ~dst ~src_port:(1024 + Rng.int rng 60000)
        ~dst_port:80 ~flags:Sanids_net.Tcp.flags_ack ""
  | 2 ->
      (* malformed half-request *)
      Packet.build_tcp ~ts ~src ~dst ~src_port:(1024 + Rng.int rng 60000)
        ~dst_port:80
        (Rng.pick rng [| "GET "; "HEAD / HT"; "\r\n\r\n"; "OPTIONS * "; "GEX /? H" |])
  | _ ->
      (* tiny UDP probe *)
      Packet.build_udp ~ts ~src ~dst ~src_port:(1024 + Rng.int rng 60000)
        ~dst_port:(Rng.pick rng [| 53; 123; 137; 161; 1434 |])
        (Rng.bytes rng (Rng.int rng 12))

let packets_with_radiation ?(radiation = 0.05) rng ~n ~t0 ~clients ~servers =
  List.map
    (fun p ->
      if Rng.chance rng radiation then radiation_packet rng ~ts:p.Packet.ts ~servers
      else p)
    (packets rng ~n ~t0 ~clients ~servers)
