type origin = Unicode_escape | Raw_binary
type frame = { off : int; data : Slice.t; origin : origin }

type config = {
  min_unicode_run : int;
  min_repeat : int;
  min_binary_region : int;
  gap_merge : int;
  context_before : int;
  context_after : int;
  max_frames : int;
  max_frame_bytes : int;
}

let default_config =
  {
    min_unicode_run = 4;
    min_repeat = 48;
    min_binary_region = 24;
    gap_merge = 16;
    context_before = 192;
    context_after = 64;
    max_frames = 16;
    max_frame_bytes = 65_536;
  }

(* Text bytes: printable ASCII plus whitespace. *)
let is_text c =
  let b = Char.code c in
  (b >= 0x20 && b < 0x7F) || b = 0x09 || b = 0x0A || b = 0x0D

(* Maximal [gap_merge]-merged regions of non-text bytes of at least
   [min_len], as (start, length) pairs. *)
let binary_regions ~min_len ~gap_merge s =
  let n = Slice.length s in
  let raw = ref [] in
  let i = ref 0 in
  while !i < n do
    if not (is_text (Slice.unsafe_get s !i)) then begin
      let j = ref (!i + 1) in
      while !j < n && not (is_text (Slice.unsafe_get s !j)) do
        incr j
      done;
      raw := (!i, !j - !i) :: !raw;
      i := !j
    end
    else incr i
  done;
  let merged =
    List.fold_left
      (fun acc (o, l) ->
        match acc with
        | (po, pl) :: tl when o - (po + pl) <= gap_merge -> (po, o + l - po) :: tl
        | _ -> (o, l) :: acc)
      []
      (List.rev !raw)
  in
  List.rev (List.filter (fun (_, l) -> l >= min_len) merged)

(* The repetition scanners honour the frame-size ceiling: structure past
   it could never become (part of) a frame, so an adversarially long
   reassembled stream costs O(max_frame_bytes), not O(stream). *)
let suspicious ?(config = default_config) payload =
  let max_scan = config.max_frame_bytes in
  Unicode.unicode_runs ~min_run:config.min_unicode_run ~max_decoded:0 payload <> []
  || Repetition.runs ~min_len:config.min_repeat ~max_scan payload <> []
  || Repetition.sled_like ~max_scan payload <> []
  || Repetition.ret_address_runs ~max_scan payload <> []
  || binary_regions ~min_len:config.min_binary_region ~gap_merge:config.gap_merge
       payload
     <> []

module Obs = Sanids_obs

(* Per-origin frame accounting when a registry is supplied. *)
let record_frames reg frames =
  let bump name help n =
    if n > 0 then Obs.Registry.add (Obs.Registry.counter reg ~help name) n
  in
  let unicode, raw, bytes =
    List.fold_left
      (fun (u, r, b) f ->
        match f.origin with
        | Unicode_escape -> (u + 1, r, b + Slice.length f.data)
        | Raw_binary -> (u, r + 1, b + Slice.length f.data))
      (0, 0, 0) frames
  in
  bump "sanids_extract_unicode_frames_total"
    "frames recovered from %uXXXX escape runs" unicode;
  bump "sanids_extract_raw_frames_total"
    "frames cut from raw binary regions" raw;
  bump "sanids_extract_bytes_total" "bytes across all extracted frames" bytes

let extract_frames ?budget ~config payload =
  let n = Slice.length payload in
  let unicode_frames =
    List.map
      (fun (r : Unicode.run) ->
        {
          off = r.Unicode.off;
          data = Slice.of_string r.Unicode.decoded;
          origin = Unicode_escape;
        })
      (Unicode.unicode_runs ~min_run:config.min_unicode_run
         ~max_decoded:config.max_frame_bytes payload)
  in
  let raw_frames =
    List.map
      (fun (o, l) ->
        let start = max 0 (o - config.context_before) in
        let stop = min n (o + l + config.context_after) in
        let stop = min stop (start + config.max_frame_bytes) in
        (* a raw frame is a re-view of the payload, not a copy *)
        {
          off = start;
          data = Slice.sub payload ~off:start ~len:(stop - start);
          origin = Raw_binary;
        })
      (binary_regions ~min_len:config.min_binary_region ~gap_merge:config.gap_merge
         payload)
  in
  let all =
    List.sort (fun a b -> compare a.off b.off) (unicode_frames @ raw_frames)
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | f :: tl -> (
        match budget with
        | Some b when not (Budget.take_bytes b (Slice.length f.data)) ->
            (* out of extraction fuel: everything materialized so far is
               still analyzed, the rest of the payload is not *)
            []
        | Some _ | None -> f :: take (k - 1) tl)
  in
  take config.max_frames all

let extract ?budget ?metrics ?(config = default_config) payload =
  let frames = extract_frames ?budget ~config payload in
  (match metrics with None -> () | Some reg -> record_frames reg frames);
  frames

let extract_bounded ?metrics ?(config = default_config) ~budget payload =
  let frames = extract ~budget ?metrics ~config payload in
  (frames, Budget.outcome budget)

let pp_frame ppf f =
  Format.fprintf ppf "frame@@%d %s %d bytes" f.off
    (match f.origin with Unicode_escape -> "unicode" | Raw_binary -> "raw")
    (Slice.length f.data)
