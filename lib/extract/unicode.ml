type run = { off : int; count : int; decoded : string }

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode_u_escape s i =
  if i + 6 > Slice.length s then None
  else
    let c k = Slice.unsafe_get s (i + k) in
    if not (c 0 = '%' && (c 1 = 'u' || c 1 = 'U')) then None
    else
      match (hex_digit (c 2), hex_digit (c 3), hex_digit (c 4), hex_digit (c 5)) with
      | Some a, Some b, Some c, Some d ->
          Some ((a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d, i + 6)
      | _, _, _, _ -> None

let unicode_runs ?(min_run = 4) ?(max_decoded = max_int) s =
  let n = Slice.length s in
  let runs = ref [] in
  let i = ref 0 in
  while !i < n do
    match decode_u_escape s !i with
    | None -> incr i
    | Some (v0, next0) ->
        let buf = Buffer.create 32 in
        let add v =
          (* a %u bomb must not materialize: decode output is capped and
             the rest of the run is only *scanned* to find its end *)
          if Buffer.length buf < max_decoded then begin
            Buffer.add_char buf (Char.chr (v land 0xFF));
            Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))
          end
        in
        add v0;
        let start = !i in
        let count = ref 1 in
        let j = ref next0 in
        let continue = ref true in
        while !continue do
          match decode_u_escape s !j with
          | Some (v, next) ->
              add v;
              incr count;
              j := next
          | None -> continue := false
        done;
        if !count >= min_run then
          runs := { off = start; count = !count; decoded = Buffer.contents buf } :: !runs;
        i := !j
  done;
  List.rev !runs

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' ->
        Buffer.add_char buf ' ';
        incr i
    | '%' when !i + 2 < n -> (
        match (hex_digit s.[!i + 1], hex_digit s.[!i + 2]) with
        | Some a, Some b ->
            Buffer.add_char buf (Char.chr ((a lsl 4) lor b));
            i := !i + 3
        | _, _ ->
            Buffer.add_char buf '%';
            incr i)
    | c ->
        Buffer.add_char buf c;
        incr i);
  done;
  Buffer.contents buf
