(** Repeated-byte run detection — the overflow-filler locator ('X' runs in
    Code Red II, 0x90 sleds, 'A' padding). *)

type run = { off : int; byte : char; len : int }

val runs : ?min_len:int -> ?max_scan:int -> Slice.t -> run list
(** Maximal runs of one repeated byte with length at least [min_len]
    (default 32), left to right.  [max_scan] (default unlimited) bounds
    the scanned window: repetition past it is ignored, which keeps the
    scanners O(window) on adversarially long reassembled streams. *)

val longest : Slice.t -> run option

val sled_like : ?min_len:int -> ?max_scan:int -> Slice.t -> run list
(** Runs of bytes drawn from the single-byte NOP-equivalence class (nop,
    inc/dec/push/pop reg, cld, ...) of length at least [min_len]
    (default 16).  Unlike {!runs} the bytes may differ — this is what a
    polymorphic NOP region looks like. *)

type ret_run = { off : int; base : int32; count : int }
(** [count] consecutive little-endian dwords agreeing on their upper 24
    bits [base] (the LSB may vary). *)

val ret_address_runs : ?min_count:int -> ?max_scan:int -> Slice.t -> ret_run list
(** The paper's §4.2 observation: a buffer-overflow's return-address
    region repeats one address in which {e only the least significant
    byte can be varied} (it must stay inside the sled).  Finds maximal
    runs of at least [min_count] (default 4) such dwords at any byte
    alignment, left to right, non-overlapping. *)
