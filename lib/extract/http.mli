(** Minimal HTTP/1.x request parsing, enough to tell well-formed protocol
    usage apart from exploit traffic (the Code Red II vector arrives as a
    syntactically valid GET whose target carries the overflow). *)

type request = {
  meth : string;
  target : string;
  version : string;
  headers : (string * string) list;
  body : string;
  target_off : int;  (** byte offset of the target within the payload *)
}

val parse_request : string -> (request, string) Stdlib.result
(** Accepts requests with missing trailing CRLFCRLF (body then empty). *)

val is_request : string -> bool
(** Cheap check: starts with a known method token and a space. *)

val methods : string list
(** Recognized request methods. *)
