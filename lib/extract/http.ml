type request = {
  meth : string;
  target : string;
  version : string;
  headers : (string * string) list;
  body : string;
  target_off : int;
}

let methods =
  [ "GET"; "POST"; "HEAD"; "PUT"; "DELETE"; "OPTIONS"; "TRACE"; "CONNECT"; "PROPFIND"; "SEARCH" ]

let is_request s =
  List.exists
    (fun m ->
      let lm = String.length m in
      String.length s > lm + 1 && String.sub s 0 lm = m && s.[lm] = ' ')
    methods

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

let parse_request s =
  if not (is_request s) then Error "not an HTTP request"
  else
    match String.index_opt s ' ' with
    | None -> Error "no target"
    | Some sp1 -> (
        let meth = String.sub s 0 sp1 in
        let target_off = sp1 + 1 in
        (* the request line ends at the first CR or LF *)
        let line_end =
          let rec go i =
            if i >= String.length s then i
            else match s.[i] with '\r' | '\n' -> i | _ -> go (i + 1)
          in
          go target_off
        in
        let line = String.sub s target_off (line_end - target_off) in
        (* the version is the last space-separated token, if it looks right *)
        let target, version =
          match String.rindex_opt line ' ' with
          | Some sp when String.length line - sp > 5
                         && String.sub line (sp + 1) 5 = "HTTP/" ->
              (String.sub line 0 sp, String.sub line (sp + 1) (String.length line - sp - 1))
          | Some _ | None -> (line, "")
        in
        (* headers: lines up to the blank line *)
        let rec skip_eol i =
          if i < String.length s && (s.[i] = '\r' || s.[i] = '\n') then skip_eol (i + 1)
          else i
        in
        let body_start =
          match find_sub s "\r\n\r\n" line_end with
          | Some i -> i + 4
          | None -> (
              match find_sub s "\n\n" line_end with
              | Some i -> i + 2
              | None -> String.length s)
        in
        let header_text =
          if body_start >= line_end then
            String.sub s (skip_eol line_end)
              (max 0 (body_start - skip_eol line_end))
          else ""
        in
        let headers =
          String.split_on_char '\n' header_text
          |> List.filter_map (fun l ->
                 let l =
                   if String.length l > 0 && l.[String.length l - 1] = '\r' then
                     String.sub l 0 (String.length l - 1)
                   else l
                 in
                 match String.index_opt l ':' with
                 | Some c when c > 0 ->
                     let k = String.sub l 0 c in
                     let v = String.trim (String.sub l (c + 1) (String.length l - c - 1)) in
                     Some (k, v)
                 | Some _ | None -> None)
        in
        let body = String.sub s body_start (String.length s - body_start) in
        Ok { meth; target; version; headers; body; target_off })
