(** The "Binary Detection and Extraction" stage (paper §4.2).

    Given an application payload, locate the regions that plausibly hold
    machine code and return them as binary frames for the disassembler:

    - runs of [%uXXXX] escapes are decoded to their binary form (the Code
      Red II transfer encoding);
    - regions of non-textual bytes are cut out with surrounding context,
      because polymorphic NOP regions and decoder stubs are largely
      printable and sit next to the high-byte ciphertext;
    - everything else (well-formed protocol text) is dropped, which is
      what makes the pipeline affordable compared to running the
      disassembler over every byte (the paper's efficiency claim). *)

type origin = Unicode_escape | Raw_binary

type frame = { off : int; data : Slice.t; origin : origin }
(** Raw-binary frames are views into the scanned payload (no copy);
    unicode frames own their decoded bytes. *)

type config = {
  min_unicode_run : int;  (** escapes, default 4 *)
  min_repeat : int;  (** filler-run length for {!suspicious}, default 48 *)
  min_binary_region : int;  (** bytes, default 24 *)
  gap_merge : int;  (** merge binary regions separated by fewer bytes *)
  context_before : int;  (** printable context kept ahead of a region *)
  context_after : int;
  max_frames : int;
  max_frame_bytes : int;
      (** hard per-frame size ceiling (default 65536): caps each
          [%uXXXX] run's decoded output and each raw region cut, and
          bounds the repetition scanners' window — the structural
          defence against decompression/repetition bombs, independent of
          any per-packet budget *)
}

val default_config : config

val suspicious : ?config:config -> Slice.t -> bool
(** Cheap pre-filter: does the payload show any overflow indicator
    (escape runs, long filler runs, NOP-like sleds, binary regions)? *)

val extract :
  ?budget:Budget.t ->
  ?metrics:Sanids_obs.Registry.t ->
  ?config:config ->
  Slice.t ->
  frame list
(** Binary frames, in payload order.  Empty for plain protocol text.
    When [metrics] is given, per-origin frame counts and frame bytes are
    accumulated there ([sanids_extract_unicode_frames_total],
    [sanids_extract_raw_frames_total], [sanids_extract_bytes_total]).
    When [budget] is given, each frame's bytes are taken from it before
    the frame is emitted; the frame that exhausts the byte fuel and
    everything after it are dropped (the budget records the trip). *)

val extract_bounded :
  ?metrics:Sanids_obs.Registry.t ->
  ?config:config ->
  budget:Budget.t ->
  Slice.t ->
  frame list * Budget.outcome
(** {!extract} with the stage outcome made explicit: [Truncated Bytes]
    when extraction ran out of byte fuel, [Complete] otherwise (the
    outcome reflects the shared budget's state after this stage). *)

val pp_frame : Format.formatter -> frame -> unit
