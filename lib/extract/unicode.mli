(** IIS-style [%uXXXX] escape decoding (the Code Red transfer encoding)
    and classic [%XX] percent decoding. *)

type run = { off : int; count : int; decoded : string }
(** A run of consecutive escapes: [off] is the byte offset of the first
    '%', [count] the number of escapes, [decoded] the binary form
    (2 bytes per [%uXXXX], little-endian; 1 byte per [%XX]). *)

val unicode_runs : ?min_run:int -> ?max_decoded:int -> Slice.t -> run list
(** Maximal runs of at least [min_run] (default 4) consecutive [%uXXXX]
    escapes.  [max_decoded] (default unlimited) caps each run's
    [decoded] output: the run is still scanned to its true end ([count]
    is exact) but no more than [max_decoded] bytes are materialized —
    the defence against [%u] decompression bombs. *)

val percent_decode : string -> string
(** Decode [%XX] escapes (and '+' to space); malformed escapes pass
    through verbatim. *)

val decode_u_escape : Slice.t -> int -> (int * int) option
(** [decode_u_escape s i] decodes one [%uXXXX] at offset [i]: the 16-bit
    value and the next offset. *)
