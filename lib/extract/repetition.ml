type run = { off : int; byte : char; len : int }

(* All scanners take an optional window bound: repetition structure past
   [max_scan] bytes cannot start a frame anyway (the extractor caps frame
   sizes), so scanning a reassembled megabyte-scale stream end to end is
   pure attack surface. *)
let runs ?(min_len = 32) ?(max_scan = max_int) s =
  let n = min (Slice.length s) max_scan in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let b = Slice.unsafe_get s !i in
    let j = ref (!i + 1) in
    while !j < n && Slice.unsafe_get s !j = b do
      incr j
    done;
    let len = !j - !i in
    if len >= min_len then out := { off = !i; byte = b; len } :: !out;
    i := !j
  done;
  List.rev !out

let longest s =
  List.fold_left
    (fun best r ->
      match best with
      | None -> Some r
      | Some b -> if r.len > b.len then Some r else best)
    None (runs ~min_len:2 s)

(* Single-byte instructions with no meaningful effect on shellcode entry:
   the classic polymorphic NOP pool. *)
let nop_like c =
  match Char.code c with
  | 0x90 (* nop *) -> true
  | b when b >= 0x40 && b <= 0x4F -> true (* inc/dec reg *)
  | b when b >= 0x50 && b <= 0x57 -> true (* push reg *)
  | b when b >= 0x91 && b <= 0x97 -> true (* xchg eax, reg *)
  | 0x98 (* cwde *) | 0x99 (* cdq *) | 0xF8 (* clc *) | 0xF9 (* stc *)
  | 0xFC (* cld *) | 0xF5 (* cmc *) | 0x9B (* wait *) | 0x9E (* sahf *)
  | 0x9F (* lahf *) ->
      true
  | _ -> false

let sled_like ?(min_len = 16) ?(max_scan = max_int) s =
  let n = min (Slice.length s) max_scan in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if nop_like (Slice.unsafe_get s !i) then begin
      let j = ref (!i + 1) in
      while !j < n && nop_like (Slice.unsafe_get s !j) do
        incr j
      done;
      let len = !j - !i in
      if len >= min_len then
        out := { off = !i; byte = Slice.unsafe_get s !i; len } :: !out;
      i := !j
    end
    else incr i
  done;
  List.rev !out

type ret_run = { off : int; base : int32; count : int }

let dword_at s i =
  let b k = Int32.of_int (Char.code (Slice.unsafe_get s (i + k))) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let upper24 v = Int32.logand v 0xFFFFFF00l

(* A plausible code address has heterogeneous upper bytes; a text run
   ("aaaa...") repeats one byte and must not look like a return region. *)
let address_like base =
  let b k = Int32.to_int (Int32.shift_right_logical base (8 * k)) land 0xFF in
  not (b 1 = b 2 && b 2 = b 3)

let ret_address_runs ?(min_count = 4) ?(max_scan = max_int) s =
  let n = min (Slice.length s) max_scan in
  let out = ref [] in
  let i = ref 0 in
  while !i + 4 <= n do
    let base = upper24 (dword_at s !i) in
    if Int32.equal base 0l || not (address_like base) then incr i
    else begin
      let j = ref (!i + 4) in
      while !j + 4 <= n && Int32.equal (upper24 (dword_at s !j)) base do
        j := !j + 4
      done;
      let count = (!j - !i) / 4 in
      if count >= min_count then begin
        out := { off = !i; base; count } :: !out;
        i := !j
      end
      else incr i
    end
  done;
  List.rev !out
