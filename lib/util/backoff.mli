(** Capped exponential backoff with deterministic jitter.

    One policy object governs every retrying edge in the system — the
    control-plane client's connect loop, the cluster sensor's delta
    shipping, reconnects after an aggregator restart — so "how hard do
    we hammer a struggling peer" is configured (and tested) in exactly
    one place.

    The policy is pure: {!delay} is a function of [(policy, seed,
    attempt)] only, with the jitter drawn from a splitmix stream keyed
    by the pair, so a given sensor replays the identical retry schedule
    run after run — retry storms are reproducible, never heisenbugs.
    Jitter only ever {e shortens} a delay (decorrelating a fleet of
    sensors that all lost the same aggregator) so the un-jittered
    schedule is the worst case and {!delay} never exceeds [cap].

    Spec syntax (the CLI [--backoff] argument):
    ["base=0.05,factor=2,cap=2,jitter=0.5,timeout=5"] — any subset of
    keys over {!default}. *)

type t = {
  base : float;  (** first delay, seconds; > 0 *)
  factor : float;  (** growth per attempt; >= 1 *)
  cap : float;  (** delay ceiling, seconds; >= base *)
  jitter : float;  (** fraction of the delay shaved off, in [0,1] *)
  timeout : float;  (** per-attempt I/O deadline, seconds; > 0 *)
}

val default : t
(** [base=0.05], [factor=2], [cap=2], [jitter=0.5], [timeout=5]. *)

val validate : t -> (t, string) result

val of_string : string -> (t, string) result
(** Parse a spec over {!default}.  [Error] names the offending token. *)

val of_string_exn : string -> t
(** @raise Invalid_argument as {!of_string}'s [Error]. *)

val to_string : t -> string
(** Canonical spec text ([of_string (to_string t) = Ok t]). *)

val delay : t -> seed:int64 -> attempt:int -> float
(** Sleep before retry number [attempt] (0-based): [base * factor^attempt]
    capped at [cap], then shortened by up to [jitter] of itself, the
    shave drawn deterministically from [(seed, attempt)].  Always in
    [[(1-jitter) * capped, capped]]. *)

val retry :
  ?sleep:(float -> unit) ->
  ?clock:(unit -> float) ->
  t ->
  seed:int64 ->
  deadline:float ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e) result
(** Run [f ~attempt:0], [f ~attempt:1], ... sleeping {!delay} between
    attempts, until [f] succeeds or the {e absolute} clock time
    [deadline] would pass before the next attempt; returns the last
    error.  [sleep]/[clock] default to [Unix.sleepf]/[Unix.gettimeofday]
    and exist so tests can drive the schedule without wall time. *)
