let histogram s =
  let h = Array.make 256 0 in
  String.iter (fun c -> h.(Char.code c) <- h.(Char.code c) + 1) s;
  h

let shannon s =
  let n = String.length s in
  if n = 0 then 0.0
  else
    let h = histogram s in
    let total = float_of_int n in
    Array.fold_left
      (fun acc count ->
        if count = 0 then acc
        else
          let p = float_of_int count /. total in
          acc -. (p *. (log p /. log 2.0)))
      0.0 h

let printable_fraction s =
  let n = String.length s in
  if n = 0 then 1.0
  else
    let printable = ref 0 in
    String.iter
      (fun c -> if Char.code c >= 0x20 && Char.code c <= 0x7E then incr printable)
      s;
    float_of_int !printable /. float_of_int n

let normalize counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then Array.make 256 (1.0 /. 256.0)
  else Array.map (fun c -> float_of_int c /. float_of_int total) counts

let chi_square ~observed ~expected =
  if Array.length observed <> 256 || Array.length expected <> 256 then
    invalid_arg "Entropy.chi_square: arrays must have 256 bins";
  let total = float_of_int (Array.fold_left ( + ) 0 observed) in
  let acc = ref 0.0 in
  for i = 0 to 255 do
    if observed.(i) > 0 || expected.(i) > 0.0 then begin
      let e = Float.max (expected.(i) *. total) 1e-6 in
      let d = float_of_int observed.(i) -. e in
      acc := !acc +. (d *. d /. e)
    end
  done;
  !acc
