(* Capped exponential backoff with deterministic jitter.

   The jitter stream is splitmix64 keyed by (seed, attempt) — the same
   generator as everything else stochastic in the tree — so a retry
   schedule is a pure function of the policy and the seed.  Jitter
   subtracts (up to [jitter] of the capped delay) rather than adds:
   the deterministic schedule is the worst case, and a fleet of
   sensors seeded differently fans out instead of thundering back in
   lockstep. *)

type t = {
  base : float;
  factor : float;
  cap : float;
  jitter : float;
  timeout : float;
}

let default =
  { base = 0.05; factor = 2.0; cap = 2.0; jitter = 0.5; timeout = 5.0 }

let validate t =
  if not (Float.is_finite t.base) || t.base <= 0.0 then
    Error "backoff: base must be positive"
  else if not (Float.is_finite t.factor) || t.factor < 1.0 then
    Error "backoff: factor must be >= 1"
  else if not (Float.is_finite t.cap) || t.cap < t.base then
    Error "backoff: cap must be >= base"
  else if not (Float.is_finite t.jitter) || t.jitter < 0.0 || t.jitter > 1.0
  then Error "backoff: jitter must be in [0,1]"
  else if not (Float.is_finite t.timeout) || t.timeout <= 0.0 then
    Error "backoff: timeout must be positive"
  else Ok t

(* ------------------------------------------------------------------ *)
(* Spec grammar: comma-separated key=float over [default], same shape
   as the budget/breaker/fault specs so the CLI reads uniformly. *)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_string t =
  Printf.sprintf "base=%s,factor=%s,cap=%s,jitter=%s,timeout=%s"
    (float_str t.base) (float_str t.factor) (float_str t.cap)
    (float_str t.jitter) (float_str t.timeout)

let of_string s =
  let parse acc token =
    match acc with
    | Error _ as e -> e
    | Ok t -> (
        match String.index_opt token '=' with
        | None ->
            Error (Printf.sprintf "backoff: expected key=value, got %S" token)
        | Some i -> (
            let key = String.sub token 0 i in
            let value = String.sub token (i + 1) (String.length token - i - 1) in
            match float_of_string_opt value with
            | None ->
                Error (Printf.sprintf "backoff: bad number %S for %s" value key)
            | Some v -> (
                match key with
                | "base" -> Ok { t with base = v }
                | "factor" -> Ok { t with factor = v }
                | "cap" -> Ok { t with cap = v }
                | "jitter" -> Ok { t with jitter = v }
                | "timeout" -> Ok { t with timeout = v }
                | _ -> Error (Printf.sprintf "backoff: unknown key %S" key))))
  in
  let tokens =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  match List.fold_left parse (Ok default) tokens with
  | Error _ as e -> e
  | Ok t -> validate t

let of_string_exn s =
  match of_string s with Ok t -> t | Error m -> invalid_arg m

(* ------------------------------------------------------------------ *)

let delay t ~seed ~attempt =
  let attempt = max 0 attempt in
  (* grow multiplicatively but stop once past the cap: [factor^attempt]
     overflows to infinity long before attempt counts grow large, and
     the min against [cap] makes that harmless anyway *)
  let rec grow d n = if n <= 0 || d >= t.cap then d else grow (d *. t.factor) (n - 1) in
  let capped = Float.min t.cap (grow t.base attempt) in
  if t.jitter <= 0.0 then capped
  else
    let rng =
      Rng.create Int64.(add (mul seed 0x9E3779B97F4A7C15L) (of_int attempt))
    in
    let shave = t.jitter *. Rng.float rng 1.0 in
    capped *. (1.0 -. shave)

let retry ?(sleep = Unix.sleepf) ?(clock = Unix.gettimeofday) t ~seed
    ~deadline f =
  let rec go attempt =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error _ as e ->
        let d = delay t ~seed ~attempt in
        if clock () +. d >= deadline then e
        else begin
          sleep d;
          go (attempt + 1)
        end
  in
  go 0
