(** Bounded LRU cache.

    Hashtable + intrusive doubly-linked list: [find], [add] and eviction
    are all O(1).  Keys are compared with structural equality, so a hit
    is always an exact match (content equality, not just hash equality) —
    the property the NIDS verdict cache relies on for exactness. *)

type ('k, 'v) t

val create : int -> ('k, 'v) t
(** [create cap] holds at most [cap] bindings.
    @raise Invalid_argument when [cap <= 0]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit promotes the binding to most-recently-used. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, promoting to most-recently-used; evicts the
    least-recently-used binding when over capacity. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without promotion. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Total bindings evicted for capacity since [create]. *)

val clear : ('k, 'v) t -> unit
(** Drop every binding (does not reset the eviction counter). *)
