(** Cursor-based binary readers and growable binary writers.

    All multi-byte accessors exist in little-endian ([_le]) and
    big-endian ([_be]) variants; network headers use [_be], x86
    immediates and pcap bodies use [_le]. *)

exception Truncated of string
(** Raised by readers when fewer bytes remain than requested; the payload
    names the failing accessor. *)

module Reader : sig
  type t

  val of_string : ?pos:int -> ?len:int -> string -> t
  (** View onto [string] starting at [pos] (default 0) spanning [len]
      bytes (default: to the end).  The string is not copied. *)

  val of_slice : Slice.t -> t
  (** Reader over a slice's bytes; nothing is copied. *)

  val pos : t -> int
  (** Current cursor, relative to the start of the view. *)

  val length : t -> int
  (** Total view length. *)

  val remaining : t -> int
  val is_empty : t -> bool

  val seek : t -> int -> unit
  (** Absolute cursor move within the view.  @raise Invalid_argument when
      out of bounds. *)

  val skip : t -> int -> unit
  (** Relative cursor move forward.  @raise Truncated when past the end. *)

  val u8 : t -> int
  val u16_be : t -> int
  val u16_le : t -> int
  val u32_be : t -> int32
  val u32_le : t -> int32
  val u32_be_int : t -> int
  (** [u32_be] as a non-negative OCaml [int]. *)

  val u32_le_int : t -> int

  val take : t -> int -> string
  (** [take t n] consumes and returns the next [n] bytes. *)

  val peek_u8 : t -> int
  (** [u8] without consuming.  @raise Truncated at end of input. *)

  val rest : t -> string
  (** Consume and return everything left. *)

  val take_slice : t -> int -> Slice.t
  (** [take] without the copy: the returned slice views the reader's
      backing string.  @raise Truncated as [take]. *)

  val rest_slice : t -> Slice.t
  (** [rest] without the copy. *)
end

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16_be : t -> int -> unit
  val u16_le : t -> int -> unit
  val u32_be : t -> int32 -> unit
  val u32_le : t -> int32 -> unit
  val u32_be_int : t -> int -> unit
  val u32_le_int : t -> int -> unit
  val string : t -> string -> unit

  val slice : t -> Slice.t -> unit
  (** Append a slice's bytes (no intermediate string). *)

  val char : t -> char -> unit
  val fill : t -> int -> int -> unit
  (** [fill t byte n] appends [n] copies of [byte]. *)

  val contents : t -> string

  val patch_u16_be : t -> int -> int -> unit
  (** [patch_u16_be t off v] rewrites 2 bytes at offset [off] of material
      already written — used to back-patch length and checksum fields. *)
end
