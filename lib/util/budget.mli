(** Per-packet work budgets — the anti-DoS fuel of the analysis path.

    The semantic analyzer is the expensive stage by design, which makes
    the NIDS itself an algorithmic-complexity target: pathological
    payloads (giant [%uXXXX] runs, repetition bombs, jmp-chain mazes)
    can blow up extraction, disassembly or matching and starve the
    detector during the very outbreak it should be catching.  A
    {!t} is a mutable fuel tank started once per analyzed packet and
    threaded through every stage; each stage {e takes} fuel before doing
    work and stops cleanly — returning a {!outcome} of [Truncated] —
    the moment any dimension runs dry.

    Dimensions: bytes materialized by extraction, instructions decoded
    by the trace walker, matcher step attempts, and a wall-clock
    deadline (checked lazily every few hundred takes, so the clock is
    off the per-instruction hot path).  Fuel accounting is exact: a
    denied take spends nothing, so [spent] never exceeds [limits]. *)

type reason =
  | Bytes  (** extraction output exceeded [max_bytes] *)
  | Instructions  (** trace walking exceeded [max_insns] *)
  | Match_steps  (** template matching exceeded [max_match_steps] *)
  | Deadline  (** wall clock exceeded [deadline] seconds *)

val reason_to_string : reason -> string
(** ["bytes"] / ["instructions"] / ["match_steps"] / ["deadline"] — the
    [stage] label of degradation metrics. *)

type outcome = Complete | Truncated of reason

val outcome_to_string : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit

type limits = {
  max_bytes : int;  (** extraction output bytes; [max_int] = unlimited *)
  max_insns : int;  (** decoded trace instructions *)
  max_match_steps : int;  (** matcher step attempts *)
  deadline : float;  (** wall-clock seconds; [0.] disables the clock *)
}

val unlimited : limits
(** Every dimension at [max_int], no deadline: threading this budget is
    behaviourally identical to no budget at all. *)

val default_limits : limits
(** A production-shaped per-packet allowance: generous for any real
    exploit, fatal for complexity bombs ([max_bytes = 262144],
    [max_insns = 200000], [max_match_steps = 400000],
    [deadline = 0.25]). *)

val validate_limits : limits -> (limits, string) result
(** Every dimension must be positive ([deadline] may be [0.] = off). *)

val limits_to_string : limits -> string
(** ["bytes=N,insns=N,steps=N,deadline=S"], omitting unlimited
    dimensions; ["unlimited"] when nothing is bounded. *)

val limits_of_string : string -> (limits, string) result
(** Inverse of {!limits_to_string}: a comma-separated
    [key=value] list over [bytes]/[insns]/[steps]/[deadline], missing
    keys defaulting to {!default_limits}'s values; the single word
    ["default"] is {!default_limits}. *)

type t

val start : limits -> t
(** A full tank; the deadline clock starts now. *)

type spent = { bytes : int; insns : int; steps : int }

val spent : t -> spent
(** Fuel consumed so far.  Invariant: each field is at most its limit. *)

val take_bytes : t -> int -> bool
(** [take_bytes b n] grants materializing [n] more bytes.  [false]
    marks the budget tripped ([Bytes]) and spends nothing; once a
    budget has tripped for any reason every take is denied. *)

val take_insns : t -> int -> bool
val take_steps : t -> int -> bool

val alive : t -> bool
(** Not yet tripped (also polls the deadline). *)

val tripped : t -> reason option
(** The {e first} dimension that ran dry, if any. *)

val outcome : t -> outcome
(** [Complete] iff the budget never tripped. *)
