type reason = Bytes | Instructions | Match_steps | Deadline

let reason_to_string = function
  | Bytes -> "bytes"
  | Instructions -> "instructions"
  | Match_steps -> "match_steps"
  | Deadline -> "deadline"

type outcome = Complete | Truncated of reason

let outcome_to_string = function
  | Complete -> "complete"
  | Truncated r -> "truncated:" ^ reason_to_string r

let pp_outcome ppf o = Format.pp_print_string ppf (outcome_to_string o)

type limits = {
  max_bytes : int;
  max_insns : int;
  max_match_steps : int;
  deadline : float;
}

let unlimited =
  { max_bytes = max_int; max_insns = max_int; max_match_steps = max_int; deadline = 0.0 }

let default_limits =
  { max_bytes = 262_144; max_insns = 200_000; max_match_steps = 400_000; deadline = 0.25 }

let validate_limits l =
  if l.max_bytes <= 0 then Error "budget: bytes must be positive"
  else if l.max_insns <= 0 then Error "budget: insns must be positive"
  else if l.max_match_steps <= 0 then Error "budget: steps must be positive"
  else if l.deadline < 0.0 then Error "budget: deadline must be >= 0"
  else Ok l

let limits_to_string l =
  let dim name v = if v = max_int then [] else [ Printf.sprintf "%s=%d" name v ] in
  let parts =
    dim "bytes" l.max_bytes @ dim "insns" l.max_insns @ dim "steps" l.max_match_steps
    @ (if l.deadline > 0.0 then [ Printf.sprintf "deadline=%g" l.deadline ] else [])
  in
  if parts = [] then "unlimited" else String.concat "," parts

let limits_of_string s =
  let s = String.trim s in
  if s = "default" then Ok default_limits
  else if s = "unlimited" then Ok unlimited
  else begin
    let parse_field acc kv =
      match acc with
      | Error _ -> acc
      | Ok l -> (
          match String.index_opt kv '=' with
          | None -> Error (Printf.sprintf "budget: %S is not key=value" kv)
          | Some i -> (
              let k = String.sub kv 0 i in
              let v = String.sub kv (i + 1) (String.length kv - i - 1) in
              let int_field set =
                match int_of_string_opt v with
                | Some n when n > 0 -> Ok (set n)
                | Some _ | None ->
                    Error (Printf.sprintf "budget: %s wants a positive integer, got %S" k v)
              in
              match k with
              | "bytes" -> int_field (fun n -> { l with max_bytes = n })
              | "insns" -> int_field (fun n -> { l with max_insns = n })
              | "steps" -> int_field (fun n -> { l with max_match_steps = n })
              | "deadline" -> (
                  match float_of_string_opt v with
                  | Some f when f >= 0.0 -> Ok { l with deadline = f }
                  | Some _ | None ->
                      Error (Printf.sprintf "budget: deadline wants seconds >= 0, got %S" v))
              | _ ->
                  Error
                    (Printf.sprintf
                       "budget: unknown key %S (want bytes|insns|steps|deadline)" k)))
    in
    List.fold_left parse_field (Ok default_limits) (String.split_on_char ',' s)
  end

type spent = { bytes : int; insns : int; steps : int }

type t = {
  limits : limits;
  mutable b : int;
  mutable i : int;
  mutable s : int;
  mutable tripped : reason option;
  t0 : float;  (* deadline clock start *)
  mutable ticks : int;  (* takes since the last clock poll *)
}

(* How many takes between wall-clock polls: large enough to keep
   gettimeofday off the per-instruction path, small enough that a
   deadline overrun is caught within microseconds of real work. *)
let clock_stride = 256

let start limits =
  {
    limits;
    b = 0;
    i = 0;
    s = 0;
    tripped = None;
    t0 = (if limits.deadline > 0.0 then Unix.gettimeofday () else 0.0);
    ticks = 0;
  }

let spent t = { bytes = t.b; insns = t.i; steps = t.s }
let tripped t = t.tripped

let check_deadline t =
  if t.limits.deadline > 0.0 && t.tripped = None then begin
    t.ticks <- t.ticks + 1;
    if t.ticks >= clock_stride then begin
      t.ticks <- 0;
      if Unix.gettimeofday () -. t.t0 > t.limits.deadline then
        t.tripped <- Some Deadline
    end
  end

let take t reason current limit store n =
  match t.tripped with
  | Some _ -> false
  | None ->
      check_deadline t;
      if t.tripped <> None then false
      else if n < 0 then true
      else if current > limit - n then begin
        t.tripped <- Some reason;
        false
      end
      else begin
        store (current + n);
        true
      end

let take_bytes t n = take t Bytes t.b t.limits.max_bytes (fun v -> t.b <- v) n
let take_insns t n = take t Instructions t.i t.limits.max_insns (fun v -> t.i <- v) n

let take_steps t n =
  take t Match_steps t.s t.limits.max_match_steps (fun v -> t.s <- v) n

let alive t =
  (match t.tripped with
  | None ->
      (* poll the clock even when no fuel is being taken, so a stage that
         spins without spending (e.g. a long prefilter) still expires *)
      check_deadline t
  | Some _ -> ());
  t.tripped = None

let outcome t = match t.tripped with None -> Complete | Some r -> Truncated r
