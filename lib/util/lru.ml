type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable evictions : int;
}

let create cap =
  if cap <= 0 then invalid_arg "Lru.create: capacity must be positive";
  {
    cap;
    tbl = Hashtbl.create (min cap 64);
    head = None;
    tail = None;
    evictions = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.value

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.value <- v;
      unlink t n;
      push_front t n
  | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n;
      if Hashtbl.length t.tbl > t.cap then
        match t.tail with
        | Some last ->
            unlink t last;
            Hashtbl.remove t.tbl last.key;
            t.evictions <- t.evictions + 1
        | None -> ()

let mem t k = Hashtbl.mem t.tbl k
let length t = Hashtbl.length t.tbl
let capacity t = t.cap
let evictions t = t.evictions

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None
