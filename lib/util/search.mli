(** Allocation-free literal substring search (first-byte skip + inline
    compare) — the one scanner shared by the rule engine, signature
    generation and the detector lint, replacing their per-position
    [String.sub] loops.

    [nocase] folds both sides through [Char.lowercase_ascii] during the
    compare; neither side is copied or pre-lowered.  An empty needle is
    found at the window start. *)

val find :
  ?nocase:bool -> ?start:int -> ?stop:int -> needle:string -> string -> int option
(** Leftmost occurrence of [needle] in [hay.[start .. stop)] (defaults:
    the whole string); the returned index is into [hay].  [None] when
    absent or the window is empty/out of range. *)

val contains : ?nocase:bool -> needle:string -> string -> bool

val find_slice :
  ?nocase:bool -> ?start:int -> ?stop:int -> needle:string -> Slice.t -> int option
(** {!find} over a slice window; indices are view-relative. *)

val contains_slice : ?nocase:bool -> needle:string -> Slice.t -> bool
