type policy = Drop_newest | Drop_oldest | Block

let policy_to_string = function
  | Drop_newest -> "drop_newest"
  | Drop_oldest -> "drop_oldest"
  | Block -> "block"

let policy_of_string = function
  | "drop_newest" | "newest" -> Some Drop_newest
  | "drop_oldest" | "oldest" -> Some Drop_oldest
  | "block" -> Some Block
  | _ -> None

let policy_of_string_result s =
  match policy_of_string s with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf
           "drop policy: unknown %S (want block|drop_newest|drop_oldest)" s)

type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  policy : policy;
  mutex : Mutex.t;
  not_empty : Condition.t;  (* signalled on enqueue and on close *)
  not_full : Condition.t;  (* signalled on dequeue and on close *)
  mutable closed : bool;
}

type push_result = Queued | Shed_newest | Shed_oldest of int

let create ~capacity policy =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    q = Queue.create ();
    capacity;
    policy;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false;
  }

let push t x =
  Mutex.lock t.mutex;
  let result =
    if t.closed then Shed_newest
    else begin
      (match t.policy with
      | Block ->
          while Queue.length t.q >= t.capacity && not t.closed do
            Condition.wait t.not_full t.mutex
          done
      | Drop_newest | Drop_oldest -> ());
      if t.closed then Shed_newest
      else if Queue.length t.q < t.capacity then begin
        Queue.push x t.q;
        Queued
      end
      else
        match t.policy with
        | Drop_newest -> Shed_newest
        | Block (* unreachable: the wait loop guarantees space or closed *)
        | Drop_oldest ->
            let evicted = ref 0 in
            while Queue.length t.q >= t.capacity do
              ignore (Queue.pop t.q);
              incr evicted
            done;
            Queue.push x t.q;
            Shed_oldest !evicted
    end
  in
  (match result with Queued | Shed_oldest _ -> Condition.signal t.not_empty | Shed_newest -> ());
  Mutex.unlock t.mutex;
  result

type batch_result = { queued : int; shed : int }

let push_batch t xs =
  Mutex.lock t.mutex;
  let queued = ref 0 and shed = ref 0 in
  List.iter
    (fun x ->
      if t.closed then incr shed
      else begin
        (match t.policy with
        | Block ->
            while Queue.length t.q >= t.capacity && not t.closed do
              (* items enqueued earlier in this batch are not yet
                 signalled: wake the consumer before sleeping, or a full
                 queue deadlocks against a waiting worker *)
              Condition.broadcast t.not_empty;
              Condition.wait t.not_full t.mutex
            done
        | Drop_newest | Drop_oldest -> ());
        if t.closed then incr shed
        else if Queue.length t.q < t.capacity then begin
          Queue.push x t.q;
          incr queued
        end
        else
          match t.policy with
          | Drop_newest -> incr shed
          | Block (* unreachable: the wait loop guarantees space or closed *)
          | Drop_oldest ->
              while Queue.length t.q >= t.capacity do
                ignore (Queue.pop t.q);
                incr shed
              done;
              Queue.push x t.q;
              incr queued
      end)
    xs;
  if !queued > 0 then Condition.broadcast t.not_empty;
  Mutex.unlock t.mutex;
  { queued = !queued; shed = !shed }

let pop_batch t ~max =
  if max < 1 then invalid_arg "Bqueue.pop_batch: max must be >= 1";
  Mutex.lock t.mutex;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.not_empty t.mutex
  done;
  let rec take n acc =
    if n = 0 || Queue.is_empty t.q then List.rev acc
    else take (n - 1) (Queue.pop t.q :: acc)
  in
  let items = take max [] in
  if items <> [] then Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  items

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.q in
  Mutex.unlock t.mutex;
  n
