type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: the state advances by a fixed gamma and the output
   is a bijective scramble of the new state. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (int64 t) 1L = 1L

let float t bound =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  (* 53 uniform bits scaled to [0,1) *)
  Int64.to_float bits /. 9007199254740992.0 *. bound

let chance t p =
  let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
  float t 1.0 < p

let byte t = int t 256

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let bytes t n =
  String.init n (fun _ -> Char.chr (byte t))

let sample_geometric t p =
  let p = if p <= 0.0 then 1e-9 else if p > 1.0 then 1.0 else p in
  let rec loop k = if chance t p then k else loop (k + 1) in
  loop 0
