(** Deterministic pseudo-random number generation.

    Every stochastic component of the system (polymorphic engines, workload
    generators, property tests) draws from an explicit generator created
    from a seed, so that every experiment in EXPERIMENTS.md is exactly
    reproducible.  The core is splitmix64, which is small, fast and has
    well-understood statistical quality. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    stream as [t]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    decorrelated from [t]'s — use to hand sub-components their own
    generator. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val byte : t -> int
(** Uniform in [\[0, 255\]]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on
    an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val bytes : t -> int -> string
(** [bytes t n] is a string of [n] uniform random bytes. *)

val sample_geometric : t -> float -> int
(** [sample_geometric t p] counts Bernoulli([p]) failures before the first
    success; used for bursty workload inter-arrivals. *)
