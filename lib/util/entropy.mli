(** Byte-distribution statistics used by the binary-content locator and the
    Clet-style spectrum shaper. *)

val histogram : string -> int array
(** 256-bin byte count of the input. *)

val shannon : string -> float
(** Shannon entropy in bits per byte, in [\[0, 8\]]; 0 for the empty
    string. *)

val printable_fraction : string -> float
(** Fraction of bytes in the printable ASCII range [0x20, 0x7e]; 1.0 for
    the empty string. *)

val chi_square : observed:int array -> expected:float array -> float
(** Pearson chi-square distance between a 256-bin count and a 256-bin
    expected frequency profile (the profile is scaled to the observed
    total).  Expected bins below a small floor are clamped. *)

val normalize : int array -> float array
(** Counts to frequencies summing to 1 (uniform profile when the total is
    zero). *)
