(** Bounded multi-producer/multi-consumer admission queues.

    The load-shedding primitive of the stream pipeline: a fixed-capacity
    queue whose behaviour when full is an explicit {!policy}, so a
    producer that outruns its consumer holds bounded memory by
    construction.  Safe across OCaml 5 domains (mutex + condition; no
    busy waiting). *)

type policy =
  | Drop_newest  (** a push into a full queue discards the pushed item *)
  | Drop_oldest  (** a push into a full queue evicts the head first *)
  | Block  (** a push into a full queue waits for space *)

val policy_to_string : policy -> string
(** ["drop_newest"] / ["drop_oldest"] / ["block"] — the label used in
    shed metrics and CLI flags. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_to_string}. *)

val policy_of_string_result : string -> (policy, string) result
(** {!policy_of_string} with a typed error message (["drop policy: …"]),
    matching the [Budget.limits_of_string] / [Breaker.config_of_string]
    spec-parser convention. *)

type 'a t

val create : capacity:int -> policy -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

type push_result =
  | Queued
  | Shed_newest  (** the pushed item was discarded ([Drop_newest]) *)
  | Shed_oldest of int  (** [n] queued items were evicted ([Drop_oldest]) *)

val push : 'a t -> 'a -> push_result
(** Enqueue one item, applying the queue's policy when full ([Block]
    waits, so its pushes always return [Queued]).  Pushing into a
    closed queue returns [Shed_newest] regardless of policy: the
    consumer side is gone. *)

type batch_result = {
  queued : int;  (** items admitted to the queue *)
  shed : int;  (** items lost: discarded pushes plus [Drop_oldest] evictions *)
}

val push_batch : 'a t -> 'a list -> batch_result
(** Enqueue a batch under one lock acquisition, applying the queue's
    policy per item exactly as a sequence of {!push} calls would —
    [queued + shed] accounts for every offered item plus every eviction.
    The stream feeder uses this to amortize per-packet lock traffic. *)

val pop_batch : 'a t -> max:int -> 'a list
(** Dequeue up to [max] items in arrival order, waiting while the queue
    is empty and open.  [[]] means the queue is closed and drained —
    the consumer's termination signal. *)

val close : 'a t -> unit
(** No further items are admitted; blocked producers and consumers wake
    up.  Items already queued remain poppable. *)

val length : 'a t -> int
