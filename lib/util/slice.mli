(** Immutable zero-copy byte views: a backing string plus an offset and a
    length.

    The decode chain threads these through the hot path — pcap record
    bodies, IP/TCP/UDP payloads, extracted frames — so a packet's bytes
    are copied when the capture buffer is read and then never again.
    {!sub} is an O(1) re-view; {!to_string} is the one explicit
    materialization point (and is itself free for whole-string views).

    A slice pins its backing string: long-lived state must materialize
    ({!to_string}) rather than store views, or a 64-byte segment keeps a
    whole capture file alive. *)

type t

val of_string : string -> t
(** Whole-string view; O(1), no copy. *)

val of_sub : string -> off:int -> len:int -> t
(** View of [len] bytes of [s] starting at [off]; O(1), no copy.
    @raise Invalid_argument when the window exceeds the string. *)

val empty : t

val base : t -> string
(** The backing string (for interop with string-consuming code that
    carries its own offsets — prefer {!to_string} otherwise). *)

val offset : t -> int
(** Start of the view within {!base}. *)

val length : t -> int
val is_empty : t -> bool

val get : t -> int -> char
(** @raise Invalid_argument out of bounds; index is view-relative. *)

val unsafe_get : t -> int -> char
(** No bounds check — for scanners that maintain their own loop bound. *)

val get_u8 : t -> int -> int

val get_u16_be : t -> int -> int
val get_u16_le : t -> int -> int
val get_u32_be : t -> int -> int32
val get_u32_le : t -> int -> int32
val get_u32_be_int : t -> int -> int
val get_u32_le_int : t -> int -> int

val sub : t -> off:int -> len:int -> t
(** O(1) re-view of a sub-range; shares the backing string.
    @raise Invalid_argument when the range exceeds the view. *)

val to_string : t -> string
(** Materialize the viewed bytes.  A view covering its whole backing
    string returns that string without copying, so wrapping an existing
    string with {!of_string} and reading it back is free. *)

val blit : t -> src_off:int -> bytes -> dst_off:int -> len:int -> unit

val equal : t -> t -> bool
(** Byte-content equality, independent of view position. *)

val equal_string : t -> string -> bool

val exists : (char -> bool) -> t -> bool
val for_all : (char -> bool) -> t -> bool

val hash : t -> int
(** Content hash (FNV-1a), consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
