exception Truncated of string

module Reader = struct
  type t = { src : string; base : int; len : int; mutable cur : int }

  let of_string ?(pos = 0) ?len src =
    let len = match len with Some l -> l | None -> String.length src - pos in
    if pos < 0 || len < 0 || pos + len > String.length src then
      invalid_arg "Reader.of_string: view out of bounds";
    { src; base = pos; len; cur = 0 }

  let of_slice s =
    { src = Slice.base s; base = Slice.offset s; len = Slice.length s; cur = 0 }

  let pos t = t.cur
  let length t = t.len
  let remaining t = t.len - t.cur
  let is_empty t = remaining t = 0

  let seek t p =
    if p < 0 || p > t.len then invalid_arg "Reader.seek: out of bounds";
    t.cur <- p

  let need t n what = if remaining t < n then raise (Truncated what)

  let skip t n =
    need t n "skip";
    t.cur <- t.cur + n

  let u8 t =
    need t 1 "u8";
    let v = Char.code t.src.[t.base + t.cur] in
    t.cur <- t.cur + 1;
    v

  let peek_u8 t =
    need t 1 "peek_u8";
    Char.code t.src.[t.base + t.cur]

  let u16_be t =
    let a = u8 t in
    let b = u8 t in
    (a lsl 8) lor b

  let u16_le t =
    let a = u8 t in
    let b = u8 t in
    (b lsl 8) lor a

  let u32_be_int t =
    let a = u16_be t in
    let b = u16_be t in
    (a lsl 16) lor b

  let u32_le_int t =
    let a = u16_le t in
    let b = u16_le t in
    (b lsl 16) lor a

  let u32_be t = Int32.of_int (u32_be_int t land 0xFFFFFFFF)
  let u32_le t = Int32.of_int (u32_le_int t land 0xFFFFFFFF)

  let take t n =
    need t n "take";
    let s = String.sub t.src (t.base + t.cur) n in
    t.cur <- t.cur + n;
    s

  let rest t = take t (remaining t)

  let take_slice t n =
    need t n "take_slice";
    let s = Slice.of_sub t.src ~off:(t.base + t.cur) ~len:n in
    t.cur <- t.cur + n;
    s

  let rest_slice t = take_slice t (remaining t)
end

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))
  let char = Buffer.add_char

  let u16_be t v =
    u8 t (v lsr 8);
    u8 t v

  let u16_le t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32_be_int t v =
    u16_be t ((v lsr 16) land 0xFFFF);
    u16_be t (v land 0xFFFF)

  let u32_le_int t v =
    u16_le t (v land 0xFFFF);
    u16_le t ((v lsr 16) land 0xFFFF)

  let u32_be t v = u32_be_int t (Int32.to_int v land 0xFFFFFFFF)
  let u32_le t v = u32_le_int t (Int32.to_int v land 0xFFFFFFFF)
  let string = Buffer.add_string

  let slice t s = Buffer.add_substring t (Slice.base s) (Slice.offset s) (Slice.length s)

  let fill t byte n =
    for _ = 1 to n do
      u8 t byte
    done

  let contents = Buffer.contents

  let patch_u16_be t off v =
    if off < 0 || off + 2 > Buffer.length t then
      invalid_arg "Writer.patch_u16_be: out of bounds";
    let s = Buffer.to_bytes t in
    Bytes.set s off (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set s (off + 1) (Char.chr (v land 0xFF));
    Buffer.clear t;
    Buffer.add_bytes t s
end
