(** Hex encoding and canonical hexdump rendering for diagnostics. *)

val encode : string -> string
(** [encode s] is lowercase hex, two characters per byte, no separators. *)

val decode : string -> string
(** Inverse of [encode]; whitespace between byte pairs is ignored.
    @raise Invalid_argument on odd digit counts or non-hex characters. *)

val decode_opt : string -> string option
(** Non-raising {!decode}. *)

val decode_result : string -> (string, string) Stdlib.result
(** Non-raising {!decode} with the reason ("bad character ...", "odd
    number of hex digits"). *)

val of_ints : int list -> string
(** [of_ints [0x90; 0xcd; ...]] builds a byte string; each element must be
    in [\[0, 255\]]. *)

val pp : Format.formatter -> string -> unit
(** Canonical 16-bytes-per-row dump: offset, hex columns, printable ASCII
    gutter. *)

val to_string : string -> string
(** [pp] rendered to a string. *)
