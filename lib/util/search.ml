(* One substring scanner for every literal-content matcher in the tree
   (rule engine, siggen, rule lint): first-byte skip plus an inline
   byte-by-byte compare, allocating nothing.  The previous per-caller
   copies each built a fresh String.sub per candidate position. *)

let fold c = Char.lowercase_ascii c

(* Core: find [needle] inside [base.[lo .. hi)] (absolute bounds), or -1. *)
let find_in ~nocase base lo hi needle =
  let m = String.length needle in
  if m = 0 then if lo <= hi then lo else -1
  else if hi - lo < m then -1
  else begin
    let c0 = if nocase then fold needle.[0] else needle.[0] in
    let matches_at i =
      let rec go k =
        k >= m
        ||
        let h = String.unsafe_get base (i + k) and n = String.unsafe_get needle k in
        (if nocase then fold h = fold n else h = n) && go (k + 1)
      in
      go 1
    in
    let last = hi - m in
    let rec scan i =
      if i > last then -1
      else
        let h = String.unsafe_get base i in
        if (if nocase then fold h = c0 else h = c0) && matches_at i then i
        else scan (i + 1)
    in
    scan lo
  end

let find ?(nocase = false) ?(start = 0) ?stop ~needle hay =
  let n = String.length hay in
  let stop = match stop with Some s -> min s n | None -> n in
  if start < 0 || start > n then None
  else
    match find_in ~nocase hay start stop needle with
    | -1 -> None
    | i -> Some i

let contains ?nocase ~needle hay = find ?nocase ~needle hay <> None

let find_slice ?(nocase = false) ?(start = 0) ?stop ~needle s =
  let n = Slice.length s in
  let stop = match stop with Some x -> min x n | None -> n in
  if start < 0 || start > n then None
  else
    let off = Slice.offset s in
    match find_in ~nocase (Slice.base s) (off + start) (off + stop) needle with
    | -1 -> None
    | i -> Some (i - off)

let contains_slice ?nocase ~needle s = find_slice ?nocase ~needle s <> None
