let hex_digit n = "0123456789abcdef".[n land 0xF]

let encode s =
  String.init (2 * String.length s) (fun i ->
      let b = Char.code s.[i / 2] in
      if i mod 2 = 0 then hex_digit (b lsr 4) else hex_digit b)

let digit_value_opt c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode_result s =
  let digits = Buffer.create (String.length s) in
  let bad = ref None in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> ()
      | c -> (
          match digit_value_opt c with
          | Some _ -> Buffer.add_char digits c
          | None -> if !bad = None then bad := Some c))
    s;
  match !bad with
  | Some c -> Error (Printf.sprintf "bad character %C" c)
  | None ->
      let d = Buffer.contents digits in
      if String.length d mod 2 <> 0 then Error "odd number of hex digits"
      else
        Ok
          (String.init
             (String.length d / 2)
             (fun i ->
               let hi = Option.get (digit_value_opt d.[2 * i]) in
               let lo = Option.get (digit_value_opt d.[(2 * i) + 1]) in
               Char.chr ((hi lsl 4) lor lo)))

let decode_opt s = Result.to_option (decode_result s)

let decode s =
  match decode_result s with
  | Ok bytes -> bytes
  | Error m -> invalid_arg ("Hexdump.decode: " ^ m)

let of_ints ints =
  let n = List.length ints in
  let a = Array.of_list ints in
  String.init n (fun i ->
      let v = a.(i) in
      if v < 0 || v > 255 then invalid_arg "Hexdump.of_ints: byte out of range";
      Char.chr v)

let printable c = if Char.code c >= 0x20 && Char.code c < 0x7F then c else '.'

let pp ppf s =
  let n = String.length s in
  let rows = (n + 15) / 16 in
  for r = 0 to rows - 1 do
    let off = r * 16 in
    Format.fprintf ppf "%08x  " off;
    for i = 0 to 15 do
      if off + i < n then Format.fprintf ppf "%02x " (Char.code s.[off + i])
      else Format.fprintf ppf "   ";
      if i = 7 then Format.fprintf ppf " "
    done;
    Format.fprintf ppf " |";
    for i = 0 to min 15 (n - off - 1) do
      Format.fprintf ppf "%c" (printable s.[off + i])
    done;
    Format.fprintf ppf "|";
    if r < rows - 1 then Format.fprintf ppf "@\n"
  done

let to_string s = Format.asprintf "%a" pp s
