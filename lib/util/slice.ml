type t = { base : string; off : int; len : int }

let of_string s = { base = s; off = 0; len = String.length s }

let of_sub s ~off ~len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Slice.of_sub: view out of bounds";
  { base = s; off; len }

let empty = { base = ""; off = 0; len = 0 }
let base t = t.base
let offset t = t.off
let length t = t.len
let is_empty t = t.len = 0

let check t i what =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Slice.%s: index %d out of [0,%d)" what i t.len)

let unsafe_get t i = String.unsafe_get t.base (t.off + i)

let get t i =
  check t i "get";
  unsafe_get t i

let get_u8 t i =
  check t i "get_u8";
  Char.code (unsafe_get t i)

let need t i n what =
  if i < 0 || i + n > t.len then
    invalid_arg (Printf.sprintf "Slice.%s: %d bytes at %d exceed length %d" what n i t.len)

let get_u16_be t i =
  need t i 2 "get_u16_be";
  (Char.code (unsafe_get t i) lsl 8) lor Char.code (unsafe_get t (i + 1))

let get_u16_le t i =
  need t i 2 "get_u16_le";
  (Char.code (unsafe_get t (i + 1)) lsl 8) lor Char.code (unsafe_get t i)

let get_u32_be_int t i =
  need t i 4 "get_u32_be_int";
  (Char.code (unsafe_get t i) lsl 24)
  lor (Char.code (unsafe_get t (i + 1)) lsl 16)
  lor (Char.code (unsafe_get t (i + 2)) lsl 8)
  lor Char.code (unsafe_get t (i + 3))

let get_u32_le_int t i =
  need t i 4 "get_u32_le_int";
  (Char.code (unsafe_get t (i + 3)) lsl 24)
  lor (Char.code (unsafe_get t (i + 2)) lsl 16)
  lor (Char.code (unsafe_get t (i + 1)) lsl 8)
  lor Char.code (unsafe_get t i)

let get_u32_be t i = Int32.of_int (get_u32_be_int t i land 0xFFFFFFFF)
let get_u32_le t i = Int32.of_int (get_u32_le_int t i land 0xFFFFFFFF)

let sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg "Slice.sub: view out of bounds";
  { base = t.base; off = t.off + off; len }

let to_string t =
  (* THE materialization point: a whole-string view returns its backing
     string unchanged, so round-tripping string -> slice -> string is
     free; anything narrower copies exactly once, here *)
  if t.off = 0 && t.len = String.length t.base then t.base
  else String.sub t.base t.off t.len

let blit t ~src_off dst ~dst_off ~len =
  need t src_off len "blit";
  Bytes.blit_string t.base (t.off + src_off) dst dst_off len

let equal_string t s =
  t.len = String.length s
  &&
  let rec go i = i >= t.len || (unsafe_get t i = String.unsafe_get s i && go (i + 1)) in
  go 0

let equal a b =
  a.len = b.len
  &&
  let rec go i = i >= a.len || (unsafe_get a i = unsafe_get b i && go (i + 1)) in
  go 0

let exists f t =
  let rec go i = i < t.len && (f (unsafe_get t i) || go (i + 1)) in
  go 0

let for_all f t = not (exists (fun c -> not (f c)) t)

let hash t =
  (* FNV-1a over the viewed bytes; view-position independent *)
  let h = ref 0x811C9DC5 in
  for i = 0 to t.len - 1 do
    h := (!h lxor Char.code (unsafe_get t i)) * 0x01000193 land max_int
  done;
  !h

let pp ppf t = Format.fprintf ppf "slice(%d bytes @@%d)" t.len t.off
