(** Seeded fault injection for the delta channel.

    The ingest layer already has a byte-level adversary
    ({!Sanids_ingest.Fault}); this is its cluster sibling, operating on
    the {e delivery} of whole deltas rather than the bytes of packets.
    A plan is a list of [(kind, probability)] pairs rolled per shipping
    attempt from a {!Rng.t}, so a given [(spec, seed)] replays the
    identical loss pattern.

    Spec syntax (the CLI [--channel-fault] argument):
    ["drop=0.2,dup=0.1,delay=0.05,reorder=0.2,truncate=0.1"] —
    comma-separated [kind=probability], probabilities in [\[0,1\]].
    Kinds: [drop] (the attempt vanishes; the sender retries), [dup]
    (the delta is delivered twice), [delay] (the attempt sleeps before
    sending), [reorder] (the delta is delivered after its successor),
    [truncate] (the attempt sends a corrupted prefix, which the
    aggregator rejects as malformed; the sender retries).

    Two consumers: the live sensor rolls {!next_action} per attempt,
    and the qcheck exactness property folds a whole stream through the
    pure {!deliveries} model, which captures what an at-least-once
    sender over this channel ultimately presents to the aggregator. *)

type kind = Drop | Duplicate | Delay | Reorder | Truncate

val kind_to_string : kind -> string
(** ["drop"], ["dup"], ["delay"], ["reorder"], ["truncate"]. *)

type t = (kind * float) list
(** A fault plan; order is roll order within one attempt. *)

val of_string : string -> (t, string) result
(** Parse a spec.  [Error] names the offending token. *)

val of_string_exn : string -> t
(** @raise Invalid_argument as {!of_string}'s [Error]. *)

val to_string : t -> string
(** Canonical spec text ([of_string (to_string t) = Ok t]). *)

type action =
  | Deliver  (** send normally *)
  | Lose  (** pretend to send, report failure — forces a retry *)
  | Send_twice  (** deliver, then deliver again *)
  | Sleep of float  (** pause up to 50 ms, then deliver *)
  | Corrupt  (** send a truncated prefix (a malformed delta), retry *)

val next_action : Rng.t -> t -> action
(** Roll one attempt: the first kind in plan order whose probability
    fires wins ([Reorder] maps to [Sleep], which is how reordering
    manifests on a live channel); [Deliver] otherwise. *)

val deliveries : Rng.t -> t -> 'a list -> 'a list
(** The pure at-least-once channel model: what sequence of deltas the
    aggregator ultimately {e receives} when a retrying sender pushes
    [items] through a channel with this plan.  Dropped, corrupted and
    delayed attempts are re-delivered later (each item is redelivered
    at most once before succeeding, so the model always terminates);
    duplicated attempts appear twice; reordered items land after their
    successor.  Guarantees: the result contains every input at least
    once, and nothing else. *)
