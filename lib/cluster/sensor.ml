(* The shipping sidecar around the serve engine.

   Threading: three actors share one small mutex'd state record.  The
   engine's feeder thread (inside [Serve.run]) calls the [on_delta]
   hook — journal + enqueue, never blocking on the network.  A
   dedicated sender sys-thread drains the queue head-of-line: one
   delta at a time, retried on the {!Backoff} schedule until acked, so
   delivery to the aggregator is in order unless the test channel
   reorders it.  The main thread runs [Serve.run] and afterwards
   flushes: the sender exits once the engine is done *and* the queue
   is empty (or [flush_timeout] gives up and leaves the rest spooled
   for the next incarnation). *)

module Obs = Sanids_obs
module Httpd = Sanids_serve.Httpd
module Serve = Sanids_serve.Serve

type options = {
  sensor_id : string;
  aggregator : Httpd.listen;
  spool_dir : string;
  serve : Serve.options;
  ship_every : float;
  backoff : Backoff.t;
  connect_timeout : float;
  heartbeat_every : float;
  channel_fault : Fault.t;
  fault_seed : int64;
  flush_timeout : float option;
}

let default_options =
  {
    sensor_id = "";
    aggregator = Httpd.Unix_socket "";
    spool_dir = "";
    serve = Serve.default_options;
    ship_every = 1.0;
    backoff = Backoff.default;
    connect_timeout = 10.0;
    heartbeat_every = 1.0;
    channel_fault = [];
    fault_seed = 1L;
    flush_timeout = None;
  }

type error =
  | Invalid_id of string
  | Unreachable of string
  | Spool_error of string
  | Serve_error of Serve.error
  | Flush_timeout of int

let error_to_string = function
  | Invalid_id id -> Printf.sprintf "invalid sensor id %S" id
  | Unreachable m -> "aggregator unreachable: " ^ m
  | Spool_error m -> m
  | Serve_error e -> Serve.error_to_string e
  | Flush_timeout n ->
      Printf.sprintf "flush timed out with %d deltas spooled for replay" n

let say fmt =
  Printf.ksprintf (fun s -> print_string s; print_newline (); flush stdout) fmt

(* ------------------------------------------------------------------ *)
(* What ships: interval counters and histogram increments.  Gauges are
   level signals — summing them across deltas is meaningless — and
   all-zero deltas carry nothing heartbeats don't. *)

let strip_gauges snap =
  Obs.Snapshot.to_list snap
  |> List.filter (fun (_, v) ->
         match v with Obs.Snapshot.Gauge _ -> false | _ -> true)
  |> Obs.Snapshot.of_list

let worth_shipping snap =
  List.exists
    (fun (_, v) ->
      match v with
      | Obs.Snapshot.Counter n -> n > 0
      | Obs.Snapshot.Hist h -> h.Obs.Histogram.total > 0
      | Obs.Snapshot.Gauge _ -> false)
    (Obs.Snapshot.to_list snap)

(* ------------------------------------------------------------------ *)

type sender = {
  mutex : Mutex.t;
  queue : (int * int * string) Queue.t;  (* epoch, seq, encoded delta *)
  mutable engine_done : bool;  (* no more deltas will be enqueued *)
  mutable give_up : bool;  (* flush timeout: exit with the queue non-empty *)
  mutable acked : int;
  mutable last_contact : float;  (* last successful ack or heartbeat *)
}

let with_lock st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

let enqueue st item = with_lock st (fun () -> Queue.push item st.queue)

let post options ~path body =
  match
    Httpd.request ~timeout:options.backoff.Backoff.timeout
      ~backoff:options.backoff ~read_timeout:options.backoff.Backoff.timeout
      ~body options.aggregator ~verb:"POST" ~path ()
  with
  | Ok (200, resp) -> Ok resp
  | Ok (status, resp) -> Error (Printf.sprintf "%d %s" status (String.trim resp))
  | Error m -> Error m

(* One shipping attempt under the (test-only) channel fault plan.  A
   corrupted attempt really goes on the wire — truncated mid-payload so
   the aggregator's decoder rejects it and its malformed counter moves
   — and then reports failure so the ordinary retry path re-sends. *)
let attempt_ship options rng payload =
  match Fault.next_action rng options.channel_fault with
  | Fault.Deliver -> post options ~path:"/-/delta" payload
  | Fault.Lose -> Error "channel fault: drop"
  | Fault.Send_twice -> (
      match post options ~path:"/-/delta" payload with
      | Ok resp ->
          ignore (post options ~path:"/-/delta" payload);
          Ok resp
      | Error _ as e -> e)
  | Fault.Sleep d ->
      Unix.sleepf d;
      post options ~path:"/-/delta" payload
  | Fault.Corrupt ->
      let cut = max 1 (String.length payload / 2) in
      ignore (post options ~path:"/-/delta" (String.sub payload 0 cut));
      Error "channel fault: truncate"

let heartbeat options st =
  if options.heartbeat_every > 0.0 then begin
    let due =
      with_lock st (fun () ->
          Unix.gettimeofday () -. st.last_contact >= options.heartbeat_every)
    in
    if due then
      match
        post options ~path:"/-/heartbeat"
          (Printf.sprintf "sensor=%s\n" options.sensor_id)
      with
      | Ok _ -> with_lock st (fun () -> st.last_contact <- Unix.gettimeofday ())
      | Error _ -> ()  (* best effort; the detector is the judge *)
  end

let sender_loop options spool st () =
  let rng = Rng.create options.fault_seed in
  let rec loop attempt =
    let item, stop =
      with_lock st (fun () ->
          let item = Queue.peek_opt st.queue in
          (item, st.give_up || (st.engine_done && item = None)))
    in
    if stop then ()
    else
      match item with
      | None ->
          heartbeat options st;
          Unix.sleepf 0.02;
          loop 0
      | Some (epoch, seq, payload) -> (
          match attempt_ship options rng payload with
          | Ok _resp ->
              with_lock st (fun () ->
                  ignore (Queue.pop st.queue);
                  st.acked <- st.acked + 1;
                  st.last_contact <- Unix.gettimeofday ());
              Spool.ack spool ~epoch ~seq;
              loop 0
          | Error m ->
              Logs.debug (fun f ->
                  f "sensor %s: ship %d/%d attempt %d: %s" options.sensor_id
                    epoch seq attempt m);
              Unix.sleepf
                (Backoff.delay options.backoff ~seed:options.fault_seed ~attempt);
              heartbeat options st;
              loop (attempt + 1))
  in
  loop 0

(* ------------------------------------------------------------------ *)

let run options =
  if not (Delta.valid_sensor_id options.sensor_id) then
    Error (Invalid_id options.sensor_id)
  else
    (* Probe before anything else: a sensor that cannot reach its
       aggregator should fail fast with a typed error (EX_UNAVAILABLE
       at the CLI), not serve into the void. *)
    match
      Httpd.request ~timeout:options.connect_timeout ~backoff:options.backoff
        ~read_timeout:options.backoff.Backoff.timeout options.aggregator
        ~verb:"GET" ~path:"/healthz" ()
    with
    | Error m -> Error (Unreachable m)
    | Ok (status, _) when status <> 200 ->
        Error (Unreachable (Printf.sprintf "/healthz returned %d" status))
    | Ok _ -> (
        match Spool.open_dir options.spool_dir with
        | Error m -> Error (Spool_error m)
        | Ok spool ->
            let epoch = Spool.epoch spool in
            say "sensor %s: epoch=%d spool=%s" options.sensor_id epoch
              options.spool_dir;
            let st =
              {
                mutex = Mutex.create ();
                queue = Queue.create ();
                engine_done = false;
                give_up = false;
                acked = 0;
                last_contact = Unix.gettimeofday ();
              }
            in
            (* Replay first: prior incarnations' unacked deltas go to
               the head of the line, in (epoch, seq) order. *)
            let pend = Spool.pending spool in
            List.iter (fun item -> enqueue st item) pend;
            if pend <> [] then
              say "sensor %s: replayed=%d" options.sensor_id (List.length pend);
            let sender = Thread.create (sender_loop options spool st) () in
            let seq = ref 0 in
            let hook delta =
              let delta = strip_gauges delta in
              if worth_shipping delta then begin
                incr seq;
                let d =
                  {
                    Delta.sensor = options.sensor_id;
                    epoch;
                    seq = !seq;
                    snapshot = delta;
                  }
                in
                let payload = Delta.encode d in
                (match Spool.journal spool ~seq:!seq payload with
                | Ok () -> ()
                | Error m ->
                    (* keep shipping — durability is degraded, delivery
                       is not *)
                    Logs.err (fun f -> f "sensor %s: %s" options.sensor_id m));
                enqueue st (epoch, !seq, payload)
              end
            in
            let serve_options =
              {
                options.serve with
                Serve.snapshot_every = options.ship_every;
                on_delta = Some hook;
              }
            in
            let served = Serve.run serve_options in
            with_lock st (fun () -> st.engine_done <- true);
            let flush_deadline =
              match options.flush_timeout with
              | Some s -> Unix.gettimeofday () +. s
              | None -> infinity
            in
            let rec flush () =
              let left = with_lock st (fun () -> Queue.length st.queue) in
              if left = 0 then Ok ()
              else if Unix.gettimeofday () > flush_deadline then begin
                with_lock st (fun () -> st.give_up <- true);
                Error left
              end
              else begin
                Unix.sleepf 0.02;
                flush ()
              end
            in
            let flushed = flush () in
            Thread.join sender;
            (match flushed with
            | Ok () -> ()
            | Error n ->
                say "sensor %s: %d deltas spooled for replay" options.sensor_id n);
            (match served with
            | Error e -> Error (Serve_error e)
            | Ok () -> (
                match flushed with
                | Error n -> Error (Flush_timeout n)
                | Ok () ->
                    say "sensor %s: drained epoch=%d shipped=%d"
                      options.sensor_id epoch
                      (with_lock st (fun () -> st.acked));
                    Ok ())))
