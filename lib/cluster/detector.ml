(* Pure failure-detector transitions.  The invariants the table below
   encodes, stated once:

     - Heard always improves: Dead -> Rejoined, Rejoined -> Alive,
       anything else -> Alive.
     - Silence only degrades, monotonically with the threshold it
       crosses, and never resurrects: a Dead sensor stays Dead under
       any Silence, even a small one (last_heard only moves on Heard,
       so small silences at a Dead sensor cannot happen in the driver
       anyway — but the function is total and safe regardless).
     - Rejoined is transient bookkeeping: it degrades under silence
       exactly like Alive. *)

type state = Alive | Suspect | Dead | Rejoined

type config = { suspect_after : float; dead_after : float }

let default_config = { suspect_after = 3.0; dead_after = 10.0 }

let validate c =
  if not (Float.is_finite c.suspect_after) || c.suspect_after <= 0.0 then
    Error "detector: suspect_after must be positive"
  else if not (Float.is_finite c.dead_after) || c.dead_after < c.suspect_after
  then Error "detector: dead_after must be >= suspect_after"
  else Ok c

type event = Heard | Silence of float

let step config state event =
  match (state, event) with
  | Dead, Heard -> Rejoined
  | (Alive | Suspect | Rejoined), Heard -> Alive
  | Dead, Silence _ -> Dead
  | (Alive | Suspect | Rejoined), Silence d ->
      if d >= config.dead_after then Dead
      else if d >= config.suspect_after then Suspect
      else state

let state_to_string = function
  | Alive -> "alive"
  | Suspect -> "suspect"
  | Dead -> "dead"
  | Rejoined -> "rejoined"

let all_states = [ Alive; Suspect; Dead; Rejoined ]
