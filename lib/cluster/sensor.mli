(** One federated sensor: the serve engine plus a shipping sidecar.

    [sanids sensor] runs the ordinary {!Sanids_serve.Serve} engine over
    its traffic shard and attaches to the engine's [on_delta] hook: every
    periodic snapshot delta is journaled to the {!Spool}, queued, and
    shipped to the aggregator as a [POST /-/delta] with
    [(sensor, epoch, seq)] identity in the payload header.  Shipping is
    at-least-once: a delta leaves the queue (and the spool) only on an
    aggregator ack, every retry edge runs on the shared {!Backoff}
    policy, and re-sends are harmless because the aggregator's
    {!Dedup} layer is idempotent.

    Crash recovery falls out of the spool: on start the sensor bumps
    its epoch and re-queues every journaled-but-unacked delta from
    prior incarnations ahead of new traffic, so a SIGKILLed sensor
    respawned over the same spool directory loses nothing and can
    never collide with its old sequence numbers.

    Liveness: when the channel has been quiet for [heartbeat_every]
    seconds the sender posts a heartbeat so the aggregator's failure
    detector keeps the sensor [Alive] through lulls in traffic.

    Gauges are stripped from shipped deltas — they are level signals,
    not interval-additive, and the cluster view is a sum.  All-zero
    deltas are skipped (heartbeats cover liveness); sequence numbers
    count shipped deltas only. *)

type options = {
  sensor_id : string;  (** {!Delta.valid_sensor_id} *)
  aggregator : Sanids_serve.Httpd.listen;
  spool_dir : string;  (** crash journal; also holds the epoch *)
  serve : Sanids_serve.Serve.options;
      (** engine options; [snapshot_every] and [on_delta] are
          overridden by the sensor *)
  ship_every : float;  (** seconds between delta cuts *)
  backoff : Backoff.t;  (** retry policy for every channel edge *)
  connect_timeout : float;
      (** seconds to reach the aggregator at startup before giving up *)
  heartbeat_every : float;  (** quiet-channel heartbeat; [<= 0.] disables *)
  channel_fault : Fault.t;  (** test-only delivery faults; [[]] in production *)
  fault_seed : int64;
  flush_timeout : float option;
      (** how long the post-drain flush may chase acks; [None] waits
          forever (journaled deltas survive a kill either way) *)
}

val default_options : options
(** Placeholder [sensor_id]/[aggregator]/[spool_dir] (caller must
    set), engine defaults, [ship_every = 1.0], default backoff, 10 s
    connect timeout, 1 s heartbeats, no faults, [None] flush. *)

type error =
  | Invalid_id of string
  | Unreachable of string  (** aggregator probe failed — [EX_UNAVAILABLE] *)
  | Spool_error of string
  | Serve_error of Sanids_serve.Serve.error
  | Flush_timeout of int  (** drain flush gave up with [n] deltas spooled *)

val error_to_string : error -> string

val run : options -> (unit, error) result
(** Probe the aggregator, open the spool, replay pending deltas, run
    the engine to drain, then flush the queue.  Prints [sensor <id>:]
    progress lines alongside the engine's [serve:] lines. *)
