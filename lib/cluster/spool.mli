(** The sensor's crash journal: unacked deltas on disk.

    A sensor journals every delta {e before} the first shipping
    attempt and unlinks it only on an aggregator ack, so the set of
    files in the spool directory is exactly the set of deltas the
    aggregator has not confirmed.  A sensor that is SIGKILLed mid-ship
    and respawned over the same directory replays that set losslessly
    — at worst re-sending something the aggregator already applied,
    which the dedup layer absorbs.

    The directory also carries the {e epoch} of the sensor's process
    incarnation in an [EPOCH] file: {!open_dir} reads it, bumps it,
    and persists the bump before returning, so sequence numbers from a
    crashed incarnation can never collide with the respawn's.  Journal
    writes are tmp-file-then-rename, so a crash mid-write leaves
    either a complete delta or an ignorable [.tmp]. *)

type t

val open_dir : string -> (t, string) result
(** Create the directory if needed, read-bump-persist the epoch. *)

val dir : t -> string

val epoch : t -> int
(** This incarnation's epoch (1 on a fresh directory). *)

val journal : t -> seq:int -> string -> (unit, string) result
(** Persist an encoded delta for [seq] of this incarnation's epoch. *)

val ack : t -> epoch:int -> seq:int -> unit
(** Remove the journal entry — the aggregator confirmed it.  May name
    a prior incarnation's epoch (replayed entries).  Best-effort. *)

val pending : t -> (int * int * string) list
(** All journaled-but-unacked deltas as [(epoch, seq, payload)],
    ordered by [(epoch, seq)] — prior incarnations first.  Unreadable
    or half-written entries are skipped. *)
