(** The idempotent apply layer in front of {!Sanids_obs.Snapshot.merge}.

    At-least-once shipping means the aggregation channel presents each
    delta one {e or more} times, in any order.  Because snapshot merge
    is a commutative monoid (the qcheck-verified law from the obs
    core), order never matters — the only thing that can corrupt the
    cluster view is applying the same delta twice.  This module is
    that guard: a pure map of per-[(sensor, epoch)] applied sequence
    sets, folded over incoming deltas.  The qcheck property in
    [test_cluster] states the contract precisely: for any faulted
    delivery (drops-with-retry, duplicates, reorderings) of a delta
    stream, folding through {!apply} yields a view {e equal} to the
    lossless merge — exact, not eventually close.

    The state is immutable; the aggregator holds it in a mutex'd ref,
    and tests fold over it freely. *)

type t

val empty : t

type outcome =
  | Fresh  (** first sighting — merged into the view *)
  | Duplicate  (** already applied — ignored, but still acked *)

val apply : t -> Delta.t -> t * outcome
(** Idempotent: applying any delta a second time returns the state
    unchanged and [Duplicate].  Epochs need not arrive in order. *)

val view : t -> Sanids_obs.Snapshot.t
(** The cluster view: every sensor's applied deltas, merged. *)

val sensor_view : t -> string -> Sanids_obs.Snapshot.t
(** One sensor's applied deltas, merged ([empty] for unknown ids). *)

val sensors : t -> string list
(** Sensor ids ever heard from, sorted. *)

type stats = {
  epochs : int;  (** distinct epochs heard from this sensor *)
  applied : int;  (** fresh deltas merged *)
  duplicates : int;  (** redeliveries discarded *)
  last_epoch : int;
  last_seq : int;  (** highest seq applied within [last_epoch] *)
}

val stats : t -> string -> stats option
