(** The per-sensor failure detector as a pure transition function.

    Liveness judgement lives entirely on the {e aggregator's} clock:
    sensors only talk (deltas and heartbeats both count as [Heard]);
    the aggregator periodically folds [Silence d] — seconds since the
    sensor was last heard — through this table.  No I/O, no clock, no
    mutable state, so the whole protocol is enumerable in a unit test,
    exactly like the serve {!Sanids_serve.Lifecycle}.

    States: [Alive] (fresh traffic), [Suspect] (quiet past
    [suspect_after] — the cluster view is flagged stale but kept),
    [Dead] (quiet past [dead_after] — staleness gauges pin, operators
    page), [Rejoined] (a Dead sensor spoke again — one transient state
    so dashboards can count resurrections; the next [Heard] promotes
    it to [Alive]).  Silence thresholds never resurrect: only [Heard]
    moves a sensor out of [Dead]. *)

type state = Alive | Suspect | Dead | Rejoined

type config = {
  suspect_after : float;  (** seconds of silence before [Suspect] *)
  dead_after : float;  (** seconds of silence before [Dead] *)
}

val default_config : config
(** [suspect_after = 3.0], [dead_after = 10.0]. *)

val validate : config -> (config, string) result
(** Thresholds positive and [suspect_after <= dead_after]. *)

type event =
  | Heard  (** a delta or heartbeat arrived *)
  | Silence of float  (** seconds since last heard, on the aggregator's clock *)

val step : config -> state -> event -> state
(** Total — every (state, event) pair transitions; the full table is
    enumerated in [test_cluster]. *)

val state_to_string : state -> string
(** ["alive"], ["suspect"], ["dead"], ["rejoined"] — also the label
    values of [sanids_cluster_sensors{state="..."}]. *)

val all_states : state list
(** In label order; exporters pre-register the whole family. *)
