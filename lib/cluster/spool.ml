type t = { dir : string; epoch : int }

let dir t = t.dir
let epoch t = t.epoch

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok s
  | exception Sys_error m -> Error m

(* All durable writes go through tmp + rename: a crash leaves either
   the old content or the new, never a prefix. *)
let write_file path content =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content);
    Unix.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let epoch_file d = Filename.concat d "EPOCH"

let open_dir d =
  match mkdir_p d with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "spool %s: %s" d (Unix.error_message e))
  | () -> (
      let prev =
        match read_file (epoch_file d) with
        | Ok text -> (
            match int_of_string_opt (String.trim text) with
            | Some n when n >= 0 -> n
            | Some _ | None -> 0)
        | Error _ -> 0
      in
      let epoch = prev + 1 in
      match write_file (epoch_file d) (Printf.sprintf "%d\n" epoch) with
      | Ok () -> Ok { dir = d; epoch }
      | Error m -> Error (Printf.sprintf "spool %s: %s" d m))

let entry_name ~epoch ~seq = Printf.sprintf "delta-%08d-%08d.delta" epoch seq

let parse_entry name =
  match Scanf.sscanf_opt name "delta-%8d-%8d.delta%!" (fun e s -> (e, s)) with
  | Some (e, s) when e > 0 && s > 0 -> Some (e, s)
  | Some _ | None -> None

let journal t ~seq payload =
  match
    write_file (Filename.concat t.dir (entry_name ~epoch:t.epoch ~seq)) payload
  with
  | Ok () -> Ok ()
  | Error m -> Error (Printf.sprintf "spool %s: %s" t.dir m)

let ack t ~epoch ~seq =
  try Sys.remove (Filename.concat t.dir (entry_name ~epoch ~seq))
  with Sys_error _ -> ()

let pending t =
  let names = try Sys.readdir t.dir with Sys_error _ -> [| |] in
  Array.to_list names
  |> List.filter_map (fun name ->
         match parse_entry name with
         | None -> None
         | Some (epoch, seq) -> (
             match read_file (Filename.concat t.dir name) with
             | Ok payload -> Some (epoch, seq, payload)
             | Error _ -> None))
  |> List.sort (fun (e1, s1, _) (e2, s2, _) -> compare (e1, s1) (e2, s2))
