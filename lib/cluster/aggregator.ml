(* The aggregation daemon.  All cluster state lives behind one mutex:
   the Httpd handler thread mutates it on every delta/heartbeat, the
   main thread reads it on every detector tick and at drain.  The
   dedup state itself is a pure value in a ref — handlers fold, tests
   fold, nobody shares structure dangerously. *)

module Obs = Sanids_obs
module Httpd = Sanids_serve.Httpd
module Ingest = Sanids_ingest.Ingest

type options = {
  listen : Httpd.listen;
  detector : Detector.config;
  tick_every : float;
  clock : unit -> float;
  install_signals : bool;
}

let default_options =
  {
    listen = Httpd.Unix_socket "";
    detector = Detector.default_config;
    tick_every = 0.2;
    clock = Unix.gettimeofday;
    install_signals = true;
  }

let say fmt =
  Printf.ksprintf (fun s -> print_string s; print_newline (); flush stdout) fmt

type sensor_track = {
  mutable last_heard : float;
  mutable state : Detector.state;
  staleness : Obs.Registry.gauge;
}

type t = {
  mutex : Mutex.t;
  mutable dedup : Dedup.t;
  sensors : (string, sensor_track) Hashtbl.t;
  mutable stop : bool;
  reg : Obs.Registry.t;
  fresh : Obs.Registry.counter;
  duplicate : Obs.Registry.counter;
  malformed : Obs.Registry.counter;
  heartbeats : Obs.Registry.counter;
  state_gauges : (Detector.state * Obs.Registry.gauge) list;
}

let make () =
  let reg = Obs.Registry.create () in
  let delta outcome =
    Obs.Registry.counter reg ~help:"deltas received by outcome"
      ~labels:[ ("outcome", outcome) ] "sanids_cluster_deltas_total"
  in
  (* pre-register every label value so a scrape always sees the family *)
  let fresh = delta "fresh" in
  let duplicate = delta "duplicate" in
  let malformed = delta "malformed" in
  let heartbeats =
    Obs.Registry.counter reg ~help:"heartbeats received"
      "sanids_cluster_heartbeats_total"
  in
  let state_gauges =
    List.map
      (fun s ->
        ( s,
          Obs.Registry.gauge reg ~help:"sensors by failure-detector state"
            ~labels:[ ("state", Detector.state_to_string s) ]
            "sanids_cluster_sensors" ))
      Detector.all_states
  in
  {
    mutex = Mutex.create ();
    dedup = Dedup.empty;
    sensors = Hashtbl.create 8;
    stop = false;
    reg;
    fresh;
    duplicate;
    malformed;
    heartbeats;
    state_gauges;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let export_states t =
  List.iter
    (fun (s, g) ->
      let n =
        Hashtbl.fold
          (fun _ track acc -> if track.state = s then acc + 1 else acc)
          t.sensors 0
      in
      Obs.Registry.set_gauge g (float_of_int n))
    t.state_gauges

(* Under the lock.  Every delta and heartbeat lands here. *)
let heard options t id =
  let track =
    match Hashtbl.find_opt t.sensors id with
    | Some track -> track
    | None ->
        let track =
          {
            last_heard = options.clock ();
            state = Detector.Alive;
            staleness =
              Obs.Registry.gauge t.reg
                ~help:"seconds since this sensor was last heard"
                ~labels:[ ("sensor", id) ]
                "sanids_cluster_staleness_seconds";
          }
        in
        Hashtbl.replace t.sensors id track;
        say "aggregate: sensor=%s state=alive" id;
        track
  in
  track.last_heard <- options.clock ();
  Obs.Registry.set_gauge track.staleness 0.0;
  let next = Detector.step options.detector track.state Detector.Heard in
  if next <> track.state then
    say "aggregate: sensor=%s state=%s" id (Detector.state_to_string next);
  track.state <- next;
  export_states t

let tick options t =
  with_lock t (fun () ->
      let now = options.clock () in
      Hashtbl.iter
        (fun id track ->
          let silence = Float.max 0.0 (now -. track.last_heard) in
          Obs.Registry.set_gauge track.staleness silence;
          let next =
            Detector.step options.detector track.state
              (Detector.Silence silence)
          in
          if next <> track.state then
            say "aggregate: sensor=%s state=%s" id
              (Detector.state_to_string next);
          track.state <- next)
        t.sensors;
      export_states t)

(* ------------------------------------------------------------------ *)

let handle_delta options t body =
  match Delta.decode body with
  | Error m ->
      Obs.Registry.incr t.malformed;
      Httpd.error 400 (Printf.sprintf "malformed delta: %s\n" m)
  | Ok d ->
      let outcome =
        with_lock t (fun () ->
            let dedup, outcome = Dedup.apply t.dedup d in
            t.dedup <- dedup;
            heard options t d.Delta.sensor;
            outcome)
      in
      let outcome_s =
        match outcome with
        | Dedup.Fresh ->
            Obs.Registry.incr t.fresh;
            "fresh"
        | Dedup.Duplicate ->
            Obs.Registry.incr t.duplicate;
            "duplicate"
      in
      Httpd.ok ~content_type:"text/plain"
        (Printf.sprintf "ack epoch=%d seq=%d %s\n" d.Delta.epoch d.Delta.seq
           outcome_s)

let handle_heartbeat options t body =
  let id =
    String.trim body |> String.split_on_char ' '
    |> List.find_map (fun token ->
           match String.index_opt token '=' with
           | Some i when String.sub token 0 i = "sensor" ->
               Some (String.sub token (i + 1) (String.length token - i - 1))
           | _ -> None)
  in
  match id with
  | Some id when Delta.valid_sensor_id id ->
      Obs.Registry.incr t.heartbeats;
      with_lock t (fun () -> heard options t id);
      Httpd.ok ~content_type:"text/plain" "ok\n"
  | Some id -> Httpd.error 400 (Printf.sprintf "invalid sensor id %S\n" id)
  | None -> Httpd.error 400 "expected sensor=<id>\n"

let sensors_lines t =
  with_lock t (fun () ->
      Dedup.sensors t.dedup
      |> List.map (fun id ->
             let s =
               match Dedup.stats t.dedup id with
               | Some s -> s
               | None -> assert false
             in
             let state =
               match Hashtbl.find_opt t.sensors id with
               | Some track -> Detector.state_to_string track.state
               | None -> "alive"
             in
             Printf.sprintf
               "sensor=%s state=%s epoch=%d seq=%d epochs=%d applied=%d duplicates=%d\n"
               id state s.Dedup.last_epoch s.Dedup.last_seq s.Dedup.epochs
               s.Dedup.applied s.Dedup.duplicates)
      |> String.concat "")

let handler options t req =
  match (req.Httpd.verb, req.Httpd.path) with
  | ("GET" | "HEAD"), "/metrics" ->
      let view, help =
        with_lock t (fun () -> (Dedup.view t.dedup, Obs.Registry.help t.reg))
      in
      Httpd.ok
        (Obs.Export.to_prometheus ~help
           (Obs.Snapshot.merge (Obs.Registry.snapshot t.reg) view))
  | ("GET" | "HEAD"), "/healthz" ->
      let n = with_lock t (fun () -> Hashtbl.length t.sensors) in
      Httpd.ok ~content_type:"text/plain" (Printf.sprintf "ok sensors=%d\n" n)
  | ("GET" | "HEAD"), "/-/sensors" ->
      Httpd.ok ~content_type:"text/plain" (sensors_lines t)
  | ("POST" | "GET"), "/-/delta" -> handle_delta options t req.Httpd.body
  | ("POST" | "GET"), "/-/heartbeat" -> handle_heartbeat options t req.Httpd.body
  | ("POST" | "GET"), "/-/drain" ->
      with_lock t (fun () -> t.stop <- true);
      Httpd.ok ~content_type:"text/plain" "draining\n"
  | _, ("/metrics" | "/healthz" | "/-/sensors" | "/-/delta" | "/-/heartbeat" | "/-/drain")
    ->
      Httpd.error 405 "method not allowed\n"
  | _ -> Httpd.error 404 "not found\n"

(* ------------------------------------------------------------------ *)

(* The daemon's reconciliation identity, summed across the fleet.
   Exact because deltas are interval counters, dedup is idempotent,
   and merge is commutative: in a quiescent cluster (every sensor
   drained and flushed) the merged view carries precisely each
   sensor's final accounting. *)
let summary t =
  with_lock t (fun () ->
      List.iter
        (fun id ->
          match Dedup.stats t.dedup id with
          | None -> ()
          | Some s ->
              let state =
                match Hashtbl.find_opt t.sensors id with
                | Some track -> Detector.state_to_string track.state
                | None -> "alive"
              in
              say
                "aggregate: sensor=%s state=%s epochs=%d applied=%d duplicates=%d last=%d/%d"
                id state s.Dedup.epochs s.Dedup.applied s.Dedup.duplicates
                s.Dedup.last_epoch s.Dedup.last_seq)
        (Dedup.sensors t.dedup);
      let view = Dedup.view t.dedup in
      let records = Obs.Snapshot.counter_value view Ingest.records_total in
      let errors = Obs.Snapshot.counter_sum view Ingest.errors_total in
      let verdicts = Obs.Snapshot.counter_value view "sanids_packets_total" in
      let shed = Obs.Snapshot.counter_sum view "sanids_shed_total" in
      let failed =
        Obs.Snapshot.counter_value view "sanids_worker_failures_total"
      in
      let balanced = records = verdicts + errors + shed + failed in
      say
        "aggregate: cluster records=%d verdicts=%d errors=%d shed=%d failed=%d %s"
        records verdicts errors shed failed
        (if balanced then "reconciled" else "MISMATCH");
      say "aggregate: stopped sensors=%d" (Hashtbl.length t.sensors))

let run options =
  let t = make () in
  let sigterm = Atomic.make false in
  if options.install_signals then begin
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    try
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> Atomic.set sigterm true))
    with Invalid_argument _ | Sys_error _ -> ()
  end;
  match Httpd.start options.listen (handler options t) with
  | Error m -> Error m
  | Ok h ->
      say "aggregate: listening %s" (Httpd.address h);
      let rec loop () =
        if Atomic.exchange sigterm false then
          with_lock t (fun () -> t.stop <- true);
        let stop = with_lock t (fun () -> t.stop) in
        if not stop then begin
          Unix.sleepf options.tick_every;
          tick options t;
          loop ()
        end
      in
      loop ();
      Httpd.stop h;
      summary t;
      Ok ()
