(** The unit of federation: one snapshot delta from one sensor.

    A delta is an interval {!Sanids_obs.Snapshot.diff} cut by a
    sensor's serve engine, stamped with the at-least-once delivery
    header [(sensor, epoch, seq)]: [sensor] names the sensor for the
    cluster's per-sensor accounting, [epoch] counts the sensor's
    process incarnations (bumped by the spool on every start, so a
    crashed-and-respawned sensor can replay journalled deltas without
    colliding with its new stream), and [seq] numbers deltas within an
    epoch.  The aggregator treats the triple as the identity of the
    delta: applying it twice is detected and ignored, which is what
    turns at-least-once delivery into an exact cluster view.

    The wire form is a line-oriented text document (version-tagged,
    self-delimiting via a metric count) rather than the Prometheus
    exposition format, because it must round-trip {e exactly}:
    counters, gauges and full histogram bucket arrays, float-precise.
    A truncated or bit-damaged body fails {!decode} — the sensor never
    gets an ack and simply ships it again. *)

type t = {
  sensor : string;
  epoch : int;
  seq : int;
  snapshot : Sanids_obs.Snapshot.t;
}

val valid_sensor_id : string -> bool
(** Sensor names are DNS-label-ish: nonempty, [[A-Za-z0-9_.-]+], at
    most 64 bytes — they appear inside metric label values and file
    names. *)

val key : t -> string
(** ["sensor/epoch/seq"] — a human-readable identity, used in logs and
    spool file names. *)

val encode : t -> string
(** The wire document.  Deterministic: equal deltas encode equal. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; rejects version mismatches, malformed lines,
    header/metric-count inconsistencies (the truncation detector) and
    invalid sensor ids, with a one-line reason. *)
