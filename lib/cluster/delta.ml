(* The delta wire codec.

   Format (one metric per line after the header, [metrics=] counts
   them — the cheap truncation detector):

     sanids-delta/1 sensor=web-1 epoch=3 seq=17 metrics=4
     c sanids_packets_total 128
     c sanids_ingest_errors_total{reason="ipv4"} 2
     g sanids_config_generation 0x1p+0
     h sanids_stage_analyze_seconds 0x1.4p-3 17 31:12,32:5

   Counter values are decimal ints; gauge values and histogram sums
   are hexadecimal floats (%h) so the codec round-trips bit-exact —
   the dedup layer's exactness proof is only as good as the wire.
   Histograms carry total observations and sparse [bucket:count]
   pairs ([-] when empty).  Metric names are percent-encoded because
   labeled series names embed quoted label values that could in
   principle carry spaces or newlines. *)

module Obs = Sanids_obs

type t = {
  sensor : string;
  epoch : int;
  seq : int;
  snapshot : Obs.Snapshot.t;
}

let magic = "sanids-delta/1"

let valid_sensor_id s =
  s <> ""
  && String.length s <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       s

let key t = Printf.sprintf "%s/%d/%d" t.sensor t.epoch t.seq

(* ------------------------------------------------------------------ *)
(* name escaping *)

let hex = "0123456789ABCDEF"

let escape_name s =
  let needs =
    String.exists
      (function ' ' | '%' | '\n' | '\r' | '\t' -> true | _ -> false)
      s
  in
  if not needs then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | ' ' | '%' | '\n' | '\r' | '\t' ->
            Buffer.add_char b '%';
            Buffer.add_char b hex.[Char.code c lsr 4];
            Buffer.add_char b hex.[Char.code c land 0xf]
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let unescape_name s =
  let n = String.length s in
  let b = Buffer.create n in
  let hexval c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | _ -> None
  in
  let rec go i =
    if i >= n then Ok (Buffer.contents b)
    else if s.[i] = '%' then
      if i + 2 >= n then Error "truncated escape in metric name"
      else
        match (hexval s.[i + 1], hexval s.[i + 2]) with
        | Some h, Some l ->
            Buffer.add_char b (Char.chr ((h lsl 4) lor l));
            go (i + 3)
        | _ -> Error "bad escape in metric name"
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* floats: %h round-trips exactly through float_of_string *)

let float_wire f = Printf.sprintf "%h" f

let float_unwire s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "bad float %S" s)

(* ------------------------------------------------------------------ *)

let encode t =
  let metrics = Obs.Snapshot.to_list t.snapshot in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%s sensor=%s epoch=%d seq=%d metrics=%d\n" magic t.sensor
       t.epoch t.seq (List.length metrics));
  List.iter
    (fun (name, v) ->
      let name = escape_name name in
      match v with
      | Obs.Snapshot.Counter n ->
          Buffer.add_string b (Printf.sprintf "c %s %d\n" name n)
      | Obs.Snapshot.Gauge g ->
          Buffer.add_string b (Printf.sprintf "g %s %s\n" name (float_wire g))
      | Obs.Snapshot.Hist h ->
          let pairs = Buffer.create 64 in
          Array.iteri
            (fun i c ->
              if c > 0 then begin
                if Buffer.length pairs > 0 then Buffer.add_char pairs ',';
                Buffer.add_string pairs (Printf.sprintf "%d:%d" i c)
              end)
            h.Obs.Histogram.counts;
          let pairs = if Buffer.length pairs = 0 then "-" else Buffer.contents pairs in
          Buffer.add_string b
            (Printf.sprintf "h %s %s %d %s\n" name
               (float_wire h.Obs.Histogram.sum)
               h.Obs.Histogram.total pairs))
    metrics;
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let int_field token key =
  match String.index_opt token '=' with
  | Some i when String.sub token 0 i = key -> (
      match
        int_of_string_opt (String.sub token (i + 1) (String.length token - i - 1))
      with
      | Some n when n >= 0 -> Ok n
      | Some _ | None -> Error (Printf.sprintf "bad %s in header" key))
  | _ -> Error (Printf.sprintf "expected %s= in header" key)

let str_field token key =
  match String.index_opt token '=' with
  | Some i when String.sub token 0 i = key ->
      Ok (String.sub token (i + 1) (String.length token - i - 1))
  | _ -> Error (Printf.sprintf "expected %s= in header" key)

let decode_header line =
  match String.split_on_char ' ' line with
  | [ m; sensor; epoch; seq; metrics ] when m = magic ->
      let* sensor = str_field sensor "sensor" in
      if not (valid_sensor_id sensor) then
        Error (Printf.sprintf "invalid sensor id %S" sensor)
      else
        let* epoch = int_field epoch "epoch" in
        let* seq = int_field seq "seq" in
        let* metrics = int_field metrics "metrics" in
        Ok (sensor, epoch, seq, metrics)
  | m :: _ when m <> magic -> Error (Printf.sprintf "not a %s document" magic)
  | _ -> Error "malformed header"

let decode_hist_pairs pairs total =
  let counts = Array.make Obs.Histogram.nbuckets 0 in
  let* () =
    if pairs = "-" then Ok ()
    else
      List.fold_left
        (fun acc pair ->
          let* () = acc in
          match String.index_opt pair ':' with
          | None -> Error (Printf.sprintf "bad bucket pair %S" pair)
          | Some i -> (
              let idx = int_of_string_opt (String.sub pair 0 i) in
              let c =
                int_of_string_opt
                  (String.sub pair (i + 1) (String.length pair - i - 1))
              in
              match (idx, c) with
              | Some idx, Some c
                when idx >= 0 && idx < Obs.Histogram.nbuckets && c > 0 ->
                  counts.(idx) <- counts.(idx) + c;
                  Ok ()
              | _ -> Error (Printf.sprintf "bad bucket pair %S" pair)))
        (Ok ())
        (String.split_on_char ',' pairs)
  in
  let computed = Array.fold_left ( + ) 0 counts in
  if computed <> total then
    Error
      (Printf.sprintf "histogram total %d does not match buckets %d" total
         computed)
  else Ok counts

let decode_line line =
  match String.split_on_char ' ' line with
  | [ "c"; name; v ] -> (
      let* name = unescape_name name in
      match int_of_string_opt v with
      | Some n -> Ok (name, Obs.Snapshot.Counter n)
      | None -> Error (Printf.sprintf "bad counter value %S" v))
  | [ "g"; name; v ] ->
      let* name = unescape_name name in
      let* g = float_unwire v in
      Ok (name, Obs.Snapshot.Gauge g)
  | [ "h"; name; sum; total; pairs ] -> (
      let* name = unescape_name name in
      let* sum = float_unwire sum in
      match int_of_string_opt total with
      | Some total when total >= 0 ->
          let* counts = decode_hist_pairs pairs total in
          Ok (name, Obs.Snapshot.Hist { Obs.Histogram.counts; sum; total })
      | Some _ | None -> Error (Printf.sprintf "bad histogram total %S" total))
  | _ -> Error (Printf.sprintf "malformed metric line %S" line)

let decode text =
  match String.split_on_char '\n' text with
  | [] | [ "" ] -> Error "empty delta"
  | header :: rest ->
      let* sensor, epoch, seq, metrics = decode_header header in
      (* the document ends with a newline, so a clean split leaves one
         trailing "" — anything else is truncation or garbage *)
      let lines, trailing_ok =
        match List.rev rest with
        | "" :: body -> (List.rev body, true)
        | _ -> (rest, false)
      in
      if not trailing_ok then Error "truncated delta (no final newline)"
      else if List.length lines <> metrics then
        Error
          (Printf.sprintf "truncated delta (%d of %d metric lines)"
             (List.length lines) metrics)
      else
        let* entries =
          List.fold_left
            (fun acc line ->
              let* acc = acc in
              let* entry = decode_line line in
              Ok (entry :: acc))
            (Ok []) lines
        in
        Ok { sensor; epoch; seq; snapshot = Obs.Snapshot.of_list entries }
