(** The cluster head: dedup, merge, failure detection, one scrape.

    [sanids aggregate] listens on the same {!Sanids_serve.Httpd}
    control plane the daemon uses and folds every sensor's delta
    stream through {!Dedup} into one exact cluster view.  Dedup means
    the at-least-once channel can drop (and re-send), duplicate or
    reorder deliveries without the view drifting — acks are
    idempotent, so a sensor may safely re-ship anything it is unsure
    about, including a whole spool after a crash.

    Surface:
    - [POST /-/delta] — a {!Delta} document; 200 [ack epoch=E seq=S
      fresh|duplicate], 400 on a malformed payload (counted);
    - [POST /-/heartbeat] — [sensor=<id>] liveness, no data;
    - [GET /metrics] — the aggregator's own registry merged with the
      cluster view, Prometheus text;
    - [GET /-/sensors] — one line per sensor: state, epoch/seq
      high-water marks, applied/duplicate counts;
    - [GET /healthz], [POST /-/drain] — as the daemon.

    Failure detection runs on the aggregator's clock only: every
    delta or heartbeat is a {!Detector.Heard}; a periodic tick folds
    the silence since then through {!Detector.step} and exports
    [sanids_cluster_sensors{state=...}] plus per-sensor
    [sanids_cluster_staleness_seconds{sensor=...}] gauges.

    On drain the aggregator prints one summary line per sensor and a
    cluster-wide reconciliation over the merged view — the same
    [records = verdicts + errors + shed + failed] identity the daemon
    checks, now summed across the fleet. *)

type options = {
  listen : Sanids_serve.Httpd.listen;
  detector : Detector.config;
  tick_every : float;  (** detector tick and drain poll, seconds *)
  clock : unit -> float;
  install_signals : bool;  (** SIGTERM drains *)
}

val default_options : options
(** Placeholder [listen] (caller must set), {!Detector.default_config},
    0.2 s tick, [Unix.gettimeofday], signals installed. *)

val run : options -> (unit, string) result
(** Serve until drained, then print the summary.  [Error] only for a
    socket that cannot be bound. *)
