(* Pure dedup/merge state: Map of sensor -> (Map of epoch -> applied
   seq set, merged per-sensor snapshot).  Commutativity of
   Snapshot.merge does the heavy lifting; this layer only has to make
   application idempotent. *)

module Obs = Sanids_obs
module SM = Map.Make (String)
module IM = Map.Make (Int)
module IS = Set.Make (Int)

type sensor_state = {
  epochs : IS.t IM.t;  (* epoch -> applied seqs *)
  merged : Obs.Snapshot.t;
  applied : int;
  duplicates : int;
  last_epoch : int;
  last_seq : int;
}

type t = sensor_state SM.t

let empty = SM.empty

type outcome = Fresh | Duplicate

let fresh_sensor =
  {
    epochs = IM.empty;
    merged = Obs.Snapshot.empty;
    applied = 0;
    duplicates = 0;
    last_epoch = 0;
    last_seq = 0;
  }

let apply t (d : Delta.t) =
  let s = Option.value (SM.find_opt d.Delta.sensor t) ~default:fresh_sensor in
  let seen = Option.value (IM.find_opt d.Delta.epoch s.epochs) ~default:IS.empty in
  if IS.mem d.Delta.seq seen then
    (SM.add d.Delta.sensor { s with duplicates = s.duplicates + 1 } t, Duplicate)
  else
    let s =
      {
        epochs = IM.add d.Delta.epoch (IS.add d.Delta.seq seen) s.epochs;
        merged = Obs.Snapshot.merge s.merged d.Delta.snapshot;
        applied = s.applied + 1;
        duplicates = s.duplicates;
        last_epoch = max s.last_epoch d.Delta.epoch;
        last_seq =
          (if d.Delta.epoch >= s.last_epoch then
             if d.Delta.epoch > s.last_epoch then d.Delta.seq
             else max s.last_seq d.Delta.seq
           else s.last_seq);
      }
    in
    (SM.add d.Delta.sensor s t, Fresh)

let view t =
  SM.fold (fun _ s acc -> Obs.Snapshot.merge acc s.merged) t Obs.Snapshot.empty

let sensor_view t id =
  match SM.find_opt id t with
  | Some s -> s.merged
  | None -> Obs.Snapshot.empty

let sensors t = List.map fst (SM.bindings t)

type stats = {
  epochs : int;
  applied : int;
  duplicates : int;
  last_epoch : int;
  last_seq : int;
}

let stats t id =
  match SM.find_opt id t with
  | None -> None
  | Some (s : sensor_state) ->
      Some
        {
          epochs = IM.cardinal s.epochs;
          applied = s.applied;
          duplicates = s.duplicates;
          last_epoch = s.last_epoch;
          last_seq = s.last_seq;
        }
