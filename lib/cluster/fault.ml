type kind = Drop | Duplicate | Delay | Reorder | Truncate

let kind_to_string = function
  | Drop -> "drop"
  | Duplicate -> "dup"
  | Delay -> "delay"
  | Reorder -> "reorder"
  | Truncate -> "truncate"

let kind_of_string = function
  | "drop" -> Some Drop
  | "dup" -> Some Duplicate
  | "delay" -> Some Delay
  | "reorder" -> Some Reorder
  | "truncate" -> Some Truncate
  | _ -> None

type t = (kind * float) list

let of_string s =
  let parse_token acc token =
    match acc with
    | Error _ as e -> e
    | Ok plan -> (
        match String.index_opt token '=' with
        | None -> Error (Printf.sprintf "fault: expected kind=prob, got %S" token)
        | Some i -> (
            let k = String.sub token 0 i in
            let v = String.sub token (i + 1) (String.length token - i - 1) in
            match (kind_of_string k, float_of_string_opt v) with
            | None, _ -> Error (Printf.sprintf "fault: unknown kind %S" k)
            | _, None -> Error (Printf.sprintf "fault: bad probability %S" v)
            | Some k, Some p ->
                if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
                  Error
                    (Printf.sprintf "fault: probability %s out of [0,1]" v)
                else Ok ((k, p) :: plan)))
  in
  if String.trim s = "" then Ok []
  else
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.fold_left parse_token (Ok [])
    |> Result.map List.rev

let of_string_exn s =
  match of_string s with Ok t -> t | Error m -> invalid_arg m

let to_string t =
  String.concat ","
    (List.map (fun (k, p) -> Printf.sprintf "%s=%g" (kind_to_string k) p) t)

type action = Deliver | Lose | Send_twice | Sleep of float | Corrupt

let next_action rng plan =
  let rec roll = function
    | [] -> Deliver
    | (k, p) :: rest ->
        if Rng.chance rng p then
          match k with
          | Drop -> Lose
          | Duplicate -> Send_twice
          | Delay | Reorder -> Sleep (Rng.float rng 0.05)
          | Truncate -> Corrupt
        else roll rest
  in
  roll plan

(* The pure channel model.  A queue of (item, retried) pairs: fresh
   items roll the plan, anything the channel bounced is re-queued
   flagged [retried] and delivers unconditionally on its second pass —
   the termination argument for plans with probability 1.0 faults. *)
let deliveries rng plan items =
  let rec go out = function
    | [] -> List.rev out
    | (item, true) :: rest -> go (item :: out) rest
    | (item, false) :: rest -> (
        match next_action rng plan with
        | Deliver -> go (item :: out) rest
        | Send_twice -> go (item :: item :: out) rest
        | Lose | Corrupt ->
            (* the attempt never applies; redelivery lands at the back *)
            go out (rest @ [ (item, true) ])
        | Sleep _ -> (
            (* a delayed attempt lands after its successor *)
            match rest with
            | [] -> go (item :: out) rest
            | next :: rest' -> go out (next :: (item, true) :: rest')))
  in
  go [] (List.map (fun i -> (i, false)) items)
