(** Random-scanning worm propagation models.

    Background for the paper's motivating claim (its reference [4],
    Moore et al., "Internet Quarantine"): a worm scanning uniformly at
    random infects susceptibles at rate [beta·i·(1 - i/n)] — logistic
    growth — so any containment that reacts after the knee of the curve
    is too late.  Two models are provided: the deterministic logistic
    solution and a stochastic discrete-time simulation whose per-tick
    infections are sampled from the scan process. *)

type params = {
  population : int;  (** vulnerable hosts, [n] *)
  address_space : float;  (** scanned space size, e.g. 2^32 *)
  scan_rate : float;  (** probes per second per infected host *)
  initial : int;  (** initially infected hosts *)
}

val beta : params -> float
(** Pairwise infection rate: [scan_rate * population / address_space]
    per second, the classic epidemic constant. *)

val logistic : params -> float -> float
(** [logistic p t] is the expected number of infected hosts at time [t]
    seconds under the deterministic model. *)

val time_to_fraction : params -> float -> float
(** [time_to_fraction p f] inverts {!logistic}: seconds until a fraction
    [f] of the population is infected (0 < f < 1). *)

val time_to_count : params -> int -> float
(** [time_to_count p k] is seconds until [k] hosts are infected under
    the deterministic model: [0.] when [k <= initial], and [k] must be
    below [population] (the logistic curve only reaches [n]
    asymptotically).  The cluster latency bench uses this to place a
    detection deadline on the outbreak's knee. *)

type sim = {
  mutable infected : int;
  mutable t : float;
  mutable total_scans : float;
}

val simulate :
  ?dt:float ->
  Rng.t ->
  params ->
  duration:float ->
  on_tick:(sim -> unit) ->
  sim
(** Stochastic simulation with time step [dt] (default 1 s); [on_tick]
    observes the state after each step. *)
