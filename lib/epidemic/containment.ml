type params = {
  epidemic : Model.params;
  monitored_fraction : float;
  threshold : int;
  reaction_time : float;
}

type outcome = {
  final_infected : int;
  peak_active : int;
  quarantined : int;
  first_notice : float option;
  duration : float;
}

(* Sensor exposure is uniform across hosts — every active host sends the
   same expected number of probes into monitored space per tick — so all
   hosts infected at the same tick share one notice time
   (t0 + threshold / (scan_rate * monitored_fraction)) and one quarantine
   deadline.  Tracking cohorts instead of hosts makes the simulation
   O(ticks + cohorts) while computing the same process. *)
let simulate ?(dt = 1.0) rng (p : params) ~duration =
  if p.monitored_fraction < 0.0 || p.monitored_fraction > 1.0 then
    invalid_arg "Containment: monitored_fraction in [0,1]";
  if p.threshold < 1 then invalid_arg "Containment: threshold >= 1";
  let ep = p.epidemic in
  let notice_delay =
    if p.monitored_fraction <= 0.0 || ep.Model.scan_rate <= 0.0 then infinity
    else float_of_int p.threshold /. (ep.Model.scan_rate *. p.monitored_fraction)
  in
  (* cohorts with pending quarantine, oldest first: (deadline, size) *)
  let pending = Queue.create () in
  let enqueue t0 n =
    if Float.is_finite notice_delay && n > 0 then
      Queue.add (t0 +. notice_delay +. p.reaction_time, n) pending
  in
  enqueue 0.0 ep.Model.initial;
  let active = ref ep.Model.initial in
  let infected = ref ep.Model.initial in
  let quarantined = ref 0 in
  let peak_active = ref ep.Model.initial in
  let first_notice = ref None in
  let t = ref 0.0 in
  while !t < duration && !infected < ep.Model.population && (!active > 0 || not (Queue.is_empty pending)) do
    (* quarantine cohorts whose deadline has passed *)
    let continue = ref true in
    while !continue && not (Queue.is_empty pending) do
      let deadline, n = Queue.peek pending in
      if !t >= deadline then begin
        ignore (Queue.pop pending);
        quarantined := !quarantined + n;
        active := !active - n
      end
      else continue := false
    done;
    (if !first_notice = None && Float.is_finite notice_delay then
       let earliest_notice = notice_delay in
       if !t >= earliest_notice then first_notice := Some !t);
    if !active > !peak_active then peak_active := !active;
    (* new infections from the active population *)
    let probes = float_of_int !active *. ep.Model.scan_rate *. dt in
    let susceptible = ep.Model.population - !infected in
    let expected_new = probes *. float_of_int susceptible /. ep.Model.address_space in
    let new_infections =
      if expected_new <= 0.0 then 0
      else begin
        let trials = 64 in
        let prob = Float.min 1.0 (expected_new /. float_of_int trials) in
        let hits = ref 0 in
        for _ = 1 to trials do
          if Rng.chance rng prob then incr hits
        done;
        min susceptible !hits
      end
    in
    infected := !infected + new_infections;
    active := !active + new_infections;
    enqueue !t new_infections;
    t := !t +. dt
  done;
  {
    final_infected = !infected;
    peak_active = !peak_active;
    quarantined = !quarantined;
    first_notice = !first_notice;
    duration = !t;
  }

let infected_fraction o (ep : Model.params) =
  float_of_int o.final_infected /. float_of_int ep.Model.population

let sweep_reaction_times rng p ~duration times =
  List.map
    (fun r ->
      let rng = Rng.copy rng in
      (r, simulate rng { p with reaction_time = r } ~duration))
    times
