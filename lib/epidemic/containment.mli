(** NIDS-based worm containment.

    Models the paper's deployment story end to end: a fraction of the
    address space is monitored by NIDS sensors running the
    unused-address scan classifier.  An infected host is {e noticed}
    once [threshold] of its probes land in monitored space, and
    {e quarantined} (stops scanning and infecting) [reaction_time]
    seconds later — the knob whose criticality the paper's reference [4]
    establishes ("well under sixty seconds").

    The simulation tracks per-host probe exposure statistically: at each
    tick every active infected host accrues monitored-space hits, and
    hosts whose notice time has passed by the reaction delay become
    quarantined. *)

type params = {
  epidemic : Model.params;
  monitored_fraction : float;  (** share of scans that hit sensors *)
  threshold : int;  (** probes into monitored space before notice *)
  reaction_time : float;  (** seconds from notice to quarantine *)
}

type outcome = {
  final_infected : int;
  peak_active : int;  (** most simultaneously active (unquarantined) *)
  quarantined : int;
  first_notice : float option;  (** when the first host was noticed *)
  duration : float;
}

val simulate : ?dt:float -> Rng.t -> params -> duration:float -> outcome

val infected_fraction : outcome -> Model.params -> float

val sweep_reaction_times :
  Rng.t -> params -> duration:float -> float list -> (float * outcome) list
(** Re-run the scenario (same seed per run) for each reaction time. *)
