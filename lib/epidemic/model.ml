type params = {
  population : int;
  address_space : float;
  scan_rate : float;
  initial : int;
}

let check p =
  if p.population <= 0 then invalid_arg "Epidemic: population must be positive";
  if p.initial < 1 || p.initial > p.population then
    invalid_arg "Epidemic: initial infected out of range";
  if p.address_space <= 0.0 || p.scan_rate < 0.0 then
    invalid_arg "Epidemic: bad address space or scan rate"

let beta p = p.scan_rate *. float_of_int p.population /. p.address_space

(* i(t) = n / (1 + (n/i0 - 1) e^{-beta t}) *)
let logistic p t =
  check p;
  let n = float_of_int p.population in
  let i0 = float_of_int p.initial in
  n /. (1.0 +. (((n /. i0) -. 1.0) *. exp (-.beta p *. t)))

let time_to_fraction p f =
  check p;
  if f <= 0.0 || f >= 1.0 then invalid_arg "Epidemic.time_to_fraction: f in (0,1)";
  let n = float_of_int p.population in
  let i0 = float_of_int p.initial in
  let target = f *. n in
  (* solve target = n / (1 + c e^{-beta t}) with c = n/i0 - 1 *)
  let c = (n /. i0) -. 1.0 in
  log (c /. ((n /. target) -. 1.0)) /. beta p

let time_to_count p k =
  check p;
  if k >= p.population then
    invalid_arg "Epidemic.time_to_count: k must be below the population";
  if k <= p.initial then 0.0
  else time_to_fraction p (float_of_int k /. float_of_int p.population)

type sim = { mutable infected : int; mutable t : float; mutable total_scans : float }

(* One tick: each of [i] infected hosts sends [scan_rate*dt] probes; each
   probe hits a susceptible with probability s/omega.  The number of new
   infections is binomial; we sample it with a normal approximation for
   large counts and direct Bernoulli summation for small ones. *)
let sample_binomial rng n p =
  if n <= 0 || p <= 0.0 then 0
  else if p >= 1.0 then n
  else if n < 64 then begin
    let hits = ref 0 in
    for _ = 1 to n do
      if Rng.chance rng p then incr hits
    done;
    !hits
  end
  else begin
    let mean = float_of_int n *. p in
    let sd = sqrt (mean *. (1.0 -. p)) in
    (* Box–Muller *)
    let u1 = Float.max 1e-12 (Rng.float rng 1.0) in
    let u2 = Rng.float rng 1.0 in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    let v = int_of_float (Float.round (mean +. (sd *. z))) in
    if v < 0 then 0 else if v > n then n else v
  end

let simulate ?(dt = 1.0) rng p ~duration ~on_tick =
  check p;
  let s = { infected = p.initial; t = 0.0; total_scans = 0.0 } in
  while s.t < duration && s.infected < p.population do
    let probes = float_of_int s.infected *. p.scan_rate *. dt in
    s.total_scans <- s.total_scans +. probes;
    let susceptible = p.population - s.infected in
    let hit_prob = float_of_int susceptible /. p.address_space in
    (* cap the per-tick probe count to keep sampling cheap but unbiased in
       expectation: batch probes into at most 10_000 trials *)
    let trials = int_of_float (Float.min probes 10_000.0) in
    let scale = if trials = 0 then 0.0 else probes /. float_of_int trials in
    let hits = sample_binomial rng trials (Float.min 1.0 (hit_prob *. scale)) in
    s.infected <- min p.population (s.infected + hits);
    s.t <- s.t +. dt;
    on_tick s
  done;
  s
