(** Per-template well-formedness: the compiler front-end for the
    template library.

    Codes (stable):
    - [SL001] {e error} — a guard references a constant variable no step
      binds: {!Template.check_guard} fails on unbound variables, so the
      template can never match.
    - [SL002] {e error} — a [Same] constraint precedes any [Bind] of its
      variable: that step can never match.
    - [SL003] {e warn} — a register variable is read ([Store] source,
      [Reg_transform] operand) before any [Load] defines it: the step
      degenerates to "any register", weakening the template.
    - [SL004] {e warn} — two steps constrain the same variable to
      conflicting widths (8-bit vs 32-bit).
    - [SL005] {e warn} — steps after an exit syscall
      ([int 0x80] with [EAX = 1]) can never execute.
    - [SL006] {e error} — the guard conjunction is unsatisfiable over
      {!Dom} (e.g. [Equals] vs [Nonzero] on the same variable,
      an empty [One_of], [Differ] of a variable with itself).
    - [SL007] {e info} — a guard is implied by the guards before it and
      can never change a verdict. *)

val check : ?subject:string -> Template.t -> Finding.t list
(** Findings for one template, in step order.  [subject] defaults to
    ["template:<name>"]. *)

val well_formed : Template.t -> bool
(** No [Error]-severity finding — the precondition {!Subsume} requires
    before a template participates in subsumption reasoning. *)

val lint : Template.t list -> Finding.t list
(** {!check} over a library.  Same-name variants get distinct subjects
    (["template:<name>#2"]) so findings stay attributable. *)

val subjects : Template.t list -> (string * Template.t) list
(** The subject naming used by {!lint}, exposed for {!Subsume}. *)
