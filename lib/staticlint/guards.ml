type doms = (Template.cvar * Dom.t) list

let dom doms v = Option.value (List.assoc_opt v doms) ~default:Dom.any

let constrain doms v d =
  let d = Dom.meet (dom doms v) d in
  if List.mem_assoc v doms then
    List.map (fun (v', d') -> if v' = v then (v', d) else (v', d')) doms
  else doms @ [ (v, d) ]

let infer gs =
  List.fold_left
    (fun doms g ->
      match g with
      | Template.Nonzero v -> constrain doms v (Dom.exclude 0l)
      | Template.Equals (v, c) -> constrain doms v (Dom.singleton c)
      | Template.One_of (v, cs) -> constrain doms v (Dom.of_list cs)
      | Template.Differ _ -> doms)
    [] gs

let differ_unsat doms = function
  | Template.Differ (a, b) ->
      a = b
      || (match (Dom.is_singleton (dom doms a), Dom.is_singleton (dom doms b)) with
         | Some x, Some y -> Int32.equal x y
         | _, _ -> false)
  | Template.Nonzero _ | Template.Equals _ | Template.One_of _ -> false

let implied doms others g =
  match g with
  | Template.Nonzero v -> Dom.subset (dom doms v) (Dom.exclude 0l)
  | Template.Equals (v, c) -> Dom.subset (dom doms v) (Dom.singleton c)
  | Template.One_of (v, cs) -> Dom.subset (dom doms v) (Dom.of_list cs)
  | Template.Differ (a, b) ->
      a <> b
      && (Dom.disjoint (dom doms a) (dom doms b)
         || List.exists
              (function
                | Template.Differ (x, y) -> (x = a && y = b) || (x = b && y = a)
                | Template.Nonzero _ | Template.Equals _ | Template.One_of _ ->
                    false)
              others)
