type format = Text | Json | Sarif

let format_of_string = function
  | "text" -> Ok Text
  | "json" -> Ok Json
  | "sarif" -> Ok Sarif
  | s ->
      Error (Printf.sprintf "unknown lint format %S (expected text, json or sarif)" s)

let templates ts = Template_lint.lint ts @ Subsume.lint ts @ Absint_lint.lint ts
let rules_text = Rule_lint.lint_text

(* ------------------------------------------------------------------ *)
(* The code catalog: every stable finding code any pass can emit, with
   its owning pass.  [sanids lint --selftest] checks the emitted codes
   against this list (SL000), and the @lint alias greps DESIGN.md for
   each entry — the catalog is what keeps codes unique and documented. *)

let catalog =
  [
    ("SL001", "template"); ("SL002", "template"); ("SL003", "template");
    ("SL004", "template"); ("SL005", "template"); ("SL006", "template");
    ("SL007", "template"); ("SL008", "subsume"); ("SL009", "subsume");
    ("SL010", "subsume"); ("SL011", "subsume");
    ("SL100", "rule"); ("SL101", "rule"); ("SL102", "rule");
    ("SL103", "rule"); ("SL104", "rule"); ("SL105", "rule");
    ("SL201", "config"); ("SL202", "config"); ("SL203", "config");
    ("SL204", "config"); ("SL205", "config"); ("SL206", "config");
    ("SL207", "config"); ("SL208", "config"); ("SL209", "config");
    ("SL301", "trace"); ("SL302", "trace"); ("SL303", "trace");
    ("SL401", "absint"); ("SL402", "absint"); ("SL403", "absint");
    ("SL404", "trace");
  ]

(* SL000: the meta-check behind --selftest — the catalog must be
   duplicate-free and must cover every code the linted findings carry. *)
let selftest_codes findings =
  let out = ref [] in
  let emit msg =
    out :=
      Finding.v ~code:"SL000" ~severity:Finding.Error ~subject:"catalog" msg :: !out
  in
  let rec dups seen = function
    | [] -> ()
    | (c, pass) :: rest ->
        (match List.assoc_opt c seen with
        | Some pass' ->
            emit
              (Printf.sprintf
                 "finding code %s is claimed by both the %s and %s passes — \
                  codes are stable API and must be unique"
                 c pass' pass)
        | None -> ());
        dups ((c, pass) :: seen) rest
  in
  dups [] catalog;
  List.iter
    (fun (f : Finding.t) ->
      if f.Finding.code <> "SL000" && not (List.mem_assoc f.Finding.code catalog)
      then
        emit
          (Printf.sprintf
             "emitted finding code %s is not in the catalog (and so not \
              documented in DESIGN.md)"
             f.Finding.code))
    findings;
  List.rev !out

(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Minimal SARIF 2.1.0: one run, one driver, rule ids from the distinct
   finding codes, one result per finding.  Byte-stable for a given
   finding list. *)
let to_sarif findings =
  let level (f : Finding.t) =
    match f.Finding.severity with
    | Finding.Error -> "error"
    | Finding.Warn -> "warning"
    | Finding.Info -> "note"
  in
  let rule_ids =
    List.sort_uniq compare (List.map (fun (f : Finding.t) -> f.Finding.code) findings)
  in
  let rules =
    String.concat ","
      (List.map (fun c -> Printf.sprintf {|{"id":"%s"}|} (json_escape c)) rule_ids)
  in
  let results =
    String.concat ","
      (List.map
         (fun (f : Finding.t) ->
           let name =
             match f.Finding.loc with
             | Some l -> f.Finding.subject ^ " (" ^ l ^ ")"
             | None -> f.Finding.subject
           in
           Printf.sprintf
             {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[{"logicalLocations":[{"name":"%s"}]}]}|}
             (json_escape f.Finding.code) (level f)
             (json_escape f.Finding.message)
             (json_escape name))
         findings)
  in
  Printf.sprintf
    {|{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"sanids-lint","rules":[%s]}},"results":[%s]}]}|}
    rules results
  ^ "\n"

let render fmt findings =
  match fmt with
  | Sarif -> to_sarif findings
  | Text | Json ->
      let line =
        match fmt with Text -> Finding.to_line | _ -> Finding.to_json
      in
      String.concat "" (List.map (fun f -> line f ^ "\n") findings)

let exit_code ~strict findings =
  if Finding.failed ~strict findings then 65 else 0
