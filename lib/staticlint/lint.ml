type format = Text | Json

let format_of_string = function
  | "text" -> Ok Text
  | "json" -> Ok Json
  | s -> Error (Printf.sprintf "unknown lint format %S (expected text or json)" s)

let templates ts = Template_lint.lint ts @ Subsume.lint ts
let rules_text = Rule_lint.lint_text

let render fmt findings =
  let line =
    match fmt with Text -> Finding.to_line | Json -> Finding.to_json
  in
  String.concat "" (List.map (fun f -> line f ^ "\n") findings)

let exit_code ~strict findings =
  if Finding.failed ~strict findings then 65 else 0
