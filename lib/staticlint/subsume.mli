(** Cross-template subsumption: does one template's match set contain
    another's?

    [subsumes a b] holds when {e every} program region matched by [a] is
    also matched by [b] — [b] is at least as general, so [a] adds no
    detection coverage.  The check is conservative (sound, incomplete):
    it looks for a contiguous block of [a]'s steps that implies [b]'s
    step sequence under a consistent variable correspondence, with
    [b]'s guards entailed by [a]'s and [b]'s data requirements covered
    by [a]'s.  A [false] answer proves nothing.

    Codes (stable):
    - [SL008] {e warn} — two distinct-name templates subsume each other:
      they are equivalent, one is redundant.
    - [SL009] {e info} — a distinct-name template is one-way subsumed by
      a more general one (often a deliberate specific/generic
      hierarchy, hence informational).
    - [SL010] {e warn} — two same-name variants are structurally
      identical: an exact duplicate.
    - [SL011] {e info} — a same-name variant is subsumed by a sibling
      variant (per-name settling means the generic sibling answers
      first anyway).

    Templates with [Error]-severity {!Template_lint} findings are
    excluded: an unsatisfiable template vacuously subsumes everything
    and would drown the report. *)

val subsumes : Template.t -> Template.t -> bool
(** [subsumes a b] — every match of [a] is a match of [b]. *)

val lint : Template.t list -> Finding.t list
(** Pairwise subsumption report over a library, using
    {!Template_lint.subjects} naming. *)
