(* SL4xx: semantic template lints over the lifted-IR abstract
   interpreter.  Each template is realized as one canonical machine-code
   program (fixed register assignment, guard-satisfying constants, a
   data area the pointer variables aim at), and the realization is
   analyzed with {!Absint}.  The lints then read the fixpoint, not the
   template syntax: a step is unreachable because no abstract path
   reaches its realized instruction, a decrypt loop is hollow because
   the whole-program may-write region provably misses the image. *)

module V = Absint.V

type realization = {
  r_code : string;  (* encoded program followed by the data area *)
  r_code_len : int;  (* instruction bytes, before the data area *)
  r_step_offs : int list;  (* per template step, realized start offset *)
}

let data_bytes = 32
let pool = [ Reg.EBX; Reg.EDX; Reg.ESI; Reg.EDI; Reg.EBP ]

exception Unrealizable

let pstep_of = function Template.Once p | Template.Many p -> p

let ptr_vars steps =
  List.fold_left
    (fun acc q ->
      let add v acc = if List.mem v acc then acc else acc @ [ v ] in
      match pstep_of q with
      | Template.Load { ptr; _ }
      | Template.Mem_transform { ptr; _ }
      | Template.Store { ptr; _ }
      | Template.Ptr_advance { ptr } -> add ptr acc
      | Template.Reg_transform _ | Template.Back_edge | Template.Syscall _
      | Template.Stack_const _ | Template.Code_const _ -> acc)
    [] steps

let realize (t : Template.t) =
  try
    let alloc = Hashtbl.create 8 in
    let reg_of v =
      match Hashtbl.find_opt alloc v with
      | Some r -> r
      | None ->
          let n = Hashtbl.length alloc in
          if n >= List.length pool then raise Unrealizable;
          let r = List.nth pool n in
          Hashtbl.add alloc v r;
          r
    in
    (* canonical constants: any value the guard conjunction admits *)
    let doms = Guards.infer t.Template.guards in
    let cval v =
      let d = Guards.dom doms v in
      match Dom.is_singleton d with
      | Some c -> c
      | None -> (
          match
            List.find_opt
              (fun c -> Dom.subset (Dom.singleton c) d)
              [ 0x5Al; 0x11l; 1l; 2l; 3l; 7l; 0x100l ]
          with
          | Some c -> c
          | None -> 0x5Al)
    in
    let pv ?(dflt = 0x11l) = function
      | Template.Exact c -> c
      | Template.Bind v | Template.Same v -> cval v
      | Template.Any -> dflt
    in
    let width_size = function
      | Template.W8 -> Insn.S8bit
      | Template.W32 | Template.Wany -> Insn.S32bit
    in
    let mem p = Insn.Mem (Insn.mem_base (reg_of p)) in
    let transform ops target key size =
      match ops with
      | [] -> raise Unrealizable
      | op :: _ -> (
          match op with
          | Sem.Ra a -> [ Insn.Arith (a, size, target, Insn.Imm key) ]
          | Sem.Rnot -> [ Insn.Not (size, target) ]
          | Sem.Rneg -> [ Insn.Neg (size, target) ]
          | Sem.Rshift s ->
              let n = Int32.to_int key land 31 in
              [ Insn.Shift (s, size, target, if n = 0 then 1 else n) ])
    in
    let insns_of_step = function
      | Template.Load { dst; ptr; width = Template.W8 } ->
          [ Insn.Movzx (reg_of dst, mem ptr) ]
      | Template.Load { dst; ptr; _ } ->
          [ Insn.Mov (Insn.S32bit, Insn.Reg (reg_of dst), mem ptr) ]
      | Template.Mem_transform { ops; ptr; key; width } ->
          transform ops (mem ptr) (pv key) (width_size width)
      | Template.Reg_transform { ops; reg } ->
          transform ops (Insn.Reg (reg_of reg)) 0x5Al Insn.S32bit
      | Template.Store { src; ptr; width = Template.W8 } -> (
          match Reg.low8 (reg_of src) with
          | Some r8 -> [ Insn.Mov (Insn.S8bit, mem ptr, Insn.Reg8 r8) ]
          | None -> [ Insn.Mov (Insn.S32bit, mem ptr, Insn.Reg (reg_of src)) ])
      | Template.Store { src; ptr; _ } ->
          [ Insn.Mov (Insn.S32bit, mem ptr, Insn.Reg (reg_of src)) ]
      | Template.Ptr_advance { ptr } -> [ Insn.Inc (Insn.S32bit, Insn.Reg (reg_of ptr)) ]
      | Template.Back_edge -> [ Insn.Loop 0 ] (* displacement patched below *)
      | Template.Syscall { vector; al; bl } ->
          [
            (* default the unconstrained vectors to execve so the
               realization does not spuriously look like an exit *)
            Insn.Mov (Insn.S32bit, Insn.Reg Reg.EAX, Insn.Imm (pv ~dflt:11l al));
            Insn.Mov (Insn.S32bit, Insn.Reg Reg.EBX, Insn.Imm (pv ~dflt:2l bl));
            Insn.Int vector;
          ]
      | Template.Stack_const p -> [ Insn.Push_imm (pv p) ]
      | Template.Code_const c -> [ Insn.Push_imm c ]
    in
    let build data_addr =
      let prologue =
        Insn.Mov (Insn.S32bit, Insn.Reg Reg.ECX, Insn.Imm 4l)
        :: List.map
             (fun p -> Insn.Mov (Insn.S32bit, Insn.Reg (reg_of p), Insn.Imm data_addr))
             (ptr_vars t.Template.steps)
      in
      (prologue, List.map (fun q -> insns_of_step (pstep_of q)) t.Template.steps)
    in
    let unit_len = List.fold_left (fun n i -> n + Encode.length i) 0 in
    (* first pass with a placeholder data address fixes the layout: every
       instruction whose value changes between passes (the pointer
       initializers) has a value-independent encoding length *)
    let prologue0, units0 = build 0l in
    let prologue_len = unit_len prologue0 in
    let offs =
      List.rev
        (fst
           (List.fold_left
              (fun (acc, o) u -> (o :: acc, o + unit_len u)) ([], prologue_len) units0))
    in
    let code_len = List.fold_left (fun n u -> n + unit_len u) prologue_len units0 + 1 in
    let data_addr = Int32.add Emulator.code_base (Int32.of_int code_len) in
    let prologue, units = build data_addr in
    let units =
      List.map2
        (fun off u ->
          match u with
          | [ Insn.Loop _ ] -> [ Insn.Loop (prologue_len - (off + 2)) ]
          | u -> u)
        offs units
    in
    let code = Encode.program (prologue @ List.concat units @ [ Insn.Ret ]) in
    Some
      {
        r_code = code ^ String.make data_bytes '\x41';
        r_code_len = String.length code;
        r_step_offs = offs;
      }
  with Unrealizable | Invalid_argument _ | Failure _ -> None

(* ------------------------------------------------------------------ *)

let exit_nr = 1l

let check (t : Template.t) =
  match realize t with
  | None -> []
  | Some r ->
      let subject = "template:" ^ t.Template.name in
      let out = ref [] in
      let emit ?loc code severity message =
        out := Finding.v ~code ~severity ~subject ?loc message :: !out
      in
      let cfg = Cfg.build r.r_code in
      let res = Absint.analyze ~entry:(Absint.entry_state ()) cfg in
      (* offsets proven live: walk each reachable block under its
         fixpoint in-state; an [int 0x80] whose abstract EAX is exactly
         the exit syscall kills the rest of its block *)
      let live = Hashtbl.create 64 in
      List.iter
        (fun bstart ->
          match (Cfg.block_at cfg bstart, Hashtbl.find_opt res.Absint.in_states bstart) with
          | Some b, Some st0 ->
              ignore
                (List.fold_left
                   (fun (st, alive) (d : Decode.decoded) ->
                     if alive then Hashtbl.replace live d.Decode.off ();
                     let exits =
                       match d.Decode.insn with
                       | Insn.Int 0x80 -> (
                           match V.is_const (Absint.get st Reg.EAX) with
                           | Some v -> Int32.logand v 0xFFl = exit_nr
                           | None -> false)
                       | _ -> false
                     in
                     (Absint.step_insn st d.Decode.insn, alive && not exits))
                   (st0, true) b.Cfg.insns)
          | _, _ -> ())
        res.Absint.reachable;
      List.iteri
        (fun i off ->
          if not (Hashtbl.mem live off) then
            emit
              ~loc:(Printf.sprintf "step %d" (i + 1))
              "SL401" Finding.Warn
              "step is unreachable under the abstract semantics of the \
               template's canonical realization — no abstract path past the \
               preceding steps reaches it")
        r.r_step_offs;
      (* SL403: a template that claims a decrypt loop — a back edge
         around steps that read payload memory — whose realization
         provably never writes a byte of its own image: it can never
         evidence the self-decryption it is supposed to match.  A back
         edge alone (slammer's self-send loop) makes no such claim. *)
      let has_back_edge =
        List.exists (fun q -> pstep_of q = Template.Back_edge) t.Template.steps
      in
      let reads_memory =
        List.exists
          (fun q ->
            match pstep_of q with
            | Template.Load _ | Template.Mem_transform _ -> true
            | _ -> false)
          t.Template.steps
      in
      if has_back_edge && reads_memory then begin
        let lo = Int64.of_int32 (Int32.logand Emulator.code_base 0xFFFFFFFFl) in
        let hi = Int64.add lo (Int64.of_int (String.length r.r_code - 1)) in
        if not (Absint.Region.may_touch res.Absint.out.Absint.written ~lo ~hi) then
          emit "SL403" Finding.Warn
            "decrypt loop can never write a byte it later executes: the \
             realization's abstract may-write region misses the whole image \
             (the loop body stores nothing, or stores only outside the \
             region)"
      end;
      List.rev !out

(* ------------------------------------------------------------------ *)
(* SL402: guards versus binding-site dataflow.  A constant variable
   bound at an 8-bit site (a syscall's AL/BL byte, a W8 memory
   transform key) can only ever hold [0, 255]; meeting that fact into
   the guard domains exposes guards that the width makes impossible, and
   guards the width makes vacuous — neither visible to the guard-only
   passes (SL006/SL007). *)

let byte_dom = Dom.of_list (List.init 256 Int32.of_int)

let width_doms (t : Template.t) =
  let bind acc = function
    | Template.Bind v | Template.Same v -> Guards.constrain acc v byte_dom
    | Template.Exact _ | Template.Any -> acc
  in
  List.fold_left
    (fun acc q ->
      match pstep_of q with
      | Template.Syscall { al; bl; _ } -> bind (bind acc al) bl
      | Template.Mem_transform { key; width = Template.W8; _ } -> bind acc key
      | _ -> acc)
    [] t.Template.steps

let check_guards (t : Template.t) =
  let subject = "template:" ^ t.Template.name in
  let out = ref [] in
  let emit ?loc code severity message =
    out := Finding.v ~code ~severity ~subject ?loc message :: !out
  in
  let widths = width_doms t in
  if widths <> [] then begin
    let gdoms = Guards.infer t.Template.guards in
    let meet_widths doms =
      List.fold_left (fun acc (v, d) -> Guards.constrain acc v d) doms widths
    in
    let both = meet_widths gdoms in
    (* impossible: the width fact empties a domain the guards left open *)
    List.iter
      (fun (v, _) ->
        if
          Dom.is_empty (Guards.dom both v)
          && not (Dom.is_empty (Guards.dom gdoms v))
        then
          emit "SL402" Finding.Error
            (Printf.sprintf
               "guards on %S can never hold: the variable is bound at an \
                8-bit site, so only values in [0, 255] ever reach the guard"
               v))
      both;
    (* vacuous: the width fact alone decides a guard the other guards
       could not *)
    let rec scan before j = function
      | [] -> ()
      | g :: rest ->
          let others = List.rev before @ rest in
          let without = Guards.infer others in
          if
            (not (Dom.is_empty (Guards.dom both (match g with
               | Template.Nonzero v | Template.Equals (v, _) | Template.One_of (v, _) -> v
               | Template.Differ (a, _) -> a))))
            && Guards.implied (meet_widths without) others g
            && not (Guards.implied without others g)
          then
            emit
              ~loc:(Printf.sprintf "guard %d" j)
              "SL402" Finding.Info
              "guard is implied by the binding site's 8-bit width and can \
               never change a verdict";
          scan (g :: before) (j + 1) rest
    in
    scan [] 1 t.Template.guards
  end;
  List.rev !out

let lint ts = List.concat_map (fun t -> check t @ check_guards t) ts
