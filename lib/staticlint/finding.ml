type severity = Error | Warn | Info

type t = {
  code : string;
  severity : severity;
  subject : string;
  loc : string option;
  message : string;
}

let v ~code ~severity ~subject ?loc message =
  { code; severity; subject; loc; message }

let severity_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"

let counts fs =
  List.fold_left
    (fun (e, w, i) f ->
      match f.severity with
      | Error -> (e + 1, w, i)
      | Warn -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) fs

let summary fs =
  let e, w, i = counts fs in
  Printf.sprintf "%d errors, %d warnings, %d infos" e w i

let failed ~strict fs =
  List.exists
    (fun f -> f.severity = Error || (strict && f.severity = Warn))
    fs

let to_line f =
  Printf.sprintf "%s %-5s %s%s: %s" f.code
    (severity_to_string f.severity)
    f.subject
    (match f.loc with Some l -> " (" ^ l ^ ")" | None -> "")
    f.message

(* Minimal JSON string escaping: quotes, backslashes, control bytes. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json f =
  Printf.sprintf "{\"code\":%s,\"severity\":%s,\"subject\":%s%s,\"message\":%s}"
    (json_string f.code)
    (json_string (severity_to_string f.severity))
    (json_string f.subject)
    (match f.loc with
    | Some l -> Printf.sprintf ",\"loc\":%s" (json_string l)
    | None -> "")
    (json_string f.message)

let pp ppf f = Format.pp_print_string ppf (to_line f)
