(** Value abstraction for guard satisfiability.

    Template guards constrain {e constant variables} with point
    predicates only — [Equals], [One_of], [Nonzero], [Differ] — so the
    classic interval + congruence reduced product (the {!Constprop}
    family of domains) collapses, for this guard language, to its exact
    finite kernel: a constraint set is always either a {e finite} set of
    admissible values or the complement of one.  We represent that
    kernel directly; [meet] and [subset] are then exact, which makes the
    satisfiability ([SL006]) and vacuity ([SL007]) verdicts precise
    rather than heuristic — intervals with holes and congruences with a
    modulus would add representable states no guard can ever express. *)

type t
(** An admissible-value set for one constant variable. *)

val any : t
(** No constraint (top). *)

val none : t
(** Unsatisfiable (bottom). *)

val singleton : int32 -> t
val of_list : int32 list -> t
(** Exactly these values; the empty list is {!none}. *)

val exclude : int32 -> t
(** Every value but this one ([Nonzero] is [exclude 0l]). *)

val meet : t -> t -> t
(** Exact conjunction. *)

val is_empty : t -> bool
(** Bottom: no value satisfies the constraints. *)

val is_singleton : t -> int32 option
(** The single admissible value, if the set is exactly one value. *)

val subset : t -> t -> bool
(** [subset a b]: every value admitted by [a] is admitted by [b] —
    the implication test behind guard vacuity and subsumption. *)

val disjoint : t -> t -> bool
(** No value admitted by both.  Exact in every representation pair:
    finite/finite is set disjointness, finite/co-finite holds exactly
    when the finite side is contained in the exclusions, and
    co-finite/co-finite holds exactly when the exclusion sets cover the
    whole 32-bit universe (so top is never disjoint from anything but
    bottom). *)

val pp : Format.formatter -> t -> unit
