(** Junk diagnostics for an extracted code region, via {!Defuse}.

    Codes (stable):
    - [SL301] {e warn} — the region yields no decodable instructions
      from its entry offset.
    - [SL302] {e info} — junk density: how many trace instructions are
      dead writes ({!Defuse.dead_fraction}).
    - [SL303] {e warn} — dead-write fraction at or above the threshold
      (0.25): the region looks heavily padded by a polymorphic junk
      engine.
    - [SL404] {e info} — self-modification reachability: the abstract
      interpretation of the region's whole CFG ({!Sanids_ir.Absint})
      shows a reachable store that may overwrite the region's own bytes
      — the static disassembly should not be trusted without dynamic
      confirmation. *)

val junk_threshold : float
(** Dead-write fraction at which [SL303] fires (0.25). *)

val lint : subject:string -> string -> Finding.t list
(** Lint a raw code region (trace from entry offset 0). *)
