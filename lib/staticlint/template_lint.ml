let pstep_of = function Template.Once p | Template.Many p -> p

(* pvals of a step, in the order the matcher evaluates them (a [Bind]
   earlier in the same step is visible to a [Same] later in it) *)
let pvals = function
  | Template.Mem_transform { key; _ } -> [ key ]
  | Template.Syscall { al; bl; _ } -> [ al; bl ]
  | Template.Stack_const v -> [ v ]
  | Template.Load _ | Template.Reg_transform _ | Template.Store _
  | Template.Ptr_advance _ | Template.Back_edge | Template.Code_const _ ->
      []

let bound_cvars steps =
  List.concat_map
    (fun q ->
      List.filter_map
        (function Template.Bind c -> Some c | _ -> None)
        (pvals (pstep_of q)))
    steps

let guard_vars = function
  | Template.Nonzero v | Template.Equals (v, _) | Template.One_of (v, _) ->
      [ v ]
  | Template.Differ (a, b) -> [ a; b ]

(* The one step shape after which nothing can execute: the Linux exit
   syscall, [int 0x80] with the low byte of EAX pinned to 1. *)
let terminal = function
  | Template.Syscall { vector = 0x80; al = Template.Exact 1l; _ } -> true
  | _ -> false

let width_name = function
  | Template.W8 -> "8-bit"
  | Template.W32 -> "32-bit"
  | Template.Wany -> "any-width"

let check ?subject (t : Template.t) =
  let subject =
    match subject with Some s -> s | None -> "template:" ^ t.Template.name
  in
  let out = ref [] in
  let emit ?loc code severity message =
    out := Finding.v ~code ~severity ~subject ?loc message :: !out
  in
  let step_loc i = Printf.sprintf "step %d" i in
  let steps = List.mapi (fun i q -> (i + 1, pstep_of q)) t.Template.steps in

  (* --- constant variables: Same before Bind (SL002) ---------------- *)
  let _ =
    List.fold_left
      (fun bound (i, p) ->
        List.fold_left
          (fun bound pv ->
            match pv with
            | Template.Bind c -> c :: bound
            | Template.Same c ->
                if not (List.mem c bound) then
                  emit ~loc:(step_loc i) "SL002" Finding.Error
                    (Printf.sprintf
                       "constant variable %S is matched with =%s before any \
                        step binds it with ?%s — this step can never match"
                       c c c);
                bound
            | Template.Exact _ | Template.Any -> bound)
          bound (pvals p))
      [] steps
  in

  (* --- register variables read before a defining Load (SL003) ------ *)
  let _ =
    List.fold_left
      (fun defined (i, p) ->
        let read what v defined =
          if List.mem v defined then defined
          else begin
            emit ~loc:(step_loc i) "SL003" Finding.Warn
              (Printf.sprintf
                 "register variable %S is %s before any load binds it — the \
                  step matches any register"
                 v what);
            v :: defined
          end
        in
        match p with
        | Template.Load { dst; _ } -> dst :: defined
        | Template.Reg_transform { reg; _ } -> read "transformed" reg defined
        | Template.Store { src; _ } -> read "stored" src defined
        | Template.Mem_transform _ | Template.Ptr_advance _
        | Template.Back_edge | Template.Syscall _ | Template.Stack_const _
        | Template.Code_const _ ->
            defined)
      [] steps
  in

  (* --- width consistency across steps sharing a variable (SL004) --- *)
  let widths : (string * string, Template.width_req * int) Hashtbl.t =
    Hashtbl.create 8
  in
  let constrain_width i role v (w : Template.width_req) =
    match w with
    | Template.Wany -> ()
    | _ -> (
        match Hashtbl.find_opt widths (v, role) with
        | None -> Hashtbl.add widths (v, role) (w, i)
        | Some (w', i') ->
            if w' <> w then begin
              emit ~loc:(step_loc i) "SL004" Finding.Warn
                (Printf.sprintf
                   "width conflict on %s %S: %s here vs %s at step %d" role v
                   (width_name w) (width_name w') i');
              Hashtbl.replace widths (v, role) (w, i)
            end)
  in
  List.iter
    (fun (i, p) ->
      match p with
      | Template.Load { dst; ptr; width } ->
          constrain_width i "value" dst width;
          constrain_width i "pointee of" ptr width
      | Template.Store { src; ptr; width } ->
          constrain_width i "value" src width;
          constrain_width i "pointee of" ptr width
      | Template.Mem_transform { ptr; width; _ } ->
          constrain_width i "pointee of" ptr width
      | Template.Reg_transform _ | Template.Ptr_advance _ | Template.Back_edge
      | Template.Syscall _ | Template.Stack_const _ | Template.Code_const _ ->
          ())
    steps;

  (* --- unreachable steps after a terminal syscall (SL005) ---------- *)
  (match
     List.find_opt (fun (i, p) -> terminal p && i < List.length steps) steps
   with
  | Some (i, _) ->
      emit
        ~loc:(step_loc (i + 1))
        "SL005" Finding.Warn
        (Printf.sprintf
           "unreachable: the exit syscall at step %d never returns, so the \
            remaining %d step(s) can never execute"
           i
           (List.length steps - i))
  | None -> ());

  (* --- guards: unbound variables (SL001) --------------------------- *)
  let bound = bound_cvars t.Template.steps in
  let unbound_guard = ref false in
  List.iteri
    (fun j g ->
      List.iter
        (fun v ->
          if not (List.mem v bound) then begin
            unbound_guard := true;
            emit
              ~loc:(Printf.sprintf "guard %d" (j + 1))
              "SL001" Finding.Error
              (Printf.sprintf
                 "guard references constant variable %S, which no step binds \
                  — the guard always fails, so the template can never match"
                 v)
          end)
        (guard_vars g))
    t.Template.guards;

  (* --- guard satisfiability over the abstract domain (SL006) ------- *)
  let doms = Guards.infer t.Template.guards in
  let unsat = ref false in
  List.iter
    (fun (v, d) ->
      if Dom.is_empty d then begin
        unsat := true;
        emit "SL006" Finding.Error
          (Printf.sprintf
             "guards are unsatisfiable: no value of %S can satisfy their \
              conjunction — the template can never match"
             v)
      end)
    doms;
  List.iteri
    (fun j g ->
      if Guards.differ_unsat doms g then begin
        unsat := true;
        emit
          ~loc:(Printf.sprintf "guard %d" (j + 1))
          "SL006" Finding.Error
          (match g with
          | Template.Differ (a, b) when a = b ->
              Printf.sprintf
                "Differ(%s,%s) compares a variable with itself and can never \
                 hold"
                a b
          | Template.Differ (a, b) ->
              Printf.sprintf
                "guards force %S and %S to one equal value, but Differ \
                 requires them to differ"
                a b
          | _ -> "unsatisfiable guard")
      end)
    t.Template.guards;

  (* --- guard vacuity: implied by the guards before it (SL007) ------ *)
  if not (!unsat || !unbound_guard) then begin
    let rec scan before j = function
      | [] -> ()
      | g :: rest ->
          if Guards.implied (Guards.infer (List.rev before)) (List.rev before) g
          then
            emit
              ~loc:(Printf.sprintf "guard %d" j)
              "SL007" Finding.Info
              "guard is implied by the guards before it and can never change \
               a verdict";
          scan (g :: before) (j + 1) rest
    in
    scan [] 1 t.Template.guards
  end;
  List.rev !out

let well_formed t =
  not (List.exists (fun f -> f.Finding.severity = Finding.Error) (check t))

let subjects ts =
  let family name =
    List.length (List.filter (fun t -> t.Template.name = name) ts)
  in
  let seen = Hashtbl.create 8 in
  List.map
    (fun (t : Template.t) ->
      let n = (Hashtbl.find_opt seen t.name |> Option.value ~default:0) + 1 in
      Hashtbl.replace seen t.name n;
      let subject =
        if family t.name > 1 then Printf.sprintf "template:%s#%d" t.name n
        else "template:" ^ t.name
      in
      (subject, t))
    ts

let lint ts =
  List.concat_map (fun (subject, t) -> check ~subject t) (subjects ts)
