(** Driver for the detector-artifact linter: compose the per-artifact
    checks and render their findings.

    The [sanids lint] subcommand and the [@lint] build alias are thin
    wrappers over this module. *)

type format = Text | Json | Sarif

val format_of_string : string -> (format, string) result
(** ["text"], ["json"] or ["sarif"]. *)

val templates : Template.t list -> Finding.t list
(** {!Template_lint.lint}, {!Subsume.lint}, then {!Absint_lint.lint}
    (the SL4xx semantic pass over each template's canonical
    realization). *)

val rules_text : string -> Finding.t list
(** {!Rule_lint.lint_text}. *)

val catalog : (string * string) list
(** Every stable finding code with its owning pass — the registry
    behind [SL000] and the DESIGN.md documentation check in the
    [@lint] alias.  Codes must be unique across passes. *)

val selftest_codes : Finding.t list -> Finding.t list
(** The [SL000] meta-check: an {e error} finding for each duplicate
    catalog code and for each emitted code missing from {!catalog} —
    appended by [sanids lint --selftest] so an undocumented or
    colliding code fails the selftest run. *)

val render : format -> Finding.t list -> string
(** [Text]/[Json]: one line per finding ({!Finding.to_line} or
    {!Finding.to_json}), each newline-terminated; [""] for no findings.
    [Sarif]: one minimal SARIF 2.1.0 document (single line) with a rule
    entry per distinct code and a result per finding.  JSON and SARIF
    output are byte-stable for a given finding list. *)

val exit_code : strict:bool -> Finding.t list -> int
(** [0] when the run passes, [65] ([EX_DATAERR]) when it fails per
    {!Finding.failed}. *)
