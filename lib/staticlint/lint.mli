(** Driver for the detector-artifact linter: compose the per-artifact
    checks and render their findings.

    The [sanids lint] subcommand and the [@lint] build alias are thin
    wrappers over this module. *)

type format = Text | Json

val format_of_string : string -> (format, string) result
(** ["text"] or ["json"]. *)

val templates : Template.t list -> Finding.t list
(** {!Template_lint.lint} followed by {!Subsume.lint}. *)

val rules_text : string -> Finding.t list
(** {!Rule_lint.lint_text}. *)

val render : format -> Finding.t list -> string
(** One line per finding ({!Finding.to_line} or {!Finding.to_json}),
    each newline-terminated; [""] for no findings.  JSON output is
    byte-stable for a given finding list. *)

val exit_code : strict:bool -> Finding.t list -> int
(** [0] when the run passes, [65] ([EX_DATAERR]) when it fails per
    {!Finding.failed}. *)
