(** Abstract evaluation of guard conjunctions over {!Dom}.

    Shared by {!Template_lint} (satisfiability / vacuity) and
    {!Subsume} (guard implication between templates). *)

type doms = (Template.cvar * Dom.t) list
(** Per-variable admissible sets, in first-mention order. *)

val infer : Template.guard list -> doms
(** Meet of every unary guard's constraint, per variable.  [Differ] is
    relational and contributes nothing here; see {!differ_unsat}. *)

val dom : doms -> Template.cvar -> Dom.t
(** A variable's admissible set ({!Dom.any} when unconstrained). *)

val constrain : doms -> Template.cvar -> Dom.t -> doms
(** Meet one more constraint into a variable's set — how callers fold
    non-guard facts (e.g. binding-site widths) into an inferred map. *)

val differ_unsat : doms -> Template.guard -> bool
(** A [Differ] guard that can never hold under [doms]: same variable on
    both sides, or both sides forced to the same single value. *)

val implied : doms -> Template.guard list -> Template.guard -> bool
(** The guard is a consequence of [doms] (with the other guards
    supplied for syntactic [Differ] matching) — it can never change a
    match verdict. *)
