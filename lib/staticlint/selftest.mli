(** A deliberately defective artifact corpus, one specimen per defect
    class, embedded so [sanids lint --selftest] can demonstrate every
    finding code without external files — and so tests can assert the
    linter still catches each seeded defect. *)

val templates : Template.t list
(** Templates seeded with SL001–SL011 and SL401–SL403 defects (names
    [st-*]). *)

val rules : string
(** Ruleset text seeded with SL100 and SL102–SL105 defects. *)

val findings : unit -> Finding.t list
(** Lint the corpus: template findings, subsumption findings, semantic
    (SL4xx) findings, rule findings — in that order. *)
