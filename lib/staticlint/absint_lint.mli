(** SL4xx: semantic template lints over the lifted-IR abstract
    interpreter ({!Sanids_ir.Absint}).

    Each template is {e realized} as one canonical machine-code program
    — fixed register assignment, guard-satisfying constants, pointer
    variables aimed at a data area appended after the code — and the
    realization is analyzed abstractly.  The findings then come from the
    fixpoint rather than template syntax.

    Codes (stable):
    - [SL401] {e warn} — a step whose realized instruction no abstract
      path reaches (includes straight-line code after a provable
      [exit] syscall).
    - [SL402] {e error} — a guard that can never hold because its
      variable is bound at an 8-bit site (syscall [AL]/[BL] byte, [W8]
      transform key) and the guard admits no value in [0, 255];
      {e info} — a guard decided by that same width fact alone (vacuous
      given the binding site).
    - [SL403] {e warn} — a template claiming a decrypt loop (a
      [Back_edge]) whose realization's abstract may-write region
      provably misses its own image: it can never write a byte it later
      executes, so it cannot evidence self-decryption.

    Templates with no encodable realization (too many register
    variables, displacement overflow) produce no findings — the pass is
    best-effort and never blocks an artifact it cannot model. *)

type realization = {
  r_code : string;  (** encoded program followed by the data area *)
  r_code_len : int;  (** instruction bytes, before the data area *)
  r_step_offs : int list;  (** per template step, realized start offset *)
}

val realize : Template.t -> realization option
(** The canonical realization, [None] when unencodable. *)

val check : Template.t -> Finding.t list
(** [SL401]/[SL403] for one template. *)

val check_guards : Template.t -> Finding.t list
(** [SL402] for one template. *)

val lint : Template.t list -> Finding.t list
(** All SL4xx findings, in template order. *)
