let junk_threshold = 0.25

let lint ~subject code =
  let tr = Trace.build code ~entry:0 in
  if Array.length tr = 0 then
    [
      Finding.v ~code:"SL301" ~severity:Finding.Warn ~subject
        "no decodable instructions at entry offset 0";
    ]
  else begin
    let du = Defuse.analyze tr in
    let n = Array.length tr in
    let dead = ref 0 in
    for i = 0 to n - 1 do
      if Defuse.is_dead_write du i then incr dead
    done;
    let frac = Defuse.dead_fraction du in
    let density =
      Finding.v ~code:"SL302" ~severity:Finding.Info ~subject
        (Printf.sprintf "junk density: %d of %d traced instructions are dead \
                         writes (%.0f%%)"
           !dead n (100. *. frac))
    in
    let junk =
      if frac >= junk_threshold then
        [
          density;
          Finding.v ~code:"SL303" ~severity:Finding.Warn ~subject
            (Printf.sprintf
               "dead-write fraction %.2f is at or above %.2f: the region looks \
                heavily padded with junk"
               frac junk_threshold);
        ]
      else [ density ]
    in
    (* self-modification reachability: analyze the whole CFG abstractly
       and ask whether any reachable store may land inside the region
       itself — the decoder signature the trace alone cannot establish *)
    let res = Absint.analyze ~entry:(Absint.entry_state ()) (Cfg.build code) in
    let lo = Int64.of_int32 Emulator.code_base in
    let hi = Int64.add lo (Int64.of_int (String.length code - 1)) in
    let self_mod =
      if Absint.Region.may_touch res.Absint.out.Absint.written ~lo ~hi then
        [
          Finding.v ~code:"SL404" ~severity:Finding.Info ~subject
            "abstractly reachable self-modifying store: some execution path \
             may overwrite bytes of this region — the decoder shape \
             (confirm dynamically before trusting the disassembly)";
        ]
      else []
    in
    junk @ self_mod
  end
