let junk_threshold = 0.25

let lint ~subject code =
  let tr = Trace.build code ~entry:0 in
  if Array.length tr = 0 then
    [
      Finding.v ~code:"SL301" ~severity:Finding.Warn ~subject
        "no decodable instructions at entry offset 0";
    ]
  else begin
    let du = Defuse.analyze tr in
    let n = Array.length tr in
    let dead = ref 0 in
    for i = 0 to n - 1 do
      if Defuse.is_dead_write du i then incr dead
    done;
    let frac = Defuse.dead_fraction du in
    let density =
      Finding.v ~code:"SL302" ~severity:Finding.Info ~subject
        (Printf.sprintf "junk density: %d of %d traced instructions are dead \
                         writes (%.0f%%)"
           !dead n (100. *. frac))
    in
    if frac >= junk_threshold then
      [
        density;
        Finding.v ~code:"SL303" ~severity:Finding.Warn ~subject
          (Printf.sprintf
             "dead-write fraction %.2f is at or above %.2f: the region looks \
              heavily padded with junk"
             frac junk_threshold);
      ]
    else [ density ]
  end
