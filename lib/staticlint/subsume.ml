open Template

let pstep_of = function Once p | Many p -> p

(* Correspondence from [b]'s variables to [a]'s side: register variables
   map injectively to register variables; constant variables map to an
   [a] constant variable or to a literal [a] forces at that position. *)
type cval = Cvar of cvar | Cconst of int32
type env = { tv : (tvar * tvar) list; cv : (cvar * cval) list }

let empty_env = { tv = []; cv = [] }

let bind_tvar env vb va =
  match List.assoc_opt vb env.tv with
  | Some va' -> if va' = va then Some env else None
  | None ->
      if List.exists (fun (_, va') -> va' = va) env.tv then None
        (* injective: [a]'s matcher keeps distinct tvars on distinct
           registers, so two [b] tvars may not share one *)
      else Some { env with tv = (vb, va) :: env.tv }

let bind_cvar env wb cval =
  match List.assoc_opt wb env.cv with
  | Some c' -> if c' = cval then Some env else None
  | None -> Some { env with cv = (wb, cval) :: env.cv }

(* The one value [a] can produce at a pval position, if forced. *)
let forced_value adoms = function
  | Exact c -> Some c
  | Bind v | Same v -> Dom.is_singleton (Guards.dom adoms v)
  | Any -> None

let pval_implies adoms env pa pb =
  match pb with
  | Any -> Some env
  | Exact c -> (
      match forced_value adoms pa with
      | Some c' when Int32.equal c c' -> Some env
      | _ -> None)
  | Bind w -> (
      (* [b] requires a known constant here; [Any] does not supply one *)
      match pa with
      | Exact c -> bind_cvar env w (Cconst c)
      | Bind v | Same v -> bind_cvar env w (Cvar v)
      | Any -> None)
  | Same w -> (
      match List.assoc_opt w env.cv with
      | None -> None
      | Some (Cvar v) -> (
          match pa with
          | Bind v' | Same v' when v' = v -> Some env
          | _ -> (
              match
                (forced_value adoms pa, Dom.is_singleton (Guards.dom adoms v))
              with
              | Some c, Some c' when Int32.equal c c' -> Some env
              | _ -> None))
      | Some (Cconst c) -> (
          match forced_value adoms pa with
          | Some c' when Int32.equal c c' -> Some env
          | _ -> None))

let width_implies wa wb = match wb with Wany -> true | W8 | W32 -> wa = wb
let ops_implies oa ob = List.for_all (fun o -> List.mem o ob) oa

let pstep_implies adoms env pa pb =
  match (pa, pb) with
  | Load a, Load b when width_implies a.width b.width ->
      Option.bind (bind_tvar env b.dst a.dst) (fun env ->
          bind_tvar env b.ptr a.ptr)
  | Mem_transform a, Mem_transform b
    when width_implies a.width b.width && ops_implies a.ops b.ops ->
      Option.bind (bind_tvar env b.ptr a.ptr) (fun env ->
          pval_implies adoms env a.key b.key)
  | Reg_transform a, Reg_transform b when ops_implies a.ops b.ops ->
      bind_tvar env b.reg a.reg
  | Store a, Store b when width_implies a.width b.width ->
      Option.bind (bind_tvar env b.src a.src) (fun env ->
          bind_tvar env b.ptr a.ptr)
  | Ptr_advance a, Ptr_advance b -> bind_tvar env b.ptr a.ptr
  | Back_edge, Back_edge -> Some env
  | Syscall a, Syscall b when a.vector = b.vector ->
      Option.bind (pval_implies adoms env a.al b.al) (fun env ->
          pval_implies adoms env a.bl b.bl)
  | Stack_const a, Stack_const b -> pval_implies adoms env a b
  | Code_const a, Code_const b when Int32.equal a b -> Some env
  | _ -> None

(* An [a] step quantified [Many] matches extra occurrences that, for a
   [b]-[Once] reading, would be undisciplined junk — so [Many] must map
   to [Many].  [Once] maps to either (one occurrence satisfies both). *)
let quant_implies qa qb =
  match (qa, qb) with Many _, Once _ -> false | _ -> true

let tvars_of_pstep = function
  | Load { dst; ptr; _ } -> [ dst; ptr ]
  | Mem_transform { ptr; _ } -> [ ptr ]
  | Reg_transform { reg; _ } -> [ reg ]
  | Store { src; ptr; _ } -> [ src; ptr ]
  | Ptr_advance { ptr } -> [ ptr ]
  | Back_edge | Syscall _ | Stack_const _ | Code_const _ -> []

let tvars steps =
  List.sort_uniq compare
    (List.concat_map (fun q -> tvars_of_pstep (pstep_of q)) steps)

(* [b]'s guard, translated through [env], entailed by [a]'s guards. *)
let guard_implied adoms aguards env g =
  let resolve w = List.assoc_opt w env.cv in
  match g with
  | Nonzero w -> (
      match resolve w with
      | Some (Cvar v) -> Guards.implied adoms aguards (Nonzero v)
      | Some (Cconst c) -> not (Int32.equal c 0l)
      | None -> false)
  | Equals (w, c) -> (
      match resolve w with
      | Some (Cvar v) -> Guards.implied adoms aguards (Equals (v, c))
      | Some (Cconst c') -> Int32.equal c c'
      | None -> false)
  | One_of (w, cs) -> (
      match resolve w with
      | Some (Cvar v) -> Guards.implied adoms aguards (One_of (v, cs))
      | Some (Cconst c) -> List.exists (Int32.equal c) cs
      | None -> false)
  | Differ (w1, w2) -> (
      match (resolve w1, resolve w2) with
      | Some (Cvar v1), Some (Cvar v2) ->
          Guards.implied adoms aguards (Differ (v1, v2))
      | Some (Cvar v), Some (Cconst c) | Some (Cconst c), Some (Cvar v) ->
          Dom.subset (Guards.dom adoms v) (Dom.exclude c)
      | Some (Cconst c1), Some (Cconst c2) -> not (Int32.equal c1 c2)
      | _, _ -> false)

let subsumes (a : t) (b : t) =
  let na = List.length a.steps and nb = List.length b.steps in
  (* whenever [a] matches, [a.data] is present; [b] must not ask for more *)
  List.for_all (fun d -> List.mem d a.data) b.data
  && nb > 0 && nb <= na
  (* consecutive [b] steps land on consecutive [a] steps, whose matched
     instructions may sit up to [a.max_gap] apart *)
  && (nb <= 1 || b.max_gap >= a.max_gap)
  &&
  let adoms = Guards.infer a.guards in
  let asteps = Array.of_list a.steps and bsteps = Array.of_list b.steps in
  let b_back_edge = List.exists (fun q -> pstep_of q = Back_edge) b.steps in
  let a_tvars = tvars a.steps in
  let block s =
    let rec go k env =
      if k = nb then Some env
      else
        let qa = asteps.(s + k) and qb = bsteps.(k) in
        if not (quant_implies qa qb) then None
        else
          match pstep_implies adoms env (pstep_of qa) (pstep_of qb) with
          | Some env -> go (k + 1) env
          | None -> None
    in
    go 0 empty_env
  in
  let accept env =
    (* [b]'s back-edge discipline check runs over [b]'s bound registers;
       it is only guaranteed by [a]'s when they cover the same set *)
    (not b_back_edge
    || List.for_all
         (fun v -> List.exists (fun (_, va) -> va = v) env.tv)
         a_tvars)
    && List.for_all (guard_implied adoms a.guards env) b.guards
  in
  let rec try_start s =
    s + nb <= na
    && ((match block s with Some env -> accept env | None -> false)
       || try_start (s + 1))
  in
  try_start 0

let lint ts =
  let named =
    List.filter
      (fun (_, t) -> Template_lint.well_formed t)
      (Template_lint.subjects ts)
  in
  let out = ref [] in
  let emit code severity subject message =
    out := Finding.v ~code ~severity ~subject message :: !out
  in
  let structurally_equal (a : t) (b : t) =
    a.steps = b.steps && a.guards = b.guards && a.max_gap = b.max_gap
    && a.data = b.data
  in
  let rec pairs = function
    | [] -> ()
    | (sa, a) :: rest ->
        List.iter
          (fun (sb, b) ->
            let ab = subsumes a b and ba = subsumes b a in
            if a.name = b.name then
              if structurally_equal a b then
                emit "SL010" Finding.Warn sb
                  (Printf.sprintf "exact duplicate of %s" sa)
              else begin
                if ab then
                  emit "SL011" Finding.Info sa
                    (Printf.sprintf
                       "every match is also matched by sibling %s — the \
                        generic variant settles this name first anyway"
                       sb);
                if ba then
                  emit "SL011" Finding.Info sb
                    (Printf.sprintf
                       "every match is also matched by sibling %s — the \
                        generic variant settles this name first anyway"
                       sa)
              end
            else if ab && ba then
              emit "SL008" Finding.Warn sa
                (Printf.sprintf
                   "equivalent to %s: each subsumes the other, so one of the \
                    two templates is redundant"
                   sb)
            else begin
              if ab then
                emit "SL009" Finding.Info sa
                  (Printf.sprintf
                     "every match is also matched by the more general %s \
                      (specific-before-generic hierarchy?)"
                     sb);
              if ba then
                emit "SL009" Finding.Info sb
                  (Printf.sprintf
                     "every match is also matched by the more general %s \
                      (specific-before-generic hierarchy?)"
                     sa)
            end)
          rest;
        pairs rest
  in
  pairs named;
  List.rev !out
