module S = Set.Make (Int32)

(* [In s] = exactly the values in [s]; [Ex s] = every int32 except [s].
   [Ex S.empty] is top.  The representation is closed under meet. *)
type t = In of S.t | Ex of S.t

let any = Ex S.empty
let none = In S.empty
let singleton c = In (S.singleton c)
let of_list cs = In (S.of_list cs)
let exclude c = Ex (S.singleton c)

let meet a b =
  match (a, b) with
  | In x, In y -> In (S.inter x y)
  | In x, Ex y | Ex y, In x -> In (S.diff x y)
  | Ex x, Ex y -> Ex (S.union x y)

let is_empty = function In s -> S.is_empty s | Ex _ -> false

let is_singleton = function
  | In s when S.cardinal s = 1 -> Some (S.choose s)
  | In _ | Ex _ -> None

let subset a b =
  match (a, b) with
  | In x, In y -> S.subset x y
  | In x, Ex y -> S.disjoint x y
  | Ex _, In _ -> false (* a co-finite set is never inside a finite one *)
  | Ex x, Ex y -> S.subset y x

(* 2^32: the size of the int32 universe, for the Ex/Ex emptiness test *)
let universe = 4_294_967_296

let disjoint a b =
  match (a, b) with
  | In x, In y -> S.disjoint x y
  | In x, Ex y | Ex y, In x -> S.subset x y
  | Ex x, Ex y ->
      (* the intersection is the complement of [x ∪ y]: empty exactly
         when the exclusions cover the whole universe.  The cardinality
         guard keeps the union allocation off every realistic
         (small-exclusion) call. *)
      S.cardinal x + S.cardinal y >= universe
      && S.cardinal (S.union x y) = universe

let pp ppf t =
  let values s =
    String.concat ","
      (List.map (Printf.sprintf "0x%lx") (S.elements s))
  in
  match t with
  | In s when S.is_empty s -> Format.pp_print_string ppf "bottom"
  | In s -> Format.fprintf ppf "{%s}" (values s)
  | Ex s when S.is_empty s -> Format.pp_print_string ppf "top"
  | Ex s -> Format.fprintf ppf "not{%s}" (values s)
