open Template

let xor_op = [ Sem.Ra Insn.Xor ]

let templates =
  [
    make ~name:"st-unbound-guard"
      ~description:"SL001: guard on a variable no step binds"
      ~guards:[ Nonzero "key" ]
      [ Once (Stack_const Any) ];
    make ~name:"st-same-before-bind"
      ~description:"SL002: Same constraint precedes the Bind"
      [
        Once (Mem_transform { ops = xor_op; ptr = "p"; key = Same "k"; width = Wany });
        Once (Mem_transform { ops = xor_op; ptr = "p"; key = Bind "k"; width = Wany });
      ];
    make ~name:"st-read-before-load"
      ~description:"SL003: register transformed before any load binds it"
      [
        Once (Reg_transform { ops = [ Sem.Ra Insn.Add ]; reg = "acc" });
        Once (Store { src = "acc"; ptr = "p"; width = Wany });
      ];
    make ~name:"st-width-conflict"
      ~description:"SL004: 8-bit load vs 32-bit store of one variable"
      [
        Once (Load { dst = "v"; ptr = "p"; width = W8 });
        Once (Store { src = "v"; ptr = "q"; width = W32 });
      ];
    make ~name:"st-unreachable"
      ~description:"SL005: a step after the exit syscall"
      [
        Once (Syscall { vector = 0x80; al = Exact 1l; bl = Any });
        Once (Stack_const Any);
      ];
    make ~name:"st-unsat-guards"
      ~description:"SL006: Equals 0 conjoined with Nonzero"
      ~guards:[ Equals ("k", 0l); Nonzero "k" ]
      [ Once (Stack_const (Bind "k")) ];
    make ~name:"st-vacuous-guard"
      ~description:"SL007: Nonzero implied by Equals 5"
      ~guards:[ Equals ("k", 5l); Nonzero "k" ]
      [ Once (Stack_const (Bind "k")) ];
    make ~name:"st-dup-a" ~description:"SL008: equivalent to st-dup-b"
      [ Once (Code_const 0xdeadbeefl) ];
    make ~name:"st-dup-b" ~description:"SL008: equivalent to st-dup-a"
      [ Once (Code_const 0xdeadbeefl) ];
    make ~name:"st-specific"
      ~description:"SL009: strictly more specific than st-dup-a"
      [
        Once (Code_const 0xdeadbeefl);
        Once (Syscall { vector = 0x80; al = Exact 1l; bl = Any });
      ];
    make ~name:"st-twin" ~description:"SL010: duplicate variant, first copy"
      [ Once (Code_const 0x2222l) ];
    make ~name:"st-twin" ~description:"SL010: duplicate variant, second copy"
      [ Once (Code_const 0x2222l) ];
    make ~name:"st-variant" ~description:"SL011: specific variant"
      [ Once (Stack_const (Exact 7l)); Once (Code_const 0x1111l) ];
    make ~name:"st-variant" ~description:"SL011: generic sibling"
      [ Once (Code_const 0x1111l) ];
    make ~name:"st-abs-unreachable"
      ~description:"SL401: a step the abstract interpreter proves dead \
                    (straight-line code after a constant exit syscall)"
      [
        Once (Syscall { vector = 0x80; al = Exact 1l; bl = Any });
        Once (Code_const 0x3333l);
      ];
    make ~name:"st-width-guard"
      ~description:"SL402: full-word guard on a variable bound at an 8-bit \
                    site"
      ~guards:[ Equals ("nr", 0x1234l) ]
      [ Once (Syscall { vector = 0x80; al = Bind "nr"; bl = Any }) ];
    make ~name:"st-hollow-loop"
      ~description:"SL403: decrypt loop that never stores a byte"
      [
        Once (Load { dst = "v"; ptr = "p"; width = Wany });
        Once (Reg_transform { ops = xor_op; reg = "v" });
        Once (Ptr_advance { ptr = "p" });
        Once Back_edge;
      ];
  ]

let rules =
  String.concat "\n"
    [
      "# staticlint selftest ruleset - every rule below is defective";
      "alert bogus nonsense";
      "alert tcp any any -> any 6666 (msg:\"SL102 single byte\"; content:\"A\";)";
      "alert tcp any any -> any 80 (msg:\"SL103 dup content\"; \
       content:\"EVILPAYLOAD\"; content:\"EVILPAYLOAD\";)";
      "alert tcp any any -> any 80 (msg:\"SL104 first\"; content:\"DUPRULE\";)";
      "alert tcp any any -> any 80 (msg:\"SL104 second\"; content:\"DUPRULE\";)";
      "alert tcp any any -> any any (msg:\"SL105 shadower\"; content:\"CMD\";)";
      "alert tcp any any -> any 80 (msg:\"SL105 shadowed\"; \
       content:\"CMDSHELL\";)";
      "";
    ]

let findings () =
  Template_lint.lint templates @ Subsume.lint templates
  @ Absint_lint.lint templates @ Rule_lint.lint_text rules
