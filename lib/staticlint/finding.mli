(** Lint findings — the common currency of the detector-artifact linter.

    Every check in {!Template_lint}, {!Subsume}, {!Rule_lint},
    {!Trace_lint} and [Config.lint] reports through this one record, so
    findings from templates, rules, configuration and extracted frames
    render uniformly (text or JSONL), sort stably, and drive one exit
    code.  Codes are {e stable}: ["SL001"] means the same defect class
    forever; tooling may grep for them. *)

type severity =
  | Error  (** the artifact is broken: it can never work as written *)
  | Warn  (** the artifact works but wastes budget or duplicates coverage *)
  | Info  (** diagnostic observation; never fails a lint run *)

type t = {
  code : string;  (** stable defect-class code, ["SL001"]… *)
  severity : severity;
  subject : string;
      (** what was linted: ["template:decrypt-loop"], ["rule:3"],
          ["config"], ["trace:poly.bin"] *)
  loc : string option;  (** position within the subject: ["step 2"]… *)
  message : string;
}

val v :
  code:string -> severity:severity -> subject:string -> ?loc:string ->
  string -> t

val severity_to_string : severity -> string
(** ["error"] / ["warn"] / ["info"]. *)

val counts : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val summary : t list -> string
(** ["N errors, N warnings, N infos"]. *)

val failed : strict:bool -> t list -> bool
(** Any [Error] finding; under [strict], any [Warn] too.  [Info] never
    fails. *)

val to_line : t -> string
(** One human line: [CODE severity subject (loc): message]. *)

val to_json : t -> string
(** One JSON object (single line, keys in fixed order, [loc] omitted
    when absent) — JSONL-ready and byte-stable for a given finding. *)

val pp : Format.formatter -> t -> unit
