(* Header of [g] at least as general as [s]'s: every packet passing
   [s]'s header filter passes [g]'s. *)
let header_covers (g : Rule.t) (s : Rule.t) =
  let field eq gv sv = match gv with None -> true | Some _ -> eq gv sv in
  g.proto = s.proto
  && field ( = ) g.src s.src
  && field ( = ) g.src_port s.src_port
  && field ( = ) g.dst s.dst
  && field ( = ) g.dst_port s.dst_port

(* [g] fires whenever content [c] is present anywhere: [g] has exactly
   one content, searched unanchored, whose pattern is a substring of
   [c.pattern] (case-insensitively when [g] ignores case; exactly when
   both are case-sensitive). *)
let content_shadows (g : Rule.content) (c : Rule.content) =
  g.offset = 0 && g.depth = None
  &&
  if g.nocase then Search.contains ~nocase:true ~needle:g.pattern c.pattern
  else (not c.nocase) && Search.contains ~needle:g.pattern c.pattern

let lint_rules pairs =
  let out = ref [] in
  let emit ?loc code severity subject message =
    out := Finding.v ~code ~severity ~subject ?loc message :: !out
  in
  (* per-rule checks *)
  List.iter
    (fun (subject, (r : Rule.t)) ->
      if r.contents = [] then
        emit "SL101" Finding.Error subject
          "no content pattern: the rule alerts on every packet matching its \
           header"
      else
        List.iteri
          (fun k (c : Rule.content) ->
            let loc = Printf.sprintf "content %d" (k + 1) in
            if c.pattern = "" then
              emit ~loc "SL101" Finding.Error subject
                "empty content pattern matches every packet"
            else if String.length c.pattern = 1 && c.offset = 0 && c.depth = None
            then
              emit ~loc "SL102" Finding.Warn subject
                (Printf.sprintf
                   "unanchored single-byte pattern %S matches a constant \
                    fraction of all traffic"
                   c.pattern);
            if
              List.exists
                (fun c' -> c' = c)
                (List.filteri (fun k' _ -> k' < k) r.contents)
            then
              emit ~loc "SL103" Finding.Warn subject
                "duplicate content constraint within the rule")
          r.contents)
    pairs;
  (* cross-rule checks *)
  let rec cross = function
    | [] -> ()
    | (sa, (a : Rule.t)) :: rest ->
        List.iter
          (fun (sb, (b : Rule.t)) ->
            if
              a.proto = b.proto && a.src = b.src && a.src_port = b.src_port
              && a.dst = b.dst && a.dst_port = b.dst_port
              && a.contents = b.contents
            then
              emit "SL104" Finding.Warn sb
                (Printf.sprintf "duplicate of %s: same header and contents" sa))
          rest;
        cross rest
  in
  cross pairs;
  List.iter
    (fun (ss, (s : Rule.t)) ->
      match
        List.find_opt
          (fun (sg, (g : Rule.t)) ->
            sg <> ss && header_covers g s
            && (match g.contents with
               | [ gc ] ->
                   List.exists (fun c -> content_shadows gc c) s.contents
               | _ -> false)
            (* skip exact duplicates — SL104 already covers those *)
            && g.contents <> s.contents)
          pairs
      with
      | Some (sg, _) ->
          emit "SL105" Finding.Warn ss
            (Printf.sprintf
               "shadowed by %s, which fires on every packet this rule fires on"
               sg)
      | None -> ())
    pairs;
  List.rev !out

let lint_text src =
  let parse_errors = ref [] in
  let pairs = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let t = String.trim line in
      if t <> "" && t.[0] <> '#' then
        match Rule.parse t with
        | Ok r -> pairs := (Printf.sprintf "rule:%d" lineno, r) :: !pairs
        | Error e ->
            parse_errors :=
              Finding.v ~code:"SL100" ~severity:Finding.Error
                ~subject:(Printf.sprintf "rule:%d" lineno)
                ("parse error: " ^ e)
              :: !parse_errors)
    (String.split_on_char '\n' src);
  List.rev !parse_errors @ lint_rules (List.rev !pairs)
