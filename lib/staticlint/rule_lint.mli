(** Baseline ruleset lint: dead, degenerate and redundant signatures.

    Codes (stable):
    - [SL100] {e error} — a rule line fails to parse.
    - [SL101] {e error} — a rule has no content pattern (or an empty
      one): it alerts on header match alone, which is never the intent
      of a signature baseline.
    - [SL102] {e warn} — an unanchored single-byte pattern: it matches
      a constant fraction of all traffic and only burns budget.
    - [SL103] {e warn} — the same content constraint appears twice in
      one rule.
    - [SL104] {e warn} — two rules share header and contents: an exact
      duplicate (messages may differ, coverage does not).
    - [SL105] {e warn} — a rule is substring-shadowed: some other
      single-content, unanchored, header-at-least-as-general rule fires
      on every packet this one fires on. *)

val lint_text : string -> Finding.t list
(** Parse a ruleset (one rule per line, ['#'] comments and blanks
    skipped) and lint it.  Subjects are ["rule:<line>"]. *)

val lint_rules : (string * Rule.t) list -> Finding.t list
(** Lint already-parsed [(subject, rule)] pairs — the engine behind
    {!lint_text}, exposed for tests. *)
