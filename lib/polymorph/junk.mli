(** Garbage instruction generation.

    Junk is woven between a decoder's real instructions to break
    syntactic signatures.  Like real engines, the generator never
    clobbers the registers the decoder is using ([live]); everything
    else — dead registers, flags, balanced stack traffic — is fair
    game. *)

val items : Rng.t -> live:Reg.t list -> int -> Asm.item list
(** [items rng ~live n] is roughly [n] junk instructions (stack-balanced
    pairs count as two). *)

val const_route : Rng.t -> Reg.t -> int32 -> Asm.item list
(** Load a constant into a register by a randomly chosen arithmetic
    route: direct, add/sub-split, xor-split, push/pop, negation, or
    rotation.  Every route folds back to the constant under
    {!Sanids_ir.Constprop}. *)
