let i x = Asm.I x
let reg r = Insn.Reg r
let imm v = Insn.Imm v

let dead_regs live =
  List.filter
    (fun r ->
      (not (List.exists (Reg.equal r) live))
      && not (Reg.equal r Reg.ESP)
      && not (Reg.equal r Reg.EBP))
    (Array.to_list Reg.all)

let rand_imm rng = Int32.of_int (Rng.int rng 0x10000 - 0x8000)

let arith_pool = [| Insn.Add; Insn.Sub; Insn.Xor; Insn.Or; Insn.And |]

let items rng ~live n =
  let dead = Array.of_list (dead_regs live) in
  let have_dead = Array.length dead > 0 in
  let pick_dead () = Rng.pick rng dead in
  let any_reg () = Rng.pick rng Reg.all in
  let rec gen k acc =
    if k <= 0 then List.rev acc
    else
      let choice = Rng.int rng (if have_dead then 9 else 3) in
      match choice with
      | 0 -> gen (k - 1) (i Insn.Nop :: acc)
      | 1 ->
          gen (k - 1)
            (i (Insn.Test (Insn.S32bit, reg (any_reg ()), reg (any_reg ()))) :: acc)
      | 2 ->
          gen (k - 1)
            (i (Insn.Arith (Insn.Cmp, Insn.S32bit, reg (any_reg ()), imm (rand_imm rng)))
            :: acc)
      | 3 ->
          gen (k - 1)
            (i (Insn.Mov (Insn.S32bit, reg (pick_dead ()), imm (rand_imm rng))) :: acc)
      | 4 ->
          gen (k - 1)
            (i
               (Insn.Arith
                  ( Rng.pick rng arith_pool,
                    Insn.S32bit,
                    reg (pick_dead ()),
                    imm (rand_imm rng) ))
            :: acc)
      | 5 ->
          let d = pick_dead () in
          gen (k - 1)
            (i (if Rng.bool rng then Insn.Inc (Insn.S32bit, reg d) else Insn.Dec (Insn.S32bit, reg d))
            :: acc)
      | 6 ->
          (* balanced stack pair: push anything, pop a dead register *)
          let d = pick_dead () in
          gen (k - 2) (i (Insn.Pop_reg d) :: i (Insn.Push_reg (any_reg ())) :: acc)
      | 7 ->
          let d = pick_dead () in
          gen (k - 1)
            (i
               (Insn.Lea
                  (d, { Insn.base = Some (any_reg ()); index = None; disp = rand_imm rng }))
            :: acc)
      | _ ->
          let d = pick_dead () in
          gen (k - 1)
            (i
               (Insn.Shift
                  ( Rng.pick rng [| Insn.Rol; Insn.Ror; Insn.Shl; Insn.Shr |],
                    Insn.S32bit,
                    reg d,
                    1 + Rng.int rng 7 ))
            :: acc)
  in
  gen n []

let rotl32 v n =
  let n = n land 31 in
  if n = 0 then v
  else Int32.logor (Int32.shift_left v n) (Int32.shift_right_logical v (32 - n))

let const_route rng r v =
  match Rng.int rng 7 with
  | 0 -> [ i (Insn.Mov (Insn.S32bit, reg r, imm v)) ]
  | 1 ->
      let k = rand_imm rng in
      [
        i (Insn.Mov (Insn.S32bit, reg r, imm (Int32.sub v k)));
        i (Insn.Arith (Insn.Add, Insn.S32bit, reg r, imm k));
      ]
  | 2 ->
      let m = rand_imm rng in
      [
        i (Insn.Mov (Insn.S32bit, reg r, imm (Int32.logxor v m)));
        i (Insn.Arith (Insn.Xor, Insn.S32bit, reg r, imm m));
      ]
  | 3 -> [ i (Insn.Push_imm v); i (Insn.Pop_reg r) ]
  | 4 ->
      [
        i (Insn.Mov (Insn.S32bit, reg r, imm (Int32.lognot v)));
        i (Insn.Not (Insn.S32bit, reg r));
      ]
  | 5 ->
      let n = 1 + Rng.int rng 31 in
      [
        i (Insn.Mov (Insn.S32bit, reg r, imm (rotl32 v n)));
        i (Insn.Shift (Insn.Ror, Insn.S32bit, reg r, n));
      ]
  | _ ->
      (* memory-routed: the constant is fixed up in place on the stack *)
      let m = rand_imm rng in
      [
        i (Insn.Push_imm (Int32.logxor v m));
        i (Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Mem (Insn.mem_base Reg.ESP), imm m));
        i (Insn.Pop_reg r);
      ]
