type generated = { code : string; pad_len : int; chi_square : float }

let english_profile =
  let p = Array.make 256 0.0005 in
  let set c v = p.(Char.code c) <- v in
  String.iteri
    (fun i c ->
      (* letter frequencies, descending *)
      set c (0.085 *. (0.88 ** float_of_int i)))
    "etaoinshrdlcumwfgypbvkjxqz";
  set ' ' 0.14;
  set '.' 0.01;
  set ',' 0.008;
  set '/' 0.012;
  set ':' 0.006;
  set '\r' 0.01;
  set '\n' 0.01;
  String.iter (fun c -> set c 0.004) "0123456789";
  String.iter (fun c -> set c (p.(Char.code c) /. 4.0)) "ETAOINSHRDLU";
  (* normalize *)
  let total = Array.fold_left ( +. ) 0.0 p in
  Array.map (fun v -> v /. total) p

(* Sample a byte from a cumulative distribution. *)
let sampler profile =
  let cum = Array.make 256 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i v ->
      acc := !acc +. v;
      cum.(i) <- !acc)
    profile;
  fun rng ->
    let x = Rng.float rng !acc in
    let rec find lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cum.(mid) < x then find (mid + 1) hi else find lo mid
    in
    Char.chr (find 0 255)

let generate ?(target_profile = english_profile) ?(pad_factor = 2.0) rng ~payload =
  let g =
    Admmutate.generate ~family:Admmutate.Xor_loop ~out_of_order:false ~junk:2 rng
      ~payload
  in
  let body = g.Admmutate.code in
  let pad_len = int_of_float (pad_factor *. float_of_int (String.length body)) in
  let sample = sampler target_profile in
  (* The padding is dead data after the payload: execution never reaches
     it, but it dominates the byte histogram. *)
  let padding = String.init pad_len (fun _ -> sample rng) in
  let code = body ^ padding in
  let chi =
    Entropy.chi_square ~observed:(Entropy.histogram code) ~expected:target_profile
  in
  { code; pad_len; chi_square = chi }
