(** Metamorphic code transformation (paper §3).

    Unlike the encrypting engines, metamorphism rewrites the program
    itself: equivalent instruction substitution, garbage insertion and
    NOP insertion over an instruction list, preserving behaviour exactly
    (validated against the emulator in the test suite).  Control-flow
    instructions are never touched, so relative displacements stay
    valid only when the rewrite is length-preserving — which it is not —
    hence [mutate] rejects programs with relative branches; use the
    engines for looping code, and this pass for straight-line payloads. *)

exception Has_branches
(** Raised by {!mutate} when the input contains relative control flow. *)

val substitute : Rng.t -> Insn.t -> Insn.t list
(** Rewrite one instruction into an equivalent sequence (possibly
    itself).  Never substitutes control flow. *)

val mutate : ?junk:int -> Rng.t -> Insn.t list -> Insn.t list
(** Substitution plus up to [junk] (default 2) garbage instructions
    between originals.  Garbage never touches registers the program
    reads or writes.  @raise Has_branches on relative control flow. *)

val mutate_code : ?junk:int -> Rng.t -> string -> string
(** [mutate] over decoded bytes, re-encoded. *)
