exception Has_branches

let i32 = Int32.of_int
let reg r = Insn.Reg r
let imm v = Insn.Imm v

let rotl32 v n =
  let n = n land 31 in
  if n = 0 then v
  else Int32.logor (Int32.shift_left v n) (Int32.shift_right_logical v (32 - n))

(* Equivalent rewrites.  Flag effects may differ between alternatives
   (inc preserves CF where add does not), which is sound because [mutate]
   only accepts branch-free programs. *)
let substitute rng (insn : Insn.t) : Insn.t list =
  let pick = Rng.int rng in
  match insn with
  | Insn.Mov (Insn.S32bit, Insn.Reg r, Insn.Imm v) -> (
      match pick 4 with
      | 0 -> [ insn ]
      | 1 -> [ Insn.Push_imm v; Insn.Pop_reg r ]
      | 2 ->
          let m = i32 (Rng.int rng 0x10000) in
          [
            Insn.Mov (Insn.S32bit, reg r, imm (Int32.logxor v m));
            Insn.Arith (Insn.Xor, Insn.S32bit, reg r, imm m);
          ]
      | _ ->
          let k = i32 (Rng.int rng 0x10000) in
          [
            Insn.Mov (Insn.S32bit, reg r, imm (Int32.sub v k));
            Insn.Arith (Insn.Add, Insn.S32bit, reg r, imm k);
          ])
  | Insn.Mov (Insn.S32bit, Insn.Reg a, Insn.Reg b) -> (
      match pick 2 with
      | 0 -> [ insn ]
      | _ -> [ Insn.Push_reg b; Insn.Pop_reg a ])
  | Insn.Inc (Insn.S32bit, Insn.Reg r) -> (
      match pick 4 with
      | 0 -> [ insn ]
      | 1 -> [ Insn.Arith (Insn.Add, Insn.S32bit, reg r, imm 1l) ]
      | 2 -> [ Insn.Arith (Insn.Sub, Insn.S32bit, reg r, imm (-1l)) ]
      | _ -> [ Insn.Lea (r, Insn.mem_base_disp r 1l) ])
  | Insn.Dec (Insn.S32bit, Insn.Reg r) -> (
      match pick 4 with
      | 0 -> [ insn ]
      | 1 -> [ Insn.Arith (Insn.Sub, Insn.S32bit, reg r, imm 1l) ]
      | 2 -> [ Insn.Arith (Insn.Add, Insn.S32bit, reg r, imm (-1l)) ]
      | _ -> [ Insn.Lea (r, Insn.mem_base_disp r (-1l)) ])
  | Insn.Arith (Insn.Add, Insn.S32bit, Insn.Reg r, Insn.Imm v) -> (
      match pick 3 with
      | 0 -> [ insn ]
      | 1 -> [ Insn.Arith (Insn.Sub, Insn.S32bit, reg r, imm (Int32.neg v)) ]
      | _ -> [ Insn.Lea (r, Insn.mem_base_disp r v) ])
  | Insn.Arith (Insn.Sub, Insn.S32bit, Insn.Reg r, Insn.Imm v) -> (
      match pick 3 with
      | 0 -> [ insn ]
      | 1 -> [ Insn.Arith (Insn.Add, Insn.S32bit, reg r, imm (Int32.neg v)) ]
      | _ -> [ Insn.Lea (r, Insn.mem_base_disp r (Int32.neg v)) ])
  | Insn.Arith (Insn.Xor, Insn.S32bit, Insn.Reg a, Insn.Reg b)
    when Reg.equal a b -> (
      match pick 3 with
      | 0 -> [ insn ]
      | 1 -> [ Insn.Arith (Insn.Sub, Insn.S32bit, reg a, reg a) ]
      | _ ->
          [
            Insn.Mov (Insn.S32bit, reg a, imm (rotl32 0l (Rng.int rng 31)));
          ])
  | Insn.Push_imm v -> (
      match pick 2 with
      | 0 -> [ insn ]
      | _ ->
          (* split the immediate across two stack writes: push the xored
             value, then fix it in place *)
          let m = i32 (Rng.int rng 0x10000) in
          [
            Insn.Push_imm (Int32.logxor v m);
            Insn.Arith
              (Insn.Xor, Insn.S32bit, Insn.Mem (Insn.mem_base Reg.ESP), imm m);
          ])
  | Insn.Nop -> if pick 2 = 0 then [ Insn.Nop ] else []
  | other -> [ other ]

let is_relative_branch (insn : Insn.t) =
  match Insn.branch_displacement insn with Some _ -> true | None -> false

(* every register an instruction names, normalized to 32-bit parents:
   the union of the lifted semantic footprint and a direct operand scan
   (which also covers complex addressing the IR summarizes away) *)
let regs_of_operand (o : Insn.operand) =
  match o with
  | Insn.Reg r -> [ r ]
  | Insn.Reg8 r -> [ Reg.parent8 r ]
  | Insn.Imm _ -> []
  | Insn.Mem m ->
      (match m.Insn.base with Some b -> [ b ] | None -> [])
      @ (match m.Insn.index with Some (r, _) -> [ r ] | None -> [])

let operand_regs (insn : Insn.t) =
  match insn with
  | Insn.Mov (_, a, b) | Insn.Arith (_, _, a, b) | Insn.Test (_, a, b) ->
      regs_of_operand a @ regs_of_operand b
  | Insn.Not (_, o) | Insn.Neg (_, o) | Insn.Inc (_, o) | Insn.Dec (_, o)
  | Insn.Shift (_, _, o, _) ->
      regs_of_operand o
  | Insn.Lea (r, m) -> r :: regs_of_operand (Insn.Mem m)
  | Insn.Xchg (a, b) -> [ a; b ]
  | Insn.Push_reg r | Insn.Pop_reg r -> [ r ]
  | Insn.Movzx (d, o) | Insn.Movsx (d, o) | Insn.Imul2 (d, o) ->
      d :: regs_of_operand o
  | Insn.Imul3 (d, o, _) -> d :: regs_of_operand o
  | Insn.Mul (_, o) | Insn.Imul (_, o) | Insn.Div (_, o) | Insn.Idiv (_, o) ->
      Reg.EAX :: Reg.EDX :: regs_of_operand o
  | _ -> []

let regs_of_insn (insn : Insn.t) =
  operand_regs insn @ List.concat_map Sem.writes (Sem.lift insn)

let mutate ?(junk = 2) rng insns =
  if List.exists is_relative_branch insns then raise Has_branches;
  let live =
    List.sort_uniq compare (Reg.ESP :: List.concat_map regs_of_insn insns)
  in
  List.concat_map
    (fun insn ->
      let garbage =
        if junk > 0 then Junk.items rng ~live (Rng.int rng (junk + 1)) else []
      in
      let garbage =
        List.filter_map (function Asm.I x -> Some x | _ -> None) garbage
      in
      garbage @ substitute rng insn)
    insns

let mutate_code ?junk rng code =
  let insns =
    Array.to_list
      (Array.map (fun (d : Decode.decoded) -> d.Decode.insn) (Decode.all code))
  in
  Encode.program (mutate ?junk rng insns)
