(* Byte pool: single-byte instructions with no effect that matters ahead
   of shellcode entry.  A strict subset of Repetition.nop_like in the
   extractor (tested).  Instructions that would wreck the stack pointer
   the decoder's GetPC harness depends on (xchg esp,eax) are excluded,
   as real engines do. *)
let pool_bytes =
  let b = Buffer.create 64 in
  Buffer.add_char b '\x90';
  for r = 0x40 to 0x4F do
    Buffer.add_char b (Char.chr r)
  done;
  for r = 0x50 to 0x57 do
    Buffer.add_char b (Char.chr r)
  done;
  for r = 0x91 to 0x97 do
    if r <> 0x94 then Buffer.add_char b (Char.chr r)
  done;
  List.iter (Buffer.add_char b) [ '\x98'; '\x99'; '\xf8'; '\xf9'; '\xfc'; '\xf5' ];
  Buffer.contents b

let sled_bytes rng n =
  String.init n (fun _ -> pool_bytes.[Rng.int rng (String.length pool_bytes)])

let classic_sled n = String.make n '\x90'

let is_nop_like_byte c = String.contains pool_bytes c

let insns rng n =
  List.init n (fun _ ->
      match Decode.one (String.make 1 pool_bytes.[Rng.int rng (String.length pool_bytes)]) with
      | Insn.Bad _ -> Insn.Nop
      | i -> i)
