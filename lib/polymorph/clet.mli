(** Clet-equivalent polymorphic engine.

    Clet obscures a xor decoder like ADMmutate, but its distinguishing
    feature is {e spectrum analysis}: the generated buffer is padded with
    bytes drawn from a target byte-frequency profile so the packet "looks
    like normal traffic" to distribution-based detectors.  Detection in
    the paper is still via the xor decryption template, which padding
    cannot hide. *)

type generated = {
  code : string;  (** sled + decoder + encoded payload + shaped padding *)
  pad_len : int;
  chi_square : float;  (** distance of [code]'s histogram to the target *)
}

val english_profile : float array
(** A 256-bin frequency profile resembling HTTP/text traffic; used as the
    default shaping target. *)

val generate :
  ?target_profile:float array ->
  ?pad_factor:float ->
  Rng.t ->
  payload:string ->
  generated
(** [pad_factor] (default 2.0) is the ratio of shaped padding to code
    length. *)
