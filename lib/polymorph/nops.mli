(** Polymorphic NOP generation.

    Classic sleds repeated 0x90; polymorphic generators draw from the
    large class of single-byte instructions that are harmless before
    shellcode entry (inc/dec/push reg, xchg with eax, flag twiddles, ...),
    defeating repeated-byte signatures. *)

val sled_bytes : Rng.t -> int -> string
(** [sled_bytes rng n] is [n] bytes, each a random single-byte NOP-like
    instruction. *)

val classic_sled : int -> string
(** [n] copies of 0x90. *)

val is_nop_like_byte : char -> bool
(** Membership in the pool (mirrors the extractor's sled heuristic). *)

val insns : Rng.t -> int -> Insn.t list
(** The same pool as decoded instructions, for splicing into item
    lists. *)
