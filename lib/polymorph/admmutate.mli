(** ADMmutate-equivalent polymorphic shellcode engine.

    Wraps a payload in: a polymorphic NOP sled, a jmp/call/pop GetPC
    harness, and a randomized decoder loop over an encoded copy of the
    payload.  Per the paper's observation, the engine has two decoder
    families: a xor-with-key loop, and a load / mov-or-and-not-style
    transform chain / store loop.  Obfuscations applied: NOP-like
    insertion, garbage instructions (live registers respected),
    equivalent instruction substitution (pointer advance and constant
    routing), register reassignment, and out-of-order block sequencing
    stitched with jmps.

    The default family split is 68% xor / 32% alternate, matching the
    detection split the paper reports for the real toolkit. *)

type family = Xor_loop | Alt_chain

type generated = {
  code : string;  (** sled + decoder + GetPC + encoded payload *)
  family : family;
  sled_len : int;
  decoder_len : int;  (** bytes between sled and encoded payload *)
  payload_off : int;  (** offset of the encoded payload in [code] *)
  payload_len : int;
}

val generate :
  ?family:family ->
  ?sled_len:int ->
  ?out_of_order:bool ->
  ?junk:int ->
  Rng.t ->
  payload:string ->
  generated
(** [junk] is the maximum garbage-run length between decoder instructions
    (default 4).  Omitted options are drawn from [rng]. *)

val generate_staged :
  ?stages:int -> ?junk:int -> Rng.t -> payload:string -> generated
(** Multi-stage encoding: each stage wraps the previous stage's complete
    output (sled, decoder and ciphertext) as its payload, so only the
    outermost decoder is visible to static analysis.  [stages] defaults
    to 2.  The [payload_off]/[payload_len] fields describe the outermost
    ciphertext (the encoded inner stage). *)

val family_name : family -> string
