type family = Xor_loop | Alt_chain

type generated = {
  code : string;
  family : family;
  sled_len : int;
  decoder_len : int;
  payload_off : int;
  payload_len : int;
}

let family_name = function Xor_loop -> "xor-loop" | Alt_chain -> "alt-chain"

let i x = Asm.I x
let reg r = Insn.Reg r
let imm v = Insn.Imm v
let mem_of r = Insn.Mem (Insn.mem_base r)

(* ------------------------------------------------------------------ *)
(* Invertible byte transforms for the alternate decoder family. *)

type chain_op =
  | C_not
  | C_xor of int
  | C_add of int
  | C_sub of int
  | C_rol of int
  | C_ror of int
  | C_or0  (** identity noise: or w, 0 *)
  | C_and_ff  (** identity noise: and w, 0xff *)

let rol8 b n =
  let n = n land 7 in
  ((b lsl n) lor (b lsr (8 - n))) land 0xFF

let ror8 b n = rol8 b (8 - (n land 7))

let apply_op op b =
  match op with
  | C_not -> lnot b land 0xFF
  | C_xor k -> b lxor k
  | C_add k -> (b + k) land 0xFF
  | C_sub k -> (b - k) land 0xFF
  | C_rol n -> rol8 b n
  | C_ror n -> ror8 b n
  | C_or0 | C_and_ff -> b

let invert_op = function
  | C_not -> C_not
  | C_xor k -> C_xor k
  | C_add k -> C_sub k
  | C_sub k -> C_add k
  | C_rol n -> C_ror n
  | C_ror n -> C_rol n
  | C_or0 -> C_or0
  | C_and_ff -> C_and_ff

(* Encode a payload such that applying [ops] in order at decode time
   recovers it: run the inverted ops in reverse. *)
let encode_chain ops payload =
  let inv = List.rev_map invert_op ops in
  String.map
    (fun c -> Char.chr (List.fold_left (fun b op -> apply_op op b) (Char.code c) inv))
    payload

let op_insn w8 = function
  | C_not -> Insn.Not (Insn.S8bit, Insn.Reg8 w8)
  | C_xor k -> Insn.Arith (Insn.Xor, Insn.S8bit, Insn.Reg8 w8, imm (Int32.of_int k))
  | C_add k -> Insn.Arith (Insn.Add, Insn.S8bit, Insn.Reg8 w8, imm (Int32.of_int k))
  | C_sub k -> Insn.Arith (Insn.Sub, Insn.S8bit, Insn.Reg8 w8, imm (Int32.of_int k))
  | C_rol n -> Insn.Shift (Insn.Rol, Insn.S8bit, Insn.Reg8 w8, n)
  | C_ror n -> Insn.Shift (Insn.Ror, Insn.S8bit, Insn.Reg8 w8, n)
  | C_or0 -> Insn.Arith (Insn.Or, Insn.S8bit, Insn.Reg8 w8, imm 0l)
  | C_and_ff -> Insn.Arith (Insn.And, Insn.S8bit, Insn.Reg8 w8, imm 0xFFl)

let random_chain rng =
  let invertible () =
    match Rng.int rng 6 with
    | 0 -> C_not
    | 1 -> C_xor (1 + Rng.int rng 255)
    | 2 -> C_add (1 + Rng.int rng 255)
    | 3 -> C_sub (1 + Rng.int rng 255)
    | 4 -> C_rol (1 + Rng.int rng 7)
    | _ -> C_ror (1 + Rng.int rng 7)
  in
  let core = List.init (1 + Rng.int rng 3) (fun _ -> invertible ()) in
  (* sprinkle identity or/and noise, which is what gives the family its
     mov/or/and/not look *)
  List.concat_map
    (fun op ->
      if Rng.chance rng 0.4 then
        if Rng.bool rng then [ C_or0; op ] else [ op; C_and_ff ]
      else [ op ])
    core

(* ------------------------------------------------------------------ *)
(* Register selection and the different spellings of common steps. *)

let low8_of r =
  match Reg.low8 r with
  | Some w8 -> w8
  | None -> invalid_arg "Admmutate: register has no low byte"

let advance_items rng ptr =
  match Rng.int rng 4 with
  | 0 -> [ i (Insn.Inc (Insn.S32bit, reg ptr)) ]
  | 1 -> [ i (Insn.Arith (Insn.Add, Insn.S32bit, reg ptr, imm 1l)) ]
  | 2 -> [ i (Insn.Arith (Insn.Sub, Insn.S32bit, reg ptr, imm (-1l))) ]
  | _ -> [ i (Insn.Lea (ptr, Insn.mem_base_disp ptr 1l)) ]

let backedge_items rng ~out_of_order ~label ~force_long =
  if force_long || out_of_order || Rng.bool rng then
    [ i (Insn.Dec (Insn.S32bit, reg Reg.ECX)); Asm.Jcc (Insn.NE, label) ]
  else [ Asm.Loop_to label ]

(* ------------------------------------------------------------------ *)
(* Block assembly: blocks are emitted in a shuffled order, each entered
   through its label and left through an explicit jmp — out-of-order code
   sequencing, Figure 1(c) style. *)

let emit_blocks rng ~out_of_order (blocks : (string * Asm.item list) list) =
  let order = Array.init (List.length blocks) (fun k -> k) in
  if out_of_order then Rng.shuffle rng order;
  let blocks = Array.of_list blocks in
  Array.to_list order
  |> List.concat_map (fun k ->
         let name, items = blocks.(k) in
         (Asm.Label name :: items))

let generate ?family ?sled_len ?out_of_order ?(junk = 4) rng ~payload =
  let family =
    match family with
    | Some f -> f
    | None -> if Rng.chance rng 0.32 then Alt_chain else Xor_loop
  in
  let sled_len = match sled_len with Some n -> n | None -> 16 + Rng.int rng 49 in
  let out_of_order =
    match out_of_order with Some b -> b | None -> Rng.bool rng
  in
  let n = String.length payload in
  if n = 0 then invalid_arg "Admmutate.generate: empty payload";
  (* register roles: the loop counter is ECX (loop/dec-jnz), the pointer
     and the working/key register parent are distinct non-ESP/EBP regs *)
  let work_parent = Rng.pick rng [| Reg.EAX; Reg.EBX; Reg.EDX |] in
  let ptr =
    Rng.pick rng
      (Array.of_list
         (List.filter
            (fun r -> not (Reg.equal r work_parent))
            [ Reg.EAX; Reg.EBX; Reg.EDX; Reg.ESI; Reg.EDI ]))
  in
  let live = [ ptr; Reg.ECX; work_parent ] in
  let counter = Junk.const_route rng Reg.ECX (Int32.of_int n) in
  let encoded, loop_body =
    match family with
    | Xor_loop ->
        let key = 1 + Rng.int rng 255 in
        let encoded = String.map (fun c -> Char.chr (Char.code c lxor key)) payload in
        let use_key_reg = Rng.bool rng in
        let mem_xor =
          if use_key_reg then
            [
              i
                (Insn.Arith
                   (Insn.Xor, Insn.S8bit, mem_of ptr, Insn.Reg8 (low8_of work_parent)));
            ]
          else
            [ i (Insn.Arith (Insn.Xor, Insn.S8bit, mem_of ptr, imm (Int32.of_int key))) ]
        in
        let key_setup =
          if use_key_reg then Junk.const_route rng work_parent (Int32.of_int key)
          else []
        in
        (encoded, `Xor (key_setup, mem_xor))
    | Alt_chain ->
        let ops = random_chain rng in
        let encoded = encode_chain ops payload in
        (encoded, `Alt ops)
  in
  let w8 = low8_of work_parent in
  let build force_long =
    let rng = Rng.copy rng in
    let jk live = Junk.items rng ~live (Rng.int rng (junk + 1)) in
    let decode_blocks =
      match loop_body with
      | `Xor (key_setup, mem_xor) ->
          [
            ( "setup",
              jk live @ [ i (Insn.Pop_reg ptr) ] @ jk live @ counter @ jk live
              @ key_setup @ jk live @ [ Asm.Jmp "loop" ] );
            ("loop", jk live @ mem_xor @ jk live @ [ Asm.Jmp "step" ]);
            ( "step",
              jk live @ advance_items rng ptr @ jk live
              @ backedge_items rng ~out_of_order ~label:"loop" ~force_long
              @ [ Asm.Jmp "run" ] );
          ]
      | `Alt ops ->
          let chain =
            List.concat_map (fun op -> i (op_insn w8 op) :: jk live) ops
          in
          [
            ( "setup",
              jk live @ [ i (Insn.Pop_reg ptr) ] @ jk live @ counter @ jk live
              @ [ Asm.Jmp "loop" ] );
            ( "loop",
              jk live
              @ [ i (Insn.Mov (Insn.S8bit, Insn.Reg8 w8, mem_of ptr)) ]
              @ jk live @ chain @ [ Asm.Jmp "wb" ] );
            ( "wb",
              [ i (Insn.Mov (Insn.S8bit, mem_of ptr, Insn.Reg8 w8)) ]
              @ jk live @ advance_items rng ptr @ jk live
              @ backedge_items rng ~out_of_order ~label:"loop" ~force_long
              @ [ Asm.Jmp "run" ] );
          ]
    in
    (* GetPC harness: jmp to the call; the call pushes the address of the
       byte after it — the encoded payload — and "setup" pops it into the
       pointer register. *)
    let items =
      [ Asm.Jmp "getpc" ]
      @ emit_blocks rng ~out_of_order decode_blocks
      @ [ Asm.Label "run"; Asm.Jmp "payload" ]
      @ [ Asm.Label "getpc"; Asm.Call "setup"; Asm.Label "payload"; Asm.Raw encoded ]
    in
    Asm.assemble items
  in
  (* the loop-instruction back edge only reaches 128 bytes; junk-heavy
     bodies fall back to the dec/jnz spelling *)
  let decoder = try build false with Asm.Error _ -> build true in
  ignore (Rng.int64 rng);
  let sled = Nops.sled_bytes rng sled_len in
  let code = sled ^ decoder in
  {
    code;
    family;
    sled_len;
    decoder_len = String.length decoder - n;
    payload_off = String.length code - n;
    payload_len = n;
  }

let rec generate_staged ?(stages = 2) ?(junk = 4) rng ~payload =
  if stages < 1 then invalid_arg "Admmutate.generate_staged: stages >= 1";
  if stages = 1 then generate ~junk rng ~payload
  else begin
    let inner = generate_staged ~stages:(stages - 1) ~junk rng ~payload in
    generate ~junk rng ~payload:inner.code
  end
