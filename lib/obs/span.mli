(** Stage-scoped timer spans.

    [with_ reg "match" f] times [f], records the duration in the
    registry histogram [sanids_stage_match_seconds] (registering it on
    first use), and — when a tracer is attached — emits one JSONL trace
    event, subject to the tracer's sampling knob.  The duration is
    recorded even when [f] raises.

    Trace events are one JSON object per line:
    [{"span":"match","ts":<start, unix seconds>,"dur_us":<duration, µs>,
      "seq":<emitted-event index>}]. *)

type tracer

val tracer : ?sample:int -> out_channel -> tracer
(** A tracer emitting every [sample]-th span (default 1: every span) to
    the channel.  Emission is serialized with a mutex, so one tracer may
    be shared across domains.
    @raise Invalid_argument when [sample <= 0]. *)

val emitted : tracer -> int
(** Events written so far. *)

val flush : tracer -> unit

type stage
(** A pre-resolved stage timer: the histogram handle and name, looked up
    once.  [with_] resolves the stage on every call (a name concat, a
    help-string format and a registry lookup); per-packet hot paths
    should resolve a {!stage} at setup and call {!time}. *)

val stage : Registry.t -> string -> stage
(** Register (or find) [sanids_stage_<name>_seconds] and bundle it with
    the name for tracing. *)

val time : ?tracer:tracer -> stage -> (unit -> 'a) -> 'a
(** Like {!with_} over a pre-resolved stage — no per-call allocation
    beyond the two clock reads. *)

val with_ : ?tracer:tracer -> Registry.t -> string -> (unit -> 'a) -> 'a
(** [with_ ?tracer reg stage f] runs [f] inside a span named [stage].
    The stage name must make [sanids_stage_<stage>_seconds] a valid
    metric name.  Equivalent to [time ?tracer (stage reg name) f]. *)

val metric_of_stage : string -> string
(** ["match" -> "sanids_stage_match_seconds"] — the histogram a span
    records into. *)
