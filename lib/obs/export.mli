(** Snapshot exposition: Prometheus text format and JSONL.

    Both renderings are deterministic — metrics in name order,
    histogram buckets in ascending [le] order — so exports over seeded
    workloads diff cleanly. *)

val to_prometheus : ?help:(string -> string option) -> Snapshot.t -> string
(** Prometheus text exposition (version 0.0.4): [# TYPE] (and [# HELP]
    when [help] yields one) per metric family; histograms as cumulative
    [_bucket{le="..."}] series plus [_sum]/[_count].  Empty buckets are
    elided; the [+Inf] bucket is always present.  Labeled counter
    series ([name{reason="..."}]) render under a single [# TYPE] header
    for their base name. *)

val to_jsonl : Snapshot.t -> string
(** One JSON object per metric per line.  Histograms carry
    [[upper_bound, count]] pairs for their non-empty buckets. *)

val write_file : string -> string -> unit
(** [write_file path content] — tiny helper shared by the CLI and the
    dune check-obs rule. *)
