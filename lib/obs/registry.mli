(** A typed registry of named metrics.

    [counter]/[gauge]/[histogram] register a metric on first use and
    return the existing one afterwards, so handle resolution is by name
    and idempotent; the handles themselves are unboxed-mutable and free
    to bump on the hot path.  Names must match the Prometheus grammar
    [[a-zA-Z_:][a-zA-Z0-9_:]*]; re-registering a name as a different
    kind raises.

    A registry is deliberately {e not} thread-safe: the scaling design
    gives each worker domain its own registry and combines them with
    {!Snapshot.merge} at batch boundaries. *)

type t

type counter
type gauge

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or fetch) a monotonically increasing counter.

    [labels] makes the counter one series of a labeled family: the
    registered series name is [name{k="v",...}] with labels sorted by
    key (so equal label sets are one series regardless of caller
    order).  Exporters render the family under one [# TYPE] header;
    {!Snapshot.counter_sum} totals a family across its label sets.
    @raise Invalid_argument on a malformed name, malformed label key,
    or kind conflict. *)

val series_name : string -> (string * string) list -> string
(** The full series name [counter] registers for a base name and label
    set — use it to read a labeled series back out of a snapshot with
    {!Snapshot.counter_value}. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
(** Register (or fetch) a gauge; [labels] makes it one series of a
    labeled family exactly as for {!counter} (the cluster aggregator's
    [sanids_cluster_sensors{state="..."}] and per-sensor staleness
    gauges are labeled families). *)

val histogram : t -> ?help:string -> string -> Histogram.t

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val help : t -> string -> string option
(** The help text a metric was registered with, if any. *)

val snapshot : t -> Snapshot.t
(** An immutable copy of every registered metric's current value. *)

val reset : t -> unit
(** Zero every metric (registrations persist). *)
