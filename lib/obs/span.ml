type tracer = {
  oc : out_channel;
  sample : int;  (* emit every [sample]-th span *)
  mutable seen : int;
  mutable emitted : int;
  lock : Mutex.t;  (* spans may come from several domains *)
}

let tracer ?(sample = 1) oc =
  if sample <= 0 then invalid_arg "Span.tracer: sample must be positive";
  { oc; sample; seen = 0; emitted = 0; lock = Mutex.create () }

let emitted t = t.emitted

let flush t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> flush t.oc)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One JSONL event per sampled span:
     {"span":"match","ts":1723043.123456,"dur_us":81.3,"seq":7}
   [ts] is the span's start on the gettimeofday clock, [seq] numbers
   emitted events per tracer. *)
let emit t name ~ts ~dur =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      t.seen <- t.seen + 1;
      if t.seen mod t.sample = 0 then begin
        Printf.fprintf t.oc "{\"span\":\"%s\",\"ts\":%.6f,\"dur_us\":%.3f,\"seq\":%d}\n"
          (json_escape name) ts (dur *. 1e6) t.emitted;
        t.emitted <- t.emitted + 1
      end)

let metric_of_stage name = "sanids_stage_" ^ name ^ "_seconds"

type stage = { h : Histogram.t; stage_name : string }

let stage reg name =
  {
    h =
      Registry.histogram reg
        ~help:(Printf.sprintf "latency of the %s stage" name)
        (metric_of_stage name);
    stage_name = name;
  }

(* Hand-rolled rather than Fun.protect: this wraps every packet's
   classify span, so the finally-closure allocation is worth avoiding. *)
let time ?tracer st f =
  let t0 = Unix.gettimeofday () in
  let finish () =
    let dur = Unix.gettimeofday () -. t0 in
    Histogram.observe st.h dur;
    match tracer with None -> () | Some t -> emit t st.stage_name ~ts:t0 ~dur
  in
  match f () with
  | r ->
      finish ();
      r
  | exception e ->
      finish ();
      raise e

let with_ ?tracer reg name f = time ?tracer (stage reg name) f
