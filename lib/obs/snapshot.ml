module M = Map.Make (String)

type value =
  | Counter of int
  | Gauge of float
  | Hist of Histogram.snap

type t = value M.t

let empty = M.empty

let merge_value name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Hist x, Hist y -> Hist (Histogram.merge x y)
  | (Counter _ | Gauge _ | Hist _), _ ->
      invalid_arg
        (Printf.sprintf "Snapshot.merge: metric %S has conflicting kinds" name)

let merge a b =
  M.union (fun name x y -> Some (merge_value name x y)) a b

(* Interval delta between two cumulative snapshots.  Counters and
   histogram buckets subtract clamped at zero — a worker restart or a
   generation swap can only make a cumulative series *appear* to go
   backwards, and a rate must never be negative — while gauges are
   levels, not accumulations, so the newer level is kept as-is. *)
let diff_value name n o =
  match (n, o) with
  | Counter x, Counter y -> Counter (max 0 (x - y))
  | Gauge x, Gauge _ -> Gauge x
  | Hist x, Hist y ->
      let counts =
        Array.init (Array.length x.Histogram.counts) (fun i ->
            max 0 (x.Histogram.counts.(i) - y.Histogram.counts.(i)))
      in
      Hist
        {
          Histogram.counts;
          sum = Float.max 0.0 (x.Histogram.sum -. y.Histogram.sum);
          total = Array.fold_left ( + ) 0 counts;
        }
  | (Counter _ | Gauge _ | Hist _), _ ->
      invalid_arg
        (Printf.sprintf "Snapshot.diff: metric %S has conflicting kinds" name)

let diff ~newer ~older =
  M.merge
    (fun name n o ->
      match (n, o) with
      | Some n, Some o -> Some (diff_value name n o)
      | Some n, None -> Some n
      | None, Some _ | None, None ->
          (* a series the newer snapshot no longer carries contributes
             nothing to the interval *)
          None)
    newer older

let of_list l =
  List.fold_left
    (fun m (name, v) ->
      M.update name
        (function None -> Some v | Some v0 -> Some (merge_value name v0 v))
        m)
    empty l

let to_list t = M.bindings t

let find t name = M.find_opt name t

let counter_value t name =
  match M.find_opt name t with Some (Counter n) -> n | _ -> 0

let gauge_value t name =
  match M.find_opt name t with Some (Gauge g) -> g | _ -> 0.0

let histogram t name =
  match M.find_opt name t with Some (Hist h) -> h | _ -> Histogram.empty_snap

let base_name name =
  match String.index_opt name '{' with
  | None -> name
  | Some i -> String.sub name 0 i

let counter_sum t base =
  M.fold
    (fun name v acc ->
      match v with
      | Counter n when base_name name = base -> acc + n
      | Counter _ | Gauge _ | Hist _ -> acc)
    t 0

let counters t =
  M.fold
    (fun name v acc -> match v with Counter n -> (name, n) :: acc | _ -> acc)
    t []
  |> List.rev

let equal a b = to_list a = to_list b

let pp_value ppf = function
  | Counter n -> Format.fprintf ppf "%d" n
  | Gauge g -> Format.fprintf ppf "%g" g
  | Hist h -> Histogram.pp ppf h

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%s = %a@," name pp_value v)
    (to_list t);
  Format.fprintf ppf "@]"
