module M = Map.Make (String)

type value =
  | Counter of int
  | Gauge of float
  | Hist of Histogram.snap

type t = value M.t

let empty = M.empty

let merge_value name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Hist x, Hist y -> Hist (Histogram.merge x y)
  | (Counter _ | Gauge _ | Hist _), _ ->
      invalid_arg
        (Printf.sprintf "Snapshot.merge: metric %S has conflicting kinds" name)

let merge a b =
  M.union (fun name x y -> Some (merge_value name x y)) a b

let of_list l =
  List.fold_left
    (fun m (name, v) ->
      M.update name
        (function None -> Some v | Some v0 -> Some (merge_value name v0 v))
        m)
    empty l

let to_list t = M.bindings t

let find t name = M.find_opt name t

let counter_value t name =
  match M.find_opt name t with Some (Counter n) -> n | _ -> 0

let gauge_value t name =
  match M.find_opt name t with Some (Gauge g) -> g | _ -> 0.0

let histogram t name =
  match M.find_opt name t with Some (Hist h) -> h | _ -> Histogram.empty_snap

let base_name name =
  match String.index_opt name '{' with
  | None -> name
  | Some i -> String.sub name 0 i

let counter_sum t base =
  M.fold
    (fun name v acc ->
      match v with
      | Counter n when base_name name = base -> acc + n
      | Counter _ | Gauge _ | Hist _ -> acc)
    t 0

let counters t =
  M.fold
    (fun name v acc -> match v with Counter n -> (name, n) :: acc | _ -> acc)
    t []
  |> List.rev

let equal a b = to_list a = to_list b

let pp_value ppf = function
  | Counter n -> Format.fprintf ppf "%d" n
  | Gauge g -> Format.fprintf ppf "%g" g
  | Hist h -> Histogram.pp ppf h

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%s = %a@," name pp_value v)
    (to_list t);
  Format.fprintf ppf "@]"
