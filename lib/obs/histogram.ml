(* Log-scale latency histogram: bucket [i] counts observations whose
   duration in nanoseconds has [i] significant bits, i.e. falls in
   [2^(i-1), 2^i) ns.  64 buckets cover sub-nanosecond to ~584 years, so
   a fixed array suffices and merging is bucket-wise addition. *)

let nbuckets = 64

type t = {
  live : int array;
  mutable live_sum : float;  (* seconds *)
  mutable live_total : int;
}

type snap = { counts : int array; sum : float; total : int }

let create () = { live = Array.make nbuckets 0; live_sum = 0.0; live_total = 0 }

let bucket_of_seconds s =
  let ns = s *. 1e9 in
  if ns <= 1.0 || Float.is_nan ns then 0
  else
    (* frexp: ns = m * 2^e with 0.5 <= m < 1, so e is the bit count *)
    let _, e = Float.frexp ns in
    min (nbuckets - 1) (max 0 e)

let bucket_upper i = Float.ldexp 1.0 i /. 1e9
(* seconds; upper bound (exclusive) of bucket [i] *)

let observe t s =
  let s = if Float.is_nan s || s < 0.0 then 0.0 else s in
  let i = bucket_of_seconds s in
  t.live.(i) <- t.live.(i) + 1;
  t.live_sum <- t.live_sum +. s;
  t.live_total <- t.live_total + 1

let reset t =
  Array.fill t.live 0 nbuckets 0;
  t.live_sum <- 0.0;
  t.live_total <- 0

let snap t =
  { counts = Array.copy t.live; sum = t.live_sum; total = t.live_total }

let empty_snap = { counts = Array.make nbuckets 0; sum = 0.0; total = 0 }

let count (s : snap) = s.total
let sum (s : snap) = s.sum

let merge (a : snap) (b : snap) =
  {
    counts = Array.init nbuckets (fun i -> a.counts.(i) + b.counts.(i));
    sum = a.sum +. b.sum;
    total = a.total + b.total;
  }

let mean (s : snap) =
  if s.total = 0 then 0.0 else s.sum /. float_of_int s.total

(* Upper bound of the bucket holding the q-th observation: an
   over-estimate by at most one octave, which is all a log-scale
   histogram can promise. *)
let quantile (s : snap) q =
  if s.total = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = int_of_float (ceil (q *. float_of_int s.total)) in
    let rank = max 1 rank in
    let acc = ref 0 and result = ref (bucket_upper (nbuckets - 1)) in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + s.counts.(i);
         if !acc >= rank then begin
           result := bucket_upper i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let pp_duration ppf s =
  if s >= 1.0 then Format.fprintf ppf "%.2f s" s
  else if s >= 1e-3 then Format.fprintf ppf "%.2f ms" (s *. 1e3)
  else if s >= 1e-6 then Format.fprintf ppf "%.2f us" (s *. 1e6)
  else Format.fprintf ppf "%.0f ns" (s *. 1e9)

let pp ppf (s : snap) =
  Format.fprintf ppf "count=%d sum=%.6fs p50<=%a p95<=%a" s.total s.sum
    pp_duration (quantile s 0.5) pp_duration (quantile s 0.95)
