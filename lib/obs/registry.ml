type counter = { mutable c : int }
type gauge = { mutable g : float }

type metric =
  | Mcounter of counter
  | Mgauge of gauge
  | Mhist of Histogram.t

type t = {
  tbl : (string, metric * string) Hashtbl.t;  (* name -> metric, help *)
  mutable order : string list;  (* registration order, newest first *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let valid_name name =
  name <> ""
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

(* Label keys follow the Prometheus label grammar (no colons). *)
let valid_label_key k =
  k <> ""
  && (match k.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       k

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* The full series name: [base{k="v",...}] with labels sorted by key, so
   equal label sets always yield the same series regardless of caller
   order.  Snapshot merge and export key on this rendered name. *)
let series_name base labels =
  match labels with
  | [] -> base
  | _ ->
      List.iter
        (fun (k, _) ->
          if not (valid_label_key k) then
            invalid_arg (Printf.sprintf "Registry: invalid label key %S" k))
        labels;
      let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
      Printf.sprintf "%s{%s}" base
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
              labels))

(* [name] is a full series name: base-name validity (and label-key
   validity for labeled counters) is checked by the callers below. *)
let register t name help make describe =
  match Hashtbl.find_opt t.tbl name with
  | Some (m, _) -> m
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl name (m, help);
      t.order <- name :: t.order;
      ignore describe;
      m

let kind_error name want =
  invalid_arg
    (Printf.sprintf "Registry: metric %S already registered with another kind (wanted %s)"
       name want)

let counter t ?(help = "") ?(labels = []) name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: invalid metric name %S" name);
  let name = series_name name labels in
  match register t name help (fun () -> Mcounter { c = 0 }) "counter" with
  | Mcounter c -> c
  | Mgauge _ | Mhist _ -> kind_error name "counter"

let gauge t ?(help = "") ?(labels = []) name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: invalid metric name %S" name);
  let name = series_name name labels in
  match register t name help (fun () -> Mgauge { g = 0.0 }) "gauge" with
  | Mgauge g -> g
  | Mcounter _ | Mhist _ -> kind_error name "gauge"

let histogram t ?(help = "") name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: invalid metric name %S" name);
  match register t name help (fun () -> Mhist (Histogram.create ())) "histogram" with
  | Mhist h -> h
  | Mcounter _ | Mgauge _ -> kind_error name "histogram"

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let set_gauge g v = g.g <- v
let add_gauge g v = g.g <- g.g +. v
let gauge_value g = g.g

let help t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (_, "") | None -> None
  | Some (_, h) -> Some h

let snapshot t =
  Snapshot.of_list
    (Hashtbl.fold
       (fun name (m, _) acc ->
         let v =
           match m with
           | Mcounter c -> Snapshot.Counter c.c
           | Mgauge g -> Snapshot.Gauge g.g
           | Mhist h -> Snapshot.Hist (Histogram.snap h)
         in
         (name, v) :: acc)
       t.tbl [])

let reset t =
  Hashtbl.iter
    (fun _ (m, _) ->
      match m with
      | Mcounter c -> c.c <- 0
      | Mgauge g -> g.g <- 0.0
      | Mhist h -> Histogram.reset h)
    t.tbl
