(* Exposition formats.  Output is deterministic: metrics render in name
   order (Snapshot.to_list is sorted), histogram buckets in ascending
   [le] order. *)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let add_hist_lines b name (h : Histogram.snap) =
  let cum = ref 0 in
  for i = 0 to Histogram.nbuckets - 1 do
    if h.Histogram.counts.(i) > 0 then begin
      cum := !cum + h.Histogram.counts.(i);
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
           (float_str (Histogram.bucket_upper i))
           !cum)
    end
  done;
  Buffer.add_string b
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.Histogram.total);
  Buffer.add_string b (Printf.sprintf "%s_sum %s\n" name (float_str h.Histogram.sum));
  Buffer.add_string b (Printf.sprintf "%s_count %d\n" name h.Histogram.total)

let to_prometheus ?(help = fun _ -> None) snap =
  let b = Buffer.create 1024 in
  (* Labeled series of one family sort contiguously after their base
     name ('{' > any name character), so one [# HELP]/[# TYPE] header
     per base is emitted exactly once, before the family's first
     series. *)
  let last_base = ref "" in
  List.iter
    (fun (name, v) ->
      let base = Snapshot.base_name name in
      let fresh = base <> !last_base in
      last_base := base;
      if fresh then begin
        (match help name with
        | Some h when h <> "" ->
            Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" base h)
        | Some _ | None -> ());
        let kind =
          match v with
          | Snapshot.Counter _ -> "counter"
          | Snapshot.Gauge _ -> "gauge"
          | Snapshot.Hist _ -> "histogram"
        in
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" base kind)
      end;
      match v with
      | Snapshot.Counter n -> Buffer.add_string b (Printf.sprintf "%s %d\n" name n)
      | Snapshot.Gauge g ->
          Buffer.add_string b (Printf.sprintf "%s %s\n" name (float_str g))
      | Snapshot.Hist h -> add_hist_lines b name h)
    (Snapshot.to_list snap);
  Buffer.contents b

(* Series names of labeled counters contain '"' — escape for JSON. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jsonl_of_value name v =
  let name = json_escape name in
  match v with
  | Snapshot.Counter n ->
      Printf.sprintf "{\"metric\":\"%s\",\"type\":\"counter\",\"value\":%d}" name n
  | Snapshot.Gauge g ->
      Printf.sprintf "{\"metric\":\"%s\",\"type\":\"gauge\",\"value\":%s}" name
        (float_str g)
  | Snapshot.Hist h ->
      let buckets = Buffer.create 64 in
      let first = ref true in
      for i = 0 to Histogram.nbuckets - 1 do
        if h.Histogram.counts.(i) > 0 then begin
          if not !first then Buffer.add_char buckets ',';
          first := false;
          Buffer.add_string buckets
            (Printf.sprintf "[%s,%d]"
               (float_str (Histogram.bucket_upper i))
               h.Histogram.counts.(i))
        end
      done;
      Printf.sprintf
        "{\"metric\":\"%s\",\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
        name h.Histogram.total (float_str h.Histogram.sum)
        (Buffer.contents buckets)

let to_jsonl snap =
  String.concat ""
    (List.map
       (fun (name, v) -> jsonl_of_value name v ^ "\n")
       (Snapshot.to_list snap))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)
