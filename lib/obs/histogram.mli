(** Log-scale latency histogram.

    Durations are bucketed by octave in nanoseconds: bucket [i] counts
    observations in [[2^(i-1), 2^i)] ns, 64 buckets in a fixed array.
    Recording is O(1) with no allocation; merging two histograms is
    bucket-wise addition, which is what makes per-domain registries
    combine exactly ({!Snapshot.merge}).

    A histogram value is mutable and single-domain; {!snap} takes an
    immutable copy safe to ship across domains. *)

type t
(** A live (mutable) histogram. *)

type snap = {
  counts : int array;  (** per-bucket observation counts, [nbuckets] long *)
  sum : float;  (** exact sum of observed durations, seconds *)
  total : int;  (** total observations *)
}
(** An immutable snapshot. *)

val nbuckets : int

val create : unit -> t

val observe : t -> float -> unit
(** [observe t seconds] records one duration.  Negative and NaN inputs
    are clamped to zero rather than dropped, so counts always balance. *)

val reset : t -> unit

val snap : t -> snap
val empty_snap : snap

val merge : snap -> snap -> snap
(** Bucket-wise sum — associative and commutative with {!empty_snap} as
    identity. *)

val count : snap -> int
val sum : snap -> float
val mean : snap -> float

val quantile : snap -> float -> float
(** [quantile s q] is an upper bound (in seconds) on the [q]-quantile:
    the upper edge of the bucket holding the rank-[q] observation, an
    over-estimate by at most one octave.  [0.] for an empty snapshot. *)

val bucket_upper : int -> float
(** Upper bound of bucket [i], in seconds (used by the Prometheus
    exporter's [le] labels). *)

val bucket_of_seconds : float -> int

val pp_duration : Format.formatter -> float -> unit
(** Human rendering with an adaptive unit (ns/us/ms/s). *)

val pp : Format.formatter -> snap -> unit
