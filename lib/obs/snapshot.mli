(** Immutable metric snapshots — the unit of cross-domain aggregation.

    A snapshot maps metric names to values.  {!merge} is a commutative
    monoid with {!empty} as identity: counters and gauges add, histograms
    add bucket-wise.  That law (checked by qcheck in the test suite) is
    what makes per-worker-domain registries combine exactly: summing the
    snapshots of N sharded pipelines yields the same counters as one
    sequential pipeline over the same traffic. *)

type value =
  | Counter of int
  | Gauge of float
  | Hist of Histogram.snap

type t

val empty : t

val merge : t -> t -> t
(** Point-wise monoid merge.
    @raise Invalid_argument if the two snapshots bind the same name to
    different metric kinds. *)

val diff : newer:t -> older:t -> t
(** Interval delta between two cumulative snapshots of the same source
    — the rate primitive the serving path's periodic dumps are built
    on.  Counters and histogram buckets subtract clamped at zero (a
    worker respawn or generation swap can make a cumulative series
    regress; a rate must never be negative), gauges keep the newer
    level, and a series only the newer snapshot carries passes through
    unchanged.  Hence every counter in the result is [>= 0] — the
    qcheck-verified no-negative-rates law.
    @raise Invalid_argument if the two snapshots bind the same name to
    different metric kinds. *)

val of_list : (string * value) list -> t
(** Duplicate names are merged (same law as {!merge}). *)

val to_list : t -> (string * value) list
(** Sorted by metric name — exporters rely on this for deterministic
    output. *)

val find : t -> string -> value option

val counter_value : t -> string -> int
(** [0] when absent or not a counter. *)

val base_name : string -> string
(** The metric name of a series name: [base_name {|a_total{reason="x"}|}]
    is ["a_total"]; unlabeled names map to themselves. *)

val counter_sum : t -> string -> int
(** [counter_sum t base] sums every counter series whose {!base_name} is
    [base] — the total of a labeled family ([0] when none exist). *)

val gauge_value : t -> string -> float
val histogram : t -> string -> Histogram.snap

val counters : t -> (string * int) list
(** Just the counters, sorted by name. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
