(** A minimal JSON reader for the emu-test vector corpus.

    The toolchain ships no JSON library, and the vectors need only the
    basics: objects, arrays, strings, integers (decimal or [0x] hex,
    a convenience extension for addresses), booleans and null.  Floats
    are rejected. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parse one complete value; the error carries a line number. *)

val member : string -> t -> t option
(** Field lookup on an object; [None] on missing field or non-object. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
val to_obj_opt : t -> (string * t) list option
