(** Single-step vector harness for the {!Sanids_x86.Emulator}.

    The confirmation stage is only as trustworthy as the machine under
    it, so the machine is validated against a committed corpus of
    SingleStepTests-style JSON vectors.  A vector file is an array of
    cases:

    {v
    [ { "name": "add8 carry",
        "steps": 1,
        "flags_mask": 0xC5,
        "initial": { "eip": 0, "regs": {"eax": 255}, "flags": 0,
                     "mem": [[0, 4], [1, 1]] },
        "final":   { "eip": 2, "regs": {"eax": 256}, "flags": 0x11 } } ]
    v}

    Memory entries are [[offset, byte]] pairs relative to
    {!Sanids_x86.Emulator.code_base}; [eip] is an offset too.  Every
    [final] field is optional — only listed state is compared.  Flags
    compare under [flags_mask] (default [0xCC5]: CF, PF, ZF, SF, DF, OF;
    the reserved always-one bit is excluded).  Integers may be written
    in [0x] hex. *)

type case

type failure = { f_file : string; f_case : string; f_details : string list }

type report = { files : int; cases : int; failures : failure list }

val passed : report -> int

val load_file : string -> (case list, string) result
(** Parse one vector file; the error names the file and what is
    malformed. *)

val run_case : case -> string list
(** Execute one case; the empty list means it passed, otherwise each
    string describes one divergence (register, eip, flag or memory). *)

val expand_paths : string list -> (string list, string) result
(** Files stay as given; directories expand to their sorted [*.json]
    entries.  Missing paths and vector-less directories are errors. *)

val run :
  ?filter:string -> ?jobs:int -> string list -> (report, string) result
(** Load and execute a corpus.  [filter] is a [*]-glob over case names;
    [jobs] > 1 spreads cases over that many domains. *)
