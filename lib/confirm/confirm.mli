(** Dynamic confirmation: a bounded, deterministic second verdict stage.

    A semantic-matcher hit says a payload {e looks like} a decoder or a
    shell-spawn; this stage actually {e runs} it in the sandboxed
    {!Sanids_x86.Emulator} and watches what it does.  The payload image
    is loaded at {!Sanids_x86.Emulator.code_base}, execution starts at
    the matched entry offset, and the run is classified under a strict
    step / syscall / memory budget:

    - {!Confirmed_decrypt}: the guest stored at least [min_written]
      distinct bytes and then {e executed} bytes it had written — the
      definition of a self-decrypting decoder.
    - {!Confirmed_syscall}: reached [int 0x80] with [eax]=execve(11),
      or socketcall(102) with a valid subcall in [ebx] — a directly
      hostile syscall.
    - {!Refuted}: the guest faulted, hit an undecodable byte, or burned
      its syscall budget without doing anything hostile.  A matcher hit
      that cannot survive concrete execution was a false positive.
    - {!Inconclusive}: the step budget ran out ([Budget]) or the image
      could not even be seeded ([Fault]) — no judgement either way.

    Every run is deterministic: same image, same entry, same config,
    same outcome.  The faked kernel returns [eax=3] for every other
    syscall so multi-syscall payloads keep running. *)

type config = {
  max_steps : int;  (** instruction budget (default 20_000) *)
  max_syscalls : int;
      (** faked syscalls tolerated before refuting (default 16) *)
  min_written : int;
      (** distinct guest-written bytes required before
          executing-written-bytes counts as decryption (default 8) *)
  arena_size : int;  (** emulator arena in bytes (default 256 KiB) *)
}

val default_config : config

val validate_config : config -> (unit, string) result

val config_of_string : string -> (config, string) result
(** ["default"] or a comma-spec [steps=N,syscalls=N,written=N,arena=N]
    (each key optional, over the defaults).  Validated. *)

val config_to_string : config -> string
(** Canonical spec form; [config_of_string (config_to_string c) = Ok c]. *)

type reason = Budget | Fault of string

type outcome =
  | Confirmed_decrypt of { written : int; steps : int }
  | Confirmed_syscall of { nr : int; name : string; steps : int }
  | Refuted of string
  | Statically_refuted of string
      (** the abstract pre-stage ({!Static_refute}) proved that concrete
          emulation must refute this hit, so the emulator never ran.
          Only the pipeline composes this in; {!run} never returns it. *)
  | Inconclusive of reason

val confirmed : outcome -> bool
(** [true] on either [Confirmed_] constructor. *)

val label : outcome -> string
(** Stable low-cardinality metric label: [confirmed_decrypt],
    [confirmed_syscall], [refuted], [static_refuted],
    [inconclusive_budget], [inconclusive_fault]. *)

val pp : Format.formatter -> outcome -> unit

val run : ?config:config -> code:string -> entry:int -> unit -> outcome
(** Execute [code] from byte offset [entry] and classify the run.
    Never raises. *)
