module Emulator = Sanids_x86.Emulator
module Reg = Sanids_x86.Reg

(* CF | PF | ZF | SF | DF | OF — everything the machine models except
   the constant reserved bit. *)
let default_flags_mask = 0xCC5

type case = {
  c_file : string;
  c_name : string;
  c_steps : int;
  c_flags_mask : int;
  c_init_eip : int;
  c_init_regs : (Reg.t * int32) list;
  c_init_flags : int option;
  c_init_mem : (int * int) list;
  c_fin_eip : int option;
  c_fin_regs : (Reg.t * int32) list;
  c_fin_flags : int option;
  c_fin_mem : (int * int) list;
}

type failure = { f_file : string; f_case : string; f_details : string list }
type report = { files : int; cases : int; failures : failure list }

let passed r = r.cases - List.length r.failures

(* ------------------------------------------------------------------ *)
(* vector parsing *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let reg_of_name = function
  | "eax" -> Reg.EAX
  | "ecx" -> Reg.ECX
  | "edx" -> Reg.EDX
  | "ebx" -> Reg.EBX
  | "esp" -> Reg.ESP
  | "ebp" -> Reg.EBP
  | "esi" -> Reg.ESI
  | "edi" -> Reg.EDI
  | s -> bad "unknown register %S" s

let int_field j key =
  match Json.member key j with
  | None -> None
  | Some v -> (
      match Json.to_int_opt v with
      | Some i -> Some i
      | None -> bad "field %S is not an integer" key)

let regs_field j key =
  match Json.member key j with
  | None -> []
  | Some v -> (
      match Json.to_obj_opt v with
      | None -> bad "field %S is not an object" key
      | Some fields ->
          List.map
            (fun (name, v) ->
              match Json.to_int_opt v with
              | None -> bad "register %S is not an integer" name
              | Some i -> (reg_of_name name, Int32.of_int i))
            fields)

let mem_field j key =
  match Json.member key j with
  | None -> []
  | Some v -> (
      match Json.to_list_opt v with
      | None -> bad "field %S is not an array" key
      | Some entries ->
          List.map
            (function
              | Json.List [ Json.Int off; Json.Int byte ] ->
                  if byte < 0 || byte > 0xFF then
                    bad "mem byte %d out of range" byte
                  else (off, byte)
              | _ -> bad "mem entries must be [offset, byte] pairs")
            entries)

let parse_case file j =
  match Json.to_obj_opt j with
  | None -> bad "case is not an object"
  | Some _ ->
      let name =
        match Json.member "name" j with
        | Some (Json.String s) -> s
        | _ -> bad "case has no \"name\""
      in
      let initial =
        match Json.member "initial" j with
        | Some o -> o
        | None -> bad "case %S has no \"initial\"" name
      in
      let final =
        match Json.member "final" j with
        | Some o -> o
        | None -> bad "case %S has no \"final\"" name
      in
      {
        c_file = file;
        c_name = name;
        c_steps = Option.value (int_field j "steps") ~default:1;
        c_flags_mask =
          Option.value (int_field j "flags_mask") ~default:default_flags_mask;
        c_init_eip = Option.value (int_field initial "eip") ~default:0;
        c_init_regs = regs_field initial "regs";
        c_init_flags = int_field initial "flags";
        c_init_mem = mem_field initial "mem";
        c_fin_eip = int_field final "eip";
        c_fin_regs = regs_field final "regs";
        c_fin_flags = int_field final "flags";
        c_fin_mem = mem_field final "mem";
      }

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s

let load_file path =
  match read_file path with
  | Error e -> Error e
  | Ok text -> (
      match Json.of_string text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok (Json.List cases) -> (
          match List.map (parse_case path) cases with
          | cases -> Ok cases
          | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg))
      | Ok _ -> Error (Printf.sprintf "%s: top level must be an array of cases" path))

(* ------------------------------------------------------------------ *)
(* execution *)

let arena_size = 1 lsl 14

let run_case c =
  let emu = Emulator.create ~arena_size ~code:"" () in
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let addr off = Int32.add Emulator.code_base (Int32.of_int off) in
  List.iter
    (fun (off, byte) ->
      match Emulator.write_mem_opt emu (addr off) (String.make 1 (Char.chr byte)) with
      | Some () -> ()
      | None -> problem "initial mem offset 0x%x outside the arena" off)
    c.c_init_mem;
  List.iter (fun (r, v) -> Emulator.set_reg emu r v) c.c_init_regs;
  (match c.c_init_flags with
  | Some f -> Emulator.set_flags_word emu f
  | None -> ());
  Emulator.set_eip emu (addr c.c_init_eip);
  let rec steps n =
    if n = 0 then ()
    else
      match Emulator.step emu with
      | Emulator.Running -> steps (n - 1)
      | Emulator.Syscall v ->
          problem "stopped on int 0x%x with %d steps left" v (n - 1)
      | Emulator.Halted msg -> problem "halted (%s) with %d steps left" msg (n - 1)
  in
  if !problems = [] then begin
    steps c.c_steps;
    List.iter
      (fun (r, want) ->
        let got = Emulator.reg emu r in
        if not (Int32.equal got want) then
          problem "%s = 0x%08lx, want 0x%08lx" (Reg.name r) got want)
      c.c_fin_regs;
    (match c.c_fin_eip with
    | Some off ->
        let got = Emulator.eip emu in
        if not (Int32.equal got (addr off)) then
          problem "eip = base+0x%lx, want base+0x%x"
            (Int32.sub got Emulator.code_base)
            off
    | None -> ());
    (match c.c_fin_flags with
    | Some want ->
        let got = Emulator.flags_word emu in
        if got land c.c_flags_mask <> want land c.c_flags_mask then
          problem "flags = 0x%03x, want 0x%03x (mask 0x%03x)" got want
            c.c_flags_mask
    | None -> ());
    List.iter
      (fun (off, want) ->
        match Emulator.read_mem_opt emu (addr off) 1 with
        | None -> problem "final mem offset 0x%x outside the arena" off
        | Some s ->
            let got = Char.code s.[0] in
            if got <> want then
              problem "mem[0x%x] = 0x%02x, want 0x%02x" off got want)
      c.c_fin_mem
  end;
  List.rev !problems

(* ------------------------------------------------------------------ *)
(* corpus driver *)

let glob_match pat s =
  let np = String.length pat and ns = String.length s in
  let rec go i j =
    if i = np then j = ns
    else
      match pat.[i] with
      | '*' ->
          let rec try_from k = k <= ns && (go (i + 1) k || try_from (k + 1)) in
          try_from j
      | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

let expand_paths paths =
  let rec expand acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
        if Sys.file_exists p then
          if Sys.is_directory p then
            let entries =
              Sys.readdir p |> Array.to_list
              |> List.filter (fun f -> Filename.check_suffix f ".json")
              |> List.sort String.compare
              |> List.map (Filename.concat p)
            in
            if entries = [] then
              Error (Printf.sprintf "%s: no .json vector files" p)
            else expand (List.rev_append entries acc) rest
          else expand (p :: acc) rest
        else Error (Printf.sprintf "%s: no such file or directory" p)
  in
  expand [] paths

let run_cases cases =
  List.filter_map
    (fun c ->
      match run_case c with
      | [] -> None
      | details -> Some { f_file = c.c_file; f_case = c.c_name; f_details = details })
    cases

let run ?filter ?(jobs = 1) paths =
  match expand_paths paths with
  | Error e -> Error e
  | Ok files -> (
      let rec load acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> (
            match load_file f with
            | Error e -> Error e
            | Ok cases -> load (List.rev_append cases acc) rest)
      in
      match load [] files with
      | Error e -> Error e
      | Ok all ->
          let selected =
            match filter with
            | None -> all
            | Some pat -> List.filter (fun c -> glob_match pat c.c_name) all
          in
          let failures =
            if jobs <= 1 || List.length selected < 2 then run_cases selected
            else begin
              let jobs = min jobs (List.length selected) in
              let chunks = Array.make jobs [] in
              List.iteri
                (fun i c -> chunks.(i mod jobs) <- c :: chunks.(i mod jobs))
                selected;
              let domains =
                Array.map
                  (fun chunk -> Domain.spawn (fun () -> run_cases (List.rev chunk)))
                  chunks
              in
              Array.to_list domains |> List.concat_map Domain.join
            end
          in
          Ok { files = List.length files; cases = List.length selected; failures })
